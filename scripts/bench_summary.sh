#!/usr/bin/env bash
# Runs the observability benchmarks — tracing overhead on the engine-2
# hot-key path — and folds the `go test -bench` output into one JSON
# artifact (default BENCH_obs.json): per-benchmark mean ns/op and
# allocs/op plus the computed traced-vs-untraced overhead percentage.
#
# Usage:
#   scripts/bench_summary.sh [OUT.json]
#
# Environment:
#   BENCH_COUNT            runs per benchmark (default 3)
#   BENCH_TIME             -benchtime value (default 200000x)
#   BENCH_OBS_MAX_OVERHEAD when set, fail if the default-rate tracing
#                          overhead exceeds this percentage (e.g. 5)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_obs.json}
count=${BENCH_COUNT:-3}
benchtime=${BENCH_TIME:-200000x}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkIngest(Untraced|Traced|TracedSampleAll)$' \
    -benchmem -benchtime "$benchtime" -count "$count" \
    ./internal/engine2/ | tee "$raw"

awk -v max="${BENCH_OBS_MAX_OVERHEAD:-}" '
/^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] += $3; allocs[name] += $7; n[name]++
    if (!(name in seen)) { order[++k] = name; seen[name] = 1 }
}
END {
    if (k == 0) { print "bench_summary: no benchmark results parsed" > "/dev/stderr"; exit 1 }
    printf "{\n  \"suite\": \"observability\",\n  \"benchmarks\": {\n"
    for (i = 1; i <= k; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_op\": %.1f, \"allocs_op\": %.1f, \"runs\": %d}%s\n",
            name, ns[name] / n[name], allocs[name] / n[name], n[name], (i < k ? "," : "")
    }
    printf "  }"
    u = "BenchmarkIngestUntraced"; t = "BenchmarkIngestTraced"
    if ((u in ns) && (t in ns)) {
        overhead = (ns[t] / n[t] - ns[u] / n[u]) / (ns[u] / n[u]) * 100
        extra = allocs[t] / n[t] - allocs[u] / n[u]
        printf ",\n  \"tracing_overhead_pct\": %.2f,\n  \"tracing_extra_allocs_op\": %.1f", overhead, extra
        if (max != "" && overhead > max + 0) {
            printf "\n}\n"
            printf "bench_summary: tracing overhead %.2f%% exceeds the %s%% budget\n", overhead, max > "/dev/stderr"
            exit 2
        }
    }
    printf "\n}\n"
}' "$raw" > "$out"

echo "wrote $out:"
cat "$out"
