#!/usr/bin/env bash
# Doc hygiene: every internal/* package must carry a package (doc)
# comment — a comment block immediately preceding its package clause
# in some non-test file (conventionally doc.go).
set -eu
cd "$(dirname "$0")/.."

missing=0
for dir in internal/*/; do
    found=0
    for f in "$dir"*.go; do
        [ -e "$f" ] || continue
        case "$f" in *_test.go) continue ;; esac
        if awk '
            /^package / { if (prev ~ /^\/\//) found = 1; exit }
            { prev = $0 }
            END { exit found ? 0 : 1 }
        ' "$f"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "FAIL: package ${dir%/} has no package comment" >&2
        missing=1
    fi
done

if [ "$missing" -ne 0 ]; then
    echo "add a doc.go stating the package's contract and its concurrency/failure invariants" >&2
    exit 1
fi
echo "doc hygiene: all internal packages carry a package comment"
