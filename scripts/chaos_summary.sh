#!/usr/bin/env bash
# Runs the chaos soak — a two-node TCP cluster under seeded fault
# injection (drops, delays, duplicates, flaky dials, a scripted
# partition) plus a real crash/failover/rejoin — and folds the test's
# CHAOS_SUMMARY line into one JSON artifact (default BENCH_chaos.json):
# offered/accepted/lost exact-accounting totals plus injected-fault,
# retry, and dedup counters.
#
# The soak is deterministic (seeded fault schedule), so the JSON is
# comparable across commits: a drifting counter means the delivery
# pipeline changed behavior, not that the network got unlucky.
#
# Usage:
#   scripts/chaos_summary.sh [OUT.json]
#
# Environment:
#   CHAOS_COUNT  soak repetitions (default 2; all must agree — the
#                schedule is seeded, so any divergence is a bug)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_chaos.json}
count=${CHAOS_COUNT:-2}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -race -run 'TestChaosSoakExactAccounting|TestTransientBlipDoesNotFailover' \
    -count "$count" -v . | tee "$raw"

awk -v runs="$count" '
/CHAOS_SUMMARY/ {
    line = ""
    for (i = 1; i <= NF; i++) {
        if (split($i, kv, "=") == 2) {
            pairs[kv[1], ++n[kv[1]]] = kv[2]
            if (!(kv[1] in seen)) { order[++k] = kv[1]; seen[kv[1]] = 1 }
        }
    }
    summaries++
}
END {
    if (summaries == 0) { print "chaos_summary: no CHAOS_SUMMARY line in test output" > "/dev/stderr"; exit 1 }
    printf "{\n  \"suite\": \"chaos-soak\",\n  \"runs\": %d,\n", summaries
    deterministic = 1
    for (i = 1; i <= k; i++)
        for (j = 2; j <= n[order[i]]; j++)
            if (pairs[order[i], j] != pairs[order[i], 1]) deterministic = 0
    printf "  \"deterministic\": %s,\n  \"totals\": {\n", (deterministic ? "true" : "false")
    for (i = 1; i <= k; i++)
        printf "    \"%s\": %s%s\n", order[i], pairs[order[i], 1], (i < k ? "," : "")
    printf "  }\n}\n"
    if (!deterministic) {
        print "chaos_summary: seeded soak produced diverging counters across runs" > "/dev/stderr"
        exit 2
    }
}' "$raw" > "$out"

echo "wrote $out:"
cat "$out"
