#!/usr/bin/env bash
# Multi-process TCP smoke test: a three-node muppet cluster on
# localhost runs the retailer application end to end. Each node is a
# real OS process hosting one machine; inter-machine deliveries cross
# real TCP sockets. Checkins are ingested at every node and the
# per-retailer counts are asserted exact — zero lost updates.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
declare -A nodepid
cleanup() {
    kill "${pids[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/muppet" ./cmd/muppet

base=${SMOKE_BASE_PORT:-17070}
hbase=$((base + 1000))
cat > "$workdir/cluster.json" <<EOF
{
  "nodes": {
    "machine-00": "127.0.0.1:$base",
    "machine-01": "127.0.0.1:$((base + 1))",
    "machine-02": "127.0.0.1:$((base + 2))"
  },
  "retry_backoff": "20ms"
}
EOF

# start_node I LOG: launch machine-0I with the shared durable data
# directory (each node writes under data/machine-0I).
start_node() {
    local i=$1 log=$2
    "$workdir/muppet" -app retailer -node "machine-0$i" -join "$workdir/cluster.json" \
        -http "127.0.0.1:$((hbase + i))" -events 0 -linger 120s \
        -data-dir "$workdir/data" \
        > "$workdir/$log" 2>&1 &
    pids+=($!)
    nodepid[$i]=$!
}

for i in 0 1 2; do
    start_node "$i" "node$i.log"
done

# Wait until every node's HTTP API answers and reports the TCP transport.
for i in 0 1 2; do
    for _ in $(seq 1 100); do
        if curl -sf "127.0.0.1:$((hbase + i))/status" 2>/dev/null | grep -q '"transport":"tcp"'; then
            continue 2
        fi
        sleep 0.1
    done
    echo "FAIL: node $i never came up"; cat "$workdir/node$i.log"; exit 1
done
echo "3 nodes up: $(curl -sf "127.0.0.1:$hbase/status" | tr -d '\n')"

# ingest NODE VENUE COUNT: POST checkins to one node, assert all accepted.
ingest() {
    local node=$1 venue=$2 count=$3 events="" j
    for j in $(seq 1 "$count"); do
        events+="{\"stream\":\"S1\",\"key\":\"u$j\",\"value\":\"{\\\"id\\\":$j,\\\"user\\\":\\\"u$j\\\",\\\"venue\\\":\\\"$venue\\\"}\"},"
    done
    local reply
    reply=$(curl -sf -X POST "127.0.0.1:$((hbase + node))/ingest" \
        -H 'Content-Type: application/json' -d "[${events%,}]")
    if ! grep -q "\"accepted\":$count" <<< "$reply"; then
        echo "FAIL: node $node accepted fewer than $count: $reply"; exit 1
    fi
}

# Spread the load: every node ingests, so whichever machines own the
# three retailer keys, sends cross the network in multiple directions.
ingest 0 "Walmart Supercenter" 4
ingest 1 "wal-mart"            3
ingest 2 "WALMART"             3
ingest 0 "sams club"           2
ingest 1 "Sam's Club"          4
ingest 2 "Target"              5

# expect RETAILER COUNT: the owning node's slate must converge to the
# exact count; the other nodes answer 404 from their local stores.
expect() {
    local retailer=$1 want=$2 path got i
    path=$(printf '%s' "$retailer" | sed 's/ /%20/g')
    for _ in $(seq 1 100); do
        for i in 0 1 2; do
            got=$(curl -sf "127.0.0.1:$((hbase + i))/slate/U1/$path" 2>/dev/null) || continue
            if [ "$got" = "$want" ]; then
                echo "ok: count($retailer) = $want (answered by node $i)"
                return 0
            fi
        done
        sleep 0.1
    done
    echo "FAIL: count($retailer) never reached $want (last seen: ${got:-none})"
    exit 1
}

expect "Walmart"    10
expect "Sam's Club" 6
expect "Target"     5

# /metrics: every node serves Prometheus text with live engine
# counters, and the cross-node delivery counters reconcile — sends are
# synchronous request/response, so after convergence every request
# frame one node wrote has been served by a peer.
# metric_sum NAME: sum a counter across all three nodes' /metrics
# (labelled or not).
metric_sum() {
    local name=$1 total=0 i v
    for i in 0 1 2; do
        v=$(curl -sf "127.0.0.1:$((hbase + i))/metrics" \
            | awk -v n="$name" '$1 ~ "^"n"(\\{|$)" { s += $2 } END { printf "%d", s }')
        total=$((total + v))
    done
    echo "$total"
}

# Every node ingested a batch above, so its own ingest counter must be
# live (processing may all happen on the key-owning peers). The body is
# captured first: grep -q on a live curl pipe would SIGPIPE curl and
# trip pipefail even on a match.
for i in 0 1 2; do
    body=$(curl -sf "127.0.0.1:$((hbase + i))/metrics")
    if ! grep -q '^muppet_engine_ingested_total [1-9]' <<< "$body"; then
        echo "FAIL: node $i /metrics missing nonzero engine counters"
        head -20 <<< "$body"
        exit 1
    fi
done

processed=$(metric_sum muppet_engine_processed_total)
if [ "$processed" -eq 0 ]; then
    echo "FAIL: no node processed any event"
    exit 1
fi

frames_out=$(metric_sum muppet_transport_frames_out_total)
frames_in=$(metric_sum muppet_transport_frames_in_total)
if [ "$frames_out" -eq 0 ] || [ "$frames_out" -ne "$frames_in" ]; then
    echo "FAIL: cross-node delivery counters do not reconcile: $frames_out frames written, $frames_in served"
    exit 1
fi
echo "ok: /metrics up on 3 nodes; $frames_out cross-node frames written = $frames_in served"

# Durable restart: kill the node that owns the Target slate, restart it
# on the same data directory, and assert the fresh process serves the
# pre-crash count straight off its own LSM files — no events are
# re-ingested and the replay log is off, so disk is the only possible
# source.
owner=""
for i in 0 1 2; do
    if curl -sf "127.0.0.1:$((hbase + i))/slate/U1/Target" >/dev/null 2>&1; then
        owner=$i
        break
    fi
done
if [ -z "$owner" ]; then
    echo "FAIL: no node owns the Target slate"; exit 1
fi
sleep 0.5 # let the 100ms interval flusher persist the slate
kill "${nodepid[$owner]}"
wait "${nodepid[$owner]}" 2>/dev/null || true
start_node "$owner" "node$owner-restarted.log"

got=""
for _ in $(seq 1 100); do
    got=$(curl -sf "127.0.0.1:$((hbase + owner))/slate/U1/Target" 2>/dev/null) || got=""
    if [ "$got" = "5" ]; then
        break
    fi
    sleep 0.1
done
if [ "$got" != "5" ]; then
    echo "FAIL: node $owner lost the Target slate across restart (got: ${got:-none})"
    cat "$workdir/node$owner-restarted.log"
    exit 1
fi
echo "ok: node $owner restarted on its data dir and served count(Target) = 5 from disk"

echo "tcp smoke: 3-process cluster converged with zero lost updates and survived a node restart"
