#!/usr/bin/env bash
# Multi-process TCP smoke test: a three-node muppet cluster on
# localhost runs the retailer application end to end. Each node is a
# real OS process hosting one machine; inter-machine deliveries cross
# real TCP sockets. Checkins are ingested at every node and the
# per-retailer counts are asserted exact — zero lost updates.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
declare -A nodepid
cleanup() {
    kill "${pids[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/muppet" ./cmd/muppet
go build -o "$workdir/slatectl" ./cmd/slatectl

base=${SMOKE_BASE_PORT:-17070}
hbase=$((base + 1000))
cat > "$workdir/cluster.json" <<EOF
{
  "nodes": {
    "machine-00": "127.0.0.1:$base",
    "machine-01": "127.0.0.1:$((base + 1))",
    "machine-02": "127.0.0.1:$((base + 2))"
  },
  "retry_backoff": "20ms"
}
EOF

# start_node I LOG: launch machine-0I with the shared durable data
# directory (each node writes under data/machine-0I).
start_node() {
    local i=$1 log=$2
    "$workdir/muppet" -app retailer -node "machine-0$i" -join "$workdir/cluster.json" \
        -http "127.0.0.1:$((hbase + i))" -events 0 -linger 120s \
        -data-dir "$workdir/data" \
        > "$workdir/$log" 2>&1 &
    pids+=($!)
    nodepid[$i]=$!
}

for i in 0 1 2; do
    start_node "$i" "node$i.log"
done

# Wait until every node's HTTP API answers and reports the TCP transport.
for i in 0 1 2; do
    for _ in $(seq 1 100); do
        if curl -sf "127.0.0.1:$((hbase + i))/status" 2>/dev/null | grep -q '"transport":"tcp"'; then
            continue 2
        fi
        sleep 0.1
    done
    echo "FAIL: node $i never came up"; cat "$workdir/node$i.log"; exit 1
done
echo "3 nodes up: $(curl -sf "127.0.0.1:$hbase/status" | tr -d '\n')"

# ingest NODE VENUE COUNT: POST checkins to one node, assert all accepted.
ingest() {
    local node=$1 venue=$2 count=$3 events="" j
    for j in $(seq 1 "$count"); do
        events+="{\"stream\":\"S1\",\"key\":\"u$j\",\"value\":\"{\\\"id\\\":$j,\\\"user\\\":\\\"u$j\\\",\\\"venue\\\":\\\"$venue\\\"}\"},"
    done
    local reply
    reply=$(curl -sf -X POST "127.0.0.1:$((hbase + node))/ingest" \
        -H 'Content-Type: application/json' -d "[${events%,}]")
    if ! grep -q "\"accepted\":$count" <<< "$reply"; then
        echo "FAIL: node $node accepted fewer than $count: $reply"; exit 1
    fi
}

# Spread the load: every node ingests, so whichever machines own the
# three retailer keys, sends cross the network in multiple directions.
ingest 0 "Walmart Supercenter" 4
ingest 1 "wal-mart"            3
ingest 2 "WALMART"             3
ingest 0 "sams club"           2
ingest 1 "Sam's Club"          4
ingest 2 "Target"              5

# expect RETAILER COUNT: the owning node's slate must converge to the
# exact count; the other nodes answer 404 from their local stores.
expect() {
    local retailer=$1 want=$2 path got i
    path=$(printf '%s' "$retailer" | sed 's/ /%20/g')
    for _ in $(seq 1 100); do
        for i in 0 1 2; do
            got=$(curl -sf "127.0.0.1:$((hbase + i))/slate/U1/$path" 2>/dev/null) || continue
            if [ "$got" = "$want" ]; then
                echo "ok: count($retailer) = $want (answered by node $i)"
                return 0
            fi
        done
        sleep 0.1
    done
    echo "FAIL: count($retailer) never reached $want (last seen: ${got:-none})"
    exit 1
}

expect "Walmart"    10
expect "Sam's Club" 6
expect "Target"     5

# Cross-node query: a cluster-wide top-3-by-count through slatectl
# against node 0 must rank the three retailers with their exact counts.
# The whole pipeline executes on the owning nodes; node 0 only receives
# already-reduced partials.
q=""
for _ in $(seq 1 100); do
    q=$("$workdir/slatectl" -addr "127.0.0.1:$hbase" query -stream U1 -topk 3 -by count)
    if grep -q '"key":"Walmart"' <<< "$q"; then
        break
    fi
    sleep 0.1
done
echo "$q"
for want in '1p;"key":"Walmart";"sum":10' '2p;"key":"Sam'"'"'s Club";"sum":6' '3p;"key":"Target";"sum":5'; do
    IFS=';' read -r line key sum <<< "$want"
    got=$(sed -n "$line" <<< "$q")
    if ! grep -qF "$key" <<< "$got" || ! grep -qF "$sum" <<< "$got"; then
        echo "FAIL: topk rank $line: want $key $sum, got: $got"; exit 1
    fi
done
echo "ok: slatectl query -topk 3 ranked Walmart=10, Sam's Club=6, Target=5 across the cluster"

# /metrics: every node serves Prometheus text with live engine
# counters, and the cross-node delivery counters reconcile — sends are
# synchronous request/response, so after convergence every request
# frame one node wrote has been served by a peer.
# metric_sum NAME: sum a counter across all three nodes' /metrics
# (labelled or not).
metric_sum() {
    local name=$1 total=0 i v
    for i in 0 1 2; do
        v=$(curl -sf "127.0.0.1:$((hbase + i))/metrics" \
            | awk -v n="$name" '$1 ~ "^"n"(\\{|$)" { s += $2 } END { printf "%d", s }')
        total=$((total + v))
    done
    echo "$total"
}

# Every node ingested a batch above, so its own ingest counter must be
# live (processing may all happen on the key-owning peers). The body is
# captured first: grep -q on a live curl pipe would SIGPIPE curl and
# trip pipefail even on a match.
for i in 0 1 2; do
    body=$(curl -sf "127.0.0.1:$((hbase + i))/metrics")
    if ! grep -q '^muppet_engine_ingested_total [1-9]' <<< "$body"; then
        echo "FAIL: node $i /metrics missing nonzero engine counters"
        head -20 <<< "$body"
        exit 1
    fi
done

processed=$(metric_sum muppet_engine_processed_total)
if [ "$processed" -eq 0 ]; then
    echo "FAIL: no node processed any event"
    exit 1
fi

frames_out=$(metric_sum muppet_transport_frames_out_total)
frames_in=$(metric_sum muppet_transport_frames_in_total)
if [ "$frames_out" -eq 0 ] || [ "$frames_out" -ne "$frames_in" ]; then
    echo "FAIL: cross-node delivery counters do not reconcile: $frames_out frames written, $frames_in served"
    exit 1
fi
echo "ok: /metrics up on 3 nodes; $frames_out cross-node frames written = $frames_in served"

# Durable restart: kill the node that owns the Target slate, restart it
# on the same data directory, and assert the fresh process serves the
# pre-crash count straight off its own LSM files — no events are
# re-ingested and the replay log is off, so disk is the only possible
# source.
owner=""
for i in 0 1 2; do
    if curl -sf "127.0.0.1:$((hbase + i))/slate/U1/Target" >/dev/null 2>&1; then
        owner=$i
        break
    fi
done
if [ -z "$owner" ]; then
    echo "FAIL: no node owns the Target slate"; exit 1
fi
sleep 0.5 # let the 100ms interval flusher persist the slate
kill "${nodepid[$owner]}"
wait "${nodepid[$owner]}" 2>/dev/null || true
start_node "$owner" "node$owner-restarted.log"

got=""
for _ in $(seq 1 100); do
    got=$(curl -sf "127.0.0.1:$((hbase + owner))/slate/U1/Target" 2>/dev/null) || got=""
    if [ "$got" = "5" ]; then
        break
    fi
    sleep 0.1
done
if [ "$got" != "5" ]; then
    echo "FAIL: node $owner lost the Target slate across restart (got: ${got:-none})"
    cat "$workdir/node$owner-restarted.log"
    exit 1
fi
echo "ok: node $owner restarted on its data dir and served count(Target) = 5 from disk"

# Pushdown phase: a second 3-node cluster runs the httphits app, whose
# per-section counters give an unbounded key space. 300 single-hit pad
# sections plus three hot ones make the saving measurable: the top-3
# query ships 3-group partials to the coordinator while a fetch-all
# must ship every slate. Queries run while pad ingest is still
# streaming in — the hot-section counts must be exact regardless.
base2=$((base + 10))
hbase2=$((hbase + 10))
cat > "$workdir/cluster2.json" <<EOF
{
  "nodes": {
    "machine-00": "127.0.0.1:$base2",
    "machine-01": "127.0.0.1:$((base2 + 1))",
    "machine-02": "127.0.0.1:$((base2 + 2))"
  },
  "retry_backoff": "20ms"
}
EOF
for i in 0 1 2; do
    "$workdir/muppet" -app httphits -node "machine-0$i" -join "$workdir/cluster2.json" \
        -http "127.0.0.1:$((hbase2 + i))" -events 0 -linger 120s \
        -data-dir "$workdir/data2" \
        > "$workdir/hits$i.log" 2>&1 &
    pids+=($!)
done
for i in 0 1 2; do
    for _ in $(seq 1 100); do
        if curl -sf "127.0.0.1:$((hbase2 + i))/status" 2>/dev/null | grep -q '"transport":"tcp"'; then
            continue 2
        fi
        sleep 0.1
    done
    echo "FAIL: httphits node $i never came up"; cat "$workdir/hits$i.log"; exit 1
done

# hits SECTION COUNT: POST that many requests for one site section.
hits() {
    local section=$1 count=$2 events="" j
    for j in $(seq 1 "$count"); do
        events+="{\"stream\":\"S1\",\"key\":\"h$j\",\"value\":\"/$section/page$j\"},"
    done
    curl -sf -X POST "127.0.0.1:$hbase2/ingest" \
        -H 'Content-Type: application/json' -d "[${events%,}]" > /dev/null
}
hits alpha 10
hits beta  6
hits gamma 5

# topk_exact LABEL: one top-3 query must rank alpha=10, beta=6,
# gamma=5 in the q variable set by the caller.
topk_exact() {
    local label=$1 want key sum
    for want in 'alpha;"sum":10' 'beta;"sum":6' 'gamma;"sum":5'; do
        IFS=';' read -r key sum <<< "$want"
        if ! grep "\"key\":\"$key\"" <<< "$q" | grep -qF "$sum"; then
            echo "FAIL: $label topk lost section $key $sum: $q"; exit 1
        fi
    done
}

# Wait for the hot sections to converge to their exact counts.
q=""
for _ in $(seq 1 100); do
    q=$("$workdir/slatectl" -addr "127.0.0.1:$hbase2" query -stream U_hits -topk 3 -by count)
    if grep -q '"sum":10' <<< "$q" && grep -q '"sum":6' <<< "$q" && grep -q '"sum":5' <<< "$q"; then
        break
    fi
    sleep 0.1
done
topk_exact converged

# Stream the 300 pad sections in the background and query while they
# land: each pad scores 1, so the converged 10/6/5 top-3 must stay
# exact in every instantaneous answer.
pad_events=""
for j in $(seq 1 300); do
    pad_events+="{\"stream\":\"S1\",\"key\":\"p$j\",\"value\":\"/pad$j/x\"},"
done
curl -sf -X POST "127.0.0.1:$hbase2/ingest" \
    -H 'Content-Type: application/json' -d "[${pad_events%,}]" > /dev/null &
padpid=$!
q=$("$workdir/slatectl" -addr "127.0.0.1:$hbase2" query -stream U_hits -topk 3 -by count)
topk_exact mid-ingest
wait "$padpid"
echo "ok: top-3 sections exact (alpha=10 beta=6 gamma=5) during streaming pad ingest"

# Settle, then assert the pushdown saving: the coordinator's received
# partial-result bytes must be smaller than fetching all ~303 slates.
q=""
for _ in $(seq 1 100); do
    q=$("$workdir/slatectl" -addr "127.0.0.1:$hbase2" query -stream U_hits -topk 3 -by count)
    if grep -q '"rows_scanned":30[3-9]' <<< "$q"; then
        break
    fi
    sleep 0.1
done
echo "$q" | tail -1
wire=$(grep -o '"wire_bytes":[0-9]*' <<< "$q" | cut -d: -f2)
if [ -z "$wire" ] || [ "$wire" -eq 0 ]; then
    echo "FAIL: query stats carry no wire bytes: $q"; exit 1
fi
fetchall=0
for i in 0 1 2; do
    bytes=$(curl -sf "127.0.0.1:$((hbase2 + i))/slates/U_hits" | wc -c)
    fetchall=$((fetchall + bytes))
done
if [ "$wire" -ge "$fetchall" ]; then
    echo "FAIL: pushdown saved nothing: $wire wire bytes vs $fetchall fetch-all bytes"; exit 1
fi
echo "ok: pushdown shipped $wire bytes to the coordinator vs $fetchall fetch-all bytes"

echo "tcp smoke: 3-process cluster converged with zero lost updates, survived a node restart, and answered cluster-wide queries with pushdown"
