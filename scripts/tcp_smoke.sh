#!/usr/bin/env bash
# Multi-process TCP smoke test: a three-node muppet cluster on
# localhost runs the retailer application end to end. Each node is a
# real OS process hosting one machine; inter-machine deliveries cross
# real TCP sockets. Checkins are ingested at every node and the
# per-retailer counts are asserted exact — zero lost updates.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
    kill "${pids[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/muppet" ./cmd/muppet

base=${SMOKE_BASE_PORT:-17070}
hbase=$((base + 1000))
cat > "$workdir/cluster.json" <<EOF
{
  "nodes": {
    "machine-00": "127.0.0.1:$base",
    "machine-01": "127.0.0.1:$((base + 1))",
    "machine-02": "127.0.0.1:$((base + 2))"
  },
  "retry_backoff": "20ms"
}
EOF

for i in 0 1 2; do
    "$workdir/muppet" -app retailer -node "machine-0$i" -join "$workdir/cluster.json" \
        -http "127.0.0.1:$((hbase + i))" -events 0 -linger 120s \
        > "$workdir/node$i.log" 2>&1 &
    pids+=($!)
done

# Wait until every node's HTTP API answers and reports the TCP transport.
for i in 0 1 2; do
    for _ in $(seq 1 100); do
        if curl -sf "127.0.0.1:$((hbase + i))/status" 2>/dev/null | grep -q '"transport":"tcp"'; then
            continue 2
        fi
        sleep 0.1
    done
    echo "FAIL: node $i never came up"; cat "$workdir/node$i.log"; exit 1
done
echo "3 nodes up: $(curl -sf "127.0.0.1:$hbase/status" | tr -d '\n')"

# ingest NODE VENUE COUNT: POST checkins to one node, assert all accepted.
ingest() {
    local node=$1 venue=$2 count=$3 events="" j
    for j in $(seq 1 "$count"); do
        events+="{\"stream\":\"S1\",\"key\":\"u$j\",\"value\":\"{\\\"id\\\":$j,\\\"user\\\":\\\"u$j\\\",\\\"venue\\\":\\\"$venue\\\"}\"},"
    done
    local reply
    reply=$(curl -sf -X POST "127.0.0.1:$((hbase + node))/ingest" \
        -H 'Content-Type: application/json' -d "[${events%,}]")
    if ! grep -q "\"accepted\":$count" <<< "$reply"; then
        echo "FAIL: node $node accepted fewer than $count: $reply"; exit 1
    fi
}

# Spread the load: every node ingests, so whichever machines own the
# three retailer keys, sends cross the network in multiple directions.
ingest 0 "Walmart Supercenter" 4
ingest 1 "wal-mart"            3
ingest 2 "WALMART"             3
ingest 0 "sams club"           2
ingest 1 "Sam's Club"          4
ingest 2 "Target"              5

# expect RETAILER COUNT: the owning node's slate must converge to the
# exact count; the other nodes answer 404 from their local stores.
expect() {
    local retailer=$1 want=$2 path got i
    path=$(printf '%s' "$retailer" | sed 's/ /%20/g')
    for _ in $(seq 1 100); do
        for i in 0 1 2; do
            got=$(curl -sf "127.0.0.1:$((hbase + i))/slate/U1/$path" 2>/dev/null) || continue
            if [ "$got" = "$want" ]; then
                echo "ok: count($retailer) = $want (answered by node $i)"
                return 0
            fi
        done
        sleep 0.1
    done
    echo "FAIL: count($retailer) never reached $want (last seen: ${got:-none})"
    exit 1
}

expect "Walmart"    10
expect "Sam's Club" 6
expect "Target"     5

echo "tcp smoke: 3-process cluster converged with zero lost updates"
