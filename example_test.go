package muppet_test

import (
	"fmt"
	"strconv"

	"muppet"
)

// Example demonstrates the smallest complete MapUpdate application: a
// per-key counter whose slates are queryable while the stream flows.
func Example() {
	count := muppet.UpdateFunc{FName: "U_count", Fn: func(emit muppet.Emitter, in muppet.Event, sl []byte) {
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	app := muppet.NewApp("counts").Input("S1")
	app.AddUpdate(count, []string{"S1"}, nil, 0)

	eng, err := muppet.NewEngine(app, muppet.Config{Machines: 2})
	if err != nil {
		panic(err)
	}
	defer eng.Stop()

	for i := 0; i < 3; i++ {
		eng.Ingest(muppet.Event{Stream: "S1", TS: muppet.Timestamp(i + 1), Key: "walmart"})
	}
	eng.Drain()
	fmt.Println(string(eng.Slate("U_count", "walmart")))
	// Output: 3
}

// ExampleNewApp shows a two-stage workflow: a map function fanning a
// line out into words, and an update function counting them — the
// MapReduce feel the paper preserves for streams.
func ExampleNewApp() {
	split := muppet.MapFunc{FName: "M_split", Fn: func(emit muppet.Emitter, in muppet.Event) {
		for _, w := range []string{"to", "be", "or", "not", "to", "be"} {
			emit.Publish("words", w, nil)
		}
	}}
	count := muppet.UpdateFunc{FName: "U_count", Fn: func(emit muppet.Emitter, in muppet.Event, sl []byte) {
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	app := muppet.NewApp("wordcount").
		Input("lines").
		AddMap(split, []string{"lines"}, []string{"words"}).
		AddUpdate(count, []string{"words"}, nil, 0)

	eng, err := muppet.NewEngine(app, muppet.Config{Machines: 1})
	if err != nil {
		panic(err)
	}
	defer eng.Stop()
	eng.Ingest(muppet.Event{Stream: "lines", TS: 1, Key: "line1"})
	eng.Drain()
	fmt.Println(string(eng.Slate("U_count", "to")), string(eng.Slate("U_count", "be")), string(eng.Slate("U_count", "or")))
	// Output: 2 2 1
}

// ExampleNewStore shows slates persisting to the replicated key-value
// store and surviving an engine restart — the Section 4.2 durability
// story.
func ExampleNewStore() {
	store := muppet.NewStore(muppet.StoreConfig{Nodes: 3, ReplicationFactor: 3, NoDevice: true})
	count := muppet.UpdateFunc{FName: "U", Fn: func(emit muppet.Emitter, in muppet.Event, sl []byte) {
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	mkApp := func() *muppet.App {
		app := muppet.NewApp("durable").Input("S1")
		app.AddUpdate(count, []string{"S1"}, nil, 0)
		return app
	}
	cfg := muppet.Config{Machines: 2, Store: store, StoreLevel: muppet.Quorum, FlushPolicy: muppet.WriteThrough}

	eng1, _ := muppet.NewEngine(mkApp(), cfg)
	eng1.Ingest(muppet.Event{Stream: "S1", TS: 1, Key: "k"})
	eng1.Ingest(muppet.Event{Stream: "S1", TS: 2, Key: "k"})
	eng1.Drain()
	eng1.Stop()

	// A fresh engine on the same store resumes where the first left
	// off.
	eng2, _ := muppet.NewEngine(mkApp(), cfg)
	defer eng2.Stop()
	eng2.Ingest(muppet.Event{Stream: "S1", TS: 3, Key: "k"})
	eng2.Drain()
	fmt.Println(string(eng2.Slate("U", "k")))
	// Output: 3
}
