package muppet_test

import (
	"context"
	"fmt"
	"strconv"

	"muppet"
)

// Example demonstrates the smallest complete MapUpdate application: a
// per-key counter — written against the typed slate API, where the
// slate is a live Go value mutated in place — whose slates are
// queryable while the stream flows.
func Example() {
	count := muppet.Update[int]("U_count", func(emit muppet.Emitter, in muppet.Event, n *int) {
		*n++
	})
	app := muppet.NewApp("counts").Input("S1")
	app.AddUpdate(count, []string{"S1"}, nil, 0)

	eng, err := muppet.NewEngine(app, muppet.Config{Machines: 2})
	if err != nil {
		panic(err)
	}
	defer eng.Stop()

	for i := 0; i < 3; i++ {
		eng.Ingest(muppet.Event{Stream: "S1", TS: muppet.Timestamp(i + 1), Key: "walmart"})
	}
	eng.Drain()
	fmt.Println(string(eng.Slate("U_count", "walmart")))
	// Output: 3
}

// ExampleUpdate shows a struct slate on the typed API: the object is
// decoded once when it enters the slate cache, every event after that
// mutates it in place, and the JSON encoding is produced only when the
// slate is flushed or read — never per event.
func ExampleUpdate() {
	type SectionStats struct {
		Hits int    `json:"hits"`
		Last string `json:"last"`
	}
	stats := muppet.Update[SectionStats]("U_stats", func(emit muppet.Emitter, in muppet.Event, s *SectionStats) {
		s.Hits++
		s.Last = string(in.Value)
	})
	app := muppet.NewApp("stats").Input("requests")
	app.AddUpdate(stats, []string{"requests"}, nil, 0)

	eng, err := muppet.NewEngine(app, muppet.Config{Machines: 1})
	if err != nil {
		panic(err)
	}
	defer eng.Stop()

	eng.Ingest(muppet.Event{Stream: "requests", TS: 1, Key: "cart", Value: []byte("/cart")})
	eng.Ingest(muppet.Event{Stream: "requests", TS: 2, Key: "cart", Value: []byte("/cart/checkout")})
	eng.Drain()
	fmt.Println(string(eng.Slate("U_stats", "cart")))
	// Output: {"hits":2,"last":"/cart/checkout"}
}

// ExampleNewApp shows a two-stage workflow: a map function fanning a
// line out into words, and a typed update function counting them — the
// MapReduce feel the paper preserves for streams.
func ExampleNewApp() {
	split := muppet.MapFunc{FName: "M_split", Fn: func(emit muppet.Emitter, in muppet.Event) {
		for _, w := range []string{"to", "be", "or", "not", "to", "be"} {
			emit.Publish("words", w, nil)
		}
	}}
	count := muppet.Update[int]("U_count", func(emit muppet.Emitter, in muppet.Event, n *int) {
		*n++
	})
	app := muppet.NewApp("wordcount").
		Input("lines").
		AddMap(split, []string{"lines"}, []string{"words"}).
		AddUpdate(count, []string{"words"}, nil, 0)

	eng, err := muppet.NewEngine(app, muppet.Config{Machines: 1})
	if err != nil {
		panic(err)
	}
	defer eng.Stop()
	eng.Ingest(muppet.Event{Stream: "lines", TS: 1, Key: "line1"})
	eng.Drain()
	fmt.Println(string(eng.Slate("U_count", "to")), string(eng.Slate("U_count", "be")), string(eng.Slate("U_count", "or")))
	// Output: 2 2 1
}

// ExampleUpdateFunc shows the classic byte-slate API, which remains
// fully supported with unchanged semantics: the function receives the
// raw slate bytes and replaces them explicitly.
func ExampleUpdateFunc() {
	count := muppet.UpdateFunc{FName: "U_count", Fn: func(emit muppet.Emitter, in muppet.Event, sl []byte) {
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	app := muppet.NewApp("counts").Input("S1")
	app.AddUpdate(count, []string{"S1"}, nil, 0)

	eng, err := muppet.NewEngine(app, muppet.Config{Machines: 1})
	if err != nil {
		panic(err)
	}
	defer eng.Stop()
	eng.Ingest(muppet.Event{Stream: "S1", TS: 1, Key: "k"})
	eng.Ingest(muppet.Event{Stream: "S1", TS: 2, Key: "k"})
	eng.Drain()
	fmt.Println(string(eng.Slate("U_count", "k")))
	// Output: 2
}

// ExampleNewStore shows slates persisting to the replicated key-value
// store and surviving an engine restart — the Section 4.2 durability
// story. Typed slates are stored as plain codec output (here JSON), so
// a restarted engine decodes them straight back into live objects.
func ExampleNewStore() {
	store := muppet.NewStore(muppet.StoreConfig{Nodes: 3, ReplicationFactor: 3, NoDevice: true})
	count := muppet.Update[int]("U", func(emit muppet.Emitter, in muppet.Event, n *int) {
		*n++
	})
	mkApp := func() *muppet.App {
		app := muppet.NewApp("durable").Input("S1")
		app.AddUpdate(count, []string{"S1"}, nil, 0)
		return app
	}
	cfg := muppet.Config{Machines: 2, Store: store, StoreLevel: muppet.Quorum, FlushPolicy: muppet.WriteThrough}

	eng1, _ := muppet.NewEngine(mkApp(), cfg)
	eng1.Ingest(muppet.Event{Stream: "S1", TS: 1, Key: "k"})
	eng1.Ingest(muppet.Event{Stream: "S1", TS: 2, Key: "k"})
	eng1.Drain()
	eng1.Stop()

	// A fresh engine on the same store resumes where the first left
	// off.
	eng2, _ := muppet.NewEngine(mkApp(), cfg)
	defer eng2.Stop()
	eng2.Ingest(muppet.Event{Stream: "S1", TS: 3, Key: "k"})
	eng2.Drain()
	fmt.Println(string(eng2.Slate("U", "k")))
	// Output: 3
}

// ExamplePump shows the streaming ingress/egress surface: a rate-free
// Source pumped through the engine in batches, with a live
// subscription consuming the output stream as it is produced.
func ExamplePump() {
	relay := muppet.MapFunc{FName: "M_relay", Fn: func(emit muppet.Emitter, in muppet.Event) {
		emit.Publish("S2", in.Key, in.Value)
	}}
	app := muppet.NewApp("stream").
		Input("S1").
		Output("S2").
		AddMap(relay, []string{"S1"}, []string{"S2"})

	eng, err := muppet.NewEngine(app, muppet.Config{Machines: 2, OutputCapacity: 1024})
	if err != nil {
		panic(err)
	}

	sub := eng.Subscribe("S2", 1024)
	received := make(chan int)
	go func() {
		n := 0
		for range sub.C() {
			n++
		}
		received <- n
	}()

	i := 0
	src := muppet.Take(muppet.SourceFunc(func() (muppet.Event, bool) {
		i++
		return muppet.Event{Stream: "S1", TS: muppet.Timestamp(i), Key: strconv.Itoa(i)}, true
	}), 500)
	stats, err := muppet.Pump(context.Background(), eng, src, 128)
	if err != nil {
		panic(err)
	}
	eng.Stop() // drains, then closes subscription channels

	fmt.Printf("pumped %d events in %d batches, accepted %d, subscriber saw %d\n",
		stats.Events, stats.Batches, stats.Accepted, <-received)
	// Output: pumped 500 events in 4 batches, accepted 500, subscriber saw 500
}
