package muppet_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"muppet"
)

// Query-subsystem property: a cluster-wide query answer always equals
// a brute-force recomputation over a model map — checked between live
// ingest rounds, while ingest is running, and across a machine crash,
// master-driven failover, and rejoin. Along the way it asserts the two
// scatter-gather failure modes directly: no key returned twice
// (duplicates across node partials) and no dead-lineage rows (slates
// of the crashed machine's keys surviving outside the store overlay).

// queryOracleApp counts events per key with a typed int slate, so the
// at-rest value is the JSON number the query operators aggregate.
func queryOracleApp() *muppet.App {
	u := muppet.Update[int]("U1", func(emit muppet.Emitter, in muppet.Event, n *int) { *n++ })
	return muppet.NewApp("queryprop").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
}

// checkQueryOracle compares scan, range-scan, top-k, count, and sum
// answers against the model. Every spec carries Prefix "k" so the
// sacrificial failover-trigger keys (prefix "z") stay out of scope.
func checkQueryOracle(t *testing.T, eng muppet.Engine, model map[string]int, label string) {
	t.Helper()

	scan, err := eng.Query(muppet.QuerySpec{Updater: "U1", Prefix: "k"})
	if err != nil {
		t.Fatalf("%s: scan: %v", label, err)
	}
	seen := make(map[string]int, len(scan.Rows))
	for _, row := range scan.Rows {
		if _, dup := seen[row.Key]; dup {
			t.Fatalf("%s: scan returned key %q twice (scatter-gather duplicate)", label, row.Key)
		}
		n, err := strconv.Atoi(string(row.Value))
		if err != nil {
			t.Fatalf("%s: row %q has non-numeric value %q: %v", label, row.Key, row.Value, err)
		}
		seen[row.Key] = n
	}
	if len(seen) != len(model) {
		t.Fatalf("%s: scan returned %d keys, brute force finds %d", label, len(seen), len(model))
	}
	for k, want := range model {
		if seen[k] != want {
			t.Fatalf("%s: key %q: query says %d, brute force says %d", label, k, seen[k], want)
		}
	}

	ranged, err := eng.Query(muppet.QuerySpec{Updater: "U1", Start: "k2", End: "k6"})
	if err != nil {
		t.Fatalf("%s: range scan: %v", label, err)
	}
	wantRange := 0
	for k := range model {
		if k >= "k2" && k < "k6" {
			wantRange++
		}
	}
	if len(ranged.Rows) != wantRange {
		t.Fatalf("%s: range scan returned %d rows, brute force finds %d", label, len(ranged.Rows), wantRange)
	}

	const k = 5
	top, err := eng.Query(muppet.QuerySpec{Updater: "U1", Prefix: "k", Agg: "topk", K: k, By: "count"})
	if err != nil {
		t.Fatalf("%s: topk: %v", label, err)
	}
	// The ranking is deterministic (score descending, key ascending on
	// ties), so the expected answer is computable exactly.
	type kc struct {
		key string
		n   int
	}
	want := make([]kc, 0, len(model))
	for key, n := range model {
		want = append(want, kc{key, n})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].n != want[j].n {
			return want[i].n > want[j].n
		}
		return want[i].key < want[j].key
	})
	if len(want) > k {
		want = want[:k]
	}
	if len(top.Groups) != len(want) {
		t.Fatalf("%s: topk returned %d groups, want %d", label, len(top.Groups), len(want))
	}
	for i, g := range top.Groups {
		if g.Key != want[i].key || int(g.Sum) != want[i].n {
			t.Fatalf("%s: topk rank %d = {%s %v}, brute force says {%s %d}", label, i, g.Key, g.Sum, want[i].key, want[i].n)
		}
	}

	count, err := eng.Query(muppet.QuerySpec{Updater: "U1", Prefix: "k", Agg: "count"})
	if err != nil {
		t.Fatalf("%s: count: %v", label, err)
	}
	if len(count.Groups) != 1 || count.Groups[0].Count != uint64(len(model)) {
		t.Fatalf("%s: count groups = %+v, brute force finds %d keys", label, count.Groups, len(model))
	}

	total := 0
	for _, n := range model {
		total += n
	}
	sum, err := eng.Query(muppet.QuerySpec{Updater: "U1", Prefix: "k", Agg: "sum", By: "count"})
	if err != nil {
		t.Fatalf("%s: sum: %v", label, err)
	}
	if len(sum.Groups) != 1 || int(sum.Groups[0].Sum) != total {
		t.Fatalf("%s: sum groups = %+v, brute force totals %d", label, sum.Groups, total)
	}
}

func TestPropertyQueryMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		name    string
		version muppet.EngineVersion
	}{
		{"engine2", muppet.EngineV2},
		{"engine1", muppet.EngineV1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := muppet.NewEngine(queryOracleApp(), muppet.Config{
				Engine:        tc.version,
				Machines:      4,
				QueueCapacity: 1 << 14,
				// Write-through keeps the store exactly current, so a
				// crash loses no acknowledged update and the oracle stays
				// exact across failover.
				FlushPolicy: muppet.WriteThrough,
				Store:       muppet.NewStore(muppet.StoreConfig{Nodes: 3, ReplicationFactor: 3, NoDevice: true}),
				StoreLevel:  muppet.One,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Stop()

			rng := rand.New(rand.NewSource(42))
			model := make(map[string]int)
			ts := 0
			ingestRound := func(n int) {
				t.Helper()
				evs := make([]muppet.Event, 0, n)
				for i := 0; i < n; i++ {
					key := fmt.Sprintf("k%d", rng.Intn(40))
					model[key]++
					ts++
					evs = append(evs, muppet.Event{Stream: "S1", TS: muppet.Timestamp(ts), Key: key})
				}
				if _, err := eng.IngestBatch(evs); err != nil {
					t.Fatalf("ingest: %v", err)
				}
				eng.Drain()
			}

			// Two live rounds: the second round's queries see slates the
			// first round already mutated.
			ingestRound(300)
			checkQueryOracle(t, eng, model, "round-1")
			ingestRound(300)
			checkQueryOracle(t, eng, model, "round-2")

			// Mid-ingest: query concurrently with a live ingest round.
			// Counts are monotonic, so any instantaneous answer must show
			// keys from the model with counts at or below the final value
			// — and never a duplicate key.
			final := make(map[string]int, len(model))
			for k, v := range model {
				final[k] = v
			}
			evs := make([]muppet.Event, 0, 300)
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(40))
				model[key]++
				final[key]++
				ts++
				evs = append(evs, muppet.Event{Stream: "S1", TS: muppet.Timestamp(ts), Key: key})
			}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, ev := range evs {
					eng.Ingest(ev)
				}
			}()
			for i := 0; i < 5; i++ {
				res, err := eng.Query(muppet.QuerySpec{Updater: "U1", Prefix: "k"})
				if err != nil {
					t.Errorf("mid-ingest scan %d: %v", i, err)
					break
				}
				rows := make(map[string]bool, len(res.Rows))
				for _, row := range res.Rows {
					if rows[row.Key] {
						t.Errorf("mid-ingest scan %d: key %q returned twice", i, row.Key)
					}
					rows[row.Key] = true
					n, _ := strconv.Atoi(string(row.Value))
					if max, ok := final[row.Key]; !ok || n > max {
						t.Errorf("mid-ingest scan %d: key %q count %d exceeds final %d", i, row.Key, n, final[row.Key])
					}
				}
			}
			wg.Wait()
			eng.Drain()
			checkQueryOracle(t, eng, model, "mid-ingest-settled")

			// Crash one machine and trigger the master-driven failover
			// with sacrificial out-of-scope events ("z" keys: every query
			// above scans Prefix "k", so whatever happens to them cannot
			// leak into an answer).
			victim := eng.Cluster().MachineNames()[1]
			eng.CrashMachine(victim)
			deadline := time.Now().Add(15 * time.Second)
			for i := 0; eng.RecoveryStatus().Failovers == 0; i++ {
				if time.Now().After(deadline) {
					t.Fatal("failover never completed after crash")
				}
				ts++
				eng.Ingest(muppet.Event{Stream: "S1", TS: muppet.Timestamp(ts), Key: fmt.Sprintf("z%d", i%8)})
				time.Sleep(time.Millisecond)
			}
			eng.Drain()
			// The dead machine's keys must be served exactly once by
			// their new owners, from the store overlay: same answer, no
			// dead-lineage rows, no duplicates.
			checkQueryOracle(t, eng, model, "post-failover")
			ingestRound(200)
			checkQueryOracle(t, eng, model, "post-failover-ingest")

			if _, err := eng.RejoinMachine(victim); err != nil {
				t.Fatalf("rejoin %s: %v", victim, err)
			}
			ingestRound(200)
			checkQueryOracle(t, eng, model, "post-rejoin")
		})
	}
}
