package muppet

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// The paper: "To write a MapUpdate application, a developer writes the
// necessary map and update functions, then a configuration file that
// includes the workflow graph." This file implements that
// configuration file: a JSON document naming the application, its
// external input and output streams, every map and update function
// with its subscriptions and declared output streams, the engine
// settings, and the slate-store settings (the paper's "configuration
// file identifies a Cassandra cluster ... a key space ... and a column
// family").
//
// Function code is registered under string names in a Registry and
// referenced from the file, mirroring how Muppet instantiates
// application-provided classes by name (Appendix A).

// AppConfig is the JSON shape of an application configuration file.
type AppConfig struct {
	// Name is the application name.
	Name string `json:"name"`
	// Inputs are the external input streams.
	Inputs []string `json:"inputs"`
	// Outputs are the declared output streams.
	Outputs []string `json:"outputs,omitempty"`
	// Functions are the workflow nodes.
	Functions []FunctionConfig `json:"functions"`
	// Engine holds engine settings.
	Engine EngineConfig `json:"engine"`
	// Store holds slate-store settings; omit to run without
	// persistence.
	Store *StoreFileConfig `json:"store,omitempty"`
	// Network holds the static member list of a real networked cluster;
	// omit to run the single-process simulation. Every node of the
	// cluster shares one file — which machine THIS process hosts is
	// picked per node (cmd/muppet: the -node flag).
	Network *NetworkFileConfig `json:"network,omitempty"`
}

// NetworkFileConfig is the network section of a configuration file: the
// full static member list of a real TCP cluster, each machine mapped to
// the address its node listens on.
type NetworkFileConfig struct {
	// Nodes maps every member machine name to its node's host:port.
	// Unlike NetworkConfig.Peers this includes the local machine — the
	// same file is shipped to every node, and BuildNetwork carves out
	// the local entry as the listen address.
	Nodes map[string]string `json:"nodes"`
	// DialTimeout, IOTimeout, RetryBackoff and MaxBackoff are Go
	// durations ("500ms"); empty picks the transport defaults.
	DialTimeout  string `json:"dial_timeout,omitempty"`
	IOTimeout    string `json:"io_timeout,omitempty"`
	RetryBackoff string `json:"retry_backoff,omitempty"`
	MaxBackoff   string `json:"max_backoff,omitempty"`
	// SendRetries is the delivery attempts per remote batch including
	// the first (default 3; 1 disables retry); SendRetryBackoff and
	// SendRetryMaxBackoff are Go durations tuning the jittered doubling
	// pause between attempts (defaults 5ms / 100ms).
	SendRetries         int    `json:"send_retries,omitempty"`
	SendRetryBackoff    string `json:"send_retry_backoff,omitempty"`
	SendRetryMaxBackoff string `json:"send_retry_max_backoff,omitempty"`
	// DedupWindow is the receiver-side per-sender dedup window in
	// batches (default 4096; negative disables).
	DedupWindow int `json:"dedup_window,omitempty"`
	// Chaos, when present, wraps the node's transport in the seeded
	// fault injector — a soak/testing facility, not for production.
	Chaos *ChaosFileConfig `json:"chaos,omitempty"`
}

// ChaosFileConfig is the chaos section of a configuration file: the
// fault-injection probabilities (0..1), the determinism seed, and the
// scripted partition windows.
type ChaosFileConfig struct {
	Seed        uint64  `json:"seed,omitempty"`
	FlakyDial   float64 `json:"flaky_dial,omitempty"`
	DropRequest float64 `json:"drop_request,omitempty"`
	// DropResponse injects indeterminate faults (the batch lands, the
	// answer is lost); it is bounded per delivery by MaxFaults so the
	// sender's retry budget always outlasts it.
	DropResponse float64 `json:"drop_response,omitempty"`
	Duplicate    float64 `json:"duplicate,omitempty"`
	Delay        float64 `json:"delay,omitempty"`
	// MaxDelay is a Go duration ("2ms") bounding injected delays.
	MaxDelay string `json:"max_delay,omitempty"`
	// MaxFaults caps the faults injected against one delivery's
	// attempts (default 1).
	MaxFaults int `json:"max_faults,omitempty"`
	// Partitions scripts one-way partition windows: sends to Machine
	// fail while its per-destination attempt count is in [from, to).
	Partitions []ChaosPartitionFileConfig `json:"partitions,omitempty"`
}

// ChaosPartitionFileConfig is one scripted partition window.
type ChaosPartitionFileConfig struct {
	Machine string `json:"machine"`
	From    uint64 `json:"from"`
	To      uint64 `json:"to"`
}

// build resolves the chaos section into a ChaosConfig.
func (c *ChaosFileConfig) build() (*ChaosConfig, error) {
	cfg := &ChaosConfig{
		Seed:                 c.Seed,
		FlakyDial:            c.FlakyDial,
		DropRequest:          c.DropRequest,
		DropResponse:         c.DropResponse,
		Duplicate:            c.Duplicate,
		Delay:                c.Delay,
		MaxFaultsPerDelivery: c.MaxFaults,
	}
	if c.MaxDelay != "" {
		d, err := time.ParseDuration(c.MaxDelay)
		if err != nil {
			return nil, fmt.Errorf("muppet: chaos config: bad max_delay %q: %w", c.MaxDelay, err)
		}
		cfg.MaxDelay = d
	}
	for _, p := range c.Partitions {
		cfg.Partitions = append(cfg.Partitions, ChaosPartition{Machine: p.Machine, From: p.From, To: p.To})
	}
	return cfg, nil
}

// BuildNetwork resolves the network section into the NetworkConfig for
// the node hosting the given machine: its own entry becomes the listen
// address (overridden by listen when non-empty, e.g. to bind ":0" or
// "0.0.0.0:port" while peers dial a routable name), every other entry
// becomes a peer.
func (n *NetworkFileConfig) BuildNetwork(node, listen string) (*NetworkConfig, error) {
	addr, ok := n.Nodes[node]
	if !ok {
		return nil, fmt.Errorf("muppet: network config: machine %q is not in the member list", node)
	}
	if listen == "" {
		listen = addr
	}
	peers := make(map[string]string, len(n.Nodes)-1)
	for name, a := range n.Nodes {
		if name != node {
			peers[name] = a
		}
	}
	cfg := &NetworkConfig{
		Node:        node,
		Listen:      listen,
		Peers:       peers,
		SendRetries: n.SendRetries,
		DedupWindow: n.DedupWindow,
	}
	for _, d := range []struct {
		s   string
		dst *time.Duration
	}{
		{n.DialTimeout, &cfg.DialTimeout},
		{n.IOTimeout, &cfg.IOTimeout},
		{n.RetryBackoff, &cfg.RetryBackoff},
		{n.MaxBackoff, &cfg.MaxBackoff},
		{n.SendRetryBackoff, &cfg.SendRetryBackoff},
		{n.SendRetryMaxBackoff, &cfg.SendRetryMaxBackoff},
	} {
		if d.s == "" {
			continue
		}
		v, err := time.ParseDuration(d.s)
		if err != nil {
			return nil, fmt.Errorf("muppet: network config: bad duration %q: %w", d.s, err)
		}
		*d.dst = v
	}
	if n.Chaos != nil {
		ch, err := n.Chaos.build()
		if err != nil {
			return nil, err
		}
		cfg.Chaos = ch
	}
	return cfg, nil
}

// FunctionConfig describes one map or update function in the file.
type FunctionConfig struct {
	// Kind is "map" or "update".
	Kind string `json:"kind"`
	// Name is the function's unique workflow name.
	Name string `json:"name"`
	// Code names the registered implementation; it defaults to Name.
	// The same code can be reused as different functions, each
	// identified by its unique name (Appendix A).
	Code string `json:"code,omitempty"`
	// Subscribes and Publishes are the workflow edges.
	Subscribes []string `json:"subscribes"`
	Publishes  []string `json:"publishes,omitempty"`
	// TTL is the slate time-to-live for update functions, in Go
	// duration syntax ("72h"); empty means forever.
	TTL string `json:"ttl,omitempty"`
}

// EngineConfig is the engine section of a configuration file.
type EngineConfig struct {
	// Version is 1 or 2 (default 2).
	Version int `json:"version,omitempty"`
	// Machines, WorkersPerFunction, ThreadsPerMachine, QueueCapacity
	// and CacheCapacity mirror Config fields.
	Machines           int `json:"machines,omitempty"`
	WorkersPerFunction int `json:"workers_per_function,omitempty"`
	ThreadsPerMachine  int `json:"threads_per_machine,omitempty"`
	QueueCapacity      int `json:"queue_capacity,omitempty"`
	CacheCapacity      int `json:"cache_capacity,omitempty"`
	// OutputCapacity bounds the events retained per output stream for
	// Output() polling; zero retains everything.
	OutputCapacity int `json:"output_capacity,omitempty"`
	// QueuePolicy is "drop", "divert" or "block".
	QueuePolicy    string `json:"queue_policy,omitempty"`
	OverflowStream string `json:"overflow_stream,omitempty"`
	// FlushPolicy is "write-through", "interval" or "on-evict";
	// FlushEvery is a duration for the interval policy.
	FlushPolicy string `json:"flush_policy,omitempty"`
	FlushEvery  string `json:"flush_every,omitempty"`
	// SourceThrottle enables wait-and-retry ingestion.
	SourceThrottle bool `json:"source_throttle,omitempty"`
	// ReplayLog enables the event replay log (engine 2): failover then
	// redelivers a dead machine's unacknowledged events.
	ReplayLog bool `json:"replay_log,omitempty"`
	// Tracing enables the sampled event-lifecycle tracer feeding the
	// muppet_trace_* latency histograms; TraceSampleRate traces one in
	// N deliveries (default 256).
	Tracing         bool `json:"tracing,omitempty"`
	TraceSampleRate int  `json:"trace_sample_rate,omitempty"`
	// Recovery holds the recovery-subsystem knobs; omit for defaults
	// (detector, WAL replay, and rejoin warm-up all enabled).
	Recovery *RecoveryFileConfig `json:"recovery,omitempty"`
}

// RecoveryFileConfig is the recovery section of a configuration file.
type RecoveryFileConfig struct {
	// DisableDetector stops failed sends from being reported to the
	// master (failures then go unnoticed until an operator reports
	// them).
	DisableDetector bool `json:"disable_detector,omitempty"`
	// DisableWALReplay skips slate group-commit WAL replay on failover.
	DisableWALReplay bool `json:"disable_wal_replay,omitempty"`
	// DisableRejoinWarm skips slate-cache warm-up when a machine
	// rejoins.
	DisableRejoinWarm bool `json:"disable_rejoin_warm,omitempty"`
	// WarmLimit bounds the slates pre-loaded per rejoin (default
	// 10000).
	WarmLimit int `json:"warm_limit,omitempty"`
	// SuspicionK is the consecutive exhausted-retry send failures that
	// confirm a machine down (default 3; 1 escalates on the first).
	SuspicionK int `json:"suspicion_k,omitempty"`
	// SuspicionWindow is a Go duration ("10s"): a suspicion run that
	// does not confirm within it restarts from the next failure.
	SuspicionWindow string `json:"suspicion_window,omitempty"`
}

// StoreFileConfig is the store section of a configuration file.
type StoreFileConfig struct {
	Nodes             int `json:"nodes,omitempty"`
	ReplicationFactor int `json:"replication_factor,omitempty"`
	// Consistency is "one", "quorum" or "all".
	Consistency string `json:"consistency,omitempty"`
	// Device is "ssd", "hdd" or "none".
	Device string `json:"device,omitempty"`
	// Dir, when set, makes the store durable: each node persists its
	// rows in an LSM engine under a per-node subdirectory of Dir and
	// recovers them when reopened on the same path. Empty keeps the
	// store purely in-memory.
	Dir string `json:"dir,omitempty"`
}

// Registry maps code names to function constructors, the equivalent of
// the class loading in Appendix A. Constructors receive the function's
// unique workflow name.
type Registry struct {
	mappers  map[string]func(name string) Mapper
	updaters map[string]func(name string) Updater
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		mappers:  make(map[string]func(string) Mapper),
		updaters: make(map[string]func(string) Updater),
	}
}

// RegisterMapper registers map-function code under a name.
func (r *Registry) RegisterMapper(code string, ctor func(name string) Mapper) {
	r.mappers[code] = ctor
}

// RegisterUpdater registers update-function code under a name.
func (r *Registry) RegisterUpdater(code string, ctor func(name string) Updater) {
	r.updaters[code] = ctor
}

// Codes lists the registered code names, mappers then updaters, each
// sorted.
func (r *Registry) Codes() (mappers, updaters []string) {
	for c := range r.mappers {
		mappers = append(mappers, c)
	}
	for c := range r.updaters {
		updaters = append(updaters, c)
	}
	sort.Strings(mappers)
	sort.Strings(updaters)
	return mappers, updaters
}

// ParseAppConfig decodes a configuration file's bytes.
func ParseAppConfig(data []byte) (*AppConfig, error) {
	var cfg AppConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("muppet: parse app config: %w", err)
	}
	return &cfg, nil
}

// LoadAppConfig reads and decodes a configuration file.
func LoadAppConfig(path string) (*AppConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("muppet: read app config: %w", err)
	}
	return ParseAppConfig(data)
}

// Build instantiates the application graph and engine configuration
// from the file, resolving function code through the registry. The
// returned App is validated.
func (c *AppConfig) Build(reg *Registry) (*App, Config, error) {
	app := NewApp(c.Name)
	app.Input(c.Inputs...)
	app.Output(c.Outputs...)
	for _, f := range c.Functions {
		code := f.Code
		if code == "" {
			code = f.Name
		}
		var ttl time.Duration
		if f.TTL != "" {
			var err error
			if ttl, err = time.ParseDuration(f.TTL); err != nil {
				return nil, Config{}, fmt.Errorf("muppet: function %s: bad ttl %q: %w", f.Name, f.TTL, err)
			}
		}
		switch f.Kind {
		case "map":
			ctor := reg.mappers[code]
			if ctor == nil {
				return nil, Config{}, fmt.Errorf("muppet: no registered mapper code %q (function %s)", code, f.Name)
			}
			app.AddMap(ctor(f.Name), f.Subscribes, f.Publishes)
		case "update":
			ctor := reg.updaters[code]
			if ctor == nil {
				return nil, Config{}, fmt.Errorf("muppet: no registered updater code %q (function %s)", code, f.Name)
			}
			app.AddUpdate(ctor(f.Name), f.Subscribes, f.Publishes, ttl)
		default:
			return nil, Config{}, fmt.Errorf("muppet: function %s: kind must be \"map\" or \"update\", got %q", f.Name, f.Kind)
		}
	}
	if err := app.Validate(); err != nil {
		return nil, Config{}, err
	}
	ecfg, err := c.engineConfig()
	if err != nil {
		return nil, Config{}, err
	}
	return app, ecfg, nil
}

func (c *AppConfig) engineConfig() (Config, error) {
	e := c.Engine
	cfg := Config{
		Machines:           e.Machines,
		WorkersPerFunction: e.WorkersPerFunction,
		ThreadsPerMachine:  e.ThreadsPerMachine,
		QueueCapacity:      e.QueueCapacity,
		CacheCapacity:      e.CacheCapacity,
		OutputCapacity:     e.OutputCapacity,
		OverflowStream:     e.OverflowStream,
		SourceThrottle:     e.SourceThrottle,
		ReplayLog:          e.ReplayLog,
		Observability: ObservabilityConfig{
			Tracing:    e.Tracing,
			SampleRate: e.TraceSampleRate,
		},
	}
	if r := e.Recovery; r != nil {
		cfg.Recovery = RecoveryConfig{
			DisableDetector:   r.DisableDetector,
			DisableWALReplay:  r.DisableWALReplay,
			DisableRejoinWarm: r.DisableRejoinWarm,
			WarmLimit:         r.WarmLimit,
			SuspicionK:        r.SuspicionK,
		}
		if r.SuspicionWindow != "" {
			d, err := time.ParseDuration(r.SuspicionWindow)
			if err != nil {
				return Config{}, fmt.Errorf("muppet: bad suspicion_window %q: %w", r.SuspicionWindow, err)
			}
			cfg.Recovery.SuspicionWindow = d
		}
	}
	switch e.Version {
	case 0, 2:
		cfg.Engine = EngineV2
	case 1:
		cfg.Engine = EngineV1
	default:
		return Config{}, fmt.Errorf("muppet: engine version must be 1 or 2, got %d", e.Version)
	}
	switch e.QueuePolicy {
	case "", "drop":
		cfg.QueuePolicy = DropOverflow
	case "divert":
		cfg.QueuePolicy = DivertOverflow
	case "block":
		cfg.QueuePolicy = BlockOverflow
	default:
		return Config{}, fmt.Errorf("muppet: unknown queue policy %q", e.QueuePolicy)
	}
	switch e.FlushPolicy {
	case "", "write-through":
		cfg.FlushPolicy = WriteThrough
	case "interval":
		cfg.FlushPolicy = FlushInterval
	case "on-evict":
		cfg.FlushPolicy = FlushOnEvict
	default:
		return Config{}, fmt.Errorf("muppet: unknown flush policy %q", e.FlushPolicy)
	}
	if e.FlushEvery != "" {
		d, err := time.ParseDuration(e.FlushEvery)
		if err != nil {
			return Config{}, fmt.Errorf("muppet: bad flush_every %q: %w", e.FlushEvery, err)
		}
		cfg.FlushEvery = d
	}
	if c.Store != nil {
		s := *c.Store
		scfg := StoreConfig{Nodes: s.Nodes, ReplicationFactor: s.ReplicationFactor, Dir: s.Dir}
		switch s.Device {
		case "", "ssd":
			scfg.UseSSD = true
		case "hdd":
		case "none":
			scfg.NoDevice = true
		default:
			return Config{}, fmt.Errorf("muppet: unknown store device %q", s.Device)
		}
		store, err := OpenStore(scfg)
		if err != nil {
			return Config{}, fmt.Errorf("muppet: open store: %w", err)
		}
		cfg.Store = store
		switch s.Consistency {
		case "one":
			cfg.StoreLevel = One
		case "", "quorum":
			cfg.StoreLevel = Quorum
		case "all":
			cfg.StoreLevel = All
		default:
			return Config{}, fmt.Errorf("muppet: unknown consistency %q", s.Consistency)
		}
	}
	return cfg, nil
}
