package muppet_test

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"muppet"
	"muppet/internal/cluster"
	"muppet/internal/engine"
)

// Chaos soak: a real TCP cluster under seeded network fault injection —
// dropped requests, lost responses, duplicated batches, flaky dials,
// injected delays, a scripted one-way partition — plus one genuine
// crash/failover/rejoin in the middle. The bar is the paper's exact
// accounting under a hostile network: every event the cluster
// acknowledged lands in a slate exactly once, every event it did not
// acknowledge is reported to the caller and logged as lost, and the
// two sets partition the offered workload with nothing in between.

// startChaosNodes is startNetNodes with the resilient-delivery knobs
// turned on and a per-node chaos layer wrapped around the transport.
func startChaosNodes(t *testing.T, members []string, chaosFor func(node string) *muppet.ChaosConfig) map[string]muppet.Engine {
	t.Helper()
	addrs := reserveAddrs(t, len(members))
	all := make(map[string]string, len(members))
	for i, m := range members {
		all[m] = addrs[i]
	}
	store := muppet.NewStore(muppet.StoreConfig{Nodes: 3, ReplicationFactor: 3, NoDevice: true})
	nodes := make(map[string]muppet.Engine, len(members))
	for _, m := range members {
		peers := make(map[string]string, len(all)-1)
		for name, a := range all {
			if name != m {
				peers[name] = a
			}
		}
		eng, err := muppet.NewEngine(netCounterApp(), muppet.Config{
			QueueCapacity: 1 << 14,
			FlushPolicy:   muppet.WriteThrough,
			Store:         store,
			StoreLevel:    muppet.One,
			Network: &muppet.NetworkConfig{
				Node:         m,
				Listen:       all[m],
				Peers:        peers,
				DialTimeout:  time.Second,
				IOTimeout:    2 * time.Second,
				RetryBackoff: time.Millisecond,
				MaxBackoff:   20 * time.Millisecond,
				// A retry budget comfortably above the chaos layer's
				// MaxFaultsPerDelivery, so every batch that is not
				// partitioned away eventually gets a clean exchange.
				SendRetries:         6,
				SendRetryBackoff:    time.Millisecond,
				SendRetryMaxBackoff: 10 * time.Millisecond,
				Chaos:               chaosFor(m),
			},
		})
		if err != nil {
			t.Fatalf("start %s: %v", m, err)
		}
		nodes[m] = eng
		t.Cleanup(eng.Stop)
	}
	return nodes
}

func soakChaosConfig() *muppet.ChaosConfig {
	return &muppet.ChaosConfig{
		Seed:                 2012,
		FlakyDial:            0.04,
		DropRequest:          0.06,
		DropResponse:         0.08,
		Duplicate:            0.08,
		Delay:                0.25,
		MaxDelay:             time.Millisecond,
		MaxFaultsPerDelivery: 2,
	}
}

func TestChaosSoakExactAccounting(t *testing.T) {
	members := []string{"machine-00", "machine-01"}
	nodes := startChaosNodes(t, members, func(node string) *muppet.ChaosConfig {
		cfg := soakChaosConfig()
		if node == "machine-00" {
			// One scripted one-way outage: machine-00's sends toward
			// machine-01 drop while its per-destination attempt count is
			// in [80, 92). Twelve attempt ticks against a 6-attempt
			// retry budget: at most two consecutive sends exhaust, below
			// the suspicion threshold, so the blip must NOT fail the
			// machine over — only (reported) per-event losses.
			cfg.Partitions = []muppet.ChaosPartition{{Machine: "machine-01", From: 80, To: 92}}
		}
		return cfg
	})
	a, b := nodes["machine-00"], nodes["machine-01"]

	const keys = 16
	offered, accepted := 0, 0
	ingest := func(eng muppet.Engine, i int) {
		ev := muppet.Event{Stream: "S1", TS: muppet.Timestamp(offered + 1), Key: fmt.Sprintf("r%d", i%keys)}
		offered++
		n, err := eng.IngestBatch([]muppet.Event{ev})
		if err == nil && n != 1 {
			t.Fatalf("ingest returned n=%d with nil error", n)
		}
		accepted += n
	}

	// Phase 1: soak through the fault schedule (including the scripted
	// partition window) from both nodes.
	for i := 0; i < 400; i++ {
		eng := a
		if i%2 == 1 {
			eng = b
		}
		ingest(eng, i)
	}
	drainAll(nodes)

	// The chaos layer must actually have been hostile.
	chA := cluster.UnwrapChaos(a.Cluster().Transport())
	chB := cluster.UnwrapChaos(b.Cluster().Transport())
	if chA == nil || chB == nil {
		t.Fatal("chaos transport not wired")
	}
	if chA.Stats().Injected() == 0 || chB.Stats().Injected() == 0 {
		t.Fatalf("no faults injected: a=%+v b=%+v", chA.Stats(), chB.Stats())
	}
	if chA.Stats().PartitionDrops == 0 {
		t.Fatal("scripted partition window never fired")
	}
	// A transient blip alone must never fail a machine over.
	if st := a.RecoveryStatus(); st.Failovers != 0 || st.Escalations != 0 {
		t.Fatalf("phase 1 caused failover: %+v", st)
	}

	// Phase 2: one genuine crash. Everything is drained and
	// write-through flushed, so the crash itself loses nothing; the
	// surviving node's sends then discover the death through the chaos
	// layer and fail over.
	var kB string
	for k := range b.Slates("U1") {
		kB = k
		break
	}
	if kB == "" {
		t.Fatal("machine-01 owns no keys; cannot exercise failover")
	}
	if lostQ, lostD := b.CrashMachine("machine-01"); lostQ != 0 || lostD != 0 {
		t.Fatalf("crash after drain lost %d queued, %d dirty", lostQ, lostD)
	}
	const interim = 20
	acceptedInterim, droppedInterim := 0, 0
	for i := 0; acceptedInterim < interim; i++ {
		if i >= 2000 {
			t.Fatalf("failover never completed: %d accepted, %d dropped", acceptedInterim, droppedInterim)
		}
		before := accepted
		ev := muppet.Event{Stream: "S1", TS: muppet.Timestamp(offered + 1), Key: kB}
		offered++
		n, _ := a.IngestBatch([]muppet.Event{ev})
		accepted += n
		if accepted > before {
			acceptedInterim++
		} else {
			droppedInterim++
		}
	}
	if droppedInterim == 0 {
		t.Fatal("no send observed the dead machine")
	}
	a.Drain()
	if st := a.RecoveryStatus(); st.Failovers == 0 {
		t.Fatalf("no failover recorded after real crash: %+v", st)
	}

	// Rejoin: hosting node first, then the sender's presumption.
	if _, err := b.RejoinMachine("machine-01"); err != nil {
		t.Fatalf("rejoin on hosting node: %v", err)
	}
	if _, err := a.RejoinMachine("machine-01"); err != nil {
		t.Fatalf("rejoin on sender node: %v", err)
	}

	// Phase 3: keep soaking after the rejoin, from both nodes.
	for i := 0; i < 200; i++ {
		eng := a
		if i%2 == 1 {
			eng = b
		}
		ingest(eng, i)
	}
	drainAll(nodes)

	// Exact accounting. Every key's final count is read once through
	// node a (locally when owned, through the shared durable store
	// otherwise); their sum must equal the acknowledged events exactly,
	// up to the one honest ambiguity of bounded retries: a batch whose
	// request landed but whose every chance at an answer was faulted
	// away (a lost response straight into the partition window) is
	// reported lost by the sender yet applied by the receiver. The
	// delivery layer counts exactly those events in IndeterminateLost,
	// so the overshoot is bounded — a lost acknowledged event would
	// leave the sum short of accepted, and a double-applied duplicate
	// would push it past accepted + indeterminate.
	sum := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("r%d", i)
		v := string(a.Slate("U1", k))
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("slate %s unreadable: %q", k, v)
		}
		sum += n
	}
	dsA, dsB := a.Cluster().DeliveryStats(), b.Cluster().DeliveryStats()
	indeterminate := int(dsA.IndeterminateLost + dsB.IndeterminateLost)
	if sum < accepted {
		t.Fatalf("slate counts sum to %d, below %d acknowledged: acknowledged events were lost", sum, accepted)
	}
	if sum > accepted+indeterminate {
		t.Fatalf("slate counts sum to %d, above %d acknowledged + %d outcome-unknown: events were double-applied", sum, accepted, indeterminate)
	}

	// Loss reconciliation: every unacknowledged event was logged as
	// lost, with a reason, on the node that ingested it — acknowledged
	// plus logged-lost partitions the offered workload.
	lost := a.LostEvents().Total() + b.LostEvents().Total()
	if accepted+int(lost) != offered {
		t.Fatalf("accepted %d + lost %d != offered %d", accepted, lost, offered)
	}
	totalsA, totalsB := a.LostEvents().Totals(), b.LostEvents().Totals()
	var tallied uint64
	for _, m := range []map[string]uint64{totalsA, totalsB} {
		for reason, n := range m {
			switch reason {
			case engine.LossTransient.String(), engine.LossMachineDown.String():
				tallied += n
			default:
				t.Errorf("unexpected loss reason %q (%d events)", reason, n)
			}
		}
	}
	if tallied != lost {
		t.Fatalf("loss totals tally %d, want %d", tallied, lost)
	}

	if dsA.Retries+dsB.Retries == 0 {
		t.Fatal("soak exercised no retries")
	}
	if dsA.DedupHits+dsB.DedupHits == 0 {
		t.Fatal("soak exercised no dedup absorption (lost responses / duplicates)")
	}
	t.Logf("CHAOS_SUMMARY offered=%d accepted=%d applied=%d lost=%d indeterminate=%d injected=%d retries=%d transient_errors=%d exhausted=%d dedup_hits=%d failovers=%d",
		offered, accepted, sum, lost, indeterminate,
		chA.Stats().Injected()+chB.Stats().Injected(),
		dsA.Retries+dsB.Retries,
		dsA.TransientErrors+dsB.TransientErrors,
		dsA.RetryExhausted+dsB.RetryExhausted,
		dsA.DedupHits+dsB.DedupHits,
		a.RecoveryStatus().Failovers)
}

// TestTransientBlipDoesNotFailover pins the regression this PR exists
// to prevent: before retried delivery and failure suspicion, a single
// transient network blip on a send surfaced as machine-down and tore a
// healthy machine out of the ring. Now the send retries through the
// blip, the event lands, and no failover fires.
func TestTransientBlipDoesNotFailover(t *testing.T) {
	members := []string{"machine-00", "machine-01"}
	nodes := startChaosNodes(t, members, func(node string) *muppet.ChaosConfig {
		if node != "machine-00" {
			return nil
		}
		// machine-00's first two attempts toward machine-01 vanish into
		// a one-way partition; the third lands. No probabilistic faults.
		return &muppet.ChaosConfig{
			Seed:       7,
			Partitions: []muppet.ChaosPartition{{Machine: "machine-01", From: 0, To: 2}},
		}
	})
	a, b := nodes["machine-00"], nodes["machine-01"]

	// Find a key machine-01 owns by seeding through its own node (local
	// deliveries never touch machine-00's chaos layer).
	var kB string
	for i := 0; kB == ""; i++ {
		if i >= 64 {
			t.Fatal("no key routed to machine-01")
		}
		k := fmt.Sprintf("blip-%d", i)
		if n, err := b.IngestBatch([]muppet.Event{{Stream: "S1", TS: 1, Key: k}}); err != nil || n != 1 {
			t.Fatalf("seed ingest: n=%d err=%v", n, err)
		}
		b.Drain()
		if _, owned := b.Slates("U1")[k]; owned {
			kB = k
		}
	}

	// The remote send from machine-00 hits the partition twice and must
	// come through on the retry — accepted, not failed over.
	n, err := a.IngestBatch([]muppet.Event{{Stream: "S1", TS: 2, Key: kB}})
	if err != nil || n != 1 {
		t.Fatalf("blipped send not delivered: n=%d err=%v", n, err)
	}
	drainAll(nodes)

	if got := string(b.Slate("U1", kB)); got != "2" {
		t.Fatalf("slate %s = %q, want 2", kB, got)
	}
	ds := a.Cluster().DeliveryStats()
	if ds.Retries < 2 || ds.TransientErrors < 2 {
		t.Fatalf("blip not retried: %+v", ds)
	}
	if ds.RetryExhausted != 0 {
		t.Fatalf("retry budget exhausted on a 2-attempt blip: %+v", ds)
	}
	st := a.RecoveryStatus()
	if st.Failovers != 0 || st.Escalations != 0 {
		t.Fatalf("single transient blip triggered failover: %+v", st)
	}
	if !a.Cluster().Machine("machine-01").Alive() {
		t.Fatal("machine-01 presumed down after a recovered blip")
	}
	if a.LostEvents().Total() != 0 {
		t.Fatalf("recovered blip logged losses: %v", a.LostEvents().Totals())
	}
}
