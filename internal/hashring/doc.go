// Package hashring implements the consistent hash ring Muppet uses to
// route events to workers (Section 4.1 of the paper).
//
// Every worker holds the same ring, so after producing an event any
// worker can instantly calculate which worker the pair <event key,
// destination function> hashes to, then contact that worker directly —
// no master on the data path. When the master broadcasts a machine
// failure, each worker removes the failed node from its ring; keys
// that hashed to the failed node move to the next node on the ring
// and, by consistency, no other key moves (Section 4.3).
//
// # Contract
//
// A ring built from the same member list with the same virtual-node
// count is deterministic: every node of a cluster computes identical
// placements, which is what lets routing work with no coordination.
// Lookup of a key on an empty ring reports no owner rather than
// panicking; Add and Remove are idempotent.
//
// # Concurrency
//
// The ring is guarded by a single RWMutex: lookups run concurrently
// under the read lock; membership changes (the failover and rejoin
// paths) take the write lock. A lookup concurrent with a removal
// returns either the old or the new owner — callers (the engines)
// tolerate this because a send to the just-removed machine fails with
// cluster.ErrMachineDown and is re-routed or accounted by recovery.
package hashring
