package hashring

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the number of ring positions per node. More
// virtual nodes smooth the key distribution across nodes.
const DefaultVirtualNodes = 64

// Ring is a consistent hash ring mapping strings to node names. It is
// safe for concurrent use: routing lookups take a read lock, membership
// changes take a write lock.
type Ring struct {
	mu       sync.RWMutex
	vnodes   int
	points   []point // sorted by hash
	nodes    map[string]bool
	disabled map[string]bool
}

type point struct {
	hash uint64
	node string
}

// New returns a ring over the given nodes with vnodes virtual nodes per
// node. If vnodes <= 0, DefaultVirtualNodes is used.
func New(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{
		vnodes:   vnodes,
		nodes:    make(map[string]bool),
		disabled: make(map[string]bool),
	}
	for _, n := range nodes {
		r.addLocked(n)
	}
	return r
}

func hash64(s string) uint64 {
	var h uint64 = fnvOffset64
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return mix(h)
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashPair hashes a routing pair exactly as hash64(a + string(sep) + b)
// would, without materializing the concatenation — the per-delivery
// allocation this saves is pure overhead on the ingress hot path. It
// is exported because engine2's dual-queue dispatch hashes (function,
// key) pairs the same way; the two call sites must not drift.
func HashPair(a string, sep byte, b string) uint64 {
	var h uint64 = fnvOffset64
	for i := 0; i < len(a); i++ {
		h = (h ^ uint64(a[i])) * fnvPrime64
	}
	h = (h ^ uint64(sep)) * fnvPrime64
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * fnvPrime64
	}
	return mix(h)
}

// mix is a splitmix64 finalizer. FNV alone leaves similar inputs (such
// as "machine-03#1", "machine-03#2", ...) clustered on the ring; the
// finalizer scatters them so virtual nodes spread evenly.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (r *Ring) addLocked(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Add inserts a node into the ring.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addLocked(node)
}

// Disable marks a node as failed. Lookups skip disabled nodes, so keys
// owned by the node move to its ring successors. The node's virtual
// points stay on the ring, so re-enabling it restores the exact
// original assignment.
func (r *Ring) Disable(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		r.disabled[node] = true
	}
}

// Enable clears a node's failed mark.
func (r *Ring) Enable(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.disabled, node)
}

// Disabled reports whether the node is currently marked failed.
func (r *Ring) Disabled(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.disabled[node]
}

// Lookup returns the live node owning the given key, walking clockwise
// from the key's hash and skipping disabled nodes. It returns "" if the
// ring is empty or every node is disabled.
func (r *Ring) Lookup(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lookupLocked(key)
}

func (r *Ring) lookupLocked(key string) string {
	return r.lookupHashLocked(hash64(key))
}

func (r *Ring) lookupHashLocked(h uint64) string {
	n := len(r.points)
	if n == 0 {
		return ""
	}
	i := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for probes := 0; probes < n; probes++ {
		p := r.points[(i+probes)%n]
		if !r.disabled[p.node] {
			return p.node
		}
	}
	return ""
}

// LookupRoute returns the node for an event key destined for a named
// function. The paper routes on the pair <event key, destination
// map/update function>, so distinct functions spread the same key space
// differently. It hashes the pair without concatenating it — this is
// the per-delivery routing step of the ingress hot path.
func (r *Ring) LookupRoute(function, key string) string {
	h := HashPair(function, 0x00, key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lookupHashLocked(h)
}

// LookupN returns the first n distinct live nodes clockwise from the
// key's position. The replicated key-value store uses it to choose
// replica sets.
func (r *Ring) LookupN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := len(r.points)
	if total == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(total, func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	var out []string
	for probes := 0; probes < total && len(out) < n; probes++ {
		p := r.points[(i+probes)%total]
		if r.disabled[p.node] || seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}

// Members reports every node on the ring and whether it is currently
// enabled — the ring-membership view recovery status endpoints expose.
func (r *Ring) Members() map[string]bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]bool, len(r.nodes))
	for n := range r.nodes {
		out[n] = !r.disabled[n]
	}
	return out
}

// Nodes returns the live (enabled) node names in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for n := range r.nodes {
		if !r.disabled[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Size reports the number of nodes on the ring, including disabled
// ones.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}
