package hashring

import (
	"fmt"
	"testing"
	"testing/quick"
)

func nodes(n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("machine-%02d", i))
	}
	return out
}

func TestLookupIsDeterministic(t *testing.T) {
	r1 := New(nodes(5), 0)
	r2 := New(nodes(5), 0)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		if r1.Lookup(k) != r2.Lookup(k) {
			t.Fatalf("rings disagree on %s", k)
		}
	}
}

func TestLookupEmptyRing(t *testing.T) {
	r := New(nil, 0)
	if got := r.Lookup("k"); got != "" {
		t.Fatalf("Lookup on empty ring = %q, want empty", got)
	}
}

func TestLookupSpreadsKeys(t *testing.T) {
	r := New(nodes(4), 0)
	counts := map[string]int{}
	const total = 4000
	for i := 0; i < total; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
	}
	if len(counts) != 4 {
		t.Fatalf("keys landed on %d nodes, want 4", len(counts))
	}
	for n, c := range counts {
		if c < total/4/3 {
			t.Fatalf("node %s got only %d of %d keys — distribution too skewed", n, c, total)
		}
	}
}

func TestDisableMovesOnlyOwnedKeys(t *testing.T) {
	r := New(nodes(8), 0)
	before := map[string]string{}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Lookup(k)
	}
	const victim = "machine-03"
	r.Disable(victim)
	moved, stayed := 0, 0
	for k, owner := range before {
		now := r.Lookup(k)
		if owner == victim {
			if now == victim {
				t.Fatalf("key %s still routed to disabled node", k)
			}
			moved++
			continue
		}
		if now != owner {
			t.Fatalf("key %s moved from %s to %s although its owner is alive", k, owner, now)
		}
		stayed++
	}
	if moved == 0 {
		t.Fatal("no keys were owned by victim; test is vacuous")
	}
	if stayed == 0 {
		t.Fatal("every key moved; ring is not consistent")
	}
}

func TestEnableRestoresOriginalAssignment(t *testing.T) {
	r := New(nodes(5), 0)
	before := map[string]string{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Lookup(k)
	}
	r.Disable("machine-01")
	r.Enable("machine-01")
	for k, owner := range before {
		if got := r.Lookup(k); got != owner {
			t.Fatalf("key %s: %s after enable, want %s", k, got, owner)
		}
	}
}

func TestAllNodesDisabled(t *testing.T) {
	r := New(nodes(2), 0)
	r.Disable("machine-00")
	r.Disable("machine-01")
	if got := r.Lookup("k"); got != "" {
		t.Fatalf("Lookup with all nodes down = %q, want empty", got)
	}
}

func TestLookupRouteSeparatesFunctions(t *testing.T) {
	r := New(nodes(8), 0)
	diff := 0
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		if r.LookupRoute("map1", k) != r.LookupRoute("update1", k) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("routing ignores the destination function")
	}
}

func TestLookupNReturnsDistinctLiveNodes(t *testing.T) {
	r := New(nodes(5), 0)
	reps := r.LookupN("some-key", 3)
	if len(reps) != 3 {
		t.Fatalf("LookupN returned %d nodes, want 3", len(reps))
	}
	seen := map[string]bool{}
	for _, n := range reps {
		if seen[n] {
			t.Fatalf("duplicate replica %s", n)
		}
		seen[n] = true
	}
}

func TestLookupNSkipsDisabled(t *testing.T) {
	r := New(nodes(4), 0)
	full := r.LookupN("k", 4)
	r.Disable(full[0])
	reps := r.LookupN("k", 3)
	for _, n := range reps {
		if n == full[0] {
			t.Fatalf("disabled node %s appears in replica set", n)
		}
	}
}

func TestLookupNMoreThanNodes(t *testing.T) {
	r := New(nodes(2), 0)
	if got := r.LookupN("k", 5); len(got) != 2 {
		t.Fatalf("LookupN(5) on 2 nodes returned %d", len(got))
	}
}

func TestNodesExcludesDisabled(t *testing.T) {
	r := New(nodes(3), 0)
	r.Disable("machine-01")
	live := r.Nodes()
	if len(live) != 2 {
		t.Fatalf("Nodes = %v, want 2 live", live)
	}
	for _, n := range live {
		if n == "machine-01" {
			t.Fatal("disabled node listed as live")
		}
	}
	if r.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (includes disabled)", r.Size())
	}
}

func TestAddIsIdempotent(t *testing.T) {
	r := New(nodes(2), 8)
	r.Add("machine-00")
	if r.Size() != 2 {
		t.Fatalf("Size after duplicate Add = %d, want 2", r.Size())
	}
}

func TestPropertyLookupAlwaysReturnsMember(t *testing.T) {
	r := New(nodes(6), 0)
	members := map[string]bool{}
	for _, n := range nodes(6) {
		members[n] = true
	}
	f := func(key string) bool {
		return members[r.Lookup(key)]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyConsistencyUnderFailure(t *testing.T) {
	// For any key, disabling an unrelated node never changes the key's owner.
	f := func(key string, victimIdx uint8) bool {
		r := New(nodes(6), 32)
		owner := r.Lookup(key)
		victim := fmt.Sprintf("machine-%02d", int(victimIdx)%6)
		if victim == owner {
			return true // key is allowed to move
		}
		r.Disable(victim)
		return r.Lookup(key) == owner
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
