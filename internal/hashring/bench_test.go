package hashring

import (
	"fmt"
	"testing"
)

func BenchmarkLookup(b *testing.B) {
	r := New(nodes(16), 0)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(keys[i%len(keys)])
	}
}

func BenchmarkLookupRoute(b *testing.B) {
	r := New(nodes(16), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.LookupRoute("U1", "user12345")
	}
}

func BenchmarkLookupNReplicas(b *testing.B) {
	r := New(nodes(16), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.LookupN("user12345", 3)
	}
}
