package kvstore

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"muppet/internal/clock"
	"muppet/internal/hashring"
	"muppet/internal/storage"
)

// Consistency is the quorum level for cluster reads and writes,
// matching the three levels the paper exposes to Muppet applications
// (Section 4.2): any single replica, a majority, or all replicas.
type Consistency int

const (
	// One succeeds after a single replica acknowledges.
	One Consistency = iota
	// Quorum succeeds after a majority of replicas acknowledge.
	Quorum
	// All succeeds only after every replica acknowledges.
	All
)

// String names the consistency level.
func (c Consistency) String() string {
	switch c {
	case One:
		return "ONE"
	case Quorum:
		return "QUORUM"
	case All:
		return "ALL"
	default:
		return "UNKNOWN"
	}
}

// required returns how many of rf replicas must acknowledge.
func (c Consistency) required(rf int) int {
	switch c {
	case One:
		return 1
	case Quorum:
		return rf/2 + 1
	default:
		return rf
	}
}

// ErrUnavailable is returned when too few replicas are alive to meet
// the requested consistency level.
var ErrUnavailable = errors.New("kvstore: not enough live replicas for consistency level")

// ClusterConfig tunes a replicated store cluster.
type ClusterConfig struct {
	// Nodes is the number of storage nodes.
	Nodes int
	// ReplicationFactor is the number of replicas per row.
	ReplicationFactor int
	// NetworkRTT is the simulated round-trip time to a replica. Each
	// request to a replica is charged RTT plus up to RTTJitter of
	// deterministic pseudo-random jitter; with quorum levels, the
	// operation latency is the k-th fastest replica's latency. This is
	// what makes ONE < QUORUM < ALL measurable in experiment E10.
	NetworkRTT time.Duration
	// RTTJitter is the maximum additional per-request delay.
	RTTJitter time.Duration
	// Seed makes the jitter deterministic.
	Seed int64
	// Dir, when non-empty, makes every node durable: node-NN stores its
	// data in Dir/node-NN via the internal/lsm engine. A cluster
	// reopened on the same Dir recovers every node's acknowledged rows.
	Dir string
	// Node is the per-node configuration template. Each node gets its
	// own device instance with the same profile.
	Node NodeConfig
	// DeviceProfile, when set, gives every node a fresh simulated
	// device with this profile (overrides Node.Device).
	DeviceProfile *storage.Profile
	// Clock supplies time; nil means the real clock.
	Clock clock.Clock
}

// Cluster is a set of replicated store nodes fronted by a consistent
// hash ring, standing in for the Cassandra cluster named in a Muppet
// application's configuration file.
type Cluster struct {
	cfg   ClusterConfig
	ring  *hashring.Ring
	nodes map[string]*Node

	mu  sync.Mutex
	rng *rand.Rand
}

// NewCluster builds a cluster of cfg.Nodes nodes named node-00..node-NN.
// It panics if cfg.Dir is set and a durable node fails to open; use
// OpenCluster when the caller can handle the error.
func NewCluster(cfg ClusterConfig) *Cluster {
	c, err := OpenCluster(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// OpenCluster builds a cluster of cfg.Nodes nodes named
// node-00..node-NN, opening (and recovering) per-node durable storage
// under cfg.Dir when it is set.
func OpenCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 3
	}
	if cfg.ReplicationFactor > cfg.Nodes {
		cfg.ReplicationFactor = cfg.Nodes
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	c := &Cluster{
		cfg:   cfg,
		nodes: make(map[string]*Node),
		rng:   rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	var names []string
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("node-%02d", i)
		names = append(names, name)
		ncfg := cfg.Node
		ncfg.Clock = cfg.Clock
		if cfg.DeviceProfile != nil {
			ncfg.Device = storage.NewDevice(*cfg.DeviceProfile)
		}
		if cfg.Dir != "" {
			ncfg.Dir = filepath.Join(cfg.Dir, name)
		}
		n, err := OpenNode(name, ncfg)
		if err != nil {
			for _, opened := range c.nodes {
				opened.Close()
			}
			return nil, err
		}
		c.nodes[name] = n
	}
	c.ring = hashring.New(names, 0)
	return c, nil
}

// Close releases every node's durable storage (no-op for in-memory
// clusters).
func (c *Cluster) Close() error {
	var first error
	for _, name := range c.Nodes() {
		if err := c.nodes[name].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Node returns the named node, or nil.
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// Nodes returns all node names in order.
func (c *Cluster) Nodes() []string {
	var names []string
	for n := range c.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Replicas returns the replica set for a row key.
func (c *Cluster) Replicas(key string) []string {
	return c.ring.LookupN(key, c.cfg.ReplicationFactor)
}

// KillNode simulates a crash of the named node.
func (c *Cluster) KillNode(name string) {
	if n := c.nodes[name]; n != nil {
		n.SetDown(true)
		c.ring.Disable(name)
	}
}

// ReviveNode brings a crashed node back (sstables intact, memtable
// lost).
func (c *Cluster) ReviveNode(name string) {
	if n := c.nodes[name]; n != nil {
		n.SetDown(false)
		c.ring.Enable(name)
	}
}

func (c *Cluster) jitter() time.Duration {
	if c.cfg.RTTJitter <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Int63n(int64(c.cfg.RTTJitter)))
}

// kthFastest returns the k-th smallest latency: with replicas contacted
// in parallel, an operation completes when the k-th ack arrives.
func kthFastest(lat []time.Duration, k int) time.Duration {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if k > len(lat) {
		k = len(lat)
	}
	if k <= 0 {
		return 0
	}
	return lat[k-1]
}

// Put writes value at <key, column> to the row's replica set, waiting
// for the number of acknowledgements the consistency level requires.
// It returns the simulated operation latency.
func (c *Cluster) Put(key, column string, value []byte, ttl time.Duration, level Consistency) (time.Duration, error) {
	reps := c.Replicas(rowKey(key, column))
	need := level.required(c.cfg.ReplicationFactor)
	var lats []time.Duration
	acks := 0
	for _, name := range reps {
		cost, err := c.nodes[name].Put(key, column, value, ttl)
		if err != nil {
			continue
		}
		acks++
		lats = append(lats, c.cfg.NetworkRTT+c.jitter()+cost)
	}
	if acks < need {
		return 0, fmt.Errorf("%w: got %d acks, need %d", ErrUnavailable, acks, need)
	}
	return kthFastest(lats, need), nil
}

// PutBatch writes all entries as one multi-put. Entries are grouped by
// replica node and each node applies its group under a single lock and
// commit-log append (Node.PutBatch); replica groups are contacted in
// parallel, so the batch latency is the slowest node's latency, not the
// sum over entries. The batch succeeds when every entry has the number
// of acknowledgements the consistency level requires; otherwise the
// first under-replicated entry is reported (writes that did land are
// not rolled back, matching per-entry Put semantics).
func (c *Cluster) PutBatch(entries []BatchEntry, level Consistency) (time.Duration, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	need := level.required(c.cfg.ReplicationFactor)
	perNode := make(map[string][]BatchEntry)
	perNodeIdx := make(map[string][]int)
	for i, e := range entries {
		for _, name := range c.Replicas(rowKey(e.Key, e.Column)) {
			perNode[name] = append(perNode[name], e)
			perNodeIdx[name] = append(perNodeIdx[name], i)
		}
	}
	// Sorted node order keeps the jitter sequence deterministic.
	names := make([]string, 0, len(perNode))
	for name := range perNode {
		names = append(names, name)
	}
	sort.Strings(names)
	acks := make([]int, len(entries))
	var maxLat time.Duration
	for _, name := range names {
		cost, err := c.nodes[name].PutBatch(perNode[name])
		if err != nil {
			continue
		}
		for _, i := range perNodeIdx[name] {
			acks[i]++
		}
		if lat := c.cfg.NetworkRTT + c.jitter() + cost; lat > maxLat {
			maxLat = lat
		}
	}
	for i, a := range acks {
		if a < need {
			return maxLat, fmt.Errorf("%w: batch entry %d (%s/%s) got %d acks, need %d",
				ErrUnavailable, i, entries[i].Key, entries[i].Column, a, need)
		}
	}
	return maxLat, nil
}

// Get reads <key, column> from enough replicas to satisfy the
// consistency level and returns the newest version among the replies
// (performing read repair on stale live replicas). The boolean reports
// whether a live row was found.
func (c *Cluster) Get(key, column string, level Consistency) ([]byte, bool, time.Duration, error) {
	reps := c.Replicas(rowKey(key, column))
	need := level.required(c.cfg.ReplicationFactor)

	type reply struct {
		node  string
		value []byte
		row   Row
		found bool
	}
	var lats []time.Duration
	var replies []reply
	for _, name := range reps {
		v, row, found, cost, err := c.nodes[name].Get(key, column)
		if err != nil {
			continue
		}
		replies = append(replies, reply{name, v, row, found})
		lats = append(lats, c.cfg.NetworkRTT+c.jitter()+cost)
		if len(replies) == need {
			break
		}
	}
	if len(replies) < need {
		return nil, false, 0, fmt.Errorf("%w: got %d replies, need %d", ErrUnavailable, len(replies), need)
	}
	// Pick the newest version among replies.
	best := -1
	for i, r := range replies {
		if !r.found {
			continue
		}
		if best < 0 || r.row.WriteTime.After(replies[best].row.WriteTime) {
			best = i
		}
	}
	lat := kthFastest(lats, need)
	if best < 0 {
		return nil, false, lat, nil
	}
	winner := replies[best]
	// Read repair: push the newest version to replicas that returned an
	// older one.
	for _, r := range replies {
		if r.node != winner.node && (!r.found || r.row.WriteTime.Before(winner.row.WriteTime)) {
			c.nodes[r.node].Put(key, column, winner.value, winner.row.TTL)
		}
	}
	return winner.value, true, lat, nil
}

// Delete tombstones <key, column> at the required consistency.
func (c *Cluster) Delete(key, column string, level Consistency) (time.Duration, error) {
	reps := c.Replicas(rowKey(key, column))
	need := level.required(c.cfg.ReplicationFactor)
	var lats []time.Duration
	acks := 0
	for _, name := range reps {
		cost, err := c.nodes[name].Delete(key, column)
		if err != nil {
			continue
		}
		acks++
		lats = append(lats, c.cfg.NetworkRTT+c.jitter()+cost)
	}
	if acks < need {
		return 0, fmt.Errorf("%w: got %d acks, need %d", ErrUnavailable, acks, need)
	}
	return kthFastest(lats, need), nil
}

// FlushAll forces every node's memtable to disk.
func (c *Cluster) FlushAll() {
	for _, n := range c.nodes {
		n.Flush()
	}
}

// CompactAll forces a full compaction on every node.
func (c *Cluster) CompactAll() {
	for _, n := range c.nodes {
		n.Compact()
	}
}

// TotalStats sums node statistics across the cluster.
func (c *Cluster) TotalStats() NodeStats {
	var total NodeStats
	for _, n := range c.nodes {
		s := n.Stats()
		total.MemtableRows += s.MemtableRows
		total.MemtableBytes += s.MemtableBytes
		total.SSTables += s.SSTables
		total.SSTableBytes += s.SSTableBytes
		total.Flushes += s.Flushes
		total.Compactions += s.Compactions
		total.Reads += s.Reads
		total.ReadsFromMem += s.ReadsFromMem
		total.SSTableProbes += s.SSTableProbes
		total.BloomSkips += s.BloomSkips
		total.ExpiredDropped += s.ExpiredDropped
		total.LiveRows += s.LiveRows
		total.Durable = total.Durable || s.Durable
		total.Fsyncs += s.Fsyncs
		total.DiskBytesWritten += s.DiskBytesWritten
		total.DiskBytesRead += s.DiskBytesRead
		total.WALBytes += s.WALBytes
		total.CompactionBacklog += s.CompactionBacklog
	}
	return total
}

// Scan calls fn for every live row with the given column on any node,
// deduplicated by key (newest write wins is not enforced here; Scan is
// a debugging/bulk-export aid mirroring the paper's "large-volume row
// reads from the durable key-value store").
func (c *Cluster) Scan(column string, fn func(key string, value []byte)) {
	c.ScanUntil(column, func(k string, v []byte) bool {
		fn(k, v)
		return true
	})
}

// ScanUntil is Scan with early termination: it stops (across all
// nodes) as soon as fn returns false.
func (c *Cluster) ScanUntil(column string, fn func(key string, value []byte) bool) {
	seen := make(map[string]bool)
	more := true
	for _, name := range c.Nodes() {
		if !more {
			return
		}
		c.nodes[name].ScanUntil(column, func(k string, v []byte) bool {
			if seen[k] {
				return true
			}
			seen[k] = true
			more = fn(k, v)
			return more
		})
	}
}
