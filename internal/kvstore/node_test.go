package kvstore

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"muppet/internal/clock"
	"muppet/internal/storage"
)

func testNode(t *testing.T, cfg NodeConfig) *Node {
	t.Helper()
	return NewNode("n0", cfg)
}

func TestPutGetRoundTrip(t *testing.T) {
	n := testNode(t, NodeConfig{})
	if _, err := n.Put("user1", "U1", []byte("slate-data"), 0); err != nil {
		t.Fatal(err)
	}
	v, _, found, _, err := n.Get("user1", "U1")
	if err != nil || !found {
		t.Fatalf("Get: found=%v err=%v", found, err)
	}
	if string(v) != "slate-data" {
		t.Fatalf("value = %q", v)
	}
}

func TestGetMissingRow(t *testing.T) {
	n := testNode(t, NodeConfig{})
	_, _, found, _, err := n.Get("nope", "U1")
	if err != nil || found {
		t.Fatalf("found=%v err=%v, want absent", found, err)
	}
}

func TestColumnsAreIndependent(t *testing.T) {
	// Slate S(U,k) lives at row k, column U: two updaters may keep
	// separate slates for the same key (Section 3).
	n := testNode(t, NodeConfig{})
	n.Put("k", "U1", []byte("one"), 0)
	n.Put("k", "U2", []byte("two"), 0)
	v1, _, _, _, _ := n.Get("k", "U1")
	v2, _, _, _, _ := n.Get("k", "U2")
	if string(v1) != "one" || string(v2) != "two" {
		t.Fatalf("v1=%q v2=%q", v1, v2)
	}
}

func TestOverwriteReturnsNewest(t *testing.T) {
	n := testNode(t, NodeConfig{})
	n.Put("k", "U", []byte("v1"), 0)
	n.Put("k", "U", []byte("v2"), 0)
	v, _, _, _, _ := n.Get("k", "U")
	if string(v) != "v2" {
		t.Fatalf("value = %q, want v2", v)
	}
}

func TestReadAfterFlush(t *testing.T) {
	n := testNode(t, NodeConfig{})
	n.Put("k", "U", []byte("v"), 0)
	n.Flush()
	if s := n.Stats(); s.SSTables != 1 || s.MemtableRows != 0 {
		t.Fatalf("stats after flush: %+v", s)
	}
	v, _, found, cost, _ := n.Get("k", "U")
	if !found || string(v) != "v" {
		t.Fatalf("found=%v v=%q", found, v)
	}
	_ = cost
}

func TestMemtableShadowsSSTable(t *testing.T) {
	n := testNode(t, NodeConfig{})
	n.Put("k", "U", []byte("old"), 0)
	n.Flush()
	n.Put("k", "U", []byte("new"), 0)
	v, _, _, _, _ := n.Get("k", "U")
	if string(v) != "new" {
		t.Fatalf("value = %q, want memtable version", v)
	}
}

func TestNewerSSTableShadowsOlder(t *testing.T) {
	n := testNode(t, NodeConfig{CompactionThreshold: 100})
	n.Put("k", "U", []byte("old"), 0)
	n.Flush()
	n.Put("k", "U", []byte("new"), 0)
	n.Flush()
	v, _, _, _, _ := n.Get("k", "U")
	if string(v) != "new" {
		t.Fatalf("value = %q, want newer sstable version", v)
	}
}

func TestAutomaticFlushOnThreshold(t *testing.T) {
	n := testNode(t, NodeConfig{MemtableFlushBytes: 100, CompactionThreshold: 100})
	for i := 0; i < 20; i++ {
		n.Put(fmt.Sprintf("key-%02d", i), "U", make([]byte, 20), 0)
	}
	if s := n.Stats(); s.Flushes == 0 {
		t.Fatalf("no automatic flush happened: %+v", s)
	}
}

func TestCompactionMergesRuns(t *testing.T) {
	n := testNode(t, NodeConfig{CompactionThreshold: 3})
	n.Put("a", "U", []byte("1"), 0)
	n.Flush()
	n.Put("b", "U", []byte("2"), 0)
	n.Flush()
	n.Put("c", "U", []byte("3"), 0)
	n.Flush() // triggers compaction at threshold 3
	s := n.Stats()
	if s.Compactions != 1 || s.SSTables != 1 {
		t.Fatalf("stats = %+v, want 1 compaction into 1 sstable", s)
	}
	for _, k := range []string{"a", "b", "c"} {
		if _, _, found, _, _ := n.Get(k, "U"); !found {
			t.Fatalf("key %s lost by compaction", k)
		}
	}
}

func TestDeleteTombstones(t *testing.T) {
	n := testNode(t, NodeConfig{})
	n.Put("k", "U", []byte("v"), 0)
	n.Flush()
	n.Delete("k", "U")
	if _, _, found, _, _ := n.Get("k", "U"); found {
		t.Fatal("deleted row still readable")
	}
	n.Flush()
	n.Compact()
	if _, _, found, _, _ := n.Get("k", "U"); found {
		t.Fatal("deleted row resurfaced after compaction")
	}
}

func TestTTLExpiry(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	n := testNode(t, NodeConfig{Clock: fake})
	n.Put("k", "U", []byte("v"), 10*time.Second)
	if _, _, found, _, _ := n.Get("k", "U"); !found {
		t.Fatal("fresh row should be live")
	}
	fake.Advance(11 * time.Second)
	if _, _, found, _, _ := n.Get("k", "U"); found {
		t.Fatal("expired row still live")
	}
}

func TestTTLZeroMeansForever(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	n := testNode(t, NodeConfig{Clock: fake})
	n.Put("k", "U", []byte("v"), 0)
	fake.Advance(1000 * time.Hour)
	if _, _, found, _, _ := n.Get("k", "U"); !found {
		t.Fatal("TTL=0 row expired")
	}
}

func TestCompactionGCsExpiredRows(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	n := testNode(t, NodeConfig{Clock: fake, CompactionThreshold: 100})
	for i := 0; i < 10; i++ {
		n.Put(fmt.Sprintf("k%d", i), "U", []byte("v"), 5*time.Second)
	}
	n.Flush()
	fake.Advance(10 * time.Second)
	n.Compact()
	s := n.Stats()
	if s.ExpiredDropped != 10 {
		t.Fatalf("ExpiredDropped = %d, want 10", s.ExpiredDropped)
	}
	if s.LiveRows != 0 {
		t.Fatalf("LiveRows = %d, want 0", s.LiveRows)
	}
	if _, _, found, _, _ := n.Get("k3", "U"); found {
		t.Fatal("TTL-expired row resurfaced after compaction")
	}
}

func TestExpiredRowNeverResurfacesAfterRewrite(t *testing.T) {
	// After expiry, a new write must start a fresh row (the paper:
	// "resetting to an empty slate at that time").
	fake := clock.NewFake(time.Unix(1000, 0))
	n := testNode(t, NodeConfig{Clock: fake})
	n.Put("k", "U", []byte("old"), time.Second)
	fake.Advance(2 * time.Second)
	n.Put("k", "U", []byte("new"), time.Second)
	v, _, found, _, _ := n.Get("k", "U")
	if !found || string(v) != "new" {
		t.Fatalf("found=%v v=%q, want fresh row", found, v)
	}
}

func TestDownNodeRejectsOps(t *testing.T) {
	n := testNode(t, NodeConfig{})
	n.Put("k", "U", []byte("v"), 0)
	n.SetDown(true)
	if !n.Down() {
		t.Fatal("node should report down")
	}
	if _, err := n.Put("k", "U", []byte("v2"), 0); err == nil {
		t.Fatal("Put on down node should fail")
	}
	if _, _, _, _, err := n.Get("k", "U"); err == nil {
		t.Fatal("Get on down node should fail")
	}
}

func TestCrashLosesMemtableKeepsSSTables(t *testing.T) {
	n := testNode(t, NodeConfig{CompactionThreshold: 100})
	n.Put("durable", "U", []byte("v1"), 0)
	n.Flush()
	n.Put("volatile", "U", []byte("v2"), 0)
	n.SetDown(true)
	n.SetDown(false)
	if _, _, found, _, _ := n.Get("durable", "U"); !found {
		t.Fatal("flushed row lost on crash")
	}
	if _, _, found, _, _ := n.Get("volatile", "U"); found {
		t.Fatal("memtable row survived crash")
	}
}

func TestBloomFilterSkipsIrrelevantRuns(t *testing.T) {
	n := testNode(t, NodeConfig{CompactionThreshold: 1000})
	for run := 0; run < 5; run++ {
		n.Put(fmt.Sprintf("run%d-key", run), "U", []byte("v"), 0)
		n.Flush()
	}
	// An absent key must walk all runs; the bloom filters should skip
	// (almost) every one without touching the device.
	n.Get("absent-key", "U")
	after := n.Stats()
	if after.BloomSkips < 4 {
		t.Fatalf("bloom filters skipped only %d of 5 runs", after.BloomSkips)
	}
	// A key in the oldest run should skip the four newer runs.
	before := n.Stats().BloomSkips
	if _, _, found, _, _ := n.Get("run0-key", "U"); !found {
		t.Fatal("run0-key lost")
	}
	if n.Stats().BloomSkips <= before {
		t.Fatal("no bloom skips when reading the oldest run")
	}
}

func TestDeviceChargedForSSTableReads(t *testing.T) {
	dev := storage.NewDevice(storage.SSD())
	n := testNode(t, NodeConfig{Device: dev, CompactionThreshold: 100})
	n.Put("k", "U", []byte("v"), 0)
	n.Flush()
	n.Get("k", "U")
	if dev.Stats().ReadOps == 0 {
		t.Fatal("sstable read did not touch the device")
	}
}

func TestMemtableReadIsFree(t *testing.T) {
	dev := storage.NewDevice(storage.SSD())
	n := testNode(t, NodeConfig{Device: dev})
	n.Put("k", "U", []byte("v"), 0)
	before := dev.Stats().ReadOps
	n.Get("k", "U")
	if dev.Stats().ReadOps != before {
		t.Fatal("memtable read charged a device read")
	}
}

func TestScanFiltersByColumn(t *testing.T) {
	n := testNode(t, NodeConfig{})
	n.Put("a", "U1", []byte("1"), 0)
	n.Put("b", "U1", []byte("2"), 0)
	n.Put("c", "U2", []byte("3"), 0)
	n.Flush()
	got := map[string]string{}
	n.Scan("U1", func(k string, v []byte) { got[k] = string(v) })
	if len(got) != 2 || got["a"] != "1" || got["b"] != "2" {
		t.Fatalf("scan = %v", got)
	}
}

func TestPropertyNodeMatchesModelMap(t *testing.T) {
	// The node's visible contents always equal a plain map applied the
	// same operations, regardless of flush/compaction interleaving.
	type op struct {
		Key    uint8
		Delete bool
		Flush  bool
	}
	f := func(ops []op) bool {
		n := NewNode("p", NodeConfig{CompactionThreshold: 3})
		model := map[string]string{}
		for i, o := range ops {
			k := fmt.Sprintf("k%d", o.Key%8)
			if o.Delete {
				n.Delete(k, "U")
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", i)
				n.Put(k, "U", []byte(v), 0)
				model[k] = v
			}
			if o.Flush {
				n.Flush()
			}
		}
		for j := 0; j < 8; j++ {
			k := fmt.Sprintf("k%d", j)
			v, _, found, _, _ := n.Get(k, "U")
			want, ok := model[k]
			if found != ok || (found && string(v) != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPutCopiesValue(t *testing.T) {
	n := testNode(t, NodeConfig{})
	buf := []byte("original")
	n.Put("k", "U", buf, 0)
	buf[0] = 'X'
	v, _, _, _, _ := n.Get("k", "U")
	if string(v) != "original" {
		t.Fatalf("stored value aliases caller buffer: %q", v)
	}
}
