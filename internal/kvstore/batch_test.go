package kvstore

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"muppet/internal/storage"
)

func TestNodePutBatchWritesAllRows(t *testing.T) {
	n := NewNode("n0", NodeConfig{})
	entries := []BatchEntry{
		{Key: "a", Column: "U", Value: []byte("1")},
		{Key: "b", Column: "U", Value: []byte("2")},
		{Key: "c", Column: "V", Value: []byte("3"), TTL: time.Hour},
	}
	if _, err := n.PutBatch(entries); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		v, _, found, _, err := n.Get(e.Key, e.Column)
		if err != nil || !found || string(v) != string(e.Value) {
			t.Fatalf("%s/%s = %q, %v, %v", e.Key, e.Column, v, found, err)
		}
	}
}

func TestNodePutBatchDown(t *testing.T) {
	n := NewNode("n0", NodeConfig{})
	n.SetDown(true)
	_, err := n.PutBatch([]BatchEntry{{Key: "a", Column: "U", Value: []byte("1")}})
	var down ErrNodeDown
	if !errors.As(err, &down) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

func TestNodePutBatchAmortizesSeeks(t *testing.T) {
	// One batch of 100 rows pays one commit-log seek; 100 singleton
	// puts pay 100. On the HDD profile that is the difference between
	// ~8ms and ~800ms of simulated device time.
	profile := storage.HDD()
	batched := NewNode("b", NodeConfig{Device: storage.NewDevice(profile)})
	var entries []BatchEntry
	for i := 0; i < 100; i++ {
		entries = append(entries, BatchEntry{Key: fmt.Sprintf("k%d", i), Column: "U", Value: []byte("v")})
	}
	batchCost, err := batched.PutBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	single := NewNode("s", NodeConfig{Device: storage.NewDevice(profile)})
	var singleCost time.Duration
	for _, e := range entries {
		c, err := single.Put(e.Key, e.Column, e.Value, 0)
		if err != nil {
			t.Fatal(err)
		}
		singleCost += c
	}
	if batchCost*10 > singleCost {
		t.Fatalf("batch cost %v not ~100x cheaper than %v", batchCost, singleCost)
	}
}

func TestClusterPutBatchReadBack(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 3, ReplicationFactor: 2})
	var entries []BatchEntry
	for i := 0; i < 50; i++ {
		entries = append(entries, BatchEntry{Key: fmt.Sprintf("row%d", i), Column: "U", Value: []byte(fmt.Sprintf("v%d", i))})
	}
	if _, err := c.PutBatch(entries, Quorum); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		v, found, _, err := c.Get(fmt.Sprintf("row%d", i), "U", Quorum)
		if err != nil || !found || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("row%d = %q, %v, %v", i, v, found, err)
		}
	}
}

func TestClusterPutBatchEmpty(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 1, ReplicationFactor: 1})
	if lat, err := c.PutBatch(nil, All); err != nil || lat != 0 {
		t.Fatalf("empty batch = %v, %v", lat, err)
	}
}

func TestClusterPutBatchUnavailable(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 3, ReplicationFactor: 3})
	for _, name := range c.Nodes() {
		c.KillNode(name)
	}
	_, err := c.PutBatch([]BatchEntry{{Key: "a", Column: "U", Value: []byte("1")}}, Quorum)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

func TestClusterPutBatchTolerableFailure(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 3, ReplicationFactor: 3})
	c.KillNode(c.Nodes()[0])
	// RF=3 with one dead node still satisfies QUORUM (2 acks).
	if _, err := c.PutBatch([]BatchEntry{{Key: "a", Column: "U", Value: []byte("1")}}, Quorum); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutBatch([]BatchEntry{{Key: "a", Column: "U", Value: []byte("1")}}, All); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ALL with dead replica = %v, want ErrUnavailable", err)
	}
}
