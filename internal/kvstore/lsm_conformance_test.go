package kvstore

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"muppet/internal/clock"
)

// TestInMemoryAndDurableConformance drives the identical operation
// sequence through an in-memory node and a durable (lsm-backed) node
// and asserts both expose the same visibility rules: newest write
// wins, tombstones hide rows, TTL expiry applies, and scans agree on
// the live set and yield it in ascending key order on both backends.
func TestInMemoryAndDurableConformance(t *testing.T) {
	ck := clock.NewFake(time.Unix(1_700_000_000, 0))
	mem := NewNode("mem", NodeConfig{Clock: ck})
	dur, err := OpenNode("dur", NodeConfig{Clock: ck, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("OpenNode durable: %v", err)
	}
	defer dur.Close()
	nodes := []*Node{mem, dur}

	step := func(op string, fn func(n *Node) error) {
		t.Helper()
		for _, n := range nodes {
			if err := fn(n); err != nil {
				t.Fatalf("%s on %s: %v", op, n.Name(), err)
			}
		}
	}

	// A workload exercising overwrites, tombstones, TTLs, and flushes
	// at different points in each node's lifetime.
	for i := 0; i < 40; i++ {
		k, v := fmt.Sprintf("slate-%02d", i), fmt.Sprintf("v%d", i)
		step("put", func(n *Node) error { _, err := n.Put(k, "state", []byte(v), 0); return err })
	}
	step("flush", func(n *Node) error { n.Flush(); return nil })
	step("overwrite", func(n *Node) error { _, err := n.Put("slate-00", "state", []byte("rewritten"), 0); return err })
	step("delete", func(n *Node) error { _, err := n.Delete("slate-01", "state"); return err })
	step("ttl put", func(n *Node) error {
		_, err := n.Put("ephemeral", "state", []byte("temp"), time.Minute)
		return err
	})
	step("other column", func(n *Node) error { _, err := n.Put("slate-02", "meta", []byte("m"), 0); return err })

	compare := func(label string) {
		t.Helper()
		for i := 0; i < 40; i++ {
			k := fmt.Sprintf("slate-%02d", i)
			mv, _, mok, _, merr := mem.Get(k, "state")
			dv, _, dok, _, derr := dur.Get(k, "state")
			if merr != nil || derr != nil {
				t.Fatalf("%s: Get(%s): mem err %v, dur err %v", label, k, merr, derr)
			}
			if mok != dok || string(mv) != string(dv) {
				t.Fatalf("%s: Get(%s) diverged: mem (%q,%v) vs durable (%q,%v)", label, k, mv, mok, dv, dok)
			}
		}
		_, _, mok, _, _ := mem.Get("ephemeral", "state")
		_, _, dok, _, _ := dur.Get("ephemeral", "state")
		if mok != dok {
			t.Fatalf("%s: TTL visibility diverged: mem %v vs durable %v", label, mok, dok)
		}

		memSeen := map[string]string{}
		var memOrder []string
		mem.Scan("state", func(k string, v []byte) {
			memSeen[k] = string(v)
			memOrder = append(memOrder, k)
		})
		durSeen := map[string]string{}
		var durOrder []string
		dur.Scan("state", func(k string, v []byte) {
			durSeen[k] = string(v)
			durOrder = append(durOrder, k)
		})
		if len(memSeen) != len(durSeen) {
			t.Fatalf("%s: scan live sets differ: mem %d rows, durable %d rows", label, len(memSeen), len(durSeen))
		}
		for k, v := range memSeen {
			if durSeen[k] != v {
				t.Fatalf("%s: scan diverged at %s: mem %q vs durable %q", label, k, v, durSeen[k])
			}
		}
		if !sort.StringsAreSorted(durOrder) {
			t.Fatalf("%s: durable scan not in sorted key order: %v", label, durOrder)
		}
		if !sort.StringsAreSorted(memOrder) {
			t.Fatalf("%s: in-memory scan not in sorted key order: %v", label, memOrder)
		}
	}

	compare("before expiry")
	ck.Advance(2 * time.Minute) // expire "ephemeral" on both
	compare("after expiry")
	step("flush again", func(n *Node) error { n.Flush(); return nil })
	step("compact", func(n *Node) error { n.Compact(); return nil })
	compare("after compaction")

	ms, ds := mem.Stats(), dur.Stats()
	if ms.LiveRows != ds.LiveRows {
		t.Fatalf("LiveRows diverged: mem %d vs durable %d", ms.LiveRows, ds.LiveRows)
	}
	if !ds.Durable || ms.Durable {
		t.Fatalf("Durable flag wrong: mem %v, durable %v", ms.Durable, ds.Durable)
	}
	if ds.Fsyncs == 0 || ds.DiskBytesWritten == 0 {
		t.Fatalf("durable node reported no real I/O: %+v", ds)
	}
}

// TestDurableNodeReopen proves a node restarted on the same directory
// serves every acknowledged row, flushed or not.
func TestDurableNodeReopen(t *testing.T) {
	dir := t.TempDir()
	ck := clock.NewFake(time.Unix(1_700_000_000, 0))
	n, err := OpenNode("n", NodeConfig{Clock: ck, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := n.Put(fmt.Sprintf("k%d", i), "state", []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Flush()
	if _, err := n.Put("unflushed", "state", []byte("wal-only"), 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	n, err = OpenNode("n", NodeConfig{Clock: ck, Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer n.Close()
	for i := 0; i < 10; i++ {
		if _, _, ok, _, _ := n.Get(fmt.Sprintf("k%d", i), "state"); !ok {
			t.Fatalf("k%d lost across restart", i)
		}
	}
	v, _, ok, _, _ := n.Get("unflushed", "state")
	if !ok || string(v) != "wal-only" {
		t.Fatal("WAL-only row lost across restart")
	}
}

// TestDurableClusterReopen proves a whole cluster restarted on the
// same directory tree recovers, and that SetDown/SetDown(false) on a
// durable node keeps its memtable (the WAL already owns those rows).
func TestDurableClusterReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := ClusterConfig{Nodes: 3, ReplicationFactor: 2, Dir: dir}
	c, err := OpenCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Put(fmt.Sprintf("s%02d", i), "state", []byte("v"), 0, Quorum); err != nil {
			t.Fatal(err)
		}
	}

	// Durable kill/revive: unlike the in-memory store, no data loss at
	// all — the revived node still answers from its WAL-backed memtable.
	victim := c.Nodes()[0]
	before := c.Node(victim).Stats().MemtableRows
	c.KillNode(victim)
	c.ReviveNode(victim)
	if after := c.Node(victim).Stats().MemtableRows; after != before {
		t.Fatalf("durable revive lost memtable rows: %d -> %d", before, after)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c, err = OpenCluster(cfg)
	if err != nil {
		t.Fatalf("reopen cluster: %v", err)
	}
	defer c.Close()
	for i := 0; i < 20; i++ {
		v, ok, _, err := c.Get(fmt.Sprintf("s%02d", i), "state", Quorum)
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("s%02d lost across cluster restart (ok=%v, err=%v)", i, ok, err)
		}
	}
}
