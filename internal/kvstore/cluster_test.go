package kvstore

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"muppet/internal/storage"
)

func testCluster(nodes, rf int) *Cluster {
	return NewCluster(ClusterConfig{
		Nodes:             nodes,
		ReplicationFactor: rf,
		NetworkRTT:        time.Millisecond,
		RTTJitter:         time.Millisecond,
		Seed:              7,
	})
}

func TestClusterPutGetAllLevels(t *testing.T) {
	for _, level := range []Consistency{One, Quorum, All} {
		c := testCluster(5, 3)
		if _, err := c.Put("k", "U", []byte("v"), 0, level); err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		v, found, _, err := c.Get("k", "U", level)
		if err != nil || !found || string(v) != "v" {
			t.Fatalf("%v: found=%v v=%q err=%v", level, found, v, err)
		}
	}
}

func TestReplicationFactorRespected(t *testing.T) {
	c := testCluster(5, 3)
	c.Put("k", "U", []byte("v"), 0, All)
	holders := 0
	for _, name := range c.Nodes() {
		if _, _, found, _, _ := c.Node(name).Get("k", "U"); found {
			holders++
		}
	}
	if holders != 3 {
		t.Fatalf("row on %d nodes, want RF=3", holders)
	}
}

func TestQuorumRequiredCounts(t *testing.T) {
	if One.required(3) != 1 || Quorum.required(3) != 2 || All.required(3) != 3 {
		t.Fatal("required counts wrong for rf=3")
	}
	if Quorum.required(5) != 3 || Quorum.required(4) != 3 {
		t.Fatal("majority math wrong")
	}
}

func TestConsistencyString(t *testing.T) {
	if One.String() != "ONE" || Quorum.String() != "QUORUM" || All.String() != "ALL" || Consistency(9).String() != "UNKNOWN" {
		t.Fatal("consistency names wrong")
	}
}

func TestWriteSurvivesMinorityFailureAtQuorum(t *testing.T) {
	c := testCluster(5, 3)
	c.Put("k", "U", []byte("v"), 0, All)
	reps := c.Replicas(rowKey("k", "U"))
	c.KillNode(reps[0])
	v, found, _, err := c.Get("k", "U", Quorum)
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("quorum read after 1 replica down: found=%v err=%v", found, err)
	}
}

func TestAllFailsWithReplicaDown(t *testing.T) {
	c := testCluster(3, 3)
	c.Put("k", "U", []byte("v"), 0, All)
	c.KillNode(c.Nodes()[0])
	if _, err := c.Put("k", "U", []byte("v2"), 0, All); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ALL write with node down = %v, want ErrUnavailable", err)
	}
}

func TestOneSucceedsWithMajorityDown(t *testing.T) {
	c := testCluster(3, 3)
	c.KillNode("node-00")
	c.KillNode("node-01")
	if _, err := c.Put("k", "U", []byte("v"), 0, One); err != nil {
		t.Fatalf("ONE write with 1 live node: %v", err)
	}
	if _, found, _, err := c.Get("k", "U", One); err != nil || !found {
		t.Fatalf("ONE read: found=%v err=%v", found, err)
	}
}

func TestReadYourWritesAtQuorum(t *testing.T) {
	c := testCluster(5, 3)
	for i := 0; i < 20; i++ {
		want := fmt.Sprintf("v%d", i)
		if _, err := c.Put("k", "U", []byte(want), 0, Quorum); err != nil {
			t.Fatal(err)
		}
		v, found, _, err := c.Get("k", "U", Quorum)
		if err != nil || !found || string(v) != want {
			t.Fatalf("iteration %d: got %q, want %q (err=%v)", i, v, want, err)
		}
	}
}

func TestQuorumLatencyOrdering(t *testing.T) {
	// With parallel replica requests, ONE completes at the fastest
	// replica and ALL at the slowest, so mean latency must be
	// ONE <= QUORUM <= ALL.
	c := testCluster(6, 3)
	var one, quorum, all time.Duration
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%d", i)
		l1, err := c.Put(k, "U", []byte("v"), 0, One)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := c.Put(k, "U", []byte("v"), 0, Quorum)
		if err != nil {
			t.Fatal(err)
		}
		l3, err := c.Put(k, "U", []byte("v"), 0, All)
		if err != nil {
			t.Fatal(err)
		}
		one += l1
		quorum += l2
		all += l3
	}
	if !(one <= quorum && quorum <= all) {
		t.Fatalf("latency ordering violated: ONE=%v QUORUM=%v ALL=%v", one, quorum, all)
	}
	if one == all {
		t.Fatal("jitter produced no spread between ONE and ALL")
	}
}

func TestReadRepairHealsStaleReplica(t *testing.T) {
	c := testCluster(5, 3)
	c.Put("k", "U", []byte("v1"), 0, All)
	reps := c.Replicas(rowKey("k", "U"))
	// Take one replica down, write a newer version at quorum, revive.
	c.KillNode(reps[2])
	if _, err := c.Put("k", "U", []byte("v2"), 0, Quorum); err != nil {
		t.Fatal(err)
	}
	c.ReviveNode(reps[2])
	// Repeated quorum reads eventually include the stale replica and
	// repair it.
	for i := 0; i < 10; i++ {
		v, found, _, err := c.Get("k", "U", All)
		if err != nil || !found || string(v) != "v2" {
			t.Fatalf("read %d after repair: %q found=%v err=%v", i, v, found, err)
		}
	}
	v, _, found, _, _ := c.Node(reps[2]).Get("k", "U")
	if !found || string(v) != "v2" {
		t.Fatalf("stale replica not repaired: %q found=%v", v, found)
	}
}

func TestKillAndReviveNode(t *testing.T) {
	c := testCluster(3, 1)
	c.KillNode("node-01")
	if !c.Node("node-01").Down() {
		t.Fatal("node not down after KillNode")
	}
	c.ReviveNode("node-01")
	if c.Node("node-01").Down() {
		t.Fatal("node still down after ReviveNode")
	}
}

func TestRFClampedToNodeCount(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 2, ReplicationFactor: 5})
	if got := len(c.Replicas("k")); got != 2 {
		t.Fatalf("replica set size %d, want 2", got)
	}
}

func TestClusterScanDeduplicates(t *testing.T) {
	c := testCluster(4, 3)
	c.Put("a", "U", []byte("1"), 0, All)
	c.Put("b", "U", []byte("2"), 0, All)
	seen := map[string]int{}
	c.Scan("U", func(k string, v []byte) { seen[k]++ })
	if len(seen) != 2 || seen["a"] != 1 || seen["b"] != 1 {
		t.Fatalf("scan = %v", seen)
	}
}

func TestTotalStatsAggregates(t *testing.T) {
	c := testCluster(3, 3)
	c.Put("k", "U", []byte("v"), 0, All)
	c.FlushAll()
	s := c.TotalStats()
	if s.Flushes != 3 {
		t.Fatalf("Flushes = %d, want 3 (one per replica)", s.Flushes)
	}
	if s.LiveRows != 3 {
		t.Fatalf("LiveRows = %d, want 3 replicas", s.LiveRows)
	}
}

func TestDeviceProfileAppliedPerNode(t *testing.T) {
	p := storage.HDD()
	c := NewCluster(ClusterConfig{Nodes: 2, ReplicationFactor: 1, DeviceProfile: &p})
	c.Put("k", "U", []byte("v"), 0, One)
	c.FlushAll()
	var busy time.Duration
	for _, n := range c.Nodes() {
		// Get through sstable to charge reads.
		c.Node(n).Get("k", "U")
		busy += time.Duration(c.Node(n).cfg.Device.Stats().BusyTime)
	}
	if busy == 0 {
		t.Fatal("HDD device never charged")
	}
}

func TestClusterDeleteAtQuorum(t *testing.T) {
	c := testCluster(5, 3)
	c.Put("k", "U", []byte("v"), 0, All)
	if _, err := c.Delete("k", "U", Quorum); err != nil {
		t.Fatal(err)
	}
	if _, found, _, _ := c.Get("k", "U", All); found {
		t.Fatal("row readable after quorum delete")
	}
}

func TestCompactAllShrinksRuns(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 2, ReplicationFactor: 2, Node: NodeConfig{CompactionThreshold: 1000}})
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), "U", []byte("v"), 0, All)
		c.FlushAll()
	}
	if s := c.TotalStats(); s.SSTables != 10 {
		t.Fatalf("SSTables = %d, want 10", s.SSTables)
	}
	c.CompactAll()
	if s := c.TotalStats(); s.SSTables != 2 {
		t.Fatalf("SSTables after compaction = %d, want 2", s.SSTables)
	}
}
