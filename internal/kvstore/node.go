package kvstore

import (
	"sort"
	"strings"
	"sync"
	"time"

	"muppet/internal/bloom"
	"muppet/internal/clock"
	"muppet/internal/lsm"
	"muppet/internal/storage"
)

// rowKey composes the <key, column> pair into a single map key. The
// NUL separator cannot appear in Muppet function names.
func rowKey(key, column string) string { return key + "\x00" + column }

func splitRowKey(rk string) (key, column string) {
	i := strings.IndexByte(rk, 0)
	if i < 0 {
		return rk, ""
	}
	return rk[:i], rk[i+1:]
}

// Row is one stored cell with its write metadata.
type Row struct {
	Value     []byte
	WriteTime time.Time
	// TTL of zero means the row lives forever (the paper's default).
	TTL       time.Duration
	Tombstone bool
}

// expired reports whether the row's TTL has lapsed at time now.
func (r Row) expired(now time.Time) bool {
	return r.TTL > 0 && now.Sub(r.WriteTime) > r.TTL
}

// memtable is the in-memory write buffer.
type memtable struct {
	rows map[string]Row
	size int64
}

func newMemtable() *memtable {
	return &memtable{rows: make(map[string]Row)}
}

func (m *memtable) put(rk string, r Row) {
	if old, ok := m.rows[rk]; ok {
		m.size -= int64(len(old.Value) + len(rk))
	}
	m.rows[rk] = r
	m.size += int64(len(r.Value) + len(rk))
}

// sstable is an immutable sorted run with a bloom filter.
type sstable struct {
	keys   []string
	rows   []Row
	filter *bloom.Filter
	bytes  int64
}

func buildSSTable(rows map[string]Row) *sstable {
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := &sstable{
		keys:   keys,
		rows:   make([]Row, len(keys)),
		filter: bloom.New(len(keys), 0.01),
	}
	for i, k := range keys {
		r := rows[k]
		t.rows[i] = r
		t.filter.Add(k)
		t.bytes += int64(len(k) + len(r.Value))
	}
	return t
}

func (t *sstable) get(rk string) (Row, bool) {
	i := sort.SearchStrings(t.keys, rk)
	if i < len(t.keys) && t.keys[i] == rk {
		return t.rows[i], true
	}
	return Row{}, false
}

// NodeConfig tunes a single store node.
type NodeConfig struct {
	// MemtableFlushBytes flushes the memtable to a new sstable once its
	// approximate size exceeds this threshold. Larger values buffer more
	// writes in memory — the §4.2 "delay flushing as long as possible"
	// strategy.
	MemtableFlushBytes int64
	// CompactionThreshold compacts all sstables into one when the run
	// count reaches this value.
	CompactionThreshold int
	// Dir, when non-empty, mounts a durable internal/lsm engine at that
	// directory instead of the in-memory tables: rows survive process
	// restarts, puts are fsync'd before acknowledgement, and Scan order
	// becomes sorted. Empty keeps the historical in-memory node.
	Dir string
	// Device models the node's disk; nil means a free (instant) device.
	// The device remains a simulated cost model even with Dir set — real
	// I/O byte counts are reported separately in NodeStats.
	Device *storage.Device
	// Clock supplies time for TTL bookkeeping; nil means the real clock.
	Clock clock.Clock
}

func (c *NodeConfig) fill() {
	if c.MemtableFlushBytes <= 0 {
		c.MemtableFlushBytes = 4 << 20
	}
	if c.CompactionThreshold <= 0 {
		c.CompactionThreshold = 4
	}
	if c.Device == nil {
		c.Device = storage.NewDevice(storage.Profile{Name: "null"})
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
}

// NodeStats is a snapshot of a node's internals.
type NodeStats struct {
	MemtableRows   int
	MemtableBytes  int64
	SSTables       int
	SSTableBytes   int64
	Flushes        uint64
	Compactions    uint64
	Reads          uint64
	ReadsFromMem   uint64
	SSTableProbes  uint64 // sstables actually read from device
	BloomSkips     uint64 // sstables skipped thanks to the bloom filter
	ExpiredDropped uint64 // rows GC'd by compaction (TTL or tombstone)
	LiveRows       int    // live rows across memtable+sstables (post-merge view)

	// Durable-engine extras, zero for in-memory nodes.
	Durable           bool   // node is backed by an on-disk lsm engine
	Fsyncs            uint64 // real fsyncs issued
	DiskBytesWritten  int64  // real bytes written (WAL + segments)
	DiskBytesRead     int64  // real bytes read off segments
	WALBytes          int64  // bytes in the active write-ahead log
	CompactionBacklog int    // segments past the compaction threshold
}

// Node is one storage server. It is safe for concurrent use and can be
// marked down to simulate a crash.
type Node struct {
	name string
	cfg  NodeConfig

	mu     sync.Mutex
	mem    *memtable
	tables []*sstable  // newest first
	eng    *lsm.Engine // non-nil when cfg.Dir is set (durable mode)
	down   bool
	stats  NodeStats
}

// NewNode returns a node with the given name and configuration. It
// panics if cfg.Dir is set and the durable engine fails to open; use
// OpenNode when the caller can handle the error.
func NewNode(name string, cfg NodeConfig) *Node {
	n, err := OpenNode(name, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// OpenNode returns a node with the given name and configuration. With
// cfg.Dir set it opens (recovering if needed) a durable lsm engine at
// that directory; otherwise the node is purely in-memory and OpenNode
// cannot fail.
func OpenNode(name string, cfg NodeConfig) (*Node, error) {
	cfg.fill()
	n := &Node{name: name, cfg: cfg, mem: newMemtable()}
	if cfg.Dir != "" {
		eng, err := lsm.Open(cfg.Dir, lsm.Options{
			MemtableFlushBytes:  cfg.MemtableFlushBytes,
			CompactionThreshold: cfg.CompactionThreshold,
			Clock:               cfg.Clock,
		})
		if err != nil {
			return nil, err
		}
		n.eng = eng
	}
	return n, nil
}

// Durable reports whether the node is backed by an on-disk engine.
func (n *Node) Durable() bool { return n.eng != nil }

// Close releases the durable engine's files and stops its background
// work. It is a no-op for in-memory nodes.
func (n *Node) Close() error {
	if n.eng != nil {
		return n.eng.Close()
	}
	return nil
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Device returns the node's simulated storage device.
func (n *Node) Device() *storage.Device { return n.cfg.Device }

// SetDown marks the node crashed (true) or recovered (false). An
// in-memory node that recovers keeps its sstables — they are durable —
// but loses its memtable, exactly like a Cassandra restart without a
// commit log replay. (Muppet tolerates this: unflushed slate changes
// are lost on failure, §4.3.) A durable node keeps its memtable too:
// every acknowledged write is already in the write-ahead log, so a
// restart replays it — nothing acknowledged is ever lost.
func (n *Node) SetDown(down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if down && !n.down && n.eng == nil {
		n.mem = newMemtable()
	}
	n.down = down
}

// Down reports whether the node is marked crashed.
func (n *Node) Down() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

// ErrNodeDown is returned by operations on a crashed node.
type ErrNodeDown struct{ Node string }

func (e ErrNodeDown) Error() string { return "kvstore: node " + e.Node + " is down" }

// Put writes value at <key, column> with the given TTL (0 = forever).
// It returns the simulated device time consumed.
func (n *Node) Put(key, column string, value []byte, ttl time.Duration) (time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return 0, ErrNodeDown{n.name}
	}
	now := n.cfg.Clock.Now()
	// Commit-log append: sequential write of the mutation.
	cost := n.cfg.Device.SequentialWrite(int64(len(key) + len(column) + len(value)))
	row := Row{Value: append([]byte(nil), value...), WriteTime: now, TTL: ttl}
	if n.eng != nil {
		return n.putEngineLocked(cost, []lsm.Row{toEngineRow(rowKey(key, column), row)})
	}
	n.mem.put(rowKey(key, column), row)
	if n.mem.size >= n.cfg.MemtableFlushBytes {
		cost += n.flushLocked()
	}
	return cost, nil
}

// putEngineLocked forwards rows to the durable engine — one WAL group
// commit, fsync'd before acknowledgement — and folds any triggered
// memtable flush into the simulated device cost.
func (n *Node) putEngineLocked(cost time.Duration, rows []lsm.Row) (time.Duration, error) {
	flushed, err := n.eng.Put(rows)
	if err != nil {
		return 0, err
	}
	if flushed > 0 {
		cost += n.cfg.Device.SequentialWrite(flushed)
	}
	return cost, nil
}

// toEngineRow converts a node row to the engine's representation.
func toEngineRow(rk string, r Row) lsm.Row {
	return lsm.Row{Key: rk, Value: r.Value, WriteTime: r.WriteTime, TTL: r.TTL, Tombstone: r.Tombstone}
}

// fromEngineRow converts back; the row key is returned separately.
func fromEngineRow(r lsm.Row) Row {
	return Row{Value: r.Value, WriteTime: r.WriteTime, TTL: r.TTL, Tombstone: r.Tombstone}
}

// BatchEntry is one write inside a multi-put batch.
type BatchEntry struct {
	Key    string
	Column string
	Value  []byte
	// TTL of zero means the row lives forever.
	TTL time.Duration
}

// PutBatch applies a batch of writes under a single lock acquisition
// and a single commit-log append — the group-commit device win: the
// per-operation seek is paid once for the whole batch instead of once
// per row. It returns the simulated device time consumed.
func (n *Node) PutBatch(entries []BatchEntry) (time.Duration, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return 0, ErrNodeDown{n.name}
	}
	now := n.cfg.Clock.Now()
	var logBytes int64
	for _, e := range entries {
		logBytes += int64(len(e.Key) + len(e.Column) + len(e.Value))
	}
	cost := n.cfg.Device.SequentialWrite(logBytes)
	if n.eng != nil {
		rows := make([]lsm.Row, len(entries))
		for i, e := range entries {
			rows[i] = toEngineRow(rowKey(e.Key, e.Column),
				Row{Value: append([]byte(nil), e.Value...), WriteTime: now, TTL: e.TTL})
		}
		return n.putEngineLocked(cost, rows)
	}
	for _, e := range entries {
		n.mem.put(rowKey(e.Key, e.Column), Row{Value: append([]byte(nil), e.Value...), WriteTime: now, TTL: e.TTL})
	}
	if n.mem.size >= n.cfg.MemtableFlushBytes {
		cost += n.flushLocked()
	}
	return cost, nil
}

// Delete writes a tombstone for <key, column>.
func (n *Node) Delete(key, column string) (time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return 0, ErrNodeDown{n.name}
	}
	cost := n.cfg.Device.SequentialWrite(int64(len(key) + len(column)))
	row := Row{WriteTime: n.cfg.Clock.Now(), Tombstone: true}
	if n.eng != nil {
		return n.putEngineLocked(cost, []lsm.Row{toEngineRow(rowKey(key, column), row)})
	}
	n.mem.put(rowKey(key, column), row)
	if n.mem.size >= n.cfg.MemtableFlushBytes {
		cost += n.flushLocked()
	}
	return cost, nil
}

// Get reads <key, column>. The boolean reports whether a live row was
// found. Expired and tombstoned rows read as absent.
func (n *Node) Get(key, column string) ([]byte, Row, bool, time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil, Row{}, false, 0, ErrNodeDown{n.name}
	}
	rk := rowKey(key, column)
	now := n.cfg.Clock.Now()
	if n.eng != nil {
		er, ok, bytesRead, err := n.eng.Get(rk)
		if err != nil {
			return nil, Row{}, false, 0, err
		}
		var cost time.Duration
		if bytesRead > 0 {
			cost = n.cfg.Device.Read(bytesRead)
		}
		if !ok {
			return nil, Row{}, false, cost, nil
		}
		r := fromEngineRow(er)
		if r.Tombstone || r.expired(now) {
			return nil, r, false, cost, nil
		}
		return r.Value, r, true, cost, nil
	}
	n.stats.Reads++
	if r, ok := n.mem.rows[rk]; ok {
		n.stats.ReadsFromMem++
		if r.Tombstone || r.expired(now) {
			return nil, r, false, 0, nil
		}
		return r.Value, r, true, 0, nil
	}
	var cost time.Duration
	for _, t := range n.tables {
		if !t.filter.MayContain(rk) {
			n.stats.BloomSkips++
			continue
		}
		r, ok := t.get(rk)
		// A bloom hit costs a device read whether or not the row is
		// there (false positives still seek).
		n.stats.SSTableProbes++
		cost += n.cfg.Device.Read(int64(len(rk) + len(r.Value) + 64))
		if !ok {
			continue
		}
		if r.Tombstone || r.expired(now) {
			return nil, r, false, cost, nil
		}
		return r.Value, r, true, cost, nil
	}
	return nil, Row{}, false, cost, nil
}

// Flush forces the memtable to disk as a new sstable and returns the
// simulated device time.
func (n *Node) Flush() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return 0
	}
	return n.flushLocked()
}

func (n *Node) flushLocked() time.Duration {
	if n.eng != nil {
		written, err := n.eng.Flush()
		if err != nil || written == 0 {
			return 0
		}
		return n.cfg.Device.SequentialWrite(written)
	}
	if len(n.mem.rows) == 0 {
		return 0
	}
	t := buildSSTable(n.mem.rows)
	n.tables = append([]*sstable{t}, n.tables...)
	n.mem = newMemtable()
	n.stats.Flushes++
	cost := n.cfg.Device.SequentialWrite(t.bytes)
	if len(n.tables) >= n.cfg.CompactionThreshold {
		cost += n.compactLocked()
	}
	return cost
}

// Compact merges all sstables into one, dropping tombstones and
// TTL-expired rows, and returns the simulated device time.
func (n *Node) Compact() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return 0
	}
	return n.compactLocked()
}

func (n *Node) compactLocked() time.Duration {
	if n.eng != nil {
		read, written, err := n.eng.Compact()
		if err != nil {
			return 0
		}
		return n.cfg.Device.Read(read) + n.cfg.Device.SequentialWrite(written)
	}
	if len(n.tables) == 0 {
		return 0
	}
	now := n.cfg.Clock.Now()
	merged := make(map[string]Row)
	var readBytes int64
	// Oldest first so newer runs overwrite older rows.
	for i := len(n.tables) - 1; i >= 0; i-- {
		t := n.tables[i]
		readBytes += t.bytes
		for j, k := range t.keys {
			merged[k] = t.rows[j]
		}
	}
	for k, r := range merged {
		if r.Tombstone || r.expired(now) {
			delete(merged, k)
			n.stats.ExpiredDropped++
		}
	}
	cost := n.cfg.Device.Read(readBytes)
	if len(merged) == 0 {
		n.tables = nil
		n.stats.Compactions++
		return cost
	}
	t := buildSSTable(merged)
	n.tables = []*sstable{t}
	n.stats.Compactions++
	cost += n.cfg.Device.SequentialWrite(t.bytes)
	return cost
}

// Stats returns a snapshot of the node's internals, including a merged
// live-row count (memtable over sstables, TTL and tombstones applied).
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.eng != nil {
		es := n.eng.Stats()
		s := NodeStats{
			MemtableRows:   es.MemtableRows,
			MemtableBytes:  es.MemtableBytes,
			SSTables:       es.Segments,
			SSTableBytes:   es.SegmentBytes,
			Flushes:        uint64(es.Flushes),
			Compactions:    uint64(es.Compactions),
			Reads:          uint64(es.Reads),
			ReadsFromMem:   uint64(es.ReadsFromMem),
			SSTableProbes:  uint64(es.SegmentProbes),
			BloomSkips:     uint64(es.BloomSkips),
			ExpiredDropped: uint64(es.ExpiredDropped),

			Durable:           true,
			Fsyncs:            uint64(es.Fsyncs),
			DiskBytesWritten:  es.BytesWritten,
			DiskBytesRead:     es.BytesRead,
			WALBytes:          es.WALBytes,
			CompactionBacklog: es.CompactionBacklog,
		}
		if live, err := n.eng.LiveRows(); err == nil {
			s.LiveRows = live
		}
		return s
	}
	s := n.stats
	s.MemtableRows = len(n.mem.rows)
	s.MemtableBytes = n.mem.size
	s.SSTables = len(n.tables)
	now := n.cfg.Clock.Now()
	live := make(map[string]bool)
	for i := len(n.tables) - 1; i >= 0; i-- {
		t := n.tables[i]
		s.SSTableBytes += t.bytes
		for j, k := range t.keys {
			r := t.rows[j]
			live[k] = !r.Tombstone && !r.expired(now)
		}
	}
	for k, r := range n.mem.rows {
		live[k] = !r.Tombstone && !r.expired(now)
	}
	for _, ok := range live {
		if ok {
			s.LiveRows++
		}
	}
	return s
}

// Scan calls fn for every live row in the node whose column matches
// the given column (the bulk slate-read path of Section 5). Rows
// arrive in ascending row-key order on both backends: a durable node
// (NodeConfig.Dir set) yields the lsm engine's merged-segment order,
// and an in-memory node sorts its merged view to match — one ordered
// contract across backends, which the query subsystem's range scans
// rely on.
func (n *Node) Scan(column string, fn func(key string, value []byte)) {
	n.ScanUntil(column, func(k string, v []byte) bool {
		fn(k, v)
		return true
	})
}

// ScanUntil is Scan with early termination: it stops as soon as fn
// returns false. The rejoin cache-warming path uses it to stop at its
// warm limit instead of sweeping the whole store.
func (n *Node) ScanUntil(column string, fn func(key string, value []byte) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return
	}
	if n.eng != nil {
		n.eng.Scan(func(r lsm.Row) bool {
			k, col := splitRowKey(r.Key)
			if col != column {
				return true
			}
			return fn(k, r.Value)
		})
		return
	}
	now := n.cfg.Clock.Now()
	seen := make(map[string]Row)
	for i := len(n.tables) - 1; i >= 0; i-- {
		t := n.tables[i]
		for j, k := range t.keys {
			seen[k] = t.rows[j]
		}
	}
	for k, r := range n.mem.rows {
		seen[k] = r
	}
	keys := make([]string, 0, len(seen))
	for rk := range seen {
		keys = append(keys, rk)
	}
	sort.Strings(keys)
	for _, rk := range keys {
		r := seen[rk]
		if r.Tombstone || r.expired(now) {
			continue
		}
		k, col := splitRowKey(rk)
		if col == column {
			if !fn(k, r.Value) {
				return
			}
		}
	}
}
