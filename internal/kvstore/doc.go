// Package kvstore is a from-scratch, stdlib-only stand-in for the
// Cassandra cluster Muppet persists slates to (Section 4.2 of the
// paper). It reproduces the pieces of Cassandra the paper's arguments
// depend on:
//
//   - a log-structured write path: writes land in an in-memory memtable
//     and are flushed as immutable sorted runs ("sstables"); the more
//     runs a row is spread over, the more files a read must check —
//     exactly the §4.2 observation about delayed flushing;
//   - size-tiered compaction that merges runs, drops tombstones, and
//     garbage-collects TTL-expired rows;
//   - per-write time-to-live, used by Muppet to bound slate storage;
//   - column-family addressing: a value is indexed by <row key, column>,
//     and Muppet stores slate S(U,k) at row k, column U;
//   - tunable consistency (ONE / QUORUM / ALL) over N-way replication
//     (see cluster.go);
//   - per-SSTable bloom filters on the read path.
//
// Real disks are replaced by the internal/storage cost model so that
// the SSD-vs-HDD argument of §4.2 is measurable without hardware.
//
// # Durable mode
//
// Setting NodeConfig.Dir (or ClusterConfig.Dir) mounts the
// internal/lsm engine under each node instead of the in-memory
// tables: acknowledged writes are fsync'd into a write-ahead log
// before Put returns, memtables flush to real segment files, and a
// node reopened on the same directory recovers exactly its
// acknowledged rows — including ones that were only in the WAL. The
// simulated device cost model still applies on top; real bytes and
// fsyncs are reported in the NodeStats durable extras. Visibility
// rules (newest write wins, tombstones, TTL expiry) are identical in
// both modes — lsm_conformance_test.go drives the same workload
// through each and asserts agreement. Iteration order is part of the
// shared contract: Scan/ScanUntil yield ascending row-key order on
// both backends (the in-memory node sorts its merged view to match
// the lsm engine), so range scans behave identically everywhere.
//
// # Contract
//
// A Cluster places each row on ReplicationFactor nodes by consistent
// hashing and answers Put/Get/Delete at the requested consistency
// level; an operation succeeds once the required number of replicas
// acknowledge, and fails when live replicas are insufficient. Reads
// resolve replica divergence by last-write-wins on write timestamp.
// In a multi-process Muppet deployment each node runs its own store;
// a shared store across engines stands in for the paper's shared
// Cassandra cluster and is what cross-node slate reads rely on.
//
// # Concurrency
//
// Each node serializes its memtable and sstable set under one mutex;
// the cluster holds a separate mutex for membership (kill/revive) and
// latency jitter. Calls into different nodes proceed in parallel.
// KillNode makes a replica unavailable without losing its flushed
// data, mirroring a Cassandra node crash: ONE-level operations keep
// succeeding while any replica lives, which is the paper's
// availability argument for slate storage.
package kvstore
