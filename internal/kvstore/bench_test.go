package kvstore

import (
	"fmt"
	"testing"
)

func BenchmarkNodePut(b *testing.B) {
	n := NewNode("b", NodeConfig{MemtableFlushBytes: 1 << 30})
	v := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Put(fmt.Sprintf("k%d", i%65536), "U", v, 0)
	}
}

func BenchmarkNodeGetMemtable(b *testing.B) {
	n := NewNode("b", NodeConfig{MemtableFlushBytes: 1 << 30})
	for i := 0; i < 10000; i++ {
		n.Put(fmt.Sprintf("k%d", i), "U", []byte("v"), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Get(fmt.Sprintf("k%d", i%10000), "U")
	}
}

func BenchmarkNodeGetSSTable(b *testing.B) {
	n := NewNode("b", NodeConfig{CompactionThreshold: 1 << 30})
	for i := 0; i < 10000; i++ {
		n.Put(fmt.Sprintf("k%d", i), "U", []byte("v"), 0)
	}
	n.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Get(fmt.Sprintf("k%d", i%10000), "U")
	}
}

func BenchmarkClusterPutQuorum(b *testing.B) {
	c := NewCluster(ClusterConfig{Nodes: 5, ReplicationFactor: 3})
	v := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(fmt.Sprintf("k%d", i%65536), "U", v, 0, Quorum)
	}
}

func BenchmarkCompaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n := NewNode("b", NodeConfig{CompactionThreshold: 1 << 30})
		for r := 0; r < 4; r++ {
			for k := 0; k < 2500; k++ {
				n.Put(fmt.Sprintf("k%d", k+r*1000), "U", []byte("v"), 0)
			}
			n.Flush()
		}
		b.StartTimer()
		n.Compact()
	}
}
