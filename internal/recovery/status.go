package recovery

import "time"

// Report summarizes one machine failure's recovery: what was lost,
// what the WAL restored, and what was redelivered.
type Report struct {
	// Machine is the failed machine.
	Machine string `json:"machine"`
	// Detected is true once the master's failure broadcast has driven
	// the full failover (ring update and redelivery); a stock operator
	// crash before detection leaves it false.
	Detected bool `json:"detected"`
	// QueuedLost counts queued events that died with the machine and
	// were recorded in the lost log.
	QueuedLost int `json:"queued_lost"`
	// DirtyLost counts dirty (unflushed) slates lost with the cache.
	DirtyLost int `json:"dirty_slates_lost"`
	// WALBatchesReplayed and WALRecordsReplayed count the group-commit
	// flush batches restored into the durable store; WALReplayErrors
	// counts logs whose replay failed (they are retained for retry).
	WALBatchesReplayed int `json:"wal_batches_replayed"`
	WALRecordsReplayed int `json:"wal_records_replayed"`
	WALReplayErrors    int `json:"wal_replay_errors,omitempty"`
	// Redelivered counts unacknowledged events redelivered to the keys'
	// new ring owners.
	Redelivered int `json:"events_redelivered"`
	// Took is the wall-clock duration of the recovery work so far.
	Took time.Duration `json:"took_ns"`
	// At is when the recovery began.
	At time.Time `json:"at"`
}

// RejoinReport summarizes one machine revival.
type RejoinReport struct {
	// Machine is the revived machine.
	Machine string `json:"machine"`
	// Restarted reports whether worker goroutines had to be recreated
	// (true when the crash cleanup had closed the machine's queues).
	Restarted bool `json:"restarted"`
	// Warmed counts slates pre-loaded into the machine's cache from the
	// durable store.
	Warmed int `json:"slates_warmed"`
	// Took is the wall-clock duration of the rejoin.
	Took time.Duration `json:"took_ns"`
	// At is when the rejoin completed.
	At time.Time `json:"at"`
}

// MachineStatus is one machine's recovery view.
type MachineStatus struct {
	Name string `json:"name"`
	// Alive reports whether the simulated machine is up.
	Alive bool `json:"alive"`
	// InRing reports whether the engine's ring still routes to it.
	InRing bool `json:"in_ring"`
	// Failed reports whether the master currently knows it as failed.
	Failed bool `json:"failed"`
	// Suspicion is the machine's current run of consecutive
	// exhausted-retry send failures (0 when unsuspected; reaching the
	// configured SuspicionK escalates to machine-down).
	Suspicion int `json:"suspicion,omitempty"`
}

// Status is a snapshot of the recovery subsystem, served by the
// /recovery HTTP endpoint for operators.
type Status struct {
	Machines        []MachineStatus `json:"machines"`
	DetectorEnabled bool            `json:"detector_enabled"`
	WALReplay       bool            `json:"wal_replay_enabled"`
	SendFailures    uint64          `json:"send_failures_observed"`
	TransientFails  uint64          `json:"transient_failures_observed"`
	Escalations     uint64          `json:"suspicion_escalations"`
	SuspicionK      int             `json:"suspicion_k"`
	Failovers       uint64          `json:"failovers"`
	Rejoins         uint64          `json:"rejoins"`
	QueuedLost      uint64          `json:"queued_lost"`
	DirtyLost       uint64          `json:"dirty_slates_lost"`
	WALBatches      uint64          `json:"wal_batches_replayed"`
	WALRecords      uint64          `json:"wal_records_replayed"`
	WALErrors       uint64          `json:"wal_replay_errors,omitempty"`
	Redelivered     uint64          `json:"events_redelivered"`
	Warmed          uint64          `json:"slates_warmed"`
	FailoverLatency string          `json:"failover_latency,omitempty"`
	RejoinLatency   string          `json:"rejoin_latency,omitempty"`
	LastFailover    *Report         `json:"last_failover,omitempty"`
	LastRejoin      *RejoinReport   `json:"last_rejoin,omitempty"`
}

// Status snapshots the subsystem: per-machine liveness and ring
// membership, lifetime recovery counters, latency summaries, and the
// most recent failover and rejoin reports.
func (m *Manager) Status() Status {
	members := m.deps.Adapter.RingMembers()
	failed := make(map[string]bool)
	for _, f := range m.deps.Cluster.Master().FailedMachines() {
		failed[f] = true
	}
	suspects := m.det.Suspects()
	var machines []MachineStatus
	for _, name := range m.deps.Cluster.MachineNames() {
		machines = append(machines, MachineStatus{
			Name:      name,
			Alive:     m.deps.Cluster.Machine(name).Alive(),
			InRing:    members[name],
			Failed:    failed[name],
			Suspicion: suspects[name],
		})
	}
	st := Status{
		Machines:        machines,
		DetectorEnabled: m.det.Enabled(),
		WALReplay:       !m.cfg.DisableWALReplay && m.deps.Store != nil,
		SendFailures:    m.det.Observed(),
		TransientFails:  m.det.TransientObserved(),
		Escalations:     m.det.Escalated(),
		SuspicionK:      m.cfg.SuspicionK,
		Failovers:       m.failovers.Load(),
		Rejoins:         m.rejoins.Load(),
		QueuedLost:      m.queuedLost.Load(),
		DirtyLost:       m.dirtyLost.Load(),
		WALBatches:      m.walBatches.Load(),
		WALRecords:      m.walRecords.Load(),
		WALErrors:       m.walErrors.Load(),
		Redelivered:     m.redelivered.Load(),
		Warmed:          m.warmed.Load(),
	}
	if m.failoverLatency.Count() > 0 {
		st.FailoverLatency = m.failoverLatency.Summary()
	}
	if m.rejoinLatency.Count() > 0 {
		st.RejoinLatency = m.rejoinLatency.Summary()
	}
	m.mu.Lock()
	st.LastFailover = m.lastFail
	st.LastRejoin = m.lastJoin
	m.mu.Unlock()
	return st
}
