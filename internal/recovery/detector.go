package recovery

import (
	"sync/atomic"

	"muppet/internal/cluster"
	"muppet/internal/engine"
)

// Detector is the failure detector of Section 4.3: Muppet detects
// failures on the data path, when a send to a machine fails, rather
// than by periodic pings. Engines call ObserveSendFailure from their
// delivery loops on every cluster.ErrMachineDown; the detector
// forwards the first observation of each machine to the master, whose
// broadcast triggers the failover protocol.
type Detector struct {
	master   *cluster.Master
	counters *engine.Counters
	disabled bool

	observed atomic.Uint64
	detected atomic.Uint64
}

// ObserveSendFailure records one failed send to the machine and, unless
// the detector is disabled, reports it to the master. The master
// absorbs duplicate reports; only the first triggers the failure
// broadcast.
func (d *Detector) ObserveSendFailure(machine string) {
	d.observed.Add(1)
	if d.disabled {
		return
	}
	if d.counters != nil {
		d.counters.FailureReports.Add(1)
	}
	if d.master.ReportFailure(machine) {
		d.detected.Add(1)
	}
}

// Enabled reports whether failed sends are forwarded to the master.
func (d *Detector) Enabled() bool { return !d.disabled }

// Observed returns the number of failed sends seen, including
// duplicates for already-known failures.
func (d *Detector) Observed() uint64 { return d.observed.Load() }

// Detected returns the number of first reports — failures this
// detector was the first to notify the master about.
func (d *Detector) Detected() uint64 { return d.detected.Load() }
