package recovery

import (
	"sync"
	"sync/atomic"
	"time"

	"muppet/internal/cluster"
	"muppet/internal/engine"
)

// Detector is the failure detector of Section 4.3: Muppet detects
// failures on the data path, when a send to a machine fails, rather
// than by periodic pings. PR 9 splits the signal in two:
//
//   - Fatal observations (cluster.ErrMachineDown — the hosting node
//     answered that the machine is crashed) are forwarded to the
//     master immediately, exactly as before.
//
//   - Transient observations (a send whose bounded retry budget was
//     exhausted by network blips) only raise *suspicion*. The machine
//     is reported down when SuspicionK consecutive exhausted sends
//     land within SuspicionWindow; a single successful send — or a
//     rejoin — clears the count. A blip therefore degrades to a retry
//     instead of tearing down a healthy machine's ring position.
//
// When suspicion confirms, the detector records the crash presumption
// on the local cluster view *before* reporting to the master: the
// manager's stale-report guard drops failure reports for machines
// still presumed alive, and the ordering makes an escalated suspicion
// indistinguishable from an authoritative detect-on-send.
type Detector struct {
	master   *cluster.Master
	clu      *cluster.Cluster
	counters *engine.Counters
	disabled bool

	k      int
	window time.Duration

	observed  atomic.Uint64
	transient atomic.Uint64
	escalated atomic.Uint64
	detected  atomic.Uint64

	suspectedN atomic.Int64 // fast-path gate for ObserveSendOK
	mu         sync.Mutex
	suspects   map[string]*suspicion
}

// suspicion is one machine's run of consecutive transient failures.
type suspicion struct {
	count int
	first time.Time
}

// ObserveSendFailure records one authoritatively failed send
// (ErrMachineDown) to the machine and, unless the detector is
// disabled, reports it to the master. The master absorbs duplicate
// reports; only the first triggers the failure broadcast.
func (d *Detector) ObserveSendFailure(machine string) {
	d.observed.Add(1)
	if d.disabled {
		return
	}
	d.clearSuspicion(machine) // the verdict is in; the tally is moot
	if d.counters != nil {
		d.counters.FailureReports.Add(1)
	}
	if d.master.ReportFailure(machine) {
		d.detected.Add(1)
	}
}

// ObserveTransientFailure records one send whose retry budget was
// exhausted by transient faults. It escalates to a machine-down report
// only when SuspicionK consecutive exhausted sends accumulate within
// SuspicionWindow — the suspicion state machine that keeps a blip from
// triggering failover.
func (d *Detector) ObserveTransientFailure(machine string) {
	d.transient.Add(1)
	if d.disabled {
		return
	}
	now := time.Now()
	d.mu.Lock()
	s := d.suspects[machine]
	if s == nil {
		s = &suspicion{first: now}
		d.suspects[machine] = s
		d.suspectedN.Add(1)
	} else if d.window > 0 && now.Sub(s.first) > d.window {
		// The previous run went stale without confirming; this failure
		// starts a new one.
		s.count = 0
		s.first = now
	}
	s.count++
	confirmed := s.count >= d.k
	if confirmed {
		delete(d.suspects, machine)
		d.suspectedN.Add(-1)
	}
	d.mu.Unlock()
	if !confirmed {
		return
	}
	d.escalated.Add(1)
	// Record the presumption locally first: the manager drops failure
	// reports for machines its cluster view still calls alive.
	d.clu.Crash(machine)
	if d.counters != nil {
		d.counters.FailureReports.Add(1)
	}
	if d.master.ReportFailure(machine) {
		d.detected.Add(1)
	}
}

// ObserveSendOK clears the machine's suspicion: consecutive means
// consecutive, and one delivered batch proves the machine reachable.
func (d *Detector) ObserveSendOK(machine string) {
	if d.suspectedN.Load() == 0 {
		return // hot path: nobody is suspected
	}
	d.clearSuspicion(machine)
}

// Reset drops any residual suspicion for the machine; the rejoin
// protocol calls it so a revived machine starts with a clean slate.
func (d *Detector) Reset(machine string) {
	d.clearSuspicion(machine)
}

func (d *Detector) clearSuspicion(machine string) {
	d.mu.Lock()
	if _, ok := d.suspects[machine]; ok {
		delete(d.suspects, machine)
		d.suspectedN.Add(-1)
	}
	d.mu.Unlock()
}

// SuspicionLevel reports the machine's current run of consecutive
// transient failures (0 when unsuspected).
func (d *Detector) SuspicionLevel(machine string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s := d.suspects[machine]; s != nil {
		return s.count
	}
	return 0
}

// Suspects returns the machines currently under suspicion and their
// levels.
func (d *Detector) Suspects() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.suspects) == 0 {
		return nil
	}
	out := make(map[string]int, len(d.suspects))
	for machine, s := range d.suspects {
		out[machine] = s.count
	}
	return out
}

// Enabled reports whether failed sends are forwarded to the master.
func (d *Detector) Enabled() bool { return !d.disabled }

// Observed returns the number of authoritatively failed sends seen,
// including duplicates for already-known failures.
func (d *Detector) Observed() uint64 { return d.observed.Load() }

// TransientObserved returns the number of exhausted-retry observations.
func (d *Detector) TransientObserved() uint64 { return d.transient.Load() }

// Escalated returns the number of suspicion confirmations — transient
// runs that crossed SuspicionK and were escalated to machine-down.
func (d *Detector) Escalated() uint64 { return d.escalated.Load() }

// Detected returns the number of first reports — failures this
// detector was the first to notify the master about.
func (d *Detector) Detected() uint64 { return d.detected.Load() }
