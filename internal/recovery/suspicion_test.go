package recovery

import (
	"testing"
	"time"
)

// TestSuspicionEscalatesAfterK: K consecutive exhausted-retry
// observations confirm the suspicion and drive a full failover —
// cluster crash presumption, master report, ring removal — exactly as
// an authoritative detect-on-send would.
func TestSuspicionEscalatesAfterK(t *testing.T) {
	m, ad, _, clu, _ := harness(false, Config{SuspicionK: 3})
	const victim = "machine-01"
	det := m.Detector()

	det.ObserveTransientFailure(victim)
	det.ObserveTransientFailure(victim)
	if !clu.Machine(victim).Alive() || !ad.inRing(victim) {
		t.Fatal("suspicion below K tore the machine down")
	}
	if lvl := det.SuspicionLevel(victim); lvl != 2 {
		t.Fatalf("suspicion level = %d, want 2", lvl)
	}
	if got := clu.Master().FailedMachines(); len(got) != 0 {
		t.Fatalf("master notified before confirmation: %v", got)
	}

	det.ObserveTransientFailure(victim)
	if clu.Machine(victim).Alive() {
		t.Fatal("confirmed suspicion did not record the crash presumption")
	}
	if ad.inRing(victim) {
		t.Fatal("confirmed suspicion did not drive failover")
	}
	if got := clu.Master().FailedMachines(); len(got) != 1 || got[0] != victim {
		t.Fatalf("master failed set = %v, want [%s]", got, victim)
	}
	if det.Escalated() != 1 || det.TransientObserved() != 3 {
		t.Fatalf("detector counts: escalated=%d transient=%d, want 1/3",
			det.Escalated(), det.TransientObserved())
	}
	if lvl := det.SuspicionLevel(victim); lvl != 0 {
		t.Fatalf("suspicion level after escalation = %d, want 0", lvl)
	}
	st := m.Status()
	if st.Escalations != 1 || st.TransientFails != 3 || st.SuspicionK != 3 {
		t.Fatalf("status = escalations %d / transient %d / k %d, want 1/3/3",
			st.Escalations, st.TransientFails, st.SuspicionK)
	}
}

// TestSuspicionClearedBySendOK pins the single-blip guarantee:
// "consecutive" means consecutive, so a delivered batch between blips
// restarts the count and no failover ever fires.
func TestSuspicionClearedBySendOK(t *testing.T) {
	m, ad, _, clu, _ := harness(false, Config{SuspicionK: 3})
	const victim = "machine-02"
	det := m.Detector()

	for round := 0; round < 5; round++ {
		det.ObserveTransientFailure(victim)
		det.ObserveTransientFailure(victim)
		det.ObserveSendOK(victim)
		if lvl := det.SuspicionLevel(victim); lvl != 0 {
			t.Fatalf("round %d: level = %d after OK, want 0", round, lvl)
		}
	}
	if !clu.Machine(victim).Alive() || !ad.inRing(victim) {
		t.Fatal("interleaved blips escalated despite successful sends")
	}
	if det.Escalated() != 0 {
		t.Fatalf("escalations = %d, want 0", det.Escalated())
	}
}

// TestSuspicionWindowExpiry: a run that goes stale without confirming
// restarts from the next failure instead of accumulating forever.
func TestSuspicionWindowExpiry(t *testing.T) {
	m, _, _, _, _ := harness(false, Config{SuspicionK: 3, SuspicionWindow: 30 * time.Millisecond})
	const victim = "machine-00"
	det := m.Detector()

	det.ObserveTransientFailure(victim)
	det.ObserveTransientFailure(victim)
	time.Sleep(60 * time.Millisecond)
	det.ObserveTransientFailure(victim)
	if lvl := det.SuspicionLevel(victim); lvl != 1 {
		t.Fatalf("level after stale window = %d, want 1 (fresh run)", lvl)
	}
	if det.Escalated() != 0 {
		t.Fatalf("stale run escalated: %d", det.Escalated())
	}
}

// TestSuspicionAuthoritativeVerdictPreempts: an ErrMachineDown report
// supersedes any partial suspicion tally — and clears it, so the count
// cannot linger past the failover.
func TestSuspicionAuthoritativeVerdictPreempts(t *testing.T) {
	m, ad, _, clu, _ := harness(false, Config{SuspicionK: 5})
	const victim = "machine-01"
	det := m.Detector()

	det.ObserveTransientFailure(victim)
	det.ObserveTransientFailure(victim)
	clu.Crash(victim)
	det.ObserveSendFailure(victim)
	if ad.inRing(victim) {
		t.Fatal("authoritative report did not fail over")
	}
	if lvl := det.SuspicionLevel(victim); lvl != 0 {
		t.Fatalf("residual suspicion after authoritative verdict: %d", lvl)
	}
}

// TestSuspicionDisabledDetector: with the detector disabled, transient
// observations are counted but never escalate.
func TestSuspicionDisabledDetector(t *testing.T) {
	m, ad, _, clu, _ := harness(false, Config{DisableDetector: true, SuspicionK: 1})
	const victim = "machine-02"
	det := m.Detector()
	for i := 0; i < 4; i++ {
		det.ObserveTransientFailure(victim)
	}
	if !clu.Machine(victim).Alive() || !ad.inRing(victim) {
		t.Fatal("disabled detector escalated suspicion")
	}
	if det.TransientObserved() != 4 {
		t.Fatalf("transient observations = %d, want 4", det.TransientObserved())
	}
	if det.SuspicionLevel(victim) != 0 {
		t.Fatal("disabled detector accumulated suspicion state")
	}
}

// TestRejoinClearsSuspicion: the rejoin protocol hands the machine back
// with a clean slate — no residual suspicion from before the crash, and
// the full K budget available against fresh blips.
func TestRejoinClearsSuspicion(t *testing.T) {
	m, ad, _, clu, _ := harness(false, Config{SuspicionK: 3})
	const victim = "machine-01"
	det := m.Detector()

	// Escalate through the suspicion path: confirmed at K, failover runs.
	det.ObserveTransientFailure(victim)
	det.ObserveTransientFailure(victim)
	det.ObserveTransientFailure(victim)
	if ad.inRing(victim) {
		t.Fatal("setup: suspicion did not fail the machine over")
	}
	// Post-failover straggler: a send that exhausted retries before the
	// failover lands its observation late and re-seeds the tally.
	det.ObserveTransientFailure(victim)
	if lvl := det.SuspicionLevel(victim); lvl != 1 {
		t.Fatalf("straggler suspicion level = %d, want 1", lvl)
	}

	if _, err := m.Rejoin(victim); err != nil {
		t.Fatal(err)
	}
	if !clu.Machine(victim).Alive() || !ad.inRing(victim) {
		t.Fatal("machine not healthy after rejoin")
	}
	if lvl := det.SuspicionLevel(victim); lvl != 0 {
		t.Fatalf("suspicion survived the rejoin: level %d", lvl)
	}

	// The rejoined machine gets the full budget: K-1 fresh blips must
	// not tear it down again.
	det.ObserveTransientFailure(victim)
	det.ObserveTransientFailure(victim)
	if !ad.inRing(victim) || !clu.Machine(victim).Alive() {
		t.Fatal("rejoined machine failed over below the fresh-K threshold")
	}
	det.ObserveSendOK(victim)
	if lvl := det.SuspicionLevel(victim); lvl != 0 {
		t.Fatalf("post-rejoin suspicion not cleared by OK: %d", lvl)
	}
}

// TestSuspicionStatusView: /recovery surfaces per-machine suspicion
// levels while a run is open.
func TestSuspicionStatusView(t *testing.T) {
	m, _, _, _, _ := harness(false, Config{SuspicionK: 4})
	det := m.Detector()
	det.ObserveTransientFailure("machine-00")
	det.ObserveTransientFailure("machine-00")
	det.ObserveTransientFailure("machine-02")

	st := m.Status()
	levels := make(map[string]int)
	for _, ms := range st.Machines {
		levels[ms.Name] = ms.Suspicion
	}
	if levels["machine-00"] != 2 || levels["machine-01"] != 0 || levels["machine-02"] != 1 {
		t.Fatalf("status suspicion levels = %v", levels)
	}
	if s := det.Suspects(); len(s) != 2 || s["machine-00"] != 2 || s["machine-02"] != 1 {
		t.Fatalf("suspects = %v", s)
	}
}
