package recovery

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"muppet/internal/cluster"
	"muppet/internal/engine"
	"muppet/internal/event"
	"muppet/internal/metrics"
	"muppet/internal/slate"
	"muppet/internal/wal"
)

// Config tunes the recovery subsystem. The zero value enables
// everything: detect-on-send, WAL replay on failover, and cache
// warm-up on rejoin.
type Config struct {
	// DisableDetector stops failed sends from being reported to the
	// master. Machine failures then go unnoticed until an operator (or
	// a PingAll sweep) reports them — the MapReduce-style baseline the
	// paper argues against.
	DisableDetector bool
	// DisableWALReplay skips replaying the slate group-commit WAL
	// during failover, restoring the stock §4.3 behavior in which a
	// flush batch in flight at crash time is lost.
	DisableWALReplay bool
	// DisableRejoinWarm skips pre-loading a rejoined machine's slate
	// cache from the durable store; the cache then refills on demand.
	DisableRejoinWarm bool
	// WarmLimit bounds the slates pre-loaded per rejoin (default
	// 10,000).
	WarmLimit int
	// SuspicionK is the number of consecutive exhausted-retry sends to
	// one machine that confirm suspicion and escalate to machine-down
	// (default 3). 1 restores pre-suspicion behavior: the first
	// exhausted send reports the machine.
	SuspicionK int
	// SuspicionWindow bounds how long a run of transient failures may
	// stretch and still confirm; a run that goes stale restarts the
	// count (default 10s).
	SuspicionWindow time.Duration
}

func (c *Config) fill() {
	if c.WarmLimit <= 0 {
		c.WarmLimit = 10_000
	}
	if c.SuspicionK <= 0 {
		c.SuspicionK = 3
	}
	if c.SuspicionWindow <= 0 {
		c.SuspicionWindow = 10 * time.Second
	}
}

// Adapter is the engine-side surface the manager drives. Each engine
// implements it once; the manager owns the protocol ordering.
type Adapter interface {
	// RemoveFromRing takes the machine's workers off the engine's hash
	// ring(s) so keys reroute to ring successors.
	RemoveFromRing(machine string)
	// RestoreToRing re-enables the machine's workers on the ring(s).
	RestoreToRing(machine string)
	// DrainQueues empties and closes every event queue on the machine,
	// calling drained for each removed event with its destination
	// function. The adapter retires the events from the engine's
	// in-flight tracker; the manager decides whether they are lost or
	// left to the replay log.
	DrainQueues(machine string, drained func(function string, ev event.Event))
	// CrashSlates drops the machine's slate caches without flushing,
	// returning the group-commit batch logs retained at crash time
	// (for WAL replay) and the number of dirty slates lost.
	CrashSlates(machine string) (wals []*wal.SlateBatchLog, dirtyLost int)
	// UnackedEvents drains the machine's delivery replay log, returning
	// every unacknowledged delivery; engines without a replay log
	// return nil.
	UnackedEvents(machine string) []engine.Envelope
	// Redeliver routes an event to the current ring owner of
	// (function, key).
	Redeliver(function string, ev event.Event)
	// RestartWorkers recreates the machine's queues and worker
	// goroutines after revival, discarding any slate-cache residue the
	// machine's final in-flight updates re-inserted after the crash
	// cleanup (dead-lineage values that must not shadow the store).
	RestartWorkers(machine string)
	// FlushSlates persists every dirty cached slate cluster-wide. The
	// rejoin protocol calls it before the ring flips back, so the
	// interim owners' unflushed updates are durable before the revived
	// machine re-reads its keys from the store.
	FlushSlates()
	// DropMisplacedSlates evicts, on every machine, cached slates whose
	// keys the machine no longer owns on the current ring. Run after a
	// ring change so a stale copy can never shadow the store if the key
	// later returns.
	DropMisplacedSlates()
	// WarmSlates pre-loads up to limit slates owned by the machine from
	// the durable store, returning how many were loaded.
	WarmSlates(machine string, limit int) int
	// RingMembers reports, per machine, whether it is currently enabled
	// on the engine's ring(s).
	RingMembers() map[string]bool
}

// Deps are the engine-provided collaborators of a Manager.
type Deps struct {
	// Cluster is the simulated machine cluster (and its master).
	Cluster *cluster.Cluster
	// Adapter is the engine's recovery surface.
	Adapter Adapter
	// Lost receives the precise loss accounting of every failover.
	Lost *engine.LostLog
	// Counters are the engine's lifetime counters (FailureReports).
	Counters *engine.Counters
	// Tracker is the engine's in-flight tracker; the manager holds it
	// open while a failover is pending so Drain cannot pass between a
	// queue drain and the redelivery of its events.
	Tracker *engine.Tracker
	// Store is the durable slate store WAL batches are replayed into
	// and caches are warmed from; nil disables both.
	Store slate.Store
	// Redeliver reports whether the engine keeps a delivery replay log:
	// if so, failover redelivers a dead machine's unacknowledged events
	// instead of recording them lost.
	Redeliver bool
}

// incident is the per-machine recovery state between crash and rejoin.
type incident struct {
	cleaned    bool // cleanup claimed (queues drained, slates crashed, WAL replayed)
	cleanDone  bool // cleanup finished
	failedOver bool // failover claimed (ring update + redelivery)
	done       bool // failover finished
	report     Report
}

// Manager runs the recovery protocol for one engine. All methods are
// safe for concurrent use; failovers for distinct machines are
// serialized through a pending queue so a redelivery that hits another
// dead machine cannot deadlock the subsystem.
type Manager struct {
	cfg  Config
	deps Deps
	det  *Detector

	mu        sync.Mutex
	cond      *sync.Cond
	incidents map[string]*incident
	pending   []string
	running   bool
	rejoining map[string]bool
	rejoined  map[string]*RejoinReport
	lastFail  *Report
	lastJoin  *RejoinReport

	failovers   atomic.Uint64
	rejoins     atomic.Uint64
	queuedLost  atomic.Uint64
	dirtyLost   atomic.Uint64
	walBatches  atomic.Uint64
	walRecords  atomic.Uint64
	walErrors   atomic.Uint64
	redelivered atomic.Uint64
	warmed      atomic.Uint64

	failoverLatency *metrics.Histogram
	rejoinLatency   *metrics.Histogram
}

// NewManager builds a manager, its failure detector, and subscribes to
// the master's failure and rejoin broadcasts.
func NewManager(deps Deps, cfg Config) *Manager {
	cfg.fill()
	m := &Manager{
		cfg:             cfg,
		deps:            deps,
		incidents:       make(map[string]*incident),
		rejoining:       make(map[string]bool),
		rejoined:        make(map[string]*RejoinReport),
		failoverLatency: metrics.NewHistogram(0),
		rejoinLatency:   metrics.NewHistogram(0),
	}
	m.cond = sync.NewCond(&m.mu)
	m.det = &Detector{
		master:   deps.Cluster.Master(),
		clu:      deps.Cluster,
		counters: deps.Counters,
		disabled: cfg.DisableDetector,
		k:        cfg.SuspicionK,
		window:   cfg.SuspicionWindow,
		suspects: make(map[string]*suspicion),
	}
	deps.Cluster.Master().Subscribe(m.onFailure)
	deps.Cluster.Master().SubscribeRejoin(m.onRejoin)
	return m
}

// Detector returns the manager's failure detector; engines call its
// ObserveSendFailure from their delivery paths.
func (m *Manager) Detector() *Detector { return m.det }

// Crash is the stock §4.3 operator kill: the machine stops accepting
// events, its queued events and dirty slates are lost (and logged),
// its delivery replay log is discarded — but flush batches retained in
// the slate group-commit WAL are replayed into the store, so no
// acknowledged flush is lost. The master is not notified; detection is
// left to the next failed send, exactly as in the paper.
func (m *Manager) Crash(machine string) Report {
	claimed := m.claimCleanup(machine)
	m.deps.Cluster.Crash(machine)
	if !claimed {
		return m.waitCleanup(machine)
	}
	return m.doCleanup(machine, true)
}

// CrashAndFailover kills the machine and immediately drives the full
// master-coordinated failover: cleanup and WAL replay first, then an
// operator failure report to the master, whose broadcast removes the
// machine from the ring and — when the engine keeps a replay log —
// redelivers its unacknowledged events to the keys' new owners. It
// returns once the failover has completed.
func (m *Manager) CrashAndFailover(machine string) Report {
	claimed := m.claimCleanup(machine)
	m.deps.Cluster.Crash(machine)
	if claimed {
		m.doCleanup(machine, !m.deps.Redeliver)
	} else {
		m.waitCleanup(machine)
	}
	if m.deps.Counters != nil {
		m.deps.Counters.FailureReports.Add(1)
	}
	m.deps.Cluster.Master().ReportFailure(machine)
	return m.waitFailover(machine)
}

// Rejoin revives a crashed machine and re-integrates it: workers
// restart on fresh queues, the master broadcasts the rejoin (the "new
// ring" announcement), the ring re-enables the machine, and — unless
// disabled — its slate cache is warmed from the durable store for the
// keys it now owns again.
func (m *Manager) Rejoin(machine string) (RejoinReport, error) {
	mach := m.deps.Cluster.Machine(machine)
	if mach == nil {
		return RejoinReport{}, fmt.Errorf("recovery: unknown machine %s", machine)
	}
	if mach.Alive() {
		return RejoinReport{}, fmt.Errorf("recovery: machine %s is not down", machine)
	}
	m.mu.Lock()
	// A detection-driven failover for this machine may still be in
	// flight; let it finish, or its queue drain would close the fresh
	// queues the restart below installs.
	inc := m.incidents[machine]
	for inc != nil && inc.failedOver && !inc.done {
		m.cond.Wait()
		inc = m.incidents[machine]
	}
	// Shield the rejoin window: a failure report racing the revival
	// (a send that failed just before Revive landed) must not start a
	// failover for a machine that is coming back.
	m.rejoining[machine] = true
	restart := inc != nil && inc.cleaned
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.rejoining, machine)
		m.mu.Unlock()
	}()
	// Quiesce before touching caches or the ring: in-flight events —
	// including any update that was mid-process on the dying machine —
	// must finish first, so the residue purge below cannot race a
	// straggler's cache re-insert, and the keys' interim owners stop
	// writing before ownership moves back (two concurrent writers would
	// silently lose the interim owner's tail of updates). The machine
	// is still down here, so deliveries racing the rejoin keep failing
	// as machine-down — the §4.3 pre-detection disposition.
	if m.deps.Tracker != nil {
		m.deps.Tracker.Wait()
	}
	if restart {
		// The crash cleanup closed the machine's queues and its worker
		// goroutines exited; bring them back (dropping the crashed
		// cache's dead-lineage residue) before traffic returns.
		m.deps.Adapter.RestartWorkers(machine)
	}
	// Revive only once the workers can accept traffic again: an alive
	// machine with still-closed queues would swallow every delivery
	// routed to it. Residual suspicion dies with the old incarnation —
	// a rejoined machine starts with a clean slate, so pre-crash blips
	// cannot count against the fresh workers.
	m.det.Reset(machine)
	m.deps.Cluster.Revive(machine)
	// Make the interim owners' state durable before the handover: under
	// Interval/OnEvict flushing their latest updates may exist only as
	// dirty cache entries, which the revived machine's store reads
	// would otherwise miss.
	if m.deps.Store != nil {
		m.deps.Adapter.FlushSlates()
	}
	m.deps.Cluster.Master().ReportRejoin(machine)
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := RejoinReport{Machine: machine}
	if r := m.rejoined[machine]; r != nil {
		rep = *r
	}
	rep.Restarted = restart
	return rep, nil
}

// claimCleanup marks the machine's cleanup as owned by the caller,
// returning false if another failover already owns it.
func (m *Manager) claimCleanup(machine string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	inc := m.incidentLocked(machine)
	if inc.cleaned {
		return false
	}
	inc.cleaned = true
	return true
}

// waitCleanup blocks until the cleanup owner finishes and returns its
// report.
func (m *Manager) waitCleanup(machine string) Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	inc := m.incidentLocked(machine)
	for !inc.cleanDone {
		m.cond.Wait()
	}
	return inc.report
}

// waitFailover blocks until the machine's failover (ring update and
// redelivery) completes and returns the final report.
func (m *Manager) waitFailover(machine string) Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	inc := m.incidentLocked(machine)
	for !inc.done {
		m.cond.Wait()
	}
	return inc.report
}

// incidentLocked returns (creating if needed) the machine's incident.
// Caller holds m.mu.
func (m *Manager) incidentLocked(machine string) *incident {
	inc := m.incidents[machine]
	if inc == nil {
		inc = &incident{}
		m.incidents[machine] = inc
	}
	return inc
}

// doCleanup runs the local half of recovery after claimCleanup: drain
// the dead machine's queues, crash its slate caches, and replay the
// retained group-commit WAL batches into the store. With discard set,
// queued events are recorded lost (LossCrashedQueue) and the delivery
// replay log is dropped — the stock §4.3 disposition; otherwise both
// are left to the failover's redelivery step.
func (m *Manager) doCleanup(machine string, discard bool) Report {
	start := time.Now()
	rep := Report{Machine: machine, At: start}
	m.deps.Adapter.DrainQueues(machine, func(function string, ev event.Event) {
		if !discard {
			return // the event stays in the replay log; failover redelivers it
		}
		rep.QueuedLost++
		if m.deps.Lost != nil {
			m.deps.Lost.Record(function, ev, engine.LossCrashedQueue)
		}
	})
	if discard {
		m.deps.Adapter.UnackedEvents(machine) // the replay log dies with the machine
	}
	wals, dirtyLost := m.deps.Adapter.CrashSlates(machine)
	rep.DirtyLost = dirtyLost
	if !m.cfg.DisableWALReplay && m.deps.Store != nil {
		rep.WALBatchesReplayed, rep.WALRecordsReplayed, rep.WALReplayErrors = m.replayWALs(wals)
	}
	rep.Took = time.Since(start)
	m.queuedLost.Add(uint64(rep.QueuedLost))
	m.dirtyLost.Add(uint64(dirtyLost))
	m.mu.Lock()
	inc := m.incidentLocked(machine)
	inc.report = rep
	inc.cleanDone = true
	m.cond.Broadcast()
	m.mu.Unlock()
	return rep
}

// replayWALs writes every retained group-commit batch into the durable
// store, oldest first, so a flush batch that was in flight at crash
// time lands before the keys' new owners read them. Successfully
// replayed logs are truncated (their contents are now durable); a
// failed replay keeps its log for a later retry and is surfaced
// through the errors count, so an operator can tell a clean
// empty-WAL failover from one that could not restore in-flight
// batches.
func (m *Manager) replayWALs(wals []*wal.SlateBatchLog) (batches, records, errors int) {
	for _, l := range wals {
		if l == nil {
			continue
		}
		_, _, retained := l.Stats()
		if retained == 0 {
			continue
		}
		applied, err := l.Replay(func(r wal.SlateRecord) error {
			return m.deps.Store.Save(slate.Key{Updater: r.Updater, Key: r.Key}, r.Value, r.TTL)
		})
		records += applied
		if err == nil {
			batches += retained
			l.Truncate()
		} else {
			errors++
		}
	}
	m.walBatches.Add(uint64(batches))
	m.walRecords.Add(uint64(records))
	m.walErrors.Add(uint64(errors))
	return batches, records, errors
}

// onFailure is the master failure-broadcast handler: it queues the
// machine for failover and runs the queue unless another goroutine
// already is. Queuing (rather than recursing) lets a redelivery that
// hits a second dead machine schedule that machine's failover without
// deadlocking, and the tracker hold keeps Drain blocked until every
// pending failover — including its redeliveries — has completed.
func (m *Manager) onFailure(machine string) {
	if mach := m.deps.Cluster.Machine(machine); mach != nil && mach.Alive() {
		// Stale report: the send failed before a rejoin revived the
		// machine, but the reporter only reached the master afterwards.
		// Tearing down a healthy machine would strand it (RejoinMachine
		// refuses alive machines), so drop the report — and clear the
		// master's failed mark so a future real failure is not absorbed
		// as a duplicate.
		m.deps.Cluster.Master().Forget(machine)
		return
	}
	m.mu.Lock()
	if m.rejoining[machine] {
		// The machine is being revived; a report from a send that
		// failed just before Revive must not tear down the fresh
		// workers. If it truly dies again, the next failed send after
		// the rejoin (which Forgets the old failure at the master)
		// re-triggers detection.
		m.mu.Unlock()
		return
	}
	inc := m.incidentLocked(machine)
	if inc.failedOver {
		m.mu.Unlock()
		return
	}
	inc.failedOver = true
	m.pending = append(m.pending, machine)
	if m.deps.Tracker != nil {
		m.deps.Tracker.Inc()
	}
	if m.running {
		m.mu.Unlock()
		return
	}
	m.running = true
	m.mu.Unlock()
	for {
		m.mu.Lock()
		if len(m.pending) == 0 {
			m.running = false
			m.mu.Unlock()
			return
		}
		next := m.pending[0]
		m.pending = m.pending[1:]
		m.mu.Unlock()
		m.failover(next)
		if m.deps.Tracker != nil {
			m.deps.Tracker.Dec()
		}
	}
}

// failover runs the cluster half of recovery: ensure the local cleanup
// (and its WAL replay) has finished, remove the machine from the ring
// so keys reroute, then redeliver its unacknowledged events to the new
// owners.
func (m *Manager) failover(machine string) {
	start := time.Now()
	if m.claimCleanup(machine) {
		m.doCleanup(machine, !m.deps.Redeliver)
	} else {
		m.waitCleanup(machine)
	}
	m.deps.Adapter.RemoveFromRing(machine)
	redelivered := 0
	if m.deps.Redeliver {
		for _, env := range m.deps.Adapter.UnackedEvents(machine) {
			m.deps.Adapter.Redeliver(env.Func, env.Ev)
			redelivered++
		}
		m.redelivered.Add(uint64(redelivered))
	}
	m.failovers.Add(1)
	m.failoverLatency.Observe(time.Since(start))
	m.mu.Lock()
	inc := m.incidentLocked(machine)
	inc.report.Redelivered += redelivered
	inc.report.Detected = true
	inc.done = true
	cp := inc.report
	m.lastFail = &cp
	m.cond.Broadcast()
	m.mu.Unlock()
}

// onRejoin is the master rejoin-broadcast handler: restore the machine
// to the ring, evict the interim owners' now-misplaced cache entries
// (a stale copy must never shadow the store if the key fails back to
// them later), then warm the machine's cache for the keys it owns
// again.
func (m *Manager) onRejoin(machine string) {
	start := time.Now()
	m.det.Reset(machine) // the new incarnation starts unsuspected
	m.deps.Adapter.RestoreToRing(machine)
	m.deps.Adapter.DropMisplacedSlates()
	warmedN := 0
	if !m.cfg.DisableRejoinWarm && m.deps.Store != nil {
		warmedN = m.deps.Adapter.WarmSlates(machine, m.cfg.WarmLimit)
	}
	m.warmed.Add(uint64(warmedN))
	m.rejoins.Add(1)
	took := time.Since(start)
	m.rejoinLatency.Observe(took)
	rep := &RejoinReport{Machine: machine, Warmed: warmedN, Took: took, At: time.Now()}
	m.mu.Lock()
	delete(m.incidents, machine)
	m.rejoined[machine] = rep
	m.lastJoin = rep
	m.mu.Unlock()
}

// FailoverLatency is the histogram of failover wall-clock durations.
func (m *Manager) FailoverLatency() *metrics.Histogram { return m.failoverLatency }

// RejoinLatency is the histogram of rejoin wall-clock durations.
func (m *Manager) RejoinLatency() *metrics.Histogram { return m.rejoinLatency }
