package recovery

import (
	"errors"
	"sync"
	"testing"
	"time"

	"muppet/internal/cluster"
	"muppet/internal/engine"
	"muppet/internal/event"
	"muppet/internal/slate"
	"muppet/internal/wal"
)

// fakeStore is a map-backed slate.Store.
type fakeStore struct {
	mu        sync.Mutex
	failSaves bool
	data      map[slate.Key][]byte
}

func newFakeStore() *fakeStore { return &fakeStore{data: make(map[slate.Key][]byte)} }

func (s *fakeStore) Load(k slate.Key) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[k]
	return v, ok, nil
}

func (s *fakeStore) Save(k slate.Key, value []byte, _ time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failSaves {
		return errors.New("fakeStore: store unavailable")
	}
	s.data[k] = append([]byte(nil), value...)
	return nil
}

func (s *fakeStore) get(k slate.Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[k]
	return v, ok
}

// fakeAdapter is a scriptable engine stand-in.
type fakeAdapter struct {
	mu          sync.Mutex
	ring        map[string]bool
	queued      map[string][]engine.Envelope
	unacked     map[string][]engine.Envelope
	wals        map[string][]*wal.SlateBatchLog
	dirty       map[string]int
	drains      map[string]int
	redelivered []engine.Envelope
	restarted   []string
	flushes     int
	drops       int
	warm        map[string]int // machine -> slates "warmed" per call
	// redeliverHook, when set, runs on every Redeliver (to simulate a
	// redelivery hitting another dead machine).
	redeliverHook func(function string, ev event.Event)
}

func newFakeAdapter(machines ...string) *fakeAdapter {
	a := &fakeAdapter{
		ring:    make(map[string]bool),
		queued:  make(map[string][]engine.Envelope),
		unacked: make(map[string][]engine.Envelope),
		wals:    make(map[string][]*wal.SlateBatchLog),
		dirty:   make(map[string]int),
		drains:  make(map[string]int),
		warm:    make(map[string]int),
	}
	for _, m := range machines {
		a.ring[m] = true
	}
	return a
}

func (a *fakeAdapter) RemoveFromRing(machine string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ring[machine] = false
}

func (a *fakeAdapter) RestoreToRing(machine string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ring[machine] = true
}

func (a *fakeAdapter) DrainQueues(machine string, drained func(string, event.Event)) {
	a.mu.Lock()
	q := a.queued[machine]
	a.queued[machine] = nil
	a.drains[machine]++
	a.mu.Unlock()
	for _, env := range q {
		drained(env.Func, env.Ev)
	}
}

func (a *fakeAdapter) CrashSlates(machine string) ([]*wal.SlateBatchLog, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d := a.dirty[machine]
	a.dirty[machine] = 0
	return a.wals[machine], d
}

func (a *fakeAdapter) UnackedEvents(machine string) []engine.Envelope {
	a.mu.Lock()
	defer a.mu.Unlock()
	u := a.unacked[machine]
	a.unacked[machine] = nil
	return u
}

func (a *fakeAdapter) Redeliver(function string, ev event.Event) {
	a.mu.Lock()
	a.redelivered = append(a.redelivered, engine.Envelope{Func: function, Ev: ev})
	hook := a.redeliverHook
	a.mu.Unlock()
	if hook != nil {
		hook(function, ev)
	}
}

func (a *fakeAdapter) RestartWorkers(machine string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.restarted = append(a.restarted, machine)
}

func (a *fakeAdapter) FlushSlates() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.flushes++
}

func (a *fakeAdapter) DropMisplacedSlates() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drops++
}

func (a *fakeAdapter) WarmSlates(machine string, limit int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.warm[machine]
	if n > limit {
		n = limit
	}
	return n
}

func (a *fakeAdapter) RingMembers() map[string]bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]bool, len(a.ring))
	for k, v := range a.ring {
		out[k] = v
	}
	return out
}

func (a *fakeAdapter) inRing(machine string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ring[machine]
}

func (a *fakeAdapter) drainCount(machine string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.drains[machine]
}

func (a *fakeAdapter) redeliveredCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.redelivered)
}

func env(fn, key string) engine.Envelope {
	return engine.Envelope{Func: fn, Ev: event.Event{Stream: "S1", Key: key}}
}

func harness(redeliver bool, cfg Config) (*Manager, *fakeAdapter, *fakeStore, *cluster.Cluster, *engine.LostLog) {
	clu := cluster.New(cluster.Config{Machines: 3})
	ad := newFakeAdapter(clu.MachineNames()...)
	store := newFakeStore()
	lost := engine.NewLostLog(0)
	m := NewManager(Deps{
		Cluster:   clu,
		Adapter:   ad,
		Lost:      lost,
		Counters:  engine.NewCounters(),
		Tracker:   engine.NewTracker(),
		Store:     store,
		Redeliver: redeliver,
	}, cfg)
	return m, ad, store, clu, lost
}

func TestStockCrashLosesQueuedAndReplaysWAL(t *testing.T) {
	m, ad, store, clu, lost := harness(false, Config{})
	const victim = "machine-01"
	ad.queued[victim] = []engine.Envelope{env("U", "a"), env("U", "b")}
	ad.dirty[victim] = 5
	log := wal.NewSlateBatchLog()
	log.AppendBatch([]wal.SlateRecord{
		{Updater: "U", Key: "flushed-1", Value: []byte("v1")},
		{Updater: "U", Key: "flushed-2", Value: []byte("v2")},
	})
	ad.wals[victim] = []*wal.SlateBatchLog{log}

	rep := m.Crash(victim)
	if rep.QueuedLost != 2 || rep.DirtyLost != 5 {
		t.Fatalf("report = %+v, want 2 queued / 5 dirty lost", rep)
	}
	if rep.WALBatchesReplayed != 1 || rep.WALRecordsReplayed != 2 {
		t.Fatalf("WAL replay = %d batches / %d records, want 1/2", rep.WALBatchesReplayed, rep.WALRecordsReplayed)
	}
	if v, ok := store.get(slate.Key{Updater: "U", Key: "flushed-1"}); !ok || string(v) != "v1" {
		t.Fatalf("flushed-1 not restored into store: %q %v", v, ok)
	}
	if _, _, retained := log.Stats(); retained != 0 {
		t.Fatalf("WAL not truncated after replay: %d batches retained", retained)
	}
	// Stock crash: the master is NOT notified, and the ring unchanged.
	if got := clu.Master().FailedMachines(); len(got) != 0 {
		t.Fatalf("master learned of stock crash: %v", got)
	}
	if !ad.inRing(victim) {
		t.Fatal("stock crash removed machine from ring before detection")
	}
	if lost.Total() != 2 {
		t.Fatalf("lost log total = %d, want 2", lost.Total())
	}
	for _, e := range lost.Recent() {
		if e.Reason != engine.LossCrashedQueue {
			t.Fatalf("loss reason = %v, want crashed-queue", e.Reason)
		}
	}
}

func TestDetectOnSendDrivesFailover(t *testing.T) {
	m, ad, _, clu, _ := harness(false, Config{})
	const victim = "machine-02"
	ad.queued[victim] = []engine.Envelope{env("U", "x")}
	clu.Crash(victim)

	m.Detector().ObserveSendFailure(victim)

	if got := clu.Master().FailedMachines(); len(got) != 1 || got[0] != victim {
		t.Fatalf("master failed set = %v", got)
	}
	if ad.inRing(victim) {
		t.Fatal("failover did not remove machine from ring")
	}
	if ad.drainCount(victim) != 1 {
		t.Fatalf("queues drained %d times, want 1", ad.drainCount(victim))
	}
	st := m.Status()
	if st.Failovers != 1 || st.QueuedLost != 1 {
		t.Fatalf("status = %+v, want 1 failover / 1 queued lost", st)
	}
	if st.LastFailover == nil || st.LastFailover.Machine != victim || !st.LastFailover.Detected {
		t.Fatalf("last failover = %+v", st.LastFailover)
	}
	if m.Detector().Observed() != 1 || m.Detector().Detected() != 1 {
		t.Fatalf("detector counts = %d/%d", m.Detector().Observed(), m.Detector().Detected())
	}
}

func TestDetectorDisabled(t *testing.T) {
	m, ad, _, clu, _ := harness(false, Config{DisableDetector: true})
	const victim = "machine-00"
	clu.Crash(victim)
	m.Detector().ObserveSendFailure(victim)
	if got := clu.Master().FailedMachines(); len(got) != 0 {
		t.Fatalf("disabled detector reported to master: %v", got)
	}
	if !ad.inRing(victim) {
		t.Fatal("ring changed with detector disabled")
	}
	// A PingAll sweep (the operator fallback) still drives failover.
	clu.Master().PingAll()
	if ad.inRing(victim) {
		t.Fatal("PingAll did not drive failover")
	}
}

func TestCrashAndFailoverRedelivers(t *testing.T) {
	m, ad, _, _, lost := harness(true, Config{})
	const victim = "machine-01"
	ad.queued[victim] = []engine.Envelope{env("U", "q1")}
	ad.unacked[victim] = []engine.Envelope{env("U", "q1"), env("U", "p1")}

	rep := m.CrashAndFailover(victim)
	if rep.QueuedLost != 0 {
		t.Fatalf("queued events recorded lost despite replay log: %d", rep.QueuedLost)
	}
	if rep.Redelivered != 2 {
		t.Fatalf("redelivered = %d, want 2", rep.Redelivered)
	}
	if !rep.Detected {
		t.Fatal("CrashAndFailover did not complete the failover")
	}
	if ad.inRing(victim) {
		t.Fatal("machine still in ring after failover")
	}
	if lost.Total() != 0 {
		t.Fatalf("lost log total = %d, want 0", lost.Total())
	}
	if got := ad.redeliveredCount(); got != 2 {
		t.Fatalf("adapter saw %d redeliveries, want 2", got)
	}
}

func TestFailoverIdempotent(t *testing.T) {
	m, ad, _, _, _ := harness(false, Config{})
	const victim = "machine-00"
	ad.queued[victim] = []engine.Envelope{env("U", "a")}

	rep1 := m.Crash(victim)
	// Detection after an operator crash must not redo the cleanup.
	m.Detector().ObserveSendFailure(victim)
	m.Detector().ObserveSendFailure(victim)
	rep2 := m.Crash(victim)

	if ad.drainCount(victim) != 1 {
		t.Fatalf("queues drained %d times, want 1", ad.drainCount(victim))
	}
	if rep1.QueuedLost != 1 || rep2.QueuedLost != 1 {
		t.Fatalf("reports disagree: %+v vs %+v", rep1, rep2)
	}
	if st := m.Status(); st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
}

func TestRejoinRestartsWarmsAndRestoresRing(t *testing.T) {
	m, ad, _, clu, _ := harness(false, Config{})
	const victim = "machine-02"
	ad.warm[victim] = 7
	m.Crash(victim)
	m.Detector().ObserveSendFailure(victim)
	if ad.inRing(victim) {
		t.Fatal("setup: machine still in ring")
	}

	rep, err := m.Rejoin(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Restarted {
		t.Fatal("workers not restarted after a cleaned crash")
	}
	if rep.Warmed != 7 {
		t.Fatalf("warmed = %d, want 7", rep.Warmed)
	}
	if ad.flushes != 1 {
		t.Fatalf("interim owners flushed %d times before handover, want 1", ad.flushes)
	}
	if ad.drops != 1 {
		t.Fatalf("misplaced-slate eviction ran %d times, want 1", ad.drops)
	}
	if !ad.inRing(victim) {
		t.Fatal("machine not restored to ring")
	}
	if !clu.Machine(victim).Alive() {
		t.Fatal("machine not revived")
	}
	if got := clu.Master().FailedMachines(); len(got) != 0 {
		t.Fatalf("master still thinks %v failed", got)
	}
	st := m.Status()
	if st.Rejoins != 1 || st.Warmed != 7 || st.LastRejoin == nil || st.LastRejoin.Machine != victim {
		t.Fatalf("status after rejoin = %+v", st)
	}

	// Rejoining an alive machine and an unknown machine both fail.
	if _, err := m.Rejoin(victim); err == nil {
		t.Fatal("rejoin of alive machine succeeded")
	}
	if _, err := m.Rejoin("machine-99"); err == nil {
		t.Fatal("rejoin of unknown machine succeeded")
	}

	// A second crash after rejoin is a fresh incident.
	ad.queued[victim] = []engine.Envelope{env("U", "b")}
	rep2 := m.Crash(victim)
	if rep2.QueuedLost != 1 {
		t.Fatalf("second crash report = %+v", rep2)
	}
	if ad.drainCount(victim) != 2 {
		t.Fatalf("drain count = %d, want 2", ad.drainCount(victim))
	}
}

func TestRejoinWarmDisabled(t *testing.T) {
	m, ad, _, _, _ := harness(false, Config{DisableRejoinWarm: true})
	const victim = "machine-00"
	ad.warm[victim] = 9
	m.Crash(victim)
	rep, err := m.Rejoin(victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Warmed != 0 {
		t.Fatalf("warmed = %d with warm-up disabled", rep.Warmed)
	}
}

// TestWALReplayErrorSurfacedAndLogKept: a store outage during replay
// must be visible to operators (not look like an empty WAL) and must
// keep the log so a later failover can retry.
func TestWALReplayErrorSurfaced(t *testing.T) {
	m, ad, store, _, _ := harness(false, Config{})
	const victim = "machine-00"
	log := wal.NewSlateBatchLog()
	log.AppendBatch([]wal.SlateRecord{{Updater: "U", Key: "k", Value: []byte("v")}})
	ad.wals[victim] = []*wal.SlateBatchLog{log}
	store.mu.Lock()
	store.failSaves = true
	store.mu.Unlock()

	rep := m.Crash(victim)
	if rep.WALReplayErrors != 1 || rep.WALBatchesReplayed != 0 {
		t.Fatalf("report = %+v, want 1 replay error / 0 batches", rep)
	}
	if _, _, retained := log.Stats(); retained != 1 {
		t.Fatalf("failed replay truncated the log: %d retained", retained)
	}
	if st := m.Status(); st.WALErrors != 1 {
		t.Fatalf("status WAL errors = %d, want 1", st.WALErrors)
	}
}

// TestStaleFailureReportAfterRejoinIgnored: a send that failed before
// a rejoin but was reported after it must not tear down the healthy
// machine — and must not poison the master so a future real failure
// goes undetected.
func TestStaleFailureReportAfterRejoinIgnored(t *testing.T) {
	m, ad, _, clu, _ := harness(false, Config{})
	const victim = "machine-01"
	m.Crash(victim)
	m.Detector().ObserveSendFailure(victim)
	if _, err := m.Rejoin(victim); err != nil {
		t.Fatal(err)
	}
	if !ad.inRing(victim) || !clu.Machine(victim).Alive() {
		t.Fatal("setup: machine not healthy after rejoin")
	}

	// The stale report arrives now, after the rejoin Forgot the
	// original failure.
	m.Detector().ObserveSendFailure(victim)
	if !ad.inRing(victim) {
		t.Fatal("stale report removed a healthy machine from the ring")
	}
	if ad.drainCount(victim) != 1 {
		t.Fatalf("stale report re-drained queues: %d drains", ad.drainCount(victim))
	}
	if got := clu.Master().FailedMachines(); len(got) != 0 {
		t.Fatalf("master still lists %v failed after stale report", got)
	}

	// A real second failure is still detected and handled.
	clu.Crash(victim)
	m.Detector().ObserveSendFailure(victim)
	if ad.inRing(victim) {
		t.Fatal("real second failure not failed over")
	}
	if ad.drainCount(victim) != 2 {
		t.Fatalf("second failure did not drain: %d drains", ad.drainCount(victim))
	}
}

func TestWALReplayDisabled(t *testing.T) {
	m, ad, store, _, _ := harness(false, Config{DisableWALReplay: true})
	const victim = "machine-00"
	log := wal.NewSlateBatchLog()
	log.AppendBatch([]wal.SlateRecord{{Updater: "U", Key: "k", Value: []byte("v")}})
	ad.wals[victim] = []*wal.SlateBatchLog{log}
	rep := m.Crash(victim)
	if rep.WALRecordsReplayed != 0 {
		t.Fatalf("WAL replayed despite being disabled: %+v", rep)
	}
	if _, ok := store.get(slate.Key{Updater: "U", Key: "k"}); ok {
		t.Fatal("record reached store with replay disabled")
	}
}

// TestNestedFailureDuringRedelivery simulates a redelivery that hits a
// second dead machine: the nested failure must schedule that machine's
// failover without deadlocking the manager.
func TestNestedFailureDuringRedelivery(t *testing.T) {
	m, ad, _, clu, _ := harness(true, Config{})
	const first, second = "machine-00", "machine-01"
	ad.unacked[first] = []engine.Envelope{env("U", "k1")}
	clu.Crash(second)
	ad.redeliverHook = func(string, event.Event) {
		// The redelivered event lands on another dead machine.
		m.Detector().ObserveSendFailure(second)
	}

	done := make(chan Report, 1)
	go func() { done <- m.CrashAndFailover(first) }()
	select {
	case rep := <-done:
		if rep.Redelivered != 1 {
			t.Fatalf("redelivered = %d, want 1", rep.Redelivered)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("nested failure deadlocked the manager")
	}
	// The nested machine's failover completed too (it may have been
	// queued behind the first).
	deadline := time.Now().Add(2 * time.Second)
	for ad.inRing(second) {
		if time.Now().After(deadline) {
			t.Fatal("second machine never failed over")
		}
		time.Sleep(time.Millisecond)
	}
	if st := m.Status(); st.Failovers != 2 {
		t.Fatalf("failovers = %d, want 2", st.Failovers)
	}
}

func TestConcurrentDetectionSingleFailover(t *testing.T) {
	m, ad, _, clu, _ := harness(false, Config{})
	const victim = "machine-01"
	ad.queued[victim] = []engine.Envelope{env("U", "a"), env("U", "b"), env("U", "c")}
	clu.Crash(victim)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Detector().ObserveSendFailure(victim)
		}()
	}
	wg.Wait()
	// The tracker hold guarantees the failover has fully completed once
	// in-flight work drains.
	m.deps.Tracker.Wait()
	if ad.drainCount(victim) != 1 {
		t.Fatalf("queues drained %d times, want 1", ad.drainCount(victim))
	}
	st := m.Status()
	if st.Failovers != 1 || st.QueuedLost != 3 {
		t.Fatalf("status = failovers %d queuedLost %d, want 1/3", st.Failovers, st.QueuedLost)
	}
}

func TestStatusMachinesView(t *testing.T) {
	m, _, _, clu, _ := harness(false, Config{})
	m.Crash("machine-01")
	m.Detector().ObserveSendFailure("machine-01")
	st := m.Status()
	if len(st.Machines) != 3 {
		t.Fatalf("machines = %d, want 3", len(st.Machines))
	}
	byName := make(map[string]MachineStatus)
	for _, ms := range st.Machines {
		byName[ms.Name] = ms
	}
	v := byName["machine-01"]
	if v.Alive || v.InRing || !v.Failed {
		t.Fatalf("victim status = %+v", v)
	}
	h := byName["machine-00"]
	if !h.Alive || !h.InRing || h.Failed {
		t.Fatalf("healthy status = %+v", h)
	}
	if !st.DetectorEnabled || !st.WALReplay {
		t.Fatalf("feature flags wrong: %+v", st)
	}
	if got := clu.Master().FailedMachines(); len(got) != 1 {
		t.Fatalf("master failed set = %v", got)
	}
}
