// Package recovery owns Muppet's crash-to-healthy lifecycle
// (Section 4.3 of the paper) for both execution engines: failure
// detection on failed sends, the master-coordinated failover protocol
// (ring update, slate group-commit WAL replay, redelivery of
// unacknowledged events, loss accounting), and machine revival —
// rejoining the ring and warming the rejoined shard's slate cache from
// the durable store.
//
// The paper's protocol is: a worker that fails to contact a machine
// reports it to the master; the master broadcasts the failure to every
// worker; each worker removes the machine from its hash ring, so the
// dead machine's keys move to ring successors. This package adds the
// two recovery capabilities the paper leaves open — replaying the
// slate group-commit WAL so in-flight flush batches reach the
// key-value store before the keys' new owners read them, and
// redelivering unacknowledged events from the per-machine replay log —
// plus the rejoin path the stock system lacks entirely.
//
// # Contract
//
// Both engines delegate their crash paths here through a small Adapter
// interface (Deps), so the ordering guarantees are enforced in exactly
// one place:
//
//  1. cleanup (queue close, worker drain) and slate-WAL replay complete
//     before the machine leaves the ring — the keys' new owners must
//     not read the store before in-flight flush batches land;
//  2. the ring reroutes before unacknowledged events are redelivered —
//     redelivery targets the new owners;
//  3. loss counters (queued, dirty, redelivered, warmed) are settled
//     before the failover Report is published.
//
// # Concurrency
//
// Manager.onFailure runs synchronously on the goroutine that reported
// the failure (typically the goroutine whose send returned
// cluster.ErrMachineDown, via the master's broadcast). The first
// reporter claims the incident and performs cleanup and failover
// itself; concurrent reporters of the same incident block on a
// condition variable until the failover completes. Consequently, when
// an ingestion call that observed a machine failure returns, the
// failover (including the ring update) has already happened — tests
// and callers may rely on this for exact loss accounting. All incident
// state lives under one mutex; statistics counters are atomics and
// safe to read concurrently via Status.
//
// # Failure invariants
//
// Redelivery from the event replay log is at-least-once: an event
// processed but unacknowledged at crash time is applied again.
// Rejoin (Manager.Rejoin) is idempotent per machine and refuses
// machines that never failed. In a networked cluster the hosting
// node must revive a machine before sender nodes do, so that senders
// do not route to a machine whose host still presumes it down.
package recovery
