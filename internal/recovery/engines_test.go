// Cross-engine lifecycle tests: both Muppet engines drive the same
// recovery subsystem through the public API — crash, detect-on-send
// failover, rejoin with cache warm-up — with full loss accounting.
package recovery_test

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"muppet"
)

func countApp() *muppet.App {
	u := muppet.UpdateFunc{FName: "U1", Fn: func(emit muppet.Emitter, in muppet.Event, sl []byte) {
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	app := muppet.NewApp("recovery-lifecycle").Input("S1")
	app.AddUpdate(u, []string{"S1"}, nil, 0)
	return app
}

func testLifecycle(t *testing.T, version muppet.EngineVersion) {
	t.Helper()
	store := muppet.NewStore(muppet.StoreConfig{Nodes: 3, ReplicationFactor: 3, NoDevice: true})
	eng, err := muppet.NewEngine(countApp(), muppet.Config{
		Engine: version, Machines: 5,
		Store: store, StoreLevel: muppet.Quorum, FlushPolicy: muppet.WriteThrough,
		QueueCapacity: 1 << 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	const victim = "machine-02"
	const keys = 60
	total := 0
	ingest := func(rounds int) {
		for i := 0; i < rounds*keys; i++ {
			eng.Ingest(muppet.Event{Stream: "S1", TS: muppet.Timestamp(total + 1), Key: fmt.Sprintf("k%d", i%keys)})
			total++
		}
	}

	// Healthy operation, then an operator kill; detection happens on
	// the first send to the dead machine and the master-coordinated
	// failover reroutes its keys.
	ingest(10)
	eng.Drain()
	lostQ, lostDirty := eng.CrashMachine(victim)
	if lostQ != 0 || lostDirty != 0 {
		t.Fatalf("drained write-through engine lost %d queued / %d dirty", lostQ, lostDirty)
	}
	ingest(10)
	eng.Drain()

	st := eng.RecoveryStatus()
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
	for _, ms := range st.Machines {
		if ms.Name == victim && (ms.Alive || ms.InRing || !ms.Failed) {
			t.Fatalf("victim status after failover = %+v", ms)
		}
	}
	if eng.Stats().LostMachineDown == 0 {
		t.Fatal("no deliveries recorded lost while the machine was down")
	}

	// Rejoin: workers restart, the ring re-enables the machine, and its
	// slate cache is warmed from the durable store.
	rep, err := eng.RejoinMachine(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Restarted {
		t.Fatal("rejoin did not restart workers")
	}
	if rep.Warmed == 0 {
		t.Fatal("rejoin warmed no slates despite a populated store")
	}
	st = eng.RecoveryStatus()
	for _, ms := range st.Machines {
		if ms.Name == victim && (!ms.Alive || !ms.InRing || ms.Failed) {
			t.Fatalf("victim status after rejoin = %+v", ms)
		}
	}

	// Service is fully restored: no further losses.
	lostBefore := eng.Stats().LostMachineDown
	ingest(10)
	eng.Drain()
	if lost := eng.Stats().LostMachineDown; lost != lostBefore {
		t.Fatalf("deliveries lost after rejoin: %d -> %d", lostBefore, lost)
	}

	// Precise accounting: every ingested event was either counted in a
	// slate or logged as lost (write-through leaves no dirty loss).
	counted := 0
	for i := 0; i < keys; i++ {
		if sl := eng.Slate("U1", fmt.Sprintf("k%d", i)); sl != nil {
			n, _ := strconv.Atoi(string(sl))
			counted += n
		}
	}
	lost := int(eng.Stats().LostMachineDown) + int(eng.RecoveryStatus().QueuedLost)
	if counted+lost != total {
		t.Fatalf("counted %d + lost %d != ingested %d", counted, lost, total)
	}
}

func TestEngine1RecoveryLifecycle(t *testing.T) { testLifecycle(t, muppet.EngineV1) }
func TestEngine2RecoveryLifecycle(t *testing.T) { testLifecycle(t, muppet.EngineV2) }

// TestMidStreamCrashRejoinExactAccounting crashes AND rejoins without
// ever draining, under continuous ingest: every ingested event must
// still end up either counted in a slate or in the lost log. This
// pins the rejoin quiesce — without it, the ring flips back while the
// interim owners hold queued events for the moved keys, two writers
// race on the same slates, and the interim owners' tail of updates is
// silently lost.
func TestMidStreamCrashRejoinExactAccounting(t *testing.T) {
	store := muppet.NewStore(muppet.StoreConfig{Nodes: 3, ReplicationFactor: 3, NoDevice: true})
	eng, err := muppet.NewEngine(countApp(), muppet.Config{
		Machines: 6, Store: store, StoreLevel: muppet.Quorum,
		FlushPolicy: muppet.WriteThrough, QueueCapacity: 1 << 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	const n = 12000
	const keys = 30
	const victim = "machine-02"
	for i := 0; i < n; i++ {
		eng.Ingest(muppet.Event{Stream: "S1", TS: muppet.Timestamp(i + 1), Key: fmt.Sprintf("k%d", i%keys)})
		switch i {
		case n / 3:
			eng.CrashMachine(victim)
		case 2 * n / 3:
			if _, err := eng.RejoinMachine(victim); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Drain()
	counted := 0
	for i := 0; i < keys; i++ {
		if sl := eng.Slate("U1", fmt.Sprintf("k%d", i)); sl != nil {
			v, _ := strconv.Atoi(string(sl))
			counted += v
		}
	}
	lost := int(eng.Stats().LostMachineDown) + int(eng.RecoveryStatus().QueuedLost)
	if counted+lost != n {
		t.Fatalf("counted %d + lost %d != ingested %d (unaccounted loss across crash/rejoin)", counted, lost, n)
	}
}

// TestConcurrentIngestAcrossCrashAndRejoin runs the whole lifecycle
// with ingestion on a separate goroutine, so the crash, the failover,
// and the rejoin handover all race live traffic. Every event must be
// counted in a slate or logged as lost, up to the protocol's one
// irreducible window: an update that is mid-process at an interim
// owner in the instant the ring flips back can race the rejoined
// machine on the same slate and lose one increment. That window is
// bounded by one in-process event per worker thread; anything beyond
// it (queued events, deliveries in flight, dirty cache state) must be
// rerouted, flushed, or accounted — never silently dropped.
func TestConcurrentIngestAcrossCrashAndRejoin(t *testing.T) {
	store := muppet.NewStore(muppet.StoreConfig{Nodes: 3, ReplicationFactor: 3, NoDevice: true})
	eng, err := muppet.NewEngine(countApp(), muppet.Config{
		Machines: 6, Store: store, StoreLevel: muppet.Quorum,
		FlushPolicy: muppet.WriteThrough, QueueCapacity: 1 << 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	const n = 9000
	const keys = 30
	const victim = "machine-01"
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			eng.Ingest(muppet.Event{Stream: "S1", TS: muppet.Timestamp(i + 1), Key: fmt.Sprintf("k%d", i%keys)})
		}
	}()
	time.Sleep(5 * time.Millisecond)
	eng.CrashMachine(victim)
	time.Sleep(5 * time.Millisecond)
	if _, err := eng.RejoinMachine(victim); err != nil {
		t.Fatal(err)
	}
	<-done
	eng.Drain()
	counted := 0
	for i := 0; i < keys; i++ {
		if sl := eng.Slate("U1", fmt.Sprintf("k%d", i)); sl != nil {
			v, _ := strconv.Atoi(string(sl))
			counted += v
		}
	}
	lost := int(eng.Stats().LostMachineDown) + int(eng.RecoveryStatus().QueuedLost)
	missing := n - counted - lost
	const maxInProcess = 6 * 4 // machines x default threads per machine
	if missing < 0 || missing > maxInProcess {
		t.Fatalf("counted %d + lost %d vs ingested %d: %d events escaped accounting (mid-process bound is %d)",
			counted, lost, n, missing, maxInProcess)
	}
}

// TestRejoinHandoverFlushesInterimDirtySlates pins the rejoin
// handover for lazy flush policies: the victim dies with no state, the
// interim owners accumulate dirty (never-flushed) slates, and the
// rejoin must flush them to the store before the ring flips back —
// otherwise the revived machine warm-loads stale state and the interim
// owners' counts silently vanish.
func TestRejoinHandoverFlushesInterimDirtySlates(t *testing.T) {
	store := muppet.NewStore(muppet.StoreConfig{Nodes: 3, ReplicationFactor: 3, NoDevice: true})
	eng, err := muppet.NewEngine(countApp(), muppet.Config{
		Machines: 6, Store: store, StoreLevel: muppet.Quorum,
		// A far-future interval means nothing flushes on its own.
		FlushPolicy: muppet.FlushInterval, FlushEvery: time.Hour,
		QueueCapacity: 1 << 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	const n = 6000
	const keys = 30
	const victim = "machine-04"
	// Kill the machine before it holds any state: no dirty slates are
	// lost, so the accounting below is exact.
	eng.CrashMachine(victim)
	for i := 0; i < n; i++ {
		eng.Ingest(muppet.Event{Stream: "S1", TS: muppet.Timestamp(i + 1), Key: fmt.Sprintf("k%d", i%keys)})
		if i == n/2 {
			if _, err := eng.RejoinMachine(victim); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Drain()
	counted := 0
	for i := 0; i < keys; i++ {
		if sl := eng.Slate("U1", fmt.Sprintf("k%d", i)); sl != nil {
			v, _ := strconv.Atoi(string(sl))
			counted += v
		}
	}
	lost := int(eng.Stats().LostMachineDown) + int(eng.RecoveryStatus().QueuedLost)
	if counted+lost != n {
		t.Fatalf("counted %d + lost %d != ingested %d (interim owners' dirty slates lost in handover)", counted, lost, n)
	}
}
