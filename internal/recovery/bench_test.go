// Recovery-time benchmarks: crash a machine under load and measure
// the wall-clock cost of the failover protocol (drain + WAL replay +
// redelivery) and of the rejoin handover (quiesce + flush + warm).
// They run in bench.yml alongside the slate/engine suites and land in
// the BENCH_recovery_*.json artifact.
package recovery_test

import (
	"fmt"
	"strconv"
	"testing"

	"muppet"
)

func benchApp() *muppet.App {
	u := muppet.UpdateFunc{FName: "U1", Fn: func(emit muppet.Emitter, in muppet.Event, sl []byte) {
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	app := muppet.NewApp("recovery-bench").Input("S1")
	app.AddUpdate(u, []string{"S1"}, nil, 0)
	return app
}

func benchEngine(b *testing.B, replay bool) muppet.Engine {
	b.Helper()
	store := muppet.NewStore(muppet.StoreConfig{Nodes: 3, ReplicationFactor: 3, NoDevice: true})
	eng, err := muppet.NewEngine(benchApp(), muppet.Config{
		Machines: 6, Store: store, StoreLevel: muppet.Quorum,
		FlushPolicy: muppet.WriteThrough, QueueCapacity: 1 << 16,
		ReplayLog: replay,
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

func loadUp(eng muppet.Engine, n, keys int) {
	for i := 0; i < n; i++ {
		eng.Ingest(muppet.Event{Stream: "S1", TS: muppet.Timestamp(i + 1), Key: fmt.Sprintf("k%d", i%keys)})
	}
}

// BenchmarkFailoverStock measures the stock crash path under a live
// backlog: drain the victim's queues, account the losses, replay the
// slate WAL.
func BenchmarkFailoverStock(b *testing.B) {
	const events, keys = 20_000, 200
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := benchEngine(b, false)
		loadUp(eng, events, keys)
		b.StartTimer()
		eng.CrashMachine("machine-03")
		b.StopTimer()
		eng.Stop()
	}
}

// BenchmarkFailoverReplay measures the full master-coordinated
// failover with redelivery: drain, WAL replay, ring update, and
// redelivery of the unacknowledged backlog to the new owners.
func BenchmarkFailoverReplay(b *testing.B) {
	const events, keys = 20_000, 200
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := benchEngine(b, true)
		loadUp(eng, events, keys)
		b.StartTimer()
		eng.(muppet.Replayer).CrashMachineAndReplay("machine-03")
		b.StopTimer()
		eng.Stop()
	}
}

// BenchmarkRejoinWarm measures the rejoin handover: quiesce, flush the
// interim owners, flip the ring, and warm the revived machine's cache
// from the store.
func BenchmarkRejoinWarm(b *testing.B) {
	const events, keys = 20_000, 200
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := benchEngine(b, false)
		loadUp(eng, events, keys)
		eng.Drain()
		eng.CrashMachine("machine-03")
		loadUp(eng, events/4, keys)
		b.StartTimer()
		if _, err := eng.RejoinMachine("machine-03"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		eng.Stop()
	}
}
