package recovery

import "muppet/internal/obs"

// RegisterObs registers the manager's lifetime counters and latency
// histograms into the observability registry. The collectors read the
// same atomics Status() reports, without building the per-machine
// status list on every scrape.
func (m *Manager) RegisterObs(r *obs.Registry) {
	r.Counter("muppet_recovery_send_failures_total",
		"Failed sends observed by the failure detector.", nil, m.det.Observed)
	r.Counter("muppet_recovery_transient_failures_total",
		"Exhausted-retry (transient) send failures observed by the detector.", nil, m.det.TransientObserved)
	r.Counter("muppet_recovery_suspicion_escalations_total",
		"Suspicion confirmations escalated to machine-down reports.", nil, m.det.Escalated)
	r.Gauge("muppet_recovery_suspected_machines",
		"Machines currently under transient-failure suspicion.", nil,
		func() float64 {
			return float64(len(m.det.Suspects()))
		})
	r.Counter("muppet_recovery_failovers_total",
		"Master-coordinated failovers completed.", nil, m.failovers.Load)
	r.Counter("muppet_recovery_rejoins_total",
		"Machine rejoins completed.", nil, m.rejoins.Load)
	r.Counter("muppet_recovery_queued_lost_total",
		"Queued events lost with crashed machines.", nil, m.queuedLost.Load)
	r.Counter("muppet_recovery_dirty_slates_lost_total",
		"Dirty slates lost with crashed caches.", nil, m.dirtyLost.Load)
	r.Counter("muppet_recovery_wal_batches_replayed_total",
		"Group-commit flush batches replayed from the slate WAL.", nil, m.walBatches.Load)
	r.Counter("muppet_recovery_wal_records_replayed_total",
		"Slate records replayed from the group-commit WAL.", nil, m.walRecords.Load)
	r.Counter("muppet_recovery_wal_replay_errors_total",
		"Slate-WAL replays that failed (retained for retry).", nil, m.walErrors.Load)
	r.Counter("muppet_recovery_redelivered_total",
		"Unacknowledged events redelivered to new ring owners.", nil, m.redelivered.Load)
	r.Counter("muppet_recovery_slates_warmed_total",
		"Slates pre-loaded into rejoined machines' caches.", nil, m.warmed.Load)
	r.DurationSummary("muppet_recovery_failover_seconds",
		"Wall-clock latency of completed failovers.", nil, m.failoverLatency)
	r.DurationSummary("muppet_recovery_rejoin_seconds",
		"Wall-clock latency of completed rejoins.", nil, m.rejoinLatency)
}
