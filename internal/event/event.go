// Package event defines the fundamental MapUpdate data model: events,
// streams, and the deterministic global ordering the paper's semantics
// depend on.
//
// Following Section 3 of the paper, an event is a tuple <sid, ts, k, v>:
// the ID of the stream it belongs to, a globally comparable timestamp, a
// grouping key, and an opaque value blob. A stream is the sequence of all
// events with the same sid in increasing timestamp order, ties broken
// deterministically.
package event

import (
	"fmt"
	"strings"
)

// Timestamp is a global logical timestamp in microseconds. The paper
// assumes timestamps are global across all streams so that merging
// multiple streams yields a well-defined order; local timestamps, if any,
// belong in the event value.
type Timestamp int64

// Event is the unit of data flowing through a MapUpdate application.
type Event struct {
	// Stream is the ID of the stream this event belongs to (sid).
	Stream string
	// TS is the event's global timestamp.
	TS Timestamp
	// Seq disambiguates events that share (TS, Stream). Sources assign
	// strictly increasing sequence numbers so that the total order
	// (TS, Stream, Seq) is deterministic, which the paper requires for
	// well-defined executions ("using a deterministic tie-breaking
	// procedure").
	Seq uint64
	// Key groups events, as in MapReduce. Keys have atomic values and
	// need not be unique across events.
	Key string
	// Value is an opaque blob associated with the event (for example the
	// JSON body of a tweet).
	Value []byte
	// Ingress is instrumentation metadata: the wall-clock nanosecond at
	// which the root external event entered the system. Derived events
	// inherit it, so observing (now - Ingress) at a slate update yields
	// the end-to-end pipeline latency the paper reports ("a latency of
	// under 2 seconds", Section 5). Zero means unset. It is not part of
	// the MapUpdate model.
	Ingress int64
	// TraceEnq is instrumentation metadata: when the observability
	// tracer samples a delivery, the queue-admission wall-clock
	// nanosecond is stamped here so the dequeuing worker can observe
	// queue wait and trace the rest of the lifecycle. Zero means the
	// delivery is untraced. Node-local (never crosses the wire); like
	// Ingress, it is not part of the MapUpdate model.
	TraceEnq int64
}

// Less reports whether e is ordered strictly before f in the global
// deterministic order (TS, Stream, Seq).
func (e Event) Less(f Event) bool {
	if e.TS != f.TS {
		return e.TS < f.TS
	}
	if e.Stream != f.Stream {
		return e.Stream < f.Stream
	}
	return e.Seq < f.Seq
}

// Compare returns -1, 0, or +1 according to the global deterministic
// order (TS, Stream, Seq).
func (e Event) Compare(f Event) int {
	switch {
	case e.TS < f.TS:
		return -1
	case e.TS > f.TS:
		return 1
	}
	if c := strings.Compare(e.Stream, f.Stream); c != 0 {
		return c
	}
	switch {
	case e.Seq < f.Seq:
		return -1
	case e.Seq > f.Seq:
		return 1
	}
	return 0
}

// Clone returns a deep copy of the event. Engines clone events at
// machine boundaries so that a mutation by one worker can never be
// observed by another, mirroring the serialization that a real network
// hop performs.
func (e Event) Clone() Event {
	c := e
	if e.Value != nil {
		c.Value = make([]byte, len(e.Value))
		copy(c.Value, e.Value)
	}
	return c
}

// String renders the event for logs and tests.
func (e Event) String() string {
	v := string(e.Value)
	if len(v) > 32 {
		v = v[:29] + "..."
	}
	return fmt.Sprintf("event{sid=%s ts=%d seq=%d key=%q value=%q}", e.Stream, e.TS, e.Seq, e.Key, v)
}

// Size returns the approximate in-memory footprint of the event in
// bytes; queues use it to account for memory pressure.
func (e Event) Size() int {
	return len(e.Stream) + len(e.Key) + len(e.Value) + 24
}
