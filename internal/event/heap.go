package event

import "container/heap"

// MinHeap is a priority queue of events ordered by the global
// deterministic order (TS, Stream, Seq). The reference executor uses it
// to feed events to functions in exactly the order Section 3 of the
// paper prescribes.
type MinHeap struct {
	h eventHeap
}

// NewMinHeap returns an empty heap.
func NewMinHeap() *MinHeap {
	return &MinHeap{}
}

// Push adds an event.
func (m *MinHeap) Push(e Event) {
	heap.Push(&m.h, e)
}

// Pop removes and returns the least event. It panics if the heap is
// empty; check Len first.
func (m *MinHeap) Pop() Event {
	return heap.Pop(&m.h).(Event)
}

// Peek returns the least event without removing it.
func (m *MinHeap) Peek() Event {
	return m.h[0]
}

// Len reports the number of buffered events.
func (m *MinHeap) Len() int { return len(m.h) }

type eventHeap []Event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].Less(h[j]) }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Merge returns the events of all input slices merged into one slice in
// the global deterministic order. Inputs need not be sorted.
func Merge(streams ...[]Event) []Event {
	h := NewMinHeap()
	total := 0
	for _, s := range streams {
		total += len(s)
		for _, e := range s {
			h.Push(e)
		}
	}
	out := make([]Event, 0, total)
	for h.Len() > 0 {
		out = append(out, h.Pop())
	}
	return out
}
