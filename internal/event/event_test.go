package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLessOrdersByTimestampFirst(t *testing.T) {
	a := Event{Stream: "z", TS: 1, Seq: 9}
	b := Event{Stream: "a", TS: 2, Seq: 0}
	if !a.Less(b) {
		t.Fatalf("expected %v < %v", a, b)
	}
	if b.Less(a) {
		t.Fatalf("expected !(%v < %v)", b, a)
	}
}

func TestLessBreaksTiesByStreamThenSeq(t *testing.T) {
	a := Event{Stream: "a", TS: 5, Seq: 7}
	b := Event{Stream: "b", TS: 5, Seq: 1}
	if !a.Less(b) {
		t.Fatalf("stream tiebreak failed: expected %v < %v", a, b)
	}
	c := Event{Stream: "a", TS: 5, Seq: 8}
	if !a.Less(c) {
		t.Fatalf("seq tiebreak failed: expected %v < %v", a, c)
	}
}

func TestLessIsIrreflexive(t *testing.T) {
	e := Event{Stream: "s", TS: 3, Seq: 4}
	if e.Less(e) {
		t.Fatal("event must not be less than itself")
	}
}

func TestCompareAgreesWithLess(t *testing.T) {
	f := func(ts1, ts2 int64, s1, s2 uint8, q1, q2 uint64) bool {
		a := Event{Stream: string(rune('a' + s1%4)), TS: Timestamp(ts1 % 100), Seq: q1 % 8}
		b := Event{Stream: string(rune('a' + s2%4)), TS: Timestamp(ts2 % 100), Seq: q2 % 8}
		c := a.Compare(b)
		switch {
		case a.Less(b):
			return c == -1 && b.Compare(a) == 1
		case b.Less(a):
			return c == 1 && b.Compare(a) == -1
		default:
			return c == 0 && b.Compare(a) == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := Event{Stream: "s", Key: "k", Value: []byte("hello")}
	c := e.Clone()
	c.Value[0] = 'X'
	if string(e.Value) != "hello" {
		t.Fatalf("clone shares value storage: %q", e.Value)
	}
}

func TestCloneNilValue(t *testing.T) {
	e := Event{Stream: "s"}
	c := e.Clone()
	if c.Value != nil {
		t.Fatal("clone of nil value must stay nil")
	}
}

func TestStringTruncatesLongValues(t *testing.T) {
	long := make([]byte, 100)
	for i := range long {
		long[i] = 'a'
	}
	e := Event{Stream: "s", Value: long}
	s := e.String()
	if len(s) > 120 {
		t.Fatalf("string too long: %d bytes", len(s))
	}
}

func TestSizeAccountsForAllFields(t *testing.T) {
	e := Event{Stream: "abc", Key: "de", Value: []byte("fgh")}
	if got := e.Size(); got != 3+2+3+24 {
		t.Fatalf("Size = %d, want %d", got, 3+2+3+24)
	}
}

func TestMinHeapDrainsInOrder(t *testing.T) {
	h := NewMinHeap()
	rng := rand.New(rand.NewSource(42))
	var want []Event
	for i := 0; i < 500; i++ {
		e := Event{
			Stream: string(rune('a' + rng.Intn(3))),
			TS:     Timestamp(rng.Intn(50)),
			Seq:    uint64(i),
		}
		want = append(want, e)
		h.Push(e)
	}
	sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
	for i, w := range want {
		got := h.Pop()
		if got.Compare(w) != 0 {
			t.Fatalf("pop %d: got %v, want %v", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not empty: %d", h.Len())
	}
}

func TestMinHeapPeekDoesNotRemove(t *testing.T) {
	h := NewMinHeap()
	h.Push(Event{TS: 2})
	h.Push(Event{TS: 1})
	if h.Peek().TS != 1 {
		t.Fatalf("peek = %v, want ts 1", h.Peek())
	}
	if h.Len() != 2 {
		t.Fatalf("peek removed an element, len = %d", h.Len())
	}
}

func TestMergeInterleavesStreams(t *testing.T) {
	s1 := []Event{{Stream: "s1", TS: 1}, {Stream: "s1", TS: 5}}
	s2 := []Event{{Stream: "s2", TS: 3}, {Stream: "s2", TS: 4}}
	out := Merge(s1, s2)
	var ts []Timestamp
	for _, e := range out {
		ts = append(ts, e.TS)
	}
	want := []Timestamp{1, 3, 4, 5}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("merge order %v, want %v", ts, want)
		}
	}
}

func TestMergePropertySortedAndComplete(t *testing.T) {
	f := func(tsa, tsb []int16) bool {
		var s1, s2 []Event
		for i, v := range tsa {
			s1 = append(s1, Event{Stream: "a", TS: Timestamp(v), Seq: uint64(i)})
		}
		for i, v := range tsb {
			s2 = append(s2, Event{Stream: "b", TS: Timestamp(v), Seq: uint64(i)})
		}
		out := Merge(s1, s2)
		if len(out) != len(s1)+len(s2) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].Less(out[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
