package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Quantile(0.50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
	if got := h.Quantile(0.99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v, want 99ms", got)
	}
	if got := h.Quantile(1.0); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Fatalf("max = %v, want 100ms", got)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v, want 50.5ms", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramReservoirBoundsMemory(t *testing.T) {
	h := NewHistogram(100)
	for i := 0; i < 10_000; i++ {
		h.Observe(time.Duration(i))
	}
	if h.Count() != 10_000 {
		t.Fatalf("Count = %d", h.Count())
	}
	h.r.mu.Lock()
	n := len(h.r.samples)
	h.r.mu.Unlock()
	if n != 100 {
		t.Fatalf("retained %d samples, want 100", n)
	}
	// The reservoir should still roughly reflect the distribution: the
	// median of uniform [0,10000) should land in a generous middle band.
	p50 := h.Quantile(0.5)
	if p50 < 2000 || p50 > 8000 {
		t.Fatalf("reservoir p50 = %v, outside sanity band", p50)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(1000)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 2000 {
		t.Fatalf("Count = %d, want 2000", h.Count())
	}
}

func TestHistogramSummaryFormat(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(time.Millisecond)
	s := h.Summary()
	if len(s) == 0 || s[0] != 'n' {
		t.Fatalf("unexpected summary %q", s)
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter()
	m.MarkN(100)
	m.Mark()
	if m.Count() != 101 {
		t.Fatalf("Count = %d, want 101", m.Count())
	}
	time.Sleep(10 * time.Millisecond)
	if m.Rate() <= 0 {
		t.Fatal("Rate should be positive")
	}
}

func TestPerDay(t *testing.T) {
	// The paper's 100M tweets/day is ~1157 events/s.
	if got := PerDay(1157.4); got < 99_000_000 || got > 101_000_000 {
		t.Fatalf("PerDay(1157.4) = %v, want ~100M", got)
	}
}
