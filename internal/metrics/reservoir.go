package metrics

import (
	"math"
	"sort"
	"sync"
)

// reservoir is the shared sampling core behind Histogram (durations)
// and IntHistogram (counts/sizes): exact samples up to a cap, then
// reservoir sampling, which is accurate enough for the experiment
// harness while bounding memory. It is safe for concurrent use.
type reservoir[T ~int64] struct {
	mu      sync.Mutex
	samples []T
	count   uint64
	sum     T
	min     T
	max     T
	cap     int
	rngSeed uint64
}

func newReservoir[T ~int64](capSamples int) reservoir[T] {
	if capSamples <= 0 {
		capSamples = 100_000
	}
	return reservoir[T]{cap: capSamples, rngSeed: 0x9E3779B97F4A7C15}
}

func (r *reservoir[T]) observe(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
	r.sum += v
	if r.count == 1 || v < r.min {
		r.min = v
	}
	if v > r.max {
		r.max = v
	}
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, v)
		return
	}
	// Reservoir sampling: replace a random slot with probability cap/count.
	r.rngSeed = r.rngSeed*6364136223846793005 + 1442695040888963407
	slot := r.rngSeed % r.count
	if slot < uint64(r.cap) {
		r.samples[slot] = v
	}
}

func (r *reservoir[T]) observations() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

func (r *reservoir[T]) maximum() T {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.max
}

// Snapshot is a consistent point-in-time view of a reservoir-backed
// histogram: every field is read (and the quantiles computed) under a
// single lock acquisition, so exporters get mutually consistent
// count/sum/min/max/percentiles instead of N racy reads per scrape.
// Quantiles are over the retained samples.
type Snapshot[T ~int64] struct {
	Count              uint64
	Sum, Min, Max      T
	P50, P90, P95, P99 T
}

// Mean reports Sum/Count (zero when empty), consistent by construction
// with the snapshot it was taken from.
func (s Snapshot[T]) Mean() T {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / T(s.Count)
}

// snapshotAll captures the full snapshot under one lock.
func (r *reservoir[T]) snapshotAll() Snapshot[T] {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot[T]{Count: r.count, Sum: r.sum, Min: r.min, Max: r.max}
	if len(r.samples) == 0 {
		return s
	}
	sorted := make([]T, len(r.samples))
	copy(sorted, r.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.P50 = quantileOf(sorted, 0.50)
	s.P90 = quantileOf(sorted, 0.90)
	s.P95 = quantileOf(sorted, 0.95)
	s.P99 = quantileOf(sorted, 0.99)
	return s
}

// snapshot returns count and sum under one lock, so means computed
// from them are mutually consistent.
func (r *reservoir[T]) snapshot() (count uint64, sum T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count, r.sum
}

// quantileOf reports the q-quantile of an already sorted sample set.
func quantileOf[T ~int64](sorted []T, q float64) T {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// quantile reports the q-quantile (0 <= q <= 1) over the retained
// samples.
func (r *reservoir[T]) quantile(q float64) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	s := make([]T, len(r.samples))
	copy(s, r.samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return quantileOf(s, q)
}
