package metrics

import (
	"math"
	"sort"
	"sync"
)

// reservoir is the shared sampling core behind Histogram (durations)
// and IntHistogram (counts/sizes): exact samples up to a cap, then
// reservoir sampling, which is accurate enough for the experiment
// harness while bounding memory. It is safe for concurrent use.
type reservoir[T ~int64] struct {
	mu      sync.Mutex
	samples []T
	count   uint64
	sum     T
	max     T
	cap     int
	rngSeed uint64
}

func newReservoir[T ~int64](capSamples int) reservoir[T] {
	if capSamples <= 0 {
		capSamples = 100_000
	}
	return reservoir[T]{cap: capSamples, rngSeed: 0x9E3779B97F4A7C15}
}

func (r *reservoir[T]) observe(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
	r.sum += v
	if v > r.max {
		r.max = v
	}
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, v)
		return
	}
	// Reservoir sampling: replace a random slot with probability cap/count.
	r.rngSeed = r.rngSeed*6364136223846793005 + 1442695040888963407
	slot := r.rngSeed % r.count
	if slot < uint64(r.cap) {
		r.samples[slot] = v
	}
}

func (r *reservoir[T]) observations() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

func (r *reservoir[T]) maximum() T {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.max
}

// snapshot returns count and sum under one lock, so means computed
// from them are mutually consistent.
func (r *reservoir[T]) snapshot() (count uint64, sum T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count, r.sum
}

// quantile reports the q-quantile (0 <= q <= 1) over the retained
// samples.
func (r *reservoir[T]) quantile(q float64) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	s := make([]T, len(r.samples))
	copy(s, r.samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
