// Package metrics provides the counters, throughput meters, and latency
// histograms the benchmark harness uses to reproduce the paper's
// operational claims (Section 5): sustained events/second and
// end-to-end latency percentiles.
package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram records duration samples and reports percentiles over a
// bounded reservoir (see reservoir.go). It is safe for concurrent use.
type Histogram struct {
	r reservoir[time.Duration]
}

// NewHistogram returns a histogram keeping at most capSamples raw
// samples (default 100k if capSamples <= 0).
func NewHistogram(capSamples int) *Histogram {
	return &Histogram{r: newReservoir[time.Duration](capSamples)}
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) { h.r.observe(d) }

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.r.observations() }

// Mean reports the average of all observations, computed from one
// consistent snapshot (see Snapshot).
func (h *Histogram) Mean() time.Duration {
	return h.Snapshot().Mean()
}

// Snapshot captures count/sum/min/max and the p50/p90/p95/p99
// quantiles in one consistent read (a single lock acquisition), so
// exporters do not take N racy reads per scrape.
func (h *Histogram) Snapshot() Snapshot[time.Duration] {
	return h.r.snapshotAll()
}

// Max reports the largest observation.
func (h *Histogram) Max() time.Duration { return h.r.maximum() }

// Min reports the smallest observation (zero when empty).
func (h *Histogram) Min() time.Duration { return h.Snapshot().Min }

// Quantile reports the q-quantile (0 <= q <= 1) over the retained
// samples.
func (h *Histogram) Quantile(q float64) time.Duration { return h.r.quantile(q) }

// Summary renders count/mean/p50/p95/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// Meter measures throughput: events counted over a wall-clock window.
type Meter struct {
	count atomic.Uint64
	start time.Time
}

// NewMeter returns a meter whose window starts now.
func NewMeter() *Meter {
	return &Meter{start: time.Now()}
}

// Mark counts one event.
func (m *Meter) Mark() { m.count.Add(1) }

// MarkN counts n events.
func (m *Meter) MarkN(n uint64) { m.count.Add(n) }

// Count returns the events counted so far.
func (m *Meter) Count() uint64 { return m.count.Load() }

// Rate returns events per second since the meter was created.
func (m *Meter) Rate() float64 {
	elapsed := time.Since(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count.Load()) / elapsed
}

// PerDay converts an events/second rate into the events/day framing the
// paper reports ("over 100 million tweets per day").
func PerDay(ratePerSec float64) float64 {
	return ratePerSec * 86400
}
