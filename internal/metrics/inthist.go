package metrics

import "fmt"

// IntHistogram records integer-valued samples (batch sizes, queue
// depths) and reports percentiles over a bounded reservoir (see
// reservoir.go, shared with Histogram). It is safe for concurrent use.
type IntHistogram struct {
	r reservoir[int64]
}

// NewIntHistogram returns a histogram keeping at most capSamples raw
// samples (default 100k if capSamples <= 0).
func NewIntHistogram(capSamples int) *IntHistogram {
	return &IntHistogram{r: newReservoir[int64](capSamples)}
}

// Observe records one sample.
func (h *IntHistogram) Observe(v int64) { h.r.observe(v) }

// Count reports the number of observations.
func (h *IntHistogram) Count() uint64 { return h.r.observations() }

// Sum reports the total of all observations.
func (h *IntHistogram) Sum() int64 {
	_, sum := h.r.snapshot()
	return sum
}

// Mean reports the average of all observations, computed from one
// consistent snapshot (see Snapshot).
func (h *IntHistogram) Mean() float64 {
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot captures count/sum/min/max and the p50/p90/p95/p99
// quantiles in one consistent read (a single lock acquisition), so
// exporters do not take N racy reads per scrape.
func (h *IntHistogram) Snapshot() Snapshot[int64] {
	return h.r.snapshotAll()
}

// Max reports the largest observation.
func (h *IntHistogram) Max() int64 { return h.r.maximum() }

// Quantile reports the q-quantile (0 <= q <= 1) over the retained
// samples.
func (h *IntHistogram) Quantile(q float64) int64 { return h.r.quantile(q) }

// Summary renders count/mean/p50/p95/max on one line.
func (h *IntHistogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p95=%d max=%d",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Max())
}
