package metrics

import "testing"

func TestIntHistogramBasics(t *testing.T) {
	h := NewIntHistogram(0)
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 || h.Sum() != 5050 || h.Max() != 100 {
		t.Fatalf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	if m := h.Mean(); m != 50.5 {
		t.Fatalf("mean = %v", m)
	}
	if q := h.Quantile(0.5); q < 45 || q > 55 {
		t.Fatalf("p50 = %d", q)
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Fatalf("p100 = %d", q)
	}
}

func TestIntHistogramReservoirBounds(t *testing.T) {
	h := NewIntHistogram(10)
	for i := int64(0); i < 10_000; i++ {
		h.Observe(7)
	}
	if h.Count() != 10_000 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.99); q != 7 {
		t.Fatalf("p99 = %d, want 7", q)
	}
}
