package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if want := 5050 * time.Millisecond; s.Sum != want {
		t.Errorf("Sum = %v, want %v", s.Sum, want)
	}
	if s.Min != time.Millisecond {
		t.Errorf("Min = %v, want 1ms", s.Min)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", s.Max)
	}
	if s.P50 < 45*time.Millisecond || s.P50 > 55*time.Millisecond {
		t.Errorf("P50 = %v, want ~50ms", s.P50)
	}
	if s.P99 < 95*time.Millisecond || s.P99 > 100*time.Millisecond {
		t.Errorf("P99 = %v, want ~99ms", s.P99)
	}
	if s.P90 > s.P95 || s.P95 > s.P99 {
		t.Errorf("quantiles not monotone: p90=%v p95=%v p99=%v", s.P90, s.P95, s.P99)
	}
	if got, want := s.Mean(), 5050*time.Millisecond/100; got != want {
		t.Errorf("Snapshot Mean = %v, want %v", got, want)
	}
	if h.Mean() != s.Mean() {
		t.Errorf("Histogram.Mean %v != Snapshot.Mean %v", h.Mean(), s.Mean())
	}
}

func TestHistogramSnapshotEmpty(t *testing.T) {
	h := NewHistogram(8)
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if s.Mean() != 0 {
		t.Fatalf("empty Mean = %v, want 0", s.Mean())
	}
}

func TestIntHistogramSnapshot(t *testing.T) {
	h := NewIntHistogram(0)
	for i := int64(1); i <= 10; i++ {
		h.Observe(i * 10)
	}
	s := h.Snapshot()
	if s.Count != 10 || s.Sum != 550 || s.Min != 10 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Mean() != 55 {
		t.Errorf("Mean = %d, want 55", s.Mean())
	}
	if h.Mean() != 55 {
		t.Errorf("IntHistogram.Mean = %v, want 55", h.Mean())
	}
}

// TestHistogramSnapshotConsistent exercises the one-lock guarantee:
// a snapshot taken mid-stream must be internally consistent — its sum
// can never exceed count * max.
func TestHistogramSnapshotConsistent(t *testing.T) {
	h := NewHistogram(1024)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				h.Observe(time.Duration(i%100+1) * time.Millisecond)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		if s.Min > s.Max {
			t.Fatalf("min %v > max %v", s.Min, s.Max)
		}
		if s.Sum > time.Duration(s.Count)*s.Max {
			t.Fatalf("sum %v exceeds count %d * max %v", s.Sum, s.Count, s.Max)
		}
		if s.Sum < time.Duration(s.Count)*s.Min {
			t.Fatalf("sum %v below count %d * min %v", s.Sum, s.Count, s.Min)
		}
	}
	close(stop)
	wg.Wait()
}
