package slate

import (
	"bytes"
	"errors"
	"strconv"
	"sync/atomic"
	"testing"
)

// countingCodec is a test Codec over an int slate (ASCII decimal at
// rest) that counts decode and encode calls — the decode-once /
// encode-per-flush contract is asserted on these counters.
type countingCodec struct {
	decodes atomic.Int64
	encodes atomic.Int64
	// failEncode forces AppendEncode errors when set.
	failEncode atomic.Bool
}

func (c *countingCodec) New() any { return new(int) }

func (c *countingCodec) Decode(data []byte) (any, error) {
	c.decodes.Add(1)
	n, err := strconv.Atoi(string(data))
	if err != nil {
		return nil, err
	}
	return &n, nil
}

func (c *countingCodec) AppendEncode(dst []byte, v any) ([]byte, error) {
	if c.failEncode.Load() {
		return nil, errors.New("encode failed")
	}
	c.encodes.Add(1)
	return strconv.AppendInt(dst, int64(*v.(*int)), 10), nil
}

// eachStore runs fn against a fresh instance of every SlateStore
// implementation (each subtest gets its own store and codec, so the
// contract assertions cannot bleed across implementations).
func eachStore(t *testing.T, capacity int, policy FlushPolicy, withStore bool, fn func(t *testing.T, s SlateStore, store *fakeStore, c *countingCodec)) {
	t.Helper()
	impls := map[string]func(CacheConfig) SlateStore{
		"single-lock": func(cfg CacheConfig) SlateStore { return NewCache(cfg) },
		"sharded": func(cfg CacheConfig) SlateStore {
			return NewSharded(ShardedConfig{
				Shards:   4,
				Capacity: cfg.Capacity,
				Policy:   cfg.Policy,
				Store:    cfg.Store,
				TTLFor:   cfg.TTLFor,
			})
		},
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			var store *fakeStore
			cfg := CacheConfig{Capacity: capacity, Policy: policy}
			if withStore {
				store = newFakeStore()
				cfg.Store = store
			}
			fn(t, mk(cfg), store, &countingCodec{})
		})
	}
}

// typedUpdate mimics one engine update invocation: get-decoded (or
// fresh), mutate, put-decoded.
func typedUpdate(t *testing.T, s SlateStore, key Key, c *countingCodec) {
	t.Helper()
	v, err := s.GetDecoded(key, c)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		v = c.New()
	}
	*v.(*int)++
	if err := s.PutDecoded(key, v, c); err != nil {
		t.Fatal(err)
	}
}

func TestDecodedDecodeOnceEncodePerFlush(t *testing.T) {
	eachStore(t, 100, Interval, true, func(t *testing.T, s SlateStore, _ *fakeStore, c *countingCodec) {
		{
			key := k("U", "x")
			const events = 50
			for i := 0; i < events; i++ {
				typedUpdate(t, s, key, c)
			}
			// The slate never existed at rest, so nothing was decoded;
			// nothing was encoded either — no flush, no external read.
			if d := c.decodes.Load(); d != 0 {
				t.Fatalf("decodes before flush = %d, want 0", d)
			}
			if e := c.encodes.Load(); e != 0 {
				t.Fatalf("encodes before flush = %d, want 0", e)
			}
			if n, err := s.FlushDirty(); err != nil || n != 1 {
				t.Fatalf("FlushDirty = %d, %v", n, err)
			}
			// events updates, one flush: exactly one encode.
			if e := c.encodes.Load(); e != 1 {
				t.Fatalf("encodes after flush = %d, want 1", e)
			}
			if v, err := s.Get(key); err != nil || string(v) != strconv.Itoa(events) {
				t.Fatalf("Get = %q, %v", v, err)
			}
		}
	})
}

func TestDecodedLoadsAndDecodesFromStoreOnce(t *testing.T) {
	eachStore(t, 100, Interval, true, func(t *testing.T, s SlateStore, store *fakeStore, c *countingCodec) {
		{
			store.data[k("U", "x")] = []byte("41")
			for i := 0; i < 10; i++ {
				typedUpdate(t, s, k("U", "x"), c)
			}
			// One cache fill = one store load + one decode, however
			// many updates follow.
			if d := c.decodes.Load(); d != 1 {
				t.Fatalf("decodes = %d, want 1", d)
			}
			s.FlushDirty()
			if v, _, _ := store.Load(k("U", "x")); string(v) != "51" {
				t.Fatalf("stored = %q, want 51", v)
			}
		}
	})
}

func TestDecodedReadsEncodeLazily(t *testing.T) {
	eachStore(t, 100, Interval, false, func(t *testing.T, s SlateStore, _ *fakeStore, c *countingCodec) {
		{
			typedUpdate(t, s, k("U", "x"), c)
			typedUpdate(t, s, k("U", "x"), c)
			// Get and Peek materialize the encoding on demand...
			if v, err := s.Get(k("U", "x")); err != nil || string(v) != "2" {
				t.Fatalf("Get = %q, %v", v, err)
			}
			if v, ok := s.Peek(k("U", "x")); !ok || string(v) != "2" {
				t.Fatalf("Peek = %q, %v", v, ok)
			}
			// ...exactly once while the object is unchanged.
			if e := c.encodes.Load(); e != 1 {
				t.Fatalf("encodes = %d, want 1", e)
			}
			// Another update invalidates the snapshot; the next read
			// re-encodes.
			typedUpdate(t, s, k("U", "x"), c)
			if v, _ := s.Get(k("U", "x")); string(v) != "3" {
				t.Fatalf("Get after update = %q", v)
			}
			if e := c.encodes.Load(); e != 2 {
				t.Fatalf("encodes = %d, want 2", e)
			}
		}
	})
}

func TestDecodedPinBlocksFlushUntilPut(t *testing.T) {
	eachStore(t, 100, Interval, true, func(t *testing.T, s SlateStore, store *fakeStore, c *countingCodec) {
		{
			key := k("U", "x")
			typedUpdate(t, s, key, c)
			// Simulate an in-flight invocation: GetDecoded pins the
			// entry and the updater is "mutating" the object.
			v, err := s.GetDecoded(key, c)
			if err != nil || v == nil {
				t.Fatalf("GetDecoded = %v, %v", v, err)
			}
			if n, err := s.FlushDirty(); err != nil || n != 0 {
				t.Fatalf("flush during pin = %d, %v; want 0 flushed", n, err)
			}
			if s.DirtyCount() != 1 {
				t.Fatalf("pinned entry lost its dirty mark")
			}
			*v.(*int)++
			if err := s.PutDecoded(key, v, c); err != nil {
				t.Fatal(err)
			}
			if n, err := s.FlushDirty(); err != nil || n != 1 {
				t.Fatalf("flush after put = %d, %v; want 1", n, err)
			}
			if got, _, _ := store.Load(key); string(got) != "2" {
				t.Fatalf("stored = %q, want 2", got)
			}
		}
	})
}

func TestDecodedEvictionSkipsPinnedEntry(t *testing.T) {
	eachStore(t, 2, OnEvict, true, func(t *testing.T, s SlateStore, _ *fakeStore, c *countingCodec) {
		{
			pinned := k("U", "pinned")
			typedUpdate(t, s, pinned, c)
			v, err := s.GetDecoded(pinned, c) // hold the pin
			if err != nil || v == nil {
				t.Fatal("pin setup failed")
			}
			// Overflow the cache (and every shard) so eviction must
			// pass over the pinned entry; it may only evict others.
			for i := 0; i < 64; i++ {
				s.Put(k("U", "filler"+strconv.Itoa(i)), []byte("x"))
			}
			if _, ok := s.Peek(pinned); !ok {
				t.Fatal("pinned entry was evicted")
			}
			s.PutDecoded(pinned, v, c)
			if n, err := s.FlushDirty(); err != nil || n < 1 {
				t.Fatalf("flush after unpin = %d, %v", n, err)
			}
		}
	})
}

func TestDecodedEncodeErrorKeepsEntryDirty(t *testing.T) {
	eachStore(t, 100, Interval, true, func(t *testing.T, s SlateStore, _ *fakeStore, c *countingCodec) {
		{
			typedUpdate(t, s, k("U", "x"), c)
			c.failEncode.Store(true)
			if n, _ := s.FlushDirty(); n != 0 {
				t.Fatalf("flushed %d records despite encode failure", n)
			}
			if s.DirtyCount() != 1 {
				t.Fatal("entry lost its dirty mark on encode failure")
			}
			if got := s.Stats().EncodeErrors; got != 1 {
				t.Fatalf("EncodeErrors = %d, want 1", got)
			}
			c.failEncode.Store(false)
			if n, err := s.FlushDirty(); err != nil || n != 1 {
				t.Fatalf("retry flush = %d, %v", n, err)
			}
		}
	})
}

func TestDecodedWriteThroughEncodesAndSavesPerPut(t *testing.T) {
	eachStore(t, 100, WriteThrough, true, func(t *testing.T, s SlateStore, store *fakeStore, c *countingCodec) {
		{
			key := k("U", "x")
			before := c.encodes.Load()
			typedUpdate(t, s, key, c)
			typedUpdate(t, s, key, c)
			if e := c.encodes.Load() - before; e != 2 {
				t.Fatalf("encodes = %d, want 2 (one per write-through put)", e)
			}
			if v, _, _ := store.Load(key); string(v) != "2" {
				t.Fatalf("stored = %q, want 2", v)
			}
			if s.DirtyCount() != 0 {
				t.Fatal("write-through left the entry dirty")
			}
		}
	})
}

func TestDecodedBytePutInvalidatesDecodedObject(t *testing.T) {
	eachStore(t, 100, Interval, false, func(t *testing.T, s SlateStore, _ *fakeStore, c *countingCodec) {
		{
			key := k("U", "x")
			typedUpdate(t, s, key, c)
			// A byte-level Put (e.g. recovery warm or a classic
			// updater) makes the bytes the source of truth again.
			if err := s.Put(key, []byte("99")); err != nil {
				t.Fatal(err)
			}
			if v, _ := s.Get(key); string(v) != "99" {
				t.Fatalf("Get = %q, want 99", v)
			}
			// The next typed read decodes the new bytes.
			typedUpdate(t, s, key, c)
			if v, _ := s.Get(key); string(v) != "100" {
				t.Fatalf("Get = %q, want 100", v)
			}
		}
	})
}

func TestDecodedCorruptSlateReportsError(t *testing.T) {
	eachStore(t, 100, Interval, false, func(t *testing.T, s SlateStore, _ *fakeStore, c *countingCodec) {
		{
			key := k("U", "x")
			s.Put(key, []byte("not a number"))
			if _, err := s.GetDecoded(key, c); err == nil {
				t.Fatal("GetDecoded of corrupt slate returned nil error")
			}
			if got := s.Stats().DecodeErrors; got != 1 {
				t.Fatalf("DecodeErrors = %d, want 1", got)
			}
			// The engine's typed path falls back to a fresh object and
			// overwrites — exactly what PutDecoded does here.
			v := c.New()
			*v.(*int) = 7
			if err := s.PutDecoded(key, v, c); err != nil {
				t.Fatal(err)
			}
			if got, _ := s.Get(key); string(got) != "7" {
				t.Fatalf("Get = %q, want 7", got)
			}
		}
	})
}

func TestDecodedSnapshotDuringPinServesLastEncoding(t *testing.T) {
	eachStore(t, 100, Interval, false, func(t *testing.T, s SlateStore, _ *fakeStore, c *countingCodec) {
		{
			key := k("U", "x")
			typedUpdate(t, s, key, c)
			if v, _ := s.Get(key); string(v) != "1" {
				t.Fatalf("Get = %q", v) // materializes the "1" snapshot
			}
			v, _ := s.GetDecoded(key, c) // pin
			*v.(*int) = 42               // concurrent mutation in progress
			// Reads during the pin must not race the mutation: they
			// serve the last materialized encoding.
			if got, _ := s.Get(key); !bytes.Equal(got, []byte("1")) {
				t.Fatalf("Get during pin = %q, want last snapshot 1", got)
			}
			s.PutDecoded(key, v, c)
			if got, _ := s.Get(key); string(got) != "42" {
				t.Fatalf("Get after put = %q, want 42", got)
			}
		}
	})
}
