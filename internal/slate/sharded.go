package slate

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"muppet/internal/metrics"
	"muppet/internal/microbatch"
	"muppet/internal/wal"
)

// ShardedConfig tunes a sharded slate store.
type ShardedConfig struct {
	// Shards is the number of independent stripes (default 16). More
	// shards means less lock contention between worker threads; the
	// per-shard state is small, so oversizing is cheap.
	Shards int
	// Capacity is the maximum number of cached slates across all
	// shards (default 10000). Each shard gets an equal slice of it.
	Capacity int
	// Policy selects the flush behavior.
	Policy FlushPolicy
	// Store is the durable backing; nil disables persistence. When it
	// also implements BatchStore, group-commit flushes use SaveBatch.
	Store Store
	// WAL, when set, receives every flush batch as one record batch
	// before the batch is written to the store; replaying it restores
	// all flushed slates.
	WAL *wal.SlateBatchLog
	// MaxFlushBatch bounds records per group-commit batch (default 256).
	MaxFlushBatch int
	// MaxFlushBytes bounds a batch's total slate bytes (default 1MiB).
	MaxFlushBytes int64
	// WALCheckpoint truncates the WAL after a fully successful flush,
	// so the log retains only batches not yet known durable in the
	// store (the group-commit checkpoint long-running engines need to
	// bound log memory). Leave false to retain the full flush history,
	// e.g. for replay tests.
	WALCheckpoint bool
	// TTLFor returns the slate TTL for an updater; nil means forever.
	TTLFor func(updater string) time.Duration
}

func (c *ShardedConfig) fill() {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Capacity <= 0 {
		c.Capacity = 10_000
	}
	// Per-shard capacity rounds up, so more shards than slates would
	// inflate the effective capacity; clamp to keep it honest for tiny
	// caches (the eviction experiments rely on exact small capacities).
	if c.Shards > c.Capacity {
		c.Shards = c.Capacity
	}
	if c.MaxFlushBatch <= 0 {
		c.MaxFlushBatch = 256
	}
	if c.MaxFlushBytes <= 0 {
		c.MaxFlushBytes = 1 << 20
	}
}

// shard is one stripe: a small LRU cache with its own mutex and dirty
// list.
type shard struct {
	mu       sync.Mutex
	capacity int
	items    map[Key]*entry
	lru      *list.List // front = most recently used
	dirty    map[Key]*entry
	stats    CacheStats
}

// FlushStats counts group-commit activity.
type FlushStats struct {
	// Flushes is the number of FlushDirty calls that found dirty work.
	Flushes uint64
	// Batches is the number of group-commit batches issued.
	Batches uint64
	// Records is the number of slates persisted by those batches.
	Records uint64
	// Errors is the number of batches whose store write failed (their
	// records were re-marked dirty for retry).
	Errors uint64
}

// Add accumulates s into t (engines aggregate per-machine or
// per-worker stores with it).
func (t *FlushStats) Add(s FlushStats) {
	t.Flushes += s.Flushes
	t.Batches += s.Batches
	t.Records += s.Records
	t.Errors += s.Errors
}

// Sharded is a striped slate store: the key space is divided over
// independent shards by an FNV-1a hash of <updater, key>, and dirty
// slates are persisted by a group-commit flush pipeline. It is safe
// for concurrent use. See the package documentation for the design.
type Sharded struct {
	cfg    ShardedConfig
	shards []*shard
	batch  BatchStore // non-nil when cfg.Store supports multi-put

	flushMu      sync.Mutex // serializes group commits
	flushes      atomic.Uint64
	batches      atomic.Uint64
	records      atomic.Uint64
	flushErrors  atomic.Uint64
	flushSaves   atomic.Uint64 // StoreSaves issued by the flush path
	flushLatency *metrics.Histogram
	batchSizes   *metrics.IntHistogram
}

// NewSharded returns a sharded store with the given configuration.
func NewSharded(cfg ShardedConfig) *Sharded {
	cfg.fill()
	s := &Sharded{
		cfg:          cfg,
		shards:       make([]*shard, cfg.Shards),
		flushLatency: metrics.NewHistogram(0),
		batchSizes:   metrics.NewIntHistogram(0),
	}
	// Distribute the capacity exactly: the first Capacity%Shards
	// shards hold one extra slate, so the totals match the configured
	// bound (eviction experiments rely on exact small capacities).
	base, rem := cfg.Capacity/cfg.Shards, cfg.Capacity%cfg.Shards
	for i := range s.shards {
		capacity := base
		if i < rem {
			capacity++
		}
		s.shards[i] = &shard{
			capacity: capacity,
			items:    make(map[Key]*entry),
			lru:      list.New(),
			dirty:    make(map[Key]*entry),
		}
	}
	if bs, ok := cfg.Store.(BatchStore); ok {
		s.batch = bs
	}
	return s
}

// shardFor stripes a key over the shards with FNV-1a.
func (s *Sharded) shardFor(k Key) *shard {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(k.Updater); i++ {
		h ^= uint64(k.Updater[i])
		h *= 1099511628211
	}
	// Separator byte (cannot appear in UTF-8 function names) keeps
	// ("ab","c") distinct from ("a","bc").
	h ^= 0xff
	h *= 1099511628211
	for i := 0; i < len(k.Key); i++ {
		h ^= uint64(k.Key[i])
		h *= 1099511628211
	}
	return s.shards[h%uint64(len(s.shards))]
}

func (s *Sharded) ttl(k Key) time.Duration {
	if s.cfg.TTLFor == nil {
		return 0
	}
	return s.cfg.TTLFor(k.Updater)
}

// Get implements SlateStore: cache hit, or load-through from the
// durable store.
func (s *Sharded) Get(k Key) ([]byte, error) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	if e, ok := sh.items[k]; ok {
		sh.stats.Hits++
		sh.lru.MoveToFront(e.elem)
		v := e.snapshotLocked(&sh.stats)
		sh.mu.Unlock()
		return v, nil
	}
	sh.stats.Misses++
	if s.cfg.Store == nil {
		sh.mu.Unlock()
		return nil, nil
	}
	sh.stats.StoreLoads++
	// The store round-trip holds the shard lock, like the single-lock
	// baseline holds its global one: releasing it would let a
	// concurrent Put-then-evict land a newer value in the store that
	// this load has already missed, and the re-insert would cache the
	// stale copy as clean. A slow load therefore stalls one stripe,
	// not the whole cache.
	defer sh.mu.Unlock()
	v, found, err := s.cfg.Store.Load(k)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	s.insertLocked(sh, k, v, false)
	return v, nil
}

// Peek implements SlateStore.
func (s *Sharded) Peek(k Key) ([]byte, bool) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.items[k]; ok {
		return e.snapshotLocked(&sh.stats), true
	}
	return nil, false
}

// Put implements SlateStore.
func (s *Sharded) Put(k Key, value []byte) error {
	sh := s.shardFor(k)
	sh.mu.Lock()
	e, ok := sh.items[k]
	if ok {
		e.setBytesLocked(value)
		if !e.dirty {
			e.dirty = true
			sh.dirty[k] = e
		}
		sh.lru.MoveToFront(e.elem)
	} else {
		e = s.insertLocked(sh, k, value, true)
	}
	if s.cfg.Policy == WriteThrough && s.cfg.Store != nil {
		e.dirty = false
		delete(sh.dirty, k)
		sh.stats.StoreSaves++
		ttl := s.ttl(k)
		sh.mu.Unlock()
		return s.cfg.Store.Save(k, value, ttl)
	}
	sh.mu.Unlock()
	return nil
}

// GetDecoded implements SlateStore: the typed read path. The decoded
// object is produced at most once per cache fill and pinned until the
// matching PutDecoded; see Cache.GetDecoded for the contract.
func (s *Sharded) GetDecoded(k Key, codec Codec) (any, error) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.items[k]; ok {
		sh.stats.Hits++
		sh.lru.MoveToFront(e.elem)
		if e.decoded == nil {
			v, err := codec.Decode(e.value)
			if err != nil {
				sh.stats.DecodeErrors++
				return nil, err
			}
			e.decoded = v
			e.codec = codec
		}
		e.pins++
		return e.decoded, nil
	}
	sh.stats.Misses++
	if s.cfg.Store == nil {
		return nil, nil
	}
	sh.stats.StoreLoads++
	// Same rationale as Get for holding the shard lock across the
	// store round-trip: a concurrent Put-then-evict could otherwise
	// re-cache a stale copy as clean.
	raw, found, err := s.cfg.Store.Load(k)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	v, err := codec.Decode(raw)
	if err != nil {
		sh.stats.DecodeErrors++
		return nil, err
	}
	e := s.insertLocked(sh, k, raw, false)
	e.decoded = v
	e.codec = codec
	e.pins++
	return v, nil
}

// PutDecoded implements SlateStore: the typed write path — install the
// (usually mutated-in-place) decoded object, mark the entry dirty, and
// defer the encode to the next flush or external read. It releases the
// pin taken by GetDecoded. Under WriteThrough the object is encoded
// and persisted before PutDecoded returns, exactly like Put.
func (s *Sharded) PutDecoded(k Key, v any, codec Codec) error {
	sh := s.shardFor(k)
	sh.mu.Lock()
	e, ok := sh.items[k]
	if ok {
		e.setDecodedLocked(v, codec)
		if !e.dirty {
			e.dirty = true
			sh.dirty[k] = e
		}
		sh.lru.MoveToFront(e.elem)
	} else {
		e = s.insertLocked(sh, k, nil, true)
		e.setDecodedLocked(v, codec)
	}
	if s.cfg.Policy == WriteThrough && s.cfg.Store != nil {
		if err := e.encodeLocked(); err != nil {
			sh.stats.EncodeErrors++
			sh.mu.Unlock()
			return err
		}
		e.dirty = false
		delete(sh.dirty, k)
		sh.stats.StoreSaves++
		value, ttl := e.value, s.ttl(k)
		sh.mu.Unlock()
		return s.cfg.Store.Save(k, value, ttl)
	}
	sh.mu.Unlock()
	return nil
}

// Delete implements SlateStore.
func (s *Sharded) Delete(k Key) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.items[k]; ok {
		sh.lru.Remove(e.elem)
		delete(sh.items, k)
		delete(sh.dirty, k)
	}
}

// insertLocked adds a new entry to sh, evicting as needed. Caller
// holds sh.mu.
func (s *Sharded) insertLocked(sh *shard, k Key, value []byte, dirty bool) *entry {
	e := &entry{key: k, value: value, dirty: dirty}
	e.elem = sh.lru.PushFront(e)
	sh.items[k] = e
	if dirty {
		sh.dirty[k] = e
	}
	for len(sh.items) > sh.capacity {
		if !s.evictLocked(sh) {
			break
		}
	}
	return e
}

// evictLocked evicts the shard's least recently used unpinned entry; a
// pinned entry's decoded object is in an updater's hands and cannot be
// encoded for persistence, so the walk skips it (the shard may exceed
// capacity for the pin's microseconds-long lifetime). It reports
// whether a victim was found.
func (s *Sharded) evictLocked(sh *shard) bool {
	for el := sh.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e.pins > 0 {
			continue
		}
		if e.dirty && s.cfg.Store != nil {
			// Interval and OnEvict persist on eviction; WriteThrough
			// entries are already clean. A typed entry encodes here;
			// if the encode fails the slate cannot be persisted, so
			// keep it resident rather than drop dirty data.
			if err := e.encodeLocked(); err != nil {
				sh.stats.EncodeErrors++
				continue
			}
			sh.stats.StoreSaves++
			s.cfg.Store.Save(e.key, e.value, s.ttl(e.key))
		}
		sh.lru.Remove(el)
		delete(sh.items, e.key)
		delete(sh.dirty, e.key)
		sh.stats.Evictions++
		return true
	}
	return false
}

// FlushDirty implements SlateStore with the group-commit pipeline:
// drain every shard's dirty list, chunk the records through
// internal/microbatch, append each chunk to the WAL as one record
// batch, and write it to the store with a single multi-put. It returns
// the number of slates durably written. Failed batches are re-marked
// dirty and retried by the next flush.
func (s *Sharded) FlushDirty() (int, error) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	start := time.Now()
	var recs []BatchRecord
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, e := range sh.dirty {
			// A pinned entry's decoded object is being mutated by an
			// updater right now; leave it dirty for the next flush. A
			// stale entry encodes here — once per flush batch, not per
			// event, which is the decode-once design's whole point.
			if e.pins > 0 {
				continue
			}
			if e.encodeLocked() != nil {
				sh.stats.EncodeErrors++
				continue
			}
			e.dirty = false
			delete(sh.dirty, k)
			recs = append(recs, BatchRecord{K: k, Value: e.value, TTL: s.ttl(k)})
		}
		sh.mu.Unlock()
	}
	if len(recs) == 0 {
		return 0, nil
	}
	s.flushes.Add(1)
	if s.cfg.Store == nil {
		return 0, nil
	}
	// Saves are counted when issued, not when the store returns —
	// matching Cache.FlushDirty's accounting, which observers (stats
	// endpoints, experiments) read while a slow flush is in flight.
	s.flushSaves.Add(uint64(len(recs)))
	var firstErr error
	flushed := 0
	chunks := microbatch.ChunkBy(recs, s.cfg.MaxFlushBatch, s.cfg.MaxFlushBytes,
		func(r BatchRecord) int64 { return int64(len(r.Value)) })
	for _, chunk := range chunks {
		var walSeq uint64
		if s.cfg.WAL != nil {
			walRecs := make([]wal.SlateRecord, len(chunk))
			for i, r := range chunk {
				walRecs[i] = wal.SlateRecord{Updater: r.K.Updater, Key: r.K.Key, Value: r.Value, TTL: r.TTL}
			}
			walSeq = s.cfg.WAL.AppendBatch(walRecs)
		}
		s.batches.Add(1)
		s.batchSizes.Observe(int64(len(chunk)))
		err := s.saveChunk(chunk)
		if err != nil {
			s.flushErrors.Add(1)
			if firstErr == nil {
				firstErr = err
			}
			// The records stay dirty and will be re-appended by the
			// retry flush; drop the failed attempt so a long store
			// outage cannot grow the log without bound, and take the
			// failed writes back out of the saves count so retries do
			// not inflate StoreSaves past actual store writes.
			s.remarkDirty(chunk)
			s.flushSaves.Add(^uint64(len(chunk) - 1))
			if s.cfg.WAL != nil {
				s.cfg.WAL.AbortBatch(walSeq)
			}
			continue
		}
		flushed += len(chunk)
	}
	s.records.Add(uint64(flushed))
	s.flushLatency.Observe(time.Since(start))
	if firstErr == nil && s.cfg.WAL != nil && s.cfg.WALCheckpoint {
		s.cfg.WAL.Truncate()
	}
	return flushed, firstErr
}

// saveChunk persists one batch: a single multi-put when the store
// supports it, per-record saves otherwise.
func (s *Sharded) saveChunk(chunk []BatchRecord) error {
	if s.batch != nil {
		return s.batch.SaveBatch(chunk)
	}
	var firstErr error
	for _, r := range chunk {
		if err := s.cfg.Store.Save(r.K, r.Value, r.TTL); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// remarkDirty restores the dirty flag of a failed batch's entries so a
// later flush retries them (unless they were evicted or deleted in the
// meantime — those are gone either way).
func (s *Sharded) remarkDirty(chunk []BatchRecord) {
	for _, r := range chunk {
		sh := s.shardFor(r.K)
		sh.mu.Lock()
		if e, ok := sh.items[r.K]; ok {
			e.dirty = true
			sh.dirty[r.K] = e
		}
		sh.mu.Unlock()
	}
}

// Crash implements SlateStore: drop everything without flushing.
func (s *Sharded) Crash() (dirtyLost int) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, e := range sh.items {
			if e.dirty {
				dirtyLost++
				sh.stats.DirtyLost++
			}
		}
		sh.items = make(map[Key]*entry)
		sh.dirty = make(map[Key]*entry)
		sh.lru = list.New()
		sh.mu.Unlock()
	}
	return dirtyLost
}

// Len implements SlateStore.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// DirtyCount implements SlateStore.
func (s *Sharded) DirtyCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.dirty)
		sh.mu.Unlock()
	}
	return n
}

// Stats implements SlateStore, summing per-shard counters and the
// flush pipeline's saves.
func (s *Sharded) Stats() CacheStats {
	var total CacheStats
	for _, sh := range s.shards {
		sh.mu.Lock()
		st := sh.stats
		st.Size = len(sh.items)
		sh.mu.Unlock()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.StoreLoads += st.StoreLoads
		total.StoreSaves += st.StoreSaves
		total.Evictions += st.Evictions
		total.DirtyLost += st.DirtyLost
		total.DecodeErrors += st.DecodeErrors
		total.EncodeErrors += st.EncodeErrors
		total.Size += st.Size
	}
	total.StoreSaves += s.flushSaves.Load()
	return total
}

// Keys implements SlateStore.
func (s *Sharded) Keys() []Key {
	var out []Key
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k := range sh.items {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	return out
}

// Shards reports the number of stripes (for distribution tests and
// status endpoints).
func (s *Sharded) Shards() int { return len(s.shards) }

// ShardSizes reports each shard's resident slate count, the
// distribution signal the shard-balance test asserts on.
func (s *Sharded) ShardSizes() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = len(sh.items)
		sh.mu.Unlock()
	}
	return out
}

// FlushStats snapshots the group-commit counters.
func (s *Sharded) FlushStats() FlushStats {
	return FlushStats{
		Flushes: s.flushes.Load(),
		Batches: s.batches.Load(),
		Records: s.records.Load(),
		Errors:  s.flushErrors.Load(),
	}
}

// WAL exposes the group-commit batch log (nil when not configured) so
// recovery tooling and status endpoints can reach the batches retained
// since the last checkpoint.
func (s *Sharded) WAL() *wal.SlateBatchLog { return s.cfg.WAL }

// FlushLatency is the histogram of FlushDirty wall-clock durations.
func (s *Sharded) FlushLatency() *metrics.Histogram { return s.flushLatency }

// BatchSizes is the histogram of group-commit batch sizes (records per
// multi-put).
func (s *Sharded) BatchSizes() *metrics.IntHistogram { return s.batchSizes }
