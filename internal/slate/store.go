package slate

import "time"

// SlateStore is the engine-facing slate cache: the surface both Muppet
// engines (and the HTTP slate-read path behind them) program against.
// Cache implements it with a single global mutex; Sharded stripes the
// key space and group-commits flushes. All methods are safe for
// concurrent use.
type SlateStore interface {
	// Get returns the slate for k, loading it from the durable store on
	// a miss. A nil slate with nil error means the slate does not exist
	// yet (or expired).
	Get(k Key) ([]byte, error)
	// Peek returns the cached slate without promoting it or falling
	// back to the store.
	Peek(k Key) ([]byte, bool)
	// Put replaces the slate for k. With WriteThrough the new value is
	// persisted before Put returns.
	Put(k Key, value []byte) error
	// GetDecoded returns the decoded slate object for k, decoding the
	// cached bytes through codec at most once per cache fill. The
	// object is pinned (mutable by the caller, skipped by flushes)
	// until the matching PutDecoded. A nil object with nil error means
	// no slate exists yet.
	GetDecoded(k Key, codec Codec) (any, error)
	// PutDecoded installs the decoded slate object for k, marks the
	// entry dirty, releases the GetDecoded pin, and defers re-encoding
	// to the next flush or external read (WriteThrough encodes and
	// persists immediately).
	PutDecoded(k Key, v any, codec Codec) error
	// Delete removes the slate from the cache without persisting it.
	Delete(k Key)
	// Keys returns the cached slate keys (unordered).
	Keys() []Key
	// Len reports the number of cached slates.
	Len() int
	// DirtyCount reports the number of dirty cached slates.
	DirtyCount() int
	// FlushDirty persists every dirty slate, returning how many were
	// written.
	FlushDirty() (int, error)
	// Crash drops the whole cache without flushing, returning how many
	// dirty slates were lost.
	Crash() (dirtyLost int)
	// Stats returns a snapshot of the cache counters.
	Stats() CacheStats
}

// BatchRecord is one slate inside a group-commit flush batch.
type BatchRecord struct {
	K     Key
	Value []byte
	TTL   time.Duration
}

// BatchStore is a Store that can persist a whole flush batch as one
// multi-put. The group-commit flusher uses SaveBatch when the backing
// store provides it, paying the store round-trip once per batch instead
// of once per slate.
type BatchStore interface {
	Store
	// SaveBatch persists every record; partial failure may leave some
	// records written (per-record Save semantics apply to each).
	SaveBatch(recs []BatchRecord) error
}

// Both cache implementations satisfy the engine-facing interface, and
// the kvstore adapter satisfies the batch flush path.
var (
	_ SlateStore = (*Cache)(nil)
	_ SlateStore = (*Sharded)(nil)
	_ BatchStore = (*KVStore)(nil)
)
