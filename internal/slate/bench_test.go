package slate

import (
	"bytes"
	"fmt"
	"testing"
)

func BenchmarkCacheGetHit(b *testing.B) {
	c := NewCache(CacheConfig{Capacity: 10000})
	for i := 0; i < 1000; i++ {
		c.Put(k("U", fmt.Sprintf("k%d", i)), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(k("U", fmt.Sprintf("k%d", i%1000)))
	}
}

func BenchmarkCachePutWriteThrough(b *testing.B) {
	c := NewCache(CacheConfig{Capacity: 10000, Policy: WriteThrough, Store: newFakeStore()})
	v := []byte(`{"count": 42}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(k("U", fmt.Sprintf("k%d", i%1000)), v)
	}
}

func BenchmarkCompressTypicalSlate(b *testing.B) {
	slate := bytes.Repeat([]byte(`{"user":"u123","count":42,"tags":["a","b"]},`), 20)
	b.SetBytes(int64(len(slate)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(slate)
	}
}

func BenchmarkDecompressTypicalSlate(b *testing.B) {
	slate := bytes.Repeat([]byte(`{"user":"u123","count":42,"tags":["a","b"]},`), 20)
	stored := Compress(slate)
	b.SetBytes(int64(len(slate)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompress(stored)
	}
}
