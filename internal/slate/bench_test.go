package slate

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"muppet/internal/kvstore"
	"muppet/internal/storage"
)

// storesUnderTest builds one instance of each SlateStore implementation
// for a comparison benchmark: the single-mutex baseline and the sharded
// store at two stripe counts.
func storesUnderTest(capacity int, policy FlushPolicy, store func() Store) []struct {
	name string
	s    SlateStore
} {
	mk := func() Store {
		if store == nil {
			return nil
		}
		return store()
	}
	return []struct {
		name string
		s    SlateStore
	}{
		{"single-lock", NewCache(CacheConfig{Capacity: capacity, Policy: policy, Store: mk()})},
		{"sharded-16", NewSharded(ShardedConfig{Shards: 16, Capacity: capacity, Policy: policy, Store: mk()})},
		{"sharded-64", NewSharded(ShardedConfig{Shards: 64, Capacity: capacity, Policy: policy, Store: mk()})},
	}
}

// parallelism ensures at least 8 concurrent goroutines regardless of
// GOMAXPROCS, the contention level the acceptance benchmarks target.
func parallelism() int {
	p := runtime.GOMAXPROCS(0)
	if p >= 8 {
		return 1
	}
	return (8 + p - 1) / p
}

func benchKeys(n int) []Key {
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key{Updater: "U1", Key: fmt.Sprintf("user-%d", i)}
	}
	return keys
}

// BenchmarkStoreUniform: concurrent 50/50 get/put over a uniform key
// space — the shard-friendly workload where striping should win on
// multicore hardware.
func BenchmarkStoreUniform(b *testing.B) {
	keys := benchKeys(10_000)
	for _, impl := range storesUnderTest(20_000, Interval, nil) {
		b.Run(impl.name, func(b *testing.B) {
			for _, key := range keys {
				impl.s.Put(key, []byte("seed"))
			}
			val := []byte(`{"count":42}`)
			b.SetParallelism(parallelism())
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(rand.Int63()))
				for pb.Next() {
					key := keys[rng.Intn(len(keys))]
					if rng.Intn(2) == 0 {
						impl.s.Put(key, val)
					} else {
						impl.s.Get(key)
					}
				}
			})
		})
	}
}

// BenchmarkStoreHotKeySkew: 90% of operations hammer 16 hot keys —
// the hotspot workload of Section 5. Hot keys collapse onto few shards,
// so this bounds the win striping can claim.
func BenchmarkStoreHotKeySkew(b *testing.B) {
	keys := benchKeys(10_000)
	hot := keys[:16]
	for _, impl := range storesUnderTest(20_000, Interval, nil) {
		b.Run(impl.name, func(b *testing.B) {
			for _, key := range keys {
				impl.s.Put(key, []byte("seed"))
			}
			val := []byte(`{"count":42}`)
			b.SetParallelism(parallelism())
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(rand.Int63()))
				for pb.Next() {
					var key Key
					if rng.Intn(10) < 9 {
						key = hot[rng.Intn(len(hot))]
					} else {
						key = keys[rng.Intn(len(keys))]
					}
					if rng.Intn(2) == 0 {
						impl.s.Put(key, val)
					} else {
						impl.s.Get(key)
					}
				}
			})
		})
	}
}

// BenchmarkStoreFlushHeavy: concurrent writers race a background
// flusher draining to a real (device-free) kvstore cluster. The
// sharded store group-commits each drain as multi-puts; the baseline
// writes slates one at a time.
func BenchmarkStoreFlushHeavy(b *testing.B) {
	keys := benchKeys(4_096)
	mkStore := func() Store {
		clu := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 2})
		return &KVStore{Cluster: clu, Level: kvstore.One, DisableCompression: true}
	}
	for _, impl := range storesUnderTest(8_192, Interval, mkStore) {
		b.Run(impl.name, func(b *testing.B) {
			val := []byte(`{"count":42}`)
			stop := make(chan struct{})
			flusherDone := make(chan struct{})
			go func() {
				defer close(flusherDone)
				for {
					select {
					case <-stop:
						return
					default:
						impl.s.FlushDirty()
					}
				}
			}()
			b.SetParallelism(parallelism())
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(rand.Int63()))
				for pb.Next() {
					impl.s.Put(keys[rng.Intn(len(keys))], val)
				}
			})
			b.StopTimer()
			close(stop)
			<-flusherDone
		})
	}
}

// BenchmarkFlushDirtyBatchVsSingle isolates the flush path itself:
// 4096 dirty slates drained to an SSD-profile cluster in one
// FlushDirty call. Beyond wall-clock time, it reports the simulated
// device busy time per flush (the repo's standard I/O metric): the
// baseline pays one commit-log seek per slate per replica, the
// group-commit path one per multi-put per node.
func BenchmarkFlushDirtyBatchVsSingle(b *testing.B) {
	keys := benchKeys(4_096)
	val := []byte(`{"count":42}`)
	ssd := storage.SSD()
	impls := []struct {
		name string
		mk   func(Store) SlateStore
	}{
		{"single-lock", func(st Store) SlateStore {
			return NewCache(CacheConfig{Capacity: 8_192, Policy: Interval, Store: st})
		}},
		{"sharded-16", func(st Store) SlateStore {
			return NewSharded(ShardedConfig{Shards: 16, Capacity: 8_192, Policy: Interval, Store: st})
		}},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			clu := kvstore.NewCluster(kvstore.ClusterConfig{
				Nodes: 3, ReplicationFactor: 2, DeviceProfile: &ssd,
			})
			s := impl.mk(&KVStore{Cluster: clu, Level: kvstore.One, DisableCompression: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for _, key := range keys {
					s.Put(key, val)
				}
				b.StartTimer()
				s.FlushDirty()
			}
			b.StopTimer()
			var busy time.Duration
			var writeOps uint64
			for _, name := range clu.Nodes() {
				st := clu.Node(name).Device().Stats()
				busy += st.BusyTime
				writeOps += st.WriteOps
			}
			b.ReportMetric(float64(busy.Microseconds())/float64(b.N), "device-µs/flush")
			b.ReportMetric(float64(writeOps)/float64(b.N), "device-writes/flush")
		})
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := NewCache(CacheConfig{Capacity: 10000})
	for i := 0; i < 1000; i++ {
		c.Put(k("U", fmt.Sprintf("k%d", i)), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(k("U", fmt.Sprintf("k%d", i%1000)))
	}
}

func BenchmarkCachePutWriteThrough(b *testing.B) {
	c := NewCache(CacheConfig{Capacity: 10000, Policy: WriteThrough, Store: newFakeStore()})
	v := []byte(`{"count": 42}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(k("U", fmt.Sprintf("k%d", i%1000)), v)
	}
}

func BenchmarkCompressTypicalSlate(b *testing.B) {
	slate := bytes.Repeat([]byte(`{"user":"u123","count":42,"tags":["a","b"]},`), 20)
	b.SetBytes(int64(len(slate)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(slate)
	}
}

func BenchmarkDecompressTypicalSlate(b *testing.B) {
	slate := bytes.Repeat([]byte(`{"user":"u123","count":42,"tags":["a","b"]},`), 20)
	stored := mustCompress(b, slate)
	b.SetBytes(int64(len(slate)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompress(stored)
	}
}

// benchCodec compares the save path of the framed pooled codec
// (AppendEncode into a reused buffer — the steady state of the
// group-commit flusher) against the legacy per-call encoder
// (flate.NewWriter per save, the pre-framing behavior), plus the
// decode side. allocs/op is the headline: the legacy writer
// constructs hundreds of KB of deflate state per save.
func benchCodec(b *testing.B, raw []byte) {
	b.Run("save-framed", func(b *testing.B) {
		var buf []byte
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = AppendEncode(buf[:0], raw)
		}
	})
	b.Run("save-legacy", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Compress(raw)
		}
	})
	b.Run("load-framed", func(b *testing.B) {
		stored := Encode(raw)
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Decode(stored); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load-legacy", func(b *testing.B) {
		stored := mustCompress(b, raw)
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Decode(stored); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCodecSmall: a typical counter slate below MinCompressSize —
// the framed codec stores it raw, skipping deflate entirely.
func BenchmarkCodecSmall(b *testing.B) {
	benchCodec(b, []byte(`{"user":"u123","count":42}`))
}

// BenchmarkCodecLarge: a redundant ~900-byte JSON slate — the framed
// codec deflates it through the pooled writer.
func BenchmarkCodecLarge(b *testing.B) {
	benchCodec(b, bytes.Repeat([]byte(`{"user":"u123","count":42,"tags":["a","b"]},`), 20))
}

// BenchmarkCodecIncompressible: high-entropy bytes — deflate cannot
// shrink them, so the framed codec falls back to raw storage.
func BenchmarkCodecIncompressible(b *testing.B) {
	benchCodec(b, incompressible(1024))
}
