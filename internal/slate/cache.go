package slate

import (
	"container/list"
	"sync"
	"time"
)

// FlushPolicy selects when dirty slates are written to the durable
// key-value store. Section 4.2: "The application can set the flushing
// interval, ranging from 'immediate write-through' to 'only when
// evicted from cache.'"
type FlushPolicy int

const (
	// WriteThrough saves every slate update to the store immediately.
	WriteThrough FlushPolicy = iota
	// Interval saves dirty slates periodically (the engine drives the
	// period) and on eviction.
	Interval
	// OnEvict saves dirty slates only when the cache evicts them.
	OnEvict
)

// String names the policy.
func (p FlushPolicy) String() string {
	switch p {
	case WriteThrough:
		return "write-through"
	case Interval:
		return "interval"
	case OnEvict:
		return "on-evict"
	default:
		return "unknown"
	}
}

// Store is the durable backing for slates. The production adapter
// wraps the kvstore cluster; tests use in-memory fakes.
type Store interface {
	// Load fetches the stored slate for k; found=false means the slate
	// has never been written or has expired.
	Load(k Key) (value []byte, found bool, err error)
	// Save persists the slate with the updater's TTL.
	Save(k Key, value []byte, ttl time.Duration) error
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	StoreLoads uint64 // misses that went to the durable store
	StoreSaves uint64
	Evictions  uint64
	DirtyLost  uint64 // dirty slates discarded by Crash
	// DecodeErrors counts typed reads (GetDecoded) whose codec failed
	// to decode the stored bytes — the engine falls back to a fresh
	// zero-value slate, so a non-zero count is the signal that stored
	// state was unreadable (and will be overwritten).
	DecodeErrors uint64
	// EncodeErrors counts failed attempts to materialize a decoded
	// slate's at-rest encoding (flush, eviction, reads). The entry
	// stays dirty and resident — never silently dropped — but it also
	// cannot reach the store until the encode succeeds, so a growing
	// count means slates are wedged in memory.
	EncodeErrors uint64
	Size         int
}

// CacheConfig tunes a slate cache.
type CacheConfig struct {
	// Capacity is the maximum number of cached slates. Muppet 1.0 gave
	// each worker its own small cache; Muppet 2.0 keeps one central
	// cache per machine (Section 4.5) — experiment E5 measures the
	// difference.
	Capacity int
	// Policy selects the flush behavior.
	Policy FlushPolicy
	// Store is the durable backing; nil disables persistence (slates
	// live only in memory, and evictions discard).
	Store Store
	// TTLFor returns the slate TTL for an updater; nil means forever.
	// The paper makes TTL configurable per update function because
	// "different update functions often track different kinds of data,
	// thus requiring different shelf lives" (Section 4.2).
	TTLFor func(updater string) time.Duration
}

type entry struct {
	key   Key
	value []byte
	dirty bool
	elem  *list.Element

	// Typed-slate state. decoded is the live object of a typed update
	// function's slate (nil for classic byte slates); codec encodes it
	// back to bytes. stale marks value as older than decoded (the next
	// flush or external read re-encodes). pins counts updaters holding
	// the decoded object outside the cache lock: while pinned the
	// object may be mutated in place, so flush, eviction, and reads
	// must not encode it — they skip the entry (it stays dirty) or
	// serve the last materialized encoding instead.
	decoded any
	codec   Codec
	stale   bool
	pins    int
}

// Cache is an LRU slate cache with dirty tracking. It is safe for
// concurrent use.
type Cache struct {
	mu    sync.Mutex
	cfg   CacheConfig
	items map[Key]*entry
	lru   *list.List // front = most recently used
	stats CacheStats
}

// NewCache returns a cache with the given configuration. Capacity
// defaults to 10000 slates.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 10_000
	}
	return &Cache{
		cfg:   cfg,
		items: make(map[Key]*entry),
		lru:   list.New(),
	}
}

func (c *Cache) ttl(k Key) time.Duration {
	if c.cfg.TTLFor == nil {
		return 0
	}
	return c.cfg.TTLFor(k.Updater)
}

// Get returns the slate for k, loading it from the durable store on a
// miss. A nil slate with nil error means the slate does not exist yet
// (or expired): per Section 4.2 the updater then initializes a fresh
// one.
func (c *Cache) Get(k Key) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[k]; ok {
		c.stats.Hits++
		c.lru.MoveToFront(e.elem)
		return e.snapshotLocked(&c.stats), nil
	}
	c.stats.Misses++
	if c.cfg.Store == nil {
		return nil, nil
	}
	c.stats.StoreLoads++
	v, found, err := c.cfg.Store.Load(k)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	c.insertLocked(k, v, false)
	return v, nil
}

// GetDecoded returns the decoded slate object for k, decoding the
// cached (or store-loaded) bytes through codec at most once per cache
// fill. The returned object is pinned until the matching PutDecoded:
// the caller may mutate it in place, and flushes skip the entry in the
// meantime. A nil object with nil error means the slate does not exist
// yet; the caller initializes a fresh one (Codec.New) and hands it
// back through PutDecoded, which inserts it.
func (c *Cache) GetDecoded(k Key, codec Codec) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[k]; ok {
		c.stats.Hits++
		c.lru.MoveToFront(e.elem)
		if e.decoded == nil {
			v, err := codec.Decode(e.value)
			if err != nil {
				c.stats.DecodeErrors++
				return nil, err
			}
			e.decoded = v
			e.codec = codec
		}
		e.pins++
		return e.decoded, nil
	}
	c.stats.Misses++
	if c.cfg.Store == nil {
		return nil, nil
	}
	c.stats.StoreLoads++
	raw, found, err := c.cfg.Store.Load(k)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	v, err := codec.Decode(raw)
	if err != nil {
		c.stats.DecodeErrors++
		return nil, err
	}
	e := c.insertLocked(k, raw, false)
	e.decoded = v
	e.codec = codec
	e.pins++
	return v, nil
}

// PutDecoded installs the decoded slate object for k — the typed
// equivalent of Put: the object becomes the slate's source of truth,
// the entry is marked dirty, and the encode is deferred to the next
// flush or external read. It releases the pin taken by GetDecoded.
// Under WriteThrough the object is encoded and persisted before
// PutDecoded returns, exactly like Put.
func (c *Cache) PutDecoded(k Key, v any, codec Codec) error {
	c.mu.Lock()
	e, ok := c.items[k]
	if ok {
		e.setDecodedLocked(v, codec)
		e.dirty = true
		c.lru.MoveToFront(e.elem)
	} else {
		e = c.insertLocked(k, nil, true)
		e.setDecodedLocked(v, codec)
	}
	if c.cfg.Policy == WriteThrough && c.cfg.Store != nil {
		if err := e.encodeLocked(); err != nil {
			c.stats.EncodeErrors++
			c.mu.Unlock()
			return err
		}
		e.dirty = false
		c.stats.StoreSaves++
		store, value, ttl := c.cfg.Store, e.value, c.ttl(k)
		c.mu.Unlock()
		return store.Save(k, value, ttl)
	}
	c.mu.Unlock()
	return nil
}

// Peek returns the cached slate without promoting it or falling back
// to the store; the HTTP slate-read path uses the cache "rather than
// the durable key-value store to ensure an up-to-date reply"
// (Section 4.4) but must not disturb LRU order for read-only probes.
func (c *Cache) Peek(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[k]; ok {
		return e.snapshotLocked(&c.stats), true
	}
	return nil, false
}

// Put replaces the slate for k (the updater's replaceSlate call). With
// WriteThrough the new value is persisted before Put returns.
func (c *Cache) Put(k Key, value []byte) error {
	c.mu.Lock()
	if e, ok := c.items[k]; ok {
		e.setBytesLocked(value)
		e.dirty = true
		c.lru.MoveToFront(e.elem)
	} else {
		c.insertLocked(k, value, true)
	}
	var saveErr error
	if c.cfg.Policy == WriteThrough && c.cfg.Store != nil {
		c.items[k].dirty = false
		c.stats.StoreSaves++
		store := c.cfg.Store
		ttl := c.ttl(k)
		c.mu.Unlock()
		saveErr = store.Save(k, value, ttl)
		return saveErr
	}
	c.mu.Unlock()
	return nil
}

// Delete removes the slate from the cache without persisting it.
func (c *Cache) Delete(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[k]; ok {
		c.lru.Remove(e.elem)
		delete(c.items, k)
	}
}

// insertLocked adds a new entry, evicting as needed.
func (c *Cache) insertLocked(k Key, value []byte, dirty bool) *entry {
	e := &entry{key: k, value: value, dirty: dirty}
	e.elem = c.lru.PushFront(e)
	c.items[k] = e
	for len(c.items) > c.cfg.Capacity {
		if !c.evictLocked() {
			break
		}
	}
	return e
}

// evictLocked evicts the least recently used unpinned entry; a pinned
// entry's decoded object is in an updater's hands and cannot be
// encoded for persistence, so the walk skips it (capacity may be
// exceeded for the pin's microseconds-long lifetime). It reports
// whether a victim was found.
func (c *Cache) evictLocked() bool {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e.pins > 0 {
			continue
		}
		if e.dirty && c.cfg.Store != nil {
			// Interval and OnEvict persist on eviction; WriteThrough
			// entries are already clean. A typed entry encodes here;
			// if the encode fails the slate cannot be persisted, so
			// keep it resident rather than drop dirty data.
			if err := e.encodeLocked(); err != nil {
				c.stats.EncodeErrors++
				continue
			}
			c.stats.StoreSaves++
			c.cfg.Store.Save(e.key, e.value, c.ttl(e.key))
		}
		c.lru.Remove(el)
		delete(c.items, e.key)
		c.stats.Evictions++
		return true
	}
	return false
}

// FlushDirty persists every dirty slate (the periodic flush of the
// Interval policy, driven by the engine's background I/O thread).
// It returns the number of slates written.
func (c *Cache) FlushDirty() (int, error) {
	c.mu.Lock()
	type pending struct {
		k   Key
		v   []byte
		ttl time.Duration
	}
	var batch []pending
	for _, e := range c.items {
		if !e.dirty {
			continue
		}
		// A pinned entry's decoded object is being mutated by an
		// updater right now; leave it dirty for the next flush. A
		// stale entry encodes here — once per flush, not per event.
		if e.pins > 0 {
			continue
		}
		if e.encodeLocked() != nil {
			c.stats.EncodeErrors++
			continue
		}
		e.dirty = false
		batch = append(batch, pending{e.key, e.value, c.ttl(e.key)})
	}
	store := c.cfg.Store
	c.stats.StoreSaves += uint64(len(batch))
	c.mu.Unlock()
	if store == nil {
		return 0, nil
	}
	var firstErr error
	for _, p := range batch {
		if err := store.Save(p.k, p.v, p.ttl); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return len(batch), firstErr
}

// Crash drops the entire cache without flushing, counting the dirty
// slates whose updates are lost — the failure mode Section 4.3
// accepts: "whatever changes that it has made to the slates and that
// have not yet been flushed to the key-value store are lost."
func (c *Cache) Crash() (dirtyLost int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.items {
		if e.dirty {
			dirtyLost++
		}
	}
	c.stats.DirtyLost += uint64(dirtyLost)
	c.items = make(map[Key]*entry)
	c.lru = list.New()
	return dirtyLost
}

// Len reports the number of cached slates.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// DirtyCount reports the number of dirty cached slates.
func (c *Cache) DirtyCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.items {
		if e.dirty {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = len(c.items)
	return s
}

// Keys returns the cached slate keys (unordered); the HTTP status
// endpoint and tests use it.
func (c *Cache) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, len(c.items))
	for k := range c.items {
		out = append(out, k)
	}
	return out
}
