package slate

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"muppet/internal/kvstore"
	"muppet/internal/wal"
)

// fakeBatchStore is a fakeStore that also counts multi-put batches.
type fakeBatchStore struct {
	fakeStore
	batches    int
	batchSizes []int
	failNext   int // fail this many SaveBatch calls
}

func newFakeBatchStore() *fakeBatchStore {
	return &fakeBatchStore{fakeStore: fakeStore{data: map[Key][]byte{}, ttls: map[Key]time.Duration{}}}
}

func (f *fakeBatchStore) SaveBatch(recs []BatchRecord) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNext > 0 {
		f.failNext--
		return errors.New("fakeBatchStore: injected failure")
	}
	f.batches++
	f.batchSizes = append(f.batchSizes, len(recs))
	for _, r := range recs {
		f.saves++
		f.data[r.K] = append([]byte(nil), r.Value...)
		f.ttls[r.K] = r.TTL
	}
	return nil
}

func TestShardedBasicGetPutPeek(t *testing.T) {
	s := NewSharded(ShardedConfig{Shards: 8, Capacity: 100})
	if v, err := s.Get(k("U", "a")); err != nil || v != nil {
		t.Fatalf("empty get = %v, %v", v, err)
	}
	s.Put(k("U", "a"), []byte("1"))
	if v, _ := s.Get(k("U", "a")); string(v) != "1" {
		t.Fatalf("get = %q, want 1", v)
	}
	if v, ok := s.Peek(k("U", "a")); !ok || string(v) != "1" {
		t.Fatalf("peek = %q, %v", v, ok)
	}
	if _, ok := s.Peek(k("U", "b")); ok {
		t.Fatal("peek of absent key reported present")
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("len = %d, want 1", got)
	}
	if got := s.DirtyCount(); got != 1 {
		t.Fatalf("dirty = %d, want 1", got)
	}
	s.Delete(k("U", "a"))
	if got, dirty := s.Len(), s.DirtyCount(); got != 0 || dirty != 0 {
		t.Fatalf("after delete len=%d dirty=%d", got, dirty)
	}
}

func TestShardedLoadsThroughStore(t *testing.T) {
	fs := newFakeStore()
	fs.data[k("U", "cold")] = []byte("42")
	s := NewSharded(ShardedConfig{Shards: 4, Capacity: 10, Store: fs})
	if v, err := s.Get(k("U", "cold")); err != nil || string(v) != "42" {
		t.Fatalf("load-through = %q, %v", v, err)
	}
	// Now cached: a second get must not hit the store again.
	s.Get(k("U", "cold"))
	if fs.loads != 1 {
		t.Fatalf("store loads = %d, want 1", fs.loads)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.StoreLoads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShardedWriteThrough(t *testing.T) {
	fs := newFakeStore()
	s := NewSharded(ShardedConfig{Shards: 4, Capacity: 10, Policy: WriteThrough, Store: fs})
	s.Put(k("U", "a"), []byte("1"))
	if fs.saves != 1 {
		t.Fatalf("saves = %d, want immediate write-through", fs.saves)
	}
	if got := s.DirtyCount(); got != 0 {
		t.Fatalf("dirty = %d after write-through", got)
	}
}

func TestShardedEvictionPersistsDirty(t *testing.T) {
	fs := newFakeStore()
	s := NewSharded(ShardedConfig{Shards: 2, Capacity: 2, Policy: OnEvict, Store: fs})
	for i := 0; i < 10; i++ {
		s.Put(k("U", fmt.Sprintf("key%d", i)), []byte("v"))
	}
	if s.Len() > 2 {
		t.Fatalf("len = %d, want <= capacity 2", s.Len())
	}
	st := s.Stats()
	if st.Evictions == 0 || fs.saves == 0 {
		t.Fatalf("evictions=%d saves=%d, want both > 0", st.Evictions, fs.saves)
	}
}

func TestShardedDistribution(t *testing.T) {
	// 10k distinct keys over 16 shards: FNV striping should land
	// every shard within a loose factor of the 625 mean.
	s := NewSharded(ShardedConfig{Shards: 16, Capacity: 100_000})
	const n = 10_000
	for i := 0; i < n; i++ {
		s.Put(k("U", fmt.Sprintf("user-%d", i)), []byte("v"))
	}
	sizes := s.ShardSizes()
	if len(sizes) != 16 {
		t.Fatalf("shards = %d, want 16", len(sizes))
	}
	mean := n / 16
	for i, sz := range sizes {
		if sz < mean/2 || sz > mean*2 {
			t.Fatalf("shard %d holds %d slates, want within [%d, %d]; distribution %v",
				i, sz, mean/2, mean*2, sizes)
		}
	}
}

func TestShardedGroupCommitBatches(t *testing.T) {
	fs := newFakeBatchStore()
	log := wal.NewSlateBatchLog()
	s := NewSharded(ShardedConfig{
		Shards: 8, Capacity: 10_000, Policy: Interval,
		Store: fs, WAL: log, MaxFlushBatch: 100,
	})
	for i := 0; i < 250; i++ {
		s.Put(k("U", fmt.Sprintf("key%d", i)), []byte("v"))
	}
	n, err := s.FlushDirty()
	if err != nil || n != 250 {
		t.Fatalf("flush = %d, %v; want 250, nil", n, err)
	}
	// 250 records at <=100 per batch: 3 multi-puts, not 250 saves.
	if fs.batches != 3 {
		t.Fatalf("multi-put batches = %d (%v), want 3", fs.batches, fs.batchSizes)
	}
	batches, records, _ := log.Stats()
	if batches != 3 || records != 250 {
		t.Fatalf("wal batches=%d records=%d, want 3/250", batches, records)
	}
	fstats := s.FlushStats()
	if fstats.Flushes != 1 || fstats.Batches != 3 || fstats.Records != 250 || fstats.Errors != 0 {
		t.Fatalf("flush stats = %+v", fstats)
	}
	if got := s.BatchSizes().Count(); got != 3 {
		t.Fatalf("batch size samples = %d, want 3", got)
	}
	if got := s.FlushLatency().Count(); got != 1 {
		t.Fatalf("flush latency samples = %d, want 1", got)
	}
	if s.DirtyCount() != 0 {
		t.Fatalf("dirty = %d after flush", s.DirtyCount())
	}
	// A second flush with nothing dirty is a no-op.
	if n, _ := s.FlushDirty(); n != 0 {
		t.Fatalf("idle flush wrote %d", n)
	}
}

func TestShardedFlushFailureRetries(t *testing.T) {
	fs := newFakeBatchStore()
	fs.failNext = 1
	log := wal.NewSlateBatchLog()
	s := NewSharded(ShardedConfig{Shards: 4, Capacity: 100, Policy: Interval, Store: fs, WAL: log, MaxFlushBatch: 100})
	for i := 0; i < 5; i++ {
		s.Put(k("U", fmt.Sprintf("key%d", i)), []byte("v"))
	}
	if _, err := s.FlushDirty(); err == nil {
		t.Fatal("want error from failed batch")
	}
	// The failed batch was re-marked dirty; the next flush lands it.
	if got := s.DirtyCount(); got != 5 {
		t.Fatalf("dirty after failed flush = %d, want 5", got)
	}
	n, err := s.FlushDirty()
	if err != nil || n != 5 {
		t.Fatalf("retry flush = %d, %v", n, err)
	}
	if len(fs.data) != 5 {
		t.Fatalf("store rows = %d, want 5", len(fs.data))
	}
	if fstats := s.FlushStats(); fstats.Errors != 1 {
		t.Fatalf("flush errors = %d, want 1", fstats.Errors)
	}
	// The failed attempt was aborted from the WAL: only the successful
	// retry's batch is retained, so a long store outage cannot grow the
	// log without bound.
	if _, records, retained := log.Stats(); retained != 1 || records != 5 {
		t.Fatalf("wal retained=%d records=%d, want 1/5", retained, records)
	}
	// And the failed attempt was backed out of the saves count: 5
	// actual store writes, not 10.
	if saves := s.Stats().StoreSaves; saves != 5 {
		t.Fatalf("store saves = %d, want 5 (retry must not double-count)", saves)
	}
}

func TestShardedCapacityExact(t *testing.T) {
	// Capacity that does not divide the shard count must still bound
	// the total exactly (remainder spread over the first shards).
	s := NewSharded(ShardedConfig{Shards: 16, Capacity: 20})
	for i := 0; i < 500; i++ {
		s.Put(k("U", fmt.Sprintf("key%d", i)), []byte("v"))
	}
	total := 0
	for _, sz := range s.ShardSizes() {
		total += sz
	}
	if total > 20 {
		t.Fatalf("resident slates = %d, want <= configured capacity 20", total)
	}
}

// TestShardedConcurrentRace drives readers, writers, and the flusher
// concurrently; run under -race it proves the striped locking and the
// group-commit drain do not race.
func TestShardedConcurrentRace(t *testing.T) {
	fs := newFakeBatchStore()
	s := NewSharded(ShardedConfig{
		Shards: 8, Capacity: 512, Policy: Interval,
		Store: fs, WAL: wal.NewSlateBatchLog(), WALCheckpoint: true, MaxFlushBatch: 64,
	})
	const workers = 8
	const opsPerWorker = 2_000
	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func(w int) {
			defer workerWG.Done()
			for i := 0; i < opsPerWorker; i++ {
				key := k("U", fmt.Sprintf("key%d", (w*opsPerWorker+i)%300))
				switch i % 4 {
				case 0, 1:
					s.Put(key, []byte(fmt.Sprintf("%d", i)))
				case 2:
					s.Get(key)
				case 3:
					s.Peek(key)
				}
			}
		}(w)
	}
	// Background flusher, as the engines run it, racing the workers.
	stop := make(chan struct{})
	var flusherWG sync.WaitGroup
	flusherWG.Add(1)
	go func() {
		defer flusherWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.FlushDirty()
			}
		}
	}()
	workerWG.Wait()
	close(stop)
	flusherWG.Wait()
	// Final flush drains everything that is still dirty.
	if _, err := s.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	if got := s.DirtyCount(); got != 0 {
		t.Fatalf("dirty = %d after final flush", got)
	}
	// Every cached slate must match what a reader would see.
	for _, key := range s.Keys() {
		if _, ok := s.Peek(key); !ok {
			t.Fatalf("key %v vanished", key)
		}
	}
}

// TestCrashReplayRestoresFlushedSlates proves the WAL batch records
// are a faithful copy of everything the group-commit pipeline wrote:
// replaying the log into an empty store reproduces the flushed state
// even after the original store is wiped.
func TestCrashReplayRestoresFlushedSlates(t *testing.T) {
	fs := newFakeBatchStore()
	log := wal.NewSlateBatchLog()
	s := NewSharded(ShardedConfig{
		Shards: 8, Capacity: 10_000, Policy: Interval,
		Store: fs, WAL: log, MaxFlushBatch: 32,
	})
	// Two flush rounds, with overwrites across rounds.
	for i := 0; i < 100; i++ {
		s.Put(k("U", fmt.Sprintf("key%d", i)), []byte(fmt.Sprintf("v1-%d", i)))
	}
	if _, err := s.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Put(k("U", fmt.Sprintf("key%d", i)), []byte(fmt.Sprintf("v2-%d", i)))
	}
	if _, err := s.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	// Disaster: the durable store loses everything, and the cache
	// crashes too.
	recovered := newFakeStore()
	s.Crash()
	// Replay the WAL batches, oldest first, into the fresh store.
	applied, err := log.Replay(func(r wal.SlateRecord) error {
		return recovered.Save(Key{Updater: r.Updater, Key: r.Key}, r.Value, r.TTL)
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 150 {
		t.Fatalf("replayed %d records, want 150", applied)
	}
	// The recovered store holds the newest flushed value of every key.
	for i := 0; i < 100; i++ {
		want := fmt.Sprintf("v1-%d", i)
		if i < 50 {
			want = fmt.Sprintf("v2-%d", i)
		}
		v, ok, _ := recovered.Load(k("U", fmt.Sprintf("key%d", i)))
		if !ok || string(v) != want {
			t.Fatalf("key%d = %q, %v; want %q", i, v, ok, want)
		}
	}
}

// TestShardedAgainstKVCluster runs the group-commit path against the
// real kvstore cluster end to end: flush via multi-put, then read every
// slate back through the adapter.
func TestShardedAgainstKVCluster(t *testing.T) {
	clu := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 2})
	adapter := &KVStore{Cluster: clu, Level: kvstore.Quorum}
	s := NewSharded(ShardedConfig{Shards: 8, Capacity: 1_000, Policy: Interval, Store: adapter, MaxFlushBatch: 16})
	for i := 0; i < 64; i++ {
		s.Put(k("U1", fmt.Sprintf("row%d", i)), []byte(fmt.Sprintf(`{"n":%d}`, i)))
	}
	n, err := s.FlushDirty()
	if err != nil || n != 64 {
		t.Fatalf("flush = %d, %v", n, err)
	}
	// Wipe the cache; every read must come back from the cluster.
	s.Crash()
	for i := 0; i < 64; i++ {
		v, err := s.Get(k("U1", fmt.Sprintf("row%d", i)))
		if err != nil || string(v) != fmt.Sprintf(`{"n":%d}`, i) {
			t.Fatalf("row%d = %q, %v", i, v, err)
		}
	}
}

func TestShardedCapacityClamp(t *testing.T) {
	// More shards than capacity must not inflate the cache.
	s := NewSharded(ShardedConfig{Shards: 16, Capacity: 2})
	for i := 0; i < 10; i++ {
		s.Put(k("U", fmt.Sprintf("key%d", i)), []byte("v"))
	}
	if got := s.Len(); got > 2 {
		t.Fatalf("len = %d, want <= 2", got)
	}
}
