package slate

import (
	"io"

	"muppet/internal/frame"
)

// Key identifies a slate: the pair <update function U, event key k>
// uniquely determines a slate (Section 3) — the same event key yields
// different slates for different updaters.
type Key struct {
	Updater string
	Key     string
}

// String renders the slate key as updater/key, matching the HTTP fetch
// URI layout of Section 4.4.
func (k Key) String() string { return k.Updater + "/" + k.Key }

// Storage framing
//
// The codec itself lives in internal/frame so the LSM storage engine
// (which sits below this package in the import graph) can share it;
// this file keeps the slate-facing API byte-for-byte identical. See
// the frame package doc for the header layout and the
// legacy-compatibility rules.
const (
	frameVersion = frame.Version

	frameRawBits     = frame.RawBits
	frameDeflateBits = frame.DeflateBits
	frameKindMask    = frame.KindMask

	headerRaw     = frame.HeaderRaw
	headerDeflate = frame.HeaderDeflate
)

// MinCompressSize is the threshold below which Encode stores slates
// raw: deflate overhead (block headers, the end-of-stream marker)
// exceeds any saving on tiny payloads, and skipping the writer
// entirely keeps small-slate saves allocation- and CPU-free.
const MinCompressSize = frame.MinCompressSize

// Encode frames a slate for storage: a 1-byte header, then either the
// raw payload (below MinCompressSize, or when deflate fails to shrink)
// or the deflate-compressed payload. It allocates only the returned
// buffer; the deflate writer is pooled. Use AppendEncode to reuse a
// caller-owned buffer and allocate nothing at all.
func Encode(raw []byte) []byte { return frame.Encode(raw) }

// AppendEncode appends the framed encoding of raw to dst and returns
// the extended buffer. With a dst of sufficient capacity the encode
// performs no allocation: small slates skip deflate entirely, and
// larger ones run through a pooled flate.Writer. When deflate does not
// shrink the payload (incompressible slates) the raw framing is stored
// instead, so the stored form is never more than one byte larger than
// the slate.
func AppendEncode(dst, raw []byte) []byte { return frame.AppendEncode(dst, raw) }

// Decode reverses Encode. It also accepts legacy headerless deflate
// blobs written before framing existed (WAL batches and kvstore rows
// from earlier versions): a stored value whose first byte is not a
// frame header is inflated as a bare deflate stream.
func Decode(stored []byte) ([]byte, error) { return frame.Decode(stored) }

// Compress deflate-compresses a slate with the legacy headerless
// encoding, reproducing "Muppet compresses each slate before storing
// it in the key-value store" (Section 4.2). New code should use Encode
// (the framed codec); Compress remains as the writer of the legacy
// format the compatibility tests pin, and its output stays decodable
// by Decode forever.
func Compress(raw []byte) ([]byte, error) { return frame.Compress(raw) }

// CompressTo deflate-compresses raw into w, returning any writer
// error. Compress once swallowed these; against an in-memory buffer
// they are impossible (bytes.Buffer writes cannot fail), but arbitrary
// writers do fail, and the error path is covered by tests.
func CompressTo(w io.Writer, raw []byte) error { return frame.CompressTo(w, raw) }

// Decompress reverses Compress. It is an alias of Decode and accepts
// both the framed and the legacy encodings.
func Decompress(stored []byte) ([]byte, error) {
	return Decode(stored)
}
