package slate

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Key identifies a slate: the pair <update function U, event key k>
// uniquely determines a slate (Section 3) — the same event key yields
// different slates for different updaters.
type Key struct {
	Updater string
	Key     string
}

// String renders the slate key as updater/key, matching the HTTP fetch
// URI layout of Section 4.4.
func (k Key) String() string { return k.Updater + "/" + k.Key }

// Compress deflate-compresses a slate for storage, reproducing
// "Muppet compresses each slate before storing it in the key-value
// store" (Section 4.2).
func Compress(raw []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		// flate.NewWriter only fails on an invalid level constant.
		panic(fmt.Sprintf("slate: flate writer: %v", err))
	}
	w.Write(raw)
	w.Close()
	return buf.Bytes()
}

// Decompress reverses Compress.
func Decompress(stored []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(stored))
	defer r.Close()
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("slate: decompress: %w", err)
	}
	return raw, nil
}
