package slate

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"muppet/internal/kvstore"
)

// fakeStore is an in-memory Store that records operations.
type fakeStore struct {
	mu    sync.Mutex
	data  map[Key][]byte
	ttls  map[Key]time.Duration
	loads int
	saves int
}

func newFakeStore() *fakeStore {
	return &fakeStore{data: map[Key][]byte{}, ttls: map[Key]time.Duration{}}
}

func (f *fakeStore) Load(k Key) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loads++
	v, ok := f.data[k]
	return v, ok, nil
}

func (f *fakeStore) Save(k Key, v []byte, ttl time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.saves++
	f.data[k] = append([]byte(nil), v...)
	f.ttls[k] = ttl
	return nil
}

func k(u, key string) Key { return Key{Updater: u, Key: key} }

func TestCompressRoundTrip(t *testing.T) {
	raw := []byte(`{"count": 42, "user": "alice", "interests": ["go", "streams"]}`)
	got, err := Decompress(mustCompress(t, raw))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatalf("round trip = %q", got)
	}
}

func TestCompressShrinksRedundantData(t *testing.T) {
	raw := bytes.Repeat([]byte("retailer:walmart;"), 100)
	if c := mustCompress(t, raw); len(c) >= len(raw)/2 {
		t.Fatalf("compressed %d -> %d, expected much smaller", len(raw), len(c))
	}
}

func TestCompressEmpty(t *testing.T) {
	got, err := Decompress(mustCompress(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("round trip of empty = %q", got)
	}
}

func TestDecompressGarbageFails(t *testing.T) {
	if _, err := Decompress([]byte("definitely not deflate")); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func TestPropertyCompressRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		legacy, err := Compress(raw)
		if err != nil {
			return false
		}
		got, err := Decompress(legacy)
		return err == nil && bytes.Equal(got, raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEncodeRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		got, err := Decode(Encode(raw))
		return err == nil && bytes.Equal(got, raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyString(t *testing.T) {
	if got := k("U1", "walmart").String(); got != "U1/walmart" {
		t.Fatalf("String = %q", got)
	}
}

func TestGetMissReturnsNilForNewSlate(t *testing.T) {
	c := NewCache(CacheConfig{Capacity: 10, Store: newFakeStore()})
	v, err := c.Get(k("U", "fresh"))
	if err != nil || v != nil {
		t.Fatalf("v=%v err=%v, want nil,nil", v, err)
	}
}

func TestGetLoadsFromStoreOnMiss(t *testing.T) {
	st := newFakeStore()
	st.data[k("U", "k1")] = []byte("persisted")
	c := NewCache(CacheConfig{Capacity: 10, Store: st})
	v, err := c.Get(k("U", "k1"))
	if err != nil || string(v) != "persisted" {
		t.Fatalf("v=%q err=%v", v, err)
	}
	// Second get hits the cache.
	c.Get(k("U", "k1"))
	if st.loads != 1 {
		t.Fatalf("store loads = %d, want 1", st.loads)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWriteThroughSavesImmediately(t *testing.T) {
	st := newFakeStore()
	c := NewCache(CacheConfig{Capacity: 10, Policy: WriteThrough, Store: st})
	c.Put(k("U", "k1"), []byte("v1"))
	if st.saves != 1 {
		t.Fatalf("saves = %d, want 1", st.saves)
	}
	if c.DirtyCount() != 0 {
		t.Fatal("write-through left a dirty entry")
	}
}

func TestOnEvictSavesOnlyAtEviction(t *testing.T) {
	st := newFakeStore()
	c := NewCache(CacheConfig{Capacity: 2, Policy: OnEvict, Store: st})
	c.Put(k("U", "a"), []byte("1"))
	c.Put(k("U", "b"), []byte("2"))
	if st.saves != 0 {
		t.Fatalf("saves before eviction = %d, want 0", st.saves)
	}
	c.Put(k("U", "c"), []byte("3")) // evicts "a"
	if st.saves != 1 {
		t.Fatalf("saves after eviction = %d, want 1", st.saves)
	}
	if _, ok := st.data[k("U", "a")]; !ok {
		t.Fatal("evicted dirty slate not persisted")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d", s.Evictions)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewCache(CacheConfig{Capacity: 2, Policy: OnEvict, Store: newFakeStore()})
	c.Put(k("U", "a"), []byte("1"))
	c.Put(k("U", "b"), []byte("2"))
	c.Get(k("U", "a")) // promote a
	c.Put(k("U", "c"), []byte("3"))
	if _, ok := c.Peek(k("U", "a")); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Peek(k("U", "b")); ok {
		t.Fatal("least recently used entry survived")
	}
}

func TestFlushDirtyPersistsAndCleans(t *testing.T) {
	st := newFakeStore()
	c := NewCache(CacheConfig{Capacity: 10, Policy: Interval, Store: st})
	c.Put(k("U", "a"), []byte("1"))
	c.Put(k("U", "b"), []byte("2"))
	n, err := c.FlushDirty()
	if err != nil || n != 2 {
		t.Fatalf("FlushDirty = %d, %v", n, err)
	}
	if c.DirtyCount() != 0 {
		t.Fatal("entries still dirty after flush")
	}
	n, _ = c.FlushDirty()
	if n != 0 {
		t.Fatalf("second flush wrote %d, want 0", n)
	}
}

func TestCrashLosesDirtySlates(t *testing.T) {
	st := newFakeStore()
	c := NewCache(CacheConfig{Capacity: 10, Policy: Interval, Store: st})
	c.Put(k("U", "a"), []byte("1"))
	c.Put(k("U", "b"), []byte("2"))
	c.FlushDirty()
	c.Put(k("U", "c"), []byte("3"))
	lost := c.Crash()
	if lost != 1 {
		t.Fatalf("dirty lost = %d, want 1", lost)
	}
	if c.Len() != 0 {
		t.Fatal("cache not empty after crash")
	}
	// Flushed slates survive in the store.
	if _, ok := st.data[k("U", "a")]; !ok {
		t.Fatal("flushed slate lost")
	}
	if _, ok := st.data[k("U", "c")]; ok {
		t.Fatal("unflushed slate magically survived")
	}
}

func TestTTLPassedPerUpdater(t *testing.T) {
	st := newFakeStore()
	c := NewCache(CacheConfig{
		Capacity: 10,
		Policy:   WriteThrough,
		Store:    st,
		TTLFor: func(u string) time.Duration {
			if u == "shortlived" {
				return time.Minute
			}
			return 0
		},
	})
	c.Put(k("shortlived", "a"), []byte("1"))
	c.Put(k("eternal", "b"), []byte("2"))
	if st.ttls[k("shortlived", "a")] != time.Minute {
		t.Fatalf("ttl = %v, want 1m", st.ttls[k("shortlived", "a")])
	}
	if st.ttls[k("eternal", "b")] != 0 {
		t.Fatalf("ttl = %v, want 0", st.ttls[k("eternal", "b")])
	}
}

func TestDeleteRemovesWithoutSave(t *testing.T) {
	st := newFakeStore()
	c := NewCache(CacheConfig{Capacity: 10, Policy: OnEvict, Store: st})
	c.Put(k("U", "a"), []byte("1"))
	c.Delete(k("U", "a"))
	if st.saves != 0 {
		t.Fatal("Delete persisted the slate")
	}
	if c.Len() != 0 {
		t.Fatal("entry survived Delete")
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	c := NewCache(CacheConfig{Capacity: 2, Policy: OnEvict, Store: newFakeStore()})
	c.Put(k("U", "a"), []byte("1"))
	c.Put(k("U", "b"), []byte("2"))
	c.Peek(k("U", "a")) // must NOT promote
	c.Put(k("U", "c"), []byte("3"))
	if _, ok := c.Peek(k("U", "a")); ok {
		t.Fatal("Peek promoted the entry")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(CacheConfig{Capacity: 100, Policy: Interval, Store: newFakeStore()})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := k("U", fmt.Sprintf("k%d", i%50))
				if i%3 == 0 {
					c.Put(key, []byte{byte(g)})
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 100 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := NewCache(CacheConfig{Capacity: 5, Policy: OnEvict, Store: newFakeStore()})
	for i := 0; i < 100; i++ {
		c.Put(k("U", fmt.Sprintf("k%d", i)), []byte("v"))
		if c.Len() > 5 {
			t.Fatalf("capacity exceeded at insert %d: %d", i, c.Len())
		}
	}
}

func TestKVAdapterRoundTripCompressed(t *testing.T) {
	cl := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 3})
	st := &KVStore{Cluster: cl, Level: kvstore.Quorum}
	key := k("U1", "user42")
	want := []byte(`{"count": 7}`)
	if err := st.Save(key, want, 0); err != nil {
		t.Fatal(err)
	}
	got, found, err := st.Load(key)
	if err != nil || !found || !bytes.Equal(got, want) {
		t.Fatalf("got=%q found=%v err=%v", got, found, err)
	}
	// Verify the stored representation really is compressed (differs
	// from raw).
	rawStored, foundRaw, _, _ := cl.Get("user42", "U1", kvstore.Quorum)
	if !foundRaw || bytes.Equal(rawStored, want) {
		t.Fatal("slate stored uncompressed")
	}
}

func TestKVAdapterMissingSlate(t *testing.T) {
	cl := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 3})
	st := &KVStore{Cluster: cl, Level: kvstore.One}
	_, found, err := st.Load(k("U", "nope"))
	if err != nil || found {
		t.Fatalf("found=%v err=%v", found, err)
	}
}

func TestKVAdapterUncompressedMode(t *testing.T) {
	cl := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 3})
	st := &KVStore{Cluster: cl, Level: kvstore.One, DisableCompression: true}
	key := k("U", "k")
	st.Save(key, []byte("raw"), 0)
	rawStored, _, _, _ := cl.Get("k", "U", kvstore.One)
	if string(rawStored) != "raw" {
		t.Fatalf("stored = %q, want raw bytes", rawStored)
	}
	got, found, err := st.Load(key)
	if err != nil || !found || string(got) != "raw" {
		t.Fatalf("got=%q found=%v err=%v", got, found, err)
	}
}

func TestFlushPolicyString(t *testing.T) {
	names := map[FlushPolicy]string{WriteThrough: "write-through", Interval: "interval", OnEvict: "on-evict", FlushPolicy(9): "unknown"}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("String(%d) = %q", p, p.String())
		}
	}
}
