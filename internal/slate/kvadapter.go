package slate

import (
	"time"

	"muppet/internal/kvstore"
)

// KVStore adapts the replicated key-value cluster to the Store
// interface, reproducing Muppet's layout: slate S(U,k) is stored at
// row k, column U, compressed (Section 4.2).
type KVStore struct {
	Cluster *kvstore.Cluster
	// Level is the consistency level for slate reads and writes, a
	// per-application knob in Muppet.
	Level kvstore.Consistency
	// DisableCompression stores slates raw; experiment harnesses use it
	// to isolate compression cost.
	DisableCompression bool
}

// Load implements Store.
func (s *KVStore) Load(k Key) ([]byte, bool, error) {
	v, found, _, err := s.Cluster.Get(k.Key, k.Updater, s.Level)
	if err != nil || !found {
		return nil, false, err
	}
	if s.DisableCompression {
		return v, true, nil
	}
	raw, err := Decompress(v)
	if err != nil {
		return nil, false, err
	}
	return raw, true, nil
}

// Save implements Store.
func (s *KVStore) Save(k Key, value []byte, ttl time.Duration) error {
	stored := value
	if !s.DisableCompression {
		stored = Compress(value)
	}
	_, err := s.Cluster.Put(k.Key, k.Updater, stored, ttl, s.Level)
	return err
}

// SaveBatch implements BatchStore: the whole flush batch goes to the
// cluster as one multi-put, so replica round-trips and commit-log
// appends are paid per batch, not per slate.
func (s *KVStore) SaveBatch(recs []BatchRecord) error {
	entries := make([]kvstore.BatchEntry, len(recs))
	for i, r := range recs {
		stored := r.Value
		if !s.DisableCompression {
			stored = Compress(r.Value)
		}
		entries[i] = kvstore.BatchEntry{Key: r.K.Key, Column: r.K.Updater, Value: stored, TTL: r.TTL}
	}
	_, err := s.Cluster.PutBatch(entries, s.Level)
	return err
}
