package slate

import (
	"sync"
	"time"

	"muppet/internal/kvstore"
)

// KVStore adapts the replicated key-value cluster to the Store
// interface, reproducing Muppet's layout: slate S(U,k) is stored at
// row k, column U, framed and compressed (Section 4.2; see the
// storage-framing notes in codec.go and the package doc).
type KVStore struct {
	Cluster *kvstore.Cluster
	// Level is the consistency level for slate reads and writes, a
	// per-application knob in Muppet.
	Level kvstore.Consistency
	// DisableCompression stores slates raw without framing; experiment
	// harnesses use it to isolate compression cost.
	DisableCompression bool
}

// saveScratch is the reusable working memory of one Save or SaveBatch
// call: the encode buffer all framed values are appended to, the batch
// entry slice, and the per-record offsets into the buffer. The cluster
// copies values synchronously at each replica node, so the buffers can
// be pooled and reused as soon as the call returns.
type saveScratch struct {
	buf     []byte
	entries []kvstore.BatchEntry
	offs    []int
}

var saveScratchPool = sync.Pool{New: func() any { return new(saveScratch) }}

// Load implements Store.
func (s *KVStore) Load(k Key) ([]byte, bool, error) {
	v, found, _, err := s.Cluster.Get(k.Key, k.Updater, s.Level)
	if err != nil || !found {
		return nil, false, err
	}
	if s.DisableCompression {
		return v, true, nil
	}
	raw, err := Decode(v)
	if err != nil {
		return nil, false, err
	}
	return raw, true, nil
}

// Save implements Store. The framed encoding goes through a pooled
// scratch buffer, so a steady flush stream allocates nothing per save.
func (s *KVStore) Save(k Key, value []byte, ttl time.Duration) error {
	if s.DisableCompression {
		_, err := s.Cluster.Put(k.Key, k.Updater, value, ttl, s.Level)
		return err
	}
	sc := saveScratchPool.Get().(*saveScratch)
	sc.buf = AppendEncode(sc.buf[:0], value)
	_, err := s.Cluster.Put(k.Key, k.Updater, sc.buf, ttl, s.Level)
	saveScratchPool.Put(sc)
	return err
}

// SaveBatch implements BatchStore: the whole flush batch goes to the
// cluster as one multi-put, so replica round-trips and commit-log
// appends are paid per batch, not per slate. All records are framed
// into one pooled buffer (offsets recorded first, values sliced after
// the final append, since buffer growth would invalidate earlier
// subslices).
func (s *KVStore) SaveBatch(recs []BatchRecord) error {
	sc := saveScratchPool.Get().(*saveScratch)
	defer saveScratchPool.Put(sc)
	entries := sc.entries[:0]
	if cap(entries) < len(recs) {
		entries = make([]kvstore.BatchEntry, 0, len(recs))
	}
	if s.DisableCompression {
		for _, r := range recs {
			entries = append(entries, kvstore.BatchEntry{Key: r.K.Key, Column: r.K.Updater, Value: r.Value, TTL: r.TTL})
		}
	} else {
		buf, offs := sc.buf[:0], sc.offs[:0]
		for _, r := range recs {
			offs = append(offs, len(buf))
			buf = AppendEncode(buf, r.Value)
		}
		offs = append(offs, len(buf))
		for i, r := range recs {
			v := buf[offs[i]:offs[i+1]:offs[i+1]]
			entries = append(entries, kvstore.BatchEntry{Key: r.K.Key, Column: r.K.Updater, Value: v, TTL: r.TTL})
		}
		sc.buf, sc.offs = buf, offs
	}
	sc.entries = entries
	_, err := s.Cluster.PutBatch(entries, s.Level)
	return err
}
