// Error-path tests for the kvstore adapter: corrupt stored values,
// unavailable clusters, batch failures, and TTL expiry — the corners
// the happy-path round-trip tests in cache_test.go do not reach.
package slate

import (
	"bytes"
	"testing"
	"time"

	"muppet/internal/kvstore"
)

func kvHarness(t *testing.T) (*KVStore, *kvstore.Cluster) {
	t.Helper()
	clu := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 3})
	return &KVStore{Cluster: clu, Level: kvstore.Quorum}, clu
}

func TestKVStoreLoadCorruptValue(t *testing.T) {
	s, clu := kvHarness(t)
	// A value written outside the adapter (not deflate) must surface a
	// decompression error, not silent data.
	if _, err := clu.Put("Walmart", "U1", []byte("not-deflate"), 0, kvstore.Quorum); err != nil {
		t.Fatal(err)
	}
	_, found, err := s.Load(Key{Updater: "U1", Key: "Walmart"})
	if err == nil {
		t.Fatalf("corrupt load reported no error (found=%v)", found)
	}
}

func TestKVStoreUnavailableCluster(t *testing.T) {
	s, clu := kvHarness(t)
	for _, n := range clu.Nodes() {
		clu.KillNode(n)
	}
	if err := s.Save(Key{Updater: "U", Key: "k"}, []byte("v"), 0); err == nil {
		t.Fatal("save against a dead cluster succeeded")
	}
	if _, _, err := s.Load(Key{Updater: "U", Key: "k"}); err == nil {
		t.Fatal("load against a dead cluster succeeded")
	}
	err := s.SaveBatch([]BatchRecord{{K: Key{Updater: "U", Key: "k"}, Value: []byte("v")}})
	if err == nil {
		t.Fatal("batch save against a dead cluster succeeded")
	}
}

func TestKVStoreSaveBatchRoundTrip(t *testing.T) {
	s, _ := kvHarness(t)
	recs := []BatchRecord{
		{K: Key{Updater: "U1", Key: "a"}, Value: []byte("1")},
		{K: Key{Updater: "U1", Key: "b"}, Value: []byte("2"), TTL: time.Hour},
		{K: Key{Updater: "U2", Key: "a"}, Value: []byte("3")},
	}
	if err := s.SaveBatch(recs); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		got, found, err := s.Load(r.K)
		if err != nil || !found || !bytes.Equal(got, r.Value) {
			t.Fatalf("load %v = (%q, %v, %v), want %q", r.K, got, found, err, r.Value)
		}
	}
}

func TestKVStoreTTLExpiry(t *testing.T) {
	s, _ := kvHarness(t)
	k := Key{Updater: "U", Key: "ephemeral"}
	if err := s.Save(k, []byte("v"), time.Nanosecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	_, found, err := s.Load(k)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("expired slate still readable")
	}
}
