// Package slate implements Muppet's slate management (Sections 3 and
// 4.2 of the paper): the per-<updater, key> memory of update functions,
// the in-memory slate cache on each machine, the flush policies that
// persist dirty slates to the durable key-value store, and the
// compressed encoding used when storing them.
//
// A slate is an opaque byte blob to the framework; applications often
// encode JSON for language independence, and Muppet compresses each
// slate before storing it in the key-value store, both of which this
// package reproduces.
//
// # Decoded slates (the typed API's cache slot)
//
// Typed update functions (core.Update) do not want bytes at all: their
// slate is a live Go object. Both store implementations therefore give
// each entry a decoded-value slot next to the encoded bytes, driven by
// an erased Codec:
//
//   - GetDecoded(k, codec) decodes the cached (or store-loaded) bytes
//     at most once per cache fill and returns the object *pinned*: the
//     caller may mutate it in place, and until the matching PutDecoded
//     the flusher, evictor, and byte readers leave the object alone
//     (reads serve the last materialized encoding; flushes keep the
//     entry dirty for the next round).
//   - PutDecoded(k, obj, codec) marks the entry dirty and defers the
//     re-encode: FlushDirty, eviction, and byte reads (Get/Peek)
//     materialize the encoding lazily — once per flush batch or read,
//     not once per event. WriteThrough encodes immediately, preserving
//     its per-update persistence semantics.
//
// A byte-level Put on the same key drops the decoded object and makes
// the bytes the source of truth again, so classic and typed updaters
// compose against one cache. Slates at rest are unaffected: what
// reaches the Store (and the group-commit WAL) is always the codec's
// plain output.
//
// # Store implementations
//
// Engines program against the SlateStore interface. Two implementations
// are provided:
//
//   - Cache is the original single-mutex LRU cache — one lock guards
//     the whole table, and FlushDirty writes dirty slates to the store
//     one at a time. It is kept as the baseline the benchmarks compare
//     against (and remains adequate for single-goroutine owners).
//
//   - Sharded is the scalable store: the key space is striped over N
//     independent shards by an FNV-1a hash of <updater, key>. Each
//     shard has its own mutex, LRU list, and dirty list, so worker
//     threads touching different slates proceed without contending on
//     a global lock. This is what the Muppet 2.0 central cache
//     (Section 4.5) needs to scale past a handful of threads.
//
// # Group-commit flushing
//
// Sharded replaces the per-slate flusher with a group-commit pipeline.
// One FlushDirty call:
//
//  1. drains each shard's dirty list under that shard's lock (marking
//     the entries clean),
//  2. chunks the drained records into bounded batches via
//     internal/microbatch (MaxFlushBatch records / MaxFlushBytes bytes),
//  3. appends each batch to an optional internal/wal.SlateBatchLog as
//     one record batch (WAL first, store second — replaying the log
//     restores every flushed slate),
//  4. writes each batch to the store with a single multi-put when the
//     backing Store implements BatchStore (the kvstore adapter does,
//     via Cluster.PutBatch), falling back to per-record Save otherwise.
//
// A batch that fails to persist is re-marked dirty so a later flush
// retries it. Flush latency and batch sizes are recorded with
// internal/metrics histograms (FlushLatency, BatchSizes) and counters
// (FlushStats).
//
// # Storage framing
//
// The stored form of a slate (Encode/Decode) is one header byte
// followed by the payload:
//
//	header 0x06 (raw)     — payload stored verbatim
//	header 0x07 (deflate) — payload deflate-compressed
//
// The header's low three bits sit where a deflate stream carries its
// first block header and deliberately encode BTYPE=3, the reserved
// block type compress/flate never emits; the high five bits carry the
// format version (currently 0). Consequences:
//
//   - Raw-vs-deflate decision: slates below MinCompressSize are stored
//     raw (deflate overhead exceeds any saving), and larger slates
//     whose deflate output is not smaller than the input fall back to
//     raw — the stored form is never more than one byte larger than
//     the slate.
//   - Legacy compatibility: values written before framing existed are
//     bare deflate streams, and no such stream can begin with a frame
//     header, so Decode routes headerless values through the legacy
//     inflate path. Old WAL batches and kvstore rows stay readable;
//     Compress still writes (and FuzzCodecRoundTrip pins) the legacy
//     encoding.
//   - Zero-allocation saves: Encode runs through pooled flate writers
//     (a BestSpeed writer carries hundreds of KB of internal state —
//     constructing one per save used to dominate the flush path), and
//     AppendEncode reuses a caller-owned buffer so the kvstore
//     adapter's Save/SaveBatch allocate nothing per record in steady
//     state. Decode pools its flate reader and inflate scratch.
package slate
