// Package slate implements Muppet's slate management (Sections 3 and
// 4.2 of the paper): the per-<updater, key> memory of update functions,
// the in-memory slate cache on each machine, the flush policies that
// persist dirty slates to the durable key-value store, and the
// compressed encoding used when storing them.
//
// A slate is an opaque byte blob to the framework; applications often
// encode JSON for language independence, and Muppet compresses each
// slate before storing it in the key-value store, both of which this
// package reproduces.
//
// # Store implementations
//
// Engines program against the SlateStore interface. Two implementations
// are provided:
//
//   - Cache is the original single-mutex LRU cache — one lock guards
//     the whole table, and FlushDirty writes dirty slates to the store
//     one at a time. It is kept as the baseline the benchmarks compare
//     against (and remains adequate for single-goroutine owners).
//
//   - Sharded is the scalable store: the key space is striped over N
//     independent shards by an FNV-1a hash of <updater, key>. Each
//     shard has its own mutex, LRU list, and dirty list, so worker
//     threads touching different slates proceed without contending on
//     a global lock. This is what the Muppet 2.0 central cache
//     (Section 4.5) needs to scale past a handful of threads.
//
// # Group-commit flushing
//
// Sharded replaces the per-slate flusher with a group-commit pipeline.
// One FlushDirty call:
//
//  1. drains each shard's dirty list under that shard's lock (marking
//     the entries clean),
//  2. chunks the drained records into bounded batches via
//     internal/microbatch (MaxFlushBatch records / MaxFlushBytes bytes),
//  3. appends each batch to an optional internal/wal.SlateBatchLog as
//     one record batch (WAL first, store second — replaying the log
//     restores every flushed slate),
//  4. writes each batch to the store with a single multi-put when the
//     backing Store implements BatchStore (the kvstore adapter does,
//     via Cluster.PutBatch), falling back to per-record Save otherwise.
//
// A batch that fails to persist is re-marked dirty so a later flush
// retries it. Flush latency and batch sizes are recorded with
// internal/metrics histograms (FlushLatency, BatchSizes) and counters
// (FlushStats).
package slate
