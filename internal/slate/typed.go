package slate

// Codec is the erased slate codec the typed application API threads
// through the stack: it turns a slate's at-rest byte encoding into a
// live decoded object and back. The cache stores the decoded object
// alongside (or instead of) the encoded bytes, so a typed update
// function pays the decode once per cache fill and the encode once per
// flush or external read — not once per event.
//
// The concrete values behind the `any` are pointers to the
// application's slate type; a codec only ever sees values it produced
// itself (New or Decode), so the type assertion inside AppendEncode is
// safe by construction.
type Codec interface {
	// New returns a freshly allocated zero-value slate object, the
	// state an updater starts from when no slate exists for the key.
	New() any
	// Decode parses the at-rest encoding into a live object.
	Decode(data []byte) (any, error)
	// AppendEncode appends the at-rest encoding of v to dst and
	// returns the extended slice.
	AppendEncode(dst []byte, v any) ([]byte, error)
}

// encodeLocked materializes e.value from e.decoded when the decoded
// object is newer than the last encoding. Caller holds the cache/shard
// lock and has checked e.pins == 0 (an updater may be mutating a
// pinned object concurrently). On encode failure the entry keeps its
// previous encoding and stays stale.
func (e *entry) encodeLocked() error {
	if !e.stale {
		return nil
	}
	v, err := e.codec.AppendEncode(nil, e.decoded)
	if err != nil {
		return err
	}
	e.value = v
	e.stale = false
	return nil
}

// snapshotLocked returns the entry's encoded bytes for read paths
// (Get, Peek, eviction is separate): the current encoding when the
// entry is quiescent, the last materialized encoding while an updater
// holds the decoded object pinned. A pinned entry that has never been
// encoded reads as nil — the first update for the key has not
// completed yet, so "no slate" is a linearizable answer. An encode
// failure also serves the last materialized encoding, counted in
// stats.EncodeErrors.
func (e *entry) snapshotLocked(stats *CacheStats) []byte {
	if e.stale && e.pins == 0 {
		if e.encodeLocked() != nil {
			stats.EncodeErrors++
		}
	}
	return e.value
}

// setBytesLocked replaces the entry's contents with an encoded value
// (the classic byte-slate Put), discarding any decoded object: the
// bytes are now the source of truth.
func (e *entry) setBytesLocked(value []byte) {
	e.value = value
	e.decoded = nil
	e.codec = nil
	e.stale = false
}

// setDecodedLocked replaces the entry's contents with a decoded object
// (the typed PutDecoded), releasing the caller's pin if one is held.
// The previous encoding is kept as the pinned-read snapshot until the
// next encode refreshes it.
func (e *entry) setDecodedLocked(v any, c Codec) {
	if e.pins > 0 {
		e.pins--
	}
	e.decoded = v
	e.codec = c
	e.stale = true
}
