package slate

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// mustCompress wraps the legacy encoder for tests; against an
// in-memory buffer its error is impossible.
func mustCompress(t testing.TB, raw []byte) []byte {
	t.Helper()
	stored, err := Compress(raw)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	return stored
}

// TestDecompressTruncated covers the half-written-value corner: a
// deflate stream cut off mid-way must error, not return partial slate
// bytes as if they were the whole value.
func TestDecompressTruncated(t *testing.T) {
	stored := mustCompress(t, bytes.Repeat([]byte("abcdefgh"), 1000))
	if _, err := Decompress(stored[:len(stored)/2]); err == nil {
		t.Fatal("decompress of truncated stream succeeded")
	}
}

// TestCompressBinaryRoundTrip pins the codec on non-text slates
// (arbitrary byte values, including 0x00 and 0xff).
func TestCompressBinaryRoundTrip(t *testing.T) {
	raw := make([]byte, 256)
	for i := range raw {
		raw[i] = byte(i)
	}
	got, err := Decompress(mustCompress(t, raw))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("binary round trip mismatch")
	}
}

// TestEncodeSmallSkipsDeflate pins the raw-framing decision: a slate
// below MinCompressSize is stored as header byte + verbatim payload,
// no deflate stream at all.
func TestEncodeSmallSkipsDeflate(t *testing.T) {
	raw := []byte(`{"count":42}`)
	stored := Encode(raw)
	if len(stored) != len(raw)+1 {
		t.Fatalf("stored %d bytes, want %d (header + raw)", len(stored), len(raw)+1)
	}
	if stored[0] != headerRaw {
		t.Fatalf("header = %#x, want %#x", stored[0], headerRaw)
	}
	if !bytes.Equal(stored[1:], raw) {
		t.Fatal("payload not verbatim")
	}
	got, err := Decode(stored)
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("decode = %q, %v", got, err)
	}
}

// TestEncodeLargeCompresses pins the deflate framing: a redundant
// slate above the threshold is stored deflated and much smaller.
func TestEncodeLargeCompresses(t *testing.T) {
	raw := bytes.Repeat([]byte("retailer:walmart;"), 100)
	stored := Encode(raw)
	if stored[0] != headerDeflate {
		t.Fatalf("header = %#x, want %#x", stored[0], headerDeflate)
	}
	if len(stored) >= len(raw)/2 {
		t.Fatalf("stored %d -> %d, expected much smaller", len(raw), len(stored))
	}
	got, err := Decode(stored)
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("decode mismatch: %v", err)
	}
}

// TestEncodeIncompressibleFallsBackToRaw pins the no-shrink fallback:
// when deflate cannot beat the raw payload, the raw framing is stored,
// so the on-store size is never more than payload + 1 header byte.
func TestEncodeIncompressibleFallsBackToRaw(t *testing.T) {
	raw := incompressible(4096)
	stored := Encode(raw)
	if stored[0] != headerRaw {
		t.Fatalf("header = %#x, want raw %#x", stored[0], headerRaw)
	}
	if len(stored) != len(raw)+1 {
		t.Fatalf("stored %d bytes, want %d", len(stored), len(raw)+1)
	}
	got, err := Decode(stored)
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("decode mismatch: %v", err)
	}
}

// TestDecodeLegacyHeaderlessDeflate is the format-compat regression
// guard: blobs written by the pre-framing encoder (bare deflate, no
// header byte) must keep decoding via Decode/Decompress — earlier PRs'
// WAL batches and kvstore rows are in that format.
func TestDecodeLegacyHeaderlessDeflate(t *testing.T) {
	for _, raw := range [][]byte{
		nil,
		[]byte("x"),
		[]byte(`{"count": 42, "user": "alice"}`),
		bytes.Repeat([]byte("retailer:walmart;"), 200),
		incompressible(512),
	} {
		legacy := mustCompress(t, raw)
		got, err := Decode(legacy)
		if err != nil {
			t.Fatalf("legacy decode of %d-byte slate: %v", len(raw), err)
		}
		if !bytes.Equal(got, raw) {
			t.Fatalf("legacy round trip mismatch for %d-byte slate", len(raw))
		}
	}
}

// TestLegacyBlobNeverLooksFramed proves the discrimination rule the
// framing relies on: a deflate stream's first byte carries its first
// block header, and the frame headers deliberately use the reserved
// block type (BTYPE=3) that compress/flate never emits.
func TestLegacyBlobNeverLooksFramed(t *testing.T) {
	for i := 0; i < 64; i++ {
		legacy := mustCompress(t, bytes.Repeat([]byte{byte(i)}, i*37))
		if legacy[0]&frameKindMask == frameKindMask {
			t.Fatalf("legacy blob %d starts with %#x — indistinguishable from a frame header", i, legacy[0])
		}
	}
}

// TestDecodeRejectsUnknownVersion: a frame header with a future
// version must error rather than misparse the payload.
func TestDecodeRejectsUnknownVersion(t *testing.T) {
	stored := []byte{frameRawBits | 1<<3, 'h', 'i'}
	if _, err := Decode(stored); err == nil {
		t.Fatal("decode of unknown frame version succeeded")
	}
}

// TestDecodeEmptyValueErrors: zero stored bytes is corruption (even an
// empty slate encodes to at least the header byte).
func TestDecodeEmptyValueErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("decode of empty value succeeded")
	}
}

// TestEncodeEmptyAndTinyRoundTrip covers the degenerate sizes.
func TestEncodeEmptyAndTinyRoundTrip(t *testing.T) {
	for _, raw := range [][]byte{nil, {}, {0}, []byte("a")} {
		got, err := Decode(Encode(raw))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, raw) {
			t.Fatalf("round trip of %q = %q", raw, got)
		}
	}
}

// TestAppendEncodePreservesPrefix: AppendEncode must append after
// existing dst content (the batch encoder packs many slates into one
// buffer), and the encodings must decode independently.
func TestAppendEncodePreservesPrefix(t *testing.T) {
	small := []byte("tiny")
	large := bytes.Repeat([]byte("muppet;"), 64)
	buf := AppendEncode(nil, small)
	cut := len(buf)
	buf = AppendEncode(buf, large)
	got1, err := Decode(buf[:cut])
	if err != nil || !bytes.Equal(got1, small) {
		t.Fatalf("first encoding: %q, %v", got1, err)
	}
	got2, err := Decode(buf[cut:])
	if err != nil || !bytes.Equal(got2, large) {
		t.Fatalf("second encoding: %v", err)
	}
}

// failWriter fails after n bytes, exercising deflate's writer error
// path.
type failWriter struct{ n int }

var errSink = errors.New("sink failed")

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errSink
	}
	w.n -= len(p)
	return len(p), nil
}

// TestCompressToSurfacesWriterErrors covers the error path Compress
// historically swallowed: a failing destination writer must surface
// from CompressTo, not vanish.
func TestCompressToSurfacesWriterErrors(t *testing.T) {
	raw := bytes.Repeat([]byte("abcdefgh"), 4096)
	if err := CompressTo(&failWriter{n: 0}, raw); !errors.Is(err, errSink) {
		t.Fatalf("CompressTo(failing writer) = %v, want %v", err, errSink)
	}
	// Failing mid-stream (after some bytes land) must also surface.
	if err := CompressTo(&failWriter{n: 64}, raw); !errors.Is(err, errSink) {
		t.Fatalf("CompressTo(mid-stream failure) = %v, want %v", err, errSink)
	}
}

// incompressible returns n pseudorandom bytes (deterministic, no seed
// dependency) that deflate cannot shrink.
func incompressible(n int) []byte {
	out := make([]byte, n)
	var x uint64 = 0x9e3779b97f4a7c15
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}

// TestKVStoreFramedRowsReadable pins the adapter end of the framing:
// rows written through KVStore.Save/SaveBatch decode through both
// Load and a bare Decode of the stored row (what StoredSlates does).
func TestKVStoreFramedRowsReadable(t *testing.T) {
	s, clu := kvHarness(t)
	small := []byte(`{"n":1}`)
	large := bytes.Repeat([]byte("hot-topic;"), 100)
	if err := s.Save(Key{Updater: "U1", Key: "small"}, small, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveBatch([]BatchRecord{
		{K: Key{Updater: "U1", Key: "large"}, Value: large},
		{K: Key{Updater: "U1", Key: "small2"}, Value: small},
	}); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string][]byte{"small": small, "large": large, "small2": small} {
		got, found, err := s.Load(Key{Updater: "U1", Key: name})
		if err != nil || !found || !bytes.Equal(got, want) {
			t.Fatalf("load %s = (%v, %v, %v)", name, got, found, err)
		}
		stored, found, _, err := clu.Get(name, "U1", s.Level)
		if err != nil || !found {
			t.Fatalf("raw row %s: %v", name, err)
		}
		raw, err := Decode(stored)
		if err != nil || !bytes.Equal(raw, want) {
			t.Fatalf("raw row %s decode: %v", name, err)
		}
	}
}

// TestKVStoreLoadsLegacyRows: rows written by the pre-framing adapter
// (bare deflate) must keep loading through the new adapter.
func TestKVStoreLoadsLegacyRows(t *testing.T) {
	s, clu := kvHarness(t)
	raw := bytes.Repeat([]byte(`{"user":"u1","count":7};`), 40)
	legacy := mustCompress(t, raw)
	if _, err := clu.Put("k1", "U1", legacy, 0, s.Level); err != nil {
		t.Fatal(err)
	}
	got, found, err := s.Load(Key{Updater: "U1", Key: "k1"})
	if err != nil || !found || !bytes.Equal(got, raw) {
		t.Fatalf("legacy row load = (%v, %v, %v)", got, found, err)
	}
}

// TestSaveBatchManySizes stresses the shared-buffer batch encoder with
// a mix of raw-framed and deflate-framed records, asserting no record
// bleeds into a neighbor's bytes.
func TestSaveBatchManySizes(t *testing.T) {
	s, _ := kvHarness(t)
	var recs []BatchRecord
	want := map[string][]byte{}
	for i := 0; i < 64; i++ {
		var v []byte
		switch i % 3 {
		case 0:
			v = []byte(fmt.Sprintf(`{"i":%d}`, i))
		case 1:
			v = bytes.Repeat([]byte{'a' + byte(i%26)}, 200+i)
		default:
			v = incompressible(100 + i)
		}
		key := fmt.Sprintf("k%02d", i)
		recs = append(recs, BatchRecord{K: Key{Updater: "U", Key: key}, Value: v})
		want[key] = v
	}
	if err := s.SaveBatch(recs); err != nil {
		t.Fatal(err)
	}
	for key, v := range want {
		got, found, err := s.Load(Key{Updater: "U", Key: key})
		if err != nil || !found || !bytes.Equal(got, v) {
			t.Fatalf("batch record %s corrupted (found=%v err=%v)", key, found, err)
		}
	}
}
