package slate

import (
	"bytes"
	"testing"
)

// TestDecompressTruncated covers the half-written-value corner: a
// deflate stream cut off mid-way must error, not return partial slate
// bytes as if they were the whole value.
func TestDecompressTruncated(t *testing.T) {
	stored := Compress(bytes.Repeat([]byte("abcdefgh"), 1000))
	if _, err := Decompress(stored[:len(stored)/2]); err == nil {
		t.Fatal("decompress of truncated stream succeeded")
	}
}

// TestCompressBinaryRoundTrip pins the codec on non-text slates
// (arbitrary byte values, including 0x00 and 0xff).
func TestCompressBinaryRoundTrip(t *testing.T) {
	raw := make([]byte, 256)
	for i := range raw {
		raw[i] = byte(i)
	}
	got, err := Decompress(Compress(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("binary round trip mismatch")
	}
}
