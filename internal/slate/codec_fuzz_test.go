package slate

import (
	"bytes"
	"testing"
)

// FuzzCodecRoundTrip is the framed codec's format guard: arbitrary
// bytes must round-trip through Encode/Decode (with and without a
// dirty prefix in the destination buffer), and — the compatibility
// half — a legacy headerless deflate blob of the same bytes, as the
// pre-framing Compress wrote them, must still decode. `go test` runs
// the seed corpus; `go test -fuzz FuzzCodecRoundTrip ./internal/slate`
// explores further.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("x"))
	f.Add([]byte(`{"count":42,"user":"alice"}`))
	f.Add(bytes.Repeat([]byte("retailer:walmart;"), 50))
	f.Add(incompressible(MinCompressSize))
	f.Add(incompressible(MinCompressSize - 1))
	f.Add([]byte{headerRaw, headerDeflate, 0x00, 0xff})
	f.Fuzz(func(t *testing.T, raw []byte) {
		stored := Encode(raw)
		if len(stored) > len(raw)+1 {
			t.Fatalf("encode grew %d bytes to %d (> payload+header)", len(raw), len(stored))
		}
		got, err := Decode(stored)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(got, raw) {
			t.Fatalf("framed round trip mismatch: %d bytes in, %d out", len(raw), len(got))
		}

		// AppendEncode after a dirty prefix must not disturb either.
		prefix := []byte("prefix")
		buf := AppendEncode(append([]byte(nil), prefix...), raw)
		if !bytes.Equal(buf[:len(prefix)], prefix) {
			t.Fatal("AppendEncode clobbered dst prefix")
		}
		got, err = Decode(buf[len(prefix):])
		if err != nil || !bytes.Equal(got, raw) {
			t.Fatalf("append-encode round trip mismatch: %v", err)
		}

		// Legacy compat: headerless deflate blobs (the old Compress
		// output) must keep decoding forever.
		legacy, err := Compress(raw)
		if err != nil {
			t.Fatalf("legacy compress: %v", err)
		}
		got, err = Decode(legacy)
		if err != nil {
			t.Fatalf("legacy decode: %v", err)
		}
		if !bytes.Equal(got, raw) {
			t.Fatal("legacy round trip mismatch")
		}
	})
}
