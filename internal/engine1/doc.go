// Package engine1 implements Muppet 1.0 (Sections 4.1–4.4 of the
// paper): the process-per-worker execution engine developed at Kosmix.
//
// Each worker is a pair of coupled processes — a "conductor" in charge
// of Muppet logistics (queueing, slate fetch, hashing output events to
// destinations) and a "task processor" that only runs the map or
// update code. Here the pair is a pair of goroutines exchanging
// messages over channels, which reproduces the 1.0 design's extra
// intra-worker hop and its per-worker (disparate) slate caches — the
// limitations that motivated Muppet 2.0 and that experiments E4 and E5
// measure.
//
// Event routing follows Section 4.1: every worker holds the same hash
// ring mapping <event key, destination function> to a worker, so
// events pass directly from worker to worker without a master on the
// data path.
//
// # Contract
//
// An Engine is built with New, fed through Ingest/IngestBatch (and the
// shared ingress.Driver), drained with Drain, and torn down exactly
// once with Stop. Slate reads (Slate, Slates) observe the per-worker
// caches merged with the durable store. Subscribe is only valid on
// streams the application declared as outputs and panics otherwise.
//
// # Concurrency
//
// Each worker owns one bounded queue consumed by its conductor
// goroutine; the conductor is the only goroutine that touches that
// worker's slate cache, so per-worker slates need no locks. The
// conductor/task-processor channel pair has a single sender which is
// also the closer. Stop and the rejoin path's worker restarts are
// serialized by a dedicated mutex so a restart cannot Add to a
// WaitGroup that Stop is Waiting on; output subscriptions are closed
// exactly once behind the engine sink's lock.
//
// # Failure invariants
//
// Failure handling follows Section 4.3: a failed send marks the
// machine dead at the master, which broadcasts it to every worker;
// each removes the machine from its rings. The event that failed to
// reach the dead worker is lost and logged, not resent — unless the
// replay log is enabled, in which case recovery redelivers the
// unacknowledged suffix to the keys' new owners (at-least-once).
package engine1
