package engine1

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"muppet/internal/core"
	"muppet/internal/event"
	"muppet/internal/kvstore"
	"muppet/internal/slate"
	"muppet/internal/wal"
)

func recoveryApp() *core.App {
	u := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	return core.NewApp("recovery1").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
}

// TestCrashReplaysWALThroughRecoverySubsystem proves Muppet 1.0 rides
// the same recovery code path as 2.0: a flush batch sitting in a
// worker's group-commit WAL at crash time (appended, store write never
// landed) is replayed into the key-value store by CrashMachine, so the
// key's new owner reads it after the ring reroutes.
func TestCrashReplaysWALThroughRecoverySubsystem(t *testing.T) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 3})
	e, err := New(recoveryApp(), Config{
		Machines: 4, WorkersPerFunction: 4,
		Store: store, StoreLevel: kvstore.Quorum,
		// A far-future flush interval keeps slates dirty, so the staged
		// WAL batch is the only durable trace of flushed state.
		FlushPolicy: slate.Interval, FlushInterval: time.Hour,
		QueueCapacity: 1 << 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	const victim = "machine-01"
	for i := 0; i < 800; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: fmt.Sprintf("k%d", i%40)})
	}
	e.Drain()

	// Find a worker on the victim machine and a key it owns, and stage
	// an in-flight flush batch in that worker's WAL.
	var victimWorker *worker
	for wid, wm := range e.workerMachine {
		if wm == victim {
			victimWorker = e.workers[wid]
			break
		}
	}
	if victimWorker == nil {
		t.Fatal("no worker on victim machine")
	}
	stagedKey := ""
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("inflight-%d", i)
		if e.rings["U"].Lookup(key) == victimWorker.id {
			stagedKey = key
			break
		}
	}
	if stagedKey == "" {
		t.Fatal("no key owned by victim worker")
	}
	victimWorker.cache.(*slate.Sharded).WAL().AppendBatch([]wal.SlateRecord{
		{Updater: "U", Key: stagedKey, Value: []byte("271828")},
	})

	lostQ, lostDirty := e.CrashMachine(victim)
	if lostDirty == 0 {
		t.Fatal("expected dirty slates on the crashed machine")
	}
	t.Logf("crash: %d queued, %d dirty lost", lostQ, lostDirty)

	// Force detection so the rings reroute, then read through the new
	// owner: the WAL-replayed record is in the store.
	e.Cluster().Master().PingAll()
	if wid := e.WorkerFor("U", stagedKey); wid == victimWorker.id || wid == "" {
		t.Fatalf("staged key still routes to %q", wid)
	}
	if got := e.Slate("U", stagedKey); string(got) != "271828" {
		t.Fatalf("flushed record lost: got %q", got)
	}

	st := e.RecoveryStatus()
	if st.WALBatches != 1 || st.WALRecords != 1 {
		t.Fatalf("WAL replay counters = %d/%d, want 1/1", st.WALBatches, st.WALRecords)
	}
	if st.DirtyLost == 0 {
		t.Fatal("dirty loss not accounted in recovery status")
	}
}
