package engine1

import (
	"fmt"
	"sort"
	"time"

	"muppet/internal/core"
	"muppet/internal/engine"
	"muppet/internal/event"
	"muppet/internal/query"
	"muppet/internal/slate"
)

// Query answers one relational query over an updater's live slates,
// cluster-wide. Muppet 1.0 owns keys per worker on per-function rings,
// so the scatter set is every machine hosting an enabled worker of the
// updater; each machine runs the whole σ/π/γ pipeline over the keys
// its workers own and only the reduced partials come back.
func (e *Engine) Query(spec query.Spec) (*query.Result, error) {
	start := time.Now()
	ring := e.rings[spec.Updater]
	if ring == nil {
		return nil, fmt.Errorf("engine1: no updater %q", spec.Updater)
	}
	seen := make(map[string]bool)
	var machines []string
	for _, wid := range ring.Nodes() {
		if m := e.workerMachine[wid]; !seen[m] {
			seen[m] = true
			machines = append(machines, m)
		}
	}
	sort.Strings(machines)
	co := &query.Coordinator{
		Machines: machines,
		IsLocal:  e.clu.IsLocal,
		Local:    e.queryLocal,
		Remote:   e.clu.Query,
	}
	res, err := co.Run(&spec)
	if err != nil {
		return nil, err
	}
	e.queries.Observe(spec.Kind(), res.Stats, time.Since(start))
	return res, nil
}

// queryLocal runs the node-local pipeline for one hosted machine: the
// machine's worker caches overlaid on the durable store's rows (cache
// wins — it holds the freshest, possibly unflushed value), both
// filtered to keys whose owning worker lives on the queried machine.
func (e *Engine) queryLocal(machine string, spec *query.Spec) (*query.NodeResult, error) {
	ring := e.rings[spec.Updater]
	f := e.app.Function(spec.Updater)
	if ring == nil || f == nil || f.Kind != core.KindUpdate {
		return nil, fmt.Errorf("engine1: no updater %q", spec.Updater)
	}
	var cached []query.InputRow
	for wid, w := range e.workers {
		if w.machine != machine || w.fn.Name() != spec.Updater {
			continue
		}
		for _, k := range w.cache.Keys() {
			if !spec.KeyInRange(k.Key) || ring.Lookup(k.Key) != wid {
				continue
			}
			if v, ok := w.cache.Peek(k); ok {
				cached = append(cached, query.InputRow{Key: k.Key, Raw: v})
			}
		}
	}
	var stored []query.InputRow
	if e.cfg.Store != nil {
		e.cfg.Store.ScanUntil(spec.Updater, func(key string, sv []byte) bool {
			if spec.KeyInRange(key) && e.workerMachine[ring.Lookup(key)] == machine {
				if raw, err := slate.Decode(sv); err == nil {
					stored = append(stored, query.InputRow{Key: key, Raw: raw})
				}
			}
			return true
		})
	}
	return query.Execute(spec, f.Codec, query.MergeRows(cached, stored)), nil
}

// QueryWatch starts a continuous query: the spec is re-evaluated on
// flush-epoch cadence (or spec.EveryMS) and the marshaled Result is
// published to a private sink stream whenever the answer changes. The
// returned stop function ends the watch and cancels the subscription;
// it must be called exactly once.
func (e *Engine) QueryWatch(spec query.Spec, buf int) (*engine.Subscription, func(), error) {
	if err := spec.Normalize(); err != nil {
		return nil, nil, err
	}
	interval := e.cfg.FlushInterval
	if spec.EveryMS > 0 {
		interval = time.Duration(spec.EveryMS) * time.Millisecond
	}
	stream := fmt.Sprintf("_query/%d", e.watchSeq.Add(1))
	sub := e.sink.Subscribe(stream, buf)
	w := &query.Watcher{
		Interval: interval,
		Run:      func() (*query.Result, error) { return e.Query(spec) },
		Emit: func(payload []byte) {
			e.sink.Record(event.Event{
				Stream:  stream,
				Seq:     e.seq.Add(1),
				Key:     spec.Updater,
				Value:   payload,
				Ingress: time.Now().UnixNano(),
			})
		},
	}
	w.Start()
	stop := func() {
		w.Stop()
		sub.Cancel()
	}
	return sub, stop, nil
}

// QueryCounters exposes the query subsystem's counters (for metrics
// registration and tests).
func (e *Engine) QueryCounters() *query.Counters { return e.queries }
