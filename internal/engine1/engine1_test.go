package engine1

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"muppet/internal/core"
	"muppet/internal/event"
	"muppet/internal/kvstore"
	"muppet/internal/queue"
	"muppet/internal/slate"
)

// counterApp mirrors Example 4: M1 extracts retailer keys, U1 counts
// per retailer.
func counterApp() *core.App {
	m1 := core.MapFunc{FName: "M1", Fn: func(emit core.Emitter, in event.Event) {
		if strings.HasPrefix(string(in.Value), "checkin:") {
			emit.Publish("S2", strings.TrimPrefix(string(in.Value), "checkin:"), in.Value)
		}
	}}
	u1 := core.UpdateFunc{FName: "U1", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		count := 0
		if sl != nil {
			count, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(count + 1)))
	}}
	return core.NewApp("counter").
		Input("S1").
		AddMap(m1, []string{"S1"}, []string{"S2"}).
		AddUpdate(u1, []string{"S2"}, nil, 0)
}

func checkin(i int, retailer string) event.Event {
	return event.Event{Stream: "S1", TS: event.Timestamp(i), Key: fmt.Sprintf("c%d", i), Value: []byte("checkin:" + retailer)}
}

func runCounter(t *testing.T, cfg Config, events []event.Event) *Engine {
	t.Helper()
	e, err := New(counterApp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		e.Ingest(ev)
	}
	e.Drain()
	return e
}

func TestCountsMatchReference(t *testing.T) {
	var events []event.Event
	retailers := []string{"walmart", "bestbuy", "jcpenney"}
	want := map[string]int{}
	for i := 0; i < 300; i++ {
		r := retailers[i%3]
		events = append(events, checkin(i+1, r))
		want[r]++
	}
	e := runCounter(t, Config{Machines: 4, WorkersPerFunction: 4}, events)
	defer e.Stop()
	for r, n := range want {
		got := string(e.Slate("U1", r))
		if got != strconv.Itoa(n) {
			t.Fatalf("%s count = %q, want %d", r, got, n)
		}
	}
	s := e.Stats()
	if s.Processed != 300+300 {
		t.Fatalf("Processed = %d, want 600 (300 map + 300 update)", s.Processed)
	}
	if s.SlateUpdates != 300 {
		t.Fatalf("SlateUpdates = %d, want 300", s.SlateUpdates)
	}
}

func TestSingleWriterPerKey(t *testing.T) {
	// 1.0 invariant: all events with key k for updater U go to exactly
	// one worker, so no slate sees concurrent updates (Section 4.1).
	var mu sync.Mutex
	seen := map[string]map[string]bool{} // key -> set of goroutine-ish marker
	u := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		mu.Lock()
		if seen[in.Key] == nil {
			seen[in.Key] = map[string]bool{}
		}
		mu.Unlock()
	}}
	app := core.NewApp("sw").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
	e, err := New(app, Config{Machines: 4, WorkersPerFunction: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i%10)
		wid := e.WorkerFor("U", key)
		mu.Lock()
		if seen[key] == nil {
			seen[key] = map[string]bool{}
		}
		seen[key][wid] = true
		mu.Unlock()
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: key})
	}
	e.Drain()
	for k, workers := range seen {
		if len(workers) != 1 {
			t.Fatalf("key %s routed to %d workers: %v", k, len(workers), workers)
		}
	}
}

func TestSlatePersistedToStore(t *testing.T) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 3})
	e := runCounter(t, Config{
		Machines:    2,
		Store:       store,
		StoreLevel:  kvstore.Quorum,
		FlushPolicy: slate.WriteThrough,
	}, []event.Event{checkin(1, "walmart"), checkin(2, "walmart")})
	e.Stop()
	// Slate lives at row "walmart", column "U1", compressed.
	raw, found, _, err := store.Get("walmart", "U1", kvstore.Quorum)
	if err != nil || !found {
		t.Fatalf("store row missing: found=%v err=%v", found, err)
	}
	v, err := slate.Decompress(raw)
	if err != nil || string(v) != "2" {
		t.Fatalf("stored slate = %q err=%v", v, err)
	}
}

func TestSlateReloadedFromStoreAfterEviction(t *testing.T) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 1, ReplicationFactor: 1})
	e, err := New(counterApp(), Config{
		Machines:            1,
		WorkersPerFunction:  1,
		SlateCachePerWorker: 2, // tiny cache forces evictions
		Store:               store,
		StoreLevel:          kvstore.One,
		FlushPolicy:         slate.OnEvict,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	// Interleave many keys so early ones are evicted, then revisit.
	for round := 0; round < 3; round++ {
		for k := 0; k < 10; k++ {
			e.Ingest(checkin(round*10+k+1, fmt.Sprintf("r%d", k)))
		}
		e.Drain()
	}
	for k := 0; k < 10; k++ {
		got := string(e.Slate("U1", fmt.Sprintf("r%d", k)))
		if got != "3" {
			t.Fatalf("r%d count = %q, want 3 (lost across evictions)", k, got)
		}
	}
	if cs := e.CacheStats("U1"); cs.Evictions == 0 {
		t.Fatal("test exercised no evictions")
	}
}

func TestMachineCrashLosesEventsAndReroutes(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 4, WorkersPerFunction: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 100; i++ {
		e.Ingest(checkin(i+1, "walmart"))
	}
	e.Drain()
	ownerBefore := e.WorkerFor("U1", "walmart")
	machine := e.workerMachine[ownerBefore]
	e.CrashMachine(machine)
	// Next delivery detects the dead machine, reports it, and the key
	// moves to a different worker. The triggering event is lost.
	e.Ingest(checkin(101, "walmart"))
	e.Drain()
	ownerAfter := e.WorkerFor("U1", "walmart")
	if ownerAfter == ownerBefore {
		t.Fatalf("key did not move off crashed worker %s", ownerBefore)
	}
	if e.Stats().LostMachineDown == 0 {
		t.Fatal("no events counted lost to the crash")
	}
	if e.Stats().FailureReports == 0 {
		t.Fatal("failure never reported to master")
	}
	if _, ok := e.Cluster().Master().DetectionTime(machine); !ok {
		t.Fatal("master does not know about the failure")
	}
	// Subsequent events flow to the new owner.
	for i := 0; i < 10; i++ {
		e.Ingest(checkin(200+i, "walmart"))
	}
	e.Drain()
	if got := e.Slate("U1", "walmart"); got == nil {
		t.Fatal("no slate accumulating at the new owner")
	}
}

func TestCrashWithStoreRecoversFlushedState(t *testing.T) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 3})
	e, err := New(counterApp(), Config{
		Machines:           4,
		WorkersPerFunction: 4,
		Store:              store,
		StoreLevel:         kvstore.Quorum,
		FlushPolicy:        slate.WriteThrough,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 50; i++ {
		e.Ingest(checkin(i+1, "walmart"))
	}
	e.Drain()
	owner := e.WorkerFor("U1", "walmart")
	e.CrashMachine(e.workerMachine[owner])
	e.Ingest(checkin(51, "walmart")) // lost, but triggers failover
	e.Drain()
	e.Ingest(checkin(52, "walmart"))
	e.Drain()
	// The new owner reloaded count=50 from the store and added 1; the
	// failover-triggering event was lost (Section 4.3 accepts this).
	if got := string(e.Slate("U1", "walmart")); got != "51" {
		t.Fatalf("count after failover = %q, want 51", got)
	}
}

func TestOverflowDropPolicy(t *testing.T) {
	slow := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		time.Sleep(2 * time.Millisecond)
		emit.ReplaceSlate([]byte("x"))
	}}
	app := core.NewApp("slow").Input("S1").AddUpdate(slow, []string{"S1"}, nil, 0)
	e, err := New(app, Config{Machines: 1, WorkersPerFunction: 1, QueueCapacity: 4, QueuePolicy: queue.Drop})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 100; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"})
	}
	e.Drain()
	s := e.Stats()
	if s.LostOverflow == 0 {
		t.Fatal("no events dropped despite overdriven queue")
	}
	if s.Processed+s.LostOverflow != 100 {
		t.Fatalf("conservation: processed %d + lost %d != 100", s.Processed, s.LostOverflow)
	}
}

func TestOverflowDivertPolicy(t *testing.T) {
	// Degraded service: overflow events go to S_ovf, handled by a cheap
	// updater (Section 4.3).
	slow := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		time.Sleep(2 * time.Millisecond)
		emit.ReplaceSlate([]byte("full"))
	}}
	cheap := core.UpdateFunc{FName: "U_cheap", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	app := core.NewApp("degraded").
		Input("S1").
		AddUpdate(slow, []string{"S1"}, nil, 0).
		AddUpdate(cheap, []string{"S_ovf"}, nil, 0)
	// S_ovf is produced by the engine's divert mechanism, not by a
	// function; declare it as an input so validation passes.
	app.Input("S_ovf")
	e, err := New(app, Config{
		Machines:           1,
		WorkersPerFunction: 1,
		QueueCapacity:      4,
		QueuePolicy:        queue.Divert,
		OverflowStream:     "S_ovf",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 60; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"})
	}
	e.Drain()
	s := e.Stats()
	if s.Diverted == 0 {
		t.Fatal("nothing diverted")
	}
	if got := e.Slate("U_cheap", "hot"); got == nil {
		t.Fatal("degraded-service updater saw no diverted events")
	}
}

func TestSourceThrottling(t *testing.T) {
	slow := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		time.Sleep(time.Millisecond)
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	app := core.NewApp("throttle").Input("S1").AddUpdate(slow, []string{"S1"}, nil, 0)
	e, err := New(app, Config{
		Machines: 1, WorkersPerFunction: 1,
		QueueCapacity: 2, QueuePolicy: queue.Drop,
		SourceThrottle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	const n = 30
	for i := 0; i < n; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"})
	}
	e.Drain()
	s := e.Stats()
	if s.LostOverflow != 0 {
		t.Fatalf("throttled source still lost %d events", s.LostOverflow)
	}
	if got := string(e.Slate("U", "hot")); got != strconv.Itoa(n) {
		t.Fatalf("count = %q, want %d (no loss under throttling)", got, n)
	}
}

func TestOutputStreamRecorded(t *testing.T) {
	m := core.MapFunc{FName: "M", Fn: func(emit core.Emitter, in event.Event) {
		emit.Publish("S2", in.Key, []byte("hot"))
	}}
	app := core.NewApp("out").Input("S1").Output("S2").AddMap(m, []string{"S1"}, []string{"S2"})
	e, err := New(app, Config{Machines: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 5; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: fmt.Sprintf("k%d", i)})
	}
	e.Drain()
	if got := len(e.Output("S2")); got != 5 {
		t.Fatalf("output events = %d, want 5", got)
	}
}

func TestLatencyObserved(t *testing.T) {
	e := runCounter(t, Config{Machines: 2}, []event.Event{checkin(1, "walmart")})
	defer e.Stop()
	if e.Counters().Latency.Count() == 0 {
		t.Fatal("no end-to-end latency samples recorded")
	}
}

func TestIngestOnNonInputPanics(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Ingest(event.Event{Stream: "S2", Key: "k"})
}

func TestStopIsIdempotent(t *testing.T) {
	e := runCounter(t, Config{Machines: 1}, []event.Event{checkin(1, "walmart")})
	e.Stop()
	e.Stop()
}

func TestValidationErrorSurfaced(t *testing.T) {
	app := core.NewApp("bad") // no functions
	if _, err := New(app, Config{}); err == nil {
		t.Fatal("invalid app accepted")
	}
}

func TestInvariantSeparateSlatesPerUpdater(t *testing.T) {
	u1 := core.UpdateFunc{FName: "U1", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		emit.ReplaceSlate([]byte("one"))
	}}
	u2 := core.UpdateFunc{FName: "U2", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		emit.ReplaceSlate([]byte("two"))
	}}
	app := core.NewApp("two-updaters").
		Input("S1").
		AddUpdate(u1, []string{"S1"}, nil, 0).
		AddUpdate(u2, []string{"S1"}, nil, 0)
	e, err := New(app, Config{Machines: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	e.Ingest(event.Event{Stream: "S1", TS: 1, Key: "k"})
	e.Drain()
	if string(e.Slate("U1", "k")) != "one" || string(e.Slate("U2", "k")) != "two" {
		t.Fatalf("slates = %q/%q", e.Slate("U1", "k"), e.Slate("U2", "k"))
	}
}

func TestQueueStatsExposed(t *testing.T) {
	e := runCounter(t, Config{Machines: 2, WorkersPerFunction: 2}, []event.Event{checkin(1, "walmart")})
	defer e.Stop()
	qs := e.QueueStats()
	if len(qs) != 4 { // 2 functions x 2 workers
		t.Fatalf("queue stats for %d workers, want 4", len(qs))
	}
	var offered uint64
	for _, s := range qs {
		offered += s.Offered
	}
	if offered == 0 {
		t.Fatal("no queue activity recorded")
	}
}
