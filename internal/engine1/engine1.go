package engine1

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"muppet/internal/cluster"
	"muppet/internal/core"
	"muppet/internal/engine"
	"muppet/internal/event"
	"muppet/internal/hashring"
	"muppet/internal/ingress"
	"muppet/internal/kvstore"
	"muppet/internal/obs"
	"muppet/internal/query"
	"muppet/internal/queue"
	"muppet/internal/recovery"
	"muppet/internal/slate"
	"muppet/internal/wal"
)

// Config tunes the Muppet 1.0 engine.
type Config struct {
	// Machines is the number of simulated machines.
	Machines int
	// WorkersPerFunction is the number of workers started for each map
	// and update function, spread across machines. In 1.0 the worker
	// count is "set based on the nature of the application, not based
	// on the number of cores" (Section 4.5).
	WorkersPerFunction int
	// QueueCapacity bounds each worker's incoming-event queue.
	QueueCapacity int
	// QueuePolicy is the overflow behavior for internal event passing.
	QueuePolicy queue.OverflowPolicy
	// OverflowStream receives diverted events under the Divert policy.
	OverflowStream string
	// SlateCachePerWorker is each worker's private slate-cache capacity
	// (slates). 1.0 keeps disparate caches, one per worker.
	SlateCachePerWorker int
	// FlushPolicy controls when dirty slates reach the key-value store.
	FlushPolicy slate.FlushPolicy
	// FlushInterval drives the periodic flush under slate.Interval.
	FlushInterval time.Duration
	// Store is the durable key-value cluster; nil disables persistence.
	Store *kvstore.Cluster
	// StoreLevel is the consistency level for slate I/O.
	StoreLevel kvstore.Consistency
	// SourceThrottle makes Ingest wait-and-retry when the destination
	// queue is full instead of applying the overflow policy — the
	// paper's source throttling, safe only at external inputs.
	SourceThrottle bool
	// SendLatency is the simulated per-hop network latency.
	SendLatency time.Duration
	// SlateShards is the number of stripes in each worker's private
	// slate store (default 4 — 1.0 workers are single-threaded, so a
	// few stripes suffice; the shared value is the group-commit flush
	// path, not lock spreading).
	SlateShards int
	// FlushBatch bounds the records per group-commit multi-put when a
	// worker flushes dirty slates (default 256).
	FlushBatch int
	// OutputCapacity bounds the events retained per declared output
	// stream (a ring keeping the newest; overwrites are counted in
	// Stats.OutputDropped). Zero or negative retains everything, the
	// pre-redesign behavior.
	OutputCapacity int
	// Recovery tunes the shared failure-recovery subsystem (detector,
	// WAL replay on failover, cache warm-up on rejoin). The zero value
	// enables everything.
	Recovery recovery.Config
	// Cluster, when non-nil, is an externally wired cluster node (node
	// mode): the engine hosts conductor/task-processor pairs only for
	// workers assigned to the cluster's local machines and reaches the
	// rest through its transport. Nil builds the single-process
	// simulation from Machines/SendLatency. The engine owns the
	// cluster's lifecycle either way: Stop closes it.
	Cluster *cluster.Cluster
	// Observability tunes the sampled event-lifecycle tracer. The zero
	// value disables tracing entirely (nil tracer, zero hot-path cost);
	// the metrics registry is always on — collectors are lazy.
	Observability obs.TracerConfig
}

func (c *Config) fill() {
	if c.Machines <= 0 {
		c.Machines = 1
	}
	if c.WorkersPerFunction <= 0 {
		c.WorkersPerFunction = c.Machines
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 1024
	}
	if c.SlateCachePerWorker <= 0 {
		c.SlateCachePerWorker = 10_000
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 100 * time.Millisecond
	}
	if c.SlateShards <= 0 {
		c.SlateShards = 4
	}
}

type taskRequest struct {
	ev       event.Event
	slateIn  []byte
	slateObj any // decoded slate object of a typed updater (never nil when set)
	isUpdate bool
}

// taskResponse carries one invocation's results back to the conductor.
// outputs is the task processor's REUSED emitter slice: the strict
// request/response alternation of the worker pair guarantees the
// conductor is done routing before the processor's next invocation
// resets it. arena is fresh per invocation (the derived events retain
// slices of it), holding every published value in one allocation.
type taskResponse struct {
	outputs  []emitted
	arena    []byte
	newSlate []byte
	replaced bool
	err      error
}

// emitted is one published output: its stream and key, and the bounds
// of its value in the invocation's arena.
type emitted struct {
	stream, key string
	off, end    int
}

// worker is one conductor/task-processor pair bound to a single
// function. Its queue lives in a queue.Slot: the queue (and channel
// pair) is replaced when the worker's machine is revived after a
// crash — the failover drain closed the old queue and its loops
// exited — with retired queues' stats folded in.
type worker struct {
	id      string
	machine string
	fn      *core.FunctionSpec
	q       queue.Slot[event.Event]
	cache   slate.SlateStore
}

func (w *worker) queue() *queue.Queue[event.Event] { return w.q.Queue() }
func (w *worker) qstats() queue.Stats              { return w.q.Stats() }

// Engine is the Muppet 1.0 runtime for one application.
type Engine struct {
	app *core.App
	cfg Config
	clu *cluster.Cluster

	rings map[string]*hashring.Ring // function -> ring over its worker IDs
	// workers holds the conductor/task-processor pairs this node runs —
	// only workers assigned to locally hosted machines. workerMachine
	// and workerFn cover EVERY worker of the cluster (the assignment is
	// deterministic, so all nodes agree); ring updates and routing must
	// consult them, never workers, for a worker another node hosts.
	workers       map[string]*worker
	workerMachine map[string]string
	workerFn      map[string]string

	rec      *recovery.Manager
	ing      *ingress.Driver
	reg      *obs.Registry
	tracer   *obs.Tracer
	counters *engine.Counters
	tracker  *engine.Tracker
	sink     *engine.Sink
	lost     *engine.LostLog
	queries  *query.Counters
	seq      atomic.Uint64
	watchSeq atomic.Uint64
	stopped  atomic.Bool
	flushers chan struct{}
	wg       sync.WaitGroup
	// stopMu serializes Stop against RestartWorkers so a rejoin racing
	// a shutdown can never wg.Add fresh worker loops while wg.Wait is
	// in progress.
	stopMu sync.Mutex
}

// New builds and starts a Muppet 1.0 engine for a validated app.
func New(app *core.App, cfg Config) (*Engine, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	clu := cfg.Cluster
	if clu == nil {
		clu = cluster.New(cluster.Config{Machines: cfg.Machines, SendLatency: cfg.SendLatency})
	}
	e := &Engine{
		app:           app,
		cfg:           cfg,
		clu:           clu,
		rings:         make(map[string]*hashring.Ring),
		workers:       make(map[string]*worker),
		workerMachine: make(map[string]string),
		workerFn:      make(map[string]string),
		reg:           obs.NewRegistry(),
		tracer:        obs.NewTracer(app.Name(), cfg.Observability),
		counters:      engine.NewCounters(),
		tracker:       engine.NewTracker(),
		sink:          engine.NewSink(cfg.OutputCapacity),
		lost:          engine.NewLostLog(0),
		queries:       query.NewCounters(),
		flushers:      make(chan struct{}),
	}
	// Remote-origin deliveries are charged to this node's in-flight
	// tracker when they land (and credited back if bounced), so Drain
	// covers events handed off by peer nodes.
	e.clu.OnRemoteInflight(func(delta int) { e.tracker.Add(delta) })
	// Worker placement — fn#i on machines[i % n] over the sorted member
	// list — is deterministic, so every node of a multi-node cluster
	// derives the same assignment and the same per-function rings.
	// Runtime state (queues, caches, loops) is built only for workers
	// on locally hosted machines.
	machines := e.clu.MachineNames()
	for _, f := range app.Functions() {
		var ids []string
		for i := 0; i < cfg.WorkersPerFunction; i++ {
			id := fmt.Sprintf("%s#%d", f.Name(), i)
			machine := machines[i%len(machines)]
			e.workerMachine[id] = machine
			e.workerFn[id] = f.Name()
			ids = append(ids, id)
			if !e.clu.IsLocal(machine) {
				continue
			}
			w := &worker{
				id:      id,
				machine: machine,
				fn:      f,
			}
			w.q.Store(queue.New[event.Event](cfg.QueueCapacity, cfg.QueuePolicy))
			// Even with 1.0's disparate per-worker caches, slates run
			// through the shared SlateStore interface and flush via the
			// group-commit (WAL + multi-put) pipeline.
			var slateWAL *wal.SlateBatchLog
			store := e.storeFor()
			if store != nil {
				slateWAL = wal.NewSlateBatchLog()
			}
			w.cache = slate.NewSharded(slate.ShardedConfig{
				Shards:        cfg.SlateShards,
				Capacity:      cfg.SlateCachePerWorker,
				Policy:        cfg.FlushPolicy,
				Store:         store,
				WAL:           slateWAL,
				MaxFlushBatch: cfg.FlushBatch,
				WALCheckpoint: true,
				TTLFor:        app.TTLFor,
			})
			e.workers[id] = w
		}
		e.rings[f.Name()] = hashring.New(ids, 0)
	}
	for _, m := range e.clu.LocalNames() {
		e.clu.SetHandler(m, e.deliverLocal)
		e.clu.SetBatchHandler(m, e.deliverLocalBatch)
	}
	// The node answers peer queries by running the node-local pipeline
	// for whichever hosted machine the coordinator addressed.
	e.clu.SetQueryHandler(func(machine string, req []byte) ([]byte, error) {
		spec, err := query.DecodeRequest(req)
		if err != nil {
			return nil, err
		}
		nr, err := e.queryLocal(machine, spec)
		if err != nil {
			return nil, err
		}
		return query.EncodeResponse(nr)
	})
	// The recovery manager subscribes to the master's failure and
	// rejoin broadcasts and owns the whole crash-to-healthy protocol
	// (ring updates included); the engine only reports failed sends
	// through its detector.
	e.rec = recovery.NewManager(recovery.Deps{
		Cluster:  e.clu,
		Adapter:  &recoveryAdapter{e: e},
		Lost:     e.lost,
		Counters: e.counters,
		Tracker:  e.tracker,
		Store:    e.storeFor(),
	}, cfg.Recovery)
	e.ing = &ingress.Driver{
		Ops:            ingressOps{e: e},
		Counters:       e.counters,
		Tracker:        e.tracker,
		Lost:           e.lost,
		Machines:       len(machines),
		Policy:         cfg.QueuePolicy,
		OverflowStream: cfg.OverflowStream,
		SourceThrottle: cfg.SourceThrottle,
		Tracer:         e.tracer,
	}
	e.registerObs()
	e.start()
	return e, nil
}

func (e *Engine) storeFor() slate.Store {
	if e.cfg.Store == nil {
		return nil
	}
	return &slate.KVStore{Cluster: e.cfg.Store, Level: e.cfg.StoreLevel}
}

func (e *Engine) start() {
	for _, w := range e.workers {
		e.startWorker(w)
		if e.cfg.FlushPolicy == slate.Interval {
			e.wg.Add(1)
			go e.flusherLoop(w)
		}
	}
}

// startWorker launches a fresh conductor/task-processor pair over the
// worker's current queue. It runs at engine start and again when a
// crashed machine's workers are restarted on revival (the old loops
// exited when the failover drain closed their queue).
func (e *Engine) startWorker(w *worker) {
	req := make(chan taskRequest)
	resp := make(chan taskResponse)
	e.wg.Add(2)
	go e.conductorLoop(w, w.queue(), req, resp)
	go e.taskProcessorLoop(w, req, resp)
}

// conductorLoop is the Perl-conductor half of a 1.0 worker: it owns
// the queue, the slate cache, and all event logistics. The queue and
// channel pair are passed explicitly so a machine revival can install
// fresh ones without racing the retiring loops.
func (e *Engine) conductorLoop(w *worker, q *queue.Queue[event.Event], req chan taskRequest, resp chan taskResponse) {
	defer e.wg.Done()
	for {
		ev, err := q.Get()
		if err != nil {
			close(req)
			return
		}
		// A ring change (failover or rejoin) while the event was queued
		// may have moved the key to another worker; forward it rather
		// than break the single-writer property.
		if e.rings[w.fn.Name()].Lookup(ev.Key) != w.id {
			e.deliver(w.fn.Name(), ev, false)
			e.tracker.Dec()
			continue
		}
		var sp *obs.Span
		if ev.TraceEnq != 0 {
			sp = e.tracer.Start(ev.Stream, ev.Ingress, ev.TraceEnq)
		}
		r := taskRequest{ev: ev, isUpdate: w.fn.Kind == core.KindUpdate}
		codec := w.fn.Codec
		if r.isUpdate {
			sk := slate.Key{Updater: w.fn.Name(), Key: ev.Key}
			if codec != nil {
				// Typed updater: the decoded object (decoded at most
				// once per cache fill) crosses the IPC hop instead of
				// bytes, pinned in the cache so the flusher leaves it
				// alone until the post-invocation PutDecoded. A read
				// error (store failure, undecodable row) falls back to
				// a fresh zero-value slate — the byte path's
				// disposition for an always-replacing updater — and is
				// counted in the cache's DecodeErrors.
				r.slateObj, _ = w.cache.GetDecoded(sk, codec)
				if r.slateObj == nil {
					r.slateObj = codec.New()
				}
			} else {
				r.slateIn, _ = w.cache.Get(sk)
			}
		}
		// The 1.0 design pays an IPC hop here: event (and slate) cross
		// to the task-processor process and back.
		req <- r
		rsp := <-resp
		if r.isUpdate && codec != nil {
			w.cache.PutDecoded(slate.Key{Updater: w.fn.Name(), Key: ev.Key}, r.slateObj, codec)
			e.counters.SlateUpdates.Add(1)
			e.counters.ObserveLatency(ev)
		} else if rsp.replaced {
			w.cache.Put(slate.Key{Updater: w.fn.Name(), Key: ev.Key}, rsp.newSlate)
			e.counters.SlateUpdates.Add(1)
			e.counters.ObserveLatency(ev)
		}
		sp.MarkExec()
		for _, out := range rsp.outputs {
			e.route(e.derive(out, rsp.arena, ev))
		}
		sp.MarkEmit()
		e.tracer.Finish(sp)
		e.counters.Processed.Add(1)
		e.tracker.Dec()
	}
}

// taskProcessorLoop is the JVM half: it only runs the map or update
// code. It owns one reusable emitter — the conductor finishes routing
// a response before sending the next request, so resetting the
// emitter's scratch between invocations never races the consumer.
func (e *Engine) taskProcessorLoop(w *worker, req chan taskRequest, resp chan taskResponse) {
	defer e.wg.Done()
	var em collectEmitter
	for r := range req {
		em.reset(e.app, w.fn.Name(), r.isUpdate)
		switch w.fn.Kind {
		case core.KindMap:
			w.fn.Mapper.Map(&em, r.ev)
		case core.KindUpdate:
			if r.slateObj != nil {
				w.fn.Updater.(core.DecodedUpdater).UpdateDecoded(&em, r.ev, r.slateObj)
			} else {
				w.fn.Updater.Update(&em, r.ev, r.slateIn)
			}
		}
		// One allocation holds every published value; the conductor's
		// derived events slice it (the scratch arena is reused next
		// invocation, the events outlive it).
		var arena []byte
		if len(em.vals) > 0 {
			arena = make([]byte, len(em.vals))
			copy(arena, em.vals)
		}
		resp <- taskResponse{outputs: em.outputs, arena: arena, newSlate: em.newSlate, replaced: em.replaced, err: em.err}
	}
}

func (e *Engine) flusherLoop(w *worker) {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.flushers:
			return
		case <-ticker.C:
			if e.tracer != nil {
				start := time.Now()
				w.cache.FlushDirty()
				e.tracer.ObserveFlushSettle(time.Since(start))
			} else {
				w.cache.FlushDirty()
			}
		}
	}
}

// collectEmitter gathers a function invocation's outputs inside the
// task processor; the conductor routes them afterwards. One emitter
// lives per task-processor goroutine and is reset between invocations:
// the outputs slice and the value scratch arena keep their capacity,
// so a steady-state invocation allocates nothing inside the emitter.
type collectEmitter struct {
	app      *core.App
	function string
	isUpdate bool
	outputs  []emitted
	vals     []byte // scratch arena holding every published value
	newSlate []byte
	replaced bool
	err      error
}

func (c *collectEmitter) reset(app *core.App, function string, isUpdate bool) {
	c.app = app
	c.function = function
	c.isUpdate = isUpdate
	c.outputs = c.outputs[:0]
	c.vals = c.vals[:0]
	c.newSlate = nil
	c.replaced = false
	c.err = nil
}

// Publish implements core.Emitter.
func (c *collectEmitter) Publish(stream, key string, value []byte) error {
	if !c.app.MayPublish(c.function, stream) {
		err := core.ErrUndeclaredStream{Function: c.function, Stream: stream}
		if c.err == nil {
			c.err = err
		}
		return err
	}
	off := len(c.vals)
	c.vals = append(c.vals, value...)
	c.outputs = append(c.outputs, emitted{stream: stream, key: key, off: off, end: len(c.vals)})
	return nil
}

// ReplaceSlate implements core.Emitter.
func (c *collectEmitter) ReplaceSlate(value []byte) {
	if !c.isUpdate {
		panic(fmt.Sprintf("engine1: map function %s called ReplaceSlate", c.function))
	}
	// The slate cache retains the value, so it gets its own allocation
	// (never the reused arena); append to a non-nil empty slice so that
	// an empty slate stays distinct from "no slate" (nil) on the next
	// update call.
	c.newSlate = append([]byte{}, value...)
	c.replaced = true
}

// derive stamps an emitted record into a routable event: timestamp
// strictly greater than the input's, fresh sequence number, inherited
// ingress stamp, value sliced out of the invocation's arena (the
// three-index slice keeps a downstream append from growing into the
// next output's bytes).
func (e *Engine) derive(out emitted, arena []byte, in event.Event) event.Event {
	var value []byte
	if out.end > out.off {
		value = arena[out.off:out.end:out.end]
	}
	return event.Event{
		Stream:  out.stream,
		TS:      in.TS + 1,
		Seq:     e.seq.Add(1),
		Key:     out.key,
		Value:   value,
		Ingress: in.Ingress,
	}
}

// deliverLocal is the per-machine delivery handler: place the event on
// the addressed worker's queue.
func (e *Engine) deliverLocal(workerID string, ev event.Event) error {
	w := e.workers[workerID]
	if w == nil {
		return fmt.Errorf("engine1: unknown worker %s", workerID)
	}
	if e.tracer.Sample() {
		ev.TraceEnq = time.Now().UnixNano()
	}
	return w.queue().Put(ev)
}

// deliverLocalBatch places a machine-addressed batch on the local
// worker queues, one PutBatch — one lock acquisition — per worker. The
// returned slice is parallel to ds; nil entries were accepted.
func (e *Engine) deliverLocalBatch(ds []cluster.Delivery) []error {
	byWorker := make(map[string][]int, 4)
	for i := range ds {
		byWorker[ds[i].Worker] = append(byWorker[ds[i].Worker], i)
	}
	var errs []error
	for wid, idxs := range byWorker {
		w := e.workers[wid]
		var n int
		var err error
		if w == nil {
			err = fmt.Errorf("engine1: unknown worker %s", wid)
		} else {
			evs := make([]event.Event, len(idxs))
			for j, i := range idxs {
				evs[j] = ds[i].Ev
				if e.tracer.Sample() {
					evs[j].TraceEnq = time.Now().UnixNano()
				}
			}
			n, err = w.queue().PutBatch(evs)
		}
		if err == nil {
			continue
		}
		if errs == nil {
			errs = make([]error, len(ds))
		}
		for _, i := range idxs[n:] {
			errs[i] = err
		}
	}
	return errs
}

// route fans an event out to every subscriber of its stream, recording
// it first if the stream is a declared output.
func (e *Engine) route(ev event.Event) {
	if e.app.IsOutput(ev.Stream) {
		e.sink.Record(ev)
	}
	for _, fn := range e.app.Subscribers(ev.Stream) {
		e.deliver(fn, ev, false)
	}
}

// deliver sends an event to the worker owning <key, fn>, applying the
// failure and overflow semantics of Section 4.3.
func (e *Engine) deliver(fn string, ev event.Event, throttle bool) {
	if e.stopped.Load() {
		// Deliveries offered to a stopped engine used to vanish without
		// a trace; the streaming-ingress contract is that every drop is
		// logged with its reason.
		e.lost.Record(fn, ev, engine.LossStopped)
		return
	}
	for {
		wid := e.rings[fn].Lookup(ev.Key)
		if wid == "" {
			e.counters.LostMachineDown.Add(1)
			e.lost.Record(fn, ev, engine.LossNoRoute)
			return
		}
		machine := e.workerMachine[wid]
		e.tracker.Inc()
		err := e.clu.Send(machine, wid, ev)
		switch {
		case err == nil:
			if !e.clu.IsLocal(machine) {
				// Handed off: the hosting node's tracker took the event
				// over when it landed (OnRemoteInflight).
				e.tracker.Dec()
				// A delivered batch proves the machine reachable; any
				// suspicion run it had accumulated resets.
				e.rec.Detector().ObserveSendOK(machine)
			}
			e.counters.Emitted.Add(1)
			return
		case err == cluster.ErrMachineDown:
			e.tracker.Dec()
			// Detect-on-send: the recovery detector notifies the master,
			// whose broadcast drives the failover protocol; the event
			// itself is lost and logged, not resent (Section 4.3).
			e.rec.Detector().ObserveSendFailure(machine)
			e.counters.LostMachineDown.Add(1)
			e.lost.Record(fn, ev, engine.LossMachineDown)
			return
		case cluster.IsTransient(err):
			e.tracker.Dec()
			// The bounded retry budget was exhausted by network blips;
			// the machine may be healthy. Raise suspicion — K
			// consecutive exhausted sends escalate to machine-down
			// through the detector — and account the loss under its own
			// reason so flaky-network losses stay distinguishable from
			// declared-dead losses.
			e.rec.Detector().ObserveTransientFailure(machine)
			e.counters.LostMachineDown.Add(1)
			e.lost.Record(fn, ev, engine.LossTransient)
			return
		case err == queue.ErrOverflow:
			e.tracker.Dec()
			if throttle {
				// Source throttling: slow the input stream down until
				// the queue accepts (Section 5).
				time.Sleep(200 * time.Microsecond)
				continue
			}
			switch e.cfg.QueuePolicy {
			case queue.Divert:
				if e.cfg.OverflowStream != "" && ev.Stream != e.cfg.OverflowStream {
					div := ev
					div.Stream = e.cfg.OverflowStream
					e.counters.Diverted.Add(1)
					e.route(div)
				} else {
					e.counters.LostOverflow.Add(1)
					e.lost.Record(fn, ev, engine.LossOverflow)
				}
			default:
				e.counters.LostOverflow.Add(1)
				e.lost.Record(fn, ev, engine.LossOverflow)
			}
			return
		case err == queue.ErrClosed:
			// The destination queue was closed between the liveness
			// check and the enqueue — the machine is crashing (or the
			// engine stopping) under us. Account it like any other
			// delivery to a dying machine; detection is left to the
			// next send, which fails with ErrMachineDown.
			e.tracker.Dec()
			e.counters.LostMachineDown.Add(1)
			e.lost.Record(fn, ev, engine.LossMachineDown)
			return
		default:
			e.tracker.Dec()
			e.counters.LostOverflow.Add(1)
			e.lost.Record(fn, ev, engine.LossOverflow)
			return
		}
	}
}

// Ingest feeds one external input event into the application (the
// paper's special mapper M0 reading from the input stream). It stamps
// the event's ingress time for latency measurement.
func (e *Engine) Ingest(ev event.Event) {
	if !e.app.IsInput(ev.Stream) {
		panic(fmt.Sprintf("engine1: Ingest on non-input stream %s", ev.Stream))
	}
	if ev.Seq == 0 {
		ev.Seq = e.seq.Add(1)
	}
	if ev.Ingress == 0 {
		ev.Ingress = time.Now().UnixNano()
	}
	e.counters.Ingested.Add(1)
	if e.app.IsOutput(ev.Stream) {
		e.sink.Record(ev)
	}
	for _, fn := range e.app.Subscribers(ev.Stream) {
		e.deliver(fn, ev, e.cfg.SourceThrottle)
	}
}

// IngestBatch feeds a batch of external input events into the
// application through the shared ingress driver, amortizing the
// per-event ingress costs per destination-machine group (one cluster
// exchange, and one queue lock per worker, however many deliveries the
// group carries). It returns the number of events whose every
// subscriber delivery was accepted; when deliveries were dropped, the
// error is a *ingress.BatchError tallying the losses by reason (each
// also recorded in LostEvents). A batch containing a non-input stream
// is rejected whole with *ingress.NotInputError before any side
// effects.
func (e *Engine) IngestBatch(evs []event.Event) (int, error) {
	return e.ing.IngestBatch(evs)
}

// IngestCtx ingests one event, reporting backpressure and overflow
// instead of silently dropping: while the destination queue is full
// the call retries until the context is done, then fails with an error
// wrapping ingress.ErrBackpressure.
func (e *Engine) IngestCtx(ctx context.Context, ev event.Event) error {
	return e.ing.IngestCtx(ctx, ev)
}

// ingressOps adapts the engine to the shared ingress driver. Muppet
// 1.0 routes <function, key> on the function's own ring to a worker
// ID, and groups by that worker's machine.
type ingressOps struct {
	e *Engine
}

func (o ingressOps) Stopped() bool                      { return o.e.stopped.Load() }
func (o ingressOps) IsInput(stream string) bool         { return o.e.app.IsInput(stream) }
func (o ingressOps) IsOutput(stream string) bool        { return o.e.app.IsOutput(stream) }
func (o ingressOps) Subscribers(stream string) []string { return o.e.app.Subscribers(stream) }
func (o ingressOps) NextSeq() uint64                    { return o.e.seq.Add(1) }
func (o ingressOps) RecordOutput(ev event.Event)        { o.e.sink.Record(ev) }
func (o ingressOps) FuncOf(worker string) string {
	if fn, ok := o.e.workerFn[worker]; ok {
		return fn
	}
	return worker
}
func (o ingressOps) Route(fn, key string) (string, string) {
	ring := o.e.rings[fn]
	if ring == nil {
		return "", ""
	}
	wid := ring.Lookup(key)
	if wid == "" {
		return "", ""
	}
	return o.e.workerMachine[wid], wid
}
func (o ingressOps) SendBatch(machine string, ds []cluster.Delivery) (int, []cluster.BatchReject, error) {
	accepted, rejects, err := o.e.clu.SendBatch(machine, ds)
	if err == nil && !o.e.clu.IsLocal(machine) {
		o.e.rec.Detector().ObserveSendOK(machine)
		if accepted > 0 {
			// The driver charged the tracker for the whole batch before
			// the send; accepted deliveries now belong to the hosting
			// node's tracker (it charged itself on landing), so retire
			// them here. The driver itself retires the rejects.
			o.e.tracker.Add(-accepted)
		}
	}
	return accepted, rejects, err
}
func (o ingressOps) Send(machine, worker string, ev event.Event) error {
	err := o.e.clu.Send(machine, worker, ev)
	if err == nil && !o.e.clu.IsLocal(machine) {
		o.e.tracker.Dec()
		o.e.rec.Detector().ObserveSendOK(machine)
	}
	return err
}
func (o ingressOps) ObserveSendFailure(machine string) {
	o.e.rec.Detector().ObserveSendFailure(machine)
}
func (o ingressOps) ObserveTransientFailure(machine string) {
	o.e.rec.Detector().ObserveTransientFailure(machine)
}
func (o ingressOps) Reroute(ev event.Event) { o.e.route(ev) }

// Subscribe attaches a live feed to a declared output stream: events
// arrive on the subscription's channel in publication order, and a
// slow subscriber's full buffer drops (and counts) rather than
// blocking workers. buf <= 0 selects the default buffer (256). Like
// Ingest on a non-input stream, subscribing to a stream the
// application does not declare as an output panics — the feed would
// never fire.
func (e *Engine) Subscribe(stream string, buf int) *engine.Subscription {
	if !e.app.IsOutput(stream) {
		panic(fmt.Sprintf("engine1: Subscribe on non-output stream %s", stream))
	}
	return e.sink.Subscribe(stream, buf)
}

// AttachOutput registers a synchronous handler for a declared output
// stream's events — the pluggable egress sink. It panics if the
// stream is not a declared output.
func (e *Engine) AttachOutput(stream string, h engine.OutputHandler) {
	if !e.app.IsOutput(stream) {
		panic(fmt.Sprintf("engine1: AttachOutput on non-output stream %s", stream))
	}
	e.sink.Attach(stream, h)
}

// Drain blocks until every accepted event has been fully processed.
func (e *Engine) Drain() { e.tracker.Wait() }

// Stop drains, halts all workers, flushes dirty slates to the store,
// and closes the cluster transport. It is idempotent.
func (e *Engine) Stop() {
	if e.stopped.Swap(true) {
		return
	}
	e.tracker.Wait()
	e.stopMu.Lock()
	close(e.flushers)
	for _, w := range e.workers {
		w.queue().Close()
	}
	e.wg.Wait()
	e.stopMu.Unlock()
	for _, w := range e.workers {
		w.cache.FlushDirty()
	}
	// Close the egress sink last: subscriber channels close only after
	// every in-flight event has been recorded.
	e.sink.Close()
	e.clu.Close()
}

// CrashMachine simulates a machine failure with the stock §4.3
// disposition, via the shared recovery subsystem: the machine stops
// accepting events, every queued event and dirty slate on it is lost
// (and logged), and flush batches retained in the slate group-commit
// WAL are replayed into the store. Detection is left to the next
// failed send.
func (e *Engine) CrashMachine(machine string) (lostQueued int, lostDirtySlates int) {
	rep := e.rec.Crash(machine)
	return rep.QueuedLost, rep.DirtyLost
}

// RejoinMachine revives a crashed machine through the recovery
// subsystem: its workers restart on fresh queues, the master
// broadcasts the rejoin, the rings re-enable its workers, and their
// slate caches are warmed from the durable store (unless disabled by
// Config.Recovery).
func (e *Engine) RejoinMachine(machine string) (recovery.RejoinReport, error) {
	return e.rec.Rejoin(machine)
}

// RecoveryStatus snapshots the recovery subsystem: per-machine
// liveness and ring membership, failover/rejoin counters, WAL replay
// totals, and the latest incident reports.
func (e *Engine) RecoveryStatus() recovery.Status { return e.rec.Status() }

// Recovery exposes the engine's recovery manager (for latency
// histograms and tests).
func (e *Engine) Recovery() *recovery.Manager { return e.rec }

// recoveryAdapter is the engine's implementation of the recovery
// subsystem's engine-facing surface (recovery.Adapter). Muppet 1.0
// spreads each function's workers across machines, so ring membership
// is per worker ID on per-function rings.
type recoveryAdapter struct {
	e *Engine
}

func (a *recoveryAdapter) RemoveFromRing(machine string) {
	// workerFn, not workers: ring membership must flip for workers any
	// node hosts, and this node has no worker struct for remote ones.
	for wid, wm := range a.e.workerMachine {
		if wm != machine {
			continue
		}
		a.e.rings[a.e.workerFn[wid]].Disable(wid)
	}
}

func (a *recoveryAdapter) RestoreToRing(machine string) {
	for wid, wm := range a.e.workerMachine {
		if wm != machine {
			continue
		}
		a.e.rings[a.e.workerFn[wid]].Enable(wid)
	}
}

func (a *recoveryAdapter) DrainQueues(machine string, drained func(function string, ev event.Event)) {
	for wid, wm := range a.e.workerMachine {
		if wm != machine {
			continue
		}
		w := a.e.workers[wid]
		if w == nil {
			continue // hosted by another node; its queues die there
		}
		// Drain closes the queue atomically, so the worker's loops exit
		// immediately instead of consuming a backlog a dead machine
		// could never have processed.
		for _, ev := range w.queue().Drain() {
			drained(w.fn.Name(), ev)
			a.e.tracker.Dec()
		}
	}
}

func (a *recoveryAdapter) CrashSlates(machine string) ([]*wal.SlateBatchLog, int) {
	var wals []*wal.SlateBatchLog
	dirtyLost := 0
	for wid, wm := range a.e.workerMachine {
		if wm != machine {
			continue
		}
		w := a.e.workers[wid]
		if w == nil {
			continue // hosted by another node; its caches die there
		}
		if s, ok := w.cache.(*slate.Sharded); ok {
			wals = append(wals, s.WAL())
		}
		dirtyLost += w.cache.Crash()
	}
	return wals, dirtyLost
}

// UnackedEvents: Muppet 1.0 keeps no delivery replay log.
func (a *recoveryAdapter) UnackedEvents(machine string) []engine.Envelope { return nil }

func (a *recoveryAdapter) Redeliver(function string, ev event.Event) {
	a.e.deliver(function, ev, false)
}

func (a *recoveryAdapter) RestartWorkers(machine string) {
	// Under stopMu: Stop cannot begin (or finish) its wg.Wait while
	// fresh loops are being added, and once Stop has swapped stopped we
	// refuse to start any.
	a.e.stopMu.Lock()
	defer a.e.stopMu.Unlock()
	if a.e.stopped.Load() {
		return
	}
	for wid, wm := range a.e.workerMachine {
		if wm != machine {
			continue
		}
		w := a.e.workers[wid]
		if w == nil {
			continue // hosted by another node; it restarts them
		}
		// Updates mid-process at crash time completed against the
		// already-crashed cache and re-inserted dead-lineage values;
		// drop them so they cannot shadow the store once the ring
		// routes the keys back here.
		for _, k := range w.cache.Keys() {
			w.cache.Delete(k)
		}
		w.q.Replace(queue.New[event.Event](a.e.cfg.QueueCapacity, a.e.cfg.QueuePolicy))
		a.e.startWorker(w)
	}
}

func (a *recoveryAdapter) FlushSlates() { a.e.FlushSlates() }

func (a *recoveryAdapter) DropMisplacedSlates() {
	for wid, w := range a.e.workers {
		ring := a.e.rings[w.fn.Name()]
		var misplaced []slate.Key
		for _, k := range w.cache.Keys() {
			if ring.Lookup(k.Key) != wid {
				misplaced = append(misplaced, k)
			}
		}
		if len(misplaced) == 0 {
			continue
		}
		// An update that slipped in between the handover flush and the
		// ring flip may have re-dirtied a moved key; persist it before
		// the eviction or the count would silently vanish. If the store
		// is unreachable, keep the entries — a stale-copy hazard beats
		// dropping dirty data, and the next ring change retries.
		if _, err := w.cache.FlushDirty(); err != nil {
			continue
		}
		for _, k := range misplaced {
			w.cache.Delete(k)
		}
	}
}

func (a *recoveryAdapter) WarmSlates(machine string, limit int) int {
	if a.e.cfg.Store == nil {
		return 0
	}
	// Group the machine's update workers by function so each updater's
	// column is scanned once, not once per worker.
	byUpdater := make(map[string][]string)
	for wid, wm := range a.e.workerMachine {
		if wm != machine {
			continue
		}
		if w := a.e.workers[wid]; w != nil && w.fn.Kind == core.KindUpdate {
			byUpdater[w.fn.Name()] = append(byUpdater[w.fn.Name()], wid)
		}
	}
	// Collect the workers' keys first: the store holds its node lock
	// across the scan callback, so the load-through reads must happen
	// after the scan returns. ScanUntil stops at the warm limit rather
	// than sweeping the whole store.
	type warmKey struct {
		wid string
		k   slate.Key
	}
	var keys []warmKey
	for updater, wids := range byUpdater {
		if len(keys) >= limit {
			break
		}
		owned := make(map[string]bool, len(wids))
		for _, wid := range wids {
			owned[wid] = true
		}
		a.e.cfg.Store.ScanUntil(updater, func(key string, _ []byte) bool {
			if wid := a.e.rings[updater].Lookup(key); owned[wid] {
				k := slate.Key{Updater: updater, Key: key}
				if _, ok := a.e.workers[wid].cache.Peek(k); !ok {
					keys = append(keys, warmKey{wid: wid, k: k})
				}
			}
			return len(keys) < limit
		})
	}
	warmed := 0
	for _, wk := range keys {
		// Get loads through from the store and caches the slate clean —
		// exactly the state a warm cache should be in.
		if v, err := a.e.workers[wk.wid].cache.Get(wk.k); err == nil && v != nil {
			warmed++
		}
	}
	return warmed
}

// RingMembers reports a machine as in the ring when any of its workers
// is still enabled on its function's ring.
func (a *recoveryAdapter) RingMembers() map[string]bool {
	out := make(map[string]bool)
	for wid, wm := range a.e.workerMachine {
		enabled := !a.e.rings[a.e.workerFn[wid]].Disabled(wid)
		out[wm] = out[wm] || enabled
	}
	return out
}

// Slate returns the current slate for <updater, key>, reading the
// owning worker's cache (and falling through to the durable store on a
// cache miss). It returns nil if no slate exists. When the owning
// worker lives on another node, the local read falls back to the
// shared durable store; without a store it returns nil — query the
// owning node.
func (e *Engine) Slate(updater, key string) []byte {
	ring := e.rings[updater]
	if ring == nil {
		return nil
	}
	wid := ring.Lookup(key)
	if wid == "" {
		return nil
	}
	w := e.workers[wid]
	if w == nil {
		if st := e.storeFor(); st != nil {
			v, _, _ := st.Load(slate.Key{Updater: updater, Key: key})
			return v
		}
		return nil
	}
	v, _ := w.cache.Get(slate.Key{Updater: updater, Key: key})
	return v
}

// Slates returns all cached slates of an updater merged across its
// workers (cache contents only; evicted slates must be read through
// Slate).
func (e *Engine) Slates(updater string) map[string][]byte {
	out := make(map[string][]byte)
	for wid, w := range e.workers {
		if e.workers[wid].fn.Name() != updater {
			continue
		}
		for _, k := range w.cache.Keys() {
			if v, ok := w.cache.Peek(k); ok {
				out[k.Key] = v
			}
		}
	}
	return out
}

// StoredSlates bulk-reads all of an updater's slates from the durable
// key-value store (the "large-volume row reads" path of Section 5).
// It returns nil when the engine runs without persistence. Callers
// should flush first if they need the newest state; the cache, not the
// store, is the up-to-date view (Section 4.4).
func (e *Engine) StoredSlates(updater string) map[string][]byte {
	if e.cfg.Store == nil {
		return nil
	}
	out := make(map[string][]byte)
	e.cfg.Store.Scan(updater, func(key string, stored []byte) {
		raw, err := slate.Decode(stored)
		if err != nil {
			return
		}
		out[key] = raw
	})
	return out
}

// FlushSlates forces every dirty cached slate to the durable store.
func (e *Engine) FlushSlates() {
	for _, w := range e.workers {
		w.cache.FlushDirty()
	}
}

// Output returns the recorded events of a declared output stream.
func (e *Engine) Output(stream string) []event.Event { return e.sink.Events(stream) }

// LostEvents exposes the log of abandoned deliveries ("logged as
// lost", §4.3) for later processing and debugging.
func (e *Engine) LostEvents() *engine.LostLog { return e.lost }

// Stats snapshots the engine counters.
func (e *Engine) Stats() engine.Stats {
	s := e.counters.Snapshot()
	s.OutputDropped = e.sink.Dropped()
	return s
}

// Counters exposes the live counters (for latency percentiles).
func (e *Engine) Counters() *engine.Counters { return e.counters }

// Cluster exposes the simulated machine cluster (for failure
// injection in tests and benches).
func (e *Engine) Cluster() *cluster.Cluster { return e.clu }

// WorkerFor reports which worker owns <key, fn> right now; tests use
// it to assert the single-writer property.
func (e *Engine) WorkerFor(fn, key string) string {
	if r := e.rings[fn]; r != nil {
		return r.Lookup(key)
	}
	return ""
}

// QueueStats returns per-worker queue statistics keyed by worker ID.
func (e *Engine) QueueStats() map[string]queue.Stats {
	out := make(map[string]queue.Stats, len(e.workers))
	for id, w := range e.workers {
		out[id] = w.qstats()
	}
	return out
}

// LargestQueues returns the depth of the most loaded worker queue per
// machine, the figure the status endpoint reports.
func (e *Engine) LargestQueues() map[string]int {
	out := make(map[string]int)
	for _, name := range e.clu.MachineNames() {
		out[name] = 0
	}
	for wid, w := range e.workers {
		m := e.workerMachine[wid]
		if l := w.queue().Len(); l > out[m] {
			out[m] = l
		}
	}
	return out
}

// Updaters returns the application's update function names.
func (e *Engine) Updaters() []string { return e.app.Updaters() }

// MachineAccepted returns the number of deliveries accepted per
// machine.
func (e *Engine) MachineAccepted() map[string]uint64 {
	out := make(map[string]uint64)
	for wid, w := range e.workers {
		out[e.workerMachine[wid]] += w.qstats().Accepted
	}
	return out
}

// CacheTotals returns aggregate (store loads, hits, misses) across all
// worker caches.
func (e *Engine) CacheTotals() (loads, hits, misses uint64) {
	for _, w := range e.workers {
		s := w.cache.Stats()
		loads += s.StoreLoads
		hits += s.Hits
		misses += s.Misses
	}
	return loads, hits, misses
}

// StoreSaves returns the total slate writes issued to the durable
// store across all worker caches.
func (e *Engine) StoreSaves() uint64 {
	var total uint64
	for _, w := range e.workers {
		total += w.cache.Stats().StoreSaves
	}
	return total
}

// MaxQueueDepth returns the deepest any worker queue ever got.
func (e *Engine) MaxQueueDepth() int {
	max := 0
	for _, w := range e.workers {
		if d := w.qstats().MaxDepth; d > max {
			max = d
		}
	}
	return max
}

// AcceptedPerQueue returns the accepted-delivery count of every worker
// queue.
func (e *Engine) AcceptedPerQueue() []uint64 {
	var out []uint64
	for _, w := range e.workers {
		out = append(out, w.qstats().Accepted)
	}
	return out
}

// FlushStats aggregates the workers' group-commit flush counters.
func (e *Engine) FlushStats() slate.FlushStats {
	var total slate.FlushStats
	for _, w := range e.workers {
		if s, ok := w.cache.(*slate.Sharded); ok {
			total.Add(s.FlushStats())
		}
	}
	return total
}

// CacheStats aggregates slate-cache statistics across all workers of
// the given updater.
func (e *Engine) CacheStats(updater string) slate.CacheStats {
	var total slate.CacheStats
	for _, w := range e.workers {
		if w.fn.Name() != updater {
			continue
		}
		s := w.cache.Stats()
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.StoreLoads += s.StoreLoads
		total.StoreSaves += s.StoreSaves
		total.Evictions += s.Evictions
		total.DirtyLost += s.DirtyLost
		total.DecodeErrors += s.DecodeErrors
		total.EncodeErrors += s.EncodeErrors
		total.Size += s.Size
	}
	return total
}
