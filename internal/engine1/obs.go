package engine1

import (
	"muppet/internal/obs"
	"muppet/internal/queue"
	"muppet/internal/slate"
)

// registerObs wires every subsystem this engine owns into its metrics
// registry: engine counters, per-worker queue accounting, the
// disparate per-worker slate caches and their group-commit flushing,
// the durable kvstore and its simulated devices, the cluster
// transport, the recovery manager, and (when enabled) the lifecycle
// tracer. Collectors are closures over the subsystems' existing
// snapshots, so scrapes read live counters and the hot path pays
// nothing.
func (e *Engine) registerObs() {
	obs.RegisterEngineStats(e.reg, e.Stats)
	obs.RegisterLatency(e.reg, e.counters)
	obs.RegisterTracker(e.reg, e.tracker)
	obs.RegisterLostLog(e.reg, e.lost)
	obs.RegisterQueryStats(e.reg, e.queries)
	obs.RegisterQueueStats(e.reg, e.aggregateQueueStats, e.LargestQueues)
	obs.RegisterCacheStats(e.reg, e.SlateCacheStats)
	obs.RegisterFlushStats(e.reg, e.FlushStats)
	// 1.0 keeps one private cache per worker; each registers its flush
	// histograms and WAL counters under its worker ID so per-worker
	// flush behavior stays visible.
	for id, w := range e.workers {
		if s, ok := w.cache.(*slate.Sharded); ok {
			obs.RegisterShardedStore(e.reg, id, s)
		}
	}
	obs.RegisterCluster(e.reg, e.clu)
	if e.cfg.Store != nil {
		obs.RegisterKVStore(e.reg, e.cfg.Store)
	}
	e.rec.RegisterObs(e.reg)
	if e.tracer != nil {
		e.reg.Register(e.tracer)
	}
}

// aggregateQueueStats folds every worker queue's lifetime counters
// (including queues retired by crash/revive cycles) into one
// engine-wide view.
func (e *Engine) aggregateQueueStats() queue.Stats {
	var total queue.Stats
	for _, w := range e.workers {
		total.Add(w.qstats())
	}
	return total
}

// Metrics exposes the engine's observability registry; httpapi serves
// it as /metrics and /statsz.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// Tracer exposes the lifecycle tracer, nil when tracing is disabled.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// SlateCacheStats aggregates slate-cache statistics across every
// worker cache, under the name shared with the 2.0 engine (whose
// per-updater breakdown is CacheStats).
func (e *Engine) SlateCacheStats() slate.CacheStats {
	var total slate.CacheStats
	for _, w := range e.workers {
		s := w.cache.Stats()
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.StoreLoads += s.StoreLoads
		total.StoreSaves += s.StoreSaves
		total.Evictions += s.Evictions
		total.DirtyLost += s.DirtyLost
		total.DecodeErrors += s.DecodeErrors
		total.EncodeErrors += s.EncodeErrors
		total.Size += s.Size
	}
	return total
}
