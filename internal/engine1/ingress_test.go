package engine1

import (
	"context"
	"errors"
	"strconv"
	"testing"
	"time"

	"muppet/internal/core"
	"muppet/internal/event"
	"muppet/internal/ingress"
	"muppet/internal/queue"
)

func TestIngestBatchMatchesPerEventResults(t *testing.T) {
	per, err := New(counterApp(), Config{Machines: 3, WorkersPerFunction: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer per.Stop()
	bat, err := New(counterApp(), Config{Machines: 3, WorkersPerFunction: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer bat.Stop()

	retailers := []string{"walmart", "bestbuy", "target"}
	var evs []event.Event
	for i := 0; i < 300; i++ {
		evs = append(evs, checkin(i+1, retailers[i%len(retailers)]))
	}
	for _, ev := range evs {
		per.Ingest(ev)
	}
	for i := 0; i < len(evs); i += 64 {
		end := i + 64
		if end > len(evs) {
			end = len(evs)
		}
		if n, err := bat.IngestBatch(evs[i:end]); err != nil || n != end-i {
			t.Fatalf("batch: n=%d err=%v", n, err)
		}
	}
	per.Drain()
	bat.Drain()
	for _, r := range retailers {
		if p, b := string(per.Slate("U1", r)), string(bat.Slate("U1", r)); p != b {
			t.Fatalf("%s: per-event=%q batched=%q", r, p, b)
		}
	}
}

func TestIngestBatchOverflowDropLandsInLostLog(t *testing.T) {
	slow := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		time.Sleep(200 * time.Microsecond)
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	app := core.NewApp("slow").Input("S1").AddUpdate(slow, []string{"S1"}, nil, 0)
	e, err := New(app, Config{
		Machines: 1, WorkersPerFunction: 1,
		QueueCapacity: 8, QueuePolicy: queue.Drop,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	evs := make([]event.Event, 400)
	for i := range evs {
		evs[i] = event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"}
	}
	accepted, ierr := e.IngestBatch(evs)
	e.Drain()
	var be *ingress.BatchError
	if !errors.As(ierr, &be) {
		t.Fatalf("err = %v, want *BatchError (accepted=%d)", ierr, accepted)
	}
	if be.Reasons["batch-partial"] == 0 {
		t.Fatalf("reasons = %v", be.Reasons)
	}
	if e.LostEvents().Totals()["batch-partial"] != uint64(be.Dropped) {
		t.Fatalf("lost log totals = %v, want batch-partial=%d", e.LostEvents().Totals(), be.Dropped)
	}
}

func TestIngestCtxBlocksUntilAcceptedOrExpired(t *testing.T) {
	slow := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		time.Sleep(200 * time.Microsecond)
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	app := core.NewApp("slow").Input("S1").AddUpdate(slow, []string{"S1"}, nil, 0)
	e, err := New(app, Config{
		Machines: 1, WorkersPerFunction: 1,
		QueueCapacity: 4, QueuePolicy: queue.Drop,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	n := 100
	for i := 0; i < n; i++ {
		if err := e.IngestCtx(ctx, event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"}); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	e.Drain()
	if got, _ := strconv.Atoi(string(e.Slate("U", "hot"))); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
}

func TestSubscribeAndBoundedOutput(t *testing.T) {
	m := core.MapFunc{FName: "M", Fn: func(emit core.Emitter, in event.Event) {
		emit.Publish("S2", in.Key, nil)
	}}
	app := core.NewApp("out").Input("S1").Output("S2").AddMap(m, []string{"S1"}, []string{"S2"})
	e, err := New(app, Config{Machines: 2, OutputCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	sub := e.Subscribe("S2", 1024)
	n := 60
	for i := 0; i < n; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "k"})
	}
	e.Stop()
	live := 0
	for range sub.C() {
		live++
	}
	if live != n {
		t.Fatalf("subscription saw %d, want %d", live, n)
	}
	if got := len(e.Output("S2")); got != 8 {
		t.Fatalf("bounded Output retains %d, want 8", got)
	}
	if st := e.Stats(); st.OutputDropped != uint64(n-8) {
		t.Fatalf("OutputDropped = %d, want %d", st.OutputDropped, n-8)
	}
}
