package wal

import (
	"fmt"
	"sync"
	"testing"

	"muppet/internal/engine"
	"muppet/internal/event"
)

func env(i int) engine.Envelope {
	return engine.Envelope{Func: "U", Ev: event.Event{Key: fmt.Sprintf("k%d", i), Seq: uint64(i)}}
}

func TestAppendAckLifecycle(t *testing.T) {
	l := New()
	s1 := l.Append(env(1))
	s2 := l.Append(env(2))
	if s1 == s2 {
		t.Fatal("duplicate sequence numbers")
	}
	l.Ack(s1)
	un := l.Unacked()
	if len(un) != 1 || un[0].Ev.Seq != 2 {
		t.Fatalf("unacked = %v", un)
	}
}

func TestUnackedOrderedAndDraining(t *testing.T) {
	l := New()
	for i := 0; i < 50; i++ {
		l.Append(env(i))
	}
	un := l.Unacked()
	if len(un) != 50 {
		t.Fatalf("len = %d", len(un))
	}
	for i := 1; i < len(un); i++ {
		if un[i].Ev.Seq < un[i-1].Ev.Seq {
			t.Fatal("unacked not in sequence order")
		}
	}
	if again := l.Unacked(); again != nil {
		t.Fatalf("second drain returned %v", again)
	}
}

func TestAckUnknownIsNoop(t *testing.T) {
	l := New()
	l.Ack(999)
	if _, acks, _ := l.Stats(); acks != 0 {
		t.Fatal("phantom ack counted")
	}
}

func TestStats(t *testing.T) {
	l := New()
	s := l.Append(env(1))
	l.Append(env(2))
	l.Ack(s)
	appends, acks, pending := l.Stats()
	if appends != 2 || acks != 1 || pending != 1 {
		t.Fatalf("stats = %d %d %d", appends, acks, pending)
	}
}

func TestConcurrentAppendAck(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				seq := l.Append(env(g*500 + i))
				l.Ack(seq)
			}
		}(g)
	}
	wg.Wait()
	appends, acks, pending := l.Stats()
	if appends != 2000 || acks != 2000 || pending != 0 {
		t.Fatalf("stats = %d %d %d", appends, acks, pending)
	}
}
