package wal

import (
	"fmt"
	"sync"
	"testing"
)

func rec(key, val string) SlateRecord {
	return SlateRecord{Updater: "U", Key: key, Value: []byte(val)}
}

func TestSlateBatchLogAppendReplay(t *testing.T) {
	l := NewSlateBatchLog()
	if seq := l.AppendBatch([]SlateRecord{rec("a", "1"), rec("b", "1")}); seq != 1 {
		t.Fatalf("first batch seq = %d", seq)
	}
	if seq := l.AppendBatch([]SlateRecord{rec("a", "2")}); seq != 2 {
		t.Fatalf("second batch seq = %d", seq)
	}
	final := map[string]string{}
	applied, err := l.Replay(func(r SlateRecord) error {
		final[r.Key] = string(r.Value)
		return nil
	})
	if err != nil || applied != 3 {
		t.Fatalf("replay = %d, %v", applied, err)
	}
	// Newer batches replay later: a's final value is the round-2 write.
	if final["a"] != "2" || final["b"] != "1" {
		t.Fatalf("final state = %v", final)
	}
}

func TestSlateBatchLogCopiesRecords(t *testing.T) {
	l := NewSlateBatchLog()
	v := []byte("before")
	l.AppendBatch([]SlateRecord{{Updater: "U", Key: "k", Value: v}})
	copy(v, []byte("mutate"))
	l.Replay(func(r SlateRecord) error {
		if string(r.Value) != "before" {
			t.Fatalf("log aliased caller buffer: %q", r.Value)
		}
		return nil
	})
}

func TestSlateBatchLogReplayStopsOnError(t *testing.T) {
	l := NewSlateBatchLog()
	l.AppendBatch([]SlateRecord{rec("a", "1"), rec("b", "1"), rec("c", "1")})
	applied, err := l.Replay(func(r SlateRecord) error {
		if r.Key == "b" {
			return fmt.Errorf("store down")
		}
		return nil
	})
	if err == nil || applied != 1 {
		t.Fatalf("replay = %d, %v; want 1, error", applied, err)
	}
}

func TestSlateBatchLogTruncateKeepsCounters(t *testing.T) {
	l := NewSlateBatchLog()
	l.AppendBatch([]SlateRecord{rec("a", "1")})
	l.AppendBatch([]SlateRecord{rec("b", "1")})
	l.Truncate()
	batches, records, retained := l.Stats()
	if batches != 2 || records != 2 || retained != 0 {
		t.Fatalf("stats after truncate = %d/%d/%d", batches, records, retained)
	}
	if n, _ := l.Replay(func(SlateRecord) error { return nil }); n != 0 {
		t.Fatalf("replay after truncate applied %d", n)
	}
	// Sequence numbers keep rising after a checkpoint.
	if seq := l.AppendBatch([]SlateRecord{rec("c", "1")}); seq != 3 {
		t.Fatalf("seq after truncate = %d, want 3", seq)
	}
}

func TestSlateBatchLogAbortBatch(t *testing.T) {
	l := NewSlateBatchLog()
	l.AppendBatch([]SlateRecord{rec("a", "1")})
	seq2 := l.AppendBatch([]SlateRecord{rec("b", "1"), rec("c", "1")})
	l.AbortBatch(seq2)
	if _, records, retained := l.Stats(); retained != 1 || records != 1 {
		t.Fatalf("after abort: retained=%d records=%d, want 1/1", retained, records)
	}
	applied, _ := l.Replay(func(r SlateRecord) error {
		if r.Key != "a" {
			t.Fatalf("aborted record %q replayed", r.Key)
		}
		return nil
	})
	if applied != 1 {
		t.Fatalf("replayed %d, want 1", applied)
	}
	// Aborting an unknown or already-aborted seq is a no-op.
	l.AbortBatch(seq2)
	l.AbortBatch(999)
	if _, _, retained := l.Stats(); retained != 1 {
		t.Fatalf("retained = %d after no-op aborts", retained)
	}
}

func TestSlateBatchLogConcurrent(t *testing.T) {
	l := NewSlateBatchLog()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.AppendBatch([]SlateRecord{rec(fmt.Sprintf("w%d-%d", w, i), "v")})
				if i%10 == 0 {
					l.Replay(func(SlateRecord) error { return nil })
				}
			}
		}(w)
	}
	wg.Wait()
	batches, records, retained := l.Stats()
	if batches != 400 || records != 400 || retained != 400 {
		t.Fatalf("stats = %d/%d/%d", batches, records, retained)
	}
}
