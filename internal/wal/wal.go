package wal

import (
	"sync"

	"muppet/internal/engine"
)

// Log is a per-machine replay log. It is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	next    uint64
	pending map[uint64]engine.Envelope
	appends uint64
	acks    uint64
}

// New returns an empty log.
func New() *Log {
	return &Log{next: 1, pending: make(map[uint64]engine.Envelope)}
}

// Append records an accepted delivery and returns its sequence number.
func (l *Log) Append(env engine.Envelope) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.next
	l.next++
	l.pending[seq] = env
	l.appends++
	return seq
}

// Ack marks a delivery fully processed; its log entry is dropped.
// Acknowledging an unknown sequence is a no-op (it can happen when a
// crash handler drained the log concurrently).
func (l *Log) Ack(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.pending[seq]; ok {
		delete(l.pending, seq)
		l.acks++
	}
}

// Unacked drains and returns every unacknowledged delivery, in
// sequence order. After Unacked the log is empty; the caller owns
// redelivery.
func (l *Log) Unacked() []engine.Envelope {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pending) == 0 {
		return nil
	}
	seqs := make([]uint64, 0, len(l.pending))
	for s := range l.pending {
		seqs = append(seqs, s)
	}
	// Insertion sort is fine at crash-recovery scale.
	for i := 1; i < len(seqs); i++ {
		for j := i; j > 0 && seqs[j] < seqs[j-1]; j-- {
			seqs[j], seqs[j-1] = seqs[j-1], seqs[j]
		}
	}
	out := make([]engine.Envelope, len(seqs))
	for i, s := range seqs {
		out[i] = l.pending[s]
		delete(l.pending, s)
	}
	return out
}

// Stats reports lifetime appends, acks, and the current pending count.
func (l *Log) Stats() (appends, acks uint64, pending int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.acks, len(l.pending)
}
