// Slate group-commit batch log. Where Log (replay.go's concern) records
// individual event deliveries, SlateBatchLog records whole flush
// batches: every group-commit of dirty slates appends one record batch
// before the batch is written to the key-value store. Replaying the log
// into a store reconstructs every slate the flusher ever persisted,
// which is what makes batch flushing verifiable: a crash between the
// WAL append and the store write loses no acknowledged flush.
//
// Substitution note: like Log, the batch log is in-memory because the
// "machine" is simulated; a deployment would put it on durable local
// storage. The preserved behavior is the group-commit protocol —
// WAL-append first, store-write second, replay on recovery.

package wal

import (
	"sync"
	"time"
)

// SlateRecord is one slate write inside a group-commit batch.
type SlateRecord struct {
	// Updater and Key identify the slate (row Key, column Updater in
	// the store's layout).
	Updater string
	Key     string
	// Value is the raw (uncompressed) slate at flush time.
	Value []byte
	// TTL is the slate's shelf life; zero means forever.
	TTL time.Duration
}

// slateBatch is one retained batch with its sequence number.
type slateBatch struct {
	seq  uint64
	recs []SlateRecord
}

// SlateBatchLog is an append-only log of group-commit flush batches.
// It is safe for concurrent use.
type SlateBatchLog struct {
	mu      sync.Mutex
	batches []slateBatch
	seq     uint64 // batches appended over the log's lifetime
	records uint64
}

// NewSlateBatchLog returns an empty batch log.
func NewSlateBatchLog() *SlateBatchLog {
	return &SlateBatchLog{}
}

// AppendBatch records one flush batch and returns its 1-based batch
// sequence number. The records (and their values) are copied, so the
// caller may reuse its buffers.
func (l *SlateBatchLog) AppendBatch(recs []SlateRecord) uint64 {
	cp := make([]SlateRecord, len(recs))
	for i, r := range recs {
		r.Value = append([]byte(nil), r.Value...)
		cp[i] = r
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	l.batches = append(l.batches, slateBatch{seq: l.seq, recs: cp})
	l.records += uint64(len(cp))
	return l.seq
}

// AbortBatch drops the batch with the given sequence number, if still
// retained. The group-commit flusher calls it when the store write for
// an appended batch fails: the records stay dirty in the cache and
// will be re-appended by the retry flush, so keeping the failed
// attempt would only duplicate them (unbounded growth across a long
// store outage).
func (l *SlateBatchLog) AbortBatch(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, b := range l.batches {
		if b.seq == seq {
			l.batches = append(l.batches[:i], l.batches[i+1:]...)
			l.records -= uint64(len(b.recs))
			return
		}
	}
}

// Replay calls fn for every record in append order — within a batch,
// records replay in their batch order; across batches, oldest first.
// Later writes of the same slate therefore overwrite earlier ones,
// reconstructing the store's final flushed state. Replay stops at the
// first error and returns it along with the number of records applied.
func (l *SlateBatchLog) Replay(fn func(SlateRecord) error) (int, error) {
	l.mu.Lock()
	snapshot := make([]slateBatch, len(l.batches))
	copy(snapshot, l.batches)
	l.mu.Unlock()
	applied := 0
	for _, batch := range snapshot {
		for _, r := range batch.recs {
			if err := fn(r); err != nil {
				return applied, err
			}
			applied++
		}
	}
	return applied, nil
}

// Truncate discards all recorded batches (a checkpoint: the store is
// known durable up to here). Lifetime counters are preserved.
func (l *SlateBatchLog) Truncate() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.batches = nil
}

// Stats reports the lifetime batch count, the record count net of
// aborted batches, and the number of batches currently retained.
func (l *SlateBatchLog) Stats() (batches, records uint64, retained int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq, l.records, len(l.batches)
}
