// Package wal implements the event replay log the paper names as
// future work: "Developing a replay capability to recover the lost
// events is a subject of future work" (Section 4.3).
//
// Each machine appends every delivery it accepts to a log and
// acknowledges it once the event is fully processed. When the machine
// dies, the unacknowledged suffix is exactly the set of events the
// stock Muppet would lose (queued plus in-flight); the engine replays
// them to the keys' new owners. The package also holds the slate
// group-commit batch log: the flusher records a dirty-slate batch
// before writing it to the store, and recovery replays incomplete
// batches so a crash between "flushed" and "stored" loses nothing.
//
// # Contract
//
// Append returns a sequence number; Ack marks that record processed;
// Unacked returns the unacknowledged records in append order — the
// replay set. Replay is at-least-once: an event processed but not yet
// acknowledged at crash time is replayed and applied twice.
// Exactly-once would additionally need idempotence or deduplication
// in the updaters.
//
// # Concurrency
//
// Each log is guarded by a single mutex; producers (queue consumers
// appending and acknowledging) and the recovery manager (draining the
// unacknowledged suffix) may touch it concurrently. Recovery drains a
// log only after the machine's workers have been stopped, so the
// suffix it reads is final.
//
// Substitution note: in a real deployment the log would live on
// durable local storage or a replicated log service so it survives
// the crash; here it survives because the "machine" is simulated. The
// preserved behavior is the recovery protocol, not the storage
// medium.
package wal
