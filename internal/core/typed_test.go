package core

import (
	"errors"
	"strings"
	"testing"

	"muppet/internal/event"
)

type testSlate struct {
	N    int      `json:"n"`
	Tags []string `json:"tags,omitempty"`
}

func TestTypedUpdaterCarriesCodecOnSpec(t *testing.T) {
	u := Update[testSlate]("U", func(Emitter, event.Event, *testSlate) {})
	app := NewApp("x").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
	spec := app.Function("U")
	if spec == nil || spec.Codec == nil {
		t.Fatal("typed updater did not carry a codec onto its FunctionSpec")
	}
	if untyped := NewApp("y").Input("S1").
		AddUpdate(noopUpdate("U"), []string{"S1"}, nil, 0).Function("U"); untyped.Codec != nil {
		t.Fatal("classic updater must not carry a codec")
	}
}

func TestErasedCodecRoundTrip(t *testing.T) {
	u := Update[testSlate]("U", nil).(*typedUpdater[testSlate])
	c := u.SlateCodec()
	fresh := c.New()
	if s, ok := fresh.(*testSlate); !ok || s == nil || s.N != 0 {
		t.Fatalf("New = %#v", fresh)
	}
	v, err := c.Decode([]byte(`{"n":3,"tags":["a"]}`))
	if err != nil {
		t.Fatal(err)
	}
	s := v.(*testSlate)
	if s.N != 3 || len(s.Tags) != 1 {
		t.Fatalf("decoded %#v", s)
	}
	s.N++
	b, err := c.AppendEncode(nil, s)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"n":4,"tags":["a"]}` {
		t.Fatalf("encoded %q", b)
	}
	if _, err := c.Decode([]byte("not json")); err == nil {
		t.Fatal("decode of garbage succeeded")
	}
}

// TestTypedUpdaterByteFallbackMatchesDecodedPath runs the same typed
// function through both invocation surfaces — the byte-slate Update
// used by the Reference executor and the UpdateDecoded used by the
// engines — and asserts they produce the same slate bytes.
func TestTypedUpdaterByteFallbackMatchesDecodedPath(t *testing.T) {
	mk := func() Updater {
		return Update[testSlate]("U", func(emit Emitter, in event.Event, s *testSlate) {
			s.N++
			s.Tags = append(s.Tags, string(in.Value))
		})
	}
	ev := event.Event{Stream: "S1", TS: 1, Key: "k", Value: []byte("t")}

	// Byte path: a capture emitter records ReplaceSlate.
	var replaced []byte
	cap := &captureEmitter{onReplace: func(b []byte) { replaced = b }}
	bytesU := mk()
	bytesU.Update(cap, ev, nil)
	bytesU.Update(cap, ev, replaced)

	// Decoded path: mutate the object twice, encode once at the end.
	decU := mk().(DecodedUpdater)
	c := decU.SlateCodec()
	obj := c.New()
	decU.UpdateDecoded(cap, ev, obj)
	decU.UpdateDecoded(cap, ev, obj)
	encoded, err := c.AppendEncode(nil, obj)
	if err != nil {
		t.Fatal(err)
	}
	if string(encoded) != string(replaced) {
		t.Fatalf("decoded path %q != byte path %q", encoded, replaced)
	}
}

func TestTypedUpdaterByteFallbackTreatsCorruptSlateAsMissing(t *testing.T) {
	u := Update[testSlate]("U", func(emit Emitter, in event.Event, s *testSlate) { s.N++ })
	var replaced []byte
	u.Update(&captureEmitter{onReplace: func(b []byte) { replaced = b }},
		event.Event{}, []byte("corrupt"))
	if string(replaced) != `{"n":1}` {
		t.Fatalf("slate after corrupt input = %q", replaced)
	}
}

func TestRawCodec(t *testing.T) {
	var c RawCodec
	orig := []byte("state")
	p, err := c.Decode(orig)
	if err != nil {
		t.Fatal(err)
	}
	(*p)[0] = 'S' // mutating the object must not touch the stored bytes
	if string(orig) != "state" {
		t.Fatal("RawCodec.Decode aliased the input")
	}
	out, err := c.AppendEncode([]byte("pre:"), p)
	if err != nil || string(out) != "pre:State" {
		t.Fatalf("AppendEncode = %q, %v", out, err)
	}
}

// captureEmitter is a minimal Emitter for direct invocation tests.
type captureEmitter struct {
	onReplace func([]byte)
}

func (c *captureEmitter) Publish(stream, key string, value []byte) error { return nil }
func (c *captureEmitter) ReplaceSlate(value []byte) {
	if c.onReplace != nil {
		c.onReplace(append([]byte(nil), value...))
	}
}

func TestValidateReportsDuplicateFunctionName(t *testing.T) {
	app := NewApp("dup").
		Input("S1").
		AddUpdate(noopUpdate("U1"), []string{"S1"}, nil, 0).
		AddUpdate(noopUpdate("U1"), []string{"S1"}, nil, 0)
	err := app.Validate()
	if err == nil || !strings.Contains(err.Error(), "duplicate function name U1") {
		t.Fatalf("err = %v", err)
	}
	// The first registration survives; the duplicate did not overwrite.
	if app.Function("U1") == nil {
		t.Fatal("first registration lost")
	}
}

func TestValidateReportsDuplicateAcrossKinds(t *testing.T) {
	app := NewApp("dup").
		Input("S1").
		AddMap(noopMap("F"), []string{"S1"}, nil).
		AddUpdate(noopUpdate("F"), []string{"S1"}, nil, 0)
	if err := app.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate function name F") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateReportsNilFunctions(t *testing.T) {
	app := NewApp("nils").
		Input("S1").
		AddMap(nil, []string{"S1"}, nil).
		AddUpdate(nil, []string{"S1"}, nil, 0).
		AddMap(MapFunc{FName: "M"}, []string{"S1"}, nil).
		AddUpdate(UpdateFunc{FName: "U"}, []string{"S1"}, nil, 0).
		AddUpdate(Update[int]("UT", nil), []string{"S1"}, nil, 0)
	err := app.Validate()
	if err == nil {
		t.Fatal("nil registrations validated")
	}
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("err type %T, want *ValidationError", err)
	}
	for _, want := range []string{
		"AddMap called with a nil map function",
		"AddUpdate called with a nil update function",
		`map function "M" is nil`,
		`update function "U" is nil`,
		`update function "UT" is nil`,
	} {
		found := false
		for _, p := range ve.Problems {
			if strings.Contains(p, want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("problems %q missing %q", ve.Problems, want)
		}
	}
}

func TestValidateCollectsEveryProblem(t *testing.T) {
	app := NewApp("multi").
		AddMap(noopMap("M1"), []string{"ghost"}, []string{"S1"}).
		AddMap(noopMap("M2"), nil, nil).
		Input("S1"). // declared after M1 already publishes into it
		Output("S99")
	err := app.Validate()
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v", err)
	}
	if len(ve.Problems) < 4 {
		t.Fatalf("want >= 4 problems, got %q", ve.Problems)
	}
	msg := err.Error()
	for _, want := range []string{"ghost", "external input stream S1", "subscribes to no streams", "S99"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestValidationErrorIsTypedFromEngineConstruction(t *testing.T) {
	// Validate returns the dedicated type, so NewEngine callers can
	// errors.As it out of the construction error.
	err := NewApp("x").Validate()
	var ve *ValidationError
	if !errors.As(err, &ve) || ve.App != "x" {
		t.Fatalf("err = %#v", err)
	}
}
