package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"muppet/internal/event"
)

// counterApp reproduces Example 4 of the paper in miniature: M1 maps
// raw events to retailer keys on S2; U1 counts per key.
func counterApp() *App {
	m1 := MapFunc{FName: "M1", Fn: func(emit Emitter, in event.Event) {
		if strings.HasPrefix(string(in.Value), "checkin:") {
			retailer := strings.TrimPrefix(string(in.Value), "checkin:")
			emit.Publish("S2", retailer, in.Value)
		}
	}}
	u1 := UpdateFunc{FName: "U1", Fn: func(emit Emitter, in event.Event, sl []byte) {
		count := 0
		if sl != nil {
			count, _ = strconv.Atoi(string(sl))
		}
		count++
		emit.ReplaceSlate([]byte(strconv.Itoa(count)))
	}}
	return NewApp("counter").
		Input("S1").
		AddMap(m1, []string{"S1"}, []string{"S2"}).
		AddUpdate(u1, []string{"S2"}, nil, 0)
}

func checkin(ts int64, retailer string) event.Event {
	return event.Event{Stream: "S1", TS: event.Timestamp(ts), Key: "k", Value: []byte("checkin:" + retailer)}
}

func TestCounterCountsPerKey(t *testing.T) {
	r := NewReference(counterApp())
	events := []event.Event{
		checkin(1, "walmart"),
		checkin(2, "bestbuy"),
		checkin(3, "walmart"),
		checkin(4, "walmart"),
		{Stream: "S1", TS: 5, Key: "k", Value: []byte("noise")},
	}
	if err := r.Process(events); err != nil {
		t.Fatal(err)
	}
	if got := string(r.Slate("U1", "walmart")); got != "3" {
		t.Fatalf("walmart count = %s, want 3", got)
	}
	if got := string(r.Slate("U1", "bestbuy")); got != "1" {
		t.Fatalf("bestbuy count = %s, want 1", got)
	}
	if r.Slate("U1", "noise") != nil {
		t.Fatal("noise event produced a slate")
	}
}

func TestSlatesPerUpdaterKeyPair(t *testing.T) {
	// The pair <update U, key k> determines a slate, not the key alone
	// (Section 3): two updaters on the same stream keep separate slates.
	mk := func(name, tag string) Updater {
		return UpdateFunc{FName: name, Fn: func(emit Emitter, in event.Event, sl []byte) {
			emit.ReplaceSlate([]byte(tag))
		}}
	}
	app := NewApp("x").
		Input("S1").
		AddUpdate(mk("U1", "from-u1"), []string{"S1"}, nil, 0).
		AddUpdate(mk("U2", "from-u2"), []string{"S1"}, nil, 0)
	r := NewReference(app)
	r.Process([]event.Event{{Stream: "S1", TS: 1, Key: "k"}})
	if string(r.Slate("U1", "k")) != "from-u1" || string(r.Slate("U2", "k")) != "from-u2" {
		t.Fatalf("slates = %q, %q", r.Slate("U1", "k"), r.Slate("U2", "k"))
	}
}

func TestEventsFedInTimestampOrderAcrossStreams(t *testing.T) {
	// The paper's example: M subscribes to S1 and S2; S1 has an event at
	// 21:23, S2 at 21:25 — the S1 event is fed first, then the S2 one,
	// then whichever has the next lowest timestamp.
	var order []string
	m := MapFunc{FName: "M", Fn: func(emit Emitter, in event.Event) {
		order = append(order, fmt.Sprintf("%s@%d", in.Stream, in.TS))
	}}
	app := NewApp("merge").Input("S1", "S2").AddMap(m, []string{"S1", "S2"}, nil)
	r := NewReference(app)
	r.Push(event.Event{Stream: "S2", TS: 2125, Key: "f"})
	r.Push(event.Event{Stream: "S1", TS: 2123, Key: "e"})
	r.Push(event.Event{Stream: "S1", TS: 2130, Key: "g"})
	r.Push(event.Event{Stream: "S2", TS: 2127, Key: "h"})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"S1@2123", "S2@2125", "S2@2127", "S1@2130"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestEmittedTimestampStrictlyGreater(t *testing.T) {
	var outTS []event.Timestamp
	m := MapFunc{FName: "M", Fn: func(emit Emitter, in event.Event) {
		emit.Publish("S2", in.Key, nil)
	}}
	u := UpdateFunc{FName: "U", Fn: func(emit Emitter, in event.Event, sl []byte) {
		outTS = append(outTS, in.TS)
	}}
	app := NewApp("ts").
		Input("S1").
		AddMap(m, []string{"S1"}, []string{"S2"}).
		AddUpdate(u, []string{"S2"}, nil, 0)
	r := NewReference(app)
	r.Process([]event.Event{{Stream: "S1", TS: 100, Key: "k"}})
	if len(outTS) != 1 || outTS[0] <= 100 {
		t.Fatalf("derived event ts = %v, want > 100", outTS)
	}
}

func TestCyclicWorkflowTerminatesWhenEmissionStops(t *testing.T) {
	// U consumes S1 and its own output S2, emitting a decrementing
	// counter until it reaches zero — a well-defined loop because each
	// emitted event has a strictly larger timestamp.
	u := UpdateFunc{FName: "U", Fn: func(emit Emitter, in event.Event, sl []byte) {
		n, _ := strconv.Atoi(string(in.Value))
		total := 0
		if sl != nil {
			total, _ = strconv.Atoi(string(sl))
		}
		total++
		emit.ReplaceSlate([]byte(strconv.Itoa(total)))
		if n > 0 {
			emit.Publish("S2", in.Key, []byte(strconv.Itoa(n-1)))
		}
	}}
	app := NewApp("loop").
		Input("S1").
		AddUpdate(u, []string{"S1", "S2"}, []string{"S2"}, 0)
	r := NewReference(app)
	if err := r.Process([]event.Event{{Stream: "S1", TS: 1, Key: "k", Value: []byte("5")}}); err != nil {
		t.Fatal(err)
	}
	if got := string(r.Slate("U", "k")); got != "6" {
		t.Fatalf("loop iterations = %s, want 6 (1 seed + 5 cycles)", got)
	}
}

func TestMaxStepsStopsRunawayLoop(t *testing.T) {
	u := UpdateFunc{FName: "U", Fn: func(emit Emitter, in event.Event, sl []byte) {
		emit.Publish("S2", in.Key, nil) // emits forever
	}}
	app := NewApp("runaway").
		Input("S1").
		AddUpdate(u, []string{"S1", "S2"}, []string{"S2"}, 0)
	r := NewReference(app)
	r.MaxSteps = 100
	err := r.Process([]event.Event{{Stream: "S1", TS: 1, Key: "k"}})
	if err == nil || !strings.Contains(err.Error(), "MaxSteps") {
		t.Fatalf("err = %v, want MaxSteps error", err)
	}
}

func TestPublishToUndeclaredStreamFails(t *testing.T) {
	m := MapFunc{FName: "M", Fn: func(emit Emitter, in event.Event) {
		emit.Publish("S_rogue", in.Key, nil)
	}}
	app := NewApp("x").Input("S1").AddMap(m, []string{"S1"}, nil)
	r := NewReference(app)
	err := r.Process([]event.Event{{Stream: "S1", TS: 1, Key: "k"}})
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("err = %v, want undeclared stream error", err)
	}
}

func TestMapCallingReplaceSlatePanics(t *testing.T) {
	m := MapFunc{FName: "M", Fn: func(emit Emitter, in event.Event) {
		emit.ReplaceSlate([]byte("maps have no memory"))
	}}
	app := NewApp("x").Input("S1").AddMap(m, []string{"S1"}, nil)
	r := NewReference(app)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Process([]event.Event{{Stream: "S1", TS: 1, Key: "k"}})
}

func TestOutputStreamRecorded(t *testing.T) {
	m := MapFunc{FName: "M", Fn: func(emit Emitter, in event.Event) {
		emit.Publish("S2", in.Key, []byte("out"))
	}}
	app := NewApp("x").Input("S1").Output("S2").AddMap(m, []string{"S1"}, []string{"S2"})
	r := NewReference(app)
	r.Process([]event.Event{
		{Stream: "S1", TS: 1, Key: "a"},
		{Stream: "S1", TS: 2, Key: "b"},
	})
	out := r.Output("S2")
	if len(out) != 2 || out[0].Key != "a" || out[1].Key != "b" {
		t.Fatalf("output = %v", out)
	}
}

func TestFanOutDeliversToAllSubscribersDeterministically(t *testing.T) {
	var calls []string
	mk := func(name string) Mapper {
		return MapFunc{FName: name, Fn: func(emit Emitter, in event.Event) {
			calls = append(calls, name)
		}}
	}
	app := NewApp("fan").
		Input("S1").
		AddMap(mk("M_b"), []string{"S1"}, nil).
		AddMap(mk("M_a"), []string{"S1"}, nil)
	r := NewReference(app)
	r.Process([]event.Event{{Stream: "S1", TS: 1, Key: "k"}})
	if strings.Join(calls, ",") != "M_a,M_b" {
		t.Fatalf("fan-out order = %v, want sorted by name", calls)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	// Same input, two fresh executors: identical slates and outputs —
	// the well-definedness property of Section 3.
	rng := rand.New(rand.NewSource(99))
	var events []event.Event
	retailers := []string{"walmart", "bestbuy", "jcpenney", "samsclub"}
	for i := 0; i < 300; i++ {
		events = append(events, checkin(int64(rng.Intn(50)+1), retailers[rng.Intn(4)]))
	}
	run := func() map[string][]byte {
		r := NewReference(counterApp())
		if err := r.Process(events); err != nil {
			t.Fatal(err)
		}
		return r.Slates("U1")
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("slate counts differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if string(b[k]) != string(v) {
			t.Fatalf("slate %s differs: %q vs %q", k, v, b[k])
		}
	}
}

func TestTotalCountConservation(t *testing.T) {
	// Sum of all per-retailer counts equals the number of recognized
	// checkins, whatever the interleaving.
	rng := rand.New(rand.NewSource(7))
	var events []event.Event
	n := 0
	for i := 0; i < 500; i++ {
		if rng.Intn(3) == 0 {
			events = append(events, event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Value: []byte("noise")})
		} else {
			events = append(events, checkin(int64(i+1), fmt.Sprintf("r%d", rng.Intn(10))))
			n++
		}
	}
	r := NewReference(counterApp())
	if err := r.Process(events); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, v := range r.Slates("U1") {
		c, _ := strconv.Atoi(string(v))
		total += c
	}
	if total != n {
		t.Fatalf("sum of counts = %d, want %d", total, n)
	}
}

func TestSlateKeysSorted(t *testing.T) {
	r := NewReference(counterApp())
	r.Process([]event.Event{checkin(1, "zeta"), checkin(2, "alpha")})
	keys := r.SlateKeys("U1")
	if len(keys) != 2 || keys[0] != "alpha" || keys[1] != "zeta" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestJSONSlates(t *testing.T) {
	// Applications often encode slates as JSON (Section 4.2); verify a
	// JSON slate round-trips through the update cycle.
	type profile struct {
		Count int      `json:"count"`
		Tags  []string `json:"tags"`
	}
	u := UpdateFunc{FName: "U", Fn: func(emit Emitter, in event.Event, sl []byte) {
		var p profile
		if sl != nil {
			json.Unmarshal(sl, &p)
		}
		p.Count++
		p.Tags = append(p.Tags, string(in.Value))
		b, _ := json.Marshal(p)
		emit.ReplaceSlate(b)
	}}
	app := NewApp("json").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
	r := NewReference(app)
	r.Process([]event.Event{
		{Stream: "S1", TS: 1, Key: "u1", Value: []byte("a")},
		{Stream: "S1", TS: 2, Key: "u1", Value: []byte("b")},
	})
	var p profile
	if err := json.Unmarshal(r.Slate("U", "u1"), &p); err != nil {
		t.Fatal(err)
	}
	if p.Count != 2 || len(p.Tags) != 2 {
		t.Fatalf("profile = %+v", p)
	}
}

func TestStepsCountsInvocations(t *testing.T) {
	r := NewReference(counterApp())
	r.Process([]event.Event{checkin(1, "walmart")})
	// 1 map call + 1 update call.
	if r.Steps() != 2 {
		t.Fatalf("Steps = %d, want 2", r.Steps())
	}
}

func TestSlateWritesCounted(t *testing.T) {
	r := NewReference(counterApp())
	r.Process([]event.Event{checkin(1, "a"), checkin(2, "a"), checkin(3, "b")})
	if r.SlateWrites != 3 {
		t.Fatalf("SlateWrites = %d, want 3", r.SlateWrites)
	}
}
