package core

import (
	"strings"
	"testing"
	"time"

	"muppet/internal/event"
)

func noopMap(name string) Mapper {
	return MapFunc{FName: name, Fn: func(Emitter, event.Event) {}}
}

func noopUpdate(name string) Updater {
	return UpdateFunc{FName: name, Fn: func(Emitter, event.Event, []byte) {}}
}

func validApp() *App {
	return NewApp("test").
		Input("S1").
		AddMap(noopMap("M1"), []string{"S1"}, []string{"S2"}).
		AddUpdate(noopUpdate("U1"), []string{"S2"}, nil, 0)
}

func TestValidateAcceptsWellFormedApp(t *testing.T) {
	if err := validApp().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsEmptyApp(t *testing.T) {
	if err := NewApp("empty").Validate(); err == nil {
		t.Fatal("empty app validated")
	}
}

func TestValidateRejectsNoInputs(t *testing.T) {
	app := NewApp("x").AddMap(noopMap("M"), []string{"S"}, nil)
	if err := app.Validate(); err == nil || !strings.Contains(err.Error(), "input") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsDanglingSubscription(t *testing.T) {
	app := NewApp("x").
		Input("S1").
		AddMap(noopMap("M1"), []string{"S1", "ghost"}, nil)
	if err := app.Validate(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsPublishIntoInput(t *testing.T) {
	// No function may emit into an external input stream; this
	// assumption makes source throttling deadlock-free (Section 5).
	app := NewApp("x").
		Input("S1").
		AddMap(noopMap("M1"), []string{"S1"}, []string{"S1"})
	if err := app.Validate(); err == nil || !strings.Contains(err.Error(), "external input") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsUnpublishedOutput(t *testing.T) {
	app := validApp().Output("S99")
	if err := app.Validate(); err == nil || !strings.Contains(err.Error(), "S99") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsFunctionWithNoSubscription(t *testing.T) {
	app := NewApp("x").
		Input("S1").
		AddMap(noopMap("M1"), nil, nil)
	if err := app.Validate(); err == nil || !strings.Contains(err.Error(), "subscribes to no streams") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateAllowsCycles(t *testing.T) {
	// The workflow graph explicitly allows cycles (Section 3).
	app := NewApp("cyclic").
		Input("S1").
		AddUpdate(noopUpdate("U1"), []string{"S1", "S2"}, []string{"S2"}, 0)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubscribersSortedAndComplete(t *testing.T) {
	app := NewApp("x").
		Input("S1").
		AddMap(noopMap("M2"), []string{"S1"}, nil).
		AddMap(noopMap("M1"), []string{"S1"}, nil).
		AddUpdate(noopUpdate("U1"), []string{"S1"}, nil, 0)
	got := app.Subscribers("S1")
	want := []string{"M1", "M2", "U1"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Subscribers = %v, want %v", got, want)
	}
	if subs := app.Subscribers("nope"); len(subs) != 0 {
		t.Fatalf("Subscribers of unknown stream = %v", subs)
	}
}

func TestTTLFor(t *testing.T) {
	app := NewApp("x").
		Input("S1").
		AddUpdate(noopUpdate("U1"), []string{"S1"}, nil, time.Hour)
	if app.TTLFor("U1") != time.Hour {
		t.Fatalf("TTLFor(U1) = %v", app.TTLFor("U1"))
	}
	if app.TTLFor("unknown") != 0 {
		t.Fatal("unknown updater should default to 0")
	}
}

func TestMayPublish(t *testing.T) {
	app := validApp()
	if !app.MayPublish("M1", "S2") {
		t.Fatal("M1 should be allowed to publish S2")
	}
	if app.MayPublish("M1", "S3") || app.MayPublish("nope", "S2") {
		t.Fatal("undeclared publish allowed")
	}
}

func TestUpdatersLists(t *testing.T) {
	app := validApp()
	ups := app.Updaters()
	if len(ups) != 1 || ups[0] != "U1" {
		t.Fatalf("Updaters = %v", ups)
	}
}

func TestFunctionsSortedByName(t *testing.T) {
	app := validApp()
	fns := app.Functions()
	if len(fns) != 2 || fns[0].Name() != "M1" || fns[1].Name() != "U1" {
		t.Fatalf("Functions order wrong: %v, %v", fns[0].Name(), fns[1].Name())
	}
}

func TestInputsOutputsAccessors(t *testing.T) {
	app := validApp().Output("S2")
	if !app.IsInput("S1") || app.IsInput("S2") {
		t.Fatal("IsInput wrong")
	}
	if !app.IsOutput("S2") || app.IsOutput("S1") {
		t.Fatal("IsOutput wrong")
	}
	if ins := app.Inputs(); len(ins) != 1 || ins[0] != "S1" {
		t.Fatalf("Inputs = %v", ins)
	}
	if outs := app.Outputs(); len(outs) != 1 || outs[0] != "S2" {
		t.Fatalf("Outputs = %v", outs)
	}
}
