package core

import (
	"encoding/json"

	"muppet/internal/event"
	"muppet/internal/slate"
)

// SlateCodec is the erased slate codec carried on FunctionSpec for
// typed update functions: the engines thread it into the slate cache
// so decoding happens once per cache fill and encoding once per flush
// or external read, instead of once per event inside the updater.
type SlateCodec = slate.Codec

// Codec translates a slate between its at-rest byte encoding and the
// application's slate type S. JSONCodec is the default; RawCodec keeps
// the bytes themselves as the "object" for applications that manage
// their own encoding.
type Codec[S any] interface {
	// Decode parses the at-rest encoding into a fresh *S.
	Decode(data []byte) (*S, error)
	// AppendEncode appends the at-rest encoding of s to dst and
	// returns the extended slice.
	AppendEncode(dst []byte, s *S) ([]byte, error)
}

// JSONCodec encodes slates as JSON — the encoding every application in
// the paper's examples already used by hand. It is the default codec
// of Update. Note that a JSON-encoded int is the same ASCII decimal
// the classic counting updaters wrote, so migrating a counter to
// Update[int] leaves its slates at rest byte-for-byte identical.
type JSONCodec[S any] struct{}

// Decode implements Codec.
func (JSONCodec[S]) Decode(data []byte) (*S, error) {
	s := new(S)
	if err := json.Unmarshal(data, s); err != nil {
		return nil, err
	}
	return s, nil
}

// AppendEncode implements Codec.
func (JSONCodec[S]) AppendEncode(dst []byte, s *S) ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	return append(dst, b...), nil
}

// RawCodec is the compatibility codec: the slate object is the byte
// slice itself. An updater built with UpdateWith and RawCodec keeps
// full control of its encoding while still gaining the typed API's
// mutate-in-place contract and the decode-once cache slot (here a
// copy-once slot).
type RawCodec struct{}

// Decode implements Codec[[]byte]: it returns a private copy of the
// stored bytes (the object is mutable in place; the cache's encoding
// must not be).
func (RawCodec) Decode(data []byte) (*[]byte, error) {
	b := append([]byte(nil), data...)
	return &b, nil
}

// AppendEncode implements Codec[[]byte].
func (RawCodec) AppendEncode(dst []byte, s *[]byte) ([]byte, error) {
	return append(dst, *s...), nil
}

// DecodedUpdater is implemented by update functions built with the
// typed constructors (Update, UpdateWith). The engines detect it and
// route the invocation through the decoded slate cache: the function
// receives the live slate object instead of bytes, and the at-rest
// encoding is produced once per flush batch rather than once per
// event. The plain Update method remains the byte-slate fallback used
// by the Reference executor (and any path without a decoded cache);
// both paths run the same application function through the same codec,
// so they produce identical slates.
type DecodedUpdater interface {
	Updater
	// UpdateDecoded processes one input event with the decoded slate
	// object — always a non-nil *S, zero-valued when no slate exists
	// for the key yet. The function mutates it in place; after the
	// call the object (mutated or not) is the slate.
	UpdateDecoded(emit Emitter, in event.Event, slate any)
	// SlateCodec returns the erased codec the engines hand to the
	// slate cache.
	SlateCodec() SlateCodec
}

// Update builds a typed update function with the default JSONCodec:
// the function receives the decoded slate object s — never nil,
// zero-valued for a missing slate — and mutates it in place instead of
// calling Emitter.ReplaceSlate (which typed updaters must not call;
// the mutated object is the slate). Publishing events through emit
// works exactly as in the classic API.
//
// Every invocation retains the object as the slate, mutated or not —
// there is no typed equivalent of "return without ReplaceSlate". An
// updater that must leave missing slates uncreated on some events
// (e.g. rejecting unparseable input without materializing a zero
// slate) should validate upstream in a map function, or stay on the
// classic byte-slate API.
func Update[S any](name string, fn func(emit Emitter, in event.Event, s *S)) Updater {
	return UpdateWith[S](name, JSONCodec[S]{}, fn)
}

// UpdateWith builds a typed update function with an explicit codec.
func UpdateWith[S any](name string, codec Codec[S], fn func(emit Emitter, in event.Event, s *S)) Updater {
	return &typedUpdater[S]{name: name, codec: codec, fn: fn}
}

// typedUpdater adapts a typed update function onto the Updater surface
// and carries its codec for the engines.
type typedUpdater[S any] struct {
	name  string
	codec Codec[S]
	fn    func(emit Emitter, in event.Event, s *S)
}

// Name implements Updater.
func (u *typedUpdater[S]) Name() string { return u.name }

// Update implements Updater — the byte-slate fallback path: decode,
// run the function, re-encode, ReplaceSlate. A slate that fails to
// decode is treated as missing (the function starts from a zero
// value), matching the lenient json.Unmarshal handling the hand-
// written updaters used; an encode failure leaves the slate unchanged.
func (u *typedUpdater[S]) Update(emit Emitter, in event.Event, sl []byte) {
	var s *S
	if sl != nil {
		s, _ = u.codec.Decode(sl)
	}
	if s == nil {
		s = new(S)
	}
	u.fn(emit, in, s)
	b, err := u.codec.AppendEncode(nil, s)
	if err != nil {
		return
	}
	emit.ReplaceSlate(b)
}

// UpdateDecoded implements DecodedUpdater.
func (u *typedUpdater[S]) UpdateDecoded(emit Emitter, in event.Event, slate any) {
	u.fn(emit, in, slate.(*S))
}

// SlateCodec implements DecodedUpdater.
func (u *typedUpdater[S]) SlateCodec() SlateCodec { return erasedCodec[S]{u.codec} }

// nilFn reports whether the updater was built with a nil function
// body; App.Validate surfaces it as a registration error instead of a
// nil-dereference panic mid-stream.
func (u *typedUpdater[S]) nilFn() bool { return u.fn == nil }

// erasedCodec adapts the typed Codec[S] onto the erased SlateCodec the
// slate cache stores per entry.
type erasedCodec[S any] struct{ c Codec[S] }

func (e erasedCodec[S]) New() any { return new(S) }

func (e erasedCodec[S]) Decode(data []byte) (any, error) {
	s, err := e.c.Decode(data)
	if err != nil || s == nil {
		// A typed nil must not leak into the erased world as a
		// non-nil any.
		return nil, err
	}
	return s, nil
}

func (e erasedCodec[S]) AppendEncode(dst []byte, v any) ([]byte, error) {
	return e.c.AppendEncode(dst, v.(*S))
}
