package core

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"muppet/internal/event"
)

// Additional semantics tests for the fine print of Section 3.

func TestMultiSubscriberEventDeliveredToEach(t *testing.T) {
	var m1Calls, u1Calls int
	m := MapFunc{FName: "M1", Fn: func(emit Emitter, in event.Event) { m1Calls++ }}
	u := UpdateFunc{FName: "U1", Fn: func(emit Emitter, in event.Event, sl []byte) { u1Calls++ }}
	app := NewApp("multi").
		Input("S1").
		AddMap(m, []string{"S1"}, nil).
		AddUpdate(u, []string{"S1"}, nil, 0)
	r := NewReference(app)
	r.Process([]event.Event{{Stream: "S1", TS: 1, Key: "k"}})
	if m1Calls != 1 || u1Calls != 1 {
		t.Fatalf("calls = %d/%d, want 1/1", m1Calls, u1Calls)
	}
}

func TestDerivedEventsInterleaveWithPendingInputs(t *testing.T) {
	// A mapper's output at ts+1 must be processed before a pending
	// input at ts+5: the heap orders by global timestamp across
	// generations, not by arrival.
	var order []string
	m := MapFunc{FName: "M", Fn: func(emit Emitter, in event.Event) {
		order = append(order, fmt.Sprintf("M@%d", in.TS))
		if in.TS == 1 {
			emit.Publish("S2", in.Key, nil)
		}
	}}
	u := UpdateFunc{FName: "U", Fn: func(emit Emitter, in event.Event, sl []byte) {
		order = append(order, fmt.Sprintf("U@%d", in.TS))
	}}
	app := NewApp("interleave").
		Input("S1").
		AddMap(m, []string{"S1"}, []string{"S2"}).
		AddUpdate(u, []string{"S2"}, nil, 0)
	r := NewReference(app)
	r.Push(event.Event{Stream: "S1", TS: 1, Key: "a"})
	r.Push(event.Event{Stream: "S1", TS: 5, Key: "b"})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	want := "M@1,U@2,M@5"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestTwoUpdatersOnOneStreamSameKeyCycle(t *testing.T) {
	// Two updaters subscribe to a shared stream inside a cycle; each
	// keeps its own slate for the same key, and the loop terminates.
	mk := func(name string) Updater {
		return UpdateFunc{FName: name, Fn: func(emit Emitter, in event.Event, sl []byte) {
			n := 0
			if sl != nil {
				n, _ = strconv.Atoi(string(sl))
			}
			n++
			emit.ReplaceSlate([]byte(strconv.Itoa(n)))
			if name == "U_a" && n < 3 {
				emit.Publish("S2", in.Key, nil)
			}
		}}
	}
	app := NewApp("pair").
		Input("S1").
		AddUpdate(mk("U_a"), []string{"S1", "S2"}, []string{"S2"}, 0).
		AddUpdate(mk("U_b"), []string{"S2"}, nil, 0)
	r := NewReference(app)
	if err := r.Process([]event.Event{{Stream: "S1", TS: 1, Key: "k"}}); err != nil {
		t.Fatal(err)
	}
	// U_a sees the seed + its own 2 re-emissions = 3; U_b sees the 2
	// emissions onto S2.
	if got := string(r.Slate("U_a", "k")); got != "3" {
		t.Fatalf("U_a slate = %s, want 3", got)
	}
	if got := string(r.Slate("U_b", "k")); got != "2" {
		t.Fatalf("U_b slate = %s, want 2", got)
	}
}

func TestEmptySlateValueIsStillASlate(t *testing.T) {
	// ReplaceSlate(nil)/empty must count as an existing (empty) slate,
	// distinct from "no slate".
	var sawNil, sawEmpty bool
	u := UpdateFunc{FName: "U", Fn: func(emit Emitter, in event.Event, sl []byte) {
		if sl == nil {
			sawNil = true
		} else if len(sl) == 0 {
			sawEmpty = true
		}
		emit.ReplaceSlate([]byte{})
	}}
	app := NewApp("empty").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
	r := NewReference(app)
	r.Process([]event.Event{
		{Stream: "S1", TS: 1, Key: "k"},
		{Stream: "S1", TS: 2, Key: "k"},
	})
	if !sawNil {
		t.Fatal("first event should see nil slate")
	}
	if !sawEmpty {
		t.Fatal("second event should see the empty-but-present slate")
	}
}

func TestPublishReturnsErrorToCaller(t *testing.T) {
	var got error
	m := MapFunc{FName: "M", Fn: func(emit Emitter, in event.Event) {
		got = emit.Publish("rogue", in.Key, nil)
	}}
	app := NewApp("err").Input("S1").AddMap(m, []string{"S1"}, nil)
	r := NewReference(app)
	r.Process([]event.Event{{Stream: "S1", TS: 1, Key: "k"}})
	if got == nil {
		t.Fatal("Publish to undeclared stream returned nil error to the function")
	}
}

func TestPropertyReferenceIsOrderInsensitiveForCommutativeApps(t *testing.T) {
	// Feeding the same multiset of events in any order yields the same
	// counts (the counting update is commutative). This distinguishes
	// input-order determinism from multiset determinism.
	f := func(keys []uint8, shuffleSeed int64) bool {
		if len(keys) == 0 {
			return true
		}
		mkEvents := func(reverse bool) []event.Event {
			evs := make([]event.Event, len(keys))
			for i, k := range keys {
				pos := i
				if reverse {
					pos = len(keys) - 1 - i
				}
				evs[i] = event.Event{Stream: "S1", TS: event.Timestamp(pos + 1), Key: fmt.Sprintf("k%d", k%8)}
			}
			return evs
		}
		run := func(evs []event.Event) map[string][]byte {
			u := UpdateFunc{FName: "U", Fn: func(emit Emitter, in event.Event, sl []byte) {
				n := 0
				if sl != nil {
					n, _ = strconv.Atoi(string(sl))
				}
				emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
			}}
			app := NewApp("comm").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
			r := NewReference(app)
			r.Process(evs)
			return r.Slates("U")
		}
		a := run(mkEvents(false))
		b := run(mkEvents(true))
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if string(b[k]) != string(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqAssignedOnPushWhenZero(t *testing.T) {
	r := NewReference(NewApp("x").Input("S1").AddMap(noopMap("M"), []string{"S1"}, nil))
	r.Push(event.Event{Stream: "S1", TS: 1})
	r.Push(event.Event{Stream: "S1", TS: 1})
	// Both events share TS and stream; without distinct seqs the heap
	// order would be ill-defined. Run must not panic and must process
	// both.
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Steps() != 2 {
		t.Fatalf("Steps = %d, want 2", r.Steps())
	}
}
