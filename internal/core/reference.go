package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"muppet/internal/event"
	"muppet/internal/slate"
)

// ErrUndeclaredStream is returned (wrapped) when a function publishes
// to a stream missing from its Publishes declaration.
type ErrUndeclaredStream struct {
	Function string
	Stream   string
}

func (e ErrUndeclaredStream) Error() string {
	return fmt.Sprintf("core: function %s published to undeclared stream %s", e.Function, e.Stream)
}

// Reference executes a MapUpdate application sequentially, feeding
// every function its subscribed events in the exact global order
// (TS, Stream, Seq). With deterministic functions this produces the
// well-defined streams and slate sequences of Section 3; the
// distributed engines approximate it and the test suite measures how
// closely.
type Reference struct {
	app *App
	// MaxSteps bounds total event deliveries as a safety net against
	// non-terminating cyclic workflows; 0 means no bound.
	MaxSteps uint64

	heap    *event.MinHeap
	seq     atomic.Uint64
	slates  map[slate.Key][]byte
	outputs map[string][]event.Event
	steps   uint64
	// SlateWrites counts ReplaceSlate calls, the "sequence of slate
	// updates" the semantics define.
	SlateWrites uint64
}

// NewReference returns a reference executor for the app. The app
// should already be validated.
func NewReference(app *App) *Reference {
	return &Reference{
		app:     app,
		heap:    event.NewMinHeap(),
		slates:  make(map[slate.Key][]byte),
		outputs: make(map[string][]event.Event),
	}
}

// refEmitter implements Emitter for one function invocation.
type refEmitter struct {
	r        *Reference
	function string
	isUpdate bool
	in       event.Event
	newSlate []byte
	replaced bool
	err      error
}

// Publish implements Emitter. The output event's timestamp is the
// input's plus one microsecond: strictly greater, as Section 3
// requires for well-defined loops.
func (e *refEmitter) Publish(stream, key string, value []byte) error {
	if !e.r.app.MayPublish(e.function, stream) {
		err := ErrUndeclaredStream{Function: e.function, Stream: stream}
		if e.err == nil {
			e.err = err
		}
		return err
	}
	out := event.Event{
		Stream: stream,
		TS:     e.in.TS + 1,
		Seq:    e.r.seq.Add(1),
		Key:    key,
		Value:  append([]byte(nil), value...),
	}
	e.r.route(out)
	return nil
}

// ReplaceSlate implements Emitter.
func (e *refEmitter) ReplaceSlate(value []byte) {
	if !e.isUpdate {
		// Maps are memoryless; a map calling ReplaceSlate is an
		// application bug the framework surfaces loudly.
		panic(fmt.Sprintf("core: map function %s called ReplaceSlate", e.function))
	}
	// append to a non-nil empty slice so that an empty slate stays
	// distinct from "no slate" (nil) on the next update call.
	e.newSlate = append([]byte{}, value...)
	e.replaced = true
}

// route buffers an event for delivery and records it if the stream is
// a declared output.
func (r *Reference) route(e event.Event) {
	if r.app.IsOutput(e.Stream) {
		r.outputs[e.Stream] = append(r.outputs[e.Stream], e)
	}
	if len(r.app.Subscribers(e.Stream)) > 0 {
		r.heap.Push(e)
	}
}

// Push feeds an external input event into the application.
func (r *Reference) Push(e event.Event) {
	if e.Seq == 0 {
		e.Seq = r.seq.Add(1)
	}
	r.route(e)
}

// Run processes events until the application quiesces (no buffered
// events remain). It returns the number of function invocations.
func (r *Reference) Run() (uint64, error) {
	start := r.steps
	for r.heap.Len() > 0 {
		if r.MaxSteps > 0 && r.steps-start >= r.MaxSteps {
			return r.steps - start, fmt.Errorf("core: MaxSteps %d exceeded; cyclic workflow may not terminate", r.MaxSteps)
		}
		e := r.heap.Pop()
		for _, name := range r.app.Subscribers(e.Stream) {
			f := r.app.Function(name)
			r.steps++
			if err := r.invoke(f, e); err != nil {
				return r.steps - start, err
			}
		}
	}
	return r.steps - start, nil
}

// Process pushes the events and runs to quiescence.
func (r *Reference) Process(events []event.Event) error {
	for _, e := range events {
		r.Push(e)
	}
	_, err := r.Run()
	return err
}

func (r *Reference) invoke(f *FunctionSpec, e event.Event) error {
	em := &refEmitter{r: r, function: f.Name(), in: e, isUpdate: f.Kind == KindUpdate}
	switch f.Kind {
	case KindMap:
		f.Mapper.Map(em, e)
	case KindUpdate:
		sk := slate.Key{Updater: f.Name(), Key: e.Key}
		f.Updater.Update(em, e, r.slates[sk])
		if em.replaced {
			r.slates[sk] = em.newSlate
			r.SlateWrites++
		}
	}
	return em.err
}

// Slate returns the current slate for <updater, key>, or nil.
func (r *Reference) Slate(updater, key string) []byte {
	return r.slates[slate.Key{Updater: updater, Key: key}]
}

// Slates returns a copy of all slates of the named updater, keyed by
// event key.
func (r *Reference) Slates(updater string) map[string][]byte {
	out := make(map[string][]byte)
	for k, v := range r.slates {
		if k.Updater == updater {
			out[k.Key] = v
		}
	}
	return out
}

// Output returns the events recorded on a declared output stream, in
// emission order.
func (r *Reference) Output(stream string) []event.Event {
	return r.outputs[stream]
}

// SlateKeys returns the sorted event keys holding a slate for the
// updater.
func (r *Reference) SlateKeys(updater string) []string {
	var out []string
	for k := range r.slates {
		if k.Updater == updater {
			out = append(out, k.Key)
		}
	}
	sort.Strings(out)
	return out
}

// Steps returns the total function invocations so far.
func (r *Reference) Steps() uint64 { return r.steps }
