package core

import (
	"fmt"
	"sort"
	"time"
)

// FunctionKind distinguishes map from update nodes in the workflow.
type FunctionKind int

const (
	// KindMap marks a map function node.
	KindMap FunctionKind = iota
	// KindUpdate marks an update function node.
	KindUpdate
)

// FunctionSpec describes one node of the workflow graph: a map or
// update function, the streams it subscribes to, and the streams it
// declares it may publish to (the edges of the paper's configuration-
// file graph).
type FunctionSpec struct {
	Kind FunctionKind
	// Mapper is set when Kind == KindMap.
	Mapper Mapper
	// Updater is set when Kind == KindUpdate.
	Updater Updater
	// Subscribes lists the input streams. All events from these streams
	// are fed to the function in increasing timestamp order.
	Subscribes []string
	// Publishes lists the streams the function may emit to. Publishing
	// to an undeclared stream is a runtime error: the workflow graph
	// comes from the application's configuration file and the engines
	// rely on it for routing.
	Publishes []string
	// TTL is the slate time-to-live for update functions; zero means
	// forever (the paper's default). Configurable per update function
	// because different updaters track data with different shelf lives
	// (Section 4.2).
	TTL time.Duration
	// Codec is the erased slate codec of a typed update function
	// (built with Update/UpdateWith); nil for classic byte-slate
	// updaters. When set, the engines route the function's slate
	// through the cache's decoded slot: decode once per cache fill,
	// encode once per flush or external read.
	Codec SlateCodec
}

// Name returns the function's workflow name.
func (f *FunctionSpec) Name() string {
	if f.Kind == KindMap {
		return f.Mapper.Name()
	}
	return f.Updater.Name()
}

// App is a MapUpdate application: a directed workflow graph (cycles
// allowed) whose nodes are map and update functions and whose edges
// are streams (Section 3).
type App struct {
	name      string
	functions map[string]*FunctionSpec
	inputs    map[string]bool
	outputs   map[string]bool
	// problems collects registration errors (duplicate names, nil
	// functions) as they happen; Validate reports them. Registration
	// stays chainable — errors surface once, at engine construction.
	problems []string
}

// NewApp returns an empty application with the given name.
func NewApp(name string) *App {
	return &App{
		name:      name,
		functions: make(map[string]*FunctionSpec),
		inputs:    make(map[string]bool),
		outputs:   make(map[string]bool),
	}
}

// registerName checks a function registration for the problems that
// used to be silently absorbed — a nil function, or a second function
// with the same name overwriting the first — and records them for
// Validate. It reports whether the registration may proceed.
func (a *App) registerName(name string, kind string, fnNil bool) bool {
	if fnNil {
		a.problems = append(a.problems, fmt.Sprintf("%s function %q is nil", kind, name))
		return false
	}
	if _, dup := a.functions[name]; dup {
		a.problems = append(a.problems, fmt.Sprintf("duplicate function name %s (the %s registration would overwrite an earlier function)", name, kind))
		return false
	}
	return true
}

// Name returns the application name.
func (a *App) Name() string { return a.name }

// Input declares an external input stream (e.g. the Twitter Firehose).
// Engines assume no function publishes into an external input, which
// is what makes source throttling deadlock-free (Section 5).
func (a *App) Input(streams ...string) *App {
	for _, s := range streams {
		a.inputs[s] = true
	}
	return a
}

// Output declares a stream whose events form part of the application's
// result (alongside slates).
func (a *App) Output(streams ...string) *App {
	for _, s := range streams {
		a.outputs[s] = true
	}
	return a
}

// AddMap adds a map function subscribing to subs and publishing to
// pubs. Registering nil, a function with a nil body, or a second
// function under an existing name is recorded and reported by
// Validate (and therefore by NewEngine) instead of silently
// overwriting.
func (a *App) AddMap(m Mapper, subs, pubs []string) *App {
	if m == nil {
		a.problems = append(a.problems, "AddMap called with a nil map function")
		return a
	}
	fnNil := false
	if mf, ok := m.(MapFunc); ok {
		fnNil = mf.Fn == nil
	}
	if !a.registerName(m.Name(), "map", fnNil) {
		return a
	}
	a.functions[m.Name()] = &FunctionSpec{
		Kind:       KindMap,
		Mapper:     m,
		Subscribes: append([]string(nil), subs...),
		Publishes:  append([]string(nil), pubs...),
	}
	return a
}

// AddUpdate adds an update function subscribing to subs and publishing
// to pubs with the given slate TTL (0 = forever). Typed updaters
// (Update/UpdateWith) carry their slate codec onto the function spec
// here. Nil functions and duplicate names are recorded and reported by
// Validate, like AddMap.
func (a *App) AddUpdate(u Updater, subs, pubs []string, ttl time.Duration) *App {
	if u == nil {
		a.problems = append(a.problems, "AddUpdate called with a nil update function")
		return a
	}
	fnNil := false
	switch uf := u.(type) {
	case UpdateFunc:
		fnNil = uf.Fn == nil
	case interface{ nilFn() bool }:
		fnNil = uf.nilFn()
	}
	if !a.registerName(u.Name(), "update", fnNil) {
		return a
	}
	spec := &FunctionSpec{
		Kind:       KindUpdate,
		Updater:    u,
		Subscribes: append([]string(nil), subs...),
		Publishes:  append([]string(nil), pubs...),
		TTL:        ttl,
	}
	if du, ok := u.(DecodedUpdater); ok {
		spec.Codec = du.SlateCodec()
	}
	a.functions[u.Name()] = spec
	return a
}

// Function returns the named function spec, or nil.
func (a *App) Function(name string) *FunctionSpec { return a.functions[name] }

// Functions returns all function specs sorted by name; the
// deterministic order matters when one event fans out to several
// subscribers.
func (a *App) Functions() []*FunctionSpec {
	names := make([]string, 0, len(a.functions))
	for n := range a.functions {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*FunctionSpec, len(names))
	for i, n := range names {
		out[i] = a.functions[n]
	}
	return out
}

// Updaters returns the names of all update functions, sorted.
func (a *App) Updaters() []string {
	var out []string
	for n, f := range a.functions {
		if f.Kind == KindUpdate {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Inputs returns the declared external input streams, sorted.
func (a *App) Inputs() []string { return sortedKeys(a.inputs) }

// Outputs returns the declared output streams, sorted.
func (a *App) Outputs() []string { return sortedKeys(a.outputs) }

// IsInput reports whether the stream is a declared external input.
func (a *App) IsInput(stream string) bool { return a.inputs[stream] }

// IsOutput reports whether the stream is a declared output.
func (a *App) IsOutput(stream string) bool { return a.outputs[stream] }

// Subscribers returns the names of functions subscribed to the stream,
// sorted for deterministic fan-out order.
func (a *App) Subscribers(stream string) []string {
	var out []string
	for n, f := range a.functions {
		for _, s := range f.Subscribes {
			if s == stream {
				out = append(out, n)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// TTLFor returns the slate TTL configured for the named updater, used
// by slate caches as their per-updater TTL source.
func (a *App) TTLFor(updater string) time.Duration {
	if f := a.functions[updater]; f != nil {
		return f.TTL
	}
	return 0
}

// MayPublish reports whether the named function declared the stream as
// one of its outputs.
func (a *App) MayPublish(function, stream string) bool {
	f := a.functions[function]
	if f == nil {
		return false
	}
	for _, s := range f.Publishes {
		if s == stream {
			return true
		}
	}
	return false
}

// ValidationError reports an invalid application workflow graph. It is
// the dedicated error type NewEngine returns when an *App fails
// validation, carrying every problem found rather than just the first.
type ValidationError struct {
	// App is the application name.
	App string
	// Problems lists every validation failure, in deterministic order.
	Problems []string
}

// Error implements error.
func (e *ValidationError) Error() string {
	if len(e.Problems) == 1 {
		return fmt.Sprintf("app %s: %s", e.App, e.Problems[0])
	}
	msg := fmt.Sprintf("app %s: %d problems:", e.App, len(e.Problems))
	for _, p := range e.Problems {
		msg += "\n  - " + p
	}
	return msg
}

// Validate checks the workflow graph:
//
//   - at least one function and one external input;
//   - no duplicate or nil function registrations (recorded by
//     AddMap/AddUpdate);
//   - every subscribed stream is an external input or is published by
//     some function (no dangling edges);
//   - no function publishes into an external input stream (the
//     assumption that makes source throttling safe, Section 5);
//   - every declared output stream is published by some function;
//   - function names are non-empty.
//
// It returns nil or a *ValidationError collecting every problem.
// NewEngine calls it, so a misconfigured app fails at construction
// with the full list instead of misbehaving mid-stream.
func (a *App) Validate() error {
	problems := append([]string(nil), a.problems...)
	if len(a.functions) == 0 {
		problems = append(problems, "no map or update functions")
	}
	if len(a.inputs) == 0 {
		problems = append(problems, "no external input streams declared")
	}
	published := make(map[string]bool)
	for _, f := range a.Functions() {
		name := f.Name()
		if name == "" {
			problems = append(problems, "function with empty name")
		}
		for _, s := range f.Publishes {
			if a.inputs[s] {
				problems = append(problems, fmt.Sprintf("function %s publishes into external input stream %s", name, s))
			}
			published[s] = true
		}
	}
	for _, f := range a.Functions() {
		name := f.Name()
		if len(f.Subscribes) == 0 {
			problems = append(problems, fmt.Sprintf("function %s subscribes to no streams", name))
		}
		for _, s := range f.Subscribes {
			if !a.inputs[s] && !published[s] {
				problems = append(problems, fmt.Sprintf("function %s subscribes to stream %s that nothing produces", name, s))
			}
		}
	}
	for _, s := range sortedKeys(a.outputs) {
		if !published[s] && !a.inputs[s] {
			problems = append(problems, fmt.Sprintf("declared output stream %s is never published", s))
		}
	}
	if len(problems) == 0 {
		return nil
	}
	return &ValidationError{App: a.name, Problems: problems}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
