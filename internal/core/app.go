package core

import (
	"fmt"
	"sort"
	"time"
)

// FunctionKind distinguishes map from update nodes in the workflow.
type FunctionKind int

const (
	// KindMap marks a map function node.
	KindMap FunctionKind = iota
	// KindUpdate marks an update function node.
	KindUpdate
)

// FunctionSpec describes one node of the workflow graph: a map or
// update function, the streams it subscribes to, and the streams it
// declares it may publish to (the edges of the paper's configuration-
// file graph).
type FunctionSpec struct {
	Kind FunctionKind
	// Mapper is set when Kind == KindMap.
	Mapper Mapper
	// Updater is set when Kind == KindUpdate.
	Updater Updater
	// Subscribes lists the input streams. All events from these streams
	// are fed to the function in increasing timestamp order.
	Subscribes []string
	// Publishes lists the streams the function may emit to. Publishing
	// to an undeclared stream is a runtime error: the workflow graph
	// comes from the application's configuration file and the engines
	// rely on it for routing.
	Publishes []string
	// TTL is the slate time-to-live for update functions; zero means
	// forever (the paper's default). Configurable per update function
	// because different updaters track data with different shelf lives
	// (Section 4.2).
	TTL time.Duration
}

// Name returns the function's workflow name.
func (f *FunctionSpec) Name() string {
	if f.Kind == KindMap {
		return f.Mapper.Name()
	}
	return f.Updater.Name()
}

// App is a MapUpdate application: a directed workflow graph (cycles
// allowed) whose nodes are map and update functions and whose edges
// are streams (Section 3).
type App struct {
	name      string
	functions map[string]*FunctionSpec
	inputs    map[string]bool
	outputs   map[string]bool
}

// NewApp returns an empty application with the given name.
func NewApp(name string) *App {
	return &App{
		name:      name,
		functions: make(map[string]*FunctionSpec),
		inputs:    make(map[string]bool),
		outputs:   make(map[string]bool),
	}
}

// Name returns the application name.
func (a *App) Name() string { return a.name }

// Input declares an external input stream (e.g. the Twitter Firehose).
// Engines assume no function publishes into an external input, which
// is what makes source throttling deadlock-free (Section 5).
func (a *App) Input(streams ...string) *App {
	for _, s := range streams {
		a.inputs[s] = true
	}
	return a
}

// Output declares a stream whose events form part of the application's
// result (alongside slates).
func (a *App) Output(streams ...string) *App {
	for _, s := range streams {
		a.outputs[s] = true
	}
	return a
}

// AddMap adds a map function subscribing to subs and publishing to
// pubs.
func (a *App) AddMap(m Mapper, subs, pubs []string) *App {
	a.functions[m.Name()] = &FunctionSpec{
		Kind:       KindMap,
		Mapper:     m,
		Subscribes: append([]string(nil), subs...),
		Publishes:  append([]string(nil), pubs...),
	}
	return a
}

// AddUpdate adds an update function subscribing to subs and publishing
// to pubs with the given slate TTL (0 = forever).
func (a *App) AddUpdate(u Updater, subs, pubs []string, ttl time.Duration) *App {
	a.functions[u.Name()] = &FunctionSpec{
		Kind:       KindUpdate,
		Updater:    u,
		Subscribes: append([]string(nil), subs...),
		Publishes:  append([]string(nil), pubs...),
		TTL:        ttl,
	}
	return a
}

// Function returns the named function spec, or nil.
func (a *App) Function(name string) *FunctionSpec { return a.functions[name] }

// Functions returns all function specs sorted by name; the
// deterministic order matters when one event fans out to several
// subscribers.
func (a *App) Functions() []*FunctionSpec {
	names := make([]string, 0, len(a.functions))
	for n := range a.functions {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*FunctionSpec, len(names))
	for i, n := range names {
		out[i] = a.functions[n]
	}
	return out
}

// Updaters returns the names of all update functions, sorted.
func (a *App) Updaters() []string {
	var out []string
	for n, f := range a.functions {
		if f.Kind == KindUpdate {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Inputs returns the declared external input streams, sorted.
func (a *App) Inputs() []string { return sortedKeys(a.inputs) }

// Outputs returns the declared output streams, sorted.
func (a *App) Outputs() []string { return sortedKeys(a.outputs) }

// IsInput reports whether the stream is a declared external input.
func (a *App) IsInput(stream string) bool { return a.inputs[stream] }

// IsOutput reports whether the stream is a declared output.
func (a *App) IsOutput(stream string) bool { return a.outputs[stream] }

// Subscribers returns the names of functions subscribed to the stream,
// sorted for deterministic fan-out order.
func (a *App) Subscribers(stream string) []string {
	var out []string
	for n, f := range a.functions {
		for _, s := range f.Subscribes {
			if s == stream {
				out = append(out, n)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// TTLFor returns the slate TTL configured for the named updater, used
// by slate caches as their per-updater TTL source.
func (a *App) TTLFor(updater string) time.Duration {
	if f := a.functions[updater]; f != nil {
		return f.TTL
	}
	return 0
}

// MayPublish reports whether the named function declared the stream as
// one of its outputs.
func (a *App) MayPublish(function, stream string) bool {
	f := a.functions[function]
	if f == nil {
		return false
	}
	for _, s := range f.Publishes {
		if s == stream {
			return true
		}
	}
	return false
}

// Validate checks the workflow graph:
//
//   - at least one function and one external input;
//   - every subscribed stream is an external input or is published by
//     some function (no dangling edges);
//   - no function publishes into an external input stream (the
//     assumption that makes source throttling safe, Section 5);
//   - every declared output stream is published by some function;
//   - function names are non-empty.
func (a *App) Validate() error {
	if len(a.functions) == 0 {
		return fmt.Errorf("app %s: no map or update functions", a.name)
	}
	if len(a.inputs) == 0 {
		return fmt.Errorf("app %s: no external input streams declared", a.name)
	}
	published := make(map[string]bool)
	for name, f := range a.functions {
		if name == "" {
			return fmt.Errorf("app %s: function with empty name", a.name)
		}
		for _, s := range f.Publishes {
			if a.inputs[s] {
				return fmt.Errorf("app %s: function %s publishes into external input stream %s", a.name, name, s)
			}
			published[s] = true
		}
	}
	for name, f := range a.functions {
		if len(f.Subscribes) == 0 {
			return fmt.Errorf("app %s: function %s subscribes to no streams", a.name, name)
		}
		for _, s := range f.Subscribes {
			if !a.inputs[s] && !published[s] {
				return fmt.Errorf("app %s: function %s subscribes to stream %s that nothing produces", a.name, name, s)
			}
		}
	}
	for s := range a.outputs {
		if !published[s] && !a.inputs[s] {
			return fmt.Errorf("app %s: declared output stream %s is never published", a.name, s)
		}
	}
	return nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
