// Package core defines the MapUpdate programming model of Section 3 of
// the paper: events, streams, map and update functions, slates, and
// applications as workflow graphs. It also provides the Reference
// engine — a single-goroutine executor that produces the paper's
// "well-defined" canonical execution (events fed in global timestamp
// order with deterministic tie-breaking), which the distributed
// engines are tested against.
package core

import (
	"muppet/internal/event"
)

// Emitter is the Go equivalent of the paper's PerformerUtilities
// (Appendix A): the handle through which a running map or update
// function publishes events and, for updaters, replaces its slate.
type Emitter interface {
	// Publish emits an event with the given key and value to a stream.
	// The framework assigns the event a timestamp strictly greater than
	// the input event's timestamp, which keeps cyclic workflows
	// well-defined (Section 3).
	Publish(stream, key string, value []byte) error
	// ReplaceSlate replaces the slate of the <updater, key> pair the
	// current update call is running for. Calling it from a map
	// function is an error (maps are memoryless).
	ReplaceSlate(value []byte)
}

// Mapper is a map function: map(event) -> event*. Mappers are
// memoryless; they subscribe to streams and emit zero or more events
// per input event.
type Mapper interface {
	// Name identifies the map function in the workflow. Because the
	// same code can be reused as different functions, each function
	// instance carries a unique name (Appendix A).
	Name() string
	// Map processes one input event.
	Map(emit Emitter, in event.Event)
}

// Updater is an update function: update(event, slate) -> event*. When
// called with an event with key k, it also receives the slate S(U,k) —
// the summary of all events with key k this updater has seen so far.
// A nil slate means the slate does not exist yet (first event for the
// key, or the slate's TTL expired); the updater must initialize it.
type Updater interface {
	// Name identifies the update function in the workflow.
	Name() string
	// Update processes one input event together with its slate.
	Update(emit Emitter, in event.Event, slate []byte)
}

// MapFunc adapts a function literal to the Mapper interface.
type MapFunc struct {
	// FName is the function's unique workflow name.
	FName string
	// Fn is the map body.
	Fn func(emit Emitter, in event.Event)
}

// Name implements Mapper.
func (m MapFunc) Name() string { return m.FName }

// Map implements Mapper.
func (m MapFunc) Map(emit Emitter, in event.Event) { m.Fn(emit, in) }

// UpdateFunc adapts a function literal to the Updater interface.
type UpdateFunc struct {
	// FName is the function's unique workflow name.
	FName string
	// Fn is the update body.
	Fn func(emit Emitter, in event.Event, slate []byte)
}

// Name implements Updater.
func (u UpdateFunc) Name() string { return u.FName }

// Update implements Updater.
func (u UpdateFunc) Update(emit Emitter, in event.Event, slate []byte) { u.Fn(emit, in, slate) }
