package httpapi

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"muppet/internal/engine"
	"muppet/internal/event"
	"muppet/internal/ingress"
	"muppet/internal/query"
	"muppet/internal/recovery"
)

type fakeEngine struct {
	slates map[string][]byte
	queues map[string]int
}

func (f *fakeEngine) Slate(updater, key string) []byte { return f.slates[updater+"/"+key] }
func (f *fakeEngine) LargestQueues() map[string]int    { return f.queues }
func (f *fakeEngine) Updaters() []string               { return []string{"U1", "U2"} }

func newServer() (*httptest.Server, *fakeEngine) {
	f := &fakeEngine{
		slates: map[string][]byte{"U1/walmart": []byte(`{"count":42}`)},
		queues: map[string]int{"machine-00": 7},
	}
	return httptest.NewServer(Handler(f)), f
}

func TestSlateFetchFound(t *testing.T) {
	srv, _ := newServer()
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/slate/U1/walmart")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != `{"count":42}` {
		t.Fatalf("body = %q", body)
	}
}

func TestSlateFetchMissing(t *testing.T) {
	srv, _ := newServer()
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/slate/U1/nothere")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestSlateFetchBadPath(t *testing.T) {
	srv, _ := newServer()
	defer srv.Close()
	for _, path := range []string{"/slate/", "/slate/onlyupdater", "/slate//key"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestSlateKeyMayContainSlashes(t *testing.T) {
	srv, f := newServer()
	defer srv.Close()
	f.slates["U1/topic/14"] = []byte("7")
	resp, err := http.Get(srv.URL + "/slate/U1/topic/14")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "7" {
		t.Fatalf("status=%d body=%q", resp.StatusCode, body)
	}
}

func TestStatusEndpoint(t *testing.T) {
	srv, _ := newServer()
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Queues   map[string]int `json:"queues"`
		Updaters []string       `json:"updaters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queues["machine-00"] != 7 {
		t.Fatalf("queues = %v", st.Queues)
	}
	if len(st.Updaters) != 2 {
		t.Fatalf("updaters = %v", st.Updaters)
	}
}

// recoveryEngine adds the RecoveryReporter surface to the fake.
type recoveryEngine struct {
	fakeEngine
	status recovery.Status
}

func (r *recoveryEngine) RecoveryStatus() recovery.Status { return r.status }

func TestRecoveryStatusServed(t *testing.T) {
	f := &recoveryEngine{status: recovery.Status{
		Machines: []recovery.MachineStatus{
			{Name: "machine-00", Alive: true, InRing: true},
			{Name: "machine-01", Alive: false, InRing: false, Failed: true},
		},
		DetectorEnabled: true,
		Failovers:       1,
		WALRecords:      3,
	}}
	srv := httptest.NewServer(Handler(f))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/recovery")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var got recovery.Status
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Failovers != 1 || got.WALRecords != 3 || len(got.Machines) != 2 {
		t.Fatalf("decoded status = %+v", got)
	}
	if !got.Machines[1].Failed || got.Machines[1].Alive {
		t.Fatalf("machine view = %+v", got.Machines[1])
	}
}

func TestRecoveryStatusNotSupported(t *testing.T) {
	srv, _ := newServer()
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/recovery")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", resp.StatusCode)
	}
}

// ingestingEngine extends fakeEngine with the batched-ingress surface.
type ingestingEngine struct {
	fakeEngine
	got  []event.Event
	fail error
}

func (f *ingestingEngine) IngestBatch(evs []event.Event) (int, error) {
	f.got = append(f.got, evs...)
	if f.fail != nil {
		return 0, f.fail
	}
	return len(evs), nil
}

func TestIngestNotSupportedWithoutIngester(t *testing.T) {
	srv, _ := newServer()
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(`[]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", resp.StatusCode)
	}
}

func TestIngestRoundTrip(t *testing.T) {
	f := &ingestingEngine{}
	srv := httptest.NewServer(Handler(f))
	defer srv.Close()
	body := `[{"stream":"S1","ts":5,"key":"a","value":"checkin:Walmart"},{"stream":"S1","ts":6,"key":"b"}]`
	resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var reply IngestReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Events != 2 || reply.Accepted != 2 || reply.Dropped != 0 {
		t.Fatalf("reply = %+v", reply)
	}
	if len(f.got) != 2 {
		t.Fatalf("engine saw %d events", len(f.got))
	}
	if f.got[0].Stream != "S1" || f.got[0].TS != 5 || f.got[0].Key != "a" || string(f.got[0].Value) != "checkin:Walmart" {
		t.Fatalf("event decoded wrong: %+v", f.got[0])
	}
	if f.got[1].Value != nil {
		t.Fatalf("empty value should decode to nil, got %q", f.got[1].Value)
	}
}

func TestIngestPartialBatchReportsReasons(t *testing.T) {
	f := &ingestingEngine{}
	srv := httptest.NewServer(Handler(&partialEngine{inner: f}))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/ingest", "application/json",
		strings.NewReader(`[{"stream":"S1","key":"a"},{"stream":"S1","key":"b"}]`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial acceptance should be 200, got %d", resp.StatusCode)
	}
	var reply IngestReply
	json.NewDecoder(resp.Body).Decode(&reply)
	if reply.Accepted != 1 || reply.Dropped != 1 || reply.Reasons["batch-partial"] != 1 {
		t.Fatalf("reply = %+v", reply)
	}
}

// partialEngine accepts all but one delivery of every batch.
type partialEngine struct{ inner *ingestingEngine }

func (p *partialEngine) Slate(updater, key string) []byte { return p.inner.Slate(updater, key) }
func (p *partialEngine) LargestQueues() map[string]int    { return p.inner.LargestQueues() }
func (p *partialEngine) IngestBatch(evs []event.Event) (int, error) {
	return len(evs) - 1, &ingress.BatchError{
		Events: len(evs), Accepted: len(evs) - 1, Dropped: 1,
		Reasons: map[string]int{"batch-partial": 1},
	}
}

func TestIngestBadJSON(t *testing.T) {
	f := &ingestingEngine{}
	srv := httptest.NewServer(Handler(f))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestIngestNotInputStream(t *testing.T) {
	f := &ingestingEngine{fail: &ingress.NotInputError{Stream: "S9"}}
	srv := httptest.NewServer(Handler(f))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/ingest", "application/json",
		strings.NewReader(`[{"stream":"S9","key":"a"}]`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var reply IngestReply
	json.NewDecoder(resp.Body).Decode(&reply)
	if reply.Error == "" {
		t.Fatal("error missing from reply")
	}
}

func TestIngestStoppedEngineIs503(t *testing.T) {
	f := &ingestingEngine{fail: ingress.ErrStopped}
	srv := httptest.NewServer(Handler(f))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/ingest", "application/json",
		strings.NewReader(`[{"stream":"S1","key":"a"}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

func TestIngestRejectsGet(t *testing.T) {
	f := &ingestingEngine{}
	srv := httptest.NewServer(Handler(f))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}

// nodeEngine adds the NodeInfo surface to the fake.
type nodeEngine struct {
	fakeEngine
}

func (n *nodeEngine) TransportName() string  { return "tcp" }
func (n *nodeEngine) MachineNames() []string { return []string{"machine-00", "machine-01"} }
func (n *nodeEngine) LocalNames() []string   { return []string{"machine-00"} }

func TestStatusReportsNodeInfo(t *testing.T) {
	srv := httptest.NewServer(Handler(&nodeEngine{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Transport string   `json:"transport"`
		Machines  []string `json:"machines"`
		Local     []string `json:"local"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Transport != "tcp" {
		t.Fatalf("transport = %q", st.Transport)
	}
	if len(st.Machines) != 2 || st.Machines[0] != "machine-00" {
		t.Fatalf("machines = %v", st.Machines)
	}
	if len(st.Local) != 1 || st.Local[0] != "machine-00" {
		t.Fatalf("local = %v", st.Local)
	}
}

// queryEngine adds the Querier and QueryWatcher surfaces to the fake.
type queryEngine struct {
	fakeEngine
	spec query.Spec
	res  *query.Result
	err  error
	sink *engine.Sink
}

func (q *queryEngine) Query(spec query.Spec) (*query.Result, error) {
	q.spec = spec
	return q.res, q.err
}

func (q *queryEngine) QueryWatch(spec query.Spec, buf int) (*engine.Subscription, func(), error) {
	if err := spec.Normalize(); err != nil {
		return nil, nil, err
	}
	q.spec = spec
	sub := q.sink.Subscribe("_query/1", buf)
	return sub, func() { sub.Cancel() }, nil
}

func TestQueryNotSupportedWithoutQuerier(t *testing.T) {
	srv, _ := newServer()
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(`{"updater":"U1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", resp.StatusCode)
	}
}

func TestQueryRejectsGetAndBadSpec(t *testing.T) {
	srv := httptest.NewServer(Handler(&queryEngine{res: &query.Result{}}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/query", "application/json", strings.NewReader(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec status = %d, want 400", resp.StatusCode)
	}
}

func TestQueryStreamsRowsGroupsAndStats(t *testing.T) {
	f := &queryEngine{res: &query.Result{
		Rows:   []query.Row{{Key: "a", Value: json.RawMessage(`1`)}},
		Groups: []query.Group{{Key: "Walmart", Count: 10}},
		Stats:  query.ExecStats{RowsScanned: 3, RowsReturned: 2},
	}}
	srv := httptest.NewServer(Handler(f))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"updater":"U1","agg":"topk","k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	if f.spec.Updater != "U1" || f.spec.Agg != "topk" || f.spec.K != 3 {
		t.Fatalf("spec decoded wrong: %+v", f.spec)
	}
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %s", len(lines), body)
	}
	var last QueryLine
	if err := json.Unmarshal([]byte(lines[2]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Stats == nil || last.Stats.RowsScanned != 3 {
		t.Fatalf("final line is not the stats: %s", lines[2])
	}
	var first QueryLine
	json.Unmarshal([]byte(lines[0]), &first)
	if first.Row == nil || first.Row.Key != "a" {
		t.Fatalf("first line is not the row: %s", lines[0])
	}
}

func TestQueryErrorIs400(t *testing.T) {
	f := &queryEngine{err: errors.New("no updater \"U9\"")}
	srv := httptest.NewServer(Handler(f))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(`{"updater":"U9"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "U9") {
		t.Fatalf("status=%d body=%q", resp.StatusCode, body)
	}
}

func TestQueryWatchStreamsChangedAnswers(t *testing.T) {
	f := &queryEngine{sink: engine.NewSink(0)}
	srv := httptest.NewServer(Handler(f))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"updater":"U1","watch":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	for i := 1; i <= 2; i++ {
		payload, _ := json.Marshal(query.Result{Stats: query.ExecStats{RowsReturned: uint64(i)}})
		f.sink.Record(event.Event{Stream: "_query/1", Key: "U1", Value: payload})
	}
	sc := bufio.NewScanner(resp.Body)
	for i := 1; i <= 2; i++ {
		if !sc.Scan() {
			t.Fatalf("stream ended before line %d: %v", i, sc.Err())
		}
		var res query.Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if res.Stats.RowsReturned != uint64(i) {
			t.Fatalf("line %d = %s", i, sc.Text())
		}
	}
}

func TestStatusOmitsNodeInfoWhenUnsupported(t *testing.T) {
	srv, _ := newServer()
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(body), `"transport"`) {
		t.Fatalf("transport reported by an engine without NodeInfo: %s", body)
	}
}
