package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"muppet/internal/recovery"
)

type fakeEngine struct {
	slates map[string][]byte
	queues map[string]int
}

func (f *fakeEngine) Slate(updater, key string) []byte { return f.slates[updater+"/"+key] }
func (f *fakeEngine) LargestQueues() map[string]int    { return f.queues }
func (f *fakeEngine) Updaters() []string               { return []string{"U1", "U2"} }

func newServer() (*httptest.Server, *fakeEngine) {
	f := &fakeEngine{
		slates: map[string][]byte{"U1/walmart": []byte(`{"count":42}`)},
		queues: map[string]int{"machine-00": 7},
	}
	return httptest.NewServer(Handler(f)), f
}

func TestSlateFetchFound(t *testing.T) {
	srv, _ := newServer()
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/slate/U1/walmart")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != `{"count":42}` {
		t.Fatalf("body = %q", body)
	}
}

func TestSlateFetchMissing(t *testing.T) {
	srv, _ := newServer()
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/slate/U1/nothere")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestSlateFetchBadPath(t *testing.T) {
	srv, _ := newServer()
	defer srv.Close()
	for _, path := range []string{"/slate/", "/slate/onlyupdater", "/slate//key"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestSlateKeyMayContainSlashes(t *testing.T) {
	srv, f := newServer()
	defer srv.Close()
	f.slates["U1/topic/14"] = []byte("7")
	resp, err := http.Get(srv.URL + "/slate/U1/topic/14")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "7" {
		t.Fatalf("status=%d body=%q", resp.StatusCode, body)
	}
}

func TestStatusEndpoint(t *testing.T) {
	srv, _ := newServer()
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Queues   map[string]int `json:"queues"`
		Updaters []string       `json:"updaters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queues["machine-00"] != 7 {
		t.Fatalf("queues = %v", st.Queues)
	}
	if len(st.Updaters) != 2 {
		t.Fatalf("updaters = %v", st.Updaters)
	}
}

// recoveryEngine adds the RecoveryReporter surface to the fake.
type recoveryEngine struct {
	fakeEngine
	status recovery.Status
}

func (r *recoveryEngine) RecoveryStatus() recovery.Status { return r.status }

func TestRecoveryStatusServed(t *testing.T) {
	f := &recoveryEngine{status: recovery.Status{
		Machines: []recovery.MachineStatus{
			{Name: "machine-00", Alive: true, InRing: true},
			{Name: "machine-01", Alive: false, InRing: false, Failed: true},
		},
		DetectorEnabled: true,
		Failovers:       1,
		WALRecords:      3,
	}}
	srv := httptest.NewServer(Handler(f))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/recovery")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var got recovery.Status
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Failovers != 1 || got.WALRecords != 3 || len(got.Machines) != 2 {
		t.Fatalf("decoded status = %+v", got)
	}
	if !got.Machines[1].Failed || got.Machines[1].Alive {
		t.Fatalf("machine view = %+v", got.Machines[1])
	}
}

func TestRecoveryStatusNotSupported(t *testing.T) {
	srv, _ := newServer()
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/recovery")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", resp.StatusCode)
	}
}
