// Package httpapi implements Muppet's HTTP service: the slate-read
// API of Section 4.4 of the paper (fetch live slates by updater name
// and key), the basic status endpoint of Section 4.5 (largest queue
// depths), the streaming ingress endpoint POST /ingest, which accepts
// JSON event batches and feeds them through the engines' batched
// ingestion path, and the relational query endpoint POST /query,
// which runs scan/filter/project/aggregate pipelines over live slates
// (one-shot NDJSON answers, or a continuous stream with "watch").
//
// The URI of a slate fetch includes the name of the updater and the
// key of the slate: GET /slate/{updater}/{key}. The fetch is served
// from the engine's live slate cache — forwarding internally to the
// owning machine — rather than from the durable key-value store, to
// ensure an up-to-date reply.
package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"muppet/internal/cluster"
	"muppet/internal/engine"
	"muppet/internal/event"
	"muppet/internal/ingress"
	"muppet/internal/obs"
	"muppet/internal/query"
	"muppet/internal/recovery"
	"muppet/internal/slate"
)

// SlateReader is the engine-side surface the HTTP service needs. Both
// Muppet engines satisfy it.
type SlateReader interface {
	// Slate resolves the live slate for <updater, key> wherever it is
	// cached; nil means no such slate.
	Slate(updater, key string) []byte
	// LargestQueues reports the deepest event queue per machine.
	LargestQueues() map[string]int
}

// Updaters is implemented by engines that can enumerate their update
// functions; the status endpoint lists them when available.
type Updaters interface {
	Updaters() []string
}

// BulkReader is implemented by engines that support bulk slate dumps
// from the durable store (Section 5 "Bulk Reading of Slates"); when
// available, GET /slates/{updater} serves a JSON object of every
// stored slate, flushed first so the dump is current.
type BulkReader interface {
	FlushSlates()
	StoredSlates(updater string) map[string][]byte
}

// Ingester is implemented by engines exposing the batched ingestion
// path; when available, POST /ingest accepts a JSON array of events
// and returns the batch accounting.
type Ingester interface {
	IngestBatch(evs []event.Event) (accepted int, err error)
}

// IngestEvent is the JSON shape of one event posted to /ingest.
type IngestEvent struct {
	// Stream is the destination input stream (required).
	Stream string `json:"stream"`
	// TS is the event's global timestamp.
	TS int64 `json:"ts,omitempty"`
	// Key is the grouping key.
	Key string `json:"key"`
	// Value is the event payload as a UTF-8 string.
	Value string `json:"value,omitempty"`
}

// IngestReply is the JSON response of POST /ingest.
type IngestReply struct {
	// Events is the number of events in the posted batch.
	Events int `json:"events"`
	// Accepted is the number fully accepted by the engine.
	Accepted int `json:"accepted"`
	// Dropped is the number of dropped deliveries, when any.
	Dropped int `json:"dropped,omitempty"`
	// Reasons tallies dropped deliveries by loss reason.
	Reasons map[string]int `json:"reasons,omitempty"`
	// Error carries a non-partial ingestion failure.
	Error string `json:"error,omitempty"`
}

// NodeInfo is implemented by engines that can describe the cluster
// node they run on; GET /status then reports the transport in use, the
// full member list, and the machines this node hosts — on a networked
// cluster each node answers for itself.
type NodeInfo interface {
	TransportName() string
	MachineNames() []string
	LocalNames() []string
}

// RecoveryReporter is implemented by engines running the unified
// recovery subsystem; when available, GET /recovery serves its status
// (ring membership, failover and rejoin counts, WAL replay totals, and
// the latest incident reports) so operators can observe failover.
type RecoveryReporter interface {
	RecoveryStatus() recovery.Status
}

// MetricsSource is implemented by engines carrying an observability
// registry; when available, GET /metrics serves the Prometheus text
// exposition and GET /statsz a structured JSON snapshot of the same
// collectors.
type MetricsSource interface {
	Metrics() *obs.Registry
}

// CacheReporter is implemented by engines that can aggregate their
// slate-cache statistics; GET /status then includes the cache counters
// (hits, misses, store traffic, codec errors).
type CacheReporter interface {
	SlateCacheStats() slate.CacheStats
}

// ClusterReporter is implemented by engines that expose their cluster
// node; GET /status then includes delivery counters and — on a TCP
// node — the transport's dial/frame/byte counters.
type ClusterReporter interface {
	Cluster() *cluster.Cluster
}

// Querier is implemented by engines carrying the query subsystem;
// when available, POST /query answers one-shot relational queries
// (scan, filter, project, aggregate) over live slates, cluster-wide.
type Querier interface {
	Query(spec query.Spec) (*query.Result, error)
}

// QueryWatcher is implemented by engines supporting continuous
// queries; POST /query with "watch": true then streams the re-evaluated
// result as NDJSON — one marshaled query.Result per line, emitted only
// when the answer changes — until the client disconnects.
type QueryWatcher interface {
	QueryWatch(spec query.Spec, buf int) (*engine.Subscription, func(), error)
}

// QueryLine is one NDJSON line of a one-shot /query response: exactly
// one field is set per line. Rows and groups stream first; the Stats
// line terminates the answer.
type QueryLine struct {
	Row   *query.Row       `json:"row,omitempty"`
	Group *query.Group     `json:"group,omitempty"`
	Stats *query.ExecStats `json:"stats,omitempty"`
}

// want resolves an optional engine capability: it returns the engine
// as T when implemented, and otherwise answers 501 Not Implemented
// naming the missing feature. Every optional endpoint gates through
// it so "not supported" stays one code path.
func want[T any](w http.ResponseWriter, r SlateReader, feature string) (T, bool) {
	t, ok := any(r).(T)
	if !ok {
		http.Error(w, feature+" not supported", http.StatusNotImplemented)
	}
	return t, ok
}

// metricsOf resolves the engine's observability registry, answering
// 501 when the engine carries none (either no MetricsSource or a nil
// registry).
func metricsOf(w http.ResponseWriter, r SlateReader) (*obs.Registry, bool) {
	ms, ok := want[MetricsSource](w, r, "metrics")
	if !ok {
		return nil, false
	}
	if reg := ms.Metrics(); reg != nil {
		return reg, true
	}
	http.Error(w, "metrics not supported", http.StatusNotImplemented)
	return nil, false
}

// Handler returns the HTTP handler serving slate fetches, status, and
// batched ingestion.
//
//	GET  /slate/{updater}/{key} -> 200 slate bytes | 404
//	GET  /status                -> 200 JSON {queues, updaters, cache, transport stats}
//	GET  /recovery              -> 200 JSON recovery.Status | 501
//	GET  /metrics               -> 200 Prometheus text exposition | 501
//	GET  /statsz                -> 200 JSON []obs.SnapshotEntry | 501
//	POST /ingest                -> 200 JSON IngestReply | 400 | 501
//	POST /query                 -> 200 NDJSON QueryLine stream | 400 | 501
func Handler(r SlateReader) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, req *http.Request) {
		ing, ok := want[Ingester](w, r, "batched ingestion")
		if !ok {
			return
		}
		if req.Method != http.MethodPost {
			http.Error(w, "POST a JSON array of events", http.StatusMethodNotAllowed)
			return
		}
		var in []IngestEvent
		if err := json.NewDecoder(req.Body).Decode(&in); err != nil {
			http.Error(w, "bad event batch: "+err.Error(), http.StatusBadRequest)
			return
		}
		evs := make([]event.Event, len(in))
		for i, e := range in {
			evs[i] = event.Event{
				Stream: e.Stream,
				TS:     event.Timestamp(e.TS),
				Key:    e.Key,
			}
			if e.Value != "" {
				evs[i].Value = []byte(e.Value)
			}
		}
		accepted, err := ing.IngestBatch(evs)
		reply := IngestReply{Events: len(evs), Accepted: accepted}
		status := http.StatusOK
		var be *ingress.BatchError
		switch {
		case err == nil:
		case errors.As(err, &be):
			// Partial acceptance is a successful exchange; the body
			// carries the loss accounting.
			reply.Dropped = be.Dropped
			reply.Reasons = be.Reasons
		default:
			reply.Error = err.Error()
			status = http.StatusBadRequest
			var nie *ingress.NotInputError
			if !errors.As(err, &nie) {
				// Stopped engine or other non-caller fault.
				status = http.StatusServiceUnavailable
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(reply)
	})
	mux.HandleFunc("/slate/", func(w http.ResponseWriter, req *http.Request) {
		rest := strings.TrimPrefix(req.URL.Path, "/slate/")
		parts := strings.SplitN(rest, "/", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			http.Error(w, "usage: /slate/{updater}/{key}", http.StatusBadRequest)
			return
		}
		updater, key := parts[0], parts[1]
		v := r.Slate(updater, key)
		if v == nil {
			http.Error(w, "no slate for "+updater+"/"+key, http.StatusNotFound)
			return
		}
		// The engine materializes the reply through the slate codec
		// (typed slates re-encode at most once per read); JSONCodec
		// output — and every hand-rolled JSON slate — is served as
		// JSON, anything else as an opaque blob.
		if json.Valid(v) {
			w.Header().Set("Content-Type", "application/json")
		} else {
			w.Header().Set("Content-Type", "application/octet-stream")
		}
		w.Write(v)
	})
	mux.HandleFunc("/slates/", func(w http.ResponseWriter, req *http.Request) {
		br, ok := want[BulkReader](w, r, "bulk slate reads")
		if !ok {
			return
		}
		updater := strings.TrimPrefix(req.URL.Path, "/slates/")
		if updater == "" || strings.Contains(updater, "/") {
			http.Error(w, "usage: /slates/{updater}", http.StatusBadRequest)
			return
		}
		br.FlushSlates()
		dump := br.StoredSlates(updater)
		if dump == nil {
			http.Error(w, "no durable store configured", http.StatusNotFound)
			return
		}
		// []byte values marshal as base64 strings, keeping arbitrary
		// slate blobs JSON-safe.
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(dump)
	})
	mux.HandleFunc("/recovery", func(w http.ResponseWriter, req *http.Request) {
		rr, ok := want[RecoveryReporter](w, r, "recovery status")
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rr.RecoveryStatus())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		reg, ok := metricsOf(w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, req *http.Request) {
		reg, ok := metricsOf(w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(reg.SnapshotJSON())
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, req *http.Request) {
		q, ok := want[Querier](w, r, "queries")
		if !ok {
			return
		}
		if req.Method != http.MethodPost {
			http.Error(w, "POST a JSON query spec", http.StatusMethodNotAllowed)
			return
		}
		var spec query.Spec
		if err := json.NewDecoder(req.Body).Decode(&spec); err != nil {
			http.Error(w, "bad query spec: "+err.Error(), http.StatusBadRequest)
			return
		}
		if spec.Watch {
			serveQueryWatch(w, req, r, spec)
			return
		}
		res, err := q.Query(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Stream the answer as NDJSON: rows first (scans), then groups
		// (aggregates), then one stats line closing the response.
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for i := range res.Rows {
			enc.Encode(QueryLine{Row: &res.Rows[i]})
		}
		for i := range res.Groups {
			enc.Encode(QueryLine{Group: &res.Groups[i]})
		}
		enc.Encode(QueryLine{Stats: &res.Stats})
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
		st := statusReply{Queues: r.LargestQueues()}
		if u, ok := r.(Updaters); ok {
			st.Updaters = u.Updaters()
		}
		if n, ok := r.(NodeInfo); ok {
			st.Transport = n.TransportName()
			st.Machines = n.MachineNames()
			st.Local = n.LocalNames()
		}
		if cr, ok := r.(CacheReporter); ok {
			cs := cr.SlateCacheStats()
			st.Cache = &cs
		}
		if clr, ok := r.(ClusterReporter); ok {
			if c := clr.Cluster(); c != nil {
				sends, _ := c.NetworkStats()
				st.Sends = sends
				st.Recvs = c.Recvs()
				ds := c.DeliveryStats()
				st.Delivery = &ds
				if tcp := cluster.UnwrapTCP(c.Transport()); tcp != nil {
					ts := tcp.Stats()
					st.TCP = &ts
				}
				if ch := cluster.UnwrapChaos(c.Transport()); ch != nil {
					cs := ch.Stats()
					st.Chaos = &cs
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
	})
	return mux
}

// serveQueryWatch runs a continuous query over the engine's watch
// machinery, streaming one marshaled query.Result per NDJSON line as
// the answer changes. The stream stays open until the client goes
// away (request context done) or the engine stops (subscription
// channel closed); each line is flushed immediately so `-watch`
// clients see deltas live.
func serveQueryWatch(w http.ResponseWriter, req *http.Request, r SlateReader, spec query.Spec) {
	qw, ok := want[QueryWatcher](w, r, "continuous queries")
	if !ok {
		return
	}
	sub, stop, err := qw.QueryWatch(spec, 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer stop()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush()
	}
	for {
		select {
		case <-req.Context().Done():
			return
		case ev, open := <-sub.C():
			if !open {
				return
			}
			w.Write(ev.Value)
			w.Write([]byte("\n"))
			if fl != nil {
				fl.Flush()
			}
		}
	}
}

type statusReply struct {
	// Queues maps machine name to its largest event-queue depth.
	Queues map[string]int `json:"queues"`
	// Updaters lists the application's update functions.
	Updaters []string `json:"updaters,omitempty"`
	// Transport names the cluster transport ("in-process" or "tcp").
	Transport string `json:"transport,omitempty"`
	// Machines is the full cluster member list.
	Machines []string `json:"machines,omitempty"`
	// Local is the subset of machines this node hosts.
	Local []string `json:"local,omitempty"`
	// Cache aggregates the node's slate-cache counters, including the
	// codec decode/encode error totals.
	Cache *slate.CacheStats `json:"cache,omitempty"`
	// Sends and Recvs count this node's machine-addressed deliveries.
	Sends uint64 `json:"sends,omitempty"`
	Recvs uint64 `json:"recvs,omitempty"`
	// Delivery carries the node's resilient-delivery counters: retries,
	// transient faults, exhausted budgets, and dedup-window absorption.
	Delivery *cluster.DeliveryStats `json:"delivery,omitempty"`
	// TCP carries the transport's dial/frame/byte counters on a
	// networked node.
	TCP *cluster.TCPStats `json:"tcp,omitempty"`
	// Chaos carries the fault-injection counters when the node's
	// transport is wrapped in a chaos layer.
	Chaos *cluster.ChaosStats `json:"chaos,omitempty"`
}
