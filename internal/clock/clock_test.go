package clock

import (
	"testing"
	"time"
)

func TestRealNowIsMonotonicEnough(t *testing.T) {
	var c Real
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatal("real clock went backwards")
	}
}

func TestFakeNowStartsAtGivenTime(t *testing.T) {
	start := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", f.Now(), start)
	}
}

func TestFakeAdvanceMovesNow(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	f.Advance(3 * time.Second)
	if got := f.Now(); !got.Equal(time.Unix(3, 0)) {
		t.Fatalf("Now = %v, want 3s", got)
	}
}

func TestFakeAfterFiresOnAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ch := f.After(2 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	f.Advance(1 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired too early")
	default:
	}
	f.Advance(1 * time.Second)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("After did not fire after deadline")
	}
}

func TestFakeAfterZeroFiresImmediately(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	select {
	case <-f.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestFakeSleepUnblocksConcurrently(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		f.Sleep(5 * time.Second)
		close(done)
	}()
	for f.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	f.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not unblock")
	}
}

func TestFakeAdvanceReleasesOnlyDueWaiters(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	early := f.After(1 * time.Second)
	late := f.After(10 * time.Second)
	f.Advance(2 * time.Second)
	select {
	case <-early:
	case <-time.After(time.Second):
		t.Fatal("early waiter not released")
	}
	select {
	case <-late:
		t.Fatal("late waiter released too soon")
	default:
	}
	if f.PendingWaiters() != 1 {
		t.Fatalf("PendingWaiters = %d, want 1", f.PendingWaiters())
	}
}
