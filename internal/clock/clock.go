// Package clock abstracts time so that engines and caches can run
// against a deterministic fake clock in tests and the experiment
// harness, and against the wall clock in production use.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time and timers.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for at least d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the time after d elapses.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Fake is a manually advanced clock. It is safe for concurrent use.
// Sleepers and After-waiters are released when Advance moves the clock
// past their deadline.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

type waiter struct {
	at time.Time
	ch chan time.Time
}

// NewFake returns a fake clock starting at the given time.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleep implements Clock; it blocks until Advance moves the clock past
// the deadline.
func (f *Fake) Sleep(d time.Duration) {
	<-f.After(d)
}

// After implements Clock.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &waiter{at: f.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- f.now
		return w.ch
	}
	f.waiters = append(f.waiters, w)
	return w.ch
}

// Advance moves the clock forward by d, releasing every waiter whose
// deadline has been reached.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	var keep []*waiter
	var fire []*waiter
	for _, w := range f.waiters {
		if !w.at.After(now) {
			fire = append(fire, w)
		} else {
			keep = append(keep, w)
		}
	}
	f.waiters = keep
	f.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
	}
}

// PendingWaiters reports how many sleepers are blocked; tests use it to
// synchronize with goroutines that are about to sleep.
func (f *Fake) PendingWaiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}
