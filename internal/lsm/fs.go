package lsm

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the engine writes through. Production
// uses OSFS; crash tests use MemFS, whose Sync/Rename fault points and
// power-cut semantics (unsynced bytes vanish) are what make the
// recovery tests real instead of best-effort.
//
// The engine's durability contract is expressed entirely in FS terms:
// a write is acknowledged only after the covering File.Sync returns,
// and a state transition (new segment set, new manifest) is committed
// only by Rename of a fully synced file.
type FS interface {
	// Create truncates-or-creates the named file for writing.
	Create(name string) (File, error)
	// Open opens the named file for reading (ReadAt).
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname's file. The
	// rename is the commit point of every multi-file state change.
	Rename(oldname, newname string) error
	// Remove deletes the named file.
	Remove(name string) error
	// List returns the file names (not paths) inside dir, sorted.
	List(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// SyncDir flushes dir's entry table, making completed Create,
	// Rename and Remove calls durable.
	SyncDir(dir string) error
}

// File is one open file: append-style writes, positional reads.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes written bytes to stable storage.
	Sync() error
	// Size reports the file's current length.
	Size() (int64, error)
}

// OSFS is the production FS backed by the operating system.
type OSFS struct{}

type osFile struct{ f *os.File }

func (f osFile) Write(p []byte) (int, error)             { return f.f.Write(p) }
func (f osFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f osFile) Close() error                            { return f.f.Close() }
func (f osFile) Sync() error                             { return f.f.Sync() }
func (f osFile) Size() (int64, error) {
	st, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// List implements FS.
func (OSFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir implements FS: fsync the directory so renames and creates
// survive power loss.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
