package lsm

import (
	"fmt"
	"testing"

	"muppet/internal/clock"
)

func benchEngine(b *testing.B, fs FS) *Engine {
	b.Helper()
	dir := "/bench"
	if _, ok := fs.(OSFS); ok {
		dir = b.TempDir()
	}
	e, err := Open(dir, Options{
		MemtableFlushBytes:  8 << 20,
		CompactionThreshold: 1 << 30, // benches drive compaction explicitly
		FS:                  fs,
		Clock:               clock.Real{},
		DisableAutoCompact:  true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	return e
}

func benchRows(n, batch int) [][]Row {
	val := make([]byte, 256)
	for i := range val {
		val[i] = byte(i)
	}
	batches := make([][]Row, 0, (n+batch-1)/batch)
	for i := 0; i < n; i += batch {
		rows := make([]Row, 0, batch)
		for j := i; j < i+batch && j < n; j++ {
			rows = append(rows, Row{Key: fmt.Sprintf("bench-key-%08d", j), Value: val})
		}
		batches = append(batches, rows)
	}
	return batches
}

// BenchmarkLSMPut measures single-row durable puts (one WAL group
// commit each) on the in-memory FS, isolating engine overhead from
// device fsync latency.
func BenchmarkLSMPut(b *testing.B) {
	e := benchEngine(b, NewMemFS())
	batches := benchRows(b.N, 1)
	b.ResetTimer()
	for _, rows := range batches {
		if _, err := e.Put(rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSMPutBatch100 measures group commit: 100 rows per WAL
// sync. Throughput per row should be far higher than BenchmarkLSMPut.
func BenchmarkLSMPutBatch100(b *testing.B) {
	e := benchEngine(b, NewMemFS())
	batches := benchRows(b.N*100, 100)
	b.ResetTimer()
	for _, rows := range batches {
		if _, err := e.Put(rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSMPutOS is the real-disk variant: every put is an actual
// fsync through the OS, which is the durability cost a node pays.
func BenchmarkLSMPutOS(b *testing.B) {
	e := benchEngine(b, OSFS{})
	batches := benchRows(b.N, 1)
	b.ResetTimer()
	for _, rows := range batches {
		if _, err := e.Put(rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSMGet contrasts the three read paths: a memtable hit (no
// disk), a bloom-filter skip (absent key, no disk), and a true segment
// read (sparse-index bounded block fetch).
func BenchmarkLSMGet(b *testing.B) {
	const n = 10_000
	setup := func(b *testing.B, flush bool) *Engine {
		e := benchEngine(b, NewMemFS())
		for _, rows := range benchRows(n, 100) {
			if _, err := e.Put(rows); err != nil {
				b.Fatal(err)
			}
		}
		if flush {
			if _, err := e.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		return e
	}

	b.Run("memtable-hit", func(b *testing.B) {
		e := setup(b, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok, _, _ := e.Get(fmt.Sprintf("bench-key-%08d", i%n)); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("bloom-skip", func(b *testing.B) {
		e := setup(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Get(fmt.Sprintf("absent-key-%08d", i))
		}
		b.StopTimer()
		s := e.Stats()
		b.ReportMetric(float64(s.BloomSkips)/float64(b.N), "skips/op")
	})
	b.Run("segment-read", func(b *testing.B) {
		e := setup(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok, _, _ := e.Get(fmt.Sprintf("bench-key-%08d", i%n)); !ok {
				b.Fatal("miss")
			}
		}
		b.StopTimer()
		s := e.Stats()
		b.ReportMetric(float64(s.BytesRead)/float64(b.N), "disk-B/op")
	})
}

// BenchmarkLSMCompact measures merging 4 overlapping 2.5k-row segments
// into one.
func BenchmarkLSMCompact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := benchEngine(b, NewMemFS())
		for s := 0; s < 4; s++ {
			for _, rows := range benchRows(2_500, 100) {
				if _, err := e.Put(rows); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := e.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, _, err := e.Compact(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		e.Close()
		b.StartTimer()
	}
}
