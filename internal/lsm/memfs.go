package lsm

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Op names one filesystem operation kind for fault injection.
type Op string

// Operation kinds observable by MemFS fault hooks.
const (
	OpCreate  Op = "create"
	OpWrite   Op = "write"
	OpSync    Op = "sync"
	OpRename  Op = "rename"
	OpRemove  Op = "remove"
	OpSyncDir Op = "syncdir"
)

// ErrCrashed is returned by every MemFS operation after a fault has
// fired (the simulated process is dead) and by operations through file
// handles that were open across a Crash (the simulated process that
// held them no longer exists).
var ErrCrashed = errors.New("lsm: filesystem crashed")

// MemFS is an in-memory FS with power-cut semantics, built for crash
// tests: bytes written but not yet covered by a Sync are lost on
// Crash, a fault hook can fail any single Create/Write/Sync/Rename/
// Remove/SyncDir call (after which the FS acts dead until Crash), and
// file handles held across a Crash are fenced off. Renames are atomic
// and durable at the moment they return, which models the
// rename-as-commit-point contract the engine relies on.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	gen   uint64 // bumped by Crash; stale handles are fenced
	dead  bool   // a fault fired; everything fails until Crash
	fault func(op Op, name string) error
	count map[Op]int
}

type memFile struct {
	data   []byte
	synced int // length guaranteed to survive Crash
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), count: make(map[Op]int)}
}

// SetFault installs a hook consulted before every operation; returning
// a non-nil error fails that operation and marks the FS dead (every
// later operation returns ErrCrashed) — the moment the hook fires is
// the moment the simulated power cut happens. A nil hook clears it.
func (fs *MemFS) SetFault(f func(op Op, name string) error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.fault = f
}

// FailAt arms a one-shot fault: the nth (1-based) operation of the
// given kind fails, counting from now.
func (fs *MemFS) FailAt(op Op, nth int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	seen := 0
	fs.fault = func(o Op, name string) error {
		if o != op {
			return nil
		}
		seen++
		if seen == nth {
			return fmt.Errorf("lsm: injected fault at %s #%d (%s)", op, nth, name)
		}
		return nil
	}
}

// Ops reports how many operations of each kind have been issued; crash
// tests use it to enumerate fault points exhaustively.
func (fs *MemFS) Ops() map[Op]int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make(map[Op]int, len(fs.count))
	for k, v := range fs.count {
		out[k] = v
	}
	return out
}

// Crash simulates a power cut and restart: every file's unsynced tail
// is discarded, handles opened before the crash are fenced off, the
// fault hook and dead state are cleared, and the FS is ready for a
// fresh Open of the same directory.
func (fs *MemFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		f.data = f.data[:f.synced]
	}
	fs.gen++
	fs.dead = false
	fs.fault = nil
}

// check consults the fault hook and the dead flag; it must be called
// with fs.mu held.
func (fs *MemFS) check(op Op, name string) error {
	if fs.dead {
		return ErrCrashed
	}
	fs.count[op]++
	if fs.fault != nil {
		if err := fs.fault(op, name); err != nil {
			fs.dead = true
			return err
		}
	}
	return nil
}

type memHandle struct {
	fs   *MemFS
	name string
	gen  uint64
}

func (h *memHandle) file() (*memFile, error) {
	if h.gen != h.fs.gen {
		return nil, ErrCrashed
	}
	f, ok := h.fs.files[h.name]
	if !ok {
		return nil, fmt.Errorf("lsm: memfs: %s: file removed", h.name)
	}
	return f, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.check(OpWrite, h.name); err != nil {
		return 0, err
	}
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.check(OpSync, h.name); err != nil {
		return err
	}
	f, err := h.file()
	if err != nil {
		return err
	}
	f.synced = len(f.data)
	return nil
}

func (h *memHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	return int64(len(f.data)), nil
}

func (h *memHandle) Close() error { return nil }

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check(OpCreate, name); err != nil {
		return nil, err
	}
	fs.files[name] = &memFile{}
	return &memHandle{fs: fs, name: name, gen: fs.gen}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.dead {
		return nil, ErrCrashed
	}
	if _, ok := fs.files[name]; !ok {
		return nil, fmt.Errorf("lsm: memfs: %s: no such file", name)
	}
	return &memHandle{fs: fs, name: name, gen: fs.gen}, nil
}

// Rename implements FS. It is atomic and immediately durable: the
// target keeps the source's synced watermark.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check(OpRename, oldname); err != nil {
		return err
	}
	f, ok := fs.files[oldname]
	if !ok {
		return fmt.Errorf("lsm: memfs: rename %s: no such file", oldname)
	}
	delete(fs.files, oldname)
	fs.files[newname] = f
	return nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check(OpRemove, name); err != nil {
		return err
	}
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("lsm: memfs: remove %s: no such file", name)
	}
	delete(fs.files, name)
	return nil
}

// List implements FS.
func (fs *MemFS) List(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.dead {
		return nil, ErrCrashed
	}
	clean := filepath.Clean(dir)
	var names []string
	for name := range fs.files {
		if filepath.Dir(name) == clean {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS; MemFS tracks no directory entries, so it
// only validates liveness.
func (fs *MemFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.dead {
		return ErrCrashed
	}
	return nil
}

// SyncDir implements FS. Creates and renames are already durable in
// this model, so beyond the fault point it is a no-op.
func (fs *MemFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.check(OpSyncDir, dir)
}

// Dump returns every file's durable (synced) length keyed by base
// name; tests use it to assert what would survive a power cut.
func (fs *MemFS) Dump() map[string]int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make(map[string]int, len(fs.files))
	for name, f := range fs.files {
		out[strings.TrimPrefix(name, "/")] = f.synced
	}
	return out
}
