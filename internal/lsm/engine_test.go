package lsm

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"muppet/internal/clock"
)

var t0 = time.Unix(1_700_000_000, 0)

func testOptions(fs FS, ck clock.Clock) Options {
	return Options{
		MemtableFlushBytes:  1 << 20,
		CompactionThreshold: 4,
		IndexEvery:          4, // small stride so index paths are exercised
		FS:                  fs,
		Clock:               ck,
		DisableAutoCompact:  true, // tests drive compaction explicitly
	}
}

func mustOpen(t *testing.T, fs FS, ck clock.Clock) *Engine {
	t.Helper()
	e, err := Open("/db", testOptions(fs, ck))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return e
}

func put(t *testing.T, e *Engine, ck clock.Clock, key, val string) {
	t.Helper()
	_, err := e.Put([]Row{{Key: key, Value: []byte(val), WriteTime: ck.Now()}})
	if err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func del(t *testing.T, e *Engine, ck clock.Clock, key string) {
	t.Helper()
	_, err := e.Put([]Row{{Key: key, WriteTime: ck.Now(), Tombstone: true}})
	if err != nil {
		t.Fatalf("Delete(%q): %v", key, err)
	}
}

// visible resolves tombstones and TTL the way callers are meant to.
func visible(t *testing.T, e *Engine, ck clock.Clock, key string) (string, bool) {
	t.Helper()
	r, ok, _, err := e.Get(key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	if !ok || r.deleted(ck.Now()) {
		return "", false
	}
	return string(r.Value), true
}

func TestPutGetAcrossFlushAndCompact(t *testing.T) {
	fs := NewMemFS()
	ck := clock.NewFake(t0)
	e := mustOpen(t, fs, ck)
	defer e.Close()

	for i := 0; i < 100; i++ {
		put(t, e, ck, fmt.Sprintf("key-%03d", i), fmt.Sprintf("v%d", i))
		if i%25 == 24 {
			if _, err := e.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		}
	}
	// Overwrites land in newer locations (memtable and later segments)
	// and must win over segment copies.
	put(t, e, ck, "key-000", "updated")

	check := func(label string) {
		t.Helper()
		for i := 1; i < 100; i++ {
			k := fmt.Sprintf("key-%03d", i)
			if v, ok := visible(t, e, ck, k); !ok || v != fmt.Sprintf("v%d", i) {
				t.Fatalf("%s: %s = %q, %v; want v%d", label, k, v, ok, i)
			}
		}
		if v, ok := visible(t, e, ck, "key-000"); !ok || v != "updated" {
			t.Fatalf("%s: overwrite lost: %q, %v", label, v, ok)
		}
		if _, ok := visible(t, e, ck, "no-such-key"); ok {
			t.Fatalf("%s: phantom key", label)
		}
	}
	check("before compact")

	if _, _, err := e.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := e.Stats().Segments; got != 1 {
		t.Fatalf("after compact: %d segments, want 1", got)
	}
	check("after compact")
}

func TestTombstonesAndTTL(t *testing.T) {
	fs := NewMemFS()
	ck := clock.NewFake(t0)
	e := mustOpen(t, fs, ck)
	defer e.Close()

	put(t, e, ck, "gone", "x")
	put(t, e, ck, "stays", "y")
	if _, err := e.Put([]Row{{Key: "fades", Value: []byte("z"), WriteTime: ck.Now(), TTL: time.Minute}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	del(t, e, ck, "gone") // tombstone in memtable shadows segment copy

	if _, ok := visible(t, e, ck, "gone"); ok {
		t.Fatal("tombstone did not shadow segment row")
	}
	if v, ok := visible(t, e, ck, "fades"); !ok || v != "z" {
		t.Fatal("TTL row should still be visible")
	}
	ck.Advance(2 * time.Minute)
	if _, ok := visible(t, e, ck, "fades"); ok {
		t.Fatal("TTL row should have expired")
	}
	if v, ok := visible(t, e, ck, "stays"); !ok || v != "y" {
		t.Fatal("unrelated row affected")
	}

	// Compaction physically drops both the tombstoned and expired rows.
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	n, err := e.LiveRows()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("LiveRows = %d after compaction, want 1", n)
	}
	if e.Stats().ExpiredDropped == 0 {
		t.Fatal("ExpiredDropped not counted")
	}
}

func TestScanSortedAndLive(t *testing.T) {
	fs := NewMemFS()
	ck := clock.NewFake(t0)
	e := mustOpen(t, fs, ck)
	defer e.Close()

	keys := []string{"delta", "alpha", "echo", "charlie", "bravo"}
	for i, k := range keys {
		put(t, e, ck, k, k)
		if i == 2 {
			if _, err := e.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	del(t, e, ck, "charlie")

	var got []string
	if err := e.Scan(func(r Row) bool { got = append(got, r.Key); return true }); err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "bravo", "delta", "echo"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Scan order = %v, want %v", got, want)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("Scan not sorted: %v", got)
	}

	// Early stop.
	got = got[:0]
	e.Scan(func(r Row) bool { got = append(got, r.Key); return len(got) < 2 })
	if len(got) != 2 {
		t.Fatalf("early stop scanned %d rows", len(got))
	}
}

func TestReopenRecoversMemtableAndSegments(t *testing.T) {
	fs := NewMemFS()
	ck := clock.NewFake(t0)
	e := mustOpen(t, fs, ck)

	put(t, e, ck, "flushed", "f")
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(t, e, ck, "walonly", "w") // never flushed: lives in WAL only
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	e = mustOpen(t, fs, ck)
	defer e.Close()
	for k, want := range map[string]string{"flushed": "f", "walonly": "w"} {
		if v, ok := visible(t, e, ck, k); !ok || v != want {
			t.Fatalf("after reopen: %s = %q, %v; want %q", k, v, ok, want)
		}
	}
}

func TestSizeTriggeredFlush(t *testing.T) {
	fs := NewMemFS()
	ck := clock.NewFake(t0)
	opt := testOptions(fs, ck)
	opt.MemtableFlushBytes = 1 << 10
	e, err := Open("/db", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	big := strings.Repeat("x", 600)
	put(t, e, ck, "a", big)
	if e.Stats().Flushes != 0 {
		t.Fatal("flushed too early")
	}
	put(t, e, ck, "b", big)
	s := e.Stats()
	if s.Flushes != 1 || s.Segments != 1 || s.MemtableRows != 0 {
		t.Fatalf("size trigger: %+v", s)
	}
}

func TestAgeTriggeredFlush(t *testing.T) {
	fs := NewMemFS()
	ck := clock.NewFake(t0)
	opt := testOptions(fs, ck)
	opt.MemtableMaxAge = time.Second
	e, err := Open("/db", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	put(t, e, ck, "k", "v")
	// Wait for the age-flusher to park on the fake clock, then advance
	// past the deadline and wait for the flush to land.
	for ck.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	ck.Advance(2 * time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Flushes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("age flush never happened")
		}
		time.Sleep(time.Millisecond)
	}
	if e.Stats().MemtableRows != 0 {
		t.Fatal("memtable not emptied by age flush")
	}
}

func TestAutoCompaction(t *testing.T) {
	fs := NewMemFS()
	ck := clock.NewFake(t0)
	opt := testOptions(fs, ck)
	opt.DisableAutoCompact = false
	opt.CompactionThreshold = 3
	e, err := Open("/db", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for i := 0; i < 3; i++ {
		put(t, e, ck, fmt.Sprintf("k%d", i), "v")
		if _, err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background compaction never ran")
		}
		time.Sleep(time.Millisecond)
	}
	if got := e.Stats().Segments; got != 1 {
		t.Fatalf("segments after auto compact = %d, want 1", got)
	}
	for i := 0; i < 3; i++ {
		if v, ok := visible(t, e, ck, fmt.Sprintf("k%d", i)); !ok || v != "v" {
			t.Fatalf("k%d lost in auto compaction", i)
		}
	}
}

func TestBloomSkipsCounted(t *testing.T) {
	fs := NewMemFS()
	ck := clock.NewFake(t0)
	e := mustOpen(t, fs, ck)
	defer e.Close()

	for i := 0; i < 50; i++ {
		put(t, e, ck, fmt.Sprintf("present-%d", i), "v")
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e.Get(fmt.Sprintf("absent-%d", i))
	}
	s := e.Stats()
	if s.BloomSkips == 0 {
		t.Fatalf("bloom filter never skipped a probe: %+v", s)
	}
	if s.BloomSkips+s.SegmentProbes != 200 {
		t.Fatalf("skips %d + probes %d != 200 absent gets", s.BloomSkips, s.SegmentProbes)
	}
}

func TestPutBatchAtomicVisibility(t *testing.T) {
	fs := NewMemFS()
	ck := clock.NewFake(t0)
	e := mustOpen(t, fs, ck)
	defer e.Close()

	rows := make([]Row, 10)
	for i := range rows {
		rows[i] = Row{Key: fmt.Sprintf("b%d", i), Value: []byte("v"), WriteTime: ck.Now()}
	}
	if _, err := e.Put(rows); err != nil {
		t.Fatal(err)
	}
	n, err := e.LiveRows()
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("batch put visible rows = %d, want 10", n)
	}
	if e.Stats().Fsyncs > 8 {
		// One WAL sync for the batch plus Open's bookkeeping — group
		// commit must not sync per row.
		t.Fatalf("batch of 10 cost %d fsyncs", e.Stats().Fsyncs)
	}
}

func TestLargeValuesRoundTrip(t *testing.T) {
	fs := NewMemFS()
	ck := clock.NewFake(t0)
	e := mustOpen(t, fs, ck)
	defer e.Close()

	// Compressible and incompressible payloads, spanning index strides.
	vals := map[string]string{
		"zeros": strings.Repeat("\x00", 100_000),
		"text":  strings.Repeat("the quick brown fox ", 5_000),
	}
	rnd := make([]byte, 100_000)
	x := uint32(2463534242)
	for i := range rnd {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		rnd[i] = byte(x)
	}
	vals["random"] = string(rnd)
	for k, v := range vals {
		put(t, e, ck, k, v)
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for k, want := range vals {
		if v, ok := visible(t, e, ck, k); !ok || v != want {
			t.Fatalf("%s: large value corrupted (ok=%v, len=%d want %d)", k, ok, len(v), len(want))
		}
	}
}

func TestOSFSEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ck := clock.NewFake(t0)
	opt := testOptions(OSFS{}, ck)
	e, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		put(t, e, ck, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(t, e, ck, "walrow", "w")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e, err = Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 20; i++ {
		if v, ok := visible(t, e, ck, fmt.Sprintf("k%02d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("OSFS reopen lost k%02d", i)
		}
	}
	if v, ok := visible(t, e, ck, "walrow"); !ok || v != "w" {
		t.Fatal("OSFS reopen lost WAL-only row")
	}
}

func TestCloseThenUseErrors(t *testing.T) {
	fs := NewMemFS()
	ck := clock.NewFake(t0)
	e := mustOpen(t, fs, ck)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := e.Put([]Row{{Key: "k"}}); err == nil {
		t.Fatal("Put after Close succeeded")
	}
	if _, _, _, err := e.Get("k"); err == nil {
		t.Fatal("Get after Close succeeded")
	}
}
