package lsm

import (
	"fmt"
	"testing"

	"muppet/internal/clock"
)

// crashHarness drives an engine on MemFS and tracks which puts were
// acknowledged; after any crash, recovery must show exactly those.
type crashHarness struct {
	t     *testing.T
	fs    *MemFS
	ck    *clock.Fake
	e     *Engine
	acked map[string]string
}

func newCrashHarness(t *testing.T) *crashHarness {
	t.Helper()
	h := &crashHarness{t: t, fs: NewMemFS(), ck: clock.NewFake(t0), acked: map[string]string{}}
	h.reopen()
	return h
}

func (h *crashHarness) reopen() {
	h.t.Helper()
	e, err := Open("/db", testOptions(h.fs, h.ck))
	if err != nil {
		h.t.Fatalf("Open: %v", err)
	}
	h.e = e
}

// put records the key only if the engine acknowledged it.
func (h *crashHarness) put(key, val string) error {
	_, err := h.e.Put([]Row{{Key: key, Value: []byte(val), WriteTime: h.ck.Now()}})
	if err == nil {
		h.acked[key] = val
	}
	return err
}

// crash simulates a power cut and reopens the engine.
func (h *crashHarness) crash() {
	h.t.Helper()
	h.e.Close() // release goroutines; file state is governed by MemFS.Crash
	h.fs.Crash()
	h.reopen()
}

// verify asserts the recovered engine serves exactly the acknowledged
// rows — nothing lost, nothing resurrected.
func (h *crashHarness) verify(label string) {
	h.t.Helper()
	seen := map[string]string{}
	err := h.e.Scan(func(r Row) bool { seen[r.Key] = string(r.Value); return true })
	if err != nil {
		h.t.Fatalf("%s: Scan: %v", label, err)
	}
	for k, want := range h.acked {
		if got, ok := seen[k]; !ok || got != want {
			h.t.Fatalf("%s: acknowledged row %q lost (got %q, present=%v)", label, k, got, ok)
		}
	}
	for k := range seen {
		if _, ok := h.acked[k]; !ok {
			h.t.Fatalf("%s: unacknowledged row %q resurrected", label, k)
		}
	}
}

func TestCrashMidMemtableFlush(t *testing.T) {
	// Fail each sync point of the flush pipeline in turn: the segment
	// file sync, the new WAL's dir sync, the manifest sync, and the
	// manifest's commit rename.
	points := []struct {
		name string
		op   Op
		nth  int
	}{
		{"segment sync", OpSync, 1},
		{"segment dir sync", OpSyncDir, 1},
		{"new wal dir sync", OpSyncDir, 2},
		{"manifest sync", OpSync, 2},
		{"manifest rename", OpRename, 1},
		{"manifest dir sync", OpSyncDir, 3},
	}
	for _, p := range points {
		t.Run(p.name, func(t *testing.T) {
			h := newCrashHarness(t)
			for i := 0; i < 20; i++ {
				if err := h.put(fmt.Sprintf("k%02d", i), "v"); err != nil {
					t.Fatalf("setup put: %v", err)
				}
			}
			h.fs.FailAt(p.op, p.nth)
			if _, err := h.e.Flush(); err == nil {
				t.Fatalf("flush survived injected %s fault", p.name)
			}
			h.crash()
			h.verify(p.name)
			// The store must remain fully writable after recovery.
			if err := h.put("post-crash", "ok"); err != nil {
				t.Fatalf("put after recovery: %v", err)
			}
			h.verify(p.name + " after new write")
		})
	}
}

func TestCrashMidCompaction(t *testing.T) {
	points := []struct {
		name string
		op   Op
		nth  int
	}{
		{"merged segment sync", OpSync, 1},
		{"merged segment dir sync", OpSyncDir, 1},
		{"manifest sync", OpSync, 2},
		{"manifest rename", OpRename, 1},
	}
	for _, p := range points {
		t.Run(p.name, func(t *testing.T) {
			h := newCrashHarness(t)
			for i := 0; i < 12; i++ {
				if err := h.put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i)); err != nil {
					t.Fatal(err)
				}
				if i%4 == 3 {
					if _, err := h.e.Flush(); err != nil {
						t.Fatal(err)
					}
				}
			}
			h.fs.FailAt(p.op, p.nth)
			if _, _, err := h.e.Compact(); err == nil {
				t.Fatalf("compaction survived injected %s fault", p.name)
			}
			// Before crashing, the live engine must still serve everything
			// (compaction failure rolls back to the old segment set).
			h.verify(p.name + " pre-crash")
			h.crash()
			h.verify(p.name)
		})
	}
}

func TestCrashMidManifestSwap(t *testing.T) {
	// The rename IS the commit point: fail it, crash, and the old
	// manifest must fully describe the store; let it succeed and crash
	// immediately after, and the new state must be complete.
	h := newCrashHarness(t)
	for i := 0; i < 8; i++ {
		if err := h.put(fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	h.fs.FailAt(OpRename, 1)
	if _, err := h.e.Flush(); err == nil {
		t.Fatal("flush survived manifest rename fault")
	}
	h.crash()
	h.verify("rename failed")

	// Now the successful swap followed by an instant power cut.
	if _, err := h.e.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	h.fs.Crash()
	h.reopen()
	h.verify("crash right after successful swap")
}

func TestCrashUnsyncedWALTailDropped(t *testing.T) {
	// A power cut drops WAL bytes not covered by a sync. Simulate a
	// torn group commit: the sync fails, so the put is NOT acknowledged,
	// and after the crash the row must not exist.
	h := newCrashHarness(t)
	if err := h.put("durable", "yes"); err != nil {
		t.Fatal(err)
	}
	h.fs.FailAt(OpSync, 1)
	if err := h.put("torn", "no"); err == nil {
		t.Fatal("put survived WAL sync fault")
	}
	h.crash()
	h.verify("torn tail")
	if _, ok, _, _ := h.e.Get("torn"); ok {
		t.Fatal("unacknowledged row visible after recovery")
	}
}

// TestCrashExhaustiveFaultSweep runs a fixed workload, counts every
// fault point it exercises, then re-runs it once per point with that
// single operation failing, crashing, recovering, and checking
// acknowledged-state equivalence. This is the strongest guarantee the
// harness can give: no single-fault crash anywhere in the pipeline
// loses or resurrects data.
func TestCrashExhaustiveFaultSweep(t *testing.T) {
	workload := func(h *crashHarness) {
		for i := 0; i < 30; i++ {
			h.put(fmt.Sprintf("w%02d", i), fmt.Sprintf("v%d", i))
			if i%10 == 9 {
				h.e.Flush()
			}
		}
		h.e.Compact()
		for i := 0; i < 5; i++ {
			h.put(fmt.Sprintf("w%02d", i), "rewritten")
		}
		h.e.Flush()
	}

	// Dry run: count operations per kind.
	dry := newCrashHarness(t)
	workload(dry)
	counts := dry.fs.Ops()
	dry.e.Close()

	for _, op := range []Op{OpCreate, OpWrite, OpSync, OpRename, OpRemove, OpSyncDir} {
		n := counts[op]
		for nth := 1; nth <= n; nth++ {
			t.Run(fmt.Sprintf("%s-%d", op, nth), func(t *testing.T) {
				h := newCrashHarness(t)
				h.fs.FailAt(op, nth)
				workload(h) // errors ignored: un-acked puts aren't recorded
				h.crash()
				h.verify("sweep")
			})
		}
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	// Crashing during recovery itself (e.g. during the recovery flush
	// or manifest commit of Open) must also be safe: Open again.
	h := newCrashHarness(t)
	for i := 0; i < 10; i++ {
		if err := h.put(fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	h.e.Close()
	h.fs.Crash()

	// First recovery attempt dies on its manifest rename.
	h.fs.FailAt(OpRename, 1)
	if _, err := Open("/db", testOptions(h.fs, h.ck)); err == nil {
		t.Fatal("Open survived injected recovery fault")
	}
	h.fs.Crash()
	h.reopen()
	h.verify("second recovery")
}

func TestReopenAfterCleanCloseManyGenerations(t *testing.T) {
	// Repeated write→crash→recover cycles must not accumulate drift:
	// every generation's acknowledged rows survive all later crashes.
	h := newCrashHarness(t)
	for gen := 0; gen < 5; gen++ {
		for i := 0; i < 10; i++ {
			if err := h.put(fmt.Sprintf("g%d-k%d", gen, i), fmt.Sprintf("%d", gen)); err != nil {
				t.Fatal(err)
			}
		}
		if gen%2 == 0 {
			h.e.Flush()
		}
		h.crash()
		h.verify(fmt.Sprintf("generation %d", gen))
	}
	if n, _ := h.e.LiveRows(); n != 50 {
		t.Fatalf("after 5 generations LiveRows = %d, want 50", n)
	}
}
