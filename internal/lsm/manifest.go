package lsm

import (
	"encoding/json"
	"fmt"
	"io"
)

// manifest is the engine's root pointer: the set of live segment files
// (newest first), the active WAL sequence, and the next sequence
// number to allocate. It is replaced wholesale via write-temp → fsync →
// rename → fsync-dir, so a crash anywhere leaves either the old
// manifest or the new one, never a mix — the rename is the single
// commit point for flushes and compactions.
type manifest struct {
	Version  int      `json:"version"`
	Next     uint64   `json:"next"`
	WALSeq   uint64   `json:"wal"`
	Segments []uint64 `json:"segments"`
}

const (
	manifestName    = "MANIFEST"
	manifestTmpName = "MANIFEST.tmp"
	manifestVersion = 1
)

// writeManifest commits m as dir's manifest atomically and durably.
func writeManifest(fs FS, dir string, m manifest) error {
	m.Version = manifestVersion
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("lsm: manifest: %w", err)
	}
	tmp := dir + "/" + manifestTmpName
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("lsm: manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("lsm: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("lsm: manifest: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lsm: manifest: %w", err)
	}
	if err := fs.Rename(tmp, dir+"/"+manifestName); err != nil {
		return fmt.Errorf("lsm: manifest: commit: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("lsm: manifest: sync dir: %w", err)
	}
	return nil
}

// readManifest loads dir's manifest. ok is false when no manifest
// exists yet (a fresh directory).
func readManifest(fs FS, dir string) (m manifest, ok bool, err error) {
	f, err := fs.Open(dir + "/" + manifestName)
	if err != nil {
		return manifest{}, false, nil
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return manifest{}, false, err
	}
	data := make([]byte, size)
	if size > 0 {
		n, err := f.ReadAt(data, 0)
		if err != nil && err != io.EOF {
			return manifest{}, false, fmt.Errorf("lsm: manifest: %w", err)
		}
		data = data[:n]
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, false, fmt.Errorf("lsm: manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return manifest{}, false, fmt.Errorf("lsm: manifest: unsupported version %d", m.Version)
	}
	return m, true, nil
}
