package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// WAL file layout: a sequence of records, each
//
//	u32 LE payload length | u32 LE CRC-32 (IEEE) of payload | payload
//
// where payload is uvarint rowCount followed by that many rows in the
// shared row encoding. One record per Put batch — the whole batch
// becomes durable with a single Write+Sync (group commit). The reader
// stops at the first short or CRC-mismatching record, which is exactly
// the torn tail a power cut can leave; everything before it was
// acknowledged and everything after it was not.
const walHeaderSize = 8

func walName(seq uint64) string { return fmt.Sprintf("wal-%06d.log", seq) }

// walWriter appends group-commit records to one WAL file.
type walWriter struct {
	f     File
	path  string
	seq   uint64
	buf   []byte // reused record-build buffer
	bytes int64  // total bytes written to this file
}

// newWAL creates WAL file seq under dir and makes its directory entry
// durable.
func newWAL(fs FS, dir string, seq uint64) (*walWriter, error) {
	path := dir + "/" + walName(seq)
	f, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, path: path, seq: seq}, nil
}

// append writes rows as one record and fsyncs. When it returns nil the
// rows are durable; any error means the batch must not be
// acknowledged.
func (w *walWriter) append(rows []Row) (n int64, err error) {
	w.buf = w.buf[:0]
	w.buf = append(w.buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	w.buf = binary.AppendUvarint(w.buf, uint64(len(rows)))
	var scratch []byte
	for _, r := range rows {
		w.buf, scratch = appendRow(w.buf, scratch, r)
	}
	payload := w.buf[walHeaderSize:]
	binary.LittleEndian.PutUint32(w.buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.buf[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(w.buf); err != nil {
		return 0, fmt.Errorf("lsm: wal %s: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		return 0, fmt.Errorf("lsm: wal %s: sync: %w", w.path, err)
	}
	w.bytes += int64(len(w.buf))
	return int64(len(w.buf)), nil
}

func (w *walWriter) close() error { return w.f.Close() }

// readWAL replays WAL file seq under dir, calling fn for each row of
// each intact record in write order. A truncated or corrupt tail ends
// replay silently — those bytes were never acknowledged.
func readWAL(fs FS, dir string, seq uint64, fn func(Row)) error {
	path := dir + "/" + walName(seq)
	f, err := fs.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return err
	}
	data := make([]byte, size)
	if size > 0 {
		if n, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
			return fmt.Errorf("lsm: wal %s: %w", path, err)
		} else {
			data = data[:n]
		}
	}
	for len(data) >= walHeaderSize {
		plen := binary.LittleEndian.Uint32(data[0:])
		sum := binary.LittleEndian.Uint32(data[4:])
		if uint64(len(data)-walHeaderSize) < uint64(plen) {
			break // torn record: payload never fully hit disk
		}
		payload := data[walHeaderSize : walHeaderSize+int(plen)]
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn or corrupt: drop it and everything after
		}
		count, n := binary.Uvarint(payload)
		if n <= 0 {
			break
		}
		payload = payload[n:]
		for i := uint64(0); i < count; i++ {
			row, rest, err := decodeRow(payload)
			if err != nil {
				return fmt.Errorf("lsm: wal %s: record with valid CRC failed to decode: %w", path, err)
			}
			fn(row)
			payload = rest
		}
		data = data[walHeaderSize+int(plen):]
	}
	return nil
}
