package lsm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"muppet/internal/clock"
)

// Options configures an Engine. The zero value of every field is
// replaced by the documented default in Open.
type Options struct {
	// MemtableFlushBytes is the memtable size that triggers a flush to
	// a new L0 segment. Default 4 MiB.
	MemtableFlushBytes int64
	// CompactionThreshold is the segment count at which the background
	// compactor merges every segment into one. Default 4.
	CompactionThreshold int
	// IndexEvery is the sparse-index stride: every IndexEvery-th row of
	// a segment is indexed, bounding a point read to one stride of rows.
	// Default 16.
	IndexEvery int
	// BloomFPRate is the per-segment bloom filter false positive rate.
	// Default 0.01.
	BloomFPRate float64
	// FS is the filesystem to write through. Default OSFS.
	FS FS
	// Clock supplies time for TTL expiry and the age flusher. Default
	// the real clock.
	Clock clock.Clock
	// DisableAutoCompact turns off the background compactor; Compact
	// must then be called explicitly. Flushing is unaffected.
	DisableAutoCompact bool
	// MemtableMaxAge, when positive, flushes a non-empty memtable that
	// has held unflushed rows for this long even if it is under the
	// size trigger, bounding how much WAL a crash has to replay.
	MemtableMaxAge time.Duration
}

func (o Options) withDefaults() Options {
	if o.MemtableFlushBytes <= 0 {
		o.MemtableFlushBytes = 4 << 20
	}
	if o.CompactionThreshold <= 1 {
		o.CompactionThreshold = 4
	}
	if o.IndexEvery <= 0 {
		o.IndexEvery = 16
	}
	if o.BloomFPRate <= 0 || o.BloomFPRate >= 1 {
		o.BloomFPRate = 0.01
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.Clock == nil {
		o.Clock = clock.Real{}
	}
	return o
}

// Stats are the engine's cheap counters, copied under the engine lock.
// Byte and fsync counts are real I/O issued to the FS, not the
// simulated device-cost model the kvstore layers on top.
type Stats struct {
	MemtableRows  int
	MemtableBytes int64
	Segments      int
	SegmentBytes  int64
	WALBytes      int64

	Flushes        int64
	Compactions    int64
	Reads          int64
	ReadsFromMem   int64
	SegmentProbes  int64
	BloomSkips     int64
	ExpiredDropped int64

	Fsyncs       int64
	BytesWritten int64
	BytesRead    int64

	// CompactionBacklog is how many segments past the threshold are
	// waiting to be merged (0 when the tree is within budget).
	CompactionBacklog int
}

// Engine is a durable log-structured store: WAL → memtable → immutable
// sorted segments, with a manifest as the atomic root pointer. One
// mutex guards all state; segments are immutable once written, so
// compaction merges outside the lock and swaps the segment list under
// it.
type Engine struct {
	dir string
	opt Options
	fs  FS

	mu       sync.Mutex
	mem      map[string]Row
	memBytes int64
	memSince time.Time  // first unflushed write
	segs     []*segment // newest first
	wal      *walWriter
	next     uint64 // next file sequence number
	stats    Stats
	closed   bool
	// broken is set when a WAL sync or manifest commit fails and the
	// on-disk state is no longer known to match memory. The engine goes
	// fail-stop for writes: acknowledging anything more could be lost on
	// replay. Reads keep working; recovery is Close + Open.
	broken error

	compactCh chan struct{}
	stopCh    chan struct{}
	wg        sync.WaitGroup
	compactMu sync.Mutex // serializes compaction runs
}

// Open opens (or creates) the engine rooted at dir and recovers it to
// exactly the acknowledged state: the manifest names the live
// segments, intact WAL records are replayed (a torn tail is dropped —
// it was never acknowledged), a recovered memtable is flushed to a
// fresh segment, and files the manifest does not own are swept.
func Open(dir string, opt Options) (*Engine, error) {
	opt = opt.withDefaults()
	fs := opt.FS
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("lsm: open %s: %w", dir, err)
	}
	man, _, err := readManifest(fs, dir)
	if err != nil {
		return nil, fmt.Errorf("lsm: open %s: %w", dir, err)
	}
	names, err := fs.List(dir)
	if err != nil {
		return nil, fmt.Errorf("lsm: open %s: %w", dir, err)
	}
	e := &Engine{
		dir:       dir,
		opt:       opt,
		fs:        fs,
		mem:       make(map[string]Row),
		compactCh: make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
	}
	// Never reuse a sequence number, even one belonging to an orphan
	// file about to be swept.
	e.next = man.Next
	if e.next == 0 {
		e.next = 1
	}
	var walSeqs []uint64
	for _, name := range names {
		seq, kind := parseFileName(name)
		if kind == "" {
			continue
		}
		if seq >= e.next {
			e.next = seq + 1
		}
		if kind == "wal" && seq >= man.WALSeq {
			walSeqs = append(walSeqs, seq)
		}
	}
	for _, seq := range man.Segments { // manifest stores newest first
		seg, err := openSegment(fs, dir, seq)
		if err != nil {
			e.closeFiles()
			return nil, err
		}
		e.segs = append(e.segs, seg)
		e.stats.SegmentBytes += seg.bytes
	}
	// Replay acknowledged WAL records oldest file first; newer records
	// overwrite older ones in the memtable.
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })
	for _, seq := range walSeqs {
		err := readWAL(fs, dir, seq, func(r Row) { e.memApply(r) })
		if err != nil {
			e.closeFiles()
			return nil, err
		}
	}
	// Persist the recovered memtable as a segment so the old WALs can
	// be retired; then open a fresh WAL and commit the whole new state
	// with one manifest rename.
	if len(e.mem) > 0 {
		seg, n, err := writeSegment(fs, dir, e.nextSeq(), e.memSorted(), opt.IndexEvery, opt.BloomFPRate)
		if err != nil {
			e.closeFiles()
			return nil, err
		}
		e.stats.Fsyncs += 2
		e.stats.BytesWritten += n
		e.stats.SegmentBytes += seg.bytes
		e.stats.Flushes++
		e.segs = append([]*segment{seg}, e.segs...)
		e.mem = make(map[string]Row)
		e.memBytes = 0
	}
	wal, err := newWAL(fs, dir, e.nextSeq())
	if err != nil {
		e.closeFiles()
		return nil, err
	}
	e.wal = wal
	e.stats.Fsyncs++
	if err := e.commitManifestLocked(); err != nil {
		e.closeFiles()
		return nil, err
	}
	// Sweep files the committed manifest does not own: retired WALs,
	// orphan segments from a crashed flush or compaction, stale tmp.
	live := make(map[string]bool, len(e.segs)+2)
	for _, s := range e.segs {
		live[segName(s.seq)] = true
	}
	live[walName(e.wal.seq)] = true
	live[manifestName] = true
	for _, name := range names {
		if _, kind := parseFileName(name); kind == "" && name != manifestTmpName {
			continue
		}
		if !live[name] {
			fs.Remove(dir + "/" + name) // best effort: re-swept next Open
		}
	}
	if !opt.DisableAutoCompact {
		e.wg.Add(1)
		go e.compactLoop()
	}
	if opt.MemtableMaxAge > 0 {
		e.wg.Add(1)
		go e.ageFlushLoop()
	}
	return e, nil
}

// parseFileName classifies a data-dir file name, returning its
// sequence number and kind ("wal" or "seg"), or kind "" for files the
// engine does not own.
func parseFileName(name string) (uint64, string) {
	var kind string
	switch {
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
		kind = "wal"
	case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".sst"):
		kind = "seg"
	default:
		return 0, ""
	}
	seq, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
	if err != nil {
		return 0, ""
	}
	return seq, kind
}

func (e *Engine) nextSeq() uint64 { seq := e.next; e.next++; return seq }

// memApply inserts r into the memtable, newest-wins.
func (e *Engine) memApply(r Row) {
	if old, ok := e.mem[r.Key]; ok {
		if r.WriteTime.Before(old.WriteTime) {
			return
		}
		e.memBytes -= rowMemBytes(old)
	}
	e.mem[r.Key] = r
	e.memBytes += rowMemBytes(r)
	if len(e.mem) == 1 {
		e.memSince = e.opt.Clock.Now()
	}
}

func rowMemBytes(r Row) int64 { return int64(len(r.Key) + len(r.Value) + 48) }

// memSorted snapshots the memtable as rows sorted by key.
func (e *Engine) memSorted() []Row {
	rows := make([]Row, 0, len(e.mem))
	for _, r := range e.mem {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	return rows
}

// commitManifestLocked writes the manifest describing current state.
func (e *Engine) commitManifestLocked() error {
	m := manifest{Next: e.next, WALSeq: e.wal.seq, Segments: make([]uint64, len(e.segs))}
	for i, s := range e.segs {
		m.Segments[i] = s.seq
	}
	if err := writeManifest(e.fs, e.dir, m); err != nil {
		return err
	}
	e.stats.Fsyncs += 2
	return nil
}

// Put makes rows durable (WAL fsync) and visible, as one atomic batch:
// when Put returns nil the batch survives any crash; on error none of
// it is acknowledged. flushed reports segment bytes written if the put
// tripped a memtable flush.
func (e *Engine) Put(rows []Row) (flushed int64, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, fmt.Errorf("lsm: engine closed")
	}
	if e.broken != nil {
		return 0, fmt.Errorf("lsm: engine failed, reopen to recover: %w", e.broken)
	}
	if len(rows) == 0 {
		return 0, nil
	}
	n, err := e.wal.append(rows)
	if err != nil {
		// The WAL tail is now in an unknown state; a later record
		// appended after torn bytes would be unreachable at replay.
		e.broken = err
		return 0, err
	}
	e.stats.Fsyncs++
	e.stats.BytesWritten += n
	for _, r := range rows {
		e.memApply(r)
	}
	if e.memBytes >= e.opt.MemtableFlushBytes {
		return e.flushLocked()
	}
	return 0, nil
}

// Get returns the newest stored version of key, including tombstones
// and expired rows — visibility is the caller's decision (Row.deleted
// logic is mirrored in Scan). bytesRead is real disk bytes for the
// probe, for device-cost accounting.
func (e *Engine) Get(key string) (r Row, ok bool, bytesRead int64, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return Row{}, false, 0, fmt.Errorf("lsm: engine closed")
	}
	e.stats.Reads++
	if r, ok := e.mem[key]; ok {
		e.stats.ReadsFromMem++
		return r, true, 0, nil
	}
	for _, seg := range e.segs {
		if !seg.filter.MayContain(key) {
			e.stats.BloomSkips++
			continue
		}
		e.stats.SegmentProbes++
		r, ok, n, err := seg.get(key)
		bytesRead += n
		e.stats.BytesRead += n
		if err != nil {
			return Row{}, false, bytesRead, err
		}
		if ok {
			return r, true, bytesRead, nil
		}
	}
	return Row{}, false, bytesRead, nil
}

// Scan calls fn for every live row (tombstones and expired rows
// resolved away, newest version wins) in ascending key order, stopping
// early if fn returns false. The engine lock is held for the whole
// scan, including callbacks.
func (e *Engine) Scan(fn func(Row) bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("lsm: engine closed")
	}
	merged, err := e.mergedLocked()
	if err != nil {
		return err
	}
	now := e.opt.Clock.Now()
	for _, r := range merged {
		if r.deleted(now) {
			continue
		}
		if !fn(r) {
			return nil
		}
	}
	return nil
}

// mergedLocked materializes the newest-wins view of memtable plus all
// segments, sorted by key, still including tombstones and expired rows.
func (e *Engine) mergedLocked() ([]Row, error) {
	view := make(map[string]Row)
	for i := len(e.segs) - 1; i >= 0; i-- { // oldest → newest overwrites
		rows, err := e.segs[i].load()
		if err != nil {
			return nil, err
		}
		e.stats.BytesRead += e.segs[i].dataEnd
		for _, r := range rows {
			view[r.Key] = r
		}
	}
	for k, r := range e.mem {
		view[k] = r
	}
	out := make([]Row, 0, len(view))
	for _, r := range view {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Flush forces the memtable to a segment regardless of size.
func (e *Engine) Flush() (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, fmt.Errorf("lsm: engine closed")
	}
	return e.flushLocked()
}

// flushLocked persists the memtable as a new L0 segment and retires
// the WAL behind it. Commit order: segment synced → fresh WAL synced →
// manifest renamed (the commit point) → old WAL removed. A crash
// before the rename leaves the old manifest and old WAL, which replay
// to the same memtable; after it, the segment owns the rows.
func (e *Engine) flushLocked() (int64, error) {
	if e.broken != nil {
		return 0, fmt.Errorf("lsm: engine failed, reopen to recover: %w", e.broken)
	}
	if len(e.mem) == 0 {
		return 0, nil
	}
	seg, n, err := writeSegment(e.fs, e.dir, e.nextSeq(), e.memSorted(), e.opt.IndexEvery, e.opt.BloomFPRate)
	if err != nil {
		return 0, err
	}
	e.stats.Fsyncs += 2
	e.stats.BytesWritten += n
	oldWAL := e.wal
	wal, err := newWAL(e.fs, e.dir, e.nextSeq())
	if err != nil {
		seg.close()
		return 0, err
	}
	e.stats.Fsyncs++
	e.segs = append([]*segment{seg}, e.segs...)
	e.wal = wal
	if err := e.commitManifestLocked(); err != nil {
		// Roll back in-memory state. The rename may or may not have hit
		// disk, so which manifest rules is unknown — fail-stop.
		e.broken = err
		e.segs = e.segs[1:]
		e.wal = oldWAL
		seg.close()
		wal.close()
		return 0, err
	}
	e.stats.SegmentBytes += seg.bytes
	e.stats.Flushes++
	e.mem = make(map[string]Row)
	e.memBytes = 0
	oldWAL.close()
	e.fs.Remove(oldWAL.path) // best effort: manifest already retired it
	if len(e.segs) >= e.opt.CompactionThreshold {
		select {
		case e.compactCh <- struct{}{}:
		default:
		}
	}
	return n, nil
}

// Compact merges every segment into one, dropping overwritten
// versions, tombstones, and TTL-expired rows (safe because the merge
// spans all segments; anything newer lives in the memtable and wins at
// read time). The merge runs outside the engine lock — segments are
// immutable and concurrent flushes only prepend — and the swap commits
// with one manifest rename.
func (e *Engine) Compact() (read, written int64, err error) {
	e.compactMu.Lock()
	defer e.compactMu.Unlock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, 0, fmt.Errorf("lsm: engine closed")
	}
	if e.broken != nil {
		err := fmt.Errorf("lsm: engine failed, reopen to recover: %w", e.broken)
		e.mu.Unlock()
		return 0, 0, err
	}
	if len(e.segs) < 2 {
		e.mu.Unlock()
		return 0, 0, nil
	}
	snapshot := append([]*segment(nil), e.segs...)
	newSeq := e.nextSeq()
	now := e.opt.Clock.Now()
	e.mu.Unlock()

	view := make(map[string]Row)
	for i := len(snapshot) - 1; i >= 0; i-- { // oldest → newest overwrites
		rows, err := snapshot[i].load()
		if err != nil {
			return read, 0, err
		}
		read += snapshot[i].dataEnd
		for _, r := range rows {
			view[r.Key] = r
		}
	}
	var dropped int64
	merged := make([]Row, 0, len(view))
	for _, r := range view {
		if r.Tombstone {
			continue
		}
		if r.expired(now) {
			dropped++
			continue
		}
		merged = append(merged, r)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Key < merged[j].Key })

	var newSegs []*segment
	if len(merged) > 0 {
		seg, n, err := writeSegment(e.fs, e.dir, newSeq, merged, e.opt.IndexEvery, e.opt.BloomFPRate)
		if err != nil {
			return read, 0, err
		}
		written = n
		newSegs = []*segment{seg}
		e.mu.Lock()
		e.stats.Fsyncs += 2
		e.stats.BytesWritten += n
		e.mu.Unlock()
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		for _, s := range newSegs {
			s.close()
			e.fs.Remove(s.path)
		}
		return read, written, fmt.Errorf("lsm: engine closed")
	}
	// Flushes during the merge prepended segments; keep those, replace
	// the snapshot suffix with the merged segment.
	keep := e.segs[:len(e.segs)-len(snapshot)]
	e.segs = append(append([]*segment(nil), keep...), newSegs...)
	if err := e.commitManifestLocked(); err != nil {
		// Restore the previous list; whether the rename committed is
		// unknown, so the engine goes fail-stop for writes.
		e.broken = err
		e.segs = append(append([]*segment(nil), keep...), snapshot...)
		e.mu.Unlock()
		for _, s := range newSegs {
			s.close()
			e.fs.Remove(s.path)
		}
		return read, written, err
	}
	e.stats.BytesRead += read
	e.stats.Compactions++
	e.stats.ExpiredDropped += dropped
	var segBytes int64
	for _, s := range e.segs {
		segBytes += s.bytes
	}
	e.stats.SegmentBytes = segBytes
	e.mu.Unlock()

	for _, s := range snapshot {
		s.close()
		e.fs.Remove(s.path) // best effort: manifest no longer owns them
	}
	return read, written, nil
}

// compactLoop is the background compactor: it merges whenever a flush
// pushes the segment count past the threshold.
func (e *Engine) compactLoop() {
	defer e.wg.Done()
	for {
		select {
		case <-e.stopCh:
			return
		case <-e.compactCh:
			e.Compact()
		}
	}
}

// ageFlushLoop flushes a memtable that has sat unflushed past
// MemtableMaxAge.
func (e *Engine) ageFlushLoop() {
	defer e.wg.Done()
	for {
		select {
		case <-e.stopCh:
			return
		case <-e.opt.Clock.After(e.opt.MemtableMaxAge):
			e.mu.Lock()
			if !e.closed && len(e.mem) > 0 && e.opt.Clock.Now().Sub(e.memSince) >= e.opt.MemtableMaxAge {
				e.flushLocked()
			}
			e.mu.Unlock()
		}
	}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.MemtableRows = len(e.mem)
	s.MemtableBytes = e.memBytes
	s.Segments = len(e.segs)
	var segBytes int64
	for _, seg := range e.segs {
		segBytes += seg.bytes
	}
	s.SegmentBytes = segBytes
	if e.wal != nil {
		s.WALBytes = e.wal.bytes
	}
	if backlog := len(e.segs) - e.opt.CompactionThreshold + 1; backlog > 0 {
		s.CompactionBacklog = backlog
	}
	return s
}

// LiveRows counts rows visible right now (newest-wins, tombstones and
// expired excluded). It materializes the merged view; use for tests
// and stats, not hot paths.
func (e *Engine) LiveRows() (int, error) {
	n := 0
	err := e.Scan(func(Row) bool { n++; return true })
	return n, err
}

// Close stops background work and releases file handles. It does not
// flush: the WAL already holds every acknowledged row, so Open after
// Close recovers the identical state (that recovery path is exercised
// constantly, not only after crashes).
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stopCh)
	e.wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	if e.wal != nil {
		if err := e.wal.close(); err != nil && first == nil {
			first = err
		}
	}
	if err := e.closeSegsLocked(); err != nil && first == nil {
		first = err
	}
	return first
}

func (e *Engine) closeSegsLocked() error {
	var first error
	for _, s := range e.segs {
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	e.segs = nil
	return first
}

// closeFiles releases handles during a failed Open.
func (e *Engine) closeFiles() {
	if e.wal != nil {
		e.wal.close()
	}
	e.closeSegsLocked()
}
