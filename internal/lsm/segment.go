package lsm

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"muppet/internal/bloom"
	"muppet/internal/frame"
)

// Row is one versioned cell as the engine stores it: the composed
// <key,column> row key, the value bytes, and the write metadata the
// read path needs for newest-wins resolution and TTL expiry.
type Row struct {
	Key   string
	Value []byte
	// WriteTime orders versions of the same key across runs and anchors
	// the TTL.
	WriteTime time.Time
	// TTL of zero means the row lives forever.
	TTL       time.Duration
	Tombstone bool
}

// expired reports whether the row's TTL has lapsed at time now.
func (r Row) expired(now time.Time) bool {
	return r.TTL > 0 && now.Sub(r.WriteTime) > r.TTL
}

// deleted reports whether the row reads as absent at time now.
func (r Row) deleted(now time.Time) bool { return r.Tombstone || r.expired(now) }

// Row encoding — shared by WAL records and segment data blocks:
//
//	uvarint keyLen | key | uvarint writeTime (unixnano as uint64)
//	| uvarint ttl (nanoseconds) | flags (bit0 = tombstone)
//	| uvarint frameLen | frame(value)
//
// The value travels through the internal/frame codec (the PR 4 framed
// pooled deflate), so large compressible slates shrink on disk and the
// encode path allocates nothing beyond the destination buffer.
const rowFlagTombstone = 0x01

// appendRow appends r's encoding to dst. scratch is reusable working
// memory for the value framing; the (possibly grown) scratch is
// returned for reuse.
func appendRow(dst, scratch []byte, r Row) (out, scratchOut []byte) {
	dst = binary.AppendUvarint(dst, uint64(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = binary.AppendUvarint(dst, uint64(r.WriteTime.UnixNano()))
	dst = binary.AppendUvarint(dst, uint64(r.TTL))
	var flags byte
	if r.Tombstone {
		flags |= rowFlagTombstone
	}
	dst = append(dst, flags)
	scratch = frame.AppendEncode(scratch[:0], r.Value)
	dst = binary.AppendUvarint(dst, uint64(len(scratch)))
	dst = append(dst, scratch...)
	return dst, scratch
}

// decodeRow decodes one row from the front of data, returning the row
// and the remaining bytes. The value is decoded out of its frame into
// fresh memory (rows outlive the read buffer).
func decodeRow(data []byte) (Row, []byte, error) {
	var r Row
	klen, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < klen {
		return r, nil, fmt.Errorf("lsm: row: truncated key")
	}
	r.Key = string(data[n : n+int(klen)])
	data = data[n+int(klen):]
	wt, n := binary.Uvarint(data)
	if n <= 0 {
		return r, nil, fmt.Errorf("lsm: row: truncated write time")
	}
	r.WriteTime = time.Unix(0, int64(wt))
	data = data[n:]
	ttl, n := binary.Uvarint(data)
	if n <= 0 {
		return r, nil, fmt.Errorf("lsm: row: truncated ttl")
	}
	r.TTL = time.Duration(ttl)
	data = data[n:]
	if len(data) < 1 {
		return r, nil, fmt.Errorf("lsm: row: truncated flags")
	}
	r.Tombstone = data[0]&rowFlagTombstone != 0
	data = data[1:]
	vlen, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < vlen {
		return r, nil, fmt.Errorf("lsm: row: truncated value")
	}
	enc := data[n : n+int(vlen)]
	data = data[n+int(vlen):]
	if vlen > 0 || !r.Tombstone {
		v, err := frame.Decode(enc)
		if err != nil {
			return r, nil, fmt.Errorf("lsm: row %q: %w", r.Key, err)
		}
		r.Value = v
	}
	return r, data, nil
}

// Segment file layout
//
//	"MUPSEG01" | rows (sorted by key) | index block | bloom block | footer
//
// index block: uvarint entryCount, then per entry uvarint keyLen, key,
// uvarint absolute file offset of the row. Every IndexEvery-th row is
// indexed (always including the first), so a point read seeks at most
// one index gap of rows. bloom block: a marshalled internal/bloom
// filter over every row key. footer (32 bytes, fixed): index offset,
// bloom offset, row count as little-endian uint64, then the magic
// again — Open validates both magics before trusting any offset.
const (
	segMagic      = "MUPSEG01"
	segFooterSize = 8*3 + len(segMagic)
)

// segment is one immutable sorted run, open for positional reads.
type segment struct {
	seq  uint64
	path string
	f    File

	indexKeys []string
	indexOffs []int64
	dataEnd   int64 // first byte past the row region (= index offset)
	filter    *bloom.Filter
	rows      int
	bytes     int64 // total file size
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%06d.sst", seq) }

// buildSegment encodes sorted rows into a complete segment file image.
// Rows must be sorted by Key and contain no duplicates.
func buildSegment(rows []Row, indexEvery int, fpRate float64) []byte {
	filter := bloom.New(len(rows), fpRate)
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, segMagic...)
	var scratch []byte
	var idxKeys []string
	var idxOffs []int64
	for i, r := range rows {
		if i%indexEvery == 0 {
			idxKeys = append(idxKeys, r.Key)
			idxOffs = append(idxOffs, int64(len(buf)))
		}
		filter.Add(r.Key)
		buf, scratch = appendRow(buf, scratch, r)
	}
	indexOff := int64(len(buf))
	buf = binary.AppendUvarint(buf, uint64(len(idxKeys)))
	for i, k := range idxKeys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, uint64(idxOffs[i]))
	}
	bloomOff := int64(len(buf))
	buf = filter.AppendMarshal(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(indexOff))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(bloomOff))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(rows)))
	buf = append(buf, segMagic...)
	return buf
}

// writeSegment persists sorted rows as segment file seq under dir,
// fsyncing file and directory, and returns the opened segment. The
// caller owns removing the file again if a later step of its state
// change fails.
func writeSegment(fs FS, dir string, seq uint64, rows []Row, indexEvery int, fpRate float64) (*segment, int64, error) {
	img := buildSegment(rows, indexEvery, fpRate)
	path := dir + "/" + segName(seq)
	f, err := fs.Create(path)
	if err != nil {
		return nil, 0, err
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		return nil, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, 0, err
	}
	if err := f.Close(); err != nil {
		return nil, 0, err
	}
	if err := fs.SyncDir(dir); err != nil {
		return nil, 0, err
	}
	seg, err := openSegment(fs, dir, seq)
	if err != nil {
		return nil, 0, err
	}
	return seg, int64(len(img)), nil
}

// openSegment opens segment file seq under dir, reading its footer,
// sparse index, and bloom filter; row data stays on disk.
func openSegment(fs FS, dir string, seq uint64) (*segment, error) {
	path := dir + "/" + segName(seq)
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	fail := func(format string, args ...any) (*segment, error) {
		f.Close()
		return nil, fmt.Errorf("lsm: segment %s: %s", path, fmt.Sprintf(format, args...))
	}
	if size < int64(len(segMagic)+segFooterSize) {
		return fail("file too short (%d bytes)", size)
	}
	head := make([]byte, len(segMagic))
	if _, err := f.ReadAt(head, 0); err != nil {
		return fail("read header: %v", err)
	}
	footer := make([]byte, segFooterSize)
	if _, err := f.ReadAt(footer, size-int64(segFooterSize)); err != nil {
		return fail("read footer: %v", err)
	}
	if string(head) != segMagic || string(footer[24:]) != segMagic {
		return fail("bad magic")
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:]))
	bloomOff := int64(binary.LittleEndian.Uint64(footer[8:]))
	rowCount := int64(binary.LittleEndian.Uint64(footer[16:]))
	if indexOff < int64(len(segMagic)) || bloomOff < indexOff || bloomOff > size-int64(segFooterSize) {
		return fail("corrupt footer offsets")
	}
	meta := make([]byte, size-int64(segFooterSize)-indexOff)
	if _, err := f.ReadAt(meta, indexOff); err != nil {
		return fail("read index/bloom: %v", err)
	}
	idx := meta[:bloomOff-indexOff]
	count, n := binary.Uvarint(idx)
	if n <= 0 {
		return fail("corrupt index count")
	}
	idx = idx[n:]
	keys := make([]string, 0, count)
	offs := make([]int64, 0, count)
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(idx)
		if n <= 0 || uint64(len(idx)-n) < klen {
			return fail("corrupt index entry %d", i)
		}
		key := string(idx[n : n+int(klen)])
		idx = idx[n+int(klen):]
		off, n := binary.Uvarint(idx)
		if n <= 0 {
			return fail("corrupt index offset %d", i)
		}
		idx = idx[n:]
		keys = append(keys, key)
		offs = append(offs, int64(off))
	}
	filter, err := bloom.Unmarshal(meta[bloomOff-indexOff:])
	if err != nil {
		return fail("%v", err)
	}
	return &segment{
		seq: seq, path: path, f: f,
		indexKeys: keys, indexOffs: offs,
		dataEnd: indexOff, filter: filter,
		rows: int(rowCount), bytes: size,
	}, nil
}

// get returns the newest stored version of key in this segment (which
// is the only one: segments hold one version per key). ok reports
// whether the key is present; bytesRead is the data read off the
// device for the probe. The bloom filter must be consulted by the
// caller (the engine counts skips).
func (s *segment) get(key string) (r Row, ok bool, bytesRead int64, err error) {
	// Largest indexed key <= key bounds the block to read.
	i := sort.SearchStrings(s.indexKeys, key)
	if i < len(s.indexKeys) && s.indexKeys[i] == key {
		// exact index hit: block starts at the key itself
	} else if i == 0 {
		return Row{}, false, 0, nil // key sorts before every row
	} else {
		i--
	}
	start := s.indexOffs[i]
	end := s.dataEnd
	if i+1 < len(s.indexOffs) {
		end = s.indexOffs[i+1]
	}
	block := make([]byte, end-start)
	if _, err := s.f.ReadAt(block, start); err != nil {
		return Row{}, false, int64(len(block)), fmt.Errorf("lsm: segment %s: read block: %w", s.path, err)
	}
	bytesRead = int64(len(block))
	for len(block) > 0 {
		row, rest, err := decodeRow(block)
		if err != nil {
			return Row{}, false, bytesRead, fmt.Errorf("lsm: segment %s: %w", s.path, err)
		}
		if row.Key == key {
			return row, true, bytesRead, nil
		}
		if row.Key > key {
			return Row{}, false, bytesRead, nil
		}
		block = rest
	}
	return Row{}, false, bytesRead, nil
}

// load reads and decodes every row in key order.
func (s *segment) load() ([]Row, error) {
	data := make([]byte, s.dataEnd-int64(len(segMagic)))
	if _, err := s.f.ReadAt(data, int64(len(segMagic))); err != nil {
		return nil, fmt.Errorf("lsm: segment %s: read rows: %w", s.path, err)
	}
	rows := make([]Row, 0, s.rows)
	for len(data) > 0 {
		row, rest, err := decodeRow(data)
		if err != nil {
			return nil, fmt.Errorf("lsm: segment %s: %w", s.path, err)
		}
		rows = append(rows, row)
		data = rest
	}
	return rows, nil
}

func (s *segment) close() error { return s.f.Close() }
