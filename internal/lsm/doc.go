// Package lsm is a durable log-structured merge storage engine: the
// persistence layer kvstore.Node mounts when given a data directory,
// standing in for the Cassandra commitlog/SSTable machinery the paper
// persists slates in (Section 4.2).
//
// # Structure
//
// Writes land in a CRC-guarded write-ahead log (one fsync per Put
// batch — group commit) and an in-memory memtable. When the memtable
// passes its size budget (or age bound) it is flushed to an immutable
// sorted segment file: framed rows, a sparse index block, and a
// serialized bloom filter, bounded by a fixed footer. A background
// compactor merges all segments into one once their count passes the
// threshold, dropping overwritten versions, tombstones, and
// TTL-expired rows. Reads consult the memtable, then segments newest
// to oldest, with the bloom filter gating each probe and the sparse
// index bounding the disk read to one block.
//
// # Durability contract
//
// When Put returns nil, the batch is on stable storage and survives
// any crash; on error nothing is acknowledged. The MANIFEST file is
// the root pointer, replaced only by write-temp → fsync → atomic
// rename → directory fsync, so flushes and compactions commit with a
// single rename: a crash at any instant leaves either the old segment
// set or the new one, never a mix. Open recovers exactly the
// acknowledged state — manifest segments, plus intact WAL records
// (a torn tail is dropped; those bytes were never acknowledged) — and
// sweeps orphan files from interrupted flushes or compactions.
//
// The FS interface abstracts the filesystem so crash tests can inject
// faults at any Create/Write/Sync/Rename/SyncDir and simulate power
// cuts (MemFS discards unsynced bytes); production uses OSFS.
//
// # Concurrency
//
// One mutex guards engine state. Segments are immutable once written,
// so compaction merges outside the lock (concurrent flushes only
// prepend segments) and swaps the list under it. Scan holds the lock
// across its callbacks, mirroring kvstore's documented scan semantics.
package lsm
