// Package storage models block storage devices with explicit seek and
// transfer costs. Section 4.2 of the paper argues for running the slate
// store on SSDs: cold-start slate fetches and compactions need random-
// seek I/O capacity that spinning disks cannot sustain. We do not have
// the paper's hardware, so the device is simulated: every read and
// write is charged a latency from a seek+bandwidth cost model, and the
// accumulated simulated busy time is what experiment E8 reports. The
// substitution preserves the property the argument relies on — random
// reads on an HDD pay a large per-operation seek penalty that an SSD
// does not.
package storage

import (
	"sync"
	"time"
)

// Profile describes a device's cost model.
type Profile struct {
	// Name labels the profile in bench output ("ssd", "hdd").
	Name string
	// SeekLatency is charged once per I/O operation. It models head
	// movement plus rotational delay on HDDs and flash translation
	// overhead on SSDs.
	SeekLatency time.Duration
	// ReadBandwidth and WriteBandwidth are sequential transfer rates in
	// bytes per second.
	ReadBandwidth  int64
	WriteBandwidth int64
}

// SSD returns a cost profile typical of the 2012-era SATA flash drives
// the paper deployed: ~100µs access, several hundred MB/s transfer.
func SSD() Profile {
	return Profile{
		Name:           "ssd",
		SeekLatency:    100 * time.Microsecond,
		ReadBandwidth:  500 << 20,
		WriteBandwidth: 300 << 20,
	}
}

// HDD returns a cost profile for a 7200rpm SATA disk: ~8ms average
// seek+rotate, ~150MB/s sequential transfer.
func HDD() Profile {
	return Profile{
		Name:           "hdd",
		SeekLatency:    8 * time.Millisecond,
		ReadBandwidth:  150 << 20,
		WriteBandwidth: 150 << 20,
	}
}

// Device is a simulated block device. All methods are safe for
// concurrent use. The device does not hold data — the key-value store
// keeps bytes in ordinary memory — it only accounts for the time the
// hardware would have spent.
type Device struct {
	profile Profile

	mu        sync.Mutex
	readOps   uint64
	writeOps  uint64
	readByte  int64
	writeByte int64
	busy      time.Duration
}

// NewDevice returns a device with the given cost profile.
func NewDevice(p Profile) *Device {
	return &Device{profile: p}
}

// Profile returns the device's cost profile.
func (d *Device) Profile() Profile { return d.profile }

func transferTime(n int64, bw int64) time.Duration {
	if bw <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(bw) * float64(time.Second))
}

// Read charges the device for one random read of n bytes and returns
// the simulated duration of the operation.
func (d *Device) Read(n int64) time.Duration {
	cost := d.profile.SeekLatency + transferTime(n, d.profile.ReadBandwidth)
	d.mu.Lock()
	d.readOps++
	d.readByte += n
	d.busy += cost
	d.mu.Unlock()
	return cost
}

// Write charges the device for one write of n bytes and returns the
// simulated duration.
func (d *Device) Write(n int64) time.Duration {
	cost := d.profile.SeekLatency + transferTime(n, d.profile.WriteBandwidth)
	d.mu.Lock()
	d.writeOps++
	d.writeByte += n
	d.busy += cost
	d.mu.Unlock()
	return cost
}

// SequentialWrite charges a seek only once per call regardless of size;
// memtable flushes and compactions are large sequential writes, which
// is exactly why an LSM store tolerates HDDs for writes but not for
// random reads.
func (d *Device) SequentialWrite(n int64) time.Duration {
	return d.Write(n)
}

// Stats is a snapshot of device accounting.
type Stats struct {
	ReadOps     uint64
	WriteOps    uint64
	ReadBytes   int64
	WriteBytes  int64
	BusyTime    time.Duration
	ProfileName string
}

// Stats returns the device's accumulated accounting.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		ReadOps:     d.readOps,
		WriteOps:    d.writeOps,
		ReadBytes:   d.readByte,
		WriteBytes:  d.writeByte,
		BusyTime:    d.busy,
		ProfileName: d.profile.Name,
	}
}

// Reset zeroes the accounting counters.
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.readOps, d.writeOps, d.readByte, d.writeByte, d.busy = 0, 0, 0, 0, 0
}
