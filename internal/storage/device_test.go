package storage

import (
	"sync"
	"testing"
	"time"
)

func TestSSDFasterThanHDDForRandomReads(t *testing.T) {
	ssd := NewDevice(SSD())
	hdd := NewDevice(HDD())
	var ssdTime, hddTime time.Duration
	for i := 0; i < 1000; i++ {
		ssdTime += ssd.Read(4096)
		hddTime += hdd.Read(4096)
	}
	if hddTime < ssdTime*10 {
		t.Fatalf("hdd random reads (%v) should be >=10x slower than ssd (%v)", hddTime, ssdTime)
	}
}

func TestSeekChargedPerOperation(t *testing.T) {
	d := NewDevice(Profile{SeekLatency: time.Millisecond, ReadBandwidth: 1 << 30, WriteBandwidth: 1 << 30})
	one := d.Read(0)
	if one < time.Millisecond {
		t.Fatalf("read of 0 bytes cost %v, want >= seek 1ms", one)
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	d := NewDevice(Profile{SeekLatency: 0, ReadBandwidth: 1 << 20, WriteBandwidth: 1 << 20})
	small := d.Read(1 << 10)
	big := d.Read(1 << 20)
	if big < 900*small {
		t.Fatalf("1MB read (%v) should be ~1024x the 1KB read (%v)", big, small)
	}
}

func TestZeroBandwidthChargesSeekOnly(t *testing.T) {
	d := NewDevice(Profile{SeekLatency: time.Millisecond})
	if got := d.Write(1 << 20); got != time.Millisecond {
		t.Fatalf("write with zero bandwidth = %v, want 1ms", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := NewDevice(SSD())
	d.Read(100)
	d.Write(200)
	d.SequentialWrite(300)
	s := d.Stats()
	if s.ReadOps != 1 || s.WriteOps != 2 {
		t.Fatalf("ops = %d/%d, want 1/2", s.ReadOps, s.WriteOps)
	}
	if s.ReadBytes != 100 || s.WriteBytes != 500 {
		t.Fatalf("bytes = %d/%d, want 100/500", s.ReadBytes, s.WriteBytes)
	}
	if s.BusyTime <= 0 {
		t.Fatal("busy time not accumulated")
	}
	if s.ProfileName != "ssd" {
		t.Fatalf("profile name = %q", s.ProfileName)
	}
}

func TestResetZeroesCounters(t *testing.T) {
	d := NewDevice(SSD())
	d.Read(1000)
	d.Reset()
	s := d.Stats()
	if s.ReadOps != 0 || s.BusyTime != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}

func TestConcurrentAccounting(t *testing.T) {
	d := NewDevice(SSD())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				d.Read(512)
				d.Write(512)
			}
		}()
	}
	wg.Wait()
	s := d.Stats()
	if s.ReadOps != 800 || s.WriteOps != 800 {
		t.Fatalf("ops = %d/%d, want 800/800", s.ReadOps, s.WriteOps)
	}
}
