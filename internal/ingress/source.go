package ingress

import (
	"context"
	"errors"
	"io"
	"time"

	"muppet/internal/event"
)

// Source is a pull-based, batch-oriented event supplier. Next fills
// dst with up to len(dst) events and returns how many it produced;
// it returns io.EOF (possibly alongside a final partial batch) when
// the source is exhausted. Sources are not required to be safe for
// concurrent use.
type Source interface {
	Next(dst []event.Event) (int, error)
}

// BatchIngester accepts batches of external input events; both Muppet
// engines satisfy it.
type BatchIngester interface {
	IngestBatch(evs []event.Event) (accepted int, err error)
}

// sliceSource yields a fixed slice of events.
type sliceSource struct {
	evs []event.Event
}

// FromSlice returns a Source yielding evs in order.
func FromSlice(evs []event.Event) Source {
	return &sliceSource{evs: evs}
}

func (s *sliceSource) Next(dst []event.Event) (int, error) {
	if len(s.evs) == 0 {
		return 0, io.EOF
	}
	n := copy(dst, s.evs)
	s.evs = s.evs[n:]
	if len(s.evs) == 0 {
		return n, io.EOF
	}
	return n, nil
}

// funcSource adapts a generator function to Source.
type funcSource struct {
	fn func() (event.Event, bool)
}

// FromFunc returns a Source that calls fn per event until fn reports
// false.
func FromFunc(fn func() (event.Event, bool)) Source {
	return &funcSource{fn: fn}
}

func (s *funcSource) Next(dst []event.Event) (int, error) {
	for i := range dst {
		ev, ok := s.fn()
		if !ok {
			return i, io.EOF
		}
		dst[i] = ev
	}
	return len(dst), nil
}

// takeSource caps a source at n events.
type takeSource struct {
	src  Source
	left int
}

// Take returns a Source yielding at most n events from src.
func Take(src Source, n int) Source {
	return &takeSource{src: src, left: n}
}

func (s *takeSource) Next(dst []event.Event) (int, error) {
	if s.left <= 0 {
		return 0, io.EOF
	}
	if len(dst) > s.left {
		dst = dst[:s.left]
	}
	n, err := s.src.Next(dst)
	s.left -= n
	if err == nil && s.left == 0 {
		err = io.EOF
	}
	return n, err
}

// rateLimited paces a source to a target event rate. Pacing is
// batch-granular: it sleeps only when the wrapped source has run ahead
// of the budget accrued since the first Next call, so the per-event
// cost is two arithmetic operations, not a timer.
type rateLimited struct {
	src     Source
	perSec  float64
	started time.Time
	sent    int64
}

// RateLimit wraps src to deliver at most perSec events per second.
// perSec <= 0 disables pacing.
func RateLimit(src Source, perSec float64) Source {
	if perSec <= 0 {
		return src
	}
	return &rateLimited{src: src, perSec: perSec}
}

func (s *rateLimited) Next(dst []event.Event) (int, error) {
	if s.started.IsZero() {
		s.started = time.Now()
	}
	budget := func() int64 {
		return int64(time.Since(s.started).Seconds() * s.perSec)
	}
	for budget() <= s.sent {
		behind := float64(s.sent-budget()+1) / s.perSec
		time.Sleep(time.Duration(behind * float64(time.Second)))
	}
	if allowed := budget() - s.sent; int64(len(dst)) > allowed {
		dst = dst[:allowed]
	}
	n, err := s.src.Next(dst)
	s.sent += int64(n)
	return n, err
}

// PumpStats summarizes one Pump run.
type PumpStats struct {
	// Events is the number of events read from the source.
	Events int
	// Accepted is the number the engine fully accepted.
	Accepted int
	// Batches is the number of IngestBatch calls made.
	Batches int
	// Dropped is the number of dropped deliveries reported by the
	// engine across all partially accepted batches.
	Dropped int
}

// Pump drains a source into an engine in batches of batchSize (default
// 256), the canonical ingestion loop of the streaming API. Partial
// batches (BatchError) are accounted in the stats and pumping
// continues; any other ingestion error stops the pump and is returned.
// The context is checked between batches.
func Pump(ctx context.Context, dst BatchIngester, src Source, batchSize int) (PumpStats, error) {
	if batchSize <= 0 {
		batchSize = 256
	}
	var stats PumpStats
	buf := make([]event.Event, batchSize)
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		n, err := src.Next(buf)
		if n > 0 {
			stats.Events += n
			stats.Batches++
			accepted, ierr := dst.IngestBatch(buf[:n])
			stats.Accepted += accepted
			if ierr != nil {
				var be *BatchError
				if !errors.As(ierr, &be) {
					return stats, ierr
				}
				stats.Dropped += be.Dropped
			}
		}
		if err == io.EOF {
			return stats, nil
		}
		if err != nil {
			return stats, err
		}
	}
}
