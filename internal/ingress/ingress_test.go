package ingress

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"muppet/internal/cluster"
	"muppet/internal/event"
)

func ev(key string) event.Event {
	return event.Event{Stream: "S1", Key: key}
}

func TestPlanGroupsByMachinePreservingOrder(t *testing.T) {
	p := NewPlan(4, 2)
	p.Add("m1", cluster.Delivery{Worker: "f", Ev: ev("a"), Tag: 0})
	p.Add("m2", cluster.Delivery{Worker: "f", Ev: ev("b"), Tag: 1})
	p.Add("m1", cluster.Delivery{Worker: "g", Ev: ev("c"), Tag: 2})
	p.Add("m1", cluster.Delivery{Worker: "f", Ev: ev("d"), Tag: 3})
	if p.Deliveries() != 4 {
		t.Fatalf("deliveries = %d, want 4", p.Deliveries())
	}
	var machines []string
	groups := make(map[string][]cluster.Delivery)
	p.Each(func(m string, ds []cluster.Delivery) {
		machines = append(machines, m)
		groups[m] = ds
	})
	if len(machines) != 2 || machines[0] != "m1" || machines[1] != "m2" {
		t.Fatalf("machine order = %v, want [m1 m2] (first-seen order)", machines)
	}
	m1 := groups["m1"]
	if len(m1) != 3 || m1[0].Ev.Key != "a" || m1[1].Ev.Key != "c" || m1[2].Ev.Key != "d" {
		t.Fatalf("m1 group out of order: %v", m1)
	}
	if m1[2].Tag != 3 {
		t.Fatalf("tag not preserved: %d", m1[2].Tag)
	}
}

func TestDropTallyResult(t *testing.T) {
	tl := NewDropTally(3)
	if n, err := tl.Result(); n != 3 || err != nil {
		t.Fatalf("clean tally: n=%d err=%v", n, err)
	}
	tl.Drop(1, "overflow")
	tl.Drop(1, "overflow") // two deliveries of the same event
	tl.Drop(2, "machine-down")
	n, err := tl.Result()
	if n != 1 {
		t.Fatalf("accepted = %d, want 1", n)
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BatchError", err)
	}
	if be.Events != 3 || be.Accepted != 1 || be.Dropped != 3 {
		t.Fatalf("batch error = %+v", be)
	}
	if be.Reasons["overflow"] != 2 || be.Reasons["machine-down"] != 1 {
		t.Fatalf("reasons = %v", be.Reasons)
	}
	if be.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestFromSliceSource(t *testing.T) {
	src := FromSlice([]event.Event{ev("a"), ev("b"), ev("c")})
	buf := make([]event.Event, 2)
	n, err := src.Next(buf)
	if n != 2 || err != nil {
		t.Fatalf("first Next: n=%d err=%v", n, err)
	}
	n, err = src.Next(buf)
	if n != 1 || err != io.EOF {
		t.Fatalf("second Next: n=%d err=%v, want 1, EOF", n, err)
	}
	n, err = src.Next(buf)
	if n != 0 || err != io.EOF {
		t.Fatalf("after EOF: n=%d err=%v", n, err)
	}
}

func TestTakeCapsAnEndlessSource(t *testing.T) {
	i := 0
	src := Take(FromFunc(func() (event.Event, bool) {
		i++
		return ev("k"), true
	}), 5)
	buf := make([]event.Event, 3)
	total := 0
	for {
		n, err := src.Next(buf)
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != 5 {
		t.Fatalf("yielded %d events, want 5", total)
	}
}

func TestRateLimitPacesBatches(t *testing.T) {
	src := RateLimit(Take(FromFunc(func() (event.Event, bool) { return ev("k"), true }), 60), 200)
	start := time.Now()
	buf := make([]event.Event, 32)
	total := 0
	for {
		n, err := src.Next(buf)
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if total != 60 {
		t.Fatalf("yielded %d events, want 60", total)
	}
	// 60 events at 200/s needs ~300ms; allow generous slack below.
	if elapsed < 200*time.Millisecond {
		t.Fatalf("60 events at 200/s took only %v — not paced", elapsed)
	}
}

// fakeIngester accepts everything, recording batch sizes, and can
// inject a partial-batch error.
type fakeIngester struct {
	batches []int
	partial bool
	fail    error
}

func (f *fakeIngester) IngestBatch(evs []event.Event) (int, error) {
	f.batches = append(f.batches, len(evs))
	if f.fail != nil {
		return 0, f.fail
	}
	if f.partial && len(evs) > 1 {
		return len(evs) - 1, &BatchError{Events: len(evs), Accepted: len(evs) - 1, Dropped: 1,
			Reasons: map[string]int{"overflow": 1}}
	}
	return len(evs), nil
}

func TestPumpBatchesAndAccounts(t *testing.T) {
	f := &fakeIngester{}
	evs := make([]event.Event, 10)
	for i := range evs {
		evs[i] = ev("k")
	}
	stats, err := Pump(context.Background(), f, FromSlice(evs), 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 10 || stats.Accepted != 10 || stats.Batches != 3 || stats.Dropped != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(f.batches) != 3 || f.batches[0] != 4 || f.batches[2] != 2 {
		t.Fatalf("batch sizes = %v", f.batches)
	}
}

func TestPumpContinuesThroughPartialBatches(t *testing.T) {
	f := &fakeIngester{partial: true}
	evs := make([]event.Event, 8)
	for i := range evs {
		evs[i] = ev("k")
	}
	stats, err := Pump(context.Background(), f, FromSlice(evs), 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 8 || stats.Accepted != 6 || stats.Dropped != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPumpStopsOnHardError(t *testing.T) {
	f := &fakeIngester{fail: ErrStopped}
	evs := make([]event.Event, 8)
	stats, err := Pump(context.Background(), f, FromSlice(evs), 4)
	if err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if stats.Batches != 1 {
		t.Fatalf("pump kept going after hard error: %+v", stats)
	}
}

func TestPumpHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := &fakeIngester{}
	_, err := Pump(ctx, f, FromFunc(func() (event.Event, bool) { return ev("k"), true }), 4)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(f.batches) != 0 {
		t.Fatal("pumped despite cancelled context")
	}
}
