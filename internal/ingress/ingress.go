package ingress

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"muppet/internal/cluster"
)

// ErrStopped is returned when events are offered to an engine that has
// been stopped. The events are recorded in the engine's lost log with
// the engine-stopped reason.
var ErrStopped = errors.New("ingress: engine stopped")

// ErrBackpressure is returned by IngestCtx when the destination queues
// stayed full until the context expired — the signal a well-behaved
// source slows down on.
var ErrBackpressure = errors.New("ingress: backpressure")

// NotInputError reports an event offered on a stream the application
// does not declare as an external input. The batch it arrived in is
// rejected whole, before any side effects.
type NotInputError struct {
	Stream string
}

func (e *NotInputError) Error() string {
	return fmt.Sprintf("ingress: %q is not a declared input stream", e.Stream)
}

// BatchError reports a partially accepted batch: some deliveries were
// dropped (queue overflow, dead machine, no route). The accepted
// events were fully processed; callers deciding whether to retry or
// shed should consult Reasons.
type BatchError struct {
	// Events is the number of events offered in the batch.
	Events int
	// Accepted is the number of events every one of whose subscriber
	// deliveries was accepted.
	Accepted int
	// Dropped is the number of individual deliveries (event ×
	// destination function) that were dropped.
	Dropped int
	// Reasons tallies the dropped deliveries by loss reason, matching
	// the reasons recorded in the engine's LostEvents log.
	Reasons map[string]int
}

func (e *BatchError) Error() string {
	var reasons []string
	for r, n := range e.Reasons {
		reasons = append(reasons, fmt.Sprintf("%s=%d", r, n))
	}
	sort.Strings(reasons)
	return fmt.Sprintf("ingress: batch partially accepted: %d/%d events, %d deliveries dropped (%s)",
		e.Accepted, e.Events, e.Dropped, strings.Join(reasons, " "))
}

// Plan groups one batch's deliveries by destination machine,
// preserving arrival order within each group — the order the per-event
// path would have enqueued them in, so batching never reorders a key's
// events. Tag on each delivery carries the index of the source event
// in the batch, letting engines map per-delivery rejections back to
// events.
//
// Plans are pooled: Release returns one for reuse, and a reused plan
// keeps its per-machine group capacity, so a steady ingestion loop
// stops paying allocation and GC for the (large) delivery structs
// after the first few batches — the dominant cost the batched path
// would otherwise add over fire-and-forget.
type Plan struct {
	order    []string
	groups   map[string][]cluster.Delivery
	groupCap int
}

var planPool = sync.Pool{
	New: func() any {
		return &Plan{groups: make(map[string][]cluster.Delivery, 8)}
	},
}

// NewPlan returns an empty plan, reusing a pooled one when available.
// deliveries and machines are sizing hints — the expected batch
// fan-out and cluster size — used to give fresh machine groups their
// likely capacity up front.
func NewPlan(deliveries, machines int) *Plan {
	if machines <= 0 {
		machines = 1
	}
	p := planPool.Get().(*Plan)
	p.groupCap = deliveries / machines
	if p.groupCap < 8 {
		p.groupCap = 8
	}
	return p
}

// Release empties the plan and returns it to the pool. The groups keep
// their backing arrays (overwritten by the next batch); callers must
// not touch the plan afterwards.
func (p *Plan) Release() {
	for m, g := range p.groups {
		p.groups[m] = g[:0]
	}
	p.order = p.order[:0]
	planPool.Put(p)
}

// Add appends one delivery to its destination machine's group.
func (p *Plan) Add(machine string, d cluster.Delivery) {
	g, ok := p.groups[machine]
	if !ok {
		p.order = append(p.order, machine)
		g = make([]cluster.Delivery, 0, p.groupCap)
	} else if len(g) == 0 {
		p.order = append(p.order, machine)
	}
	p.groups[machine] = append(g, d)
}

// Deliveries returns the total deliveries planned.
func (p *Plan) Deliveries() int {
	n := 0
	for _, g := range p.groups {
		n += len(g)
	}
	return n
}

// Each visits the machine groups in first-seen order.
func (p *Plan) Each(fn func(machine string, ds []cluster.Delivery)) {
	for _, m := range p.order {
		fn(m, p.groups[m])
	}
}

// DropTally accumulates per-event and per-reason drop accounting while
// a plan executes, and converts into the batch result the public API
// returns. The clean path (no drops) allocates nothing.
type DropTally struct {
	events   int
	perEvent []int
	reasons  map[string]int
	dropped  int
}

// NewDropTally returns a tally for a batch of n events.
func NewDropTally(n int) *DropTally {
	return &DropTally{events: n}
}

// Drop records one dropped delivery of the event at index i.
func (t *DropTally) Drop(i int, reason string) {
	if t.perEvent == nil {
		t.perEvent = make([]int, t.events)
		t.reasons = make(map[string]int)
	}
	t.perEvent[i]++
	t.dropped++
	t.reasons[reason]++
}

// Result returns the fully accepted event count, and a *BatchError if
// anything was dropped (nil otherwise).
func (t *DropTally) Result() (accepted int, err error) {
	if t.dropped == 0 {
		return t.events, nil
	}
	for _, d := range t.perEvent {
		if d == 0 {
			accepted++
		}
	}
	return accepted, &BatchError{
		Events:   t.events,
		Accepted: accepted,
		Dropped:  t.dropped,
		Reasons:  t.reasons,
	}
}
