package ingress

import (
	"context"
	"errors"
	"fmt"
	"time"

	"muppet/internal/cluster"
	"muppet/internal/engine"
	"muppet/internal/event"
	"muppet/internal/obs"
	"muppet/internal/queue"
)

// EngineOps is the engine-specific surface the shared batched-ingress
// driver runs against. Muppet 2.0 routes <function, key> on one ring
// to a machine (the worker address is the function name); Muppet 1.0
// routes on per-function rings to a worker ID on a machine. Everything
// else about ingestion — validation, stamping, fan-out, grouping,
// send accounting, overflow disposition — is identical, and lives in
// Driver so the two engines cannot drift.
type EngineOps interface {
	// Stopped reports whether the engine has been stopped.
	Stopped() bool
	// IsInput reports whether a stream is a declared external input.
	IsInput(stream string) bool
	// IsOutput reports whether a stream is a declared output.
	IsOutput(stream string) bool
	// Subscribers lists the functions subscribed to a stream.
	Subscribers(stream string) []string
	// NextSeq issues the next event sequence number.
	NextSeq() uint64
	// RecordOutput records an event on the egress sink.
	RecordOutput(ev event.Event)
	// Route resolves the owner of <fn, key>: the destination machine
	// and the worker addressed on it. An empty machine means no live
	// owner.
	Route(fn, key string) (machine, worker string)
	// FuncOf maps a worker address back to its function name for loss
	// accounting.
	FuncOf(worker string) string
	// SendBatch delivers a machine-addressed batch.
	SendBatch(machine string, ds []cluster.Delivery) (accepted int, rejects []cluster.BatchReject, err error)
	// Send delivers one event to a worker on a machine.
	Send(machine, worker string, ev event.Event) error
	// ObserveSendFailure reports a failed send to the failure detector.
	ObserveSendFailure(machine string)
	// ObserveTransientFailure reports an exhausted-retry (transient)
	// send failure to the failure detector's suspicion tracker.
	ObserveTransientFailure(machine string)
	// Reroute fans an event out to its stream's subscribers (the
	// engine's internal routing); the driver uses it for diverted
	// overflow.
	Reroute(ev event.Event)
}

// Driver is the shared batched-ingress front door: both engines'
// IngestBatch and IngestCtx delegate here.
type Driver struct {
	Ops      EngineOps
	Counters *engine.Counters
	Tracker  *engine.Tracker
	Lost     *engine.LostLog
	// Tracer, when non-nil, samples ingest calls into the
	// ingest-accept span histogram.
	Tracer *obs.Tracer
	// Machines sizes the delivery plan's per-machine groups.
	Machines int
	// Policy and OverflowStream are the engine's queue-overflow
	// disposition for rejected deliveries.
	Policy         queue.OverflowPolicy
	OverflowStream string
	// SourceThrottle makes IngestBatch wait-and-retry on overflow
	// instead of dropping, the paper's source throttling.
	SourceThrottle bool
}

// IngestBatch feeds a batch of external input events into the engine,
// grouping the deliveries per destination machine so the cluster send,
// the in-flight tracking, and the destination queue locks are paid per
// batch rather than per event. It returns the number of events whose
// every subscriber delivery was accepted; dropped deliveries are
// reported via a *BatchError tallied by reason (each also recorded in
// the lost log). A batch containing a non-input stream is rejected
// whole with *NotInputError before any side effects.
func (d *Driver) IngestBatch(evs []event.Event) (int, error) {
	return d.ingest(evs, nil)
}

// IngestCtx ingests one event, reporting backpressure and overflow
// instead of silently dropping: while the destination queue is full
// the call retries until the context is done, then fails with an error
// wrapping ErrBackpressure. Failures that are not queue pressure — a
// dead destination machine, a non-input stream, a stopped engine —
// surface as themselves even when the context has expired.
func (d *Driver) IngestCtx(ctx context.Context, ev event.Event) error {
	one := [1]event.Event{ev}
	_, err := d.ingest(one[:], func() bool {
		if ctx.Err() != nil {
			return false
		}
		time.Sleep(200 * time.Microsecond)
		return true
	})
	var be *BatchError
	if err != nil && ctx.Err() != nil && errors.As(err, &be) && be.Reasons[engine.LossBatchPartial.String()] > 0 {
		return fmt.Errorf("%w: %w", ErrBackpressure, ctx.Err())
	}
	return err
}

// ingest is the batched-ingress path. wait, when non-nil, is consulted
// before retrying a delivery rejected for queue overflow; returning
// false abandons the retry and the delivery is dropped and logged.
func (d *Driver) ingest(evs []event.Event, wait func() bool) (int, error) {
	if len(evs) == 0 {
		return 0, nil
	}
	if wait == nil && d.SourceThrottle {
		wait = func() bool {
			time.Sleep(200 * time.Microsecond)
			return true
		}
	}
	if d.Ops.Stopped() {
		for i := range evs {
			d.Lost.Record("", evs[i], engine.LossStopped)
		}
		return 0, ErrStopped
	}
	for i := range evs {
		if !d.Ops.IsInput(evs[i].Stream) {
			return 0, &NotInputError{Stream: evs[i].Stream}
		}
	}
	var traceStart time.Time
	traced := d.Tracer.Sample()
	if traced {
		traceStart = time.Now()
	}
	now := time.Now().UnixNano()
	tally := NewDropTally(len(evs))
	plan := NewPlan(len(evs), d.Machines)
	// Batches are usually single-stream: resolve the stream's fan-out
	// once and reuse it until the stream changes.
	var curStream string
	var subs []string
	var isOut bool
	for i := range evs {
		ev := evs[i]
		if ev.Seq == 0 {
			ev.Seq = d.Ops.NextSeq()
		}
		if ev.Ingress == 0 {
			ev.Ingress = now
		}
		if i == 0 || ev.Stream != curStream {
			curStream = ev.Stream
			subs = d.Ops.Subscribers(curStream)
			isOut = d.Ops.IsOutput(curStream)
		}
		if isOut {
			d.Ops.RecordOutput(ev)
		}
		for _, fn := range subs {
			machine, worker := d.Ops.Route(fn, ev.Key)
			if machine == "" {
				d.Counters.LostMachineDown.Add(1)
				d.Lost.Record(fn, ev, engine.LossNoRoute)
				tally.Drop(i, engine.LossNoRoute.String())
				continue
			}
			plan.Add(machine, cluster.Delivery{Worker: worker, Ev: ev, Tag: i})
		}
	}
	d.Counters.Ingested.Add(uint64(len(evs)))
	plan.Each(func(machine string, ds []cluster.Delivery) {
		d.Tracker.Add(len(ds))
		accepted, rejects, err := d.Ops.SendBatch(machine, ds)
		if err != nil {
			d.Tracker.Add(-len(ds))
			reason := engine.LossMachineDown
			switch {
			case cluster.IsTransient(err):
				// The retry budget is exhausted but the machine has not
				// been declared dead: feed the suspicion tracker (K such
				// observations escalate to failover) and log the loss
				// under its own reason.
				d.Ops.ObserveTransientFailure(machine)
				reason = engine.LossTransient
			case err == cluster.ErrMachineDown:
				d.Ops.ObserveSendFailure(machine)
			}
			d.Counters.LostMachineDown.Add(uint64(len(ds)))
			for _, del := range ds {
				d.Lost.Record(d.Ops.FuncOf(del.Worker), del.Ev, reason)
				tally.Drop(del.Tag, reason.String())
			}
			return
		}
		d.Counters.Emitted.Add(uint64(accepted))
		for _, rj := range rejects {
			d.Tracker.Add(-1)
			d.settleReject(ds[rj.Index], rj.Err, wait, tally)
		}
	})
	plan.Release()
	if traced {
		d.Tracer.ObserveIngestAccept(time.Since(traceStart))
	}
	return tally.Result()
}

// settleReject disposes of one delivery a batch send could not place:
// retry under the caller's backpressure waiter, divert under the
// Divert policy, otherwise drop with batch-partial accounting.
func (d *Driver) settleReject(del cluster.Delivery, cause error, wait func() bool, tally *DropTally) {
	fn := d.Ops.FuncOf(del.Worker)
	if cause == queue.ErrOverflow && wait != nil {
		for wait() {
			// The ring may have moved the key while we waited.
			machine, worker := d.Ops.Route(fn, del.Ev.Key)
			if machine == "" {
				d.Counters.LostMachineDown.Add(1)
				d.Lost.Record(fn, del.Ev, engine.LossNoRoute)
				tally.Drop(del.Tag, engine.LossNoRoute.String())
				return
			}
			// Track before sending: the consumer may process (and
			// retire) the delivery the instant it lands.
			d.Tracker.Inc()
			err := d.Ops.Send(machine, worker, del.Ev)
			if err == nil {
				d.Counters.Emitted.Add(1)
				return
			}
			d.Tracker.Dec()
			if err == queue.ErrOverflow {
				continue
			}
			reason := engine.LossMachineDown
			switch {
			case cluster.IsTransient(err):
				d.Ops.ObserveTransientFailure(machine)
				reason = engine.LossTransient
			case err == cluster.ErrMachineDown:
				d.Ops.ObserveSendFailure(machine)
			}
			d.Counters.LostMachineDown.Add(1)
			d.Lost.Record(fn, del.Ev, reason)
			tally.Drop(del.Tag, reason.String())
			return
		}
	}
	switch {
	case cause == queue.ErrOverflow && d.Policy == queue.Divert &&
		d.OverflowStream != "" && del.Ev.Stream != d.OverflowStream:
		div := del.Ev
		div.Stream = d.OverflowStream
		d.Counters.Diverted.Add(1)
		d.Ops.Reroute(div)
	case cause == queue.ErrClosed:
		// The destination was crashing (or stopping) under the batch;
		// account it like any other delivery to a dying machine.
		d.Counters.LostMachineDown.Add(1)
		d.Lost.Record(fn, del.Ev, engine.LossMachineDown)
		tally.Drop(del.Tag, engine.LossMachineDown.String())
	default:
		d.Counters.LostOverflow.Add(1)
		d.Lost.Record(fn, del.Ev, engine.LossBatchPartial)
		tally.Drop(del.Tag, engine.LossBatchPartial.String())
	}
}
