package ingress_test

// Benchmarks for the streaming-ingress redesign's core claim: grouping
// a batch's deliveries per destination machine amortizes the cluster
// send, the tracker accounting, and the destination queue lock, so the
// per-event overhead of the engine2 hot path falls measurably versus
// fire-and-forget Ingest. CI publishes these as BENCH_ingress.json.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"muppet/internal/core"
	"muppet/internal/engine2"
	"muppet/internal/event"
)

func benchApp() *core.App {
	m1 := core.MapFunc{FName: "M1", Fn: func(emit core.Emitter, in event.Event) {
		if strings.HasPrefix(string(in.Value), "checkin:") {
			emit.Publish("S2", strings.TrimPrefix(string(in.Value), "checkin:"), in.Value)
		}
	}}
	u1 := core.UpdateFunc{FName: "U1", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		count := 0
		if sl != nil {
			count, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(count + 1)))
	}}
	return core.NewApp("bench").
		Input("S1").
		AddMap(m1, []string{"S1"}, []string{"S2"}).
		AddUpdate(u1, []string{"S2"}, nil, 0)
}

func benchEngine(b *testing.B) *engine2.Engine {
	b.Helper()
	e, err := engine2.New(benchApp(), engine2.Config{
		Machines:          8,
		ThreadsPerMachine: 2,
		QueueCapacity:     1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func benchEvents(n int) []event.Event {
	retailers := []string{"walmart", "bestbuy", "jcpenney", "samsclub", "target", "costco", "kohls", "macys"}
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.Event{
			Stream: "S1",
			TS:     event.Timestamp(i + 1),
			Key:    fmt.Sprintf("c%d", i),
			Value:  []byte("checkin:" + retailers[i%len(retailers)]),
		}
	}
	return evs
}

// BenchmarkIngressPerEvent is the baseline: one fire-and-forget Ingest
// call per event, paying ring send, tracker, and queue lock each time.
func BenchmarkIngressPerEvent(b *testing.B) {
	e := benchEngine(b)
	defer e.Stop()
	evs := benchEvents(b.N)
	b.ResetTimer()
	for i := range evs {
		e.Ingest(evs[i])
	}
	e.Drain()
}

// BenchmarkIngressBatch256 feeds the same workload through
// IngestBatch in 256-event batches — the redesigned hot path.
func BenchmarkIngressBatch256(b *testing.B) {
	benchmarkBatch(b, 256)
}

// BenchmarkIngressBatch1024 measures a larger batch to show where the
// amortization flattens out.
func BenchmarkIngressBatch1024(b *testing.B) {
	benchmarkBatch(b, 1024)
}

func benchmarkBatch(b *testing.B, size int) {
	e := benchEngine(b)
	defer e.Stop()
	evs := benchEvents(b.N)
	b.ResetTimer()
	for i := 0; i < len(evs); i += size {
		end := i + size
		if end > len(evs) {
			end = len(evs)
		}
		if _, err := e.IngestBatch(evs[i:end]); err != nil {
			b.Fatal(err)
		}
	}
	e.Drain()
}

// BenchmarkIngressEnqueueOnlyPerEvent isolates the enqueue path (no
// processing): a single hot destination machine, worker threads
// parked behind a full-speed consumer-free measurement is impossible
// in-process, so instead the map stage is trivial and the measurement
// reflects dominated-by-enqueue cost.
func BenchmarkIngressEnqueueOnlyPerEvent(b *testing.B) {
	benchmarkEnqueueOnly(b, 0)
}

// BenchmarkIngressEnqueueOnlyBatch256 is the batched equivalent.
func BenchmarkIngressEnqueueOnlyBatch256(b *testing.B) {
	benchmarkEnqueueOnly(b, 256)
}

func benchmarkEnqueueOnly(b *testing.B, batch int) {
	u := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {}}
	app := core.NewApp("enq").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
	e, err := engine2.New(app, engine2.Config{
		Machines:          4,
		ThreadsPerMachine: 2,
		QueueCapacity:     1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Stop()
	evs := benchEvents(b.N)
	b.ResetTimer()
	if batch <= 0 {
		for i := range evs {
			e.Ingest(evs[i])
		}
	} else {
		for i := 0; i < len(evs); i += batch {
			end := i + batch
			if end > len(evs) {
				end = len(evs)
			}
			if _, err := e.IngestBatch(evs[i:end]); err != nil {
				b.Fatal(err)
			}
		}
	}
	e.Drain()
}
