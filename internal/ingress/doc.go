// Package ingress is the shared front door of both Muppet engines:
// the batched, error-returning ingestion surface the streaming API
// redesign is built on.
//
// The paper's interface to the outside world (Sections 3 and 5) is a
// fire-and-forget Ingest(event): every external event pays a ring
// lookup, a cluster send (liveness check plus latency charge), and a
// destination queue lock on its own. At "heavy traffic from millions
// of users" those per-event costs dominate the hot path. This package
// provides the pieces that amortize them per batch instead:
//
//   - Plan groups a batch's deliveries by destination machine while
//     preserving arrival order, so one cluster.SendBatch (one liveness
//     check, one latency charge) and one queue.PutBatch per local
//     queue (one mutex acquisition) carry the whole group;
//   - the error types (BatchError, ErrStopped, NotInputError,
//     ErrBackpressure) that make ingestion report overflow and
//     backpressure instead of silently dropping;
//   - the pull-based Source abstraction and Pump driver that feed an
//     engine in batches — used by cmd/muppet, the examples, the
//     experiment harness, and the httpapi POST /ingest endpoint.
//
// # Contract
//
// A batch ingest returns (accepted, err) where accepted counts events
// durably handed to a queue (or a remote node). A nil error means the
// whole batch was accepted; a *BatchError carries per-event rejection
// reasons positionally aligned with the input, and accepted plus
// rejected always equals the batch length — no event is silently
// dropped or double-counted. Events rejected with ErrBackpressure are
// safe to retry; events rejected with queue.ErrOverflow were dropped
// by policy and are accounted as lost.
//
// # Concurrency
//
// A Plan is single-goroutine state: it is taken from a pool
// (NewPlan), filled, walked (Each), and Released by one caller; the
// Driver holds no cross-call state, so distinct goroutines may ingest
// concurrently. Pump runs on the calling goroutine until the Source
// ends or its context is cancelled. Arrival order is preserved within
// one batch per destination; batches from concurrent ingesters
// interleave arbitrarily.
package ingress
