// Package workload synthesizes the input streams the paper's
// applications consume. We do not have the Twitter Firehose or the
// Foursquare checkin stream, so this package generates statistically
// similar substitutes: JSON tweet and checkin events with
// Zipf-distributed keys (the paper observes event-key distributions
// are "strongly skewed (e.g., follow a Zipfian distribution)",
// Section 5), planted retailer checkins, topic vocabularies with
// optional hot-topic bursts, and shared URLs for the top-ten-URLs
// application.
package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"muppet/internal/event"
)

// Retailers are the venue brands Example 1 counts checkins for.
var Retailers = []string{"Walmart", "Sam's Club", "Best Buy", "JCPenney", "Target"}

// Topics is the pre-defined topic set the hot-topics application
// classifies tweets into (Example 2).
var Topics = []string{"sports", "politics", "music", "movies", "tech", "food", "travel", "fashion"}

// Tweet is the value payload of a synthetic tweet event.
type Tweet struct {
	ID        uint64   `json:"id"`
	User      string   `json:"user"`
	Text      string   `json:"text"`
	Topic     string   `json:"topic"`
	RetweetOf string   `json:"retweet_of,omitempty"`
	ReplyTo   string   `json:"reply_to,omitempty"`
	URLs      []string `json:"urls,omitempty"`
	Minute    int      `json:"minute"`
}

// Checkin is the value payload of a synthetic Foursquare checkin.
type Checkin struct {
	ID    uint64 `json:"id"`
	User  string `json:"user"`
	Venue string `json:"venue"`
}

// Config tunes a generator.
type Config struct {
	// Seed makes the stream deterministic.
	Seed int64
	// Users is the size of the user population.
	Users int
	// ZipfS is the Zipf skew parameter (> 1); higher is more skewed.
	// Zero selects a mild default of 1.1.
	ZipfS float64
	// EventsPerSecond spaces the synthetic timestamps; zero means
	// 1000 events/s of stream time.
	EventsPerSecond int
	// RetailerFraction is the fraction of checkins at a recognized
	// retailer (default 0.3).
	RetailerFraction float64
	// RetweetFraction is the fraction of tweets that are retweets
	// (default 0.2); the reputation app consumes these.
	RetweetFraction float64
	// URLFraction is the fraction of tweets carrying a URL (default
	// 0.25).
	URLFraction float64
	// URLs is the size of the URL population (default 1000).
	URLs int
	// HotTopic, when set with HotFromMinute <= m < HotToMinute, makes
	// the named topic dominate during those stream minutes — the
	// planted anomaly experiment E15 must detect.
	HotTopic      string
	HotFromMinute int
	HotToMinute   int
	// HotBoost is how many extra draws the hot topic gets (default 10x).
	HotBoost int
}

func (c *Config) fill() {
	if c.Users <= 0 {
		c.Users = 10_000
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	if c.EventsPerSecond <= 0 {
		c.EventsPerSecond = 1000
	}
	if c.RetailerFraction <= 0 {
		c.RetailerFraction = 0.3
	}
	if c.RetweetFraction <= 0 {
		c.RetweetFraction = 0.2
	}
	if c.URLFraction <= 0 {
		c.URLFraction = 0.25
	}
	if c.URLs <= 0 {
		c.URLs = 1000
	}
	if c.HotBoost <= 0 {
		c.HotBoost = 10
	}
}

// Generator produces deterministic synthetic streams.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	urls *rand.Zipf
	n    uint64
	ts   event.Timestamp
	step event.Timestamp
}

// New returns a generator with the given configuration.
func New(cfg Config) *Generator {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Generator{
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Users-1)),
		urls: rand.NewZipf(rng, 1.3, 1, uint64(cfg.URLs-1)),
		step: event.Timestamp(1_000_000 / cfg.EventsPerSecond),
	}
}

// user draws a Zipf-distributed user name.
func (g *Generator) user() string {
	return fmt.Sprintf("user%05d", g.zipf.Uint64())
}

func (g *Generator) next() (uint64, event.Timestamp) {
	g.n++
	g.ts += g.step
	return g.n, g.ts
}

// Minute returns the stream minute of a timestamp (the paper keys
// per-minute counts on it, Example 5).
func Minute(ts event.Timestamp) int {
	return int(ts / 60_000_000 % 1440)
}

// topic draws the tweet topic, honoring a configured hot burst.
func (g *Generator) topic(minute int) string {
	if g.cfg.HotTopic != "" && minute >= g.cfg.HotFromMinute && minute < g.cfg.HotToMinute {
		if g.rng.Intn(g.cfg.HotBoost+1) != 0 {
			return g.cfg.HotTopic
		}
	}
	return Topics[g.rng.Intn(len(Topics))]
}

// Tweet produces the next synthetic tweet event on the given stream.
// The event key is the tweeting user.
func (g *Generator) Tweet(stream string) event.Event {
	id, ts := g.next()
	minute := Minute(ts)
	t := Tweet{
		ID:     id,
		User:   g.user(),
		Topic:  g.topic(minute),
		Minute: minute,
	}
	t.Text = fmt.Sprintf("talking about %s right now", t.Topic)
	if g.rng.Float64() < g.cfg.RetweetFraction {
		t.RetweetOf = g.user()
	} else if g.rng.Float64() < 0.1 {
		t.ReplyTo = g.user()
	}
	if g.rng.Float64() < g.cfg.URLFraction {
		t.URLs = []string{fmt.Sprintf("http://ex.am/%04d", g.urls.Uint64())}
	}
	v, err := json.Marshal(t)
	if err != nil {
		panic(fmt.Sprintf("workload: marshal tweet: %v", err))
	}
	return event.Event{Stream: stream, TS: ts, Seq: id, Key: t.User, Value: v}
}

// Checkin produces the next synthetic checkin event. The event key is
// the checking-in user.
func (g *Generator) Checkin(stream string) event.Event {
	id, ts := g.next()
	c := Checkin{ID: id, User: g.user()}
	if g.rng.Float64() < g.cfg.RetailerFraction {
		c.Venue = Retailers[g.rng.Intn(len(Retailers))]
	} else {
		c.Venue = fmt.Sprintf("Joe's Diner #%d", g.rng.Intn(5000))
	}
	v, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("workload: marshal checkin: %v", err))
	}
	return event.Event{Stream: stream, TS: ts, Seq: id, Key: c.User, Value: v}
}

// Tweets produces n tweet events.
func (g *Generator) Tweets(stream string, n int) []event.Event {
	out := make([]event.Event, n)
	for i := range out {
		out[i] = g.Tweet(stream)
	}
	return out
}

// Checkins produces n checkin events.
func (g *Generator) Checkins(stream string, n int) []event.Event {
	out := make([]event.Event, n)
	for i := range out {
		out[i] = g.Checkin(stream)
	}
	return out
}

// KeyedEvents produces n bare events whose keys follow the generator's
// Zipf distribution over a population of nkeys — the raw material for
// hotspot experiments.
func (g *Generator) KeyedEvents(stream string, n, nkeys int) []event.Event {
	z := rand.NewZipf(g.rng, g.cfg.ZipfS, 1, uint64(nkeys-1))
	out := make([]event.Event, n)
	for i := range out {
		id, ts := g.next()
		out[i] = event.Event{
			Stream: stream,
			TS:     ts,
			Seq:    id,
			Key:    fmt.Sprintf("key%05d", z.Uint64()),
		}
	}
	return out
}

// ParseTweet decodes a tweet payload.
func ParseTweet(v []byte) (Tweet, error) {
	var t Tweet
	err := json.Unmarshal(v, &t)
	return t, err
}

// ParseCheckin decodes a checkin payload.
func ParseCheckin(v []byte) (Checkin, error) {
	var c Checkin
	err := json.Unmarshal(v, &c)
	return c, err
}

// IsRetailer reports whether a venue belongs to a recognized retailer
// and returns its canonical name, the role of the RetailerMapper's
// regexes in Figure 3.
func IsRetailer(venue string) (string, bool) {
	for _, r := range Retailers {
		if venue == r {
			return r, true
		}
	}
	return "", false
}
