package workload

import (
	"sort"
	"testing"

	"muppet/internal/event"
)

func TestDeterministicStreams(t *testing.T) {
	a := New(Config{Seed: 42}).Tweets("S1", 100)
	b := New(Config{Seed: 42}).Tweets("S1", 100)
	for i := range a {
		if string(a[i].Value) != string(b[i].Value) || a[i].TS != b[i].TS {
			t.Fatalf("streams diverge at %d", i)
		}
	}
	c := New(Config{Seed: 43}).Tweets("S1", 100)
	same := 0
	for i := range a {
		if string(a[i].Value) == string(c[i].Value) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestTimestampsStrictlyIncrease(t *testing.T) {
	g := New(Config{Seed: 1, EventsPerSecond: 500})
	evs := g.Tweets("S1", 200)
	for i := 1; i < len(evs); i++ {
		if evs[i].TS <= evs[i-1].TS {
			t.Fatalf("ts not increasing at %d: %d then %d", i, evs[i-1].TS, evs[i].TS)
		}
	}
	// 500 events/s means 2ms spacing.
	if d := evs[1].TS - evs[0].TS; d != 2000 {
		t.Fatalf("spacing = %dµs, want 2000", d)
	}
}

func TestTweetsParseAndHaveTopics(t *testing.T) {
	g := New(Config{Seed: 7})
	valid := map[string]bool{}
	for _, tp := range Topics {
		valid[tp] = true
	}
	for _, ev := range g.Tweets("S1", 200) {
		tw, err := ParseTweet(ev.Value)
		if err != nil {
			t.Fatal(err)
		}
		if !valid[tw.Topic] {
			t.Fatalf("unknown topic %q", tw.Topic)
		}
		if ev.Key != tw.User {
			t.Fatalf("event key %q != user %q", ev.Key, tw.User)
		}
	}
}

func TestCheckinRetailerFraction(t *testing.T) {
	g := New(Config{Seed: 7, RetailerFraction: 0.5})
	hits := 0
	const n = 2000
	for _, ev := range g.Checkins("S1", n) {
		c, err := ParseCheckin(ev.Value)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := IsRetailer(c.Venue); ok {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("retailer fraction = %.3f, want ~0.5", frac)
	}
}

func TestZipfSkewsUsers(t *testing.T) {
	g := New(Config{Seed: 3, Users: 1000, ZipfS: 1.5})
	counts := map[string]int{}
	const n = 5000
	for _, ev := range g.Tweets("S1", n) {
		counts[ev.Key]++
	}
	var freqs []int
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	// The most active user should dominate dramatically under s=1.5.
	if freqs[0] < n/10 {
		t.Fatalf("top user has %d of %d events; distribution not skewed", freqs[0], n)
	}
	if len(counts) < 10 {
		t.Fatalf("only %d distinct users; distribution degenerate", len(counts))
	}
}

func TestHotTopicBurst(t *testing.T) {
	g := New(Config{
		Seed: 5, HotTopic: "sports",
		HotFromMinute: 0, HotToMinute: 10, HotBoost: 20,
	})
	inBurst, total := 0, 0
	for _, ev := range g.Tweets("S1", 3000) {
		tw, _ := ParseTweet(ev.Value)
		if tw.Minute < 10 {
			total++
			if tw.Topic == "sports" {
				inBurst++
			}
		}
	}
	if total == 0 {
		t.Fatal("no events landed in the burst window")
	}
	frac := float64(inBurst) / float64(total)
	if frac < 0.5 {
		t.Fatalf("hot topic fraction %.3f during burst, want > 0.5", frac)
	}
}

func TestRetweetsPresent(t *testing.T) {
	g := New(Config{Seed: 11, RetweetFraction: 0.5})
	retweets := 0
	for _, ev := range g.Tweets("S1", 500) {
		tw, _ := ParseTweet(ev.Value)
		if tw.RetweetOf != "" {
			retweets++
		}
	}
	if retweets < 150 {
		t.Fatalf("retweets = %d of 500, want ~250", retweets)
	}
}

func TestURLsPresent(t *testing.T) {
	g := New(Config{Seed: 13, URLFraction: 0.5})
	withURL := 0
	for _, ev := range g.Tweets("S1", 500) {
		tw, _ := ParseTweet(ev.Value)
		if len(tw.URLs) > 0 {
			withURL++
		}
	}
	if withURL < 150 {
		t.Fatalf("tweets with URL = %d of 500, want ~250", withURL)
	}
}

func TestKeyedEventsZipf(t *testing.T) {
	g := New(Config{Seed: 17, ZipfS: 1.5})
	evs := g.KeyedEvents("S1", 2000, 100)
	counts := map[string]int{}
	for _, e := range evs {
		counts[e.Key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 200 {
		t.Fatalf("hottest key has %d of 2000; not skewed", max)
	}
}

func TestMinute(t *testing.T) {
	if Minute(0) != 0 {
		t.Fatal("minute of ts 0")
	}
	if got := Minute(event.Timestamp(61 * 1_000_000)); got != 1 {
		t.Fatalf("Minute(61s) = %d, want 1", got)
	}
	// 23:59 wraps to 1439, then rolls over.
	if got := Minute(event.Timestamp(1440 * 60 * 1_000_000)); got != 0 {
		t.Fatalf("Minute(24h) = %d, want 0", got)
	}
}

func TestIsRetailer(t *testing.T) {
	if r, ok := IsRetailer("Walmart"); !ok || r != "Walmart" {
		t.Fatal("Walmart not recognized")
	}
	if _, ok := IsRetailer("Joe's Diner #42"); ok {
		t.Fatal("diner recognized as retailer")
	}
}
