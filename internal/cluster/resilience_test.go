package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"muppet/internal/event"
)

// scriptedTransport scripts SendBatch outcomes by call number (1-based)
// for retry-loop tests.
type scriptedTransport struct {
	mu    sync.Mutex
	calls int
	ids   []BatchID
	fn    func(call int) error
}

func (s *scriptedTransport) SendBatch(machine string, id BatchID, ds []Delivery) (int, []BatchReject, error) {
	s.mu.Lock()
	s.calls++
	call := s.calls
	s.ids = append(s.ids, id)
	s.mu.Unlock()
	if err := s.fn(call); err != nil {
		return 0, nil, err
	}
	return len(ds), nil, nil
}

func (s *scriptedTransport) Name() string { return "scripted" }
func (s *scriptedTransport) Close() error { return nil }

func (s *scriptedTransport) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func retryTestCluster(tr Transport, attempts int) *Cluster {
	return New(Config{
		Names:     []string{"machine-00", "machine-01"},
		Local:     []string{"machine-00"},
		Transport: tr,
		Retry:     RetryConfig{Attempts: attempts, Backoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond},
	})
}

// A transient blip heals inside the retry budget: the send succeeds,
// the caller never sees an error, and no liveness presumption flips —
// the pinned behavior that a single blip must not trigger failover.
func TestRetryRecoversTransientBlip(t *testing.T) {
	tr := &scriptedTransport{fn: func(call int) error {
		if call < 3 {
			return transientErr("test-blip", nil)
		}
		return nil
	}}
	c := retryTestCluster(tr, 3)
	defer c.Close()

	if err := c.Send("machine-01", "w", event.Event{Key: "k"}); err != nil {
		t.Fatalf("send across a 2-attempt blip: %v", err)
	}
	if got := tr.callCount(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	// Every attempt must reuse the same BatchID, or receiver dedup has
	// nothing to key on.
	for i, id := range tr.ids {
		if id != tr.ids[0] {
			t.Fatalf("attempt %d used id %+v, want %+v", i, id, tr.ids[0])
		}
	}
	if !tr.ids[0].sequenced() {
		t.Fatalf("remote batch id %+v is unsequenced", tr.ids[0])
	}
	if !c.Machine("machine-01").Alive() {
		t.Fatal("a healed blip flipped the liveness presumption")
	}
	st := c.DeliveryStats()
	if st.Retries != 2 || st.TransientErrors != 2 || st.RetryExhausted != 0 {
		t.Fatalf("stats = %+v, want 2 retries / 2 transient / 0 exhausted", st)
	}
}

// Exhausting the budget surfaces the transient error (for the
// suspicion window to judge) without flipping liveness.
func TestRetryExhaustion(t *testing.T) {
	tr := &scriptedTransport{fn: func(call int) error { return transientErr("test-blip", nil) }}
	c := retryTestCluster(tr, 3)
	defer c.Close()

	err := c.Send("machine-01", "w", event.Event{Key: "k"})
	if !IsTransient(err) {
		t.Fatalf("exhausted retries: err = %v, want the transient fault", err)
	}
	if got := tr.callCount(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if !c.Machine("machine-01").Alive() {
		t.Fatal("exhausted retries flipped the liveness presumption; that is the detector's call")
	}
	if st := c.DeliveryStats(); st.RetryExhausted != 1 || st.IndeterminateLost != 0 {
		t.Fatalf("stats = %+v, want 1 exhausted, 0 indeterminate (every attempt failed before the wire)", st)
	}
}

// An exhausted budget where some attempt got the whole request out —
// a lost response — is flagged indeterminate: the sender will report
// the events lost, but the receiver may have applied them, and
// DeliveryStats.IndeterminateLost bounds that overcount exactly.
func TestRetryExhaustionIndeterminate(t *testing.T) {
	tr := &scriptedTransport{fn: func(call int) error {
		if call == 2 {
			return transientErrIndet("test-lost-response", nil)
		}
		return transientErr("test-blip", nil)
	}}
	c := retryTestCluster(tr, 3)
	defer c.Close()

	err := c.Send("machine-01", "w", event.Event{Key: "k"})
	if !IsTransient(err) {
		t.Fatalf("exhausted retries: err = %v, want the transient fault", err)
	}
	st := c.DeliveryStats()
	if st.RetryExhausted != 1 || st.IndeterminateLost != 1 {
		t.Fatalf("stats = %+v, want 1 exhausted / 1 indeterminate-lost event", st)
	}
	if !IsIndeterminate(transientErrIndet("x", nil)) || IsIndeterminate(transientErr("x", nil)) {
		t.Fatal("IsIndeterminate misclassifies")
	}
}

// A fatal answer is never retried: detect-on-send stays immediate.
func TestRetryFatalFailsImmediately(t *testing.T) {
	tr := &scriptedTransport{fn: func(call int) error { return ErrMachineDown }}
	c := retryTestCluster(tr, 5)
	defer c.Close()

	if err := c.Send("machine-01", "w", event.Event{}); !errors.Is(err, ErrMachineDown) {
		t.Fatalf("err = %v, want ErrMachineDown", err)
	}
	if got := tr.callCount(); got != 1 {
		t.Fatalf("attempts = %d, want 1: fatal errors must not be retried", got)
	}
	if c.Machine("machine-01").Alive() {
		t.Fatal("authoritative machine-down must flip the presumption")
	}
}

// inprocPair wires two nodes over InProc, optionally wrapping the
// sender's view in chaos, and installs a counting handler on the host.
func inprocPair(t *testing.T, wrap func(Transport) Transport, retry RetryConfig) (sender, host *Cluster, applied *map[string]int, mu *sync.Mutex) {
	t.Helper()
	names := []string{"machine-00", "machine-01"}
	reg := NewInProc()
	var senderTr Transport = reg
	if wrap != nil {
		senderTr = wrap(reg)
	}
	host = New(Config{Names: names, Local: []string{"machine-01"}, Transport: reg, Node: "node-b"})
	sender = New(Config{Names: names, Local: []string{"machine-00"}, Transport: senderTr, Node: "node-a", Retry: retry})
	reg.Register(host)
	reg.Register(sender)

	counts := make(map[string]int)
	var cmu sync.Mutex
	host.SetBatchHandler("machine-01", func(ds []Delivery) []error {
		cmu.Lock()
		defer cmu.Unlock()
		for i := range ds {
			counts[ds[i].Ev.Key]++
		}
		return nil
	})
	t.Cleanup(func() { sender.Close(); host.Close() })
	return sender, host, &counts, &cmu
}

// A retry whose first attempt did land (lost response) must not
// double-apply: the receiver's window answers the retry from cache.
func TestDedupAbsorbsLostResponseRetry(t *testing.T) {
	wrap := func(inner Transport) Transport {
		return NewChaos(inner, ChaosConfig{
			Seed:                 1,
			DropResponse:         1.0, // every first attempt applies, then loses its answer
			MaxFaultsPerDelivery: 1,
		})
	}
	sender, host, counts, mu := inprocPair(t, wrap, RetryConfig{Attempts: 3, Backoff: time.Microsecond})

	const n = 50
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := sender.Send("machine-01", "w", event.Event{Key: key}); err != nil {
			t.Fatalf("send %s: %v", key, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for key, got := range *counts {
		if got != 1 {
			t.Fatalf("key %s applied %d times, want exactly once", key, got)
		}
	}
	if len(*counts) != n {
		t.Fatalf("applied %d keys, want %d", len(*counts), n)
	}
	st := host.DeliveryStats()
	if st.DedupHits != n {
		t.Fatalf("host dedup hits = %d, want %d (one absorbed retry per send)", st.DedupHits, n)
	}
	if ss := sender.DeliveryStats(); ss.Retries != n {
		t.Fatalf("sender retries = %d, want %d", ss.Retries, n)
	}
}

// Chaos duplicates of a successful exchange vanish into the window.
func TestDedupAbsorbsChaosDuplicates(t *testing.T) {
	var chaos *Chaos
	wrap := func(inner Transport) Transport {
		chaos = NewChaos(inner, ChaosConfig{Seed: 2, Duplicate: 1.0})
		return chaos
	}
	sender, host, counts, mu := inprocPair(t, wrap, RetryConfig{Attempts: 1})

	const n = 40
	for i := 0; i < n; i++ {
		if err := sender.Send("machine-01", "w", event.Event{Key: fmt.Sprintf("k%d", i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for key, got := range *counts {
		if got != 1 {
			t.Fatalf("key %s applied %d times, want exactly once", key, got)
		}
	}
	if cs := chaos.Stats(); cs.Duplicates != n {
		t.Fatalf("injected duplicates = %d, want %d", cs.Duplicates, n)
	}
	if st := host.DeliveryStats(); st.DedupHits != n {
		t.Fatalf("host dedup hits = %d, want %d", st.DedupHits, n)
	}
}

// The dedup window is per sender incarnation: a higher epoch resets
// the window; a stale epoch applies uncached rather than colliding
// with the new incarnation's sequence numbers.
func TestDedupEpochBoundary(t *testing.T) {
	tab := newDedupTable(64)
	idA := BatchID{Sender: "node-a", Epoch: 10, Seq: 5}

	e, dup := tab.begin(idA)
	if dup || e == nil {
		t.Fatalf("first delivery: entry=%v dup=%v", e, dup)
	}
	e.commit(1, nil, nil)
	if _, dup := tab.begin(idA); !dup {
		t.Fatal("same id not deduplicated")
	}

	// Stale epoch: apply without caching, never a collision.
	if e, dup := tab.begin(BatchID{Sender: "node-a", Epoch: 9, Seq: 5}); dup || e != nil {
		t.Fatalf("stale epoch: entry=%v dup=%v, want uncached apply", e, dup)
	}

	// New incarnation resets the window: seq 5 is fresh again.
	e, dup = tab.begin(BatchID{Sender: "node-a", Epoch: 11, Seq: 5})
	if dup || e == nil {
		t.Fatalf("new epoch: entry=%v dup=%v, want fresh window", e, dup)
	}
	e.commit(1, nil, nil)
	if tab.size() != 1 {
		t.Fatalf("window size = %d, want 1 (old incarnation dropped whole)", tab.size())
	}
}

// Entries beyond the window are evicted so the table stays bounded.
func TestDedupWindowEviction(t *testing.T) {
	tab := newDedupTable(8)
	for seq := uint64(1); seq <= 100; seq++ {
		e, dup := tab.begin(BatchID{Sender: "node-a", Epoch: 1, Seq: seq})
		if dup {
			t.Fatalf("seq %d spuriously deduplicated", seq)
		}
		e.commit(1, nil, nil)
	}
	if n := tab.size(); n > 16 {
		t.Fatalf("window retained %d entries, want bounded near 8", n)
	}
}

// The fault schedule is a pure function of the seed and the workload's
// batch identities: replaying the same single-threaded workload yields
// byte-identical chaos stats — the property that lets a failing soak
// seed be pinned as a regression test.
func TestChaosDeterminism(t *testing.T) {
	run := func() (ChaosStats, DeliveryStats) {
		var chaos *Chaos
		wrap := func(inner Transport) Transport {
			chaos = NewChaos(inner, ChaosConfig{
				Seed:                 42,
				FlakyDial:            0.2,
				DropRequest:          0.2,
				DropResponse:         0.3,
				Duplicate:            0.2,
				Delay:                0.3,
				MaxDelay:             100 * time.Microsecond,
				MaxFaultsPerDelivery: 2,
			})
			return chaos
		}
		sender, _, _, _ := inprocPair(t, wrap, RetryConfig{Attempts: 6, Backoff: time.Microsecond})
		for i := 0; i < 200; i++ {
			sender.Send("machine-01", "w", event.Event{Key: fmt.Sprintf("k%d", i)})
		}
		return chaos.Stats(), sender.DeliveryStats()
	}
	cs1, ds1 := run()
	cs2, ds2 := run()
	if cs1 != cs2 {
		t.Fatalf("chaos stats diverged across identical runs:\n  %+v\n  %+v", cs1, cs2)
	}
	if ds1.Retries != ds2.Retries || ds1.TransientErrors != ds2.TransientErrors || ds1.RetryExhausted != ds2.RetryExhausted {
		t.Fatalf("delivery stats diverged across identical runs:\n  %+v\n  %+v", ds1, ds2)
	}
	if cs1.Injected() == 0 {
		t.Fatal("schedule injected nothing; the determinism assertion is vacuous")
	}
}

// A scripted partition window drops every attempt inside it — a
// determinate loss the sender can account exactly — and traffic flows
// again past the window's edge.
func TestChaosPartitionWindow(t *testing.T) {
	var chaos *Chaos
	wrap := func(inner Transport) Transport {
		chaos = NewChaos(inner, ChaosConfig{
			Seed:       3,
			Partitions: []Partition{{Machine: "machine-01", From: 0, To: 6}},
		})
		return chaos
	}
	sender, _, counts, mu := inprocPair(t, wrap, RetryConfig{Attempts: 2, Backoff: time.Microsecond})

	// 3 sends * 2 attempts = 6 partitioned attempts: all fail.
	for i := 0; i < 3; i++ {
		if err := sender.Send("machine-01", "w", event.Event{Key: fmt.Sprintf("lost%d", i)}); !IsTransient(err) {
			t.Fatalf("partitioned send %d: err = %v, want transient", i, err)
		}
	}
	// Past the window the same path delivers.
	if err := sender.Send("machine-01", "w", event.Event{Key: "healed"}); err != nil {
		t.Fatalf("send past partition window: %v", err)
	}
	if cs := chaos.Stats(); cs.PartitionDrops != 6 {
		t.Fatalf("partition drops = %d, want 6", cs.PartitionDrops)
	}
	mu.Lock()
	defer mu.Unlock()
	if (*counts)["healed"] != 1 || len(*counts) != 1 {
		t.Fatalf("applied keys = %v, want exactly {healed:1}", *counts)
	}
}

// Concurrent duplicate deliveries of one batch race begin/commit; the
// loser must wait for the winner's outcome, not re-apply.
func TestDedupConcurrentDuplicates(t *testing.T) {
	names := []string{"machine-00", "machine-01"}
	reg := NewInProc()
	host := New(Config{Names: names, Local: []string{"machine-01"}, Transport: reg})
	reg.Register(host)
	defer host.Close()

	var applies sync.Map
	host.SetBatchHandler("machine-01", func(ds []Delivery) []error {
		for i := range ds {
			v, _ := applies.LoadOrStore(ds[i].Ev.Key, new(sync.Mutex))
			_ = v
			time.Sleep(100 * time.Microsecond) // widen the race window
		}
		return nil
	})

	const workers = 8
	id := BatchID{Sender: "node-a", Epoch: 1, Seq: 1}
	ds := []Delivery{{Worker: "w", Ev: event.Event{Key: "k"}}}
	var wg sync.WaitGroup
	accepted := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a, _, err := host.DeliverLocal("machine-01", id, ds)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
			accepted[w] = a
		}(w)
	}
	wg.Wait()
	for w, a := range accepted {
		if a != 1 {
			t.Fatalf("worker %d saw accepted=%d, want the cached outcome 1", w, a)
		}
	}
	if st := host.DeliveryStats(); st.DedupHits != workers-1 {
		t.Fatalf("dedup hits = %d, want %d", st.DedupHits, workers-1)
	}
	if recvs := host.Recvs(); recvs != 1 {
		t.Fatalf("recvs = %d, want 1: duplicates must not count as received batches", recvs)
	}
}

// TestChaosRollIndependentAcrossAttempts pins the finalizer in roll():
// the attempt number is the last bytes of the hashed identity, and raw
// FNV-64a barely diffuses them, so without extra mixing every retry of
// a batch re-rolls (within 2^-16) the same number — one dropped
// request becomes a guaranteed exhausted budget. With independent
// rolls, a batch whose first attempt is dropped at p=0.5 should
// usually see a differing verdict within its next few attempts.
func TestChaosRollIndependentAcrossAttempts(t *testing.T) {
	ch := NewChaos(&scriptedTransport{}, ChaosConfig{Seed: 99})
	const p = 0.5
	correlated := 0
	for seq := uint64(1); seq <= 200; seq++ {
		id := BatchID{Sender: "machine-00", Seq: seq}
		first := ch.roll("drop-req", "machine-01", id, 0) < p
		same := true
		for attempt := 1; attempt < 6; attempt++ {
			if (ch.roll("drop-req", "machine-01", id, attempt) < p) != first {
				same = false
				break
			}
		}
		if same {
			correlated++
		}
	}
	// Independent p=0.5 rolls agree on all 6 attempts with
	// probability 2^-5 per side: expect ~12/200, tolerate wide
	// variance. The broken pre-finalizer hash scored 200/200.
	if correlated > 40 {
		t.Fatalf("%d/200 batches rolled the same verdict on all 6 attempts: rolls are correlated across retries", correlated)
	}
}
