package cluster

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"muppet/internal/event"
)

// ErrMachineDown is returned by Send when the destination machine is
// crashed — or, for a machine hosted by another node, when this node
// cannot reach it (failed dial, broken connection) or last knew it to
// be down.
var ErrMachineDown = errors.New("cluster: machine down")

// ErrNoHandler is returned by Send when the destination machine has no
// registered delivery handler.
var ErrNoHandler = errors.New("cluster: no delivery handler registered")

// Handler delivers an event addressed to a named worker (or queue) on
// a machine. It returns an error if the local queue rejects the event.
type Handler func(worker string, e event.Event) error

// Delivery is one event addressed to a named worker, carried in a
// batch send. Tag is an opaque caller-side index (the engines use it
// to map per-delivery failures back to the source event of a batch);
// it never crosses a transport.
type Delivery struct {
	Worker string
	Ev     event.Event
	Tag    int
}

// BatchHandler delivers a whole batch addressed to one machine. The
// returned slice is parallel to the input: nil means accepted, a
// non-nil error (typically queue.ErrOverflow or queue.ErrClosed) means
// that delivery was rejected. A nil slice means everything was
// accepted.
type BatchHandler func(ds []Delivery) []error

// QueryHandler answers one query request addressed to a machine this
// node hosts. Request and response are opaque to the cluster layer —
// the query subsystem owns the encoding — and the handler is
// node-level (one per Cluster, receiving the target machine name)
// because query execution reads engine state, not per-machine queues.
type QueryHandler func(machine string, req []byte) ([]byte, error)

// BatchReject is one rejected delivery of a batch send.
type BatchReject struct {
	// Index is the position in the batch passed to SendBatch.
	Index int
	// Err is the local rejection cause.
	Err error
}

// Machine is one cluster member as seen by this node. For a machine
// the node hosts (Local() true) alive is authoritative: Crash and
// Revive flip it. For a machine hosted by another node alive is this
// node's presumption — it starts true, is cleared when a send comes
// back ErrMachineDown, and is restored by Revive during rejoin. Either
// way, sends to a machine presumed down fail fast with ErrMachineDown,
// which is exactly the detect-on-send signal recovery runs on.
type Machine struct {
	name         string
	local        bool
	alive        atomic.Bool
	handler      atomic.Value // Handler
	batchHandler atomic.Value // BatchHandler
}

// Name returns the machine name.
func (m *Machine) Name() string { return m.name }

// Alive reports whether the machine is up — for remote machines,
// whether this node presumes it up.
func (m *Machine) Alive() bool { return m.alive.Load() }

// Local reports whether this node hosts the machine's runtime state.
func (m *Machine) Local() bool { return m.local }

// RetryConfig bounds the sender-side retry loop for transient
// transport faults. Retries apply only to errors classified
// *TransientError (see faults.go); fatal errors — ErrMachineDown, an
// unknown machine, a missing handler — fail immediately.
type RetryConfig struct {
	// Attempts is the total number of delivery attempts per batch,
	// including the first (default 3). 1 disables retry.
	Attempts int
	// Backoff is the pause before the first retry, doubled per further
	// retry with ±50% jitter (default 5ms).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 100ms).
	MaxBackoff time.Duration
}

func (rc RetryConfig) withDefaults() RetryConfig {
	if rc.Attempts <= 0 {
		rc.Attempts = 3
	}
	if rc.Backoff <= 0 {
		rc.Backoff = 5 * time.Millisecond
	}
	if rc.MaxBackoff <= 0 {
		rc.MaxBackoff = 100 * time.Millisecond
	}
	return rc
}

// Config tunes a cluster node.
type Config struct {
	// Machines is the number of hosts, named machine-00, machine-01, ...
	// Ignored when Names is set.
	Machines int
	// Names, when non-empty, is the full member list of the cluster.
	// Every node of a multi-node cluster must be configured with the
	// same member list, because hash rings are derived from it.
	Names []string
	// Local names the machines this node hosts. Nil means all of them
	// (the single-process default).
	Local []string
	// Node names this node as a delivery sender, stamped into every
	// remote batch's BatchID so receivers can deduplicate retries.
	// Defaults to the first local machine name.
	Node string
	// Transport carries sends to machines other nodes host. Required
	// when Local is a proper subset of the members.
	Transport Transport
	// Retry bounds the transient-fault retry loop on remote sends.
	Retry RetryConfig
	// DedupWindow is the per-sender receiver-side dedup window size in
	// batches (default 4096). Negative disables deduplication.
	DedupWindow int
	// SendLatency is the simulated per-hop network latency, accumulated
	// in the cluster's accounting meter (not slept).
	SendLatency time.Duration
}

// Cluster is one node's view of the cluster: the full member list, the
// machines this node hosts, the master, and the transport to everyone
// else.
type Cluster struct {
	cfg          Config
	machines     map[string]*Machine
	master       *Master
	tr           Transport
	inflight     atomic.Value // func(delta int): remote-origin in-flight hook
	queryHandler atomic.Value // QueryHandler
	closed       atomic.Bool

	node  string // sender identity stamped into BatchIDs
	epoch uint64 // sender incarnation (larger after restart)
	seq   atomic.Uint64
	retry RetryConfig
	dedup *dedupTable // nil when deduplication is disabled

	netTime atomic.Int64 // accumulated simulated network nanoseconds
	sends   atomic.Uint64
	recvs   atomic.Uint64 // remote-origin batches delivered locally

	retries       atomic.Uint64 // re-attempts after a transient fault
	transientErrs atomic.Uint64 // transient faults observed on sends
	exhausted     atomic.Uint64 // batches that ran out of attempts
	dedupHits     atomic.Uint64 // duplicate batches absorbed locally
	indetLost     atomic.Uint64 // events lost with outcome unknown
}

// DeliveryStats counts the work the resilient delivery layer did: how
// often remote sends hit transient faults, how many re-attempts the
// retry loop spent, how many batches exhausted their budget anyway,
// and how many duplicate deliveries the receiver-side window absorbed.
type DeliveryStats struct {
	// Sequenced is the number of sequenced remote batches issued.
	Sequenced uint64
	// TransientErrors counts transient transport faults observed.
	TransientErrors uint64
	// Retries counts re-attempts made after a transient fault.
	Retries uint64
	// RetryExhausted counts batches whose attempts all failed.
	RetryExhausted uint64
	// IndeterminateLost counts events in exhausted batches where at
	// least one attempt failed indeterminately (the request went out
	// whole but no outcome came back): the sender reports these lost,
	// but the receiver may have applied them. This is the exact upper
	// bound on how far the loss log can overcount — every other loss
	// is determinate.
	IndeterminateLost uint64
	// DedupHits counts duplicate remote-origin batches absorbed by the
	// receiver-side window (retries and chaos duplicates).
	DedupHits uint64
	// DedupEntries is the current resident size of the dedup window.
	DedupEntries int
}

// DeliveryStats reports the node's resilient-delivery counters.
func (c *Cluster) DeliveryStats() DeliveryStats {
	s := DeliveryStats{
		Sequenced:         c.seq.Load(),
		TransientErrors:   c.transientErrs.Load(),
		Retries:           c.retries.Load(),
		RetryExhausted:    c.exhausted.Load(),
		DedupHits:         c.dedupHits.Load(),
		IndeterminateLost: c.indetLost.Load(),
	}
	if c.dedup != nil {
		s.DedupEntries = c.dedup.size()
	}
	return s
}

// New builds a cluster node. With no Names/Local/Transport it is the
// original single-process simulation: cfg.Machines live machines, all
// local. New panics if the config names remote machines but provides
// no transport to reach them, or if Local names an unknown machine —
// both are wiring bugs, not runtime conditions.
func New(cfg Config) *Cluster {
	names := cfg.Names
	if len(names) == 0 {
		if cfg.Machines <= 0 {
			cfg.Machines = 1
		}
		for i := 0; i < cfg.Machines; i++ {
			names = append(names, fmt.Sprintf("machine-%02d", i))
		}
	}
	localSet := make(map[string]bool, len(names))
	if cfg.Local == nil {
		for _, n := range names {
			localSet[n] = true
		}
	} else {
		for _, n := range cfg.Local {
			localSet[n] = true
		}
	}
	c := &Cluster{
		cfg:      cfg,
		tr:       cfg.Transport,
		machines: make(map[string]*Machine, len(names)),
		retry:    cfg.Retry.withDefaults(),
		epoch:    uint64(time.Now().UnixNano()),
	}
	window := cfg.DedupWindow
	if window == 0 {
		window = 4096
	}
	if window > 0 {
		c.dedup = newDedupTable(window)
	}
	remote := 0
	for _, name := range names {
		m := &Machine{name: name, local: localSet[name]}
		if !m.local {
			remote++
		}
		m.alive.Store(true)
		c.machines[name] = m
		delete(localSet, name)
	}
	for name := range localSet {
		panic(fmt.Sprintf("cluster: local machine %s is not a member", name))
	}
	if remote > 0 && c.tr == nil {
		panic("cluster: remote machines require a transport")
	}
	c.node = cfg.Node
	if c.node == "" {
		if locals := c.LocalNames(); len(locals) > 0 {
			c.node = locals[0]
		} else {
			c.node = "node"
		}
	}
	c.master = newMaster(c)
	return c
}

// Node returns this node's sender identity.
func (c *Cluster) Node() string { return c.node }

// Master returns the node's master replica.
func (c *Cluster) Master() *Master { return c.master }

// Machine returns the named machine, or nil.
func (c *Cluster) Machine(name string) *Machine { return c.machines[name] }

// MachineNames returns all member names in order, including crashed
// ones and ones hosted by other nodes.
func (c *Cluster) MachineNames() []string {
	var names []string
	for n := range c.machines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LocalNames returns the names of the machines this node hosts, in
// order.
func (c *Cluster) LocalNames() []string {
	var names []string
	for n, m := range c.machines {
		if m.local {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// IsLocal reports whether this node hosts the named machine. The
// engines use it to decide which side of a send owns the in-flight
// accounting.
func (c *Cluster) IsLocal(name string) bool {
	m := c.machines[name]
	return m != nil && m.local
}

// TransportName identifies the transport in use ("in-process" for the
// default single-node simulation).
func (c *Cluster) TransportName() string {
	if c.tr == nil {
		return "in-process"
	}
	return c.tr.Name()
}

// Transport returns the node's wired transport (nil for the
// single-process default); callers can type-assert to *TCP for
// transport-specific surfaces like Addr and Stats.
func (c *Cluster) Transport() Transport { return c.tr }

// OnRemoteInflight registers the hook called when remote-origin
// deliveries enter (positive delta) or bounce off (negative delta)
// this node. The engines point it at their in-flight tracker so a
// batch handed off by a sender node is accounted here until its
// events are processed.
func (c *Cluster) OnRemoteInflight(fn func(delta int)) {
	c.inflight.Store(fn)
}

// SetHandler registers the delivery handler for a machine; the engines
// install one that places events on local worker queues.
func (c *Cluster) SetHandler(machine string, h Handler) {
	if m := c.machines[machine]; m != nil {
		m.handler.Store(h)
	}
}

// SetBatchHandler registers the batch delivery handler for a machine;
// the engines install one that groups a batch onto local worker queues
// with a single lock acquisition per queue.
func (c *Cluster) SetBatchHandler(machine string, h BatchHandler) {
	if m := c.machines[machine]; m != nil {
		m.batchHandler.Store(h)
	}
}

// SetQueryHandler registers the node's query handler; the engines
// install one that runs the node-local pipeline for the addressed
// machine.
func (c *Cluster) SetQueryHandler(h QueryHandler) {
	c.queryHandler.Store(h)
}

// Query runs one query exchange against the node hosting the machine:
// directly for a machine this node hosts, over the transport's query
// extension otherwise. Queries are idempotent reads, so transient
// transport faults — including indeterminate ones — are retried on the
// same bounded budget as batch sends; a down destination fails fast
// with ErrMachineDown (detect-on-send applies to reads too).
func (c *Cluster) Query(machine string, req []byte) ([]byte, error) {
	m := c.machines[machine]
	if m == nil {
		return nil, fmt.Errorf("cluster: unknown machine %s", machine)
	}
	if m.local {
		return c.DeliverQuery(machine, req)
	}
	if !m.alive.Load() {
		return nil, ErrMachineDown
	}
	qt, ok := c.tr.(QueryTransport)
	if !ok {
		return nil, fmt.Errorf("cluster: transport %s does not carry queries", c.TransportName())
	}
	backoff := c.retry.Backoff
	var lastErr error
	for attempt := 0; attempt < c.retry.Attempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			time.Sleep(jitterBackoff(backoff))
			backoff *= 2
			if backoff > c.retry.MaxBackoff {
				backoff = c.retry.MaxBackoff
			}
			if !m.alive.Load() {
				return nil, ErrMachineDown
			}
		}
		resp, err := qt.Query(machine, req)
		if err == nil {
			return resp, nil
		}
		if !IsTransient(err) {
			if errors.Is(err, ErrMachineDown) {
				m.alive.Store(false)
			}
			return nil, err
		}
		c.transientErrs.Add(1)
		lastErr = err
	}
	c.exhausted.Add(1)
	return nil, lastErr
}

// DeliverQuery is the receiving half of a query exchange: it runs the
// node's query handler for a machine this node hosts. A crashed
// machine answers ErrMachineDown — a query must not read state the
// cluster considers dead.
func (c *Cluster) DeliverQuery(machine string, req []byte) ([]byte, error) {
	m := c.machines[machine]
	if m == nil || !m.local {
		return nil, fmt.Errorf("cluster: machine %s is not hosted here", machine)
	}
	if !m.alive.Load() {
		return nil, ErrMachineDown
	}
	h, _ := c.queryHandler.Load().(QueryHandler)
	if h == nil {
		return nil, ErrNoHandler
	}
	return h(machine, req)
}

// SendBatch delivers a batch of events to the destination machine in
// one network exchange: a single liveness check and a single hop's
// latency charge, however many deliveries the batch carries — the
// amortization a per-event Send cannot offer. It fails the whole batch
// with ErrMachineDown if the destination is crashed (or, for a
// remotely hosted machine, unreachable or presumed down); otherwise it
// returns the accepted count plus the individually rejected deliveries
// (full or closed local queues). Machines without a registered
// BatchHandler fall back to per-delivery Handler calls.
func (c *Cluster) SendBatch(machine string, ds []Delivery) (accepted int, rejects []BatchReject, err error) {
	m := c.machines[machine]
	if m == nil {
		return 0, nil, fmt.Errorf("cluster: unknown machine %s", machine)
	}
	if len(ds) == 0 {
		return 0, nil, nil
	}
	c.sends.Add(1)
	c.netTime.Add(int64(c.cfg.SendLatency))
	if m.local {
		return c.deliverBatch(m, ds)
	}
	return c.sendRemote(m, ds)
}

// sendRemote drives the retry loop for one remote batch. The batch is
// stamped with a fresh BatchID once; every attempt reuses it, so the
// receiving node's dedup window collapses retries whose earlier
// attempt did land (a lost response, a chaos duplicate) into a single
// application. Only transient faults are retried; a fatal answer —
// the peer reporting its machine crashed — records the down
// presumption and fails immediately, preserving detect-on-send.
func (c *Cluster) sendRemote(m *Machine, ds []Delivery) (int, []BatchReject, error) {
	if !m.alive.Load() {
		return 0, nil, ErrMachineDown
	}
	id := BatchID{Sender: c.node, Epoch: c.epoch, Seq: c.seq.Add(1)}
	backoff := c.retry.Backoff
	var lastErr error
	indeterminate := false
	for attempt := 0; attempt < c.retry.Attempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			time.Sleep(jitterBackoff(backoff))
			backoff *= 2
			if backoff > c.retry.MaxBackoff {
				backoff = c.retry.MaxBackoff
			}
			if !m.alive.Load() {
				// Someone (the recovery detector, a concurrent fatal
				// send) declared the machine down mid-retry.
				return 0, nil, ErrMachineDown
			}
		}
		accepted, rejects, err := c.tr.SendBatch(m.name, id, ds)
		if err == nil {
			return accepted, rejects, nil
		}
		if !IsTransient(err) {
			if errors.Is(err, ErrMachineDown) {
				m.alive.Store(false)
			}
			return 0, nil, err
		}
		c.transientErrs.Add(1)
		if IsIndeterminate(err) {
			indeterminate = true
		}
		lastErr = err
	}
	c.exhausted.Add(1)
	if indeterminate {
		// Some attempt got a whole request out without an answer: the
		// caller will count these events lost, but the receiver may
		// have applied them. Track the overcount bound exactly.
		c.indetLost.Add(uint64(len(ds)))
	}
	return 0, nil, lastErr
}

// jitterBackoff spreads a retry pause over [d/2, 3d/2) so concurrent
// senders retrying against the same struggling peer do not stampede in
// lockstep.
func jitterBackoff(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// Send delivers an event to the named worker on the destination
// machine, charging one network hop. It fails immediately with
// ErrMachineDown if the destination is crashed — or, after the
// transient-fault retry budget is spent, unreachable — the
// failure-detection signal of Section 4.3.
func (c *Cluster) Send(machine, worker string, e event.Event) error {
	m := c.machines[machine]
	if m == nil {
		return fmt.Errorf("cluster: unknown machine %s", machine)
	}
	c.sends.Add(1)
	c.netTime.Add(int64(c.cfg.SendLatency))
	if m.local {
		return c.deliverOne(m, worker, e)
	}
	_, rejects, err := c.sendRemote(m, []Delivery{{Worker: worker, Ev: e}})
	if err != nil {
		return err
	}
	if len(rejects) > 0 {
		return rejects[0].Err
	}
	return nil
}

// deliverOne runs the local delivery path for one event: liveness
// check, then the machine's handler.
func (c *Cluster) deliverOne(m *Machine, worker string, e event.Event) error {
	if !m.alive.Load() {
		return ErrMachineDown
	}
	h, _ := m.handler.Load().(Handler)
	if h == nil {
		return ErrNoHandler
	}
	return h(worker, e)
}

// deliverBatch runs the local delivery path for a batch: one liveness
// check, then the batch handler (or per-delivery fallback).
func (c *Cluster) deliverBatch(m *Machine, ds []Delivery) (accepted int, rejects []BatchReject, err error) {
	if !m.alive.Load() {
		return 0, nil, ErrMachineDown
	}
	if bh, _ := m.batchHandler.Load().(BatchHandler); bh != nil {
		errs := bh(ds)
		if errs == nil {
			return len(ds), nil, nil
		}
		for i, e := range errs {
			if e == nil {
				accepted++
			} else {
				rejects = append(rejects, BatchReject{Index: i, Err: e})
			}
		}
		return accepted, rejects, nil
	}
	h, _ := m.handler.Load().(Handler)
	if h == nil {
		return 0, nil, ErrNoHandler
	}
	for i, d := range ds {
		if e := h(d.Worker, d.Ev); e != nil {
			rejects = append(rejects, BatchReject{Index: i, Err: e})
		} else {
			accepted++
		}
	}
	return accepted, rejects, nil
}

// DeliverLocal is the receiving half of a transport: it delivers a
// remote-origin batch to a machine this node hosts, with the same
// return contract as SendBatch. Sequenced batches (id.Seq != 0) are
// deduplicated first — a batch already applied under the same BatchID
// returns its original outcome without touching a queue, which is what
// turns the wire's at-least-once retries into exactly-once at the
// queue boundary. The dedup check runs before the remote-inflight hook
// so absorbed duplicates are never charged. For the batch that does
// land, the hook is charged for every delivery and bounced deliveries
// (rejects, or the whole batch on error) are credited back, so the
// hosting engine's in-flight tracker covers exactly the events that
// landed.
func (c *Cluster) DeliverLocal(machine string, id BatchID, ds []Delivery) (accepted int, rejects []BatchReject, err error) {
	m := c.machines[machine]
	if m == nil || !m.local {
		return 0, nil, fmt.Errorf("cluster: machine %s is not hosted here", machine)
	}
	if len(ds) == 0 {
		return 0, nil, nil
	}
	var entry *dedupEntry
	if c.dedup != nil && id.sequenced() {
		e, dup := c.dedup.begin(id)
		if dup {
			<-e.done
			c.dedupHits.Add(1)
			return e.accepted, e.rejects, e.err
		}
		entry = e
	}
	c.recvs.Add(1)
	hook, _ := c.inflight.Load().(func(int))
	if hook != nil {
		hook(len(ds))
	}
	accepted, rejects, err = c.deliverBatch(m, ds)
	if hook != nil && len(ds)-accepted > 0 {
		hook(-(len(ds) - accepted))
	}
	if entry != nil {
		entry.commit(accepted, rejects, err)
	}
	return accepted, rejects, err
}

// Crash takes a machine down. For a local machine its queues' contents
// are the engine's problem — exactly as in the paper, they are lost.
// For a remotely hosted machine this only records the presumption
// locally; the hosting node crashes it for real.
func (c *Cluster) Crash(machine string) {
	if m := c.machines[machine]; m != nil {
		m.alive.Store(false)
	}
}

// Revive brings a crashed machine back up — for a remote machine, it
// clears this node's down-presumption and resets the transport's
// redial backoff so the next send probes it immediately.
func (c *Cluster) Revive(machine string) {
	m := c.machines[machine]
	if m == nil {
		return
	}
	m.alive.Store(true)
	if !m.local {
		if pr, ok := c.tr.(peerResetter); ok {
			pr.ResetPeer(machine)
		}
	}
}

// Close shuts the transport down (idempotently). The engines call it
// from Stop; on the default transportless single-node cluster it is a
// no-op.
func (c *Cluster) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	if c.tr != nil {
		return c.tr.Close()
	}
	return nil
}

// NetworkStats reports the number of sends (local and remote) and the
// total simulated network time charged.
func (c *Cluster) NetworkStats() (sends uint64, simTime time.Duration) {
	return c.sends.Load(), time.Duration(c.netTime.Load())
}

// Recvs reports the number of remote-origin deliveries (batches and
// single sends) this node has accepted from its transport.
func (c *Cluster) Recvs() uint64 { return c.recvs.Load() }

// Master implements the paper's failure protocol: workers that fail to
// contact a machine report it; the master broadcasts the failure to
// all workers, which update their lists of failed machines. The master
// never sits on the event data path.
//
// In a multi-node cluster each node runs its own master replica, and
// broadcasts are node-local: a node learns of a peer's failure through
// its own failed sends (detect-on-send reaches every sender quickly,
// because the dead machine stops answering everyone), not through
// cross-node master gossip. See the package documentation for the
// rejoin ordering this implies.
type Master struct {
	c *Cluster

	mu              sync.Mutex
	failed          map[string]time.Time // machine -> detection time
	listeners       []func(machine string)
	rejoinListeners []func(machine string)
	reports         uint64
	rejoinReports   uint64
}

func newMaster(c *Cluster) *Master {
	return &Master{c: c, failed: make(map[string]time.Time)}
}

// Subscribe registers a callback invoked (synchronously) whenever a
// machine failure is broadcast. Engines subscribe their hash rings.
func (m *Master) Subscribe(fn func(machine string)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.listeners = append(m.listeners, fn)
}

// ReportFailure is called by a worker that could not contact the given
// machine. The first report triggers the broadcast; duplicates are
// absorbed. It returns true if this report was the first.
func (m *Master) ReportFailure(machine string) bool {
	m.mu.Lock()
	m.reports++
	if _, known := m.failed[machine]; known {
		m.mu.Unlock()
		return false
	}
	m.failed[machine] = time.Now()
	listeners := make([]func(string), len(m.listeners))
	copy(listeners, m.listeners)
	m.mu.Unlock()
	for _, fn := range listeners {
		fn(machine)
	}
	return true
}

// FailedMachines returns the machines known failed, sorted.
func (m *Master) FailedMachines() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for n := range m.failed {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DetectionTime returns when the machine's failure was first reported;
// ok is false if it never was.
func (m *Master) DetectionTime(machine string) (time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.failed[machine]
	return t, ok
}

// Reports returns the total failure reports received, including
// duplicates.
func (m *Master) Reports() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reports
}

// Forget clears a machine's failed state (used after revival).
func (m *Master) Forget(machine string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.failed, machine)
}

// SubscribeRejoin registers a callback invoked (synchronously)
// whenever a machine rejoin is broadcast. The recovery subsystem
// subscribes its ring-restore and cache-warming steps.
func (m *Master) SubscribeRejoin(fn func(machine string)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejoinListeners = append(m.rejoinListeners, fn)
}

// ReportRejoin clears the machine's failed state and broadcasts the
// rejoin to every subscriber — the "new ring" announcement that brings
// a revived machine back onto the data path.
func (m *Master) ReportRejoin(machine string) {
	m.mu.Lock()
	delete(m.failed, machine)
	m.rejoinReports++
	listeners := make([]func(string), len(m.rejoinListeners))
	copy(listeners, m.rejoinListeners)
	m.mu.Unlock()
	for _, fn := range listeners {
		fn(machine)
	}
}

// RejoinReports returns the total rejoin broadcasts made.
func (m *Master) RejoinReports() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejoinReports
}

// PingAll is the MapReduce-style alternative the paper argues against:
// the master probes every machine and reports the dead ones. It
// returns the newly detected failures. Experiment E12 compares the
// latency of this periodic detection against Muppet's detect-on-send.
func (m *Master) PingAll() []string {
	var newly []string
	for _, name := range m.c.MachineNames() {
		if !m.c.Machine(name).Alive() {
			if m.ReportFailure(name) {
				newly = append(newly, name)
			}
		}
	}
	return newly
}
