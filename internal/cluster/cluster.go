// Package cluster simulates the "cluster of commodity machines"
// Muppet runs on (Section 4.1 of the paper): named machines joined by
// an in-process network, plus the master whose only data-path role is
// failure handling (Section 4.3). Machines can be crashed and revived
// to reproduce the failure experiments.
//
// Substitution note: real machines and gigabit Ethernet are replaced by
// goroutines and function calls. The behavioral properties the paper's
// arguments need are preserved: sends to a dead machine fail
// immediately at the sender (which is how Muppet detects failures),
// in-flight queue contents die with the machine, and per-hop latency
// can be charged to an accounting meter.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"muppet/internal/event"
)

// ErrMachineDown is returned by Send when the destination machine is
// crashed.
var ErrMachineDown = errors.New("cluster: machine down")

// ErrNoHandler is returned by Send when the destination machine has no
// registered delivery handler.
var ErrNoHandler = errors.New("cluster: no delivery handler registered")

// Handler delivers an event addressed to a named worker (or queue) on
// a machine. It returns an error if the local queue rejects the event.
type Handler func(worker string, e event.Event) error

// Delivery is one event addressed to a named worker, carried in a
// batch send. Tag is an opaque caller-side index (the engines use it
// to map per-delivery failures back to the source event of a batch).
type Delivery struct {
	Worker string
	Ev     event.Event
	Tag    int
}

// BatchHandler delivers a whole batch addressed to one machine. The
// returned slice is parallel to the input: nil means accepted, a
// non-nil error (typically queue.ErrOverflow or queue.ErrClosed) means
// that delivery was rejected. A nil slice means everything was
// accepted.
type BatchHandler func(ds []Delivery) []error

// BatchReject is one rejected delivery of a batch send.
type BatchReject struct {
	// Index is the position in the batch passed to SendBatch.
	Index int
	// Err is the local rejection cause.
	Err error
}

// Machine is one simulated host.
type Machine struct {
	name         string
	alive        atomic.Bool
	handler      atomic.Value // Handler
	batchHandler atomic.Value // BatchHandler
}

// Name returns the machine name.
func (m *Machine) Name() string { return m.name }

// Alive reports whether the machine is up.
func (m *Machine) Alive() bool { return m.alive.Load() }

// Config tunes the simulated cluster.
type Config struct {
	// Machines is the number of hosts, named machine-00, machine-01, ...
	Machines int
	// SendLatency is the simulated per-hop network latency, accumulated
	// in the cluster's accounting meter (not slept).
	SendLatency time.Duration
}

// Cluster is the set of simulated machines plus the master.
type Cluster struct {
	cfg      Config
	machines map[string]*Machine
	master   *Master

	netTime atomic.Int64 // accumulated simulated network nanoseconds
	sends   atomic.Uint64
}

// New builds a cluster with cfg.Machines live machines.
func New(cfg Config) *Cluster {
	if cfg.Machines <= 0 {
		cfg.Machines = 1
	}
	c := &Cluster{cfg: cfg, machines: make(map[string]*Machine)}
	for i := 0; i < cfg.Machines; i++ {
		m := &Machine{name: fmt.Sprintf("machine-%02d", i)}
		m.alive.Store(true)
		c.machines[m.name] = m
	}
	c.master = newMaster(c)
	return c
}

// Master returns the cluster's master.
func (c *Cluster) Master() *Master { return c.master }

// Machine returns the named machine, or nil.
func (c *Cluster) Machine(name string) *Machine { return c.machines[name] }

// MachineNames returns all machine names in order, including crashed
// ones.
func (c *Cluster) MachineNames() []string {
	var names []string
	for n := range c.machines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetHandler registers the delivery handler for a machine; the engines
// install one that places events on local worker queues.
func (c *Cluster) SetHandler(machine string, h Handler) {
	if m := c.machines[machine]; m != nil {
		m.handler.Store(h)
	}
}

// SetBatchHandler registers the batch delivery handler for a machine;
// the engines install one that groups a batch onto local worker queues
// with a single lock acquisition per queue.
func (c *Cluster) SetBatchHandler(machine string, h BatchHandler) {
	if m := c.machines[machine]; m != nil {
		m.batchHandler.Store(h)
	}
}

// SendBatch delivers a batch of events to the destination machine in
// one network exchange: a single liveness check and a single hop's
// latency charge, however many deliveries the batch carries — the
// amortization a per-event Send cannot offer. It fails the whole batch
// with ErrMachineDown if the destination is crashed; otherwise it
// returns the accepted count plus the individually rejected deliveries
// (full or closed local queues). Machines without a registered
// BatchHandler fall back to per-delivery Handler calls.
func (c *Cluster) SendBatch(machine string, ds []Delivery) (accepted int, rejects []BatchReject, err error) {
	m := c.machines[machine]
	if m == nil {
		return 0, nil, fmt.Errorf("cluster: unknown machine %s", machine)
	}
	if len(ds) == 0 {
		return 0, nil, nil
	}
	c.sends.Add(1)
	c.netTime.Add(int64(c.cfg.SendLatency))
	if !m.alive.Load() {
		return 0, nil, ErrMachineDown
	}
	if bh, _ := m.batchHandler.Load().(BatchHandler); bh != nil {
		errs := bh(ds)
		if errs == nil {
			return len(ds), nil, nil
		}
		for i, e := range errs {
			if e == nil {
				accepted++
			} else {
				rejects = append(rejects, BatchReject{Index: i, Err: e})
			}
		}
		return accepted, rejects, nil
	}
	h, _ := m.handler.Load().(Handler)
	if h == nil {
		return 0, nil, ErrNoHandler
	}
	for i, d := range ds {
		if e := h(d.Worker, d.Ev); e != nil {
			rejects = append(rejects, BatchReject{Index: i, Err: e})
		} else {
			accepted++
		}
	}
	return accepted, rejects, nil
}

// Send delivers an event to the named worker on the destination
// machine, charging one network hop. It fails immediately with
// ErrMachineDown if the destination is crashed — the failure-detection
// signal of Section 4.3.
func (c *Cluster) Send(machine, worker string, e event.Event) error {
	m := c.machines[machine]
	if m == nil {
		return fmt.Errorf("cluster: unknown machine %s", machine)
	}
	c.sends.Add(1)
	c.netTime.Add(int64(c.cfg.SendLatency))
	if !m.alive.Load() {
		return ErrMachineDown
	}
	h, _ := m.handler.Load().(Handler)
	if h == nil {
		return ErrNoHandler
	}
	return h(worker, e)
}

// Crash takes a machine down. Its queues' contents are the engine's
// problem — exactly as in the paper, they are lost.
func (c *Cluster) Crash(machine string) {
	if m := c.machines[machine]; m != nil {
		m.alive.Store(false)
	}
}

// Revive brings a crashed machine back up.
func (c *Cluster) Revive(machine string) {
	if m := c.machines[machine]; m != nil {
		m.alive.Store(true)
	}
}

// NetworkStats reports the number of sends and the total simulated
// network time charged.
func (c *Cluster) NetworkStats() (sends uint64, simTime time.Duration) {
	return c.sends.Load(), time.Duration(c.netTime.Load())
}

// Master implements the paper's failure protocol: workers that fail to
// contact a machine report it; the master broadcasts the failure to
// all workers, which update their lists of failed machines. The master
// never sits on the event data path.
type Master struct {
	c *Cluster

	mu              sync.Mutex
	failed          map[string]time.Time // machine -> detection time
	listeners       []func(machine string)
	rejoinListeners []func(machine string)
	reports         uint64
	rejoinReports   uint64
}

func newMaster(c *Cluster) *Master {
	return &Master{c: c, failed: make(map[string]time.Time)}
}

// Subscribe registers a callback invoked (synchronously) whenever a
// machine failure is broadcast. Engines subscribe their hash rings.
func (m *Master) Subscribe(fn func(machine string)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.listeners = append(m.listeners, fn)
}

// ReportFailure is called by a worker that could not contact the given
// machine. The first report triggers the broadcast; duplicates are
// absorbed. It returns true if this report was the first.
func (m *Master) ReportFailure(machine string) bool {
	m.mu.Lock()
	m.reports++
	if _, known := m.failed[machine]; known {
		m.mu.Unlock()
		return false
	}
	m.failed[machine] = time.Now()
	listeners := make([]func(string), len(m.listeners))
	copy(listeners, m.listeners)
	m.mu.Unlock()
	for _, fn := range listeners {
		fn(machine)
	}
	return true
}

// FailedMachines returns the machines known failed, sorted.
func (m *Master) FailedMachines() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for n := range m.failed {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DetectionTime returns when the machine's failure was first reported;
// ok is false if it never was.
func (m *Master) DetectionTime(machine string) (time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.failed[machine]
	return t, ok
}

// Reports returns the total failure reports received, including
// duplicates.
func (m *Master) Reports() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reports
}

// Forget clears a machine's failed state (used after revival).
func (m *Master) Forget(machine string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.failed, machine)
}

// SubscribeRejoin registers a callback invoked (synchronously)
// whenever a machine rejoin is broadcast. The recovery subsystem
// subscribes its ring-restore and cache-warming steps.
func (m *Master) SubscribeRejoin(fn func(machine string)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejoinListeners = append(m.rejoinListeners, fn)
}

// ReportRejoin clears the machine's failed state and broadcasts the
// rejoin to every subscriber — the "new ring" announcement that brings
// a revived machine back onto the data path.
func (m *Master) ReportRejoin(machine string) {
	m.mu.Lock()
	delete(m.failed, machine)
	m.rejoinReports++
	listeners := make([]func(string), len(m.rejoinListeners))
	copy(listeners, m.rejoinListeners)
	m.mu.Unlock()
	for _, fn := range listeners {
		fn(machine)
	}
}

// RejoinReports returns the total rejoin broadcasts made.
func (m *Master) RejoinReports() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejoinReports
}

// PingAll is the MapReduce-style alternative the paper argues against:
// the master probes every machine and reports the dead ones. It
// returns the newly detected failures. Experiment E12 compares the
// latency of this periodic detection against Muppet's detect-on-send.
func (m *Master) PingAll() []string {
	var newly []string
	for _, name := range m.c.MachineNames() {
		if !m.c.Machine(name).Alive() {
			if m.ReportFailure(name) {
				newly = append(newly, name)
			}
		}
	}
	return newly
}
