package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// echoQueryHandler answers with machine ++ ':' ++ request, so tests can
// check both the addressing and the payload round-trip.
func echoQueryHandler(machine string, req []byte) ([]byte, error) {
	return append([]byte(machine+":"), req...), nil
}

func TestQueryLocalDirect(t *testing.T) {
	c := New(Config{Machines: 2})
	c.SetQueryHandler(echoQueryHandler)
	resp, err := c.Query("machine-01", []byte("spec"))
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte("machine-01:spec"); !bytes.Equal(resp, want) {
		t.Fatalf("resp = %q, want %q", resp, want)
	}
}

func TestQueryErrors(t *testing.T) {
	c := New(Config{Machines: 2})
	if _, err := c.Query("machine-99", nil); err == nil {
		t.Fatal("query to unknown machine succeeded")
	}
	if _, err := c.Query("machine-00", nil); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
	c.SetQueryHandler(echoQueryHandler)
	c.Crash("machine-00")
	if _, err := c.Query("machine-00", nil); !errors.Is(err, ErrMachineDown) {
		t.Fatalf("err = %v, want ErrMachineDown", err)
	}
	c.Revive("machine-00")
	if _, err := c.Query("machine-00", nil); err != nil {
		t.Fatalf("query after revive: %v", err)
	}
}

func TestQueryOverInProc(t *testing.T) {
	names := []string{"machine-00", "machine-01"}
	reg := NewInProc()
	a := New(Config{Names: names, Local: []string{"machine-00"}, Transport: reg})
	b := New(Config{Names: names, Local: []string{"machine-01"}, Transport: reg})
	reg.Register(a)
	reg.Register(b)
	defer a.Close()
	defer b.Close()
	b.SetQueryHandler(echoQueryHandler)

	resp, err := a.Query("machine-01", []byte("remote"))
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte("machine-01:remote"); !bytes.Equal(resp, want) {
		t.Fatalf("resp = %q, want %q", resp, want)
	}
}

func TestQueryOverTCP(t *testing.T) {
	sender, host, _, _ := startTCPPair(t, TCPConfig{})
	host.SetQueryHandler(echoQueryHandler)

	// Payloads with nil, empty, and binary content must round-trip
	// byte-for-byte through the query frames.
	for _, payload := range [][]byte{nil, {}, []byte("spec"), {0, 'S', 0xff, 'T'}} {
		resp, err := sender.Query("machine-01", payload)
		if err != nil {
			t.Fatalf("query %q: %v", payload, err)
		}
		want := append([]byte("machine-01:"), payload...)
		if !bytes.Equal(resp, want) {
			t.Fatalf("resp = %q, want %q", resp, want)
		}
	}
}

func TestQueryOverTCPHandlerError(t *testing.T) {
	sender, host, _, _ := startTCPPair(t, TCPConfig{})
	host.SetQueryHandler(func(machine string, req []byte) ([]byte, error) {
		return nil, fmt.Errorf("no such updater %q", req)
	})
	_, err := sender.Query("machine-01", []byte("U9"))
	if err == nil {
		t.Fatal("remote handler error did not surface")
	}
	// The remote error text must cross the wire, and the failure must
	// not be a transient fault: the peer answered authoritatively.
	if want := `no such updater "U9"`; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("err = %v, want it to carry %q", err, want)
	}
	if IsTransient(err) {
		t.Fatalf("authoritative query failure classified transient: %v", err)
	}
}

func TestQueryOverTCPNoHandler(t *testing.T) {
	sender, _, _, _ := startTCPPair(t, TCPConfig{})
	if _, err := sender.Query("machine-01", nil); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
}

func TestQueryThroughChaos(t *testing.T) {
	names := []string{"machine-00", "machine-01"}
	reg := NewInProc()
	b := New(Config{Names: names, Local: []string{"machine-01"}, Transport: reg})
	// A hostile schedule on the batch path: queries must pass through
	// the chaos layer untouched.
	tr := NewChaos(reg, ChaosConfig{Seed: 7, DropRequest: 1})
	a := New(Config{Names: names, Local: []string{"machine-00"}, Transport: tr})
	reg.Register(a)
	reg.Register(b)
	defer a.Close()
	defer b.Close()
	b.SetQueryHandler(echoQueryHandler)

	resp, err := a.Query("machine-01", []byte("q"))
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte("machine-01:q"); !bytes.Equal(resp, want) {
		t.Fatalf("resp = %q, want %q", resp, want)
	}
}
