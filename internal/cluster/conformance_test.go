package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"muppet/internal/event"
	"muppet/internal/queue"
)

// Transport conformance suite: every test below runs against each
// topology a two-machine cluster can be wired in — the legacy
// single-process Cluster, two Clusters linked by the InProc transport,
// and two Clusters linked by TCP over loopback — asserting the
// behavioral contract of doc.go holds identically on all of them.
// machine-00 is always hosted by Sender; machine-01 by Host.

var conformanceNames = []string{"machine-00", "machine-01"}

type conformanceFixture struct {
	Sender *Cluster
	Host   *Cluster
	// Kill makes machine-01 dead/unreachable the way this topology
	// fails in production; Restart brings it back, re-installing the
	// host-side handlers via install. Close tears the fixture down.
	Kill    func()
	Restart func(t *testing.T, install func(host *Cluster))
	Close   func()
}

// forEachTransport runs fn against every topology. install registers
// machine-01's handlers on the hosting cluster; it is re-invoked by
// Restart for topologies that rebuild the host node.
func forEachTransport(t *testing.T, install func(host *Cluster), fn func(t *testing.T, fx *conformanceFixture)) {
	t.Run("single", func(t *testing.T) {
		c := New(Config{Names: conformanceNames})
		install(c)
		fx := &conformanceFixture{
			Sender: c,
			Host:   c,
			Kill:   func() { c.Crash("machine-01") },
			Restart: func(t *testing.T, install func(*Cluster)) {
				c.Revive("machine-01")
			},
			Close: func() { c.Close() },
		}
		defer fx.Close()
		fn(t, fx)
	})

	t.Run("inproc", func(t *testing.T) {
		reg := NewInProc()
		a := New(Config{Names: conformanceNames, Local: []string{"machine-00"}, Transport: reg})
		b := New(Config{Names: conformanceNames, Local: []string{"machine-01"}, Transport: reg})
		reg.Register(a)
		reg.Register(b)
		install(b)
		fx := &conformanceFixture{
			Sender: a,
			Host:   b,
			Kill:   func() { b.Crash("machine-01") },
			Restart: func(t *testing.T, install func(*Cluster)) {
				// Host first, then the sender's presumption (doc.go).
				b.Revive("machine-01")
				a.Revive("machine-01")
			},
			Close: func() { a.Close(); b.Close() },
		}
		defer fx.Close()
		fn(t, fx)
	})

	t.Run("tcp", func(t *testing.T) {
		startHost := func(t *testing.T, listen string, install func(*Cluster)) (*Cluster, string) {
			tr, err := NewTCP(TCPConfig{Listen: listen})
			if err != nil {
				t.Fatalf("host listen: %v", err)
			}
			b := New(Config{Names: conformanceNames, Local: []string{"machine-01"}, Transport: tr})
			tr.Serve(b)
			install(b)
			return b, tr.Addr()
		}
		host, addr := startHost(t, "127.0.0.1:0", install)
		trA, err := NewTCP(TCPConfig{
			Peers:        map[string]string{"machine-01": addr},
			RetryBackoff: time.Millisecond,
			MaxBackoff:   5 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("sender transport: %v", err)
		}
		a := New(Config{Names: conformanceNames, Local: []string{"machine-00"}, Transport: trA})
		trA.Serve(a)
		fx := &conformanceFixture{Sender: a}
		fx.Host = host
		fx.Kill = func() { fx.Host.Close() }
		fx.Restart = func(t *testing.T, install func(*Cluster)) {
			// A production restart comes back on the same address; the
			// sender's redial finds it once Revive resets the backoff.
			deadline := time.Now().Add(2 * time.Second)
			for {
				h, err := func() (h *Cluster, err error) {
					defer func() {
						if r := recover(); r != nil {
							err = fmt.Errorf("%v", r)
						}
					}()
					tr, err := NewTCP(TCPConfig{Listen: addr})
					if err != nil {
						return nil, err
					}
					h = New(Config{Names: conformanceNames, Local: []string{"machine-01"}, Transport: tr})
					tr.Serve(h)
					return h, nil
				}()
				if err == nil {
					fx.Host = h
					install(h)
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("restart host: %v", err)
				}
				time.Sleep(5 * time.Millisecond) // port may linger briefly
			}
			a.Revive("machine-01")
		}
		fx.Close = func() { a.Close(); fx.Host.Close() }
		defer fx.Close()
		fn(t, fx)
	})
}

// recorder is a race-safe host-side handler pair recording deliveries.
type recorder struct {
	mu   sync.Mutex
	got  []Delivery
	deny func(d *Delivery) error // optional per-delivery rejection
}

func (r *recorder) install(host *Cluster) {
	host.SetHandler("machine-01", func(w string, e event.Event) error {
		return r.accept(Delivery{Worker: w, Ev: e})
	})
	host.SetBatchHandler("machine-01", func(ds []Delivery) []error {
		var errs []error
		for i := range ds {
			if err := r.accept(ds[i]); err != nil {
				if errs == nil {
					errs = make([]error, len(ds))
				}
				errs[i] = err
			}
		}
		return errs
	})
}

func (r *recorder) accept(d Delivery) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.deny != nil {
		if err := r.deny(&d); err != nil {
			return err
		}
	}
	r.got = append(r.got, d)
	return nil
}

func (r *recorder) deliveries() []Delivery {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Delivery(nil), r.got...)
}

func TestConformanceDelivery(t *testing.T) {
	rec := &recorder{}
	forEachTransport(t, rec.install, func(t *testing.T, fx *conformanceFixture) {
		rec.mu.Lock()
		rec.got, rec.deny = nil, nil
		rec.mu.Unlock()

		evs := []event.Event{
			{Stream: "S1", TS: 42, Seq: 7, Key: "k1", Value: []byte("payload"), Ingress: 99},
			{Stream: "S1", TS: -1, Key: "k2", Value: nil},     // nil value
			{Stream: "S2", TS: 0, Key: "k3", Value: []byte{}}, // empty, non-nil
		}
		for i, ev := range evs {
			if err := fx.Sender.Send("machine-01", fmt.Sprintf("U1#%d", i), ev); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		got := rec.deliveries()
		if len(got) != len(evs) {
			t.Fatalf("delivered %d events, want %d", len(got), len(evs))
		}
		for i, d := range got {
			if d.Worker != fmt.Sprintf("U1#%d", i) {
				t.Errorf("delivery %d worker = %q", i, d.Worker)
			}
			want := evs[i]
			if d.Ev.Stream != want.Stream || d.Ev.TS != want.TS || d.Ev.Seq != want.Seq ||
				d.Ev.Key != want.Key || d.Ev.Ingress != want.Ingress {
				t.Errorf("delivery %d = %+v, want %+v", i, d.Ev, want)
			}
			if string(d.Ev.Value) != string(want.Value) {
				t.Errorf("delivery %d value = %q, want %q", i, d.Ev.Value, want.Value)
			}
			if (d.Ev.Value == nil) != (want.Value == nil) {
				t.Errorf("delivery %d lost the nil/empty distinction: got nil=%v want nil=%v",
					i, d.Ev.Value == nil, want.Value == nil)
			}
		}
	})
}

func TestConformanceBatchAccounting(t *testing.T) {
	rec := &recorder{}
	forEachTransport(t, rec.install, func(t *testing.T, fx *conformanceFixture) {
		rec.mu.Lock()
		rec.got = nil
		rec.deny = func(d *Delivery) error {
			switch d.Ev.Key {
			case "overflow":
				return queue.ErrOverflow
			case "closed":
				return queue.ErrClosed
			}
			return nil
		}
		rec.mu.Unlock()

		ds := []Delivery{
			{Worker: "w", Ev: event.Event{Key: "ok-0"}, Tag: 0},
			{Worker: "w", Ev: event.Event{Key: "overflow"}, Tag: 1},
			{Worker: "w", Ev: event.Event{Key: "ok-1"}, Tag: 2},
			{Worker: "w", Ev: event.Event{Key: "closed"}, Tag: 3},
			{Worker: "w", Ev: event.Event{Key: "ok-2"}, Tag: 4},
		}
		accepted, rejects, err := fx.Sender.SendBatch("machine-01", ds)
		if err != nil {
			t.Fatalf("SendBatch: %v", err)
		}
		// Atomic accounting: every delivery is either accepted or
		// individually rejected — no silent losses.
		if accepted+len(rejects) != len(ds) {
			t.Fatalf("accepted %d + rejects %d != batch %d", accepted, len(rejects), len(ds))
		}
		if accepted != 3 || len(rejects) != 2 {
			t.Fatalf("accepted=%d rejects=%v", accepted, rejects)
		}
		wantRej := map[int]error{1: queue.ErrOverflow, 3: queue.ErrClosed}
		for _, rj := range rejects {
			want, ok := wantRej[rj.Index]
			if !ok {
				t.Errorf("unexpected reject index %d", rj.Index)
				continue
			}
			if !errors.Is(rj.Err, want) {
				t.Errorf("reject %d: err = %v, want %v (sentinel must survive the transport)", rj.Index, rj.Err, want)
			}
		}
		if got := rec.deliveries(); len(got) != accepted {
			t.Fatalf("host recorded %d deliveries, want %d", len(got), accepted)
		}
	})
}

func TestConformanceMachineDown(t *testing.T) {
	rec := &recorder{}
	forEachTransport(t, rec.install, func(t *testing.T, fx *conformanceFixture) {
		fx.Kill()
		// A dead destination surfaces one of two ways: the hosting node
		// answers authoritatively (ErrMachineDown, detect-on-send), or
		// the node itself is unreachable and every attempt fails with a
		// transient fault — never success, never a wedge. The first send
		// may race connection teardown, so allow a bounded window.
		var err error
		sawDown := false
		for i := 0; i < 100; i++ {
			err = fx.Sender.Send("machine-01", "w", event.Event{Key: "k"})
			if errors.Is(err, ErrMachineDown) {
				sawDown = true
				break
			}
			if err != nil && !IsTransient(err) {
				t.Fatalf("send to dead machine: err = %v, want ErrMachineDown or a transient fault", err)
			}
			time.Sleep(time.Millisecond)
		}
		if err == nil {
			t.Fatal("send to dead machine succeeded")
		}
		if !sawDown {
			// Unreachable node: escalation is the recovery detector's
			// job — K consecutive transient failures confirm suspicion.
			// Model the confirmation the detector would make.
			fx.Sender.Crash("machine-01")
		}
		if _, _, err := fx.Sender.SendBatch("machine-01", []Delivery{{Worker: "w"}}); !errors.Is(err, ErrMachineDown) {
			t.Fatalf("batch to dead machine: err = %v, want ErrMachineDown", err)
		}
		// The presumption is flipped — by detect-on-send or by the
		// modeled suspicion confirmation — and sends now fail fast.
		if fx.Sender.Machine("machine-01").Alive() {
			t.Fatal("sender still presumes the dead machine alive")
		}
	})
}

func TestConformanceReconnect(t *testing.T) {
	rec := &recorder{}
	forEachTransport(t, rec.install, func(t *testing.T, fx *conformanceFixture) {
		if err := fx.Sender.Send("machine-01", "w", event.Event{Key: "before"}); err != nil {
			t.Fatalf("send before kill: %v", err)
		}
		fx.Kill()
		for i := 0; i < 100; i++ {
			// Any failure signal — authoritative or transient — shows the
			// kill has landed.
			if fx.Sender.Send("machine-01", "w", event.Event{}) != nil {
				break
			}
			time.Sleep(time.Millisecond)
		}
		fx.Restart(t, rec.install)
		// After restart + Revive the sender must reach the machine again
		// without rebuilding the sender node.
		var err error
		for i := 0; i < 200; i++ {
			if err = fx.Sender.Send("machine-01", "w", event.Event{Key: "after"}); err == nil {
				break
			}
			fx.Sender.Revive("machine-01") // sends inside the redial window re-flip the presumption
			time.Sleep(5 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("send after restart: %v", err)
		}
		got := rec.deliveries()
		if len(got) == 0 || got[len(got)-1].Ev.Key != "after" {
			t.Fatalf("post-restart delivery missing; recorded %d", len(got))
		}
	})
}

// A hung peer — a listener that accepts connections and reads requests
// but never answers — must surface as a transient IO-timeout fault
// within the configured deadline, never wedge the sender. (Machine-down
// is then the suspicion window's call, not the transport's.)
func TestConformanceHungPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn) // swallow requests, answer nothing
		}
	}()

	tr, err := NewTCP(TCPConfig{
		Peers:     map[string]string{"machine-01": ln.Addr().String()},
		IOTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{
		Names:     conformanceNames,
		Local:     []string{"machine-00"},
		Transport: tr,
		Retry:     RetryConfig{Attempts: 2, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	tr.Serve(c)
	defer c.Close()

	start := time.Now()
	err = c.Send("machine-01", "w", event.Event{Key: "k"})
	elapsed := time.Since(start)
	if !IsTransient(err) {
		t.Fatalf("hung peer: err = %v, want a transient IO-timeout fault", err)
	}
	// Two attempts, each bounded by the 50ms IO deadline, plus backoff:
	// well under a second. Anything longer means the deadline is not
	// being armed and the sender would wedge on a real hung peer.
	if elapsed > 5*time.Second {
		t.Fatalf("hung peer held the sender for %v", elapsed)
	}
	if !c.Machine("machine-01").Alive() {
		t.Fatal("transport decided machine-down on its own; that escalation belongs to the suspicion window")
	}
}

func TestConformanceConcurrentSenders(t *testing.T) {
	var received atomic.Int64
	install := func(host *Cluster) {
		host.SetBatchHandler("machine-01", func(ds []Delivery) []error {
			received.Add(int64(len(ds)))
			return nil
		})
	}
	forEachTransport(t, install, func(t *testing.T, fx *conformanceFixture) {
		received.Store(0)
		const goroutines, batches, perBatch = 8, 25, 16
		var wg sync.WaitGroup
		var sent atomic.Int64
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ds := make([]Delivery, perBatch)
				for b := 0; b < batches; b++ {
					for i := range ds {
						ds[i] = Delivery{Worker: "w", Ev: event.Event{
							Key:   fmt.Sprintf("g%d-b%d-%d", g, b, i),
							Value: []byte("v"),
						}}
					}
					accepted, rejects, err := fx.Sender.SendBatch("machine-01", ds)
					if err != nil {
						t.Errorf("g%d b%d: %v", g, b, err)
						return
					}
					if accepted+len(rejects) != perBatch {
						t.Errorf("g%d b%d: accepted %d + rejects %d != %d", g, b, accepted, len(rejects), perBatch)
					}
					sent.Add(int64(accepted))
				}
			}(g)
		}
		wg.Wait()
		if received.Load() != sent.Load() {
			t.Fatalf("host received %d, senders accepted %d", received.Load(), sent.Load())
		}
	})
}
