package cluster

import (
	"errors"
	"net"
	"testing"
	"time"

	"muppet/internal/event"
)

// startTCPPair wires a sender node (machine-00) to a host node
// (machine-01) over loopback and returns both plus their transports.
func startTCPPair(t *testing.T, senderCfg TCPConfig) (sender, host *Cluster, trA, trB *TCP) {
	t.Helper()
	names := []string{"machine-00", "machine-01"}
	var err error
	trB, err = NewTCP(TCPConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	host = New(Config{Names: names, Local: []string{"machine-01"}, Transport: trB})
	trB.Serve(host)

	senderCfg.Peers = map[string]string{"machine-01": trB.Addr()}
	trA, err = NewTCP(senderCfg)
	if err != nil {
		t.Fatal(err)
	}
	sender = New(Config{Names: names, Local: []string{"machine-00"}, Transport: trA})
	trA.Serve(sender)
	t.Cleanup(func() { sender.Close(); host.Close() })
	return sender, host, trA, trB
}

func TestTCPStatsCount(t *testing.T) {
	sender, host, trA, trB := startTCPPair(t, TCPConfig{})
	host.SetBatchHandler("machine-01", func(ds []Delivery) []error { return nil })

	ds := []Delivery{{Worker: "w", Ev: event.Event{Key: "k", Value: []byte("v")}}}
	for i := 0; i < 3; i++ {
		if _, _, err := sender.SendBatch("machine-01", ds); err != nil {
			t.Fatal(err)
		}
	}
	a, b := trA.Stats(), trB.Stats()
	if a.Dials != 1 {
		t.Errorf("sender dials = %d, want 1 (pooled connection)", a.Dials)
	}
	if a.FramesOut != 3 || b.FramesIn != 3 {
		t.Errorf("frames out=%d in=%d, want 3/3", a.FramesOut, b.FramesIn)
	}
	if a.BytesOut == 0 || b.BytesIn == 0 {
		t.Errorf("byte counters stayed zero: out=%d in=%d", a.BytesOut, b.BytesIn)
	}
}

func TestTCPBackoffFailsFast(t *testing.T) {
	// A dead address: bind a port, then close it so nothing listens.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	tr, err := NewTCP(TCPConfig{
		Peers:        map[string]string{"machine-01": addr},
		RetryBackoff: time.Hour, // one failed dial arms a very long window
	})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"machine-00", "machine-01"}
	c := New(Config{Names: names, Local: []string{"machine-00"}, Transport: tr})
	tr.Serve(c)
	defer c.Close()

	if err := c.Send("machine-01", "w", event.Event{}); !IsTransient(err) {
		t.Fatalf("dial failure: err = %v, want a transient fault", err)
	}
	// A failed dial is suspicion, not proof of death: the peer stays
	// presumed alive and the verdict belongs to the recovery detector.
	if !c.Machine("machine-01").Alive() {
		t.Fatal("one exhausted retry budget must not flip the liveness presumption")
	}
	// ResetPeer (via Revive) clears the armed backoff so the next
	// attempt dials immediately instead of failing fast for an hour.
	c.Revive("machine-01")
	start := time.Now()
	if err := c.Send("machine-01", "w", event.Event{}); !IsTransient(err) {
		t.Fatalf("second dial: err = %v, want a transient fault", err)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("send blocked instead of failing within the dial timeout")
	}
	if st := tr.Stats(); st.DialErrors < 2 {
		t.Fatalf("dial errors = %d, want >= 2 (Revive must reset the backoff window)", st.DialErrors)
	}
}

func TestTCPOversizedFrameRejected(t *testing.T) {
	names := []string{"machine-00", "machine-01"}
	trB, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0", MaxFrame: 256})
	if err != nil {
		t.Fatal(err)
	}
	host := New(Config{Names: names, Local: []string{"machine-01"}, Transport: trB})
	trB.Serve(host)
	trA, err := NewTCP(TCPConfig{
		Peers:        map[string]string{"machine-01": trB.Addr()},
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sender := New(Config{Names: names, Local: []string{"machine-00"}, Transport: trA})
	trA.Serve(sender)
	t.Cleanup(func() { sender.Close(); host.Close() })
	host.SetBatchHandler("machine-01", func(ds []Delivery) []error { return nil })

	// The frame body goes through the compressing slate codec, so the
	// payload must be incompressible to actually exceed MaxFrame.
	payload := make([]byte, 64<<10)
	x := uint32(2463534242)
	for i := range payload {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		payload[i] = byte(x)
	}
	big := []Delivery{{Worker: "w", Ev: event.Event{Key: "k", Value: payload}}}
	if _, _, err := sender.SendBatch("machine-01", big); err == nil {
		t.Fatal("oversized response accepted")
	}
	// Small batches still go through on a fresh connection.
	small := []Delivery{{Worker: "w", Ev: event.Event{Key: "k"}}}
	for i := 0; i < 100; i++ {
		sender.Revive("machine-01")
		if _, _, err = sender.SendBatch("machine-01", small); err == nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("small batch after oversized failure: %v", err)
	}
}

func TestTCPNoPeerAddress(t *testing.T) {
	tr, err := NewTCP(TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, _, err := tr.SendBatch("machine-09", BatchID{}, []Delivery{{Worker: "w"}}); err == nil || errors.Is(err, ErrMachineDown) || IsTransient(err) {
		t.Fatalf("unmapped peer: err = %v, want a configuration error distinct from network faults", err)
	}
	tr.AddPeer("machine-09", "127.0.0.1:1") // now mapped (to a dead port)
	if _, _, err := tr.SendBatch("machine-09", BatchID{}, []Delivery{{Worker: "w"}}); !IsTransient(err) {
		t.Fatalf("mapped dead peer: err = %v, want a transient dial fault", err)
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	sender, host, trA, _ := startTCPPair(t, TCPConfig{})
	host.SetBatchHandler("machine-01", func(ds []Delivery) []error { return nil })
	if err := sender.Send("machine-01", "w", event.Event{Key: "k"}); err != nil {
		t.Fatal(err)
	}
	if err := trA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := trA.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := trA.SendBatch("machine-01", BatchID{}, []Delivery{{Worker: "w"}}); !errors.Is(err, ErrMachineDown) {
		t.Fatalf("send after Close: err = %v, want ErrMachineDown", err)
	}
}

// The peer answering "machine down" must NOT tear down the connection:
// the node is healthy, the machine is not — and after the hosting node
// revives the machine, sends resume on the same pooled connection.
func TestTCPMachineDownKeepsConnection(t *testing.T) {
	sender, host, trA, _ := startTCPPair(t, TCPConfig{})
	host.SetBatchHandler("machine-01", func(ds []Delivery) []error { return nil })

	if err := sender.Send("machine-01", "w", event.Event{}); err != nil {
		t.Fatal(err)
	}
	host.Crash("machine-01")
	if err := sender.Send("machine-01", "w", event.Event{}); !errors.Is(err, ErrMachineDown) {
		t.Fatalf("crashed machine: err = %v, want ErrMachineDown", err)
	}
	host.Revive("machine-01")
	sender.Revive("machine-01")
	if err := sender.Send("machine-01", "w", event.Event{}); err != nil {
		t.Fatalf("send after revive: %v", err)
	}
	if st := trA.Stats(); st.Dials != 1 {
		t.Fatalf("dials = %d, want 1: a machine-down answer must keep the pooled connection", st.Dials)
	}
}
