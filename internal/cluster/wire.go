package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"

	"muppet/internal/event"
	"muppet/internal/queue"
)

// Wire format for the TCP transport. Exchanges are strictly
// request/response over one connection, so no request IDs are needed:
//
//	frame    = u32 big-endian length ++ body
//	body     = slate.Encode(plain)            (PR 4 framed pooled codec)
//	plain    = request | response
//	request  = 'Q' ++ str(sender) ++ uvarint(epoch) ++ uvarint(seq)
//	           ++ str(machine) ++ uvarint(n) ++ n*delivery
//	delivery = str(worker) ++ str(stream) ++ varint(ts) ++ uvarint(seq)
//	           ++ str(key) ++ blob(value) ++ varint(ingress)
//	response = 'R' ++ u8 status ++ uvarint(accepted)
//	           ++ uvarint(nrej) ++ nrej*(uvarint(index) ++ u8 code)
//	str      = uvarint(len) ++ bytes
//	blob     = uvarint(0) for nil, uvarint(len+1) ++ bytes otherwise
//
// Delivery.Tag never crosses the wire: it is a sender-side batch index
// and rejections are reported by batch position. Reject codes map back
// to the exact queue sentinel errors so errors.Is-based dispositions in
// the engines and the ingress driver behave identically on both sides
// of a socket.
const (
	wireReq  = 'Q'
	wireResp = 'R'
)

// Query frames share the connection (and the strict request/response
// discipline) with batch frames; the server dispatches on the kind
// byte:
//
//	query     = 'S' ++ str(machine) ++ blob(payload)
//	queryResp = 'T' ++ u8 status ++ blob(payload)
//
// The payload is opaque to this layer — the query subsystem owns its
// encoding — so the transport stays ignorant of query semantics. On a
// statusQueryFailed response the payload carries the remote error
// text.
const (
	wireQueryReq  = 'S'
	wireQueryResp = 'T'
)

// Response status codes.
const (
	statusOK byte = iota
	statusMachineDown
	statusNoHandler
	statusUnknownMachine
	statusQueryFailed
)

// Per-delivery reject codes.
const (
	rejectOther byte = iota
	rejectOverflow
	rejectClosed
)

// ErrRemoteReject is the sender-side stand-in for a remote rejection
// cause that has no dedicated wire code.
var ErrRemoteReject = errors.New("cluster: delivery rejected by remote machine")

var errWireTruncated = errors.New("cluster: truncated wire message")

func rejectCode(err error) byte {
	switch {
	case errors.Is(err, queue.ErrOverflow):
		return rejectOverflow
	case errors.Is(err, queue.ErrClosed):
		return rejectClosed
	default:
		return rejectOther
	}
}

func rejectErr(code byte) error {
	switch code {
	case rejectOverflow:
		return queue.ErrOverflow
	case rejectClosed:
		return queue.ErrClosed
	default:
		return ErrRemoteReject
	}
}

// statusErr maps a response status to the sender-visible error.
func statusErr(status byte, machine string) error {
	switch status {
	case statusOK:
		return nil
	case statusMachineDown:
		return ErrMachineDown
	case statusNoHandler:
		return ErrNoHandler
	case statusUnknownMachine:
		return fmt.Errorf("cluster: unknown machine %s", machine)
	default:
		return fmt.Errorf("cluster: bad response status %d", status)
	}
}

// statusOf maps a local delivery error to its wire status.
func statusOf(err error) byte {
	switch {
	case err == nil:
		return statusOK
	case errors.Is(err, ErrMachineDown):
		return statusMachineDown
	case errors.Is(err, ErrNoHandler):
		return statusNoHandler
	default:
		return statusUnknownMachine
	}
}

// queryStatusOf maps a local query error to its wire status; handler
// errors become statusQueryFailed with the text carried alongside.
func queryStatusOf(err error) byte {
	switch {
	case err == nil:
		return statusOK
	case errors.Is(err, ErrMachineDown):
		return statusMachineDown
	case errors.Is(err, ErrNoHandler):
		return statusNoHandler
	default:
		return statusQueryFailed
	}
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendBlob preserves the nil/empty distinction: 0 encodes nil,
// n+1 encodes n bytes.
func appendBlob(dst, b []byte) []byte {
	if b == nil {
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(b))+1)
	return append(dst, b...)
}

// wireReader decodes the primitives above with explicit truncation
// checks; err latches on the first failure.
type wireReader struct {
	p   []byte
	err error
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.p)
	if n <= 0 {
		r.err = errWireTruncated
		return 0
	}
	r.p = r.p[n:]
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.p)
	if n <= 0 {
		r.err = errWireTruncated
		return 0
	}
	r.p = r.p[n:]
	return v
}

func (r *wireReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.p) == 0 {
		r.err = errWireTruncated
		return 0
	}
	b := r.p[0]
	r.p = r.p[1:]
	return b
}

func (r *wireReader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if uint64(len(r.p)) < n {
		r.err = errWireTruncated
		return nil
	}
	b := r.p[:n]
	r.p = r.p[n:]
	return b
}

func (r *wireReader) str() string { return string(r.take(r.uvarint())) }

func (r *wireReader) blob() []byte {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	b := r.take(n - 1)
	if r.err != nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// encodeRequest appends the plain (pre-codec) request for a batch
// addressed to machine. The BatchID rides in front of the address so
// the receiving node can deduplicate retried and duplicated frames.
func encodeRequest(dst []byte, id BatchID, machine string, ds []Delivery) []byte {
	dst = append(dst, wireReq)
	dst = appendStr(dst, id.Sender)
	dst = binary.AppendUvarint(dst, id.Epoch)
	dst = binary.AppendUvarint(dst, id.Seq)
	dst = appendStr(dst, machine)
	dst = binary.AppendUvarint(dst, uint64(len(ds)))
	for i := range ds {
		d := &ds[i]
		dst = appendStr(dst, d.Worker)
		dst = appendStr(dst, d.Ev.Stream)
		dst = binary.AppendVarint(dst, int64(d.Ev.TS))
		dst = binary.AppendUvarint(dst, d.Ev.Seq)
		dst = appendStr(dst, d.Ev.Key)
		dst = appendBlob(dst, d.Ev.Value)
		dst = binary.AppendVarint(dst, d.Ev.Ingress)
	}
	return dst
}

// decodeRequest parses a plain request. The deliveries' Tag fields are
// their batch positions, so server-side rejects report the right index.
func decodeRequest(p []byte) (id BatchID, machine string, ds []Delivery, err error) {
	r := wireReader{p: p}
	if k := r.byte(); r.err == nil && k != wireReq {
		return BatchID{}, "", nil, fmt.Errorf("cluster: unexpected wire kind %q", k)
	}
	id.Sender = r.str()
	id.Epoch = r.uvarint()
	id.Seq = r.uvarint()
	machine = r.str()
	n := r.uvarint()
	if r.err != nil {
		return BatchID{}, "", nil, r.err
	}
	if n > uint64(len(r.p)) { // each delivery takes >= 1 byte
		return BatchID{}, "", nil, errWireTruncated
	}
	ds = make([]Delivery, 0, n)
	for i := uint64(0); i < n; i++ {
		var d Delivery
		d.Worker = r.str()
		d.Ev.Stream = r.str()
		d.Ev.TS = event.Timestamp(r.varint())
		d.Ev.Seq = r.uvarint()
		d.Ev.Key = r.str()
		d.Ev.Value = r.blob()
		d.Ev.Ingress = r.varint()
		d.Tag = int(i)
		if r.err != nil {
			return BatchID{}, "", nil, r.err
		}
		ds = append(ds, d)
	}
	return id, machine, ds, nil
}

// encodeResponse appends the plain response for one exchange.
func encodeResponse(dst []byte, status byte, accepted int, rejects []BatchReject) []byte {
	dst = append(dst, wireResp, status)
	dst = binary.AppendUvarint(dst, uint64(accepted))
	dst = binary.AppendUvarint(dst, uint64(len(rejects)))
	for _, rj := range rejects {
		dst = binary.AppendUvarint(dst, uint64(rj.Index))
		dst = append(dst, rejectCode(rj.Err))
	}
	return dst
}

// encodeQueryRequest appends the plain query request addressed to
// machine; the payload is the query subsystem's encoded spec.
func encodeQueryRequest(dst []byte, machine string, payload []byte) []byte {
	dst = append(dst, wireQueryReq)
	dst = appendStr(dst, machine)
	return appendBlob(dst, payload)
}

// decodeQueryRequest parses a plain query request.
func decodeQueryRequest(p []byte) (machine string, payload []byte, err error) {
	r := wireReader{p: p}
	if k := r.byte(); r.err == nil && k != wireQueryReq {
		return "", nil, fmt.Errorf("cluster: unexpected wire kind %q", k)
	}
	machine = r.str()
	payload = r.blob()
	if r.err != nil {
		return "", nil, r.err
	}
	return machine, payload, nil
}

// encodeQueryResponse appends the plain query response: the partial
// result on statusOK, the error text on statusQueryFailed, nothing
// otherwise.
func encodeQueryResponse(dst []byte, status byte, payload []byte) []byte {
	dst = append(dst, wireQueryResp, status)
	return appendBlob(dst, payload)
}

// decodeQueryResponse parses a plain query response.
func decodeQueryResponse(p []byte) (status byte, payload []byte, err error) {
	r := wireReader{p: p}
	if k := r.byte(); r.err == nil && k != wireQueryResp {
		return 0, nil, fmt.Errorf("cluster: unexpected wire kind %q", k)
	}
	status = r.byte()
	payload = r.blob()
	if r.err != nil {
		return 0, nil, r.err
	}
	return status, payload, nil
}

// queryStatusErr maps a query response status to the sender-visible
// error; a failed query carries the remote error text in the payload.
func queryStatusErr(status byte, machine string, payload []byte) error {
	if status == statusQueryFailed {
		return fmt.Errorf("cluster: query on %s failed: %s", machine, payload)
	}
	return statusErr(status, machine)
}

// decodeResponse parses a plain response, mapping reject codes back to
// the queue sentinel errors.
func decodeResponse(p []byte) (status byte, accepted int, rejects []BatchReject, err error) {
	r := wireReader{p: p}
	if k := r.byte(); r.err == nil && k != wireResp {
		return 0, 0, nil, fmt.Errorf("cluster: unexpected wire kind %q", k)
	}
	status = r.byte()
	accepted = int(r.uvarint())
	n := r.uvarint()
	if r.err != nil {
		return 0, 0, nil, r.err
	}
	if n > uint64(len(r.p)) { // each reject takes >= 2 bytes
		return 0, 0, nil, errWireTruncated
	}
	for i := uint64(0); i < n; i++ {
		idx := r.uvarint()
		code := r.byte()
		if r.err != nil {
			return 0, 0, nil, r.err
		}
		rejects = append(rejects, BatchReject{Index: int(idx), Err: rejectErr(code)})
	}
	return status, accepted, rejects, nil
}
