// Package cluster is the "cluster of commodity machines" Muppet runs
// on (Section 4.1 of the paper): named machines, the master whose only
// data-path role is failure handling (Section 4.3), and a pluggable
// Transport that decides whether "the network" is an in-process
// function call or a real TCP socket.
//
// # Contract
//
// A Cluster value is ONE NODE's view of the whole cluster. Every node
// is configured with the same member list (Config.Names, from which
// hash rings are derived deterministically) and a subset it hosts
// (Config.Local). Sends to a locally hosted machine run the registered
// Handler/BatchHandler directly; sends to any other member go through
// the Transport. The single-process default — no Names, no Transport,
// everything local — is the paper-reproduction simulation the tests
// and experiments run on.
//
// The behavioral properties the paper's arguments need hold on every
// transport:
//
//   - Sends to a dead or unreachable machine fail at the sender with
//     ErrMachineDown — detect-on-send, the failure-detection signal the
//     recovery subsystem is built on. No pings, no heartbeats.
//   - In-flight queue contents die with the machine.
//   - Per-delivery rejections carry the queue sentinel errors
//     (queue.ErrOverflow, queue.ErrClosed) across the wire, so
//     overflow disposition is transport-independent.
//
// # Concurrency
//
// All Cluster and Master methods are safe for concurrent use. Master
// failure/rejoin listeners are invoked synchronously, outside the
// master's lock, on the goroutine that reported; listeners must not
// call back into Master methods that take the same lock reentrantly
// (none do today) and must tolerate concurrent invocations for
// different machines.
//
// # Failure model across nodes
//
// A remote machine's Alive flag is this node's PRESUMPTION: it starts
// true, is cleared when a send to it comes back ErrMachineDown, and is
// restored by Revive. While presumed down, sends fail fast — exactly
// like sends to a locally crashed machine — so the detector, failover,
// and rejoin logic of internal/recovery run unchanged on both
// transports.
//
// Each node runs its own Master replica and broadcasts are node-local;
// there is no cross-node master gossip. Every sender discovers a dead
// peer through its own failed sends, so detection reaches exactly the
// nodes that talk to the victim — which is also the set that needs to
// know. The consequence for rejoin ordering: revive the machine on its
// HOSTING node first (workers up, queues open), then rejoin it on the
// sender nodes (flush interim slates, re-enable the ring, resume
// sending). Flipping a sender's ring before the host is serving again
// just re-triggers detection.
//
// # Wire format
//
// The TCP transport frames strict request/response exchanges as
// u32-length-prefixed bodies encoded with the framed pooled codec from
// internal/slate (PR 4), one pooled connection per destination with
// reconnect/backoff, and one coalesced write+flush per SendBatch so
// the PR 3 batch amortization survives the socket hop. See wire.go for
// the exact layout.
package cluster
