package cluster

import (
	"fmt"
	"sync"

	"muppet/internal/event"
)

// Transport carries sends addressed to machines hosted by other
// cluster nodes. The Cluster routes every send to a machine it hosts
// itself (a "local" machine) directly to the registered handlers;
// sends to any other member go through the configured Transport.
//
// Implementations must preserve the cluster's failure semantics: a
// destination that cannot be reached — dead process, refused dial,
// broken connection, or a peer that reports its machine crashed —
// surfaces as ErrMachineDown at the sender, because detect-on-send is
// how Muppet notices failures (Section 4.3). Per-delivery rejections
// (full or closed destination queues) must round-trip so that
// errors.Is(err, queue.ErrOverflow) and errors.Is(err, queue.ErrClosed)
// hold at the sender exactly as they would in process.
//
// Implementations must be safe for concurrent use; the engines send
// from many threads at once.
type Transport interface {
	// Send delivers one event to a worker on a remote machine.
	Send(machine, worker string, ev event.Event) error
	// SendBatch delivers a machine-addressed batch in one exchange,
	// returning the accepted count and per-delivery rejections, with
	// the same contract as Cluster.SendBatch.
	SendBatch(machine string, ds []Delivery) (accepted int, rejects []BatchReject, err error)
	// Name identifies the implementation ("in-process", "tcp") for
	// status reporting.
	Name() string
	// Close releases the transport's resources. Sends after Close fail
	// with ErrMachineDown.
	Close() error
}

// peerResetter is implemented by transports that keep per-peer redial
// state; Cluster.Revive uses it so a revived machine is probed
// immediately instead of waiting out the failure backoff.
type peerResetter interface {
	ResetPeer(machine string)
}

// InProc is the in-process Transport: it links multiple Cluster nodes
// living in one OS process by direct function call. It is the
// reference implementation the TCP transport is held to — same
// ErrMachineDown semantics, same per-delivery rejection fidelity, no
// wire in between — and what the transport conformance suite uses to
// separate topology bugs from wire-format bugs.
type InProc struct {
	mu    sync.RWMutex
	nodes map[string]*Cluster // machine name -> hosting cluster node
}

// NewInProc builds an empty in-process transport; link nodes with
// Register.
func NewInProc() *InProc {
	return &InProc{nodes: make(map[string]*Cluster)}
}

// Register links a cluster node into the transport: every machine the
// node hosts locally becomes reachable by the other registered nodes.
func (t *InProc) Register(c *Cluster) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, name := range c.LocalNames() {
		t.nodes[name] = c
	}
}

func (t *InProc) host(machine string) *Cluster {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes[machine]
}

// Send delivers one event to the node hosting the machine.
func (t *InProc) Send(machine, worker string, ev event.Event) error {
	host := t.host(machine)
	if host == nil {
		return fmt.Errorf("cluster: no node hosts machine %s", machine)
	}
	return host.DeliverLocalOne(machine, worker, ev)
}

// SendBatch delivers a batch to the node hosting the machine.
func (t *InProc) SendBatch(machine string, ds []Delivery) (int, []BatchReject, error) {
	host := t.host(machine)
	if host == nil {
		return 0, nil, fmt.Errorf("cluster: no node hosts machine %s", machine)
	}
	return host.DeliverLocal(machine, ds)
}

// Name identifies the transport.
func (t *InProc) Name() string { return "in-process" }

// Close is a no-op; the linked nodes own their resources.
func (t *InProc) Close() error { return nil }
