package cluster

import (
	"fmt"
	"sync"
)

// BatchID identifies one sequenced batch send for the lifetime of a
// sender incarnation. The sending node stamps every remote batch with
// its own node name, an epoch chosen at construction, and a
// monotonically increasing sequence number; retries of the same batch
// reuse the same BatchID, which is what lets the receiving node
// deduplicate them (see dedupTable). A restarted sender picks a larger
// epoch, so its restarted seq counter cannot collide with its previous
// incarnation's window.
type BatchID struct {
	// Sender is the sending node's name (Config.Node).
	Sender string
	// Epoch distinguishes sender incarnations; larger is newer.
	Epoch uint64
	// Seq orders batches within the incarnation, starting at 1. Zero
	// means unsequenced: the delivery bypasses the dedup window (used by
	// transports or tests that do not retry).
	Seq uint64
}

// sequenced reports whether the ID participates in receiver dedup.
func (id BatchID) sequenced() bool { return id.Sender != "" && id.Seq != 0 }

// Transport carries sends addressed to machines hosted by other
// cluster nodes. The Cluster routes every send to a machine it hosts
// itself (a "local" machine) directly to the registered handlers;
// sends to any other member go through the configured Transport.
//
// Implementations must distinguish the two failure classes the cluster
// runs on: a destination that authoritatively reports its machine
// crashed surfaces as ErrMachineDown (detect-on-send, Section 4.3),
// while a destination that merely cannot be reached right now — a
// refused or timed-out dial, a broken connection, a hung peer —
// surfaces as *TransientError so the cluster's bounded retry (and,
// past that, the recovery detector's suspicion window) can decide
// whether it is a blip or a death. Per-delivery rejections (full or
// closed destination queues) must round-trip so that
// errors.Is(err, queue.ErrOverflow) and errors.Is(err, queue.ErrClosed)
// hold at the sender exactly as they would in process.
//
// The BatchID passed to SendBatch must be carried to the receiving
// node verbatim (the TCP transport encodes it into the request frame)
// and handed to DeliverLocal there, so retried and duplicated frames
// deduplicate. Implementations must be safe for concurrent use; the
// engines send from many threads at once.
type Transport interface {
	// SendBatch delivers a machine-addressed batch in one exchange,
	// returning the accepted count and per-delivery rejections, with
	// the same contract as Cluster.SendBatch.
	SendBatch(machine string, id BatchID, ds []Delivery) (accepted int, rejects []BatchReject, err error)
	// Name identifies the implementation ("in-process", "tcp", "chaos")
	// for status reporting.
	Name() string
	// Close releases the transport's resources. Sends after Close fail
	// with ErrMachineDown.
	Close() error
}

// QueryTransport is the optional read-path extension: transports that
// implement it can carry one-shot query exchanges (opaque request in,
// opaque response out) to the node hosting a machine. Queries are
// idempotent reads, so unlike SendBatch they need no BatchID or dedup
// — a retried query at worst re-reads.
type QueryTransport interface {
	Query(machine string, req []byte) ([]byte, error)
}

// peerResetter is implemented by transports that keep per-peer redial
// state; Cluster.Revive uses it so a revived machine is probed
// immediately instead of waiting out the failure backoff.
type peerResetter interface {
	ResetPeer(machine string)
}

// wrapper is implemented by transports that decorate another transport
// (Chaos); Unwrap helpers reach through it for inner surfaces.
type wrapper interface {
	Inner() Transport
}

// UnwrapTCP digs through transport wrappers for the TCP transport
// underneath, or returns nil. Status surfaces use it so wire counters
// and the listen address stay visible behind a chaos layer.
func UnwrapTCP(tr Transport) *TCP {
	for tr != nil {
		if t, ok := tr.(*TCP); ok {
			return t
		}
		w, ok := tr.(wrapper)
		if !ok {
			return nil
		}
		tr = w.Inner()
	}
	return nil
}

// UnwrapChaos digs through transport wrappers for the chaos layer, or
// returns nil.
func UnwrapChaos(tr Transport) *Chaos {
	for tr != nil {
		if c, ok := tr.(*Chaos); ok {
			return c
		}
		w, ok := tr.(wrapper)
		if !ok {
			return nil
		}
		tr = w.Inner()
	}
	return nil
}

// InProc is the in-process Transport: it links multiple Cluster nodes
// living in one OS process by direct function call. It is the
// reference implementation the TCP transport is held to — same
// failure and dedup semantics, same per-delivery rejection fidelity,
// no wire in between — and what the transport conformance suite uses
// to separate topology bugs from wire-format bugs.
type InProc struct {
	mu    sync.RWMutex
	nodes map[string]*Cluster // machine name -> hosting cluster node
}

// NewInProc builds an empty in-process transport; link nodes with
// Register.
func NewInProc() *InProc {
	return &InProc{nodes: make(map[string]*Cluster)}
}

// Register links a cluster node into the transport: every machine the
// node hosts locally becomes reachable by the other registered nodes.
func (t *InProc) Register(c *Cluster) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, name := range c.LocalNames() {
		t.nodes[name] = c
	}
}

func (t *InProc) host(machine string) *Cluster {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes[machine]
}

// SendBatch delivers a batch to the node hosting the machine.
func (t *InProc) SendBatch(machine string, id BatchID, ds []Delivery) (int, []BatchReject, error) {
	host := t.host(machine)
	if host == nil {
		return 0, nil, fmt.Errorf("cluster: no node hosts machine %s", machine)
	}
	return host.DeliverLocal(machine, id, ds)
}

// Query delivers a query exchange to the node hosting the machine.
func (t *InProc) Query(machine string, req []byte) ([]byte, error) {
	host := t.host(machine)
	if host == nil {
		return nil, fmt.Errorf("cluster: no node hosts machine %s", machine)
	}
	return host.DeliverQuery(machine, req)
}

// Name identifies the transport.
func (t *InProc) Name() string { return "in-process" }

// Close is a no-op; the linked nodes own their resources.
func (t *InProc) Close() error { return nil }
