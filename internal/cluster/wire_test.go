package cluster

import (
	"errors"
	"testing"

	"muppet/internal/event"
	"muppet/internal/queue"
)

func TestWireRequestRoundTrip(t *testing.T) {
	ds := []Delivery{
		{Worker: "U1#0", Ev: event.Event{Stream: "S1", TS: 123456, Seq: 9, Key: "k", Value: []byte("v"), Ingress: -7}, Tag: 42},
		{Worker: "U2#1", Ev: event.Event{Stream: "S2", TS: -5, Key: "nil-value"}},
		{Worker: "", Ev: event.Event{Key: "", Value: []byte{}}}, // empty strings, empty value
	}
	id := BatchID{Sender: "node-a", Epoch: 77, Seq: 12345}
	p := encodeRequest(nil, id, "machine-03", ds)
	gotID, machine, got, err := decodeRequest(p)
	if err != nil {
		t.Fatal(err)
	}
	if gotID != id {
		t.Fatalf("batch id = %+v, want %+v", gotID, id)
	}
	if machine != "machine-03" {
		t.Fatalf("machine = %q", machine)
	}
	if len(got) != len(ds) {
		t.Fatalf("decoded %d deliveries, want %d", len(got), len(ds))
	}
	for i := range ds {
		w, g := ds[i], got[i]
		if g.Worker != w.Worker || g.Ev.Stream != w.Ev.Stream || g.Ev.TS != w.Ev.TS ||
			g.Ev.Seq != w.Ev.Seq || g.Ev.Key != w.Ev.Key || g.Ev.Ingress != w.Ev.Ingress {
			t.Errorf("delivery %d = %+v, want %+v", i, g, w)
		}
		if string(g.Ev.Value) != string(w.Ev.Value) || (g.Ev.Value == nil) != (w.Ev.Value == nil) {
			t.Errorf("delivery %d value = %#v, want %#v", i, g.Ev.Value, w.Ev.Value)
		}
		// Tag is sender-local: the decoder assigns batch positions.
		if g.Tag != i {
			t.Errorf("delivery %d tag = %d, want batch position %d", i, g.Tag, i)
		}
	}
}

func TestWireResponseRoundTrip(t *testing.T) {
	rejects := []BatchReject{
		{Index: 1, Err: queue.ErrOverflow},
		{Index: 4, Err: queue.ErrClosed},
		{Index: 7, Err: errors.New("some local mishap")},
	}
	p := encodeResponse(nil, statusOK, 17, rejects)
	status, accepted, got, err := decodeResponse(p)
	if err != nil {
		t.Fatal(err)
	}
	if status != statusOK || accepted != 17 {
		t.Fatalf("status=%d accepted=%d", status, accepted)
	}
	if len(got) != 3 {
		t.Fatalf("rejects = %v", got)
	}
	if got[0].Index != 1 || !errors.Is(got[0].Err, queue.ErrOverflow) {
		t.Errorf("reject 0 = %v; overflow sentinel must survive", got[0])
	}
	if got[1].Index != 4 || !errors.Is(got[1].Err, queue.ErrClosed) {
		t.Errorf("reject 1 = %v; closed sentinel must survive", got[1])
	}
	if got[2].Index != 7 || !errors.Is(got[2].Err, ErrRemoteReject) {
		t.Errorf("reject 2 = %v; unknown causes map to ErrRemoteReject", got[2])
	}
}

func TestWireStatusRoundTrip(t *testing.T) {
	for _, err := range []error{nil, ErrMachineDown, ErrNoHandler} {
		back := statusErr(statusOf(err), "machine-00")
		if !errors.Is(back, err) && !(err == nil && back == nil) {
			t.Errorf("status round-trip of %v came back %v", err, back)
		}
	}
}

func TestWireTruncationSafety(t *testing.T) {
	ds := []Delivery{{Worker: "w", Ev: event.Event{Stream: "S1", Key: "k", Value: []byte("abc")}}}
	req := encodeRequest(nil, BatchID{Sender: "node-a", Epoch: 1, Seq: 2}, "machine-00", ds)
	for cut := 0; cut < len(req); cut++ {
		if _, _, _, err := decodeRequest(req[:cut]); err == nil {
			t.Fatalf("decodeRequest accepted a %d/%d-byte prefix", cut, len(req))
		}
	}
	resp := encodeResponse(nil, statusOK, 3, []BatchReject{{Index: 2, Err: queue.ErrOverflow}})
	for cut := 0; cut < len(resp); cut++ {
		if _, _, _, err := decodeResponse(resp[:cut]); err == nil {
			t.Fatalf("decodeResponse accepted a %d/%d-byte prefix", cut, len(resp))
		}
	}
}

// A hostile count prefix must not drive allocation: the decoder bounds
// the claimed element count by the remaining bytes.
func TestWireHostileCount(t *testing.T) {
	p := encodeRequest(nil, BatchID{}, "m", nil)
	// Rewrite the delivery count to an absurd value: everything up to
	// the trailing count byte is 'Q' ++ str("") ++ 0 ++ 0 ++ str("m").
	hostile := append([]byte{}, p[:len(p)-1]...)
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff, 0x7f) // uvarint ~34G
	if _, _, _, err := decodeRequest(hostile); err == nil {
		t.Fatal("hostile delivery count accepted")
	}
}

func TestWireWrongKind(t *testing.T) {
	if _, _, _, err := decodeRequest([]byte{'R'}); err == nil {
		t.Fatal("response bytes accepted as request")
	}
	if _, _, _, err := decodeResponse([]byte{'Q'}); err == nil {
		t.Fatal("request bytes accepted as response")
	}
}
