package cluster

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Chaos is the network-layer analog of lsm.MemFS fault injection: a
// deterministic, seeded Transport wrapper that composes over InProc or
// TCP and injects the transient-fault classes the resilience layer
// must survive — dropped requests, dropped responses, duplicated
// deliveries, injected latency, flaky dials, and scripted one-way
// partitions.
//
// Determinism is the point. Every fault decision is a pure function of
// (seed, destination, BatchID, attempt number, fault kind) — a content
// hash, not a draw from a shared RNG stream — so a chaos schedule
// replays identically however the sending goroutines interleave, and a
// failing soak seed can be pinned in a regression test.
//
// Fault classes split by outcome determinism:
//
//   - Determinate faults (flaky dial, dropped request, partition) fail
//     the attempt before the request reaches the inner transport. The
//     batch is provably unapplied, so exhausting the retry budget on
//     them is an exact, accountable loss.
//
//   - Indeterminate faults (dropped response) let the inner transport
//     apply the batch and then lose the answer. These are capped per
//     delivery (MaxFaultsPerDelivery) below the retry budget, so every
//     such batch eventually sees a clean exchange and the receiver's
//     dedup window absorbs the earlier application — which is exactly
//     the at-least-once/exactly-once contract under test.
//
//   - Harmless faults (delay, duplicate) perturb timing and delivery
//     count without affecting the outcome; duplicates must vanish into
//     the dedup window.
type Chaos struct {
	cfg   ChaosConfig
	inner Transport

	mu       sync.Mutex
	attempts map[BatchID]int    // per-delivery attempt counter
	faulted  map[BatchID]int    // per-delivery indeterminate-fault count
	perDest  map[string]*uint64 // per-destination attempt counter (partition clock)

	stats chaosCounters
}

// ChaosConfig scripts the fault schedule. All probabilities are in
// [0, 1] and evaluated independently per attempt.
type ChaosConfig struct {
	// Seed keys every fault decision; the same seed and workload replay
	// the same schedule.
	Seed uint64
	// FlakyDial is the probability an attempt fails before the wire
	// with a transient "chaos-dial" fault (determinate).
	FlakyDial float64
	// DropRequest is the probability the request frame is dropped
	// before reaching the peer (determinate).
	DropRequest float64
	// DropResponse is the probability the peer's answer is dropped
	// after the batch was applied (indeterminate; bounded by
	// MaxFaultsPerDelivery).
	DropResponse float64
	// Duplicate is the probability a successful exchange is re-sent
	// once with the same BatchID (the receiver must absorb it).
	Duplicate float64
	// Delay is the probability an attempt is delayed by a deterministic
	// duration in (0, MaxDelay].
	Delay float64
	// MaxDelay bounds injected latency. Default 2ms.
	MaxDelay time.Duration
	// MaxFaultsPerDelivery caps indeterminate faults injected against
	// one BatchID, so a bounded retry budget always reaches a clean
	// exchange. Must stay below the cluster's retry Attempts. Default 1.
	MaxFaultsPerDelivery int
	// Partitions are scripted one-way outages: attempts addressed to
	// Machine whose per-destination attempt index falls in [From, To)
	// are dropped before the wire (determinate). One-way by
	// construction — the wrapper only sees this node's outbound sends.
	Partitions []Partition
}

// Partition scripts one one-way outage window against one destination.
type Partition struct {
	// Machine is the destination whose inbound requests drop.
	Machine string
	// From and To bound the window in per-destination attempt indexes
	// (0-based, half-open).
	From, To uint64
}

func (cfg *ChaosConfig) fill() {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	if cfg.MaxFaultsPerDelivery <= 0 {
		cfg.MaxFaultsPerDelivery = 1
	}
}

// ChaosStats counts injected faults by class, so a soak can reconcile
// injected vs surfaced faults exactly.
type ChaosStats struct {
	Attempts       uint64 // SendBatch attempts seen
	FlakyDials     uint64 // determinate pre-wire dial faults
	DroppedReqs    uint64 // determinate dropped requests
	DroppedResps   uint64 // indeterminate dropped responses
	Duplicates     uint64 // duplicated successful exchanges
	Delays         uint64 // delayed attempts
	PartitionDrops uint64 // determinate partition drops
	CleanPasses    uint64 // attempts forwarded untouched
}

// Injected returns the total injected faults (delays and duplicates
// included — every perturbation the schedule produced).
func (s ChaosStats) Injected() uint64 {
	return s.FlakyDials + s.DroppedReqs + s.DroppedResps + s.Duplicates + s.Delays + s.PartitionDrops
}

type chaosCounters struct {
	attempts       atomic.Uint64
	flakyDials     atomic.Uint64
	droppedReqs    atomic.Uint64
	droppedResps   atomic.Uint64
	duplicates     atomic.Uint64
	delays         atomic.Uint64
	partitionDrops atomic.Uint64
	cleanPasses    atomic.Uint64
}

// NewChaos wraps a transport in the seeded fault schedule.
func NewChaos(inner Transport, cfg ChaosConfig) *Chaos {
	cfg.fill()
	return &Chaos{
		cfg:      cfg,
		inner:    inner,
		attempts: make(map[BatchID]int),
		faulted:  make(map[BatchID]int),
		perDest:  make(map[string]*uint64),
	}
}

// Inner returns the wrapped transport, so status surfaces (TCP stats,
// listen address) can reach through the chaos layer.
func (c *Chaos) Inner() Transport { return c.inner }

// Name identifies the transport stack.
func (c *Chaos) Name() string { return "chaos+" + c.inner.Name() }

// Close closes the wrapped transport.
func (c *Chaos) Close() error { return c.inner.Close() }

// ResetPeer forwards to the wrapped transport's redial state, if any.
func (c *Chaos) ResetPeer(machine string) {
	if pr, ok := c.inner.(peerResetter); ok {
		pr.ResetPeer(machine)
	}
}

// Query passes straight through to the wrapped transport: queries are
// idempotent reads with no dedup safety net to exercise, so the fault
// schedule targets only sequenced batch deliveries.
func (c *Chaos) Query(machine string, req []byte) ([]byte, error) {
	qt, ok := c.inner.(QueryTransport)
	if !ok {
		return nil, fmt.Errorf("cluster: transport %s does not carry queries", c.inner.Name())
	}
	return qt.Query(machine, req)
}

// Stats snapshots the injected-fault counters.
func (c *Chaos) Stats() ChaosStats {
	return ChaosStats{
		Attempts:       c.stats.attempts.Load(),
		FlakyDials:     c.stats.flakyDials.Load(),
		DroppedReqs:    c.stats.droppedReqs.Load(),
		DroppedResps:   c.stats.droppedResps.Load(),
		Duplicates:     c.stats.duplicates.Load(),
		Delays:         c.stats.delays.Load(),
		PartitionDrops: c.stats.partitionDrops.Load(),
		CleanPasses:    c.stats.cleanPasses.Load(),
	}
}

// step claims the attempt's bookkeeping: the per-delivery attempt
// index (retries of one BatchID arrive sequentially, so the counter is
// deterministic) and the per-destination partition clock tick.
func (c *Chaos) step(machine string, id BatchID) (attempt int, destTick uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	attempt = c.attempts[id]
	c.attempts[id] = attempt + 1
	tick := c.perDest[machine]
	if tick == nil {
		tick = new(uint64)
		c.perDest[machine] = tick
	}
	destTick = *tick
	*tick++
	return attempt, destTick
}

// allowIndeterminate reports whether another indeterminate fault may
// be charged against id, and charges it.
func (c *Chaos) allowIndeterminate(id BatchID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.faulted[id] >= c.cfg.MaxFaultsPerDelivery {
		return false
	}
	c.faulted[id]++
	return true
}

// settle drops a delivered BatchID's bookkeeping (no more retries will
// arrive for it once the sender saw success).
func (c *Chaos) settle(id BatchID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.attempts, id)
	delete(c.faulted, id)
}

// roll makes one deterministic fault decision. The decision is a
// content hash of the schedule seed and the attempt's identity — never
// a shared RNG draw — so concurrent senders cannot perturb each
// other's schedules. The sender's epoch is deliberately excluded: it
// is wall-clock-derived, and hashing it would make the schedule differ
// run to run under the same seed.
func (c *Chaos) roll(kind string, machine string, id BatchID, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s|%d|%d", c.cfg.Seed, kind, machine, id.Sender, id.Seq, attempt)
	// FNV-64a's final multiply diffuses the last input bytes — which
	// are exactly the attempt number — into the hash by at most
	// ~2^48, so without further mixing every retry of a batch would
	// re-roll (within 2^-16) the same number: one dropped request
	// would mean six dropped requests and a guaranteed exhausted
	// budget. Finish with a splitmix64-style finalizer so attempts
	// roll independently.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// partitioned reports whether the destination's scripted partition
// windows cover this attempt.
func (c *Chaos) partitioned(machine string, destTick uint64) bool {
	for _, p := range c.cfg.Partitions {
		if p.Machine == machine && destTick >= p.From && destTick < p.To {
			return true
		}
	}
	return false
}

// SendBatch runs one attempt through the fault schedule and, if it
// survives the determinate faults, through the wrapped transport.
func (c *Chaos) SendBatch(machine string, id BatchID, ds []Delivery) (int, []BatchReject, error) {
	if !id.sequenced() {
		// Unsequenced traffic has no dedup safety net; pass it through.
		return c.inner.SendBatch(machine, id, ds)
	}
	c.stats.attempts.Add(1)
	attempt, destTick := c.step(machine, id)

	if c.partitioned(machine, destTick) {
		c.stats.partitionDrops.Add(1)
		return 0, nil, transientErr("chaos-partition", nil)
	}
	if c.cfg.Delay > 0 && c.roll("delay", machine, id, attempt) < c.cfg.Delay {
		c.stats.delays.Add(1)
		// Deterministic duration too: reuse the decision hash.
		frac := c.roll("delay-len", machine, id, attempt)
		time.Sleep(time.Duration(frac * float64(c.cfg.MaxDelay)))
	}
	if c.cfg.FlakyDial > 0 && c.roll("dial", machine, id, attempt) < c.cfg.FlakyDial {
		c.stats.flakyDials.Add(1)
		return 0, nil, transientErr("chaos-dial", nil)
	}
	if c.cfg.DropRequest > 0 && c.roll("drop-req", machine, id, attempt) < c.cfg.DropRequest {
		c.stats.droppedReqs.Add(1)
		return 0, nil, transientErr("chaos-drop-request", nil)
	}

	accepted, rejects, err := c.inner.SendBatch(machine, id, ds)
	if err != nil {
		return accepted, rejects, err
	}
	if c.cfg.DropResponse > 0 && c.roll("drop-resp", machine, id, attempt) < c.cfg.DropResponse &&
		c.allowIndeterminate(id) {
		// The batch landed; the answer is lost. The retry will carry the
		// same BatchID and the receiver's dedup window will answer it.
		c.stats.droppedResps.Add(1)
		return 0, nil, transientErrIndet("chaos-drop-response", nil)
	}
	if c.cfg.Duplicate > 0 && c.roll("duplicate", machine, id, attempt) < c.cfg.Duplicate {
		c.stats.duplicates.Add(1)
		c.inner.SendBatch(machine, id, ds)
	} else {
		c.stats.cleanPasses.Add(1)
	}
	c.settle(id)
	return accepted, rejects, nil
}
