package cluster

import (
	"errors"
	"fmt"
)

// Transient-vs-fatal fault taxonomy. A send can fail in two very
// different ways, and PR 9 stops conflating them:
//
//   - Fatal: the destination is authoritatively down — the hosting node
//     answered that the machine is crashed (statusMachineDown), the
//     local liveness presumption already says so, or the transport has
//     been closed. These surface as ErrMachineDown and feed
//     detect-on-send recovery immediately.
//
//   - Transient: the network blipped — a refused or timed-out dial, a
//     connection reset mid-exchange, an IO timeout against a hung peer,
//     a response that never arrived. The destination may be perfectly
//     healthy. These surface as *TransientError; the cluster's bounded
//     retry re-attempts them (safe under the delivery sequence-number
//     dedup window), and only a run of K consecutive exhausted retries
//     escalates to machine-down through the recovery detector's
//     suspicion state.
//
// Chaos injection produces exactly the transient class, which is what
// makes a seeded fault schedule survivable: every injected fault is, by
// construction, retryable.

// TransientError wraps a transport fault that is plausibly temporary: a
// failed dial, a broken or timed-out exchange, an injected chaos fault.
// The delivery outcome is unknown at the sender (the request may or may
// not have reached the peer), which is why retries of a sequenced batch
// are deduplicated at the receiver rather than assumed safe.
type TransientError struct {
	// Op names the failed step ("dial", "exchange", "backoff",
	// "chaos-drop", ...), for diagnostics and chaos accounting.
	Op string
	// Err is the underlying cause; may be nil for injected faults.
	Err error
	// Indeterminate marks a fault observed only after the request was
	// fully handed to the network: the peer may have applied the batch
	// even though no outcome came back (a lost response, a read
	// timeout, a garbled reply). Faults before that point — dial
	// failures, write errors, dropped requests — are determinate: a
	// partial frame is never applied, so the batch certainly did not
	// land. The retry loop uses this to tell exact losses from
	// outcome-unknown losses when the budget exhausts.
	Indeterminate bool
}

// Error formats the fault.
func (e *TransientError) Error() string {
	suffix := ""
	if e.Indeterminate {
		suffix = ", outcome unknown"
	}
	if e.Err == nil {
		return fmt.Sprintf("cluster: transient network fault (%s%s)", e.Op, suffix)
	}
	return fmt.Sprintf("cluster: transient network fault (%s%s): %v", e.Op, suffix, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// IsTransient reports whether err is (or wraps) a transient network
// fault — the class the cluster retries and the recovery detector
// counts as suspicion rather than proof of death.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// IsIndeterminate reports whether err is a transient fault whose
// delivery outcome is unknown at the sender (the request was fully
// sent; the answer never came back).
func IsIndeterminate(err error) bool {
	var te *TransientError
	return errors.As(err, &te) && te.Indeterminate
}

// transientErr builds a determinate TransientError for one failed
// transport step (the request certainly did not land).
func transientErr(op string, err error) error {
	return &TransientError{Op: op, Err: err}
}

// transientErrIndet builds an indeterminate TransientError: the
// request went out whole, so the peer may have applied it.
func transientErrIndet(op string, err error) error {
	return &TransientError{Op: op, Err: err, Indeterminate: true}
}
