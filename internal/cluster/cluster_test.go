package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"muppet/internal/event"
)

func TestSendDeliversToHandler(t *testing.T) {
	c := New(Config{Machines: 2})
	var got event.Event
	var worker string
	c.SetHandler("machine-01", func(w string, e event.Event) error {
		worker, got = w, e
		return nil
	})
	err := c.Send("machine-01", "U1#0", event.Event{Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if worker != "U1#0" || got.Key != "k" {
		t.Fatalf("delivered %q %v", worker, got)
	}
}

func TestSendToCrashedMachineFails(t *testing.T) {
	c := New(Config{Machines: 2})
	c.SetHandler("machine-00", func(string, event.Event) error { return nil })
	c.Crash("machine-00")
	if err := c.Send("machine-00", "w", event.Event{}); !errors.Is(err, ErrMachineDown) {
		t.Fatalf("err = %v, want ErrMachineDown", err)
	}
	c.Revive("machine-00")
	if err := c.Send("machine-00", "w", event.Event{}); err != nil {
		t.Fatalf("send after revive: %v", err)
	}
}

func TestSendUnknownMachine(t *testing.T) {
	c := New(Config{Machines: 1})
	if err := c.Send("machine-99", "w", event.Event{}); err == nil {
		t.Fatal("send to unknown machine succeeded")
	}
}

func TestSendWithoutHandler(t *testing.T) {
	c := New(Config{Machines: 1})
	if err := c.Send("machine-00", "w", event.Event{}); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
}

func TestNetworkAccounting(t *testing.T) {
	c := New(Config{Machines: 1, SendLatency: time.Millisecond})
	c.SetHandler("machine-00", func(string, event.Event) error { return nil })
	for i := 0; i < 10; i++ {
		c.Send("machine-00", "w", event.Event{})
	}
	sends, simTime := c.NetworkStats()
	if sends != 10 {
		t.Fatalf("sends = %d", sends)
	}
	if simTime != 10*time.Millisecond {
		t.Fatalf("simTime = %v", simTime)
	}
}

func TestMachineNamesSorted(t *testing.T) {
	c := New(Config{Machines: 3})
	names := c.MachineNames()
	want := []string{"machine-00", "machine-01", "machine-02"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v", names)
		}
	}
}

func TestMasterBroadcastsFirstReportOnly(t *testing.T) {
	c := New(Config{Machines: 3})
	var mu sync.Mutex
	var broadcasts []string
	c.Master().Subscribe(func(m string) {
		mu.Lock()
		broadcasts = append(broadcasts, m)
		mu.Unlock()
	})
	if !c.Master().ReportFailure("machine-01") {
		t.Fatal("first report should return true")
	}
	if c.Master().ReportFailure("machine-01") {
		t.Fatal("duplicate report should return false")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(broadcasts) != 1 || broadcasts[0] != "machine-01" {
		t.Fatalf("broadcasts = %v", broadcasts)
	}
	if c.Master().Reports() != 2 {
		t.Fatalf("Reports = %d, want 2", c.Master().Reports())
	}
}

func TestMasterDetectionTime(t *testing.T) {
	c := New(Config{Machines: 2})
	before := time.Now()
	c.Master().ReportFailure("machine-00")
	dt, ok := c.Master().DetectionTime("machine-00")
	if !ok || dt.Before(before) {
		t.Fatalf("detection time = %v ok=%v", dt, ok)
	}
	if _, ok := c.Master().DetectionTime("machine-01"); ok {
		t.Fatal("undetected machine has detection time")
	}
}

func TestMasterFailedMachinesAndForget(t *testing.T) {
	c := New(Config{Machines: 3})
	c.Master().ReportFailure("machine-02")
	c.Master().ReportFailure("machine-00")
	got := c.Master().FailedMachines()
	if len(got) != 2 || got[0] != "machine-00" || got[1] != "machine-02" {
		t.Fatalf("failed = %v", got)
	}
	c.Master().Forget("machine-00")
	if got := c.Master().FailedMachines(); len(got) != 1 {
		t.Fatalf("failed after forget = %v", got)
	}
}

func TestPingAllDetectsCrashed(t *testing.T) {
	c := New(Config{Machines: 4})
	c.Crash("machine-01")
	c.Crash("machine-03")
	newly := c.Master().PingAll()
	if len(newly) != 2 {
		t.Fatalf("newly detected = %v", newly)
	}
	if again := c.Master().PingAll(); len(again) != 0 {
		t.Fatalf("second ping re-detected: %v", again)
	}
}

func TestConcurrentSendsAndCrash(t *testing.T) {
	c := New(Config{Machines: 2})
	var delivered sync.Map
	c.SetHandler("machine-01", func(w string, e event.Event) error {
		delivered.Store(e.Seq, true)
		return nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Send("machine-01", "w", event.Event{Seq: uint64(g*100 + i)})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Crash("machine-01")
		c.Revive("machine-01")
	}()
	wg.Wait()
}

func TestSendBatchFallsBackToPerDeliveryHandler(t *testing.T) {
	c := New(Config{Machines: 1})
	var got []string
	c.SetHandler("machine-00", func(worker string, e event.Event) error {
		got = append(got, worker+":"+e.Key)
		return nil
	})
	accepted, rejects, err := c.SendBatch("machine-00", []Delivery{
		{Worker: "f", Ev: event.Event{Key: "a"}},
		{Worker: "g", Ev: event.Event{Key: "b"}},
	})
	if err != nil || accepted != 2 || len(rejects) != 0 {
		t.Fatalf("SendBatch = %d, %v, %v", accepted, rejects, err)
	}
	if len(got) != 2 || got[0] != "f:a" || got[1] != "g:b" {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestSendBatchUsesBatchHandlerAndReportsRejects(t *testing.T) {
	c := New(Config{Machines: 1})
	boom := errors.New("full")
	c.SetBatchHandler("machine-00", func(ds []Delivery) []error {
		errs := make([]error, len(ds))
		errs[1] = boom
		return errs
	})
	accepted, rejects, err := c.SendBatch("machine-00", []Delivery{
		{Worker: "f", Ev: event.Event{Key: "a"}},
		{Worker: "f", Ev: event.Event{Key: "b"}},
		{Worker: "f", Ev: event.Event{Key: "c"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 2 || len(rejects) != 1 || rejects[0].Index != 1 || rejects[0].Err != boom {
		t.Fatalf("accepted=%d rejects=%v", accepted, rejects)
	}
}

func TestSendBatchToCrashedMachineFailsWhole(t *testing.T) {
	c := New(Config{Machines: 1})
	c.SetHandler("machine-00", func(string, event.Event) error { return nil })
	c.Crash("machine-00")
	_, _, err := c.SendBatch("machine-00", []Delivery{{Worker: "f"}})
	if err != ErrMachineDown {
		t.Fatalf("err = %v, want ErrMachineDown", err)
	}
}

func TestSendBatchChargesOneHop(t *testing.T) {
	c := New(Config{Machines: 1, SendLatency: time.Millisecond})
	c.SetHandler("machine-00", func(string, event.Event) error { return nil })
	ds := make([]Delivery, 64)
	if _, _, err := c.SendBatch("machine-00", ds); err != nil {
		t.Fatal(err)
	}
	sends, simTime := c.NetworkStats()
	if sends != 1 || simTime != time.Millisecond {
		t.Fatalf("sends=%d simTime=%v — batch should cost one hop", sends, simTime)
	}
}
