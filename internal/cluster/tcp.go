package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"muppet/internal/slate"
)

// TCPConfig tunes the TCP transport.
type TCPConfig struct {
	// Listen is the address to accept peer connections on, e.g.
	// "127.0.0.1:7070" or ":0". Empty disables serving (a send-only
	// node).
	Listen string
	// Peers maps every remote machine name to the host:port its node
	// listens on. Peers can also be added later with AddPeer.
	Peers map[string]string
	// DialTimeout bounds connection establishment. Default 1s.
	DialTimeout time.Duration
	// IOTimeout bounds one request/response exchange on an established
	// connection. Default 10s.
	IOTimeout time.Duration
	// RetryBackoff is the initial redial delay after a failed dial or
	// broken connection; it doubles per consecutive failure up to
	// MaxBackoff. While a peer is inside its backoff window sends fail
	// fast with a transient "backoff" fault rather than waiting out a
	// dial that is known to be hopeless. Default 50ms.
	RetryBackoff time.Duration
	// MaxBackoff caps the redial delay. Default 2s.
	MaxBackoff time.Duration
	// MaxFrame bounds the accepted frame body size; larger frames are
	// rejected as corrupt. Default 64 MiB.
	MaxFrame int
}

func (cfg *TCPConfig) fill() {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 10 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = 64 << 20
	}
}

// TCPStats counts the transport's wire activity.
type TCPStats struct {
	Dials      uint64 // successful outbound connections
	DialErrors uint64 // failed dial attempts
	FramesOut  uint64 // request frames written
	FramesIn   uint64 // request frames served
	BytesOut   uint64 // encoded request bytes written (frame bodies)
	BytesIn    uint64 // encoded request bytes served (frame bodies)
}

// TCP is the real-network Transport: stdlib net, one pooled connection
// per destination with reconnect/backoff, length-prefixed frames whose
// bodies go through the framed pooled slate codec, and write coalescing
// so a whole SendBatch costs one buffered write + flush rather than a
// syscall per event.
//
// Construction is three steps, because the transport and the cluster
// need each other: NewTCP binds the listener, cluster.New wires the
// transport into a node, and Serve starts accepting peer traffic into
// that node:
//
//	tr, err := cluster.NewTCP(cluster.TCPConfig{Listen: addr, Peers: peers})
//	clu := cluster.New(cluster.Config{Names: names, Local: local, Transport: tr})
//	tr.Serve(clu)
type TCP struct {
	cfg TCPConfig
	ln  net.Listener

	clu    atomic.Pointer[Cluster] // set by Serve
	closed atomic.Bool
	wg     sync.WaitGroup

	mu    sync.Mutex
	peers map[string]*tcpPeer
	conns map[net.Conn]struct{} // accepted server-side connections

	dials      atomic.Uint64
	dialErrors atomic.Uint64
	framesOut  atomic.Uint64
	framesIn   atomic.Uint64
	bytesOut   atomic.Uint64
	bytesIn    atomic.Uint64
}

// tcpPeer is the pooled connection to one destination node. The mutex
// serializes exchanges — the wire protocol is strict request/response —
// which also gives SendBatch its write coalescing: the whole batch is
// staged in the bufio writer and flushed once.
type tcpPeer struct {
	addr string

	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	br      *bufio.Reader
	next    time.Time     // earliest next dial attempt
	backoff time.Duration // current redial delay
	plain   []byte        // scratch: pre-codec message
	body    []byte        // scratch: encoded frame body
}

// NewTCP builds the transport and, if cfg.Listen is set, binds the
// listener so Addr is known before peers are wired up. Call Serve to
// start accepting.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg.fill()
	t := &TCP{
		cfg:   cfg,
		peers: make(map[string]*tcpPeer),
		conns: make(map[net.Conn]struct{}),
	}
	for name, addr := range cfg.Peers {
		t.peers[name] = &tcpPeer{addr: addr}
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("cluster: listen %s: %w", cfg.Listen, err)
		}
		t.ln = ln
	}
	return t, nil
}

// Addr returns the bound listen address ("" if not listening); with
// ":0" configs this is where the ephemeral port shows up.
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// AddPeer maps a remote machine to its node's listen address,
// replacing any previous mapping.
func (t *TCP) AddPeer(machine, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[machine] = &tcpPeer{addr: addr}
}

// Serve attaches the transport to the cluster node whose local
// machines it serves and starts the accept loop. It must be called at
// most once, after cluster.New.
func (t *TCP) Serve(c *Cluster) {
	t.clu.Store(c)
	if t.ln == nil {
		return
	}
	t.wg.Add(1)
	go t.acceptLoop()
}

// Name identifies the transport.
func (t *TCP) Name() string { return "tcp" }

// Stats returns a snapshot of the transport's wire counters.
func (t *TCP) Stats() TCPStats {
	return TCPStats{
		Dials:      t.dials.Load(),
		DialErrors: t.dialErrors.Load(),
		FramesOut:  t.framesOut.Load(),
		FramesIn:   t.framesIn.Load(),
		BytesOut:   t.bytesOut.Load(),
		BytesIn:    t.bytesIn.Load(),
	}
}

// Close stops serving and closes every pooled and accepted connection.
// Sends after Close fail with ErrMachineDown.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	if t.ln != nil {
		t.ln.Close()
	}
	t.mu.Lock()
	for conn := range t.conns {
		conn.Close()
	}
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		p.closeLocked()
		p.mu.Unlock()
	}
	t.wg.Wait()
	return nil
}

// ResetPeer clears a peer's redial backoff so the next send dials
// immediately; Cluster.Revive calls it when a machine rejoins.
func (t *TCP) ResetPeer(machine string) {
	t.mu.Lock()
	p := t.peers[machine]
	t.mu.Unlock()
	if p == nil {
		return
	}
	p.mu.Lock()
	p.next = time.Time{}
	p.backoff = 0
	p.mu.Unlock()
}

func (t *TCP) peer(machine string) *tcpPeer {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peers[machine]
}

// SendBatch delivers a machine-addressed batch in one request/response
// exchange on the peer's pooled connection: one frame out, one frame
// back, one flush — PR 3's batch amortization carried across the
// socket. Dial failures, broken connections, and exchange timeouts
// close the connection, arm the redial backoff, and surface as
// *TransientError — the peer process may be perfectly healthy behind a
// blip, so the verdict belongs to the cluster's retry loop and the
// recovery detector's suspicion window. Only an authoritative answer
// from the peer (statusMachineDown) or a closed transport surfaces as
// ErrMachineDown.
func (t *TCP) SendBatch(machine string, id BatchID, ds []Delivery) (int, []BatchReject, error) {
	if t.closed.Load() {
		return 0, nil, ErrMachineDown
	}
	p := t.peer(machine)
	if p == nil {
		return 0, nil, fmt.Errorf("cluster: no peer address for machine %s", machine)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.connectLocked(t); err != nil {
		return 0, nil, err
	}

	p.plain = encodeRequest(p.plain[:0], id, machine, ds)
	resp, sent, err := p.exchangeLocked(t)
	if err != nil {
		p.failLocked(t)
		if sent {
			// The request frame was fully flushed before the exchange
			// broke: the peer may have applied the batch.
			return 0, nil, transientErrIndet("exchange", err)
		}
		return 0, nil, transientErr("exchange", err)
	}
	status, accepted, rejects, err := decodeResponse(resp)
	if err != nil {
		// The stream is out of protocol sync; drop the connection. The
		// request did land, so the outcome is unknown.
		p.failLocked(t)
		return 0, nil, transientErrIndet("protocol", err)
	}
	if serr := statusErr(status, machine); serr != nil {
		// The peer answered: the connection is healthy, the machine
		// (or its handler) is not.
		return 0, nil, serr
	}
	return accepted, rejects, nil
}

// Query runs one query exchange on the peer's pooled connection,
// sharing the request/response discipline (and the redial backoff)
// with SendBatch. Every wire failure surfaces as a plain transient
// fault — queries are idempotent reads, so the indeterminate
// distinction SendBatch needs does not apply.
func (t *TCP) Query(machine string, req []byte) ([]byte, error) {
	if t.closed.Load() {
		return nil, ErrMachineDown
	}
	p := t.peer(machine)
	if p == nil {
		return nil, fmt.Errorf("cluster: no peer address for machine %s", machine)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.connectLocked(t); err != nil {
		return nil, err
	}

	p.plain = encodeQueryRequest(p.plain[:0], machine, req)
	resp, _, err := p.exchangeLocked(t)
	if err != nil {
		p.failLocked(t)
		return nil, transientErr("query-exchange", err)
	}
	status, payload, err := decodeQueryResponse(resp)
	if err != nil {
		p.failLocked(t)
		return nil, transientErr("query-protocol", err)
	}
	if serr := queryStatusErr(status, machine, payload); serr != nil {
		return nil, serr
	}
	return payload, nil
}

// connectLocked ensures the peer has a live connection, honoring the
// redial backoff window.
func (p *tcpPeer) connectLocked(t *TCP) error {
	if p.conn != nil {
		return nil
	}
	if !p.next.IsZero() && time.Now().Before(p.next) {
		return transientErr("backoff", nil)
	}
	conn, err := net.DialTimeout("tcp", p.addr, t.cfg.DialTimeout)
	if err != nil {
		t.dialErrors.Add(1)
		p.armBackoffLocked(t)
		return transientErr("dial", err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	t.dials.Add(1)
	p.conn = conn
	p.bw = bufio.NewWriterSize(conn, 64<<10)
	p.br = bufio.NewReaderSize(conn, 64<<10)
	p.next = time.Time{}
	p.backoff = 0
	return nil
}

// exchangeLocked writes the staged plain request as one frame and
// reads the response frame.
func (p *tcpPeer) exchangeLocked(t *TCP) (resp []byte, sent bool, err error) {
	// sent flips once the request frame is fully flushed: from that
	// point a failure is indeterminate — a whole frame went out, so the
	// peer may apply the batch even if no answer comes back. A write or
	// flush failure leaves at most a partial frame, which the receiver
	// can never apply.
	if err := p.conn.SetDeadline(time.Now().Add(t.cfg.IOTimeout)); err != nil {
		// A conn that cannot take a deadline must not be exchanged on —
		// without the IO timeout a hung peer would wedge the sender.
		return nil, false, fmt.Errorf("set deadline: %w", err)
	}
	p.body = slate.AppendEncode(p.body[:0], p.plain)
	if err := writeFrame(p.bw, p.body); err != nil {
		return nil, false, err
	}
	t.framesOut.Add(1)
	t.bytesOut.Add(uint64(len(p.body)))
	body, err := readFrameInto(p.br, p.body[:0], t.cfg.MaxFrame)
	if err != nil {
		return nil, true, err
	}
	p.body = body
	dec, err := slate.Decode(body)
	return dec, true, err
}

// failLocked tears down the connection and arms the redial backoff.
func (p *tcpPeer) failLocked(t *TCP) {
	p.closeLocked()
	p.armBackoffLocked(t)
}

func (p *tcpPeer) closeLocked() {
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
		p.bw = nil
		p.br = nil
	}
}

func (p *tcpPeer) armBackoffLocked(t *TCP) {
	if p.backoff <= 0 {
		p.backoff = t.cfg.RetryBackoff
	} else if p.backoff < t.cfg.MaxBackoff {
		p.backoff *= 2
		if p.backoff > t.cfg.MaxBackoff {
			p.backoff = t.cfg.MaxBackoff
		}
	}
	p.next = time.Now().Add(p.backoff)
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed.Load() {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

// serveConn answers request frames from one peer connection until it
// breaks: decode, deliver into the local cluster node, respond. Any
// protocol violation drops the connection; the peer redials.
func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var body, plain []byte
	for {
		var err error
		body, err = readFrameInto(br, body[:0], t.cfg.MaxFrame)
		if err != nil {
			return
		}
		t.framesIn.Add(1)
		t.bytesIn.Add(uint64(len(body)))
		req, err := slate.Decode(body)
		if err != nil || len(req) == 0 {
			return
		}
		if req[0] == wireQueryReq {
			machine, payload, err := decodeQueryRequest(req)
			if err != nil {
				return
			}
			var status byte
			var result []byte
			if clu := t.clu.Load(); clu == nil {
				status = statusUnknownMachine
			} else {
				result, err = clu.DeliverQuery(machine, payload)
				if status = queryStatusOf(err); status == statusQueryFailed {
					result = []byte(err.Error())
				}
			}
			plain = encodeQueryResponse(plain[:0], status, result)
			body = slate.AppendEncode(body[:0], plain)
			if err := writeFrame(bw, body); err != nil {
				return
			}
			continue
		}
		id, machine, ds, err := decodeRequest(req)
		if err != nil {
			return
		}
		var status byte
		var accepted int
		var rejects []BatchReject
		if clu := t.clu.Load(); clu == nil {
			status = statusUnknownMachine
		} else {
			accepted, rejects, err = clu.DeliverLocal(machine, id, ds)
			status = statusOf(err)
		}
		plain = encodeResponse(plain[:0], status, accepted, rejects)
		body = slate.AppendEncode(body[:0], plain)
		if err := writeFrame(bw, body); err != nil {
			return
		}
	}
}

// writeFrame stages the length prefix plus body on the buffered writer
// and flushes once: a batch costs one coalesced write however many
// deliveries it carries.
func writeFrame(bw *bufio.Writer, body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(body); err != nil {
		return err
	}
	return bw.Flush()
}

// readFrameInto reads one length-prefixed frame body, reusing dst's
// capacity.
func readFrameInto(br *bufio.Reader, dst []byte, maxFrame int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(maxFrame) {
		return nil, errors.New("cluster: oversized frame")
	}
	if cap(dst) < int(n) {
		dst = make([]byte, n)
	} else {
		dst = dst[:n]
	}
	if _, err := io.ReadFull(br, dst); err != nil {
		return nil, err
	}
	return dst, nil
}
