package cluster

import (
	"fmt"
	"testing"

	"muppet/internal/event"
)

// benchDeliveries builds one machine-addressed batch shaped like the
// engines' ingress batches: small keys, short payloads.
func benchDeliveries(n int) []Delivery {
	ds := make([]Delivery, n)
	for i := range ds {
		ds[i] = Delivery{
			Worker: "U1#0",
			Ev: event.Event{
				Stream:  "S1",
				TS:      event.Timestamp(i),
				Key:     fmt.Sprintf("key-%04d", i%64),
				Value:   []byte("sf,retailer,checkin"),
				Ingress: int64(i),
			},
			Tag: i,
		}
	}
	return ds
}

// BenchmarkTransportSendBatch measures one machine-addressed batch
// through each transport topology: the single-process direct call, the
// InProc transport between two nodes, and TCP over loopback (a full
// encode -> frame -> socket -> decode -> deliver -> respond exchange).
func BenchmarkTransportSendBatch(b *testing.B) {
	const batch = 256
	sink := func(host *Cluster) {
		host.SetBatchHandler("machine-01", func(ds []Delivery) []error { return nil })
	}

	b.Run("in-process/direct", func(b *testing.B) {
		c := New(Config{Names: conformanceNames})
		defer c.Close()
		sink(c)
		ds := benchDeliveries(batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.SendBatch("machine-01", ds); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch), "events/op")
	})

	b.Run("in-process/transport", func(b *testing.B) {
		reg := NewInProc()
		a := New(Config{Names: conformanceNames, Local: []string{"machine-00"}, Transport: reg})
		h := New(Config{Names: conformanceNames, Local: []string{"machine-01"}, Transport: reg})
		reg.Register(a)
		reg.Register(h)
		defer a.Close()
		defer h.Close()
		sink(h)
		ds := benchDeliveries(batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := a.SendBatch("machine-01", ds); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch), "events/op")
	})

	b.Run("tcp/loopback", func(b *testing.B) {
		trB, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0"})
		if err != nil {
			b.Fatal(err)
		}
		h := New(Config{Names: conformanceNames, Local: []string{"machine-01"}, Transport: trB})
		trB.Serve(h)
		sink(h)
		trA, err := NewTCP(TCPConfig{Peers: map[string]string{"machine-01": trB.Addr()}})
		if err != nil {
			b.Fatal(err)
		}
		a := New(Config{Names: conformanceNames, Local: []string{"machine-00"}, Transport: trA})
		trA.Serve(a)
		defer a.Close()
		defer h.Close()
		ds := benchDeliveries(batch)
		// Warm the pooled connection so b.N measures exchanges, not the
		// dial.
		if _, _, err := a.SendBatch("machine-01", ds); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := a.SendBatch("machine-01", ds); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(batch), "events/op")
		st := trA.Stats()
		b.ReportMetric(float64(st.BytesOut)/float64(st.FramesOut), "frame-bytes")
	})
}
