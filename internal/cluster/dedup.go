package cluster

import "sync"

// Receiver-side delivery deduplication. Retried batches (and chaos
// duplicates) arrive carrying the same BatchID; the hosting node must
// apply each sequenced batch to its queues exactly once, and answer
// every duplicate with the original outcome — at-least-once on the
// wire, exactly-once at the queue boundary. The window is keyed by
// sender identity: each sender's recent sequence numbers map to the
// cached delivery outcome, with entries beyond the window evicted (a
// retry never lags thousands of batches behind; the window only needs
// to out-live the sender's bounded retry horizon).

// dedupEntry caches one sequenced batch's delivery outcome. done is
// closed when the first delivery finishes, so a duplicate racing the
// original waits for the real outcome instead of re-applying.
type dedupEntry struct {
	done     chan struct{}
	accepted int
	rejects  []BatchReject
	err      error
}

// senderWindow is one sender's recent delivery history.
type senderWindow struct {
	epoch   uint64
	maxSeq  uint64
	entries map[uint64]*dedupEntry
}

// dedupTable is a cluster node's per-sender dedup state.
type dedupTable struct {
	mu      sync.Mutex
	window  uint64
	senders map[string]*senderWindow
}

func newDedupTable(window int) *dedupTable {
	return &dedupTable{
		window:  uint64(window),
		senders: make(map[string]*senderWindow),
	}
}

// begin claims the right to apply the batch identified by id. It
// returns (entry, false) when the caller must apply the batch and
// commit the outcome into entry, and (entry, true) when the batch is a
// duplicate — the caller waits on entry.done and returns the cached
// outcome. A nil entry means the batch must be applied without caching
// (stale epoch: a previous incarnation of the sender).
func (t *dedupTable) begin(id BatchID) (*dedupEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sw := t.senders[id.Sender]
	if sw == nil || sw.epoch < id.Epoch {
		// First contact with this sender incarnation: any previous
		// incarnation's window is stale (its seq counter restarted), so
		// it is dropped whole.
		sw = &senderWindow{epoch: id.Epoch, entries: make(map[uint64]*dedupEntry)}
		t.senders[id.Sender] = sw
	}
	if id.Epoch < sw.epoch {
		return nil, false
	}
	if e := sw.entries[id.Seq]; e != nil {
		return e, true
	}
	e := &dedupEntry{done: make(chan struct{})}
	sw.entries[id.Seq] = e
	if id.Seq > sw.maxSeq {
		sw.maxSeq = id.Seq
	}
	// Evict entries that have fallen out of the window. Seqs are issued
	// densely per sender, so the resident set stays ~window even though
	// eviction only walks candidates below the new watermark.
	if sw.maxSeq > t.window {
		low := sw.maxSeq - t.window
		for seq := range sw.entries {
			if seq < low {
				delete(sw.entries, seq)
			}
		}
	}
	return e, false
}

// commit records the applied batch's outcome and releases any
// duplicates waiting on it.
func (e *dedupEntry) commit(accepted int, rejects []BatchReject, err error) {
	e.accepted = accepted
	e.rejects = rejects
	e.err = err
	close(e.done)
}

// forget drops a sender's window (a restarted receiver starts empty
// anyway; this is for symmetric cleanup in tests and rejoin paths).
func (t *dedupTable) forget(sender string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.senders, sender)
}

// size reports the total retained entries across senders.
func (t *dedupTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, sw := range t.senders {
		n += len(sw.entries)
	}
	return n
}
