package engine2

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"muppet/internal/core"
	"muppet/internal/event"
	"muppet/internal/kvstore"
	"muppet/internal/queue"
	"muppet/internal/slate"
)

func counterApp() *core.App {
	m1 := core.MapFunc{FName: "M1", Fn: func(emit core.Emitter, in event.Event) {
		if strings.HasPrefix(string(in.Value), "checkin:") {
			emit.Publish("S2", strings.TrimPrefix(string(in.Value), "checkin:"), in.Value)
		}
	}}
	u1 := core.UpdateFunc{FName: "U1", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		count := 0
		if sl != nil {
			count, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(count + 1)))
	}}
	return core.NewApp("counter").
		Input("S1").
		AddMap(m1, []string{"S1"}, []string{"S2"}).
		AddUpdate(u1, []string{"S2"}, nil, 0)
}

func checkin(i int, retailer string) event.Event {
	return event.Event{Stream: "S1", TS: event.Timestamp(i), Key: fmt.Sprintf("c%d", i), Value: []byte("checkin:" + retailer)}
}

func TestCountsCorrectAcrossMachinesAndThreads(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 4, ThreadsPerMachine: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	want := map[string]int{}
	retailers := []string{"walmart", "bestbuy", "jcpenney", "samsclub", "target"}
	for i := 0; i < 500; i++ {
		r := retailers[i%len(retailers)]
		want[r]++
		e.Ingest(checkin(i+1, r))
	}
	e.Drain()
	for r, n := range want {
		if got := string(e.Slate("U1", r)); got != strconv.Itoa(n) {
			t.Fatalf("%s = %q, want %d", r, got, n)
		}
	}
	s := e.Stats()
	if s.Processed != 1000 {
		t.Fatalf("Processed = %d, want 1000", s.Processed)
	}
}

func TestSlateContentionNeverExceedsTwo(t *testing.T) {
	// The 2.0 dispatch rule bounds contention for any slate to at most
	// two workers (Section 4.5). Hammer one hot key through many
	// threads and check the observed maximum.
	u := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		time.Sleep(50 * time.Microsecond) // widen the race window
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	app := core.NewApp("hot").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
	e, err := New(app, Config{Machines: 1, ThreadsPerMachine: 8, QueueCapacity: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	const n = 400
	for i := 0; i < n; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"})
	}
	e.Drain()
	s := e.Stats()
	if s.MaxSlateContention > 2 {
		t.Fatalf("slate contention %d exceeds the paper's bound of 2", s.MaxSlateContention)
	}
	// The per-slate lock must make the hot counter exact despite
	// contention.
	if got := string(e.Slate("U", "hot")); got != strconv.Itoa(n) {
		t.Fatalf("hot count = %q, want %d", got, n)
	}
}

func TestDisableDualQueueSingleOwner(t *testing.T) {
	u := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		emit.ReplaceSlate([]byte("x"))
	}}
	app := core.NewApp("single").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
	e, err := New(app, Config{Machines: 1, ThreadsPerMachine: 8, DisableDualQueue: true, QueueCapacity: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 200; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"})
	}
	e.Drain()
	if s := e.Stats(); s.MaxSlateContention > 1 {
		t.Fatalf("single-queue mode saw contention %d, want <= 1", s.MaxSlateContention)
	}
	// All events for the key must land on exactly one thread's queue.
	accepted := 0
	for _, qs := range e.QueueStats() {
		if qs.Accepted > 0 {
			accepted++
		}
	}
	if accepted != 1 {
		t.Fatalf("events landed on %d queues, want 1", accepted)
	}
}

func TestHotKeySpillsToSecondaryQueue(t *testing.T) {
	// With a slow updater and a flood on one key, the primary queue
	// backs up and the dispatcher spills onto the secondary.
	u := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		time.Sleep(200 * time.Microsecond)
		emit.ReplaceSlate([]byte("x"))
	}}
	app := core.NewApp("spill").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
	e, err := New(app, Config{Machines: 1, ThreadsPerMachine: 4, QueueCapacity: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 300; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"})
	}
	e.Drain()
	busy := 0
	for _, qs := range e.QueueStats() {
		if qs.Accepted > 0 {
			busy++
		}
	}
	if busy != 2 {
		t.Fatalf("hot key used %d queues, want exactly 2 (primary + secondary)", busy)
	}
}

func TestCentralCacheSharedAcrossThreads(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 1, ThreadsPerMachine: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 100; i++ {
		e.Ingest(checkin(i+1, fmt.Sprintf("r%d", i%10)))
	}
	e.Drain()
	if cs := e.CacheStats(); cs.Size != 10 {
		t.Fatalf("central cache holds %d slates, want 10", cs.Size)
	}
}

func TestMachineCrashFailover(t *testing.T) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 3})
	e, err := New(counterApp(), Config{
		Machines: 4, ThreadsPerMachine: 2,
		Store: store, StoreLevel: kvstore.Quorum,
		FlushPolicy: slate.WriteThrough,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 50; i++ {
		e.Ingest(checkin(i+1, "walmart"))
	}
	e.Drain()
	owner := e.MachineFor("U1", "walmart")
	e.CrashMachine(owner)
	e.Ingest(checkin(51, "walmart")) // lost; triggers detection
	e.Drain()
	if after := e.MachineFor("U1", "walmart"); after == owner {
		t.Fatalf("key still routed to crashed machine %s", after)
	}
	e.Ingest(checkin(52, "walmart"))
	e.Drain()
	if got := string(e.Slate("U1", "walmart")); got != "51" {
		t.Fatalf("count after failover = %q, want 51 (50 flushed + 1 new, 1 lost)", got)
	}
	if e.Stats().LostMachineDown == 0 {
		t.Fatal("crash lost no events?")
	}
}

func TestSlateTTLConfiguredPerUpdater(t *testing.T) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 1, ReplicationFactor: 1})
	u := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		emit.ReplaceSlate([]byte("v"))
	}}
	app := core.NewApp("ttl").Input("S1").AddUpdate(u, []string{"S1"}, nil, time.Minute)
	e, err := New(app, Config{Machines: 1, Store: store, StoreLevel: kvstore.One, FlushPolicy: slate.WriteThrough})
	if err != nil {
		t.Fatal(err)
	}
	e.Ingest(event.Event{Stream: "S1", TS: 1, Key: "k"})
	e.Drain()
	e.Stop()
	// The row must carry the updater's TTL.
	n := store.Node("node-00")
	_, row, found, _, _ := n.Get("k", "U")
	if !found || row.TTL != time.Minute {
		t.Fatalf("row TTL = %v found=%v, want 1m", row.TTL, found)
	}
}

func TestIntervalFlushHappensInBackground(t *testing.T) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 1, ReplicationFactor: 1})
	e, err := New(counterApp(), Config{
		Machines: 1,
		Store:    store, StoreLevel: kvstore.One,
		FlushPolicy:   slate.Interval,
		FlushInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	e.Ingest(checkin(1, "walmart"))
	e.Drain()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, found, _, _ := store.Get("walmart", "U1", kvstore.One); found {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background flusher never persisted the slate")
}

func TestOverflowPolicies(t *testing.T) {
	mkApp := func() *core.App {
		slow := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
			time.Sleep(time.Millisecond)
			emit.ReplaceSlate([]byte("x"))
		}}
		return core.NewApp("slow").Input("S1").AddUpdate(slow, []string{"S1"}, nil, 0)
	}
	t.Run("drop", func(t *testing.T) {
		e, err := New(mkApp(), Config{Machines: 1, ThreadsPerMachine: 1, QueueCapacity: 2, QueuePolicy: queue.Drop})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Stop()
		for i := 0; i < 50; i++ {
			e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"})
		}
		e.Drain()
		s := e.Stats()
		if s.LostOverflow == 0 {
			t.Fatal("nothing dropped")
		}
		if s.Processed+s.LostOverflow != 50 {
			t.Fatalf("conservation violated: %+v", s)
		}
	})
	t.Run("throttle", func(t *testing.T) {
		e, err := New(mkApp(), Config{Machines: 1, ThreadsPerMachine: 1, QueueCapacity: 2, QueuePolicy: queue.Drop, SourceThrottle: true})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Stop()
		for i := 0; i < 30; i++ {
			e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"})
		}
		e.Drain()
		s := e.Stats()
		if s.LostOverflow != 0 {
			t.Fatalf("throttled source lost %d events", s.LostOverflow)
		}
		if s.Processed != 30 {
			t.Fatalf("Processed = %d, want 30", s.Processed)
		}
	})
}

func TestLargestQueuesReported(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	m := e.LargestQueues()
	if len(m) != 2 {
		t.Fatalf("LargestQueues for %d machines, want 2", len(m))
	}
}

func TestMultiStageWorkflowAndOutputs(t *testing.T) {
	// A 3-stage pipeline resembling the hot-topics app (Fig. 1c):
	// M1 fans tweets out to topics, U1 counts, and on every 5th event
	// per topic U1 emits to S3; U2 records them.
	m1 := core.MapFunc{FName: "M1", Fn: func(emit core.Emitter, in event.Event) {
		emit.Publish("S2", string(in.Value), nil)
	}}
	u1 := core.UpdateFunc{FName: "U1", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		n++
		emit.ReplaceSlate([]byte(strconv.Itoa(n)))
		if n%5 == 0 {
			emit.Publish("S3", in.Key, []byte(strconv.Itoa(n)))
		}
	}}
	u2 := core.UpdateFunc{FName: "U2", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		emit.ReplaceSlate(in.Value)
	}}
	app := core.NewApp("pipeline").
		Input("S1").
		Output("S3").
		AddMap(m1, []string{"S1"}, []string{"S2"}).
		AddUpdate(u1, []string{"S2"}, []string{"S3"}, 0).
		AddUpdate(u2, []string{"S3"}, nil, 0)
	e, err := New(app, Config{Machines: 3, ThreadsPerMachine: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 25; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "t", Value: []byte("sports")})
	}
	e.Drain()
	if got := len(e.Output("S3")); got != 5 {
		t.Fatalf("S3 events = %d, want 5 (every 5th of 25)", got)
	}
	if got := string(e.Slate("U2", "sports")); got != "25" {
		t.Fatalf("U2 slate = %q, want last milestone 25", got)
	}
}

func TestSlateCachedVsStoreFallback(t *testing.T) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 1, ReplicationFactor: 1})
	e, err := New(counterApp(), Config{
		Machines: 1, CacheCapacity: 2,
		Store: store, StoreLevel: kvstore.One, FlushPolicy: slate.OnEvict,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 10; i++ {
		e.Ingest(checkin(i+1, fmt.Sprintf("r%d", i)))
	}
	e.Drain()
	// Most slates were evicted from the size-2 cache...
	evicted := 0
	for i := 0; i < 10; i++ {
		if _, ok := e.SlateCached("U1", fmt.Sprintf("r%d", i)); !ok {
			evicted++
		}
	}
	if evicted < 5 {
		t.Fatalf("only %d slates evicted; cache not exercised", evicted)
	}
	// ...but Slate still reads them through the store.
	for i := 0; i < 10; i++ {
		if got := string(e.Slate("U1", fmt.Sprintf("r%d", i))); got != "1" {
			t.Fatalf("r%d = %q, want 1", i, got)
		}
	}
}

func TestIngestNonInputPanics(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Ingest(event.Event{Stream: "S2"})
}

func TestStopIdempotent(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Ingest(checkin(1, "walmart"))
	e.Stop()
	e.Stop()
}

func TestSpillHelper(t *testing.T) {
	// Spill when primary > factor*secondary + 4.
	if spill(4, 0, 2) {
		t.Fatal("4 vs 0: below threshold, must not spill")
	}
	if !spill(5, 0, 2) {
		t.Fatal("5 vs 0: above threshold, must spill")
	}
	if spill(10, 3, 2) {
		t.Fatal("10 vs 3: 10 <= 2*3+4, must not spill")
	}
	if !spill(11, 3, 2) {
		t.Fatal("11 vs 3: 11 > 2*3+4, must spill")
	}
}
