package engine2

import (
	"sync"
	"testing"

	"muppet/internal/core"
	"muppet/internal/event"
)

// stopRaceApp is counterApp with a declared output stream so the test
// can hold a live subscription across Stop.
func stopRaceApp() *core.App {
	m1 := core.MapFunc{FName: "M1", Fn: func(emit core.Emitter, in event.Event) {
		emit.Publish("S2", in.Key, in.Value)
	}}
	u1 := core.UpdateFunc{FName: "U1", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		emit.ReplaceSlate([]byte("x"))
		emit.Publish("S3", in.Key, in.Value)
	}}
	return core.NewApp("stoprace").
		Input("S1").
		Output("S3").
		AddMap(m1, []string{"S1"}, []string{"S2"}).
		AddUpdate(u1, []string{"S2"}, []string{"S3"}, 0)
}

// Regression test for the Stop-window hazards the networked mode hits
// harder: a master failure broadcast (the path a remote peer's failed
// send triggers at any moment), a rejoin's worker restart, live
// subscribers, and ingestion all racing Stop. The failure modes this
// pins down are panics — send on a closed subscription channel, and
// wg.Add racing wg.Wait when a rejoin restarts workers while Stop is
// tearing them down (serialized by stopMu) — plus anything the race
// detector sees.
func TestStopRacesFailureBroadcastAndRejoin(t *testing.T) {
	for round := 0; round < 10; round++ {
		e, err := New(stopRaceApp(), Config{Machines: 3, ThreadsPerMachine: 2, QueueCapacity: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup

		// Ingestion keeps events in flight through the Stop window.
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 500; i++ {
				if _, err := e.IngestBatch([]event.Event{checkin(i+1, "walmart")}); err != nil {
					return
				}
			}
		}()

		// A subscriber ranges until Stop closes its channel; Stop must
		// close it exactly once with no concurrent sends slipping through.
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := e.Subscribe("S3", 4)
			close(start)
			for range sub.C() {
			}
		}()

		// The master broadcast a remote sender would trigger, racing Stop.
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			e.Cluster().Master().ReportFailure("machine-01")
		}()

		// A crash + rejoin cycle: the rejoin's RestartWorkers must not
		// wg.Add into a workgroup Stop is Waiting on.
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			e.CrashMachine("machine-02")
			e.RejoinMachine("machine-02")
		}()

		<-start
		e.Stop()
		wg.Wait()
	}
}
