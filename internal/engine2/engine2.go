package engine2

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"muppet/internal/cluster"
	"muppet/internal/core"
	"muppet/internal/engine"
	"muppet/internal/event"
	"muppet/internal/hashring"
	"muppet/internal/ingress"
	"muppet/internal/kvstore"
	"muppet/internal/obs"
	"muppet/internal/query"
	"muppet/internal/queue"
	"muppet/internal/recovery"
	"muppet/internal/slate"
	"muppet/internal/wal"
)

// Config tunes the Muppet 2.0 engine.
type Config struct {
	// Machines is the number of simulated machines.
	Machines int
	// ThreadsPerMachine is the worker-thread pool size per machine; the
	// paper advises as many as the application's parallel-scaling limit
	// allows, often the core count.
	ThreadsPerMachine int
	// QueueCapacity bounds each worker thread's queue.
	QueueCapacity int
	// QueuePolicy is the overflow behavior for internal event passing.
	QueuePolicy queue.OverflowPolicy
	// OverflowStream receives diverted events under the Divert policy.
	OverflowStream string
	// CacheCapacity is the central slate-cache capacity per machine —
	// one pool, not scattered per-worker caches (Section 4.5).
	CacheCapacity int
	// FlushPolicy controls when dirty slates reach the key-value store.
	FlushPolicy slate.FlushPolicy
	// FlushInterval drives the background flusher under slate.Interval.
	FlushInterval time.Duration
	// Store is the durable key-value cluster; nil disables persistence.
	Store *kvstore.Cluster
	// StoreLevel is the consistency level for slate I/O.
	StoreLevel kvstore.Consistency
	// SourceThrottle makes Ingest wait-and-retry on a full queue.
	SourceThrottle bool
	// SendLatency is the simulated per-hop network latency.
	SendLatency time.Duration
	// DisableDualQueue restricts dispatch to the primary queue only,
	// restoring the 1.0-style single-owner behavior; experiment E6
	// uses it as the ablation baseline.
	DisableDualQueue bool
	// ReplayLog enables the event replay capability the paper lists as
	// future work (§4.3): every accepted delivery is logged until
	// fully processed, and CrashMachineAndReplay redelivers a dead
	// machine's unacknowledged events to the keys' new owners
	// (at-least-once semantics).
	ReplayLog bool
	// SecondarySpillFactor: the event goes to the secondary queue when
	// primaryLen > SecondarySpillFactor*secondaryLen + 4. Default 2.
	SecondarySpillFactor int
	// SlateShards is the number of stripes in each machine's central
	// slate store (default 16): worker threads touching different
	// slates contend on per-shard locks, not one cache-wide mutex.
	SlateShards int
	// FlushBatch bounds the records per group-commit multi-put when
	// the background flusher drains dirty slates (default 256).
	FlushBatch int
	// OutputCapacity bounds the events retained per declared output
	// stream (a ring keeping the newest; overwrites are counted in
	// Stats.OutputDropped). Zero or negative retains everything, the
	// pre-redesign behavior.
	OutputCapacity int
	// Recovery tunes the shared failure-recovery subsystem (detector,
	// WAL replay on failover, cache warm-up on rejoin). The zero value
	// enables everything.
	Recovery recovery.Config
	// Cluster, when non-nil, is an externally wired cluster node (node
	// mode): the engine hosts runtime state only for the cluster's
	// local machines and reaches the rest through its transport. Nil
	// builds the single-process simulation from Machines/SendLatency.
	// The engine owns the cluster's lifecycle either way: Stop closes
	// it.
	Cluster *cluster.Cluster
	// Observability is the sampled event-lifecycle tracing knob; the
	// zero value disables tracing (the registry is always on).
	Observability obs.TracerConfig
}

func (c *Config) fill() {
	if c.Machines <= 0 {
		c.Machines = 1
	}
	if c.ThreadsPerMachine <= 0 {
		c.ThreadsPerMachine = 4
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 1024
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 100_000
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 100 * time.Millisecond
	}
	if c.SecondarySpillFactor <= 0 {
		c.SecondarySpillFactor = 2
	}
}

// fk is the (function, key) pair dispatch decisions are made on.
type fk struct {
	fn  string
	key string
}

// thread is one worker thread slot. Its queue lives in a queue.Slot:
// it is replaced when the machine is revived after a crash (the old
// queue was closed by the failover drain), with retired queues' stats
// folded in. The reusable emitter lives in threadLoop, not here: a
// revival may start the replacement loop while the old loop is still
// finishing one in-process invocation, so the scratch must belong to
// the loop, never the slot.
type thread struct {
	idx int
	q   queue.Slot[engine.Envelope]
}

func (t *thread) queue() *queue.Queue[engine.Envelope] { return t.q.Queue() }
func (t *thread) stats() queue.Stats                   { return t.q.Stats() }

// slateLock serializes updates to one slate and tracks how many
// workers hold or wait for it (the contention the paper bounds at 2).
// sh is the stripe the lock was born in — locks recycle only within
// their stripe's free list, so release can reach the stripe without
// rehashing the key.
type slateLock struct {
	mu     sync.Mutex
	owners atomic.Int32
	refs   int
	sh     *lockShard
}

// slateLockShards is the stripe count of each machine's slate-lock
// table; a power of two so the key hash maps to a stripe with a mask.
// 128 stripes for at most ThreadsPerMachine concurrent holders makes
// cross-key collisions on a stripe mutex rare, and the per-stripe
// state is a map header plus a small free list.
const slateLockShards = 128

// lockShard is one stripe of the slate-lock table: its own mutex, the
// live locks of keys currently held or contended, and a free list of
// retired slateLocks. Recycling through the free list keeps slate
// acquisition allocation-free in steady state — the previous design
// (one process-wide map under a single mutex) both serialized every
// acquisition in the machine and allocated a fresh slateLock per
// event on hot keys.
type lockShard struct {
	mu    sync.Mutex
	locks map[slate.Key]*slateLock
	free  []*slateLock
}

// slateLockTable stripes per-slate locks over independent shards keyed
// by hashring.HashPair, so acquiring a slate touches one stripe mutex
// instead of a process-wide one. Per-key accounting (refs, owners) is
// exactly the old map's: a lock exists while any worker holds or waits
// for its key, and the Muppet-2.0 ≤2-owner contention bound is still
// observed per key, never per stripe.
type slateLockTable struct {
	shards [slateLockShards]lockShard
}

func newSlateLockTable() *slateLockTable {
	t := &slateLockTable{}
	for i := range t.shards {
		t.shards[i].locks = make(map[slate.Key]*slateLock)
	}
	return t
}

// lockSeparator feeds HashPair a byte outside UTF-8 text so
// ("ab","c") and ("a","bc") stripe independently.
const lockSeparator = 0xfd

func (t *slateLockTable) shardFor(sk slate.Key) *lockShard {
	h := hashring.HashPair(sk.Updater, lockSeparator, sk.Key)
	return &t.shards[h&(slateLockShards-1)]
}

// acquire blocks until the calling worker holds sk's lock, reporting
// the owner count (holders plus waiters) it observed to observe.
func (t *slateLockTable) acquire(sk slate.Key, observe func(int32)) *slateLock {
	sh := t.shardFor(sk)
	sh.mu.Lock()
	l := sh.locks[sk]
	if l == nil {
		if n := len(sh.free); n > 0 {
			l = sh.free[n-1]
			sh.free[n-1] = nil
			sh.free = sh.free[:n-1]
		} else {
			l = &slateLock{sh: sh}
		}
		sh.locks[sk] = l
	}
	l.refs++
	sh.mu.Unlock()
	if n := l.owners.Add(1); observe != nil {
		observe(n)
	}
	l.mu.Lock()
	return l
}

// release returns sk's lock; the last releaser retires the slateLock
// to its stripe's free list for reuse. The stripe comes off the lock
// itself, sparing the release a second key hash.
func (t *slateLockTable) release(sk slate.Key, l *slateLock) {
	l.mu.Unlock()
	l.owners.Add(-1)
	sh := l.sh
	sh.mu.Lock()
	l.refs--
	if l.refs == 0 {
		delete(sh.locks, sk)
		sh.free = append(sh.free, l)
	}
	sh.mu.Unlock()
}

// machine is the per-host runtime state.
type machine struct {
	name    string
	threads []*thread
	cache   slate.SlateStore

	// runningMu guards running: fk -> thread idx -> count of
	// invocations of that (function, key) currently executing on the
	// thread. The dispatcher's "follow the thread already processing
	// this key" rule reads it (Section 4.5).
	runningMu sync.Mutex
	running   map[fk]map[int]int

	// locks is the striped per-slate lock table (one stripe mutex per
	// acquisition instead of a machine-wide one).
	locks *slateLockTable

	// log is the replay log, nil unless Config.ReplayLog is set.
	log *wal.Log

	// scratchPool recycles batch-dispatch scratch space so a steady
	// batched-ingest loop allocates nothing per batch.
	scratchPool sync.Pool
}

// dispatchScratch is one batch dispatch's working memory: thread
// targets per delivery, per-thread counts and cached queue depths, and
// per-thread envelope staging buffers.
type dispatchScratch struct {
	targets []int32
	counts  []int
	lens    []int
	envs    [][]engine.Envelope
	idxs    [][]int
}

func (m *machine) scratch() *dispatchScratch {
	sc, _ := m.scratchPool.Get().(*dispatchScratch)
	if sc == nil {
		sc = &dispatchScratch{
			counts: make([]int, len(m.threads)),
			lens:   make([]int, len(m.threads)),
			envs:   make([][]engine.Envelope, len(m.threads)),
			idxs:   make([][]int, len(m.threads)),
		}
	}
	for i := range sc.counts {
		sc.counts[i] = 0
		sc.lens[i] = -1
	}
	return sc
}

func (m *machine) release(sc *dispatchScratch) {
	sc.targets = sc.targets[:0]
	for i := range sc.envs {
		sc.envs[i] = sc.envs[i][:0]
		sc.idxs[i] = sc.idxs[i][:0]
	}
	m.scratchPool.Put(sc)
}

func (m *machine) markRunning(k fk, idx int, delta int) {
	m.runningMu.Lock()
	if m.running[k] == nil {
		m.running[k] = make(map[int]int)
	}
	m.running[k][idx] += delta
	if m.running[k][idx] <= 0 {
		delete(m.running[k], idx)
		if len(m.running[k]) == 0 {
			delete(m.running, k)
		}
	}
	m.runningMu.Unlock()
}

// Engine is the Muppet 2.0 runtime for one application.
type Engine struct {
	app *core.App
	cfg Config
	clu *cluster.Cluster

	ring     *hashring.Ring // machines
	machines map[string]*machine
	rec      *recovery.Manager
	ing      *ingress.Driver

	counters *engine.Counters
	tracker  *engine.Tracker
	sink     *engine.Sink
	lost     *engine.LostLog
	reg      *obs.Registry
	tracer   *obs.Tracer
	queries  *query.Counters
	seq      atomic.Uint64
	watchSeq atomic.Uint64
	stopped  atomic.Bool
	done     chan struct{}
	wg       sync.WaitGroup
	// stopMu serializes Stop against RestartWorkers so a rejoin racing
	// a shutdown can never wg.Add a fresh thread loop while wg.Wait is
	// in progress.
	stopMu sync.Mutex
}

// New builds and starts a Muppet 2.0 engine for a validated app.
func New(app *core.App, cfg Config) (*Engine, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	clu := cfg.Cluster
	if clu == nil {
		clu = cluster.New(cluster.Config{Machines: cfg.Machines, SendLatency: cfg.SendLatency})
	}
	e := &Engine{
		app:      app,
		cfg:      cfg,
		clu:      clu,
		machines: make(map[string]*machine),
		counters: engine.NewCounters(),
		tracker:  engine.NewTracker(),
		sink:     engine.NewSink(cfg.OutputCapacity),
		lost:     engine.NewLostLog(0),
		queries:  query.NewCounters(),
		reg:      obs.NewRegistry(),
		tracer:   obs.NewTracer(app.Name(), cfg.Observability),
		done:     make(chan struct{}),
	}
	// The ring spans the full member list — every node derives the same
	// ring from the same names — but runtime state (threads, cache,
	// locks, logs) exists only for the machines this node hosts.
	e.ring = hashring.New(e.clu.MachineNames(), 0)
	// Remote-origin batches are charged to this node's in-flight
	// tracker the moment they land (and credited back if bounced), so
	// Drain covers events handed off by peer nodes.
	e.clu.OnRemoteInflight(func(delta int) { e.tracker.Add(delta) })
	for _, name := range e.clu.LocalNames() {
		m := &machine{
			name:    name,
			running: make(map[fk]map[int]int),
			locks:   newSlateLockTable(),
		}
		if cfg.ReplayLog {
			m.log = wal.New()
		}
		var store slate.Store
		var slateWAL *wal.SlateBatchLog
		if cfg.Store != nil {
			store = &slate.KVStore{Cluster: cfg.Store, Level: cfg.StoreLevel}
			slateWAL = wal.NewSlateBatchLog()
		}
		// The central cache is the sharded store: per-shard locking for
		// the worker threads and group-commit (WAL + multi-put)
		// flushing for the background flusher.
		m.cache = slate.NewSharded(slate.ShardedConfig{
			Shards:        cfg.SlateShards,
			Capacity:      cfg.CacheCapacity,
			Policy:        cfg.FlushPolicy,
			Store:         store,
			WAL:           slateWAL,
			MaxFlushBatch: cfg.FlushBatch,
			WALCheckpoint: true,
			TTLFor:        app.TTLFor,
		})
		for i := 0; i < cfg.ThreadsPerMachine; i++ {
			th := &thread{idx: i}
			th.q.Store(queue.New[engine.Envelope](cfg.QueueCapacity, cfg.QueuePolicy))
			m.threads = append(m.threads, th)
		}
		e.machines[name] = m
		name := name
		e.clu.SetHandler(name, func(worker string, ev event.Event) error {
			return e.dispatchLocal(e.machines[name], worker, ev)
		})
		e.clu.SetBatchHandler(name, func(ds []cluster.Delivery) []error {
			return e.dispatchLocalBatch(e.machines[name], ds)
		})
	}
	// The node answers peer queries by running the node-local pipeline
	// for whichever hosted machine the coordinator addressed.
	e.clu.SetQueryHandler(func(machine string, req []byte) ([]byte, error) {
		spec, err := query.DecodeRequest(req)
		if err != nil {
			return nil, err
		}
		nr, err := e.queryLocal(machine, spec)
		if err != nil {
			return nil, err
		}
		return query.EncodeResponse(nr)
	})
	// The recovery manager subscribes to the master's failure and
	// rejoin broadcasts and owns the whole crash-to-healthy protocol;
	// the engine only reports failed sends through its detector.
	e.rec = recovery.NewManager(recovery.Deps{
		Cluster:   e.clu,
		Adapter:   &recoveryAdapter{e: e},
		Lost:      e.lost,
		Counters:  e.counters,
		Tracker:   e.tracker,
		Store:     e.slateStore(),
		Redeliver: cfg.ReplayLog,
	}, cfg.Recovery)
	e.ing = &ingress.Driver{
		Ops:            ingressOps{e: e},
		Counters:       e.counters,
		Tracker:        e.tracker,
		Lost:           e.lost,
		Tracer:         e.tracer,
		Machines:       len(e.clu.MachineNames()),
		Policy:         cfg.QueuePolicy,
		OverflowStream: cfg.OverflowStream,
		SourceThrottle: cfg.SourceThrottle,
	}
	e.registerObs()
	e.start()
	return e, nil
}

// slateStore returns the durable slate adapter, nil without a store.
func (e *Engine) slateStore() slate.Store {
	if e.cfg.Store == nil {
		return nil
	}
	return &slate.KVStore{Cluster: e.cfg.Store, Level: e.cfg.StoreLevel}
}

func (e *Engine) start() {
	for _, m := range e.machines {
		for _, th := range m.threads {
			e.wg.Add(1)
			go e.threadLoop(m, th, th.queue())
		}
		if e.cfg.FlushPolicy == slate.Interval {
			e.wg.Add(1)
			go e.flusherLoop(m)
		}
	}
}

// flusherLoop is the per-machine background I/O thread: it writes
// dirty slates to the durable store so map and update calls never
// block on storage (Section 4.5).
func (e *Engine) flusherLoop(m *machine) {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-ticker.C:
			if e.tracer != nil {
				t0 := time.Now()
				m.cache.FlushDirty()
				e.tracer.ObserveFlushSettle(time.Since(t0))
			} else {
				m.cache.FlushDirty()
			}
		}
	}
}

// selectThread implements the 2.0 queue-selection rule: follow the
// thread already processing this (function, key) if any, otherwise the
// primary unless it is heavily loaded and the secondary is free to
// take the spill. lenOf reports a thread queue's depth; the per-event
// path reads the live queue, the batch path substitutes a cached view
// so a batch pays the queue-length locks once, not per delivery.
func (e *Engine) selectThread(m *machine, k fk, lenOf func(int) int) int {
	p, s := e.candidates(m, k)
	if e.cfg.DisableDualQueue || s == p {
		return p
	}
	m.runningMu.Lock()
	holders := m.running[k]
	_, onP := holders[p]
	_, onS := holders[s]
	m.runningMu.Unlock()
	switch {
	case onP:
		// The primary thread is processing this key right now:
		// follow it.
		return p
	case onS:
		// The secondary thread is processing this key: follow it.
		return s
	case spill(lenOf(p), lenOf(s), e.cfg.SecondarySpillFactor):
		// Neither thread is on this key and the primary is heavily
		// loaded by other events: balance onto the secondary.
		return s
	}
	return p
}

// dispatchLocal places one delivery on the selected thread queue on
// the receiving machine. The worker argument carries the destination
// function name.
func (e *Engine) dispatchLocal(m *machine, function string, ev event.Event) error {
	target := e.selectThread(m, fk{fn: function, key: ev.Key}, func(i int) int {
		return m.threads[i].queue().Len()
	})
	env := engine.Envelope{Func: function, Ev: ev}
	if e.tracer.Sample() {
		env.Ev.TraceEnq = time.Now().UnixNano()
	}
	if m.log != nil {
		// Log before enqueueing so the consumer can acknowledge as
		// soon as it finishes, whatever the interleaving.
		env.WalSeq = m.log.Append(env)
	}
	err := m.threads[target].queue().Put(env)
	if err != nil && m.log != nil {
		// The delivery was rejected; it is accounted by the overflow
		// path, not the replay log.
		m.log.Ack(env.WalSeq)
	}
	return err
}

// dispatchLocalBatch places a whole machine-addressed batch on the
// local thread queues: queue selection runs per delivery (the dual-
// queue rule is per key) against a once-per-batch snapshot of queue
// depths, and the enqueue itself is one PutBatch — one lock
// acquisition — per target thread. The returned slice is parallel to
// ds; nil entries were accepted.
func (e *Engine) dispatchLocalBatch(m *machine, ds []cluster.Delivery) []error {
	sc := m.scratch()
	defer m.release(sc)
	// Queue depths are sampled lazily once and advanced as the batch
	// assigns, instead of taking two queue locks per delivery; the
	// spill heuristic only needs a consistent relative view.
	lenOf := func(i int) int {
		if sc.lens[i] < 0 {
			sc.lens[i] = m.threads[i].queue().Len()
		}
		return sc.lens[i]
	}
	// Pass 1: select a thread per delivery; count per-thread loads so
	// pass 2 can fill exact-size envelope batches (no append-growth
	// copies of the envelope structs).
	for i := range ds {
		t := e.selectThread(m, fk{fn: ds[i].Worker, key: ds[i].Ev.Key}, lenOf)
		sc.targets = append(sc.targets, int32(t))
		sc.counts[t]++
		sc.lens[t]++
	}
	for t, n := range sc.counts {
		if n > 0 && cap(sc.envs[t]) < n {
			sc.envs[t] = make([]engine.Envelope, 0, n)
			sc.idxs[t] = make([]int, 0, n)
		}
	}
	for i := range ds {
		t := sc.targets[i]
		env := engine.Envelope{Func: ds[i].Worker, Ev: ds[i].Ev}
		if e.tracer.Sample() {
			env.Ev.TraceEnq = time.Now().UnixNano()
		}
		if m.log != nil {
			env.WalSeq = m.log.Append(env)
		}
		sc.envs[t] = append(sc.envs[t], env)
		sc.idxs[t] = append(sc.idxs[t], i)
	}
	var errs []error
	for t, envs := range sc.envs {
		if len(envs) == 0 {
			continue
		}
		accepted, err := m.threads[t].queue().PutBatch(envs)
		if err == nil {
			continue
		}
		if errs == nil {
			errs = make([]error, len(ds))
		}
		for _, i := range sc.idxs[t][accepted:] {
			errs[i] = err
		}
		if m.log != nil {
			for _, env := range envs[accepted:] {
				m.log.Ack(env.WalSeq)
			}
		}
	}
	return errs
}

// spill reports whether the primary queue is so much longer than the
// secondary that the event should be placed on the secondary.
func spill(primaryLen, secondaryLen, factor int) bool {
	return primaryLen > factor*secondaryLen+4
}

// candidates returns the primary and secondary thread indexes for a
// (function, key) pair, using two independent hashes. The pair is
// hashed without concatenating it (hashring.HashPair): this runs once
// per delivery on the dispatch hot path, and the concatenation's
// allocation was pure overhead.
func (e *Engine) candidates(m *machine, k fk) (int, int) {
	n := len(m.threads)
	if n == 1 {
		return 0, 0
	}
	h1 := hashring.HashPair(k.fn, 0x00, k.key)
	h2 := hashring.HashPair(k.key, 0x01, k.fn)
	p := int(h1 % uint64(n))
	s := int(h2 % uint64(n))
	if s == p {
		s = (p + 1) % n
	}
	return p, s
}

// threadLoop is one worker thread: take the next event from the
// queue, run the map or update function, update slates, send outputs,
// repeat. The queue is passed explicitly because a machine revival
// installs a fresh queue (and a fresh loop) after a crash closed the
// old one.
func (e *Engine) threadLoop(m *machine, th *thread, q *queue.Queue[engine.Envelope]) {
	defer e.wg.Done()
	// The loop's reusable invocation scratch. Owned by this goroutine
	// alone — a post-crash restart spawns a fresh loop (with fresh
	// scratch) that may briefly overlap the old loop's final
	// invocation, so the emitter cannot live on the shared thread slot.
	var em collectEmitter
	for {
		env, err := q.Get()
		if err != nil {
			return
		}
		// A ring change (failover or rejoin) while the envelope was
		// queued — or while it was being routed — may have moved the
		// key: forward it to the current owner rather than break the
		// single-writer property.
		if e.ring.LookupRoute(env.Func, env.Ev.Key) != m.name {
			if m.log != nil && env.WalSeq != 0 {
				m.log.Ack(env.WalSeq) // handled here by forwarding
			}
			e.deliver(env.Func, env.Ev, false)
			e.tracker.Dec()
			continue
		}
		k := fk{fn: env.Func, key: env.Ev.Key}
		var sp *obs.Span
		if env.Ev.TraceEnq != 0 {
			sp = e.tracer.Start(env.Ev.Stream, env.Ev.Ingress, env.Ev.TraceEnq)
		}
		m.markRunning(k, th.idx, +1)
		e.process(m, &em, env, sp)
		m.markRunning(k, th.idx, -1)
		e.tracer.Finish(sp)
		if m.log != nil && env.WalSeq != 0 {
			m.log.Ack(env.WalSeq)
		}
		e.counters.Processed.Add(1)
		e.tracker.Dec()
	}
}

func (e *Engine) process(m *machine, em *collectEmitter, env engine.Envelope, sp *obs.Span) {
	f := e.app.Function(env.Func)
	if f == nil {
		return
	}
	em.reset(e.app, env.Func, f.Kind == core.KindUpdate)
	switch f.Kind {
	case core.KindMap:
		f.Mapper.Map(em, env.Ev)
	case core.KindUpdate:
		sk := slate.Key{Updater: env.Func, Key: env.Ev.Key}
		lock := e.acquireSlate(m, sk)
		if f.Codec != nil {
			// Typed updater: hand it the cached decoded object (decoded
			// at most once per cache fill), let it mutate in place, and
			// mark the entry dirty; the bytes are re-encoded once per
			// flush batch or external read, not here. The per-slate lock
			// serializes mutation; the cache pin taken by GetDecoded
			// keeps the concurrent flusher off the object meanwhile.
			// A read error (store failure, undecodable row) falls back
			// to a fresh zero-value slate — the same disposition the
			// byte path gives an always-replacing updater — and is
			// counted in the cache's DecodeErrors.
			v, _ := m.cache.GetDecoded(sk, f.Codec)
			if v == nil {
				v = f.Codec.New()
			}
			f.Updater.(core.DecodedUpdater).UpdateDecoded(em, env.Ev, v)
			m.cache.PutDecoded(sk, v, f.Codec)
			e.counters.SlateUpdates.Add(1)
			e.counters.ObserveLatency(env.Ev)
		} else {
			sl, _ := m.cache.Get(sk)
			f.Updater.Update(em, env.Ev, sl)
			if em.replaced {
				m.cache.Put(sk, em.newSlate)
				e.counters.SlateUpdates.Add(1)
				e.counters.ObserveLatency(env.Ev)
			}
		}
		e.releaseSlate(m, sk, lock)
	}
	sp.MarkExec()
	if len(em.outputs) == 0 {
		return
	}
	// One allocation holds every value this invocation published; the
	// derived events slice it. The emitter's scratch arena cannot be
	// handed out directly — the next invocation on this thread reuses
	// it, while queues, the replay log, and the egress sink retain the
	// events indefinitely.
	var arena []byte
	if len(em.vals) > 0 {
		arena = make([]byte, len(em.vals))
		copy(arena, em.vals)
	}
	for _, out := range em.outputs {
		e.route(e.derive(out, arena, env.Ev))
	}
	sp.MarkEmit()
}

// acquireSlate takes the per-slate lock from the machine's striped
// table, recording how many workers contend for the slate; Muppet
// 2.0's dispatch bounds this at two.
func (e *Engine) acquireSlate(m *machine, sk slate.Key) *slateLock {
	return m.locks.acquire(sk, e.counters.ObserveContention)
}

func (e *Engine) releaseSlate(m *machine, sk slate.Key, l *slateLock) {
	m.locks.release(sk, l)
}

// collectEmitter gathers one invocation's outputs. One emitter lives
// in each worker thread and is reset between invocations: the outputs
// slice and the value scratch arena keep their capacity, so a
// steady-state invocation allocates nothing inside the emitter.
// Published values are copied once, into the arena; process()
// materializes them for the derived events afterwards.
type collectEmitter struct {
	app      *core.App
	function string
	isUpdate bool
	outputs  []emitted
	vals     []byte // scratch arena holding every published value
	newSlate []byte
	replaced bool
	err      error
}

// emitted is one published output: its stream and key, and the bounds
// of its value in the emitter's scratch arena.
type emitted struct {
	stream, key string
	off, end    int
}

func (c *collectEmitter) reset(app *core.App, function string, isUpdate bool) {
	c.app = app
	c.function = function
	c.isUpdate = isUpdate
	c.outputs = c.outputs[:0]
	c.vals = c.vals[:0]
	c.newSlate = nil
	c.replaced = false
	c.err = nil
}

// Publish implements core.Emitter.
func (c *collectEmitter) Publish(stream, key string, value []byte) error {
	if !c.app.MayPublish(c.function, stream) {
		err := core.ErrUndeclaredStream{Function: c.function, Stream: stream}
		if c.err == nil {
			c.err = err
		}
		return err
	}
	off := len(c.vals)
	c.vals = append(c.vals, value...)
	c.outputs = append(c.outputs, emitted{stream: stream, key: key, off: off, end: len(c.vals)})
	return nil
}

// ReplaceSlate implements core.Emitter.
func (c *collectEmitter) ReplaceSlate(value []byte) {
	if !c.isUpdate {
		panic(fmt.Sprintf("engine2: map function %s called ReplaceSlate", c.function))
	}
	// The slate cache retains the value, so it gets its own allocation
	// (never the reused arena); append to a non-nil empty slice so that
	// an empty slate stays distinct from "no slate" (nil) on the next
	// update call.
	c.newSlate = append([]byte{}, value...)
	c.replaced = true
}

// derive stamps an emitted record into a routable event, slicing its
// value out of the invocation's arena. The three-index slice keeps a
// downstream append from growing into the next output's bytes.
func (e *Engine) derive(out emitted, arena []byte, in event.Event) event.Event {
	var value []byte
	if out.end > out.off {
		value = arena[out.off:out.end:out.end]
	}
	return event.Event{
		Stream:  out.stream,
		TS:      in.TS + 1,
		Seq:     e.seq.Add(1),
		Key:     out.key,
		Value:   value,
		Ingress: in.Ingress,
	}
}

// route fans an event out to every subscriber of its stream.
func (e *Engine) route(ev event.Event) {
	if e.app.IsOutput(ev.Stream) {
		e.sink.Record(ev)
	}
	for _, fn := range e.app.Subscribers(ev.Stream) {
		e.deliver(fn, ev, false)
	}
}

// deliver routes an event to the machine owning <key, fn> and applies
// the overflow and failure semantics.
func (e *Engine) deliver(fn string, ev event.Event, throttle bool) {
	if e.stopped.Load() {
		// Deliveries offered to a stopped engine used to vanish without
		// a trace; the streaming-ingress contract is that every drop is
		// logged with its reason.
		e.lost.Record(fn, ev, engine.LossStopped)
		return
	}
	for {
		machineName := e.ring.LookupRoute(fn, ev.Key)
		if machineName == "" {
			e.counters.LostMachineDown.Add(1)
			e.lost.Record(fn, ev, engine.LossNoRoute)
			return
		}
		e.tracker.Inc()
		err := e.clu.Send(machineName, fn, ev)
		switch {
		case err == nil:
			if !e.clu.IsLocal(machineName) {
				// Handed off: the hosting node's tracker took the event
				// over when it landed (OnRemoteInflight).
				e.tracker.Dec()
				// A delivered batch proves the machine reachable; any
				// suspicion run it had accumulated resets.
				e.rec.Detector().ObserveSendOK(machineName)
			}
			e.counters.Emitted.Add(1)
			return
		case err == cluster.ErrMachineDown:
			e.tracker.Dec()
			// Detect-on-send: the recovery detector notifies the master,
			// whose broadcast drives the failover protocol. The event
			// itself is lost and logged, not resent (Section 4.3).
			e.rec.Detector().ObserveSendFailure(machineName)
			e.counters.LostMachineDown.Add(1)
			e.lost.Record(fn, ev, engine.LossMachineDown)
			return
		case cluster.IsTransient(err):
			e.tracker.Dec()
			// The bounded retry budget was exhausted by network blips;
			// the machine may be healthy. Raise suspicion — K
			// consecutive exhausted sends escalate to machine-down
			// through the detector — and account the loss under its own
			// reason so flaky-network losses stay distinguishable from
			// declared-dead losses.
			e.rec.Detector().ObserveTransientFailure(machineName)
			e.counters.LostMachineDown.Add(1)
			e.lost.Record(fn, ev, engine.LossTransient)
			return
		case err == queue.ErrOverflow:
			e.tracker.Dec()
			if throttle {
				time.Sleep(200 * time.Microsecond)
				continue
			}
			switch e.cfg.QueuePolicy {
			case queue.Divert:
				if e.cfg.OverflowStream != "" && ev.Stream != e.cfg.OverflowStream {
					div := ev
					div.Stream = e.cfg.OverflowStream
					e.counters.Diverted.Add(1)
					e.route(div)
				} else {
					e.counters.LostOverflow.Add(1)
					e.lost.Record(fn, ev, engine.LossOverflow)
				}
			default:
				e.counters.LostOverflow.Add(1)
				e.lost.Record(fn, ev, engine.LossOverflow)
			}
			return
		case err == queue.ErrClosed:
			// The destination queue was closed between the liveness
			// check and the enqueue — the machine is crashing (or the
			// engine stopping) under us. Account it like any other
			// delivery to a dying machine; detection is left to the
			// next send, which fails with ErrMachineDown.
			e.tracker.Dec()
			e.counters.LostMachineDown.Add(1)
			e.lost.Record(fn, ev, engine.LossMachineDown)
			return
		default:
			e.tracker.Dec()
			e.counters.LostOverflow.Add(1)
			e.lost.Record(fn, ev, engine.LossOverflow)
			return
		}
	}
}

// Ingest feeds one external input event into the application.
func (e *Engine) Ingest(ev event.Event) {
	if !e.app.IsInput(ev.Stream) {
		panic(fmt.Sprintf("engine2: Ingest on non-input stream %s", ev.Stream))
	}
	if ev.Seq == 0 {
		ev.Seq = e.seq.Add(1)
	}
	if ev.Ingress == 0 {
		ev.Ingress = time.Now().UnixNano()
	}
	e.counters.Ingested.Add(1)
	if e.app.IsOutput(ev.Stream) {
		e.sink.Record(ev)
	}
	for _, fn := range e.app.Subscribers(ev.Stream) {
		e.deliver(fn, ev, e.cfg.SourceThrottle)
	}
}

// IngestBatch feeds a batch of external input events into the
// application through the shared ingress driver, amortizing the
// per-event ingress costs (fan-out resolution, cluster sends, queue
// locks) per destination-machine group. It returns the number of
// events whose every subscriber delivery was accepted; when deliveries
// were dropped, the error is a *ingress.BatchError tallying the losses
// by reason (each also recorded in LostEvents). A batch containing a
// non-input stream is rejected whole with *ingress.NotInputError
// before any side effects.
func (e *Engine) IngestBatch(evs []event.Event) (int, error) {
	return e.ing.IngestBatch(evs)
}

// IngestCtx ingests one event, reporting backpressure and overflow
// instead of silently dropping: while the destination queue is full
// the call retries until the context is done, then fails with an error
// wrapping ingress.ErrBackpressure.
func (e *Engine) IngestCtx(ctx context.Context, ev event.Event) error {
	return e.ing.IngestCtx(ctx, ev)
}

// ingressOps adapts the engine to the shared ingress driver: one ring
// routes <function, key> to a machine, and the worker address on that
// machine is the function name itself.
type ingressOps struct {
	e *Engine
}

func (o ingressOps) Stopped() bool                      { return o.e.stopped.Load() }
func (o ingressOps) IsInput(stream string) bool         { return o.e.app.IsInput(stream) }
func (o ingressOps) IsOutput(stream string) bool        { return o.e.app.IsOutput(stream) }
func (o ingressOps) Subscribers(stream string) []string { return o.e.app.Subscribers(stream) }
func (o ingressOps) NextSeq() uint64                    { return o.e.seq.Add(1) }
func (o ingressOps) RecordOutput(ev event.Event)        { o.e.sink.Record(ev) }
func (o ingressOps) FuncOf(worker string) string        { return worker }
func (o ingressOps) Route(fn, key string) (string, string) {
	return o.e.ring.LookupRoute(fn, key), fn
}
func (o ingressOps) SendBatch(machine string, ds []cluster.Delivery) (int, []cluster.BatchReject, error) {
	accepted, rejects, err := o.e.clu.SendBatch(machine, ds)
	if err == nil && !o.e.clu.IsLocal(machine) {
		o.e.rec.Detector().ObserveSendOK(machine)
		if accepted > 0 {
			// The driver charged the tracker for the whole batch before
			// the send; accepted deliveries now belong to the hosting
			// node's tracker (it charged itself on landing), so retire
			// them here. The driver itself retires the rejects.
			o.e.tracker.Add(-accepted)
		}
	}
	return accepted, rejects, err
}
func (o ingressOps) Send(machine, worker string, ev event.Event) error {
	err := o.e.clu.Send(machine, worker, ev)
	if err == nil && !o.e.clu.IsLocal(machine) {
		o.e.tracker.Dec()
		o.e.rec.Detector().ObserveSendOK(machine)
	}
	return err
}
func (o ingressOps) ObserveSendFailure(machine string) {
	o.e.rec.Detector().ObserveSendFailure(machine)
}
func (o ingressOps) ObserveTransientFailure(machine string) {
	o.e.rec.Detector().ObserveTransientFailure(machine)
}
func (o ingressOps) Reroute(ev event.Event) { o.e.route(ev) }

// Subscribe attaches a live feed to a declared output stream: events
// arrive on the subscription's channel in publication order, and a
// slow subscriber's full buffer drops (and counts) rather than
// blocking worker threads. buf <= 0 selects the default buffer (256).
// Like Ingest on a non-input stream, subscribing to a stream the
// application does not declare as an output panics — the feed would
// never fire.
func (e *Engine) Subscribe(stream string, buf int) *engine.Subscription {
	if !e.app.IsOutput(stream) {
		panic(fmt.Sprintf("engine2: Subscribe on non-output stream %s", stream))
	}
	return e.sink.Subscribe(stream, buf)
}

// AttachOutput registers a synchronous handler for a declared output
// stream's events — the pluggable egress sink. It panics if the
// stream is not a declared output.
func (e *Engine) AttachOutput(stream string, h engine.OutputHandler) {
	if !e.app.IsOutput(stream) {
		panic(fmt.Sprintf("engine2: AttachOutput on non-output stream %s", stream))
	}
	e.sink.Attach(stream, h)
}

// Drain blocks until every accepted event has been fully processed.
func (e *Engine) Drain() { e.tracker.Wait() }

// Stop drains, halts all threads, flushes dirty slates, and closes
// the cluster transport. It is idempotent.
func (e *Engine) Stop() {
	if e.stopped.Swap(true) {
		return
	}
	e.tracker.Wait()
	e.stopMu.Lock()
	close(e.done)
	for _, m := range e.machines {
		for _, th := range m.threads {
			th.queue().Close()
		}
	}
	e.wg.Wait()
	e.stopMu.Unlock()
	for _, m := range e.machines {
		m.cache.FlushDirty()
	}
	// Close the egress sink last: subscriber channels close only after
	// every in-flight event has been recorded.
	e.sink.Close()
	e.clu.Close()
}

// CrashMachine simulates a machine failure with the stock §4.3
// disposition, via the shared recovery subsystem: queued events and
// unflushed slates on the machine are lost (and logged), the replay
// log is discarded, and flush batches retained in the slate
// group-commit WAL are replayed into the store. Detection is left to
// the next failed send.
func (e *Engine) CrashMachine(name string) (lostQueued, lostDirtySlates int) {
	if e.clu.Machine(name) == nil {
		return 0, 0
	}
	rep := e.rec.Crash(name)
	return rep.QueuedLost, rep.DirtyLost
}

// CrashMachineAndReplay crashes a machine and drives the full
// master-coordinated failover through the recovery subsystem,
// redelivering the machine's unacknowledged deliveries from the replay
// log to the keys' new owners — the replay capability the paper names
// as future work (§4.3). Replay is at-least-once: deliveries that were
// mid-process at crash time are applied again. It panics if ReplayLog
// is not configured. Unflushed slates are still lost (the slate store,
// not the event log, is their durability), but WAL-retained flush
// batches are restored before the new owners read the store.
func (e *Engine) CrashMachineAndReplay(name string) (replayed, lostDirtySlates int) {
	m := e.machines[name]
	if m == nil {
		return 0, 0
	}
	if m.log == nil {
		panic("engine2: CrashMachineAndReplay requires Config.ReplayLog")
	}
	rep := e.rec.CrashAndFailover(name)
	return rep.Redelivered, rep.DirtyLost
}

// RejoinMachine revives a crashed machine through the recovery
// subsystem: worker threads restart on fresh queues, the master
// broadcasts the rejoin, the ring re-enables the machine, and its
// central slate cache is warmed from the durable store (unless
// disabled by Config.Recovery).
func (e *Engine) RejoinMachine(name string) (recovery.RejoinReport, error) {
	return e.rec.Rejoin(name)
}

// RecoveryStatus snapshots the recovery subsystem: per-machine
// liveness and ring membership, failover/rejoin counters, WAL replay
// totals, and the latest incident reports.
func (e *Engine) RecoveryStatus() recovery.Status { return e.rec.Status() }

// Recovery exposes the engine's recovery manager (for latency
// histograms and tests).
func (e *Engine) Recovery() *recovery.Manager { return e.rec }

// recoveryAdapter is the engine's implementation of the recovery
// subsystem's engine-facing surface (recovery.Adapter).
type recoveryAdapter struct {
	e *Engine
}

func (a *recoveryAdapter) RemoveFromRing(machine string) { a.e.ring.Disable(machine) }
func (a *recoveryAdapter) RestoreToRing(machine string)  { a.e.ring.Enable(machine) }

func (a *recoveryAdapter) DrainQueues(machine string, drained func(function string, ev event.Event)) {
	m := a.e.machines[machine]
	if m == nil {
		return
	}
	for _, th := range m.threads {
		// Drain closes the queue atomically, so the machine's thread
		// loops exit immediately instead of consuming a backlog a dead
		// machine could never have processed.
		for _, env := range th.queue().Drain() {
			drained(env.Func, env.Ev)
			a.e.tracker.Dec()
		}
	}
}

func (a *recoveryAdapter) CrashSlates(machine string) ([]*wal.SlateBatchLog, int) {
	m := a.e.machines[machine]
	if m == nil {
		return nil, 0
	}
	var wals []*wal.SlateBatchLog
	if s, ok := m.cache.(*slate.Sharded); ok {
		wals = append(wals, s.WAL())
	}
	return wals, m.cache.Crash()
}

func (a *recoveryAdapter) UnackedEvents(machine string) []engine.Envelope {
	m := a.e.machines[machine]
	if m == nil || m.log == nil {
		return nil
	}
	return m.log.Unacked()
}

func (a *recoveryAdapter) Redeliver(function string, ev event.Event) {
	a.e.deliver(function, ev, false)
}

func (a *recoveryAdapter) RestartWorkers(machine string) {
	m := a.e.machines[machine]
	if m == nil {
		return
	}
	// Under stopMu: Stop cannot begin (or finish) its wg.Wait while
	// fresh loops are being added, and once Stop has swapped stopped we
	// refuse to start any.
	a.e.stopMu.Lock()
	defer a.e.stopMu.Unlock()
	if a.e.stopped.Load() {
		return
	}
	// Updates that were mid-process when the machine died completed
	// against the already-crashed cache and re-inserted their (now
	// dead-lineage) values; drop them so they cannot shadow the store
	// once the ring routes the keys back here.
	for _, k := range m.cache.Keys() {
		m.cache.Delete(k)
	}
	for _, th := range m.threads {
		th.q.Replace(queue.New[engine.Envelope](a.e.cfg.QueueCapacity, a.e.cfg.QueuePolicy))
		a.e.wg.Add(1)
		go a.e.threadLoop(m, th, th.queue())
	}
}

func (a *recoveryAdapter) FlushSlates() { a.e.FlushSlates() }

func (a *recoveryAdapter) DropMisplacedSlates() {
	for name, m := range a.e.machines {
		var misplaced []slate.Key
		for _, k := range m.cache.Keys() {
			if a.e.ring.LookupRoute(k.Updater, k.Key) != name {
				misplaced = append(misplaced, k)
			}
		}
		if len(misplaced) == 0 {
			continue
		}
		// An update that slipped in between the handover flush and the
		// ring flip may have re-dirtied a moved key; persist it before
		// the eviction or the count would silently vanish. If the store
		// is unreachable, keep the entries — a stale-copy hazard beats
		// dropping dirty data, and the next ring change retries.
		if _, err := m.cache.FlushDirty(); err != nil {
			continue
		}
		for _, k := range misplaced {
			m.cache.Delete(k)
		}
	}
}

func (a *recoveryAdapter) WarmSlates(machine string, limit int) int {
	m := a.e.machines[machine]
	if m == nil || a.e.cfg.Store == nil {
		return 0
	}
	// Collect the machine's keys first: the store holds its node lock
	// across the scan callback, so the load-through reads must happen
	// after the scan returns. ScanUntil stops at the warm limit rather
	// than sweeping the whole store.
	var keys []slate.Key
	for _, updater := range a.e.app.Updaters() {
		if len(keys) >= limit {
			break
		}
		a.e.cfg.Store.ScanUntil(updater, func(key string, _ []byte) bool {
			if a.e.ring.LookupRoute(updater, key) == machine {
				k := slate.Key{Updater: updater, Key: key}
				if _, ok := m.cache.Peek(k); !ok {
					keys = append(keys, k)
				}
			}
			return len(keys) < limit
		})
	}
	warmed := 0
	for _, k := range keys {
		// Get loads through from the store and caches the slate clean —
		// exactly the state a warm cache should be in.
		if v, err := m.cache.Get(k); err == nil && v != nil {
			warmed++
		}
	}
	return warmed
}

func (a *recoveryAdapter) RingMembers() map[string]bool { return a.e.ring.Members() }

// MachineFor reports which machine owns <key, fn> on the current
// ring.
func (e *Engine) MachineFor(fn, key string) string {
	return e.ring.LookupRoute(fn, key)
}

// Slate returns the current slate for <updater, key>, reading the
// owning machine's central cache (falling through to the durable
// store on a miss). The HTTP slate-fetch service resolves slates the
// same way. When the owner is hosted by another node, the local read
// falls back to the shared durable store (the authoritative copy lags
// the owner's cache by at most one flush interval); without a store it
// returns nil — query the owning node.
func (e *Engine) Slate(updater, key string) []byte {
	name := e.ring.LookupRoute(updater, key)
	if name == "" {
		return nil
	}
	m := e.machines[name]
	if m == nil {
		if st := e.slateStore(); st != nil {
			v, _, _ := st.Load(slate.Key{Updater: updater, Key: key})
			return v
		}
		return nil
	}
	v, _ := m.cache.Get(slate.Key{Updater: updater, Key: key})
	return v
}

// SlateCached returns the slate only if it is resident in the owning
// machine's cache (no store fallback), with its residency flag. A
// remotely hosted owner has no local cache: (nil, false).
func (e *Engine) SlateCached(updater, key string) ([]byte, bool) {
	name := e.ring.LookupRoute(updater, key)
	if name == "" {
		return nil, false
	}
	m := e.machines[name]
	if m == nil {
		return nil, false
	}
	return m.cache.Peek(slate.Key{Updater: updater, Key: key})
}

// Slates returns all cached slates of an updater merged across
// machines.
func (e *Engine) Slates(updater string) map[string][]byte {
	out := make(map[string][]byte)
	for _, m := range e.machines {
		for _, k := range m.cache.Keys() {
			if k.Updater != updater {
				continue
			}
			if v, ok := m.cache.Peek(k); ok {
				out[k.Key] = v
			}
		}
	}
	return out
}

// StoredSlates bulk-reads all of an updater's slates from the durable
// key-value store (the "large-volume row reads" path of Section 5).
// It returns nil when the engine runs without persistence. Callers
// should flush first if they need the newest state; the cache, not the
// store, is the up-to-date view (Section 4.4).
func (e *Engine) StoredSlates(updater string) map[string][]byte {
	if e.cfg.Store == nil {
		return nil
	}
	out := make(map[string][]byte)
	e.cfg.Store.Scan(updater, func(key string, stored []byte) {
		raw, err := slate.Decode(stored)
		if err != nil {
			return
		}
		out[key] = raw
	})
	return out
}

// FlushSlates forces every dirty cached slate to the durable store.
func (e *Engine) FlushSlates() {
	for _, m := range e.machines {
		m.cache.FlushDirty()
	}
}

// Output returns the recorded events of a declared output stream.
func (e *Engine) Output(stream string) []event.Event { return e.sink.Events(stream) }

// LostEvents exposes the log of abandoned deliveries ("logged as
// lost", §4.3) for later processing and debugging.
func (e *Engine) LostEvents() *engine.LostLog { return e.lost }

// Stats snapshots the engine counters.
func (e *Engine) Stats() engine.Stats {
	s := e.counters.Snapshot()
	s.OutputDropped = e.sink.Dropped()
	return s
}

// Counters exposes the live counters.
func (e *Engine) Counters() *engine.Counters { return e.counters }

// Cluster exposes the simulated machine cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.clu }

// App returns the application this engine runs.
func (e *Engine) App() *core.App { return e.app }

// Updaters returns the application's update function names.
func (e *Engine) Updaters() []string { return e.app.Updaters() }

// CacheStats aggregates central-cache statistics across machines.
func (e *Engine) CacheStats() slate.CacheStats {
	var total slate.CacheStats
	for _, m := range e.machines {
		s := m.cache.Stats()
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.StoreLoads += s.StoreLoads
		total.StoreSaves += s.StoreSaves
		total.Evictions += s.Evictions
		total.DirtyLost += s.DirtyLost
		total.DecodeErrors += s.DecodeErrors
		total.EncodeErrors += s.EncodeErrors
		total.Size += s.Size
	}
	return total
}

// FlushStats aggregates the central stores' group-commit counters
// across machines (flush rounds, batches, records, failed batches).
func (e *Engine) FlushStats() slate.FlushStats {
	var total slate.FlushStats
	for _, m := range e.machines {
		if s, ok := m.cache.(*slate.Sharded); ok {
			total.Add(s.FlushStats())
		}
	}
	return total
}

// QueueStats returns per-thread queue statistics keyed by
// "machine/thread-index".
func (e *Engine) QueueStats() map[string]queue.Stats {
	out := make(map[string]queue.Stats)
	for name, m := range e.machines {
		for _, th := range m.threads {
			out[fmt.Sprintf("%s/%d", name, th.idx)] = th.stats()
		}
	}
	return out
}

// MachineAccepted returns the number of deliveries accepted per
// machine, the load-balance signal the scaling experiment reports.
func (e *Engine) MachineAccepted() map[string]uint64 {
	out := make(map[string]uint64)
	for name, m := range e.machines {
		var total uint64
		for _, th := range m.threads {
			total += th.stats().Accepted
		}
		out[name] = total
	}
	return out
}

// CacheTotals returns aggregate (store loads, hits, misses) across the
// central caches.
func (e *Engine) CacheTotals() (loads, hits, misses uint64) {
	s := e.CacheStats()
	return s.StoreLoads, s.Hits, s.Misses
}

// StoreSaves returns the total slate writes issued to the durable
// store across all central caches.
func (e *Engine) StoreSaves() uint64 {
	return e.CacheStats().StoreSaves
}

// MaxQueueDepth returns the deepest any thread queue ever got.
func (e *Engine) MaxQueueDepth() int {
	max := 0
	for _, m := range e.machines {
		for _, th := range m.threads {
			if d := th.stats().MaxDepth; d > max {
				max = d
			}
		}
	}
	return max
}

// AcceptedPerQueue returns the accepted-delivery count of every thread
// queue.
func (e *Engine) AcceptedPerQueue() []uint64 {
	var out []uint64
	for _, m := range e.machines {
		for _, th := range m.threads {
			out = append(out, th.stats().Accepted)
		}
	}
	return out
}

// LargestQueues returns the depth of the most loaded queue per
// machine, the figure the paper's status endpoint reports ("the event
// count of the largest event queues").
func (e *Engine) LargestQueues() map[string]int {
	out := make(map[string]int)
	for name, m := range e.machines {
		max := 0
		for _, th := range m.threads {
			if l := th.queue().Len(); l > max {
				max = l
			}
		}
		out[name] = max
	}
	return out
}
