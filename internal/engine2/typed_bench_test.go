package engine2

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"muppet/internal/core"
	"muppet/internal/event"
	"muppet/internal/kvstore"
	"muppet/internal/slate"
)

// The typed-vs-untyped ingest pair: the same JSON-profile application
// written against the classic byte-slate API (full json.Unmarshal +
// json.Marshal of the slate on every event) and against the typed API
// (slate decoded once on cache fill, mutated in place, encoded once
// per background flush). allocs/op is the headline — the typed run
// must show the per-event slate serialization gone.

// profileSlate is a realistic small profile: a per-section counter map
// plus a total, the shape hot-topics/top-urls style slates take.
type profileSlate struct {
	Counts map[string]int `json:"counts"`
	Total  int            `json:"total"`
}

var benchSections = [8]string{"home", "cart", "search", "products", "account", "help", "api", "checkout"}

func untypedProfileApp() *core.App {
	u := core.UpdateFunc{FName: "U_prof", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		var s profileSlate
		if sl != nil {
			json.Unmarshal(sl, &s)
		}
		if s.Counts == nil {
			s.Counts = make(map[string]int, len(benchSections))
		}
		s.Counts[string(in.Value)]++
		s.Total++
		b, _ := json.Marshal(&s)
		emit.ReplaceSlate(b)
	}}
	return core.NewApp("profiles").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
}

func typedProfileApp() *core.App {
	u := core.Update[profileSlate]("U_prof", func(emit core.Emitter, in event.Event, s *profileSlate) {
		if s.Counts == nil {
			s.Counts = make(map[string]int, len(benchSections))
		}
		s.Counts[string(in.Value)]++
		s.Total++
	})
	return core.NewApp("profiles").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
}

// profileBench drives b.N section hits over 256 profile keys with the
// production-default Interval flush against a device-free store, so
// the typed variant pays its encodes in the background group-commit
// batches, exactly as deployed.
func profileBench(b *testing.B, app *core.App) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 2})
	e, err := New(app, Config{
		Machines: 1, ThreadsPerMachine: 8, QueueCapacity: 4096,
		SourceThrottle: true,
		Store:          store, StoreLevel: kvstore.One,
		FlushPolicy: slate.Interval, FlushInterval: 5 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Stop()
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Ingest(event.Event{
			Stream: "S1",
			TS:     event.Timestamp(i + 1),
			Key:    keys[i%len(keys)],
			Value:  []byte(benchSections[i%len(benchSections)]),
		})
	}
	e.Drain()
}

// BenchmarkSlateAPIUntypedJSON is the baseline: the classic byte-slate
// API pays a full slate unmarshal + marshal per event.
func BenchmarkSlateAPIUntypedJSON(b *testing.B) { profileBench(b, untypedProfileApp()) }

// BenchmarkSlateAPITyped is the same app on the typed API: decode once
// per cache fill, mutate in place, encode once per flush batch.
func BenchmarkSlateAPITyped(b *testing.B) { profileBench(b, typedProfileApp()) }
