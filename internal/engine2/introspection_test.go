package engine2

import (
	"fmt"
	"testing"

	"muppet/internal/event"
)

func TestMachineAcceptedSumsDeliveries(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 3, QueueCapacity: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	const n = 200
	for i := 0; i < n; i++ {
		e.Ingest(checkin(i+1, fmt.Sprintf("r%d", i%7)))
	}
	e.Drain()
	var total uint64
	for _, c := range e.MachineAccepted() {
		total += c
	}
	// Each checkin is one M1 delivery plus one U1 delivery.
	if total != 2*n {
		t.Fatalf("accepted = %d, want %d", total, 2*n)
	}
}

func TestCacheTotalsConsistentWithStats(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 2, QueueCapacity: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 100; i++ {
		e.Ingest(checkin(i+1, fmt.Sprintf("r%d", i%5)))
	}
	e.Drain()
	_, hits, misses := e.CacheTotals()
	if hits+misses == 0 {
		t.Fatal("no cache activity recorded")
	}
	// 5 distinct keys miss once each; the rest hit.
	if misses != 5 {
		t.Fatalf("misses = %d, want 5", misses)
	}
}

func TestMaxQueueDepthAndAcceptedPerQueue(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 2, ThreadsPerMachine: 2, QueueCapacity: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 300; i++ {
		e.Ingest(checkin(i+1, "walmart"))
	}
	e.Drain()
	if e.MaxQueueDepth() <= 0 {
		t.Fatal("MaxQueueDepth never rose above zero")
	}
	per := e.AcceptedPerQueue()
	if len(per) != 4 {
		t.Fatalf("queues = %d, want 4", len(per))
	}
	var sum uint64
	for _, c := range per {
		sum += c
	}
	if sum != 600 {
		t.Fatalf("accepted sum = %d, want 600", sum)
	}
}

func TestStoreSavesZeroWithoutStore(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	e.Ingest(checkin(1, "walmart"))
	e.Drain()
	if e.StoreSaves() != 0 {
		t.Fatalf("StoreSaves = %d without a store", e.StoreSaves())
	}
}

func TestCandidatesDistinctWhenMultipleThreads(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 1, ThreadsPerMachine: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	m := e.machines["machine-00"]
	for i := 0; i < 500; i++ {
		p, s := e.candidates(m, fk{fn: "U1", key: fmt.Sprintf("k%d", i)})
		if p == s {
			t.Fatalf("key k%d: primary == secondary == %d", i, p)
		}
		if p < 0 || p >= 8 || s < 0 || s >= 8 {
			t.Fatalf("candidate out of range: %d %d", p, s)
		}
	}
}

func TestCandidatesSingleThreadDegenerate(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 1, ThreadsPerMachine: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	m := e.machines["machine-00"]
	p, s := e.candidates(m, fk{fn: "U1", key: "k"})
	if p != 0 || s != 0 {
		t.Fatalf("single-thread candidates = %d, %d", p, s)
	}
}

func TestBenchmarkIngestSmoke(t *testing.T) {
	// Exercise the envelope hot path under race detection.
	e, err := New(counterApp(), Config{Machines: 1, ThreadsPerMachine: 4, QueueCapacity: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 500; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: fmt.Sprintf("c%d", i), Value: []byte("checkin:walmart")})
	}
	e.Drain()
	if e.Stats().Processed == 0 {
		t.Fatal("nothing processed")
	}
}
