package engine2

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"muppet/internal/core"
	"muppet/internal/engine"
	"muppet/internal/event"
	"muppet/internal/ingress"
	"muppet/internal/queue"
)

func batchOf(n, from int, retailer string) []event.Event {
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = checkin(from+i, retailer)
	}
	return evs
}

func TestIngestBatchMatchesPerEventResults(t *testing.T) {
	per, err := New(counterApp(), Config{Machines: 4, ThreadsPerMachine: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer per.Stop()
	bat, err := New(counterApp(), Config{Machines: 4, ThreadsPerMachine: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer bat.Stop()

	retailers := []string{"walmart", "bestbuy", "jcpenney", "samsclub", "target"}
	var evs []event.Event
	for i := 0; i < 600; i++ {
		evs = append(evs, checkin(i+1, retailers[i%len(retailers)]))
	}
	for _, ev := range evs {
		per.Ingest(ev)
	}
	for i := 0; i < len(evs); i += 128 {
		end := i + 128
		if end > len(evs) {
			end = len(evs)
		}
		n, err := bat.IngestBatch(evs[i:end])
		if err != nil {
			t.Fatal(err)
		}
		if n != end-i {
			t.Fatalf("batch accepted %d of %d", n, end-i)
		}
	}
	per.Drain()
	bat.Drain()
	for _, r := range retailers {
		if p, b := string(per.Slate("U1", r)), string(bat.Slate("U1", r)); p != b {
			t.Fatalf("%s: per-event=%q batched=%q", r, p, b)
		}
	}
	ps, bs := per.Stats(), bat.Stats()
	if ps.Processed != bs.Processed || ps.Ingested != bs.Ingested || ps.Emitted != bs.Emitted {
		t.Fatalf("stats diverge: per=%+v batch=%+v", ps, bs)
	}
}

// sleepyApp processes slowly so small queues overflow under a burst.
func sleepyApp() *core.App {
	u := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		time.Sleep(200 * time.Microsecond)
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	return core.NewApp("sleepy").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
}

func TestIngestBatchDropPolicyReportsPartial(t *testing.T) {
	e, err := New(sleepyApp(), Config{
		Machines: 1, ThreadsPerMachine: 1,
		QueueCapacity: 8, QueuePolicy: queue.Drop,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	evs := make([]event.Event, 500)
	for i := range evs {
		evs[i] = event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"}
	}
	accepted, ierr := e.IngestBatch(evs)
	e.Drain()
	if accepted == len(evs) && ierr == nil {
		t.Fatal("a 500-event burst into an 8-slot queue cannot be fully accepted")
	}
	var be *ingress.BatchError
	if !errors.As(ierr, &be) {
		t.Fatalf("err = %v, want *BatchError", ierr)
	}
	if be.Accepted != accepted || be.Dropped == 0 {
		t.Fatalf("batch error inconsistent: accepted=%d %+v", accepted, be)
	}
	if be.Reasons["batch-partial"] == 0 {
		t.Fatalf("drops not attributed to batch-partial: %v", be.Reasons)
	}
	// Every drop landed in the lost log under the distinct reason.
	totals := e.LostEvents().Totals()
	if totals["batch-partial"] != uint64(be.Dropped) {
		t.Fatalf("lost log totals = %v, want batch-partial = %d", totals, be.Dropped)
	}
	if st := e.Stats(); st.LostOverflow != uint64(be.Dropped) {
		t.Fatalf("LostOverflow = %d, want %d", st.LostOverflow, be.Dropped)
	}
}

func TestIngestBatchDivertPolicyReroutesOverflow(t *testing.T) {
	slow := core.UpdateFunc{FName: "U_full", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		time.Sleep(200 * time.Microsecond)
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	cheap := core.UpdateFunc{FName: "U_degraded", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	app := core.NewApp("divert").
		Input("S1", "S_ovf").
		AddUpdate(slow, []string{"S1"}, nil, 0).
		AddUpdate(cheap, []string{"S_ovf"}, nil, 0)
	// Single-queue dispatch so each (function, key) owns one fixed
	// thread; the key below is chosen so the degraded pipeline's
	// thread differs from the overdriven one (in 1.0 the functions
	// have disparate workers by construction; 2.0 shares the pool).
	e, err := New(app, Config{
		Machines: 1, ThreadsPerMachine: 4, DisableDualQueue: true,
		QueueCapacity: 8, QueuePolicy: queue.Divert, OverflowStream: "S_ovf",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	m := e.machines["machine-00"]
	key := ""
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("hot%d", i)
		pf, _ := e.candidates(m, fk{fn: "U_full", key: k})
		pd, _ := e.candidates(m, fk{fn: "U_degraded", key: k})
		if pf != pd {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key separates the two updaters' threads")
	}
	evs := make([]event.Event, 400)
	for i := range evs {
		evs[i] = event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: key}
	}
	if _, err := e.IngestBatch(evs); err != nil {
		// Diverted deliveries are rerouted, not dropped; only further
		// losses (e.g. the overflow stream itself overflowing) surface.
		var be *ingress.BatchError
		if !errors.As(err, &be) {
			t.Fatalf("err = %v", err)
		}
	}
	e.Drain()
	st := e.Stats()
	if st.Diverted == 0 {
		t.Fatal("burst through a full queue under Divert diverted nothing")
	}
	full, _ := strconv.Atoi(string(e.Slate("U_full", key)))
	degraded, _ := strconv.Atoi(string(e.Slate("U_degraded", key)))
	if degraded == 0 {
		t.Fatal("degraded pipeline processed nothing")
	}
	if full+degraded+int(st.LostOverflow) != len(evs) {
		t.Fatalf("conservation: full=%d degraded=%d lost=%d of %d",
			full, degraded, st.LostOverflow, len(evs))
	}
}

func TestIngestBatchBlockPolicyAcceptsEverything(t *testing.T) {
	e, err := New(sleepyApp(), Config{
		Machines: 1, ThreadsPerMachine: 1,
		QueueCapacity: 8, QueuePolicy: queue.Block,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	evs := make([]event.Event, 300)
	for i := range evs {
		evs[i] = event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"}
	}
	accepted, ierr := e.IngestBatch(evs)
	if ierr != nil || accepted != len(evs) {
		t.Fatalf("Block policy: accepted=%d err=%v", accepted, ierr)
	}
	e.Drain()
	if got, _ := strconv.Atoi(string(e.Slate("U", "hot"))); got != len(evs) {
		t.Fatalf("count = %d, want %d", got, len(evs))
	}
}

func TestIngestBatchSourceThrottleLosesNothing(t *testing.T) {
	e, err := New(sleepyApp(), Config{
		Machines: 1, ThreadsPerMachine: 1,
		QueueCapacity: 8, QueuePolicy: queue.Drop, SourceThrottle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	evs := make([]event.Event, 300)
	for i := range evs {
		evs[i] = event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"}
	}
	accepted, ierr := e.IngestBatch(evs)
	if ierr != nil || accepted != len(evs) {
		t.Fatalf("throttled ingest: accepted=%d err=%v", accepted, ierr)
	}
	e.Drain()
	if got, _ := strconv.Atoi(string(e.Slate("U", "hot"))); got != len(evs) {
		t.Fatalf("count = %d, want %d", got, len(evs))
	}
}

func TestIngestBatchRejectsNonInputStreamWhole(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	evs := []event.Event{checkin(1, "walmart"), {Stream: "S2", Key: "x"}}
	n, ierr := e.IngestBatch(evs)
	var nie *ingress.NotInputError
	if n != 0 || !errors.As(ierr, &nie) || nie.Stream != "S2" {
		t.Fatalf("IngestBatch = %d, %v; want 0, NotInputError{S2}", n, ierr)
	}
	e.Drain()
	if st := e.Stats(); st.Ingested != 0 {
		t.Fatalf("rejected batch had side effects: Ingested = %d", st.Ingested)
	}
}

func TestIngestBatchOnStoppedEngine(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Stop()
	n, ierr := e.IngestBatch(batchOf(3, 1, "walmart"))
	if n != 0 || ierr != ingress.ErrStopped {
		t.Fatalf("IngestBatch on stopped = %d, %v", n, ierr)
	}
	if e.LostEvents().Totals()["engine-stopped"] != 3 {
		t.Fatalf("stopped drops not logged: %v", e.LostEvents().Totals())
	}
}

func TestIngestBatchToCrashedMachineAccountsLoss(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 2, ThreadsPerMachine: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	// Seed so both machines own keys, then crash one organically (no
	// operator report) and batch-ingest: deliveries to the dead machine
	// are lost, logged, and reported; detection rides the failed send.
	if _, err := e.IngestBatch(batchOf(50, 1, "walmart")); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	victim := e.MachineFor("M1", "c51")
	e.Cluster().Crash(victim)
	n, ierr := e.IngestBatch(batchOf(20, 51, "walmart"))
	e.Drain()
	if ierr == nil && n == 20 {
		// All 20 keys may route to the surviving machine only if the
		// ring failed over instantly; with detect-on-send the first
		// batch must observe at least one machine-down loss.
		t.Fatal("no loss observed ingesting into a crashed machine")
	}
	var be *ingress.BatchError
	if !errors.As(ierr, &be) {
		t.Fatalf("err = %v, want *BatchError", ierr)
	}
	if be.Reasons["machine-down"] == 0 {
		t.Fatalf("reasons = %v, want machine-down", be.Reasons)
	}
	if e.RecoveryStatus().Failovers == 0 {
		t.Fatal("batch send failure did not drive the failover")
	}
}

func TestIngestCtxBackpressureExpires(t *testing.T) {
	e, err := New(sleepyApp(), Config{
		Machines: 1, ThreadsPerMachine: 1,
		QueueCapacity: 4, QueuePolicy: queue.Drop,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	// Fill the queue, then ingest with an already-expired context: the
	// overflow must surface as a backpressure error, not a silent drop.
	for i := 0; i < 200; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sawBackpressure := false
	for i := 0; i < 50; i++ {
		err := e.IngestCtx(ctx, event.Event{Stream: "S1", TS: event.Timestamp(1000 + i), Key: "hot"})
		if errors.Is(err, ingress.ErrBackpressure) {
			sawBackpressure = true
			break
		}
	}
	e.Drain()
	if !sawBackpressure {
		t.Fatal("full queue never surfaced ErrBackpressure through IngestCtx")
	}
}

func TestIngestCtxDeliversUnderPressure(t *testing.T) {
	e, err := New(sleepyApp(), Config{
		Machines: 1, ThreadsPerMachine: 1,
		QueueCapacity: 4, QueuePolicy: queue.Drop,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	n := 120
	for i := 0; i < n; i++ {
		if err := e.IngestCtx(ctx, event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "hot"}); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	e.Drain()
	if got, _ := strconv.Atoi(string(e.Slate("U", "hot"))); got != n {
		t.Fatalf("count = %d, want %d — IngestCtx dropped under pressure", got, n)
	}
}

func TestSubscribeOrderingMatchesDrainOutput(t *testing.T) {
	m := core.MapFunc{FName: "M", Fn: func(emit core.Emitter, in event.Event) {
		emit.Publish("S2", in.Key, in.Value)
	}}
	app := core.NewApp("out").Input("S1").Output("S2").AddMap(m, []string{"S1"}, []string{"S2"})
	e, err := New(app, Config{Machines: 2, ThreadsPerMachine: 2})
	if err != nil {
		t.Fatal(err)
	}
	sub := e.Subscribe("S2", 4096)
	for i := 0; i < 200; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: fmt.Sprintf("k%d", i)})
	}
	e.Stop() // drain + close subscription channels
	var live []string
	for ev := range sub.C() {
		live = append(live, ev.Key)
	}
	polled := e.Output("S2")
	if len(live) != len(polled) {
		t.Fatalf("subscription saw %d events, Output retains %d", len(live), len(polled))
	}
	for i := range polled {
		if polled[i].Key != live[i] {
			t.Fatalf("order diverges at %d: polled=%s live=%s", i, polled[i].Key, live[i])
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("unexpected subscriber drops: %d", sub.Dropped())
	}
}

func TestSlowSubscriberShedsWithoutStallingEngine(t *testing.T) {
	m := core.MapFunc{FName: "M", Fn: func(emit core.Emitter, in event.Event) {
		emit.Publish("S2", in.Key, nil)
	}}
	app := core.NewApp("out").Input("S1").Output("S2").AddMap(m, []string{"S1"}, []string{"S2"})
	e, err := New(app, Config{Machines: 1, ThreadsPerMachine: 2})
	if err != nil {
		t.Fatal(err)
	}
	sub := e.Subscribe("S2", 4) // tiny buffer, never read until the end
	n := 500
	for i := 0; i < n; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "k"})
	}
	e.Stop()
	received := 0
	for range sub.C() {
		received++
	}
	if received+int(sub.Dropped()) != n {
		t.Fatalf("received %d + dropped %d != %d", received, sub.Dropped(), n)
	}
	if sub.Dropped() == 0 {
		t.Fatal("a 4-slot subscriber absorbing 500 events must shed")
	}
	// The engine itself lost nothing: shedding is per subscriber.
	if got := e.sink.Recorded("S2"); got != uint64(n) {
		t.Fatalf("sink recorded %d, want %d", got, n)
	}
}

func TestOutputCapacityBoundsRingAndCountsDrops(t *testing.T) {
	m := core.MapFunc{FName: "M", Fn: func(emit core.Emitter, in event.Event) {
		emit.Publish("S2", in.Key, nil)
	}}
	app := core.NewApp("out").Input("S1").Output("S2").AddMap(m, []string{"S1"}, []string{"S2"})
	e, err := New(app, Config{Machines: 1, OutputCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	n := 100
	for i := 0; i < n; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: fmt.Sprintf("k%d", i)})
	}
	e.Drain()
	out := e.Output("S2")
	if len(out) != 16 {
		t.Fatalf("Output retains %d, want 16", len(out))
	}
	if st := e.Stats(); st.OutputDropped != uint64(n-16) {
		t.Fatalf("OutputDropped = %d, want %d", st.OutputDropped, n-16)
	}
}

func TestAttachOutputHandlerSeesEveryEvent(t *testing.T) {
	m := core.MapFunc{FName: "M", Fn: func(emit core.Emitter, in event.Event) {
		emit.Publish("S2", in.Key, nil)
	}}
	app := core.NewApp("out").Input("S1").Output("S2").AddMap(m, []string{"S1"}, []string{"S2"})
	e, err := New(app, Config{Machines: 1, ThreadsPerMachine: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	seen := make(chan string, 1024)
	e.AttachOutput("S2", engine.OutputHandlerFunc(func(ev event.Event) { seen <- ev.Key }))
	n := 50
	for i := 0; i < n; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: "k"})
	}
	e.Drain()
	close(seen)
	got := 0
	for range seen {
		got++
	}
	if got != n {
		t.Fatalf("handler saw %d events, want %d", got, n)
	}
}

func TestIngestCtxMachineDownIsNotBackpressure(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 2, ThreadsPerMachine: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if _, err := e.IngestBatch(batchOf(20, 1, "walmart")); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	victim := e.MachineFor("M1", "c100")
	e.Cluster().Crash(victim)
	// Expired context + dead destination: the failure is the dead
	// machine, and must not be masked as backpressure just because the
	// context happens to be done.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ierr := e.IngestCtx(ctx, checkin(100, "walmart"))
	if ierr == nil {
		t.Fatal("ingest into a dead machine reported success")
	}
	if errors.Is(ierr, ingress.ErrBackpressure) {
		t.Fatalf("machine-down loss misreported as backpressure: %v", ierr)
	}
	var be *ingress.BatchError
	if !errors.As(ierr, &be) || be.Reasons["machine-down"] == 0 {
		t.Fatalf("err = %v, want BatchError{machine-down}", ierr)
	}
}

func TestSubscribeNonOutputStreamPanics(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("Subscribe on a non-output stream should panic")
		}
	}()
	e.Subscribe("S2", 0) // S2 is internal, not a declared output
}

func TestAttachOutputNonOutputStreamPanics(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("AttachOutput on a non-output stream should panic")
		}
	}()
	e.AttachOutput("nope", engine.OutputHandlerFunc(func(event.Event) {}))
}
