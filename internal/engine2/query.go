package engine2

import (
	"fmt"
	"time"

	"muppet/internal/core"
	"muppet/internal/engine"
	"muppet/internal/event"
	"muppet/internal/query"
	"muppet/internal/slate"
)

// Query answers one relational query over an updater's live slates,
// cluster-wide: the whole σ/π/γ pipeline is pushed to every live ring
// member (node-locally for machines this node hosts, over the
// cluster's query frame otherwise) and only the reduced partials come
// back to be merged here. Any machine failing fails the query —
// queries are idempotent, so retrying beats a silent under-count.
func (e *Engine) Query(spec query.Spec) (*query.Result, error) {
	start := time.Now()
	co := &query.Coordinator{
		Machines: e.ring.Nodes(),
		IsLocal:  func(m string) bool { return e.machines[m] != nil },
		Local:    e.queryLocal,
		Remote:   e.clu.Query,
	}
	res, err := co.Run(&spec)
	if err != nil {
		return nil, err
	}
	e.queries.Observe(spec.Kind(), res.Stats, time.Since(start))
	return res, nil
}

// queryLocal runs the node-local pipeline for one hosted machine. The
// scan input is the machine's cache-resident slates overlaid on the
// durable store's rows (cache wins: it holds the freshest, possibly
// unflushed value), both filtered to the keys the ring currently
// routes to this machine — ownership filtering is what keeps
// scatter-gather free of duplicates and dead-lineage rows.
func (e *Engine) queryLocal(machine string, spec *query.Spec) (*query.NodeResult, error) {
	m := e.machines[machine]
	if m == nil {
		return nil, fmt.Errorf("engine2: machine %s is not hosted here", machine)
	}
	f := e.app.Function(spec.Updater)
	if f == nil || f.Kind != core.KindUpdate {
		return nil, fmt.Errorf("engine2: no updater %q", spec.Updater)
	}
	var cached []query.InputRow
	for _, k := range m.cache.Keys() {
		if k.Updater != spec.Updater || !spec.KeyInRange(k.Key) {
			continue
		}
		if e.ring.LookupRoute(spec.Updater, k.Key) != machine {
			continue
		}
		if v, ok := m.cache.Peek(k); ok {
			cached = append(cached, query.InputRow{Key: k.Key, Raw: v})
		}
	}
	var stored []query.InputRow
	if e.cfg.Store != nil {
		e.cfg.Store.ScanUntil(spec.Updater, func(key string, sv []byte) bool {
			if spec.KeyInRange(key) && e.ring.LookupRoute(spec.Updater, key) == machine {
				if raw, err := slate.Decode(sv); err == nil {
					stored = append(stored, query.InputRow{Key: key, Raw: raw})
				}
			}
			return true
		})
	}
	return query.Execute(spec, f.Codec, query.MergeRows(cached, stored)), nil
}

// QueryWatch starts a continuous query: the spec is re-evaluated on
// flush-epoch cadence (or spec.EveryMS) and the marshaled Result is
// published to a private sink stream whenever the answer changes, so
// watchers ride the same bounded Subscribe machinery as declared
// output streams. The returned stop function ends the watch and
// cancels the subscription; it must be called exactly once.
func (e *Engine) QueryWatch(spec query.Spec, buf int) (*engine.Subscription, func(), error) {
	if err := spec.Normalize(); err != nil {
		return nil, nil, err
	}
	interval := e.cfg.FlushInterval
	if spec.EveryMS > 0 {
		interval = time.Duration(spec.EveryMS) * time.Millisecond
	}
	stream := fmt.Sprintf("_query/%d", e.watchSeq.Add(1))
	sub := e.sink.Subscribe(stream, buf)
	w := &query.Watcher{
		Interval: interval,
		Run:      func() (*query.Result, error) { return e.Query(spec) },
		Emit: func(payload []byte) {
			e.sink.Record(event.Event{
				Stream:  stream,
				Seq:     e.seq.Add(1),
				Key:     spec.Updater,
				Value:   payload,
				Ingress: time.Now().UnixNano(),
			})
		},
	}
	w.Start()
	stop := func() {
		w.Stop()
		sub.Cancel()
	}
	return sub, stop, nil
}

// QueryCounters exposes the query subsystem's counters (for metrics
// registration and tests).
func (e *Engine) QueryCounters() *query.Counters { return e.queries }
