package engine2

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"muppet/internal/event"
	"muppet/internal/kvstore"
	"muppet/internal/slate"
	"muppet/internal/wal"
)

// stagedBatch plants a group-commit flush batch in the victim
// machine's slate WAL that never reached the store — the "crash
// between the WAL append and the store write" window the group-commit
// protocol exists for. The keys are chosen so the victim owns them on
// the current ring.
func stageInFlightBatch(t *testing.T, e *Engine, victim string, n int) []wal.SlateRecord {
	t.Helper()
	var recs []wal.SlateRecord
	for i := 0; len(recs) < n; i++ {
		key := fmt.Sprintf("inflight-%d", i)
		if e.MachineFor("U", key) != victim {
			continue
		}
		recs = append(recs, wal.SlateRecord{Updater: "U", Key: key, Value: []byte(strconv.Itoa(100 + i))})
		if i > 10_000 {
			t.Fatal("could not find victim-owned keys")
		}
	}
	vm := e.machines[victim]
	vm.cache.(*slate.Sharded).WAL().AppendBatch(recs)
	return recs
}

// TestCrashRecoversInFlightFlushBatch is the subsystem's core
// guarantee: a crash with dirty slates and an in-flight flush batch
// loses zero flushed records. The WAL batch is replayed into the
// key-value store during failover — before the keys' new ring owners
// read them — and the dead machine's unacknowledged events are
// redelivered to those new owners, with both halves driven by the
// shared recovery code path.
func TestCrashRecoversInFlightFlushBatch(t *testing.T) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 3})
	e, err := New(replayApp(), Config{
		Machines: 4, ThreadsPerMachine: 2,
		Store: store, StoreLevel: kvstore.Quorum,
		// A far-future flush interval keeps every slate dirty, so the
		// staged WAL batch is the only durable trace of flushed state.
		FlushPolicy: slate.Interval, FlushInterval: time.Hour,
		QueueCapacity: 1 << 15, ReplayLog: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	const victim = "machine-02"
	const n = 2000
	// First wave fully processed: the victim's cache now holds dirty
	// (never-flushed) slates for its share of the keys.
	for i := 0; i < n/2; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: fmt.Sprintf("k%d", i%50)})
	}
	e.Drain()
	staged := stageInFlightBatch(t, e, victim, 3)
	// Second wave builds a backlog, then the machine dies mid-stream.
	for i := n / 2; i < n*3/4; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: fmt.Sprintf("k%d", i%50)})
	}

	replayed, lostDirty := e.CrashMachineAndReplay(victim)
	t.Logf("failover: replayed %d events, lost %d dirty slates", replayed, lostDirty)
	for i := n * 3 / 4; i < n; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: fmt.Sprintf("k%d", i%50)})
	}
	e.Drain()

	// Zero flushed records lost: every staged record is readable
	// through its key's NEW owner, which load-throughs from the store
	// the WAL replay restored.
	for _, r := range staged {
		owner := e.MachineFor("U", r.Key)
		if owner == victim || owner == "" {
			t.Fatalf("key %s still routes to %q after failover", r.Key, owner)
		}
		got := e.Slate("U", r.Key)
		if string(got) != string(r.Value) {
			t.Fatalf("flushed record %s lost: got %q, want %q", r.Key, got, r.Value)
		}
	}

	st := e.RecoveryStatus()
	if st.WALBatches != 1 || st.WALRecords != uint64(len(staged)) {
		t.Fatalf("WAL replay counters = %d batches / %d records, want 1/%d",
			st.WALBatches, st.WALRecords, len(staged))
	}
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
	if replayed == 0 || st.Redelivered != uint64(replayed) {
		t.Fatalf("redelivered = %d (report %d), want > 0 and equal", st.Redelivered, replayed)
	}
	// The dirty (never-flushed) slates are accounted, not silently
	// dropped.
	if st.DirtyLost == 0 || int(st.DirtyLost) != lostDirty {
		t.Fatalf("dirty lost = %d (report %d)", st.DirtyLost, lostDirty)
	}
}

// TestDisableWALReplayLosesInFlightBatch shows the gap the subsystem
// closes: with replay disabled, the staged batch never reaches the
// store and its records are gone.
func TestDisableWALReplayLosesInFlightBatch(t *testing.T) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 3})
	cfg := Config{
		Machines: 4, ThreadsPerMachine: 2,
		Store: store, StoreLevel: kvstore.Quorum,
		FlushPolicy: slate.Interval, FlushInterval: time.Hour,
		QueueCapacity: 1 << 15,
	}
	cfg.Recovery.DisableWALReplay = true
	e, err := New(replayApp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	const victim = "machine-01"
	staged := stageInFlightBatch(t, e, victim, 2)
	e.CrashMachine(victim)
	// Force detection so the ring reroutes, then read through the new
	// owner: the record is not in the store.
	e.clu.Master().PingAll()
	e.Drain()
	for _, r := range staged {
		if got := e.Slate("U", r.Key); got != nil {
			t.Fatalf("record %s survived with WAL replay disabled: %q", r.Key, got)
		}
	}
}

// TestRejoinMachineRestoresService drives the full crash → failover →
// rejoin lifecycle: after RejoinMachine the revived machine is back on
// the ring with restarted workers and a warmed cache, and ingestion
// reaches it again without losses.
func TestRejoinMachineRestoresService(t *testing.T) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 3})
	e, err := New(replayApp(), Config{
		Machines: 4, ThreadsPerMachine: 2,
		Store: store, StoreLevel: kvstore.Quorum, FlushPolicy: slate.WriteThrough,
		QueueCapacity: 1 << 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	const victim = "machine-03"
	const keys = 40
	want := map[string]int{}
	ingest := func(rounds int) {
		for i := 0; i < rounds*keys; i++ {
			key := fmt.Sprintf("k%d", i%keys)
			want[key]++
			e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(len(want) + i), Key: key})
		}
	}

	ingest(20)
	e.Drain()
	e.CrashMachine(victim)
	ingest(20) // detection happens on the first send to the victim
	e.Drain()

	rep, err := e.RejoinMachine(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Restarted {
		t.Fatal("rejoin did not restart the victim's workers")
	}
	if rep.Warmed == 0 {
		t.Fatal("rejoin warmed no slates despite a populated store")
	}

	st := e.RecoveryStatus()
	for _, ms := range st.Machines {
		if ms.Name == victim && (!ms.Alive || !ms.InRing || ms.Failed) {
			t.Fatalf("victim status after rejoin = %+v", ms)
		}
	}
	if st.Rejoins != 1 {
		t.Fatalf("rejoins = %d, want 1", st.Rejoins)
	}

	// Traffic reaches the rejoined machine again with no new losses.
	lostBefore := e.Stats().LostMachineDown
	ingest(20)
	e.Drain()
	if lost := e.Stats().LostMachineDown; lost != lostBefore {
		t.Fatalf("deliveries lost after rejoin: %d -> %d", lostBefore, lost)
	}
	victimOwns := false
	for k := range want {
		if e.MachineFor("U", k) == victim {
			victimOwns = true
			break
		}
	}
	if !victimOwns {
		t.Fatal("rejoined machine owns no keys")
	}

	// Full accounting: every ingested event is either counted in a
	// slate or in the lost log (write-through store, so no dirty loss).
	counted := 0
	for k := range want {
		if sl := e.Slate("U", k); sl != nil {
			n, _ := strconv.Atoi(string(sl))
			counted += n
		}
	}
	total := 0
	for _, w := range want {
		total += w
	}
	lost := int(e.Stats().LostMachineDown) + int(e.RecoveryStatus().QueuedLost)
	if counted+lost != total {
		t.Fatalf("counted %d + lost %d != ingested %d", counted, lost, total)
	}
}
