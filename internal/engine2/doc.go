// Package engine2 implements Muppet 2.0 (Section 4.5 of the paper):
// the thread-pool execution engine developed at WalmartLabs.
//
// Per machine, the engine starts a dedicated pool of worker threads,
// each capable of running any map or update function; a single central
// slate cache shared by all threads; and a background flusher that
// writes dirty slates to the durable key-value store without blocking
// map and update calls.
//
// Incoming events are dispatched to one of two candidate queues (a
// primary and a secondary, chosen by hashing <event key, destination
// function>): if either queue's thread is already processing this
// (key, function), the event follows it; otherwise it goes to the
// primary unless the secondary is significantly shorter. This bounds
// slate contention to at most two workers per slate while letting a
// hot key's load spill onto a second thread — the hotspot relief of
// Sections 4.5 and 5.
//
// # Contract
//
// An Engine is built with New, fed through Ingest/IngestBatch (and the
// shared ingress.Driver), drained with Drain, and torn down exactly
// once with Stop. Slate reads observe the central cache merged with
// the durable store. Subscribe is only valid on streams the
// application declared as outputs and panics otherwise.
//
// # Concurrency
//
// The central slate cache is striped-locked, so two threads updating
// different keys never contend on one lock, and the two-choice
// dispatch bounds writers of any single slate to two threads. The
// flusher snapshots dirty slates under the stripe locks and performs
// store writes outside them. Stop and the rejoin path's thread
// restarts are serialized by a dedicated mutex so a restart cannot
// Add to a WaitGroup that Stop is Waiting on; output subscriptions
// are closed exactly once behind the engine sink's lock.
//
// # Failure invariants
//
// A machine crash loses its queued events and its dirty (unflushed)
// slates; both are counted exactly in the failover Report. The
// write-through flush policy (or the slate group-commit WAL) closes
// the dirty-slate window; the event replay log closes the queued
// window with at-least-once redelivery. Failover ordering is owned by
// internal/recovery.
package engine2
