package engine2

import (
	"bytes"
	"testing"

	"muppet/internal/event"
)

// TestEmitterSteadyStateZeroAllocs pins the acceptance criterion of
// the zero-allocation hot path: once a thread's reusable emitter has
// warmed its scratch (outputs slice, value arena), a map invocation's
// publishes allocate nothing inside the emitter itself. The single
// remaining allocation — the per-invocation arena the derived events
// slice — lives in process(), not here.
func TestEmitterSteadyStateZeroAllocs(t *testing.T) {
	app := counterApp()
	var em collectEmitter
	value := []byte("checkin:walmart")
	// Warm-up: grow the scratch to its steady-state capacity.
	em.reset(app, "M1", false)
	if err := em.Publish("S2", "walmart", value); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		em.reset(app, "M1", false)
		em.Publish("S2", "walmart", value)
		em.Publish("S2", "target", value)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Publish allocates %v objects per invocation, want 0", allocs)
	}
}

// TestEmitterArenaIsolation guards the arena slicing: events derived
// from one invocation must keep their bytes after the emitter is
// reused by later invocations, and appending to one event's value
// must never bleed into the next output's bytes (the three-index
// slice contract).
func TestEmitterArenaIsolation(t *testing.T) {
	e, err := New(counterApp(), Config{Machines: 1, ThreadsPerMachine: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	app := counterApp()
	var em collectEmitter
	em.reset(app, "M1", false)
	em.Publish("S2", "a", []byte("first"))
	em.Publish("S2", "b", []byte("second"))
	arena := make([]byte, len(em.vals))
	copy(arena, em.vals)
	in := event.Event{Stream: "S1", TS: 1, Key: "k"}
	ev1 := e.derive(em.outputs[0], arena, in)
	ev2 := e.derive(em.outputs[1], arena, in)

	// Reuse the emitter; the events' values must be unaffected.
	em.reset(app, "M1", false)
	em.Publish("S2", "c", []byte("XXXXXXXXXXXXXXXX"))
	if !bytes.Equal(ev1.Value, []byte("first")) || !bytes.Equal(ev2.Value, []byte("second")) {
		t.Fatalf("emitter reuse corrupted derived events: %q, %q", ev1.Value, ev2.Value)
	}

	// Appending to the first event's value must reallocate, not grow
	// into the second's bytes.
	_ = append(ev1.Value, []byte("-grown")...)
	if !bytes.Equal(ev2.Value, []byte("second")) {
		t.Fatalf("append to one output bled into the next: %q", ev2.Value)
	}
}
