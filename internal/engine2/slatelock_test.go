package engine2

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"muppet/internal/event"
	"muppet/internal/slate"
)

// collidingKeys returns n distinct slate keys that all land on the
// same stripe of the lock table — the adversarial layout where
// per-key mutual exclusion must survive sharing one shard mutex.
func collidingKeys(t *testing.T, tab *slateLockTable, n int) []slate.Key {
	t.Helper()
	want := tab.shardFor(slate.Key{Updater: "U", Key: "seed"})
	keys := []slate.Key{{Updater: "U", Key: "seed"}}
	for i := 0; len(keys) < n; i++ {
		k := slate.Key{Updater: "U", Key: fmt.Sprintf("k%d", i)}
		if tab.shardFor(k) == want {
			keys = append(keys, k)
		}
		if i > 1_000_000 {
			t.Fatal("could not find colliding keys")
		}
	}
	return keys
}

// TestSlateLockTableMutualExclusion hammers a striped lock table with
// goroutines doing non-atomic read-modify-write under per-key locks —
// on keys deliberately colliding on one stripe. Any mutual-exclusion
// hole shows up as a lost update (and as a data race under -race).
func TestSlateLockTableMutualExclusion(t *testing.T) {
	tab := newSlateLockTable()
	keys := collidingKeys(t, tab, 4)
	counters := make([]int, len(keys)) // plain ints: the slate locks are the only guard
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ki := (g + i) % len(keys)
				l := tab.acquire(keys[ki], nil)
				counters[ki]++
				tab.release(keys[ki], l)
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != goroutines*iters {
		t.Fatalf("lost updates: counted %d, want %d", total, goroutines*iters)
	}
	// All locks released: every stripe's live map must be empty again.
	for i := range tab.shards {
		sh := &tab.shards[i]
		sh.mu.Lock()
		if len(sh.locks) != 0 {
			t.Fatalf("stripe %d retains %d live locks after full release", i, len(sh.locks))
		}
		sh.mu.Unlock()
	}
}

// TestSlateLockTableObservesContention: two holders of the same key
// must be observed as 2 concurrent owners; holders of different keys
// on the SAME stripe must not inflate each other's count — the
// striping must keep the accounting per key, not per stripe.
func TestSlateLockTableObservesContention(t *testing.T) {
	tab := newSlateLockTable()
	keys := collidingKeys(t, tab, 2)
	var maxSeen atomic.Int32
	observe := func(n int32) {
		for {
			cur := maxSeen.Load()
			if n <= cur || maxSeen.CompareAndSwap(cur, n) {
				return
			}
		}
	}

	// Same key, second acquirer while the first holds: observed 2.
	l1 := tab.acquire(keys[0], observe)
	done := make(chan struct{})
	go func() {
		l := tab.acquire(keys[0], observe)
		tab.release(keys[0], l)
		close(done)
	}()
	for maxSeen.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	tab.release(keys[0], l1)
	<-done

	// Distinct colliding keys held concurrently: each observes 1.
	maxSeen.Store(0)
	la := tab.acquire(keys[0], observe)
	lb := tab.acquire(keys[1], observe)
	if got := maxSeen.Load(); got != 1 {
		t.Fatalf("distinct keys on one stripe observed contention %d, want 1", got)
	}
	tab.release(keys[0], la)
	tab.release(keys[1], lb)
}

// TestSlateLockFreeListRecycles: steady acquire/release of the same
// key must reuse the retired slateLock instead of allocating fresh
// ones — the zero-allocation property of the hot path.
func TestSlateLockFreeListRecycles(t *testing.T) {
	tab := newSlateLockTable()
	k := slate.Key{Updater: "U", Key: "hot"}
	l1 := tab.acquire(k, nil)
	tab.release(k, l1)
	for i := 0; i < 100; i++ {
		l := tab.acquire(k, nil)
		if l != l1 {
			t.Fatalf("iteration %d allocated a fresh slateLock instead of recycling", i)
		}
		tab.release(k, l)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		l := tab.acquire(k, nil)
		tab.release(k, l)
	})
	if allocs != 0 {
		t.Fatalf("steady-state acquire/release allocates %v objects per op, want 0", allocs)
	}
}

// TestDualQueueContentionBoundWithStripedLocks re-checks the paper's
// Muppet-2.0 invariant on top of the striped lock table: under
// dual-queue dispatch, at most two worker threads ever hold or wait
// for the same slate, however hot the key (Section 4.5). Run with
// -race in CI.
func TestDualQueueContentionBoundWithStripedLocks(t *testing.T) {
	e, err := New(counterApp(), Config{
		Machines:          1,
		ThreadsPerMachine: 8,
		QueueCapacity:     4096,
		SourceThrottle:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	// 90% of events hammer 4 hot keys; spilling spreads a hot key over
	// its primary and secondary thread, never a third.
	for i := 0; i < 20_000; i++ {
		key := fmt.Sprintf("hot%d", i%4)
		if i%10 == 9 {
			key = fmt.Sprintf("cold%d", i)
		}
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: key, Value: []byte("checkin:" + key)})
	}
	e.Drain()
	max := e.Stats().MaxSlateContention
	if max > 2 {
		t.Fatalf("MaxSlateContention = %d, want <= 2 (dual-queue bound)", max)
	}
	if max < 1 {
		t.Fatalf("MaxSlateContention = %d: no slate update observed at all", max)
	}
}
