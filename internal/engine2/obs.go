package engine2

import (
	"muppet/internal/obs"
	"muppet/internal/queue"
	"muppet/internal/slate"
)

// registerObs wires every subsystem this engine owns into its metrics
// registry: engine counters, queue accounting, the central slate
// caches and their group-commit flushing, the durable kvstore and its
// simulated devices, the cluster transport, the recovery manager, and
// (when enabled) the lifecycle tracer. Collectors are closures over
// the subsystems' existing snapshots, so scrapes read live counters
// and the hot path pays nothing.
func (e *Engine) registerObs() {
	obs.RegisterEngineStats(e.reg, e.Stats)
	obs.RegisterLatency(e.reg, e.counters)
	obs.RegisterTracker(e.reg, e.tracker)
	obs.RegisterLostLog(e.reg, e.lost)
	obs.RegisterQueryStats(e.reg, e.queries)
	obs.RegisterQueueStats(e.reg, e.aggregateQueueStats, e.LargestQueues)
	obs.RegisterCacheStats(e.reg, e.CacheStats)
	obs.RegisterFlushStats(e.reg, e.FlushStats)
	for name, m := range e.machines {
		if s, ok := m.cache.(*slate.Sharded); ok {
			obs.RegisterShardedStore(e.reg, name, s)
		}
	}
	obs.RegisterCluster(e.reg, e.clu)
	if e.cfg.Store != nil {
		obs.RegisterKVStore(e.reg, e.cfg.Store)
	}
	e.rec.RegisterObs(e.reg)
	if e.tracer != nil {
		e.reg.Register(e.tracer)
	}
}

// aggregateQueueStats folds every thread queue's lifetime counters
// (including retired queues) into one engine-wide view.
func (e *Engine) aggregateQueueStats() queue.Stats {
	var total queue.Stats
	for _, m := range e.machines {
		for _, th := range m.threads {
			total.Add(th.stats())
		}
	}
	return total
}

// Metrics exposes the engine's observability registry; httpapi serves
// it as /metrics and /statsz.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// Tracer exposes the lifecycle tracer, nil when tracing is disabled.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// SlateCacheStats aggregates central-cache statistics across machines
// under the name shared with the 1.0 engine (whose CacheStats takes an
// updater argument).
func (e *Engine) SlateCacheStats() slate.CacheStats { return e.CacheStats() }
