package engine2

import (
	"fmt"
	"testing"

	"muppet/internal/obs"
)

// Tracing-overhead benchmarks: the same hot-key workload as
// BenchmarkEngineHotKey (persistence off to keep the pipeline cost
// pure), with the lifecycle tracer off, on at the default 1-in-256
// sample rate, and on at sample-every-delivery. The acceptance bar for
// the default rate is <=5% ns/op over untraced and zero extra
// allocs/op: a sampler miss is one atomic add on the ingest path and
// one per local delivery, nothing else.
func obsBench(b *testing.B, oc obs.TracerConfig) {
	b.Helper()
	ingestBench(b, Config{
		Machines: 1, ThreadsPerMachine: 8, QueueCapacity: 4096,
		SourceThrottle: true,
		Observability:  oc,
	}, func(i int) string {
		if i%10 < 9 {
			return fmt.Sprintf("hot%d", i%8)
		}
		return fmt.Sprintf("r%d", i%2048)
	})
}

func BenchmarkIngestUntraced(b *testing.B) {
	obsBench(b, obs.TracerConfig{})
}

func BenchmarkIngestTraced(b *testing.B) {
	obsBench(b, obs.TracerConfig{Tracing: true})
}

func BenchmarkIngestTracedSampleAll(b *testing.B) {
	obsBench(b, obs.TracerConfig{Tracing: true, SampleRate: 1})
}
