package engine2

import (
	"fmt"
	"strconv"
	"testing"

	"muppet/internal/core"
	"muppet/internal/event"
	"muppet/internal/kvstore"
	"muppet/internal/slate"
)

func replayApp() *core.App {
	u := core.UpdateFunc{FName: "U", Fn: func(emit core.Emitter, in event.Event, sl []byte) {
		n := 0
		if sl != nil {
			n, _ = strconv.Atoi(string(sl))
		}
		emit.ReplaceSlate([]byte(strconv.Itoa(n + 1)))
	}}
	return core.NewApp("replay").Input("S1").AddUpdate(u, []string{"S1"}, nil, 0)
}

func TestReplayRecoversQueuedEvents(t *testing.T) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 3})
	e, err := New(replayApp(), Config{
		Machines: 4, ThreadsPerMachine: 2,
		Store: store, StoreLevel: kvstore.Quorum, FlushPolicy: slate.WriteThrough,
		QueueCapacity: 1 << 15, ReplayLog: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	const n = 2000
	want := map[string]int{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i%100)
		want[key]++
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: key})
		if i == n/2 {
			// Crash a machine mid-stream with a backlog enqueued.
			replayed, _ := e.CrashMachineAndReplay("machine-02")
			t.Logf("replayed %d events", replayed)
		}
	}
	e.Drain()
	// At-least-once: every key's count is >= expected, and the total
	// deficit is zero.
	deficit := 0
	for k, w := range want {
		got := 0
		if sl := e.Slate("U", k); sl != nil {
			got, _ = strconv.Atoi(string(sl))
		}
		if got < w {
			deficit += w - got
		}
	}
	if deficit != 0 {
		t.Fatalf("replay left a deficit of %d events", deficit)
	}
}

func TestReplayPanicsWithoutLog(t *testing.T) {
	e, err := New(replayApp(), Config{Machines: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.CrashMachineAndReplay("machine-00")
}

func TestStockCrashDiscardsLogEntries(t *testing.T) {
	e, err := New(replayApp(), Config{Machines: 2, ReplayLog: true, QueueCapacity: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 500; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: fmt.Sprintf("k%d", i%20)})
	}
	lostQ, _ := e.CrashMachine("machine-01")
	e.Drain()
	// The log on the crashed machine must be drained so nothing leaks.
	_, _, pending := e.machines["machine-01"].log.Stats()
	if pending != 0 {
		t.Fatalf("crashed machine's log still holds %d entries (lostQ=%d)", pending, lostQ)
	}
}

func TestReplayLogAckedInNormalOperation(t *testing.T) {
	e, err := New(replayApp(), Config{Machines: 1, ReplayLog: true, QueueCapacity: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 300; i++ {
		e.Ingest(event.Event{Stream: "S1", TS: event.Timestamp(i + 1), Key: fmt.Sprintf("k%d", i%10)})
	}
	e.Drain()
	appends, acks, pending := e.machines["machine-00"].log.Stats()
	if pending != 0 {
		t.Fatalf("pending = %d after drain", pending)
	}
	if appends != 300 || acks != 300 {
		t.Fatalf("appends/acks = %d/%d, want 300/300", appends, acks)
	}
}
