package engine2

import (
	"fmt"
	"testing"
	"time"

	"muppet/internal/event"
	"muppet/internal/kvstore"
	"muppet/internal/slate"
)

// ingestBench drives b.N events through a counter app and drains.
// allocs/op covers the whole pipeline (ingest, dispatch, map, update,
// slate write); the zero-allocation work on the process path shows up
// directly here.
func ingestBench(b *testing.B, cfg Config, keyOf func(i int) string) {
	b.Helper()
	e, err := New(counterApp(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Ingest(event.Event{
			Stream: "S1",
			TS:     event.Timestamp(i + 1),
			Key:    fmt.Sprintf("c%d", i),
			Value:  []byte("checkin:" + keyOf(i)),
		})
	}
	e.Drain()
}

// BenchmarkEngineUniform: 8 worker threads, uniform keys, periodic
// group-commit flushing to a device-free store cluster.
func BenchmarkEngineUniform(b *testing.B) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 2})
	ingestBench(b, Config{
		Machines: 1, ThreadsPerMachine: 8, QueueCapacity: 4096,
		SourceThrottle: true,
		Store:          store, StoreLevel: kvstore.One,
		FlushPolicy: slate.Interval, FlushInterval: 5 * time.Millisecond,
	}, func(i int) string { return fmt.Sprintf("r%d", i%2048) })
}

// BenchmarkEngineHotKey: 90% of events hit 8 hot keys — the dual-queue
// hotspot workload — with group-commit flushing underneath.
func BenchmarkEngineHotKey(b *testing.B) {
	store := kvstore.NewCluster(kvstore.ClusterConfig{Nodes: 3, ReplicationFactor: 2})
	ingestBench(b, Config{
		Machines: 1, ThreadsPerMachine: 8, QueueCapacity: 4096,
		SourceThrottle: true,
		Store:          store, StoreLevel: kvstore.One,
		FlushPolicy: slate.Interval, FlushInterval: 5 * time.Millisecond,
	}, func(i int) string {
		if i%10 < 9 {
			return fmt.Sprintf("hot%d", i%8)
		}
		return fmt.Sprintf("r%d", i%2048)
	})
}

// BenchmarkEngineNoStore isolates dispatch + slate-store cost with
// persistence off.
func BenchmarkEngineNoStore(b *testing.B) {
	ingestBench(b, Config{
		Machines: 1, ThreadsPerMachine: 8, QueueCapacity: 4096,
		SourceThrottle: true,
	}, func(i int) string { return fmt.Sprintf("r%d", i%2048) })
}
