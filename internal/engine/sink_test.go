package engine

import (
	"fmt"
	"testing"
	"time"

	"muppet/internal/event"
)

func sev(stream, key string) event.Event {
	return event.Event{Stream: stream, Key: key}
}

func TestSinkBoundedRingKeepsNewest(t *testing.T) {
	s := NewSink(3)
	for i := 0; i < 5; i++ {
		s.Record(sev("S", fmt.Sprintf("k%d", i)))
	}
	evs := s.Events("S")
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	for i, want := range []string{"k2", "k3", "k4"} {
		if evs[i].Key != want {
			t.Fatalf("ring[%d] = %s, want %s (newest-window order)", i, evs[i].Key, want)
		}
	}
	if s.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", s.Dropped())
	}
	if s.Recorded("S") != 5 {
		t.Fatalf("recorded = %d, want 5", s.Recorded("S"))
	}
	if s.Count("S") != 3 {
		t.Fatalf("count = %d, want 3", s.Count("S"))
	}
}

func TestSinkUnboundedKeepsEverything(t *testing.T) {
	s := NewSink(0)
	for i := 0; i < 100; i++ {
		s.Record(sev("S", fmt.Sprintf("k%d", i)))
	}
	if s.Count("S") != 100 || s.Dropped() != 0 {
		t.Fatalf("count=%d dropped=%d, want 100, 0", s.Count("S"), s.Dropped())
	}
}

func TestSubscribeDeliversInOrder(t *testing.T) {
	s := NewSink(0)
	sub := s.Subscribe("S", 16)
	for i := 0; i < 10; i++ {
		s.Record(sev("S", fmt.Sprintf("k%d", i)))
	}
	s.Close()
	i := 0
	for ev := range sub.C() {
		if want := fmt.Sprintf("k%d", i); ev.Key != want {
			t.Fatalf("sub[%d] = %s, want %s", i, ev.Key, want)
		}
		i++
	}
	if i != 10 {
		t.Fatalf("received %d events, want 10", i)
	}
}

func TestSubscribeOnlySeesItsStream(t *testing.T) {
	s := NewSink(0)
	sub := s.Subscribe("A", 16)
	s.Record(sev("B", "x"))
	s.Record(sev("A", "y"))
	s.Close()
	var got []string
	for ev := range sub.C() {
		got = append(got, ev.Key)
	}
	if len(got) != 1 || got[0] != "y" {
		t.Fatalf("got %v, want [y]", got)
	}
}

func TestSlowSubscriberDropsInsteadOfBlocking(t *testing.T) {
	s := NewSink(0)
	sub := s.Subscribe("S", 2) // tiny buffer, nobody reading
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			s.Record(sev("S", "k"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Record blocked on a slow subscriber")
	}
	if sub.Dropped() != 48 {
		t.Fatalf("sub dropped = %d, want 48", sub.Dropped())
	}
	// The ring still has everything: subscriber loss is per subscriber.
	if s.Count("S") != 50 {
		t.Fatalf("ring count = %d, want 50", s.Count("S"))
	}
}

func TestSubscriptionCancelIsIdempotent(t *testing.T) {
	s := NewSink(0)
	sub := s.Subscribe("S", 2)
	sub.Cancel()
	sub.Cancel()
	if _, ok := <-sub.C(); ok {
		t.Fatal("cancelled channel still open")
	}
	// Records after cancel don't panic or reach the subscriber.
	s.Record(sev("S", "k"))
}

func TestAttachHandlerRunsSynchronously(t *testing.T) {
	s := NewSink(0)
	var got []string
	s.Attach("S", OutputHandlerFunc(func(ev event.Event) {
		got = append(got, ev.Key)
	}))
	s.Record(sev("S", "a"))
	s.Record(sev("T", "ignored"))
	s.Record(sev("S", "b"))
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("handler saw %v, want [a b]", got)
	}
}

func TestCloseClosesSubscriptionsAndStopsRecording(t *testing.T) {
	s := NewSink(0)
	sub := s.Subscribe("S", 4)
	s.Close()
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel open after Close")
	}
	s.Record(sev("S", "k"))
	if s.Count("S") != 0 {
		t.Fatal("Record after Close retained an event")
	}
	late := s.Subscribe("S", 4)
	if _, ok := <-late.C(); ok {
		t.Fatal("subscription on a closed sink should be born closed")
	}
}
