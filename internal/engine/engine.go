// Package engine holds infrastructure shared by the Muppet 1.0 and 2.0
// execution engines: the envelope type carried on worker queues, the
// quiescence tracker used to drain an application, lifetime statistics,
// the log of lost deliveries, and the egress sink (bounded output
// rings, channel subscriptions, pluggable handlers) that records
// events published on declared output streams.
package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"muppet/internal/event"
	"muppet/internal/metrics"
)

// Envelope is an event addressed to a destination function. Muppet 2.0
// threads can run any function, so their queues carry the destination
// explicitly; Muppet 1.0 workers are bound to one function and use the
// event alone.
type Envelope struct {
	// Func is the destination map or update function.
	Func string
	// Ev is the event to process.
	Ev event.Event
	// WalSeq is the envelope's sequence number in the machine's replay
	// log; zero when replay logging is disabled.
	WalSeq uint64
}

// Tracker counts in-flight events for quiescence detection: an event is
// in flight from the moment it is accepted for delivery until its
// processing — including the enqueueing of every event it emitted — is
// complete. Drain blocks until the count reaches zero.
type Tracker struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	t := &Tracker{}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// Inc registers one in-flight event.
func (t *Tracker) Inc() {
	t.mu.Lock()
	t.count++
	t.mu.Unlock()
}

// Add registers n in-flight events (n may be negative to retire a
// batch's failures) under one lock acquisition; the batched ingress
// path uses it instead of n Inc calls.
func (t *Tracker) Add(n int) {
	if n == 0 {
		return
	}
	t.mu.Lock()
	t.count += int64(n)
	if t.count <= 0 {
		t.cond.Broadcast()
	}
	t.mu.Unlock()
}

// Dec retires one in-flight event.
func (t *Tracker) Dec() {
	t.mu.Lock()
	t.count--
	if t.count <= 0 {
		t.cond.Broadcast()
	}
	t.mu.Unlock()
}

// InFlight reports the current in-flight count.
func (t *Tracker) InFlight() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Wait blocks until no events are in flight.
func (t *Tracker) Wait() {
	t.mu.Lock()
	for t.count > 0 {
		t.cond.Wait()
	}
	t.mu.Unlock()
}

// Stats aggregates an engine's lifetime counters. The conservation
// invariant is:
//
//	Ingested + Emitted == Processed·(fan-in adjusted) + LostOverflow +
//	LostMachineDown + Diverted + DroppedNoRoute
//
// Each counter counts deliveries (event × destination function), not
// raw events.
type Stats struct {
	// Ingested counts external input deliveries accepted.
	Ingested uint64
	// Processed counts function invocations completed.
	Processed uint64
	// Emitted counts events published by functions and accepted for
	// delivery.
	Emitted uint64
	// SlateUpdates counts ReplaceSlate applications.
	SlateUpdates uint64
	// LostOverflow counts deliveries dropped because a queue was full
	// (Drop policy).
	LostOverflow uint64
	// Diverted counts deliveries redirected to the overflow stream
	// (Divert policy).
	Diverted uint64
	// LostMachineDown counts deliveries lost because the destination
	// machine was down; per Section 4.3 these are logged as lost, not
	// retried.
	LostMachineDown uint64
	// FailureReports counts machine-failure reports made to the master.
	FailureReports uint64
	// MaxSlateContention is the largest number of workers observed
	// updating the same slate concurrently. Muppet 1.0 guarantees 1;
	// Muppet 2.0 allows at most 2 (Section 4.5).
	MaxSlateContention int32
	// OutputDropped counts output-stream events overwritten out of a
	// capped output ring (Config.OutputCapacity) before anyone read
	// them. Zero when the ring is unbounded.
	OutputDropped uint64
}

// Counters is the live, atomic version of Stats that engines mutate.
type Counters struct {
	Ingested        atomic.Uint64
	Processed       atomic.Uint64
	Emitted         atomic.Uint64
	SlateUpdates    atomic.Uint64
	LostOverflow    atomic.Uint64
	Diverted        atomic.Uint64
	LostMachineDown atomic.Uint64
	FailureReports  atomic.Uint64
	MaxContention   atomic.Int32

	// Latency observes end-to-end event→slate-update latencies using
	// the events' Ingress stamps.
	Latency *metrics.Histogram
}

// NewCounters returns zeroed counters with a latency histogram.
func NewCounters() *Counters {
	return &Counters{Latency: metrics.NewHistogram(0)}
}

// ObserveContention records that n workers held the same slate at
// once, keeping the maximum.
func (c *Counters) ObserveContention(n int32) {
	for {
		cur := c.MaxContention.Load()
		if n <= cur || c.MaxContention.CompareAndSwap(cur, n) {
			return
		}
	}
}

// ObserveLatency records the end-to-end latency for an event carrying
// an Ingress stamp.
func (c *Counters) ObserveLatency(e event.Event) {
	if e.Ingress > 0 {
		c.Latency.Observe(time.Duration(time.Now().UnixNano() - e.Ingress))
	}
}

// Snapshot freezes the counters into a Stats value.
func (c *Counters) Snapshot() Stats {
	return Stats{
		Ingested:           c.Ingested.Load(),
		Processed:          c.Processed.Load(),
		Emitted:            c.Emitted.Load(),
		SlateUpdates:       c.SlateUpdates.Load(),
		LostOverflow:       c.LostOverflow.Load(),
		Diverted:           c.Diverted.Load(),
		LostMachineDown:    c.LostMachineDown.Load(),
		FailureReports:     c.FailureReports.Load(),
		MaxSlateContention: c.MaxContention.Load(),
	}
}
