package engine

import (
	"sort"
	"sync"
	"sync/atomic"

	"muppet/internal/event"
)

// OutputHandler consumes events published on a declared output stream
// as they are recorded — the pluggable egress of the streaming API.
// Handlers run synchronously on the recording goroutine (a worker
// thread), so they must be fast and must not call back into the
// engine; hand slow work to a Subscription instead, whose bounded
// channel sheds load rather than stalling workers.
//
// With more than one worker thread, a handler may be invoked
// CONCURRENTLY from multiple goroutines, and the invocation order
// across threads is unspecified (the retained ring and Subscription
// channels, which are ordered under the sink lock, are the ordered
// views). Handlers must therefore be safe for concurrent use.
type OutputHandler interface {
	HandleOutput(ev event.Event)
}

// OutputHandlerFunc adapts a function literal to OutputHandler.
type OutputHandlerFunc func(ev event.Event)

// HandleOutput implements OutputHandler.
func (f OutputHandlerFunc) HandleOutput(ev event.Event) { f(ev) }

// Subscription is a live feed of one output stream. Events arrive on
// C in publication order. The channel buffer is bounded: when the
// subscriber falls behind, new events are dropped for that subscriber
// (and counted via Dropped) rather than blocking the engine's worker
// threads — the bounded-buffer egress contract.
type Subscription struct {
	sink    *Sink
	stream  string
	ch      chan event.Event
	dropped atomic.Uint64
	closed  bool // guarded by sink.mu
}

// C returns the subscription's event channel. It is closed when the
// subscription is cancelled or the engine's sink shuts down.
func (s *Subscription) C() <-chan event.Event { return s.ch }

// Stream returns the subscribed stream name.
func (s *Subscription) Stream() string { return s.stream }

// Dropped reports how many events this subscriber missed because its
// channel buffer was full.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Cancel detaches the subscription and closes its channel. It is
// idempotent and safe to call concurrently with Record.
func (s *Subscription) Cancel() {
	s.sink.mu.Lock()
	defer s.sink.mu.Unlock()
	s.cancelLocked()
}

func (s *Subscription) cancelLocked() {
	if s.closed {
		return
	}
	s.closed = true
	st := s.sink.streams[s.stream]
	if st != nil {
		for i, sub := range st.subs {
			if sub == s {
				st.subs = append(st.subs[:i], st.subs[i+1:]...)
				break
			}
		}
	}
	close(s.ch)
}

// sinkStream is one output stream's egress state: a ring of retained
// events for Output()/Events() polling, live subscriptions, and
// attached handlers.
type sinkStream struct {
	ring     []event.Event
	head     int // oldest element when the ring has wrapped
	recorded uint64
	subs     []*Subscription
	handlers []OutputHandler
}

// Sink records events published on declared output streams and fans
// them out to subscribers and handlers. Retention is a per-stream ring
// bounded by the configured capacity (unbounded when capacity <= 0,
// the pre-redesign behavior); overwritten events are counted, not
// silently forgotten.
type Sink struct {
	mu       sync.Mutex
	capacity int
	streams  map[string]*sinkStream
	dropped  uint64
	closed   bool
}

// NewSink returns an empty sink retaining at most capacity events per
// stream; capacity <= 0 retains everything.
func NewSink(capacity int) *Sink {
	return &Sink{capacity: capacity, streams: make(map[string]*sinkStream)}
}

func (s *Sink) stream(name string) *sinkStream {
	st := s.streams[name]
	if st == nil {
		st = &sinkStream{}
		s.streams[name] = st
	}
	return st
}

// Record appends an event to its stream's ring and delivers it to
// every subscriber (non-blocking) and handler (synchronous).
func (s *Sink) Record(e event.Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	st := s.stream(e.Stream)
	st.recorded++
	if s.capacity > 0 && len(st.ring) == s.capacity {
		st.ring[st.head] = e
		st.head = (st.head + 1) % s.capacity
		s.dropped++
	} else {
		st.ring = append(st.ring, e)
	}
	for _, sub := range st.subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
		}
	}
	// Handlers run outside the lock: they are user code and may take
	// their time without serializing other streams' egress.
	handlers := st.handlers
	s.mu.Unlock()
	for _, h := range handlers {
		h.HandleOutput(e)
	}
}

// Events returns the retained events for a stream in arrival order —
// the newest Capacity events when the ring is bounded.
func (s *Sink) Events(stream string) []event.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.streams[stream]
	if st == nil {
		return []event.Event{}
	}
	out := make([]event.Event, 0, len(st.ring))
	out = append(out, st.ring[st.head:]...)
	out = append(out, st.ring[:st.head]...)
	return out
}

// Count returns the number of retained events for a stream.
func (s *Sink) Count(stream string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.streams[stream]
	if st == nil {
		return 0
	}
	return len(st.ring)
}

// Recorded returns the lifetime number of events recorded on a stream,
// including any that were overwritten out of a bounded ring.
func (s *Sink) Recorded(stream string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.streams[stream]
	if st == nil {
		return 0
	}
	return st.recorded
}

// Streams returns the streams with at least one recorded event,
// sorted.
func (s *Sink) Streams() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k, st := range s.streams {
		if st.recorded > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Dropped reports how many events were overwritten out of bounded
// rings across all streams.
func (s *Sink) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Subscribe attaches a live feed to a stream. buf bounds the
// subscriber's channel (default 256 when <= 0). Events recorded after
// the call arrive on the subscription's channel in publication order;
// a full buffer drops (and counts) rather than blocking the engine.
func (s *Sink) Subscribe(stream string, buf int) *Subscription {
	if buf <= 0 {
		buf = 256
	}
	sub := &Subscription{sink: s, stream: stream, ch: make(chan event.Event, buf)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		sub.closed = true
		close(sub.ch)
		return sub
	}
	s.stream(stream).subs = append(s.stream(stream).subs, sub)
	return sub
}

// Attach registers a synchronous handler for a stream's events.
func (s *Sink) Attach(stream string, h OutputHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stream(stream)
	st.handlers = append(st.handlers, h)
}

// Close cancels every subscription (closing their channels so range
// loops terminate) and makes further Records no-ops. Engines call it
// on Stop.
func (s *Sink) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, st := range s.streams {
		for _, sub := range append([]*Subscription(nil), st.subs...) {
			sub.cancelLocked()
		}
	}
}
