package engine

import (
	"sync"
	"testing"
	"time"

	"muppet/internal/event"
)

func TestTrackerWaitReturnsAtZero(t *testing.T) {
	tr := NewTracker()
	tr.Inc()
	tr.Inc()
	done := make(chan struct{})
	go func() {
		tr.Wait()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Wait returned with 2 in flight")
	case <-time.After(10 * time.Millisecond):
	}
	tr.Dec()
	tr.Dec()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wait never returned")
	}
	if tr.InFlight() != 0 {
		t.Fatalf("InFlight = %d", tr.InFlight())
	}
}

func TestTrackerWaitImmediateWhenIdle(t *testing.T) {
	tr := NewTracker()
	done := make(chan struct{})
	go func() {
		tr.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wait blocked on idle tracker")
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tr.Inc()
				tr.Dec()
			}
		}()
	}
	wg.Wait()
	tr.Wait()
	if tr.InFlight() != 0 {
		t.Fatalf("InFlight = %d", tr.InFlight())
	}
}

func TestCountersSnapshot(t *testing.T) {
	c := NewCounters()
	c.Ingested.Add(3)
	c.Processed.Add(2)
	c.LostOverflow.Add(1)
	s := c.Snapshot()
	if s.Ingested != 3 || s.Processed != 2 || s.LostOverflow != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestObserveContentionKeepsMax(t *testing.T) {
	c := NewCounters()
	c.ObserveContention(1)
	c.ObserveContention(2)
	c.ObserveContention(1)
	if got := c.MaxContention.Load(); got != 2 {
		t.Fatalf("MaxContention = %d, want 2", got)
	}
}

func TestObserveLatency(t *testing.T) {
	c := NewCounters()
	c.ObserveLatency(event.Event{Ingress: time.Now().Add(-time.Millisecond).UnixNano()})
	c.ObserveLatency(event.Event{}) // Ingress zero: ignored
	if c.Latency.Count() != 1 {
		t.Fatalf("latency samples = %d, want 1", c.Latency.Count())
	}
	if c.Latency.Max() < time.Millisecond {
		t.Fatalf("latency %v implausibly small", c.Latency.Max())
	}
}

func TestSinkRecordsPerStream(t *testing.T) {
	s := NewSink(0)
	s.Record(event.Event{Stream: "S4", Key: "a"})
	s.Record(event.Event{Stream: "S4", Key: "b"})
	s.Record(event.Event{Stream: "S5", Key: "c"})
	if s.Count("S4") != 2 || s.Count("S5") != 1 || s.Count("S6") != 0 {
		t.Fatal("counts wrong")
	}
	evs := s.Events("S4")
	if len(evs) != 2 || evs[0].Key != "a" || evs[1].Key != "b" {
		t.Fatalf("events = %v", evs)
	}
	streams := s.Streams()
	if len(streams) != 2 || streams[0] != "S4" || streams[1] != "S5" {
		t.Fatalf("streams = %v", streams)
	}
}

func TestSinkEventsReturnsCopy(t *testing.T) {
	s := NewSink(0)
	s.Record(event.Event{Stream: "S", Key: "a"})
	evs := s.Events("S")
	evs[0].Key = "mutated"
	if s.Events("S")[0].Key != "a" {
		t.Fatal("Events exposes internal storage")
	}
}
