package engine

import (
	"sync"

	"muppet/internal/event"
)

// LossReason classifies why a delivery was abandoned.
type LossReason int

const (
	// LossOverflow: the destination queue was full under the Drop
	// policy.
	LossOverflow LossReason = iota
	// LossMachineDown: the destination machine was dead; per §4.3 the
	// event is "lost (and logged as lost) rather than sent through the
	// event-dispatch process again".
	LossMachineDown
	// LossCrashedQueue: the event was sitting in a queue on a machine
	// that crashed.
	LossCrashedQueue
	// LossNoRoute: no live worker owned the key (every candidate
	// machine down).
	LossNoRoute
	// LossStopped: the event was offered to an engine that had already
	// been stopped. Before the streaming-ingress redesign these drops
	// were entirely silent.
	LossStopped
	// LossBatchPartial: the delivery was rejected out of a batched
	// ingest (IngestBatch) whose remainder was accepted — the
	// batch-partial failure case, kept distinct from per-event
	// overflow so operators can attribute losses to the batched path.
	LossBatchPartial
	// LossTransient: the delivery exhausted its transient-fault retry
	// budget (network blips, chaos faults) without ever reaching the
	// destination. Kept distinct from LossMachineDown so operators can
	// separate losses to a declared-dead machine from losses to a
	// flaky-but-alive network path.
	LossTransient
)

// String names the reason.
func (r LossReason) String() string {
	switch r {
	case LossOverflow:
		return "overflow"
	case LossMachineDown:
		return "machine-down"
	case LossCrashedQueue:
		return "crashed-queue"
	case LossNoRoute:
		return "no-route"
	case LossStopped:
		return "engine-stopped"
	case LossBatchPartial:
		return "batch-partial"
	case LossTransient:
		return "transient-network"
	default:
		return "unknown"
	}
}

// LostEvent is one abandoned delivery with its context.
type LostEvent struct {
	// Func is the destination function that never saw the event.
	Func string
	// Ev is the abandoned event.
	Ev event.Event
	// Reason classifies the loss.
	Reason LossReason
}

// LostLog is the bounded log of abandoned deliveries the paper
// prescribes ("The dropped events can be logged for later processing
// and debugging", §4.3). It keeps the most recent entries up to its
// capacity and counts everything.
type LostLog struct {
	mu    sync.Mutex
	buf   []LostEvent
	head  int
	count uint64
	byWhy map[LossReason]uint64
	cap   int
}

// NewLostLog returns a log retaining at most capacity entries
// (default 10,000 if capacity <= 0).
func NewLostLog(capacity int) *LostLog {
	if capacity <= 0 {
		capacity = 10_000
	}
	return &LostLog{
		buf:   make([]LostEvent, 0, capacity),
		byWhy: make(map[LossReason]uint64),
		cap:   capacity,
	}
}

// Record logs one abandoned delivery.
func (l *LostLog) Record(fn string, ev event.Event, reason LossReason) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count++
	l.byWhy[reason]++
	e := LostEvent{Func: fn, Ev: ev, Reason: reason}
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, e)
		return
	}
	l.buf[l.head] = e
	l.head = (l.head + 1) % l.cap
}

// Total reports every loss ever recorded, including entries that have
// rotated out of the buffer.
func (l *LostLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Recent returns the retained entries, oldest first.
func (l *LostLog) Recent() []LostEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LostEvent, 0, len(l.buf))
	out = append(out, l.buf[l.head:]...)
	out = append(out, l.buf[:l.head]...)
	return out
}

// ByReason tallies retained entries per loss reason.
func (l *LostLog) ByReason() map[string]int {
	out := make(map[string]int)
	for _, e := range l.Recent() {
		out[e.Reason.String()]++
	}
	return out
}

// Totals reports every loss ever recorded per reason, including
// entries that have rotated out of the buffer — the accounting the
// streaming-ingress contract promises: no drop without a counted
// reason.
func (l *LostLog) Totals() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64, len(l.byWhy))
	for r, n := range l.byWhy {
		out[r.String()] = n
	}
	return out
}
