package engine

import (
	"fmt"
	"sync"
	"testing"

	"muppet/internal/event"
)

func TestLostLogRecordsAndCounts(t *testing.T) {
	l := NewLostLog(10)
	l.Record("U1", event.Event{Key: "a"}, LossOverflow)
	l.Record("U1", event.Event{Key: "b"}, LossMachineDown)
	if l.Total() != 2 {
		t.Fatalf("Total = %d", l.Total())
	}
	r := l.Recent()
	if len(r) != 2 || r[0].Ev.Key != "a" || r[1].Ev.Key != "b" {
		t.Fatalf("Recent = %v", r)
	}
}

func TestLostLogRotatesKeepingNewest(t *testing.T) {
	l := NewLostLog(3)
	for i := 0; i < 10; i++ {
		l.Record("U", event.Event{Key: fmt.Sprintf("k%d", i)}, LossOverflow)
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d", l.Total())
	}
	r := l.Recent()
	if len(r) != 3 {
		t.Fatalf("retained %d", len(r))
	}
	want := []string{"k7", "k8", "k9"}
	for i, w := range want {
		if r[i].Ev.Key != w {
			t.Fatalf("Recent[%d] = %s, want %s (order oldest-first)", i, r[i].Ev.Key, w)
		}
	}
}

func TestLostLogByReason(t *testing.T) {
	l := NewLostLog(10)
	l.Record("U", event.Event{}, LossOverflow)
	l.Record("U", event.Event{}, LossOverflow)
	l.Record("U", event.Event{}, LossCrashedQueue)
	by := l.ByReason()
	if by["overflow"] != 2 || by["crashed-queue"] != 1 {
		t.Fatalf("ByReason = %v", by)
	}
}

func TestLossReasonStrings(t *testing.T) {
	names := map[LossReason]string{
		LossOverflow: "overflow", LossMachineDown: "machine-down",
		LossCrashedQueue: "crashed-queue", LossNoRoute: "no-route",
		LossReason(99): "unknown",
	}
	for r, want := range names {
		if r.String() != want {
			t.Fatalf("String(%d) = %q", r, r.String())
		}
	}
}

func TestLostLogConcurrent(t *testing.T) {
	l := NewLostLog(100)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Record("U", event.Event{}, LossOverflow)
			}
		}()
	}
	wg.Wait()
	if l.Total() != 2000 {
		t.Fatalf("Total = %d", l.Total())
	}
	if len(l.Recent()) != 100 {
		t.Fatalf("retained %d", len(l.Recent()))
	}
}

func TestLostLogDefaultCapacity(t *testing.T) {
	l := NewLostLog(0)
	l.Record("U", event.Event{}, LossNoRoute)
	if len(l.Recent()) != 1 {
		t.Fatal("default-capacity log broken")
	}
}
