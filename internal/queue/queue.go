package queue

import (
	"errors"
	"sync"
	"sync/atomic"
)

// OverflowPolicy selects what happens when an event is offered to a
// full queue.
type OverflowPolicy int

const (
	// Drop rejects the event; the caller counts it as lost (and may log
	// it for later processing and debugging, as the paper suggests).
	Drop OverflowPolicy = iota
	// Divert rejects the event but marks it for redirection to a
	// configured overflow stream, whose recipients can implement a
	// "slightly degraded" service.
	Divert
	// Block makes the producer wait until space frees up, slowing the
	// pace of passing events (the paper's source-throttling behavior
	// when applied at stream sources).
	Block
)

// String names the policy for logs and bench output.
func (p OverflowPolicy) String() string {
	switch p {
	case Drop:
		return "drop"
	case Divert:
		return "divert"
	case Block:
		return "block"
	default:
		return "unknown"
	}
}

// ErrClosed is returned by Put and Get once the queue is closed.
var ErrClosed = errors.New("queue: closed")

// ErrOverflow is returned by Put under the Drop and Divert policies
// when the queue is full.
var ErrOverflow = errors.New("queue: overflow")

// Stats is a snapshot of a queue's lifetime accounting. The invariant
// Offered == Accepted + Dropped + Diverted always holds.
type Stats struct {
	Offered  uint64
	Accepted uint64
	Dropped  uint64
	Diverted uint64
	Blocked  uint64 // Put calls that had to wait under the Block policy
	MaxDepth int
}

// Add accumulates o into s; MaxDepth keeps the maximum. Engines use it
// to fold a retired queue's counters (a queue replaced when a crashed
// machine's workers restart) into the successor's view.
func (s *Stats) Add(o Stats) {
	s.Offered += o.Offered
	s.Accepted += o.Accepted
	s.Dropped += o.Dropped
	s.Diverted += o.Diverted
	s.Blocked += o.Blocked
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
}

// Queue is a bounded FIFO, safe for concurrent producers and
// consumers. The element type is generic: Muppet 1.0 workers queue
// bare events, Muppet 2.0 threads queue (function, event) envelopes.
type Queue[T any] struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	buf      []T
	head     int
	count    int
	capacity int
	policy   OverflowPolicy
	closed   bool
	stats    Stats
}

// New returns a queue with the given capacity and overflow policy.
// Capacity must be positive.
func New[T any](capacity int, policy OverflowPolicy) *Queue[T] {
	if capacity <= 0 {
		panic("queue: capacity must be positive")
	}
	q := &Queue[T]{
		buf:      make([]T, capacity),
		capacity: capacity,
		policy:   policy,
	}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// Put offers an element to the queue. Under Drop and Divert it returns
// ErrOverflow immediately when full; under Block it waits. It returns
// ErrClosed if the queue is (or becomes) closed.
func (q *Queue[T]) Put(e T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.stats.Offered++
	if q.closed {
		return ErrClosed
	}
	if q.count == q.capacity {
		switch q.policy {
		case Drop:
			q.stats.Dropped++
			return ErrOverflow
		case Divert:
			q.stats.Diverted++
			return ErrOverflow
		case Block:
			q.stats.Blocked++
			for q.count == q.capacity && !q.closed {
				q.notFull.Wait()
			}
			if q.closed {
				return ErrClosed
			}
		}
	}
	q.buf[(q.head+q.count)%q.capacity] = e
	q.count++
	if q.count > q.stats.MaxDepth {
		q.stats.MaxDepth = q.count
	}
	q.stats.Accepted++
	q.notEmpty.Signal()
	return nil
}

// PutBatch offers the elements in order under a single lock
// acquisition, amortizing the mutex and condition-variable traffic
// that Put pays per element — the hot-path saving the batched ingress
// surface is built on. It returns how many leading elements were
// accepted. Under Drop and Divert, the first element to find the queue
// full fails the remainder with ErrOverflow (the queue cannot free up
// while the producer holds the lock); under Block the producer waits
// for space element by element. A closed queue fails the remainder
// with ErrClosed.
func (q *Queue[T]) PutBatch(es []T) (accepted int, err error) {
	if len(es) == 0 {
		return 0, nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	// Whatever path exits this function, consumers parked on an empty
	// queue must learn about the elements that WERE accepted — the
	// overflow early-returns below are exits too, and a batch that
	// fills an idle queue and then overflows would otherwise leave the
	// consumer parked forever over a full queue.
	defer func() {
		if accepted > 0 {
			q.notEmpty.Broadcast()
		}
	}()
	for i := range es {
		q.stats.Offered++
		if q.closed {
			q.stats.Offered += uint64(len(es) - i - 1)
			return accepted, ErrClosed
		}
		if q.count == q.capacity {
			switch q.policy {
			case Drop:
				rest := uint64(len(es) - i)
				q.stats.Offered += rest - 1
				q.stats.Dropped += rest
				return accepted, ErrOverflow
			case Divert:
				rest := uint64(len(es) - i)
				q.stats.Offered += rest - 1
				q.stats.Diverted += rest
				return accepted, ErrOverflow
			case Block:
				q.stats.Blocked++
				// Wake consumers parked since before this batch began
				// inserting, or they and this producer would wait on
				// each other forever.
				q.notEmpty.Broadcast()
				for q.count == q.capacity && !q.closed {
					q.notFull.Wait()
				}
				if q.closed {
					q.stats.Offered += uint64(len(es) - i - 1)
					return accepted, ErrClosed
				}
			}
		}
		q.buf[(q.head+q.count)%q.capacity] = es[i]
		q.count++
		if q.count > q.stats.MaxDepth {
			q.stats.MaxDepth = q.count
		}
		q.stats.Accepted++
		accepted++
	}
	return accepted, nil
}

// Get removes and returns the oldest element, blocking while the queue
// is empty. It returns ErrClosed once the queue is closed and drained.
func (q *Queue[T]) Get() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	var zero T
	if q.count == 0 {
		return zero, ErrClosed
	}
	e := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % q.capacity
	q.count--
	q.notFull.Signal()
	return e, nil
}

// TryGet removes and returns the oldest element without blocking. The
// boolean reports whether an element was available.
func (q *Queue[T]) TryGet() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if q.count == 0 {
		return zero, false
	}
	e := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % q.capacity
	q.count--
	q.notFull.Signal()
	return e, true
}

// Drain atomically closes the queue and removes every buffered
// element, returning them in FIFO order. Consumers get ErrClosed
// immediately — they cannot race the drain for the remaining elements.
// The recovery subsystem uses it to kill a crashed machine's queues:
// the machine's worker loops exit at once instead of consuming a
// backlog a dead machine could never have processed.
func (q *Queue[T]) Drain() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	var zero T
	out := make([]T, 0, q.count)
	for q.count > 0 {
		out = append(out, q.buf[q.head])
		q.buf[q.head] = zero
		q.head = (q.head + 1) % q.capacity
		q.count--
	}
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
	return out
}

// Close marks the queue closed. Blocked producers fail with ErrClosed;
// consumers drain remaining elements and then receive ErrClosed.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Len reports the current queue depth.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Cap reports the queue capacity.
func (q *Queue[T]) Cap() int { return q.capacity }

// Stats returns a snapshot of the queue's accounting counters.
func (q *Queue[T]) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Policy returns the queue's overflow policy.
func (q *Queue[T]) Policy() OverflowPolicy { return q.policy }

// Slot holds a queue that can be atomically replaced. The engines give
// every worker a Slot: when a crashed machine's workers restart, the
// recovery subsystem installs a fresh queue (the old one was closed by
// the failover drain), and the retired queue's lifetime counters fold
// into the slot so stats survive the replacement. Queue() is safe for
// concurrent use; Replace must not race another Replace.
type Slot[T any] struct {
	q atomic.Pointer[Queue[T]]

	mu      sync.Mutex
	retired Stats
}

// Store installs the initial queue without retiring anything.
func (s *Slot[T]) Store(q *Queue[T]) { s.q.Store(q) }

// Queue returns the current queue.
func (s *Slot[T]) Queue() *Queue[T] { return s.q.Load() }

// Replace retires the current queue's stats and installs q.
func (s *Slot[T]) Replace(q *Queue[T]) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old := s.q.Load(); old != nil {
		s.retired.Add(old.Stats())
	}
	s.q.Store(q)
}

// Stats merges the live queue's counters with those of retired queues.
func (s *Slot[T]) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.retired
	st.Add(s.q.Load().Stats())
	return st
}
