// Package queue implements the bounded incoming-event queues that
// every Muppet worker owns, together with the three queue-overflow
// mechanisms the paper describes in Section 4.3: dropping (with
// logging), diverting to an overflow stream for degraded service, and
// slowing down the event pace (backpressure / source throttling).
//
// # Contract
//
// A queue accepts envelopes until its capacity is reached, then
// applies its overflow policy: Drop rejects with ErrOverflow, Divert
// rejects likewise but counts the envelope for redirection to the
// caller's overflow stream, Block parks the producer until space
// frees. Offered == Accepted + Dropped + Diverted holds at all times. PutBatch admits a whole batch under
// one lock acquisition and reports per-envelope outcomes. ErrOverflow
// and ErrClosed are sentinel errors; they are part of the wire
// contract — the TCP transport round-trips them across nodes so a
// remote rejection is errors.Is-comparable to a local one.
//
// # Concurrency
//
// Each queue is a mutex plus two condition variables (not-empty,
// not-full); any number of producers and consumers may share it.
// Close wakes all waiters; a Get on a closed, drained queue and a Put
// on a closed queue both return ErrClosed rather than blocking
// forever — the engines rely on this to shut down and to tear down
// crashed machines without leaking goroutines.
package queue
