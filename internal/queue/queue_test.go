package queue

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"muppet/internal/event"
)

func ev(i int) event.Event {
	return event.Event{Stream: "s", Seq: uint64(i), Key: fmt.Sprintf("k%d", i)}
}

func TestFIFOOrder(t *testing.T) {
	q := New[event.Event](10, Drop)
	for i := 0; i < 5; i++ {
		if err := q.Put(ev(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		e, err := q.Get()
		if err != nil {
			t.Fatal(err)
		}
		if e.Seq != uint64(i) {
			t.Fatalf("got seq %d, want %d", e.Seq, i)
		}
	}
}

func TestDropPolicyRejectsWhenFull(t *testing.T) {
	q := New[event.Event](2, Drop)
	q.Put(ev(0))
	q.Put(ev(1))
	if err := q.Put(ev(2)); !errors.Is(err, ErrOverflow) {
		t.Fatalf("Put on full queue = %v, want ErrOverflow", err)
	}
	s := q.Stats()
	if s.Dropped != 1 || s.Accepted != 2 || s.Offered != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDivertPolicyCountsSeparately(t *testing.T) {
	q := New[event.Event](1, Divert)
	q.Put(ev(0))
	if err := q.Put(ev(1)); !errors.Is(err, ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
	s := q.Stats()
	if s.Diverted != 1 || s.Dropped != 0 {
		t.Fatalf("stats = %+v, want 1 diverted", s)
	}
}

func TestBlockPolicyWaitsForSpace(t *testing.T) {
	q := New[event.Event](1, Block)
	q.Put(ev(0))
	done := make(chan error, 1)
	go func() { done <- q.Put(ev(1)) }()
	select {
	case <-done:
		t.Fatal("Put returned before space freed")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := q.Get(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked Put never completed")
	}
	if s := q.Stats(); s.Blocked != 1 {
		t.Fatalf("Blocked = %d, want 1", s.Blocked)
	}
}

func TestGetBlocksUntilPut(t *testing.T) {
	q := New[event.Event](1, Drop)
	got := make(chan event.Event, 1)
	go func() {
		e, _ := q.Get()
		got <- e
	}()
	time.Sleep(10 * time.Millisecond)
	q.Put(ev(7))
	select {
	case e := <-got:
		if e.Seq != 7 {
			t.Fatalf("seq = %d, want 7", e.Seq)
		}
	case <-time.After(time.Second):
		t.Fatal("Get never returned")
	}
}

func TestTryGetNonBlocking(t *testing.T) {
	q := New[event.Event](1, Drop)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
	q.Put(ev(1))
	e, ok := q.TryGet()
	if !ok || e.Seq != 1 {
		t.Fatalf("TryGet = %v, %v", e, ok)
	}
}

func TestCloseDrainsThenErrClosed(t *testing.T) {
	q := New[event.Event](4, Drop)
	q.Put(ev(0))
	q.Put(ev(1))
	q.Close()
	if _, err := q.Get(); err != nil {
		t.Fatalf("Get of buffered event after close = %v", err)
	}
	if _, err := q.Get(); err != nil {
		t.Fatalf("Get of buffered event after close = %v", err)
	}
	if _, err := q.Get(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get on drained closed queue = %v, want ErrClosed", err)
	}
	if err := q.Put(ev(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put on closed queue = %v, want ErrClosed", err)
	}
}

func TestCloseUnblocksBlockedProducer(t *testing.T) {
	q := New[event.Event](1, Block)
	q.Put(ev(0))
	done := make(chan error, 1)
	go func() { done <- q.Put(ev(1)) }()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked Put after close = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked producer never released")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	q := New[event.Event](1, Drop)
	q.Close()
	q.Close()
}

func TestWraparound(t *testing.T) {
	q := New[event.Event](3, Drop)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if err := q.Put(ev(round*3 + i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			e, err := q.Get()
			if err != nil {
				t.Fatal(err)
			}
			if e.Seq != uint64(round*3+i) {
				t.Fatalf("round %d: got %d, want %d", round, e.Seq, round*3+i)
			}
		}
	}
}

func TestStatsConservation(t *testing.T) {
	q := New[event.Event](8, Drop)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, ok := q.TryGet(); !ok {
				select {
				case <-stop:
					return
				default:
				}
			}
		}
	}()
	const producers, per = 4, 500
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < per; i++ {
				q.Put(ev(p*per + i))
			}
		}(p)
	}
	pwg.Wait()
	close(stop)
	wg.Wait()
	s := q.Stats()
	if s.Offered != producers*per {
		t.Fatalf("Offered = %d, want %d", s.Offered, producers*per)
	}
	if s.Accepted+s.Dropped+s.Diverted != s.Offered {
		t.Fatalf("conservation violated: %+v", s)
	}
	if s.MaxDepth > q.Cap() {
		t.Fatalf("MaxDepth %d exceeds capacity %d", s.MaxDepth, q.Cap())
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[OverflowPolicy]string{Drop: "drop", Divert: "divert", Block: "block", OverflowPolicy(99): "unknown"}
	for p, want := range cases {
		if p.String() != want {
			t.Fatalf("String(%d) = %s, want %s", p, p.String(), want)
		}
	}
}

func TestNewPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[event.Event](0, Drop)
}

func TestPutBatchAcceptsWithinCapacity(t *testing.T) {
	q := New[int](8, Drop)
	n, err := q.PutBatch([]int{1, 2, 3, 4})
	if n != 4 || err != nil {
		t.Fatalf("PutBatch = %d, %v", n, err)
	}
	for want := 1; want <= 4; want++ {
		got, err := q.Get()
		if err != nil || got != want {
			t.Fatalf("Get = %d, %v; want %d", got, err, want)
		}
	}
	st := q.Stats()
	if st.Offered != 4 || st.Accepted != 4 || st.MaxDepth != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutBatchDropRejectsRemainder(t *testing.T) {
	q := New[int](3, Drop)
	n, err := q.PutBatch([]int{1, 2, 3, 4, 5})
	if n != 3 || err != ErrOverflow {
		t.Fatalf("PutBatch = %d, %v; want 3, ErrOverflow", n, err)
	}
	st := q.Stats()
	if st.Offered != 5 || st.Accepted != 3 || st.Dropped != 2 {
		t.Fatalf("stats conservation broken: %+v", st)
	}
}

func TestPutBatchDivertCountsRemainder(t *testing.T) {
	q := New[int](2, Divert)
	n, err := q.PutBatch([]int{1, 2, 3})
	if n != 2 || err != ErrOverflow {
		t.Fatalf("PutBatch = %d, %v", n, err)
	}
	st := q.Stats()
	if st.Diverted != 1 || st.Offered != st.Accepted+st.Dropped+st.Diverted {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutBatchBlockWaitsForConsumer(t *testing.T) {
	q := New[int](2, Block)
	consumed := make(chan int, 16)
	go func() {
		for {
			v, err := q.Get()
			if err != nil {
				close(consumed)
				return
			}
			consumed <- v
		}
	}()
	n, err := q.PutBatch([]int{1, 2, 3, 4, 5, 6})
	if n != 6 || err != nil {
		t.Fatalf("PutBatch = %d, %v", n, err)
	}
	q.Close()
	var got []int
	for v := range consumed {
		got = append(got, v)
	}
	if len(got) != 6 {
		t.Fatalf("consumed %v", got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestPutBatchBlockWakesParkedConsumer(t *testing.T) {
	// A consumer parked on an empty queue must be woken by a PutBatch
	// that fills the queue and then blocks for space, or both sides
	// deadlock.
	q := New[int](2, Block)
	got := make(chan int, 8)
	started := make(chan struct{})
	go func() {
		close(started)
		for {
			v, err := q.Get()
			if err != nil {
				close(got)
				return
			}
			got <- v
		}
	}()
	<-started
	done := make(chan struct{})
	go func() {
		q.PutBatch([]int{1, 2, 3, 4})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("PutBatch deadlocked against a parked consumer")
	}
	q.Close()
	n := 0
	for range got {
		n++
	}
	if n != 4 {
		t.Fatalf("consumed %d, want 4", n)
	}
}

func TestPutBatchOnClosedQueue(t *testing.T) {
	q := New[int](4, Drop)
	q.Close()
	n, err := q.PutBatch([]int{1, 2})
	if n != 0 || err != ErrClosed {
		t.Fatalf("PutBatch on closed = %d, %v", n, err)
	}
}

func TestPutBatchEmpty(t *testing.T) {
	q := New[int](4, Drop)
	if n, err := q.PutBatch(nil); n != 0 || err != nil {
		t.Fatalf("empty PutBatch = %d, %v", n, err)
	}
}

func TestPutBatchOverflowStillWakesParkedConsumer(t *testing.T) {
	// A consumer parked on an empty queue, then a batch that both
	// fills the queue and overflows it under Drop: the accepted
	// elements must wake the consumer even though PutBatch returns
	// through the overflow path.
	q := New[int](2, Drop)
	got := make(chan int, 8)
	started := make(chan struct{})
	go func() {
		close(started)
		for {
			v, err := q.Get()
			if err != nil {
				close(got)
				return
			}
			got <- v
		}
	}()
	<-started
	time.Sleep(10 * time.Millisecond) // let the consumer park in Get
	n, err := q.PutBatch([]int{1, 2, 3, 4})
	if n != 2 || err != ErrOverflow {
		t.Fatalf("PutBatch = %d, %v; want 2, ErrOverflow", n, err)
	}
	for want := 1; want <= 2; want++ {
		select {
		case v := <-got:
			if v != want {
				t.Fatalf("consumed %d, want %d", v, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("consumer never woken for accepted elements")
		}
	}
	q.Close()
}
