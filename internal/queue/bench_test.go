package queue

import (
	"testing"

	"muppet/internal/event"
)

func BenchmarkPutGet(b *testing.B) {
	q := New[event.Event](1024, Drop)
	e := event.Event{Stream: "s", Key: "k"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Put(e)
		q.TryGet()
	}
}

func BenchmarkPutGetContended(b *testing.B) {
	q := New[event.Event](4096, Block)
	e := event.Event{Stream: "s", Key: "k"}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Put(e)
			q.TryGet()
		}
	})
}
