package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	f := New(10_000, 0.01)
	for i := 0; i < 10_000; i++ {
		f.Add(fmt.Sprintf("present-%d", i))
	}
	fp := 0
	const probes = 10_000
	for i := 0; i < probes; i++ {
		if f.MayContain(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Fatalf("false positive rate %.4f way above target 0.01", rate)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(100, 0.01)
	if f.MayContain("anything") {
		t.Fatal("empty filter claimed membership")
	}
}

func TestDegenerateParameters(t *testing.T) {
	f := New(0, -1)
	f.Add("k")
	if !f.MayContain("k") {
		t.Fatal("filter with clamped params lost a key")
	}
}

func TestPropertyAddedAlwaysFound(t *testing.T) {
	f := New(500, 0.01)
	err := quick.Check(func(key string) bool {
		f.Add(key)
		return f.MayContain(key)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSizeBytesPositive(t *testing.T) {
	if New(1000, 0.01).SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, n := range []int{1, 10, 1000, 50_000} {
		f := New(n, 0.01)
		for i := 0; i < n; i++ {
			f.Add(fmt.Sprintf("key-%d", i))
		}
		data := f.Marshal()
		if len(data) != f.MarshaledSize() {
			t.Fatalf("n=%d: Marshal wrote %d bytes, MarshaledSize says %d", n, len(data), f.MarshaledSize())
		}
		g, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("n=%d: Unmarshal: %v", n, err)
		}
		// The round-tripped filter must answer identically: every added
		// key still present, and absent-key probes agree bit for bit.
		for i := 0; i < n; i++ {
			if !g.MayContain(fmt.Sprintf("key-%d", i)) {
				t.Fatalf("n=%d: round-trip lost key-%d", n, i)
			}
		}
		for i := 0; i < 1000; i++ {
			k := fmt.Sprintf("absent-%d", i)
			if f.MayContain(k) != g.MayContain(k) {
				t.Fatalf("n=%d: round-trip changed the answer for %q", n, k)
			}
		}
	}
}

func TestAppendMarshalReusesBuffer(t *testing.T) {
	f := New(100, 0.01)
	f.Add("k")
	buf := make([]byte, 0, f.MarshaledSize()+16)
	out := f.AppendMarshal(buf)
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendMarshal reallocated despite sufficient capacity")
	}
	if _, err := Unmarshal(out); err != nil {
		t.Fatalf("Unmarshal(AppendMarshal(...)): %v", err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	f := New(100, 0.01)
	f.Add("k")
	good := f.Marshal()
	cases := map[string][]byte{
		"empty":          nil,
		"short header":   good[:marshalHeader-1],
		"bad version":    append([]byte{marshalVersion + 1}, good[1:]...),
		"zero hashes":    append([]byte{marshalVersion, 0}, good[2:]...),
		"truncated bits": good[:len(good)-8],
		"trailing bytes": append(append([]byte(nil), good...), 0xAA),
		"zero bit count": append([]byte{marshalVersion, 1, 0, 0, 0, 0, 0, 0, 0, 0}, good[marshalHeader:]...),
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: Unmarshal accepted corrupt input", name)
		}
	}
}
