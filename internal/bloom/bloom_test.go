package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	f := New(10_000, 0.01)
	for i := 0; i < 10_000; i++ {
		f.Add(fmt.Sprintf("present-%d", i))
	}
	fp := 0
	const probes = 10_000
	for i := 0; i < probes; i++ {
		if f.MayContain(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Fatalf("false positive rate %.4f way above target 0.01", rate)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(100, 0.01)
	if f.MayContain("anything") {
		t.Fatal("empty filter claimed membership")
	}
}

func TestDegenerateParameters(t *testing.T) {
	f := New(0, -1)
	f.Add("k")
	if !f.MayContain("k") {
		t.Fatal("filter with clamped params lost a key")
	}
}

func TestPropertyAddedAlwaysFound(t *testing.T) {
	f := New(500, 0.01)
	err := quick.Check(func(key string) bool {
		f.Add(key)
		return f.MayContain(key)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSizeBytesPositive(t *testing.T) {
	if New(1000, 0.01).SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}
