// Package bloom implements a standard Bloom filter. The key-value
// store attaches one to each sorted run so that slate reads skip runs
// that cannot contain the requested row, mirroring Cassandra's use of
// per-SSTable bloom filters (the store the paper persists slates in,
// Section 4.2).
package bloom

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Filter is a fixed-size Bloom filter. It is not safe for concurrent
// mutation; the kvstore builds a filter once per immutable run.
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes int
}

// New returns a filter sized for n expected items at the given false
// positive rate (e.g. 0.01).
func New(n int, fpRate float64) *Filter {
	if n < 1 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{
		bits:   make([]uint64, (m+63)/64),
		nbits:  m,
		hashes: k,
	}
}

// base hashes yield k derived positions via double hashing
// (Kirsch-Mitzenmacher).
func (f *Filter) positions(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31
	if h2 == 0 {
		h2 = 0x9E3779B97F4A7C15
	}
	return h1, h2
}

// Add inserts a key.
func (f *Filter) Add(key string) {
	h1, h2 := f.positions(key)
	for i := 0; i < f.hashes; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		f.bits[pos/64] |= 1 << (pos % 64)
	}
}

// MayContain reports whether the key may have been added. False means
// definitely absent.
func (f *Filter) MayContain(key string) bool {
	h1, h2 := f.positions(key)
	for i := 0; i < f.hashes; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// SizeBytes reports the filter's bit-array footprint.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// Serialized form: a fixed header (version, hash count, bit count)
// followed by the bit array as little-endian 64-bit words. The hash
// function is part of the format contract — a filter unmarshalled by a
// future version must probe the same positions — so marshalVersion
// must change if positions() ever does.
const (
	marshalVersion = 1
	marshalHeader  = 1 + 1 + 8 // version, hashes, nbits
)

// MarshaledSize reports the exact length of Marshal's output.
func (f *Filter) MarshaledSize() int { return marshalHeader + len(f.bits)*8 }

// Marshal serializes the filter for storage (e.g. in a segment file
// footer). The encoding is versioned and fixed-width; Unmarshal
// reverses it exactly.
func (f *Filter) Marshal() []byte {
	return f.AppendMarshal(make([]byte, 0, f.MarshaledSize()))
}

// AppendMarshal appends the serialized filter to dst and returns the
// extended buffer, allocating nothing when dst has room.
func (f *Filter) AppendMarshal(dst []byte) []byte {
	dst = append(dst, marshalVersion, byte(f.hashes))
	dst = binary.LittleEndian.AppendUint64(dst, f.nbits)
	for _, w := range f.bits {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// Unmarshal reconstructs a filter from Marshal's output. The data must
// be exactly one serialized filter; trailing bytes are an error, so
// corruption cannot silently widen or narrow the bit array.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < marshalHeader {
		return nil, fmt.Errorf("bloom: unmarshal: %d bytes is shorter than the %d-byte header", len(data), marshalHeader)
	}
	if v := data[0]; v != marshalVersion {
		return nil, fmt.Errorf("bloom: unmarshal: unsupported version %d", v)
	}
	hashes := int(data[1])
	if hashes < 1 || hashes > 16 {
		return nil, fmt.Errorf("bloom: unmarshal: hash count %d out of range [1,16]", hashes)
	}
	nbits := binary.LittleEndian.Uint64(data[2:])
	words := int((nbits + 63) / 64)
	if nbits == 0 || len(data) != marshalHeader+words*8 {
		return nil, fmt.Errorf("bloom: unmarshal: %d bits needs %d bytes, got %d", nbits, marshalHeader+words*8, len(data))
	}
	f := &Filter{bits: make([]uint64, words), nbits: nbits, hashes: hashes}
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(data[marshalHeader+i*8:])
	}
	return f, nil
}
