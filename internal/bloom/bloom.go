// Package bloom implements a standard Bloom filter. The key-value
// store attaches one to each sorted run so that slate reads skip runs
// that cannot contain the requested row, mirroring Cassandra's use of
// per-SSTable bloom filters (the store the paper persists slates in,
// Section 4.2).
package bloom

import (
	"hash/fnv"
	"math"
)

// Filter is a fixed-size Bloom filter. It is not safe for concurrent
// mutation; the kvstore builds a filter once per immutable run.
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes int
}

// New returns a filter sized for n expected items at the given false
// positive rate (e.g. 0.01).
func New(n int, fpRate float64) *Filter {
	if n < 1 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{
		bits:   make([]uint64, (m+63)/64),
		nbits:  m,
		hashes: k,
	}
}

// base hashes yield k derived positions via double hashing
// (Kirsch-Mitzenmacher).
func (f *Filter) positions(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31
	if h2 == 0 {
		h2 = 0x9E3779B97F4A7C15
	}
	return h1, h2
}

// Add inserts a key.
func (f *Filter) Add(key string) {
	h1, h2 := f.positions(key)
	for i := 0; i < f.hashes; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		f.bits[pos/64] |= 1 << (pos % 64)
	}
}

// MayContain reports whether the key may have been added. False means
// definitely absent.
func (f *Filter) MayContain(key string) bool {
	h1, h2 := f.positions(key)
	for i := 0; i < f.hashes; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// SizeBytes reports the filter's bit-array footprint.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }
