// Package query plans and executes relational read pipelines over live
// slates, cluster-wide: the "top retailers by checkin count right now"
// class of question the paper motivates Muppet with, answered without
// downloading every slate.
//
// A query is a Spec — one scan plus optional filter, projection, and
// grouped aggregation — executed as scan -> σ -> π -> γ:
//
//   - scan: an ordered prefix/range walk over one updater's slates. The
//     node-local input merges cache-resident slates (the freshest
//     value, possibly dirty and not yet flushed) with the durable
//     store's sorted ScanUntil rows (flushed values the cache may have
//     evicted); when both hold a key the cache wins.
//   - σ (Where): predicate filter over decoded fields.
//   - π (Fields): field projection. Typed slates are decoded through
//     the function's SlateCodec exactly once per row, then fields are
//     addressed by dotted path; on scalar slates (a plain counter) any
//     field other than "key" resolves to the value itself.
//   - γ (Agg): grouped aggregation — count, sum, min, max, or topk with
//     a bounded heap. The group key defaults to the slate key for topk
//     and to one global group otherwise; GroupBy names a field instead.
//
// # Pushdown
//
// The Coordinator scatter-gathers the WHOLE pipeline: each owning node
// runs scan->σ->π->γ locally and ships only its reduced partial result
// (projected rows, or partial aggregate groups) back; the coordinator
// merges partials — summing counts and sums, folding mins and maxes,
// re-ranking top-k — so bytes on the wire scale with the answer, not
// with the slate set. ExecStats records both BytesScanned (what a
// fetch-all would have moved) and WireBytes (what actually crossed),
// which is the pushdown win stated as data.
//
// # Consistency model
//
// Reads are per-slate atomic, cross-slate best-effort: each row is one
// consistent snapshot of one slate (the cache's current encoded value,
// or the store's last flushed one), but rows are collected while
// ingest runs, so two slates may be observed at different flush
// epochs. There is no cross-slate transaction — the same model as the
// paper's slate reads, widened from one key to a scan. Ownership
// filtering (each node contributes only keys its ring currently routes
// to it) plus coordinator-side key dedup keep a key from being counted
// twice during failover handoffs.
//
// Continuous queries re-run a standing Spec on flush-epoch cadence
// (Watcher) and emit a result only when the answer changed, feeding
// the engine's Subscribe machinery so clients stream deltas.
package query
