package query

import (
	"bytes"
	"encoding/json"
	"time"
)

// Watcher drives one continuous query: it re-runs a standing Spec on
// flush-epoch cadence and emits the marshaled Result whenever the
// answer (rows or groups — stats churn is ignored) changes. The
// engines point Emit at their output sink so watchers ride the same
// bounded Subscribe machinery as declared output streams.
type Watcher struct {
	// Interval is the re-evaluation cadence; the engines default it to
	// their flush interval, so a watcher observes every flush epoch.
	Interval time.Duration
	// Run evaluates the standing query (the engine's Query).
	Run func() (*Result, error)
	// Emit receives the marshaled Result on each change.
	Emit func(payload []byte)

	stop chan struct{}
	done chan struct{}
}

// Start launches the watch loop; the first evaluation is immediate, so
// a subscriber sees the current answer without waiting an interval.
func (w *Watcher) Start() {
	if w.Interval <= 0 {
		w.Interval = 100 * time.Millisecond
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go w.loop()
}

// Stop terminates the loop and waits for it to exit. Idempotent is the
// caller's problem: the engines call it exactly once per subscription
// cancel.
func (w *Watcher) Stop() {
	close(w.stop)
	<-w.done
}

func (w *Watcher) loop() {
	defer close(w.done)
	var last []byte
	tick := time.NewTicker(w.Interval)
	defer tick.Stop()
	for {
		res, err := w.Run()
		if err == nil {
			// Compare only the answer: stats (bytes on the wire, rows
			// scanned) can drift run to run without the result changing.
			key, kerr := json.Marshal(struct {
				Rows   []Row   `json:"rows"`
				Groups []Group `json:"groups"`
			}{res.Rows, res.Groups})
			if kerr == nil && !bytes.Equal(key, last) {
				last = key
				if payload, err := json.Marshal(res); err == nil {
					w.Emit(payload)
				}
			}
		}
		select {
		case <-w.stop:
			return
		case <-tick.C:
		}
	}
}
