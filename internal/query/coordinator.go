package query

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Coordinator scatter-gathers one query across the owning machines:
// the full pipeline is pushed to each machine (locally by direct call,
// remotely over the cluster's query frame), and only the reduced
// partial results come back to be merged. The engines fill the four
// hooks; the coordinator owns fan-out, partial-merge, and the global
// finalize (top-k re-rank, row dedup).
type Coordinator struct {
	// Machines is the scatter set: every live ring member. Ring
	// ownership is disjoint, so querying each machine once covers every
	// key exactly once.
	Machines []string
	// IsLocal reports whether this node hosts the machine.
	IsLocal func(machine string) bool
	// Local executes the node-local pipeline for a machine this node
	// hosts.
	Local func(machine string, spec *Spec) (*NodeResult, error)
	// Remote ships an encoded query request to the node hosting the
	// machine and returns the encoded NodeResult (Cluster.Query).
	Remote func(machine string, req []byte) ([]byte, error)
}

// Run executes the spec cluster-wide. Any machine failing fails the
// query: a partial answer would silently under-count, and the caller's
// retry (queries are idempotent) is cheaper than a wrong number.
func (c *Coordinator) Run(spec *Spec) (*Result, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	req, err := EncodeRequest(spec)
	if err != nil {
		return nil, err
	}

	type part struct {
		nr   *NodeResult
		wire uint64
		err  error
	}
	parts := make([]part, len(c.Machines))
	var wg sync.WaitGroup
	for i, m := range c.Machines {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			if c.IsLocal(m) {
				parts[i].nr, parts[i].err = c.Local(m, spec)
				return
			}
			resp, err := c.Remote(m, req)
			if err != nil {
				parts[i].err = err
				return
			}
			parts[i].wire = uint64(len(resp))
			nr, err := DecodeResponse(resp)
			parts[i].nr, parts[i].err = nr, err
		}(i, m)
	}
	wg.Wait()

	res := &Result{Stats: ExecStats{FanoutMachines: len(c.Machines)}}
	groups := make(map[string]*Group)
	for i, p := range parts {
		if p.err != nil {
			return nil, fmt.Errorf("query: machine %s: %w", c.Machines[i], p.err)
		}
		res.Stats.RowsScanned += p.nr.Stats.RowsScanned
		res.Stats.BytesScanned += p.nr.Stats.BytesScanned
		res.Stats.DecodeErrors += p.nr.Stats.DecodeErrors
		res.Stats.WireBytes += p.wire
		res.Rows = append(res.Rows, p.nr.Rows...)
		for _, g := range p.nr.Groups {
			mergeGroup(groups, g)
		}
	}

	if spec.Agg == AggNone {
		res.Rows = dedupRows(res.Rows)
		if spec.Limit > 0 && len(res.Rows) > spec.Limit {
			res.Rows = res.Rows[:spec.Limit]
		}
		res.Stats.RowsReturned = uint64(len(res.Rows))
		return res, nil
	}

	merged := make([]Group, 0, len(groups))
	for _, g := range groups {
		merged = append(merged, *g)
	}
	if spec.Agg == AggTopK {
		merged = topK(merged, spec.By, spec.K)
	} else {
		sort.Slice(merged, func(i, j int) bool { return merged[i].Key < merged[j].Key })
	}
	res.Groups = merged
	res.Stats.RowsReturned = uint64(len(merged))
	return res, nil
}

// mergeGroup folds one partial into the accumulator: counts and sums
// add, mins and maxes fold (guarded by Vals so a partial with no
// numeric values cannot poison them).
func mergeGroup(dst map[string]*Group, g Group) {
	d := dst[g.Key]
	if d == nil {
		cp := g
		dst[g.Key] = &cp
		return
	}
	d.Count += g.Count
	d.Sum += g.Sum
	if g.Vals > 0 {
		if d.Vals == 0 {
			d.Min, d.Max = g.Min, g.Max
		} else {
			d.Min = min(d.Min, g.Min)
			d.Max = max(d.Max, g.Max)
		}
		d.Vals += g.Vals
	}
}

// dedupRows sorts by key and collapses duplicates. Ownership filtering
// makes duplicates rare (a key answered by both its old and new owner
// mid-failover); whichever sorted first wins — the values are the same
// slate.
func dedupRows(rows []Row) []Row {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	out := rows[:0]
	for i, r := range rows {
		if i > 0 && rows[i-1].Key == r.Key {
			continue
		}
		out = append(out, r)
	}
	return out
}

// EncodeRequest and DecodeRequest frame the spec for the cluster's
// query exchange; EncodeResponse and DecodeResponse frame a machine's
// partial. JSON keeps the cluster layer payload-agnostic — it carries
// opaque bytes and never imports this package.
func EncodeRequest(spec *Spec) ([]byte, error) { return json.Marshal(spec) }

// DecodeRequest parses and validates a wire query request.
func DecodeRequest(req []byte) (*Spec, error) {
	var spec Spec
	if err := json.Unmarshal(req, &spec); err != nil {
		return nil, fmt.Errorf("query: bad request: %w", err)
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// EncodeResponse frames one machine's partial result.
func EncodeResponse(nr *NodeResult) ([]byte, error) { return json.Marshal(nr) }

// DecodeResponse parses a machine's partial result.
func DecodeResponse(resp []byte) (*NodeResult, error) {
	var nr NodeResult
	if err := json.Unmarshal(resp, &nr); err != nil {
		return nil, fmt.Errorf("query: bad response: %w", err)
	}
	return &nr, nil
}
